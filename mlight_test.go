package mlight_test

import (
	"fmt"
	"testing"

	"mlight"
)

// TestPublicAPIQuickstart exercises the README's quick-start path verbatim.
func TestPublicAPIQuickstart(t *testing.T) {
	d := mlight.NewLocalDHT(16)
	ix, err := mlight.New(d, mlight.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(mlight.Record{Key: mlight.Point{0.41, 0.73}, Data: "pizza"}); err != nil {
		t.Fatal(err)
	}
	q, err := mlight.NewRect(mlight.Point{0.4, 0.7}, mlight.Point{0.5, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.RangeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || res.Records[0].Data != "pizza" {
		t.Fatalf("RangeQuery = %+v", res.Records)
	}
	if s := ix.Stats(); s.DHTLookups == 0 {
		t.Error("no DHT operations recorded")
	}
}

// TestIndexOverEverySubstrate runs the same workload over the local DHT,
// the Chord cluster, and the Pastry cluster — the paper's "adaptable to any
// DHT substrate" claim through the public API.
func TestIndexOverEverySubstrate(t *testing.T) {
	substrates := map[string]func(t *testing.T) mlight.DHT{
		"local": func(t *testing.T) mlight.DHT {
			return mlight.NewLocalDHT(16)
		},
		"chord": func(t *testing.T) mlight.DHT {
			ring, _, err := mlight.NewChordCluster(12, 1)
			if err != nil {
				t.Fatal(err)
			}
			return ring
		},
		"pastry": func(t *testing.T) mlight.DHT {
			o, _, err := mlight.NewPastryCluster(12, 1)
			if err != nil {
				t.Fatal(err)
			}
			return o
		},
		"kademlia": func(t *testing.T) mlight.DHT {
			o, _, err := mlight.NewKademliaCluster(12, 1)
			if err != nil {
				t.Fatal(err)
			}
			return o
		},
	}
	for name, build := range substrates {
		t.Run(name, func(t *testing.T) {
			ix, err := mlight.New(build(t), mlight.Options{ThetaSplit: 8, ThetaMerge: 4})
			if err != nil {
				t.Fatal(err)
			}
			var want int
			for i := 0; i < 120; i++ {
				p := mlight.Point{float64(i%11) / 11, float64(i%7) / 7}
				if err := ix.Insert(mlight.Record{Key: p, Data: fmt.Sprintf("r%d", i)}); err != nil {
					t.Fatalf("Insert #%d: %v", i, err)
				}
				if p[0] >= 0.25 && p[0] <= 0.75 && p[1] >= 0.25 && p[1] <= 0.75 {
					want++
				}
			}
			q, err := mlight.NewRect(mlight.Point{0.25, 0.25}, mlight.Point{0.75, 0.75})
			if err != nil {
				t.Fatal(err)
			}
			res, err := ix.RangeQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Records) != want {
				t.Fatalf("RangeQuery over %s = %d records, want %d", name, len(res.Records), want)
			}
			// The parallel variant agrees.
			pres, err := ix.RangeQueryParallel(q, 4)
			if err != nil {
				t.Fatal(err)
			}
			if len(pres.Records) != want {
				t.Fatalf("parallel RangeQuery over %s = %d records, want %d", name, len(pres.Records), want)
			}
		})
	}
}

// TestRetryLayerOverLossyChord exercises Options.Retry through the public
// API: an index loaded losslessly keeps answering range queries while the
// simulated network drops 5% of messages.
func TestRetryLayerOverLossyChord(t *testing.T) {
	ring, net, err := mlight.NewChordCluster(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := mlight.New(ring, mlight.Options{
		ThetaSplit: 8,
		ThetaMerge: 4,
		Retry:      &mlight.RetryPolicy{MaxAttempts: 8, Seed: 1, Sleep: mlight.NoSleep},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		p := mlight.Point{float64(i%11) / 11, float64(i%7) / 7}
		if err := ix.Insert(mlight.Record{Key: p, Data: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatalf("Insert #%d: %v", i, err)
		}
	}
	q, err := mlight.NewRect(mlight.Point{0, 0}, mlight.Point{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	net.SetDropRate(0.05)
	for i := 0; i < 5; i++ {
		res, err := ix.RangeQueryParallel(q, 2)
		if err != nil {
			t.Fatalf("query #%d under 5%% loss: %v", i, err)
		}
		if len(res.Records) != 120 {
			t.Fatalf("query #%d = %d records, want 120", i, len(res.Records))
		}
	}
	s := ix.ResilienceStats().Snapshot()
	if s.Ops == 0 || s.Attempts < s.Ops {
		t.Errorf("resilience stats = %+v, want ops > 0 and attempts ≥ ops", s)
	}
	if s.Recovered == 0 {
		t.Errorf("no operation recovered under 5%% loss (retries %d); stats = %+v", s.Retries, s)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, _, err := mlight.NewChordCluster(0, 1); err == nil {
		t.Error("empty chord cluster accepted")
	}
	if _, _, err := mlight.NewPastryCluster(0, 1); err == nil {
		t.Error("empty pastry cluster accepted")
	}
	if _, _, err := mlight.NewKademliaCluster(0, 1); err == nil {
		t.Error("empty kademlia cluster accepted")
	}
}

func TestReplicatedClusters(t *testing.T) {
	builders := map[string]func() (mlight.DHT, error){
		"pastry": func() (mlight.DHT, error) {
			o, _, err := mlight.NewReplicatedPastryCluster(10, 3, 1)
			return o, err
		},
		"kademlia": func() (mlight.DHT, error) {
			o, _, err := mlight.NewReplicatedKademliaCluster(10, 3, 1)
			return o, err
		},
		"chord": func() (mlight.DHT, error) {
			o, _, err := mlight.NewReplicatedChordCluster(10, 3, 1)
			return o, err
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			d, err := build()
			if err != nil {
				t.Fatal(err)
			}
			ix, err := mlight.New(d, mlight.Options{ThetaSplit: 10, ThetaMerge: 5})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 80; i++ {
				p := mlight.Point{float64(i%9) / 9, float64(i%11) / 11}
				if err := ix.Insert(mlight.Record{Key: p, Data: fmt.Sprintf("r%d", i)}); err != nil {
					t.Fatalf("insert #%d: %v", i, err)
				}
			}
			q, err := mlight.NewRect(mlight.Point{0, 0}, mlight.Point{1, 1})
			if err != nil {
				t.Fatal(err)
			}
			res, err := ix.RangeQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Records) != 80 {
				t.Fatalf("whole-space query over replicated %s = %d records", name, len(res.Records))
			}
		})
	}
	if _, _, err := mlight.NewReplicatedPastryCluster(0, 3, 1); err == nil {
		t.Error("empty replicated pastry cluster accepted")
	}
	if _, _, err := mlight.NewReplicatedKademliaCluster(0, 3, 1); err == nil {
		t.Error("empty replicated kademlia cluster accepted")
	}
}
