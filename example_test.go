package mlight_test

import (
	"fmt"

	"mlight"
)

// Example shows the minimal index lifecycle: create, insert, range query.
func Example() {
	ix, err := mlight.New(mlight.NewLocalDHT(8))
	if err != nil {
		fmt.Println(err)
		return
	}
	_ = ix.Insert(mlight.Record{Key: mlight.Point{0.41, 0.73}, Data: "pizza"})
	_ = ix.Insert(mlight.Record{Key: mlight.Point{0.90, 0.10}, Data: "sushi"})

	q, _ := mlight.NewRect(mlight.Point{0.4, 0.7}, mlight.Point{0.5, 0.8})
	res, _ := ix.RangeQuery(q)
	for _, r := range res.Records {
		fmt.Println(r.Data)
	}
	// Output: pizza
}

// ExampleIndex_RangeQueryParallel shows the latency/bandwidth trade of the
// parallel range query: identical answers, fewer rounds, more lookups.
func ExampleIndex_RangeQueryParallel() {
	ix, _ := mlight.New(mlight.NewLocalDHT(8),
		mlight.WithCapacity(4), mlight.WithMergeThreshold(2))
	for i := 0; i < 64; i++ {
		_ = ix.Insert(mlight.Record{
			Key:  mlight.Point{float64(i%8)/8 + 0.01, float64(i/8)/8 + 0.01},
			Data: fmt.Sprintf("r%d", i),
		})
	}
	q, _ := mlight.NewRect(mlight.Point{0, 0}, mlight.Point{0.6, 0.6})
	basic, _ := ix.RangeQuery(q)
	parallel, _ := ix.RangeQueryParallel(q, 4)
	fmt.Println(len(basic.Records) == len(parallel.Records))
	fmt.Println(parallel.Rounds <= basic.Rounds)
	// Output:
	// true
	// true
}

// ExampleIndex_Nearest finds the records closest to a query point.
func ExampleIndex_Nearest() {
	ix, _ := mlight.New(mlight.NewLocalDHT(8))
	_ = ix.Insert(mlight.Record{Key: mlight.Point{0.50, 0.50}, Data: "centre"})
	_ = ix.Insert(mlight.Record{Key: mlight.Point{0.52, 0.50}, Data: "near"})
	_ = ix.Insert(mlight.Record{Key: mlight.Point{0.90, 0.90}, Data: "far"})

	res, _ := ix.Nearest(mlight.Point{0.5, 0.5}, 2)
	for _, n := range res.Neighbors {
		fmt.Println(n.Record.Data)
	}
	// Output:
	// centre
	// near
}

// ExampleIndex_ShapeQuery answers a circular ("within radius") query.
func ExampleIndex_ShapeQuery() {
	ix, _ := mlight.New(mlight.NewLocalDHT(8))
	_ = ix.Insert(mlight.Record{Key: mlight.Point{0.50, 0.50}, Data: "inside"})
	_ = ix.Insert(mlight.Record{Key: mlight.Point{0.95, 0.95}, Data: "outside"})

	c, _ := mlight.NewCircle(mlight.Point{0.5, 0.5}, 0.2)
	res, _ := ix.ShapeQuery(c)
	for _, r := range res.Records {
		fmt.Println(r.Data)
	}
	// Output: inside
}

// ExampleNewChordCluster runs the index over a real routed overlay.
func ExampleNewChordCluster() {
	ring, _, err := mlight.NewChordCluster(8, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	ix, _ := mlight.New(ring)
	_ = ix.Insert(mlight.Record{Key: mlight.Point{0.3, 0.3}, Data: "on-chord"})
	recs, _ := ix.Exact(mlight.Point{0.3, 0.3})
	fmt.Println(recs[0].Data)
	// Output: on-chord
}

// ExampleQuerier runs the same workload against m-LIGHT and the PHT baseline
// through the scheme-independent interface — how the evaluation harness
// compares schemes.
func ExampleQuerier() {
	mix, _ := mlight.New(mlight.NewLocalDHT(8), mlight.WithCapacity(4))
	pht, _ := mlight.NewPHT(mlight.NewLocalDHT(8), mlight.WithCapacity(4))
	q, _ := mlight.NewRect(mlight.Point{0.2, 0.2}, mlight.Point{0.8, 0.8})

	for _, scheme := range []mlight.Querier{mix, pht} {
		for i := 0; i < 16; i++ {
			_ = scheme.Insert(mlight.Record{
				Key:  mlight.Point{float64(i%4)/4 + 0.1, float64(i/4)/4 + 0.1},
				Data: fmt.Sprintf("r%d", i),
			})
		}
		res, _ := scheme.RangeQuery(q)
		fmt.Println(len(res.Records))
	}
	// Output:
	// 4
	// 4
}

// ExampleWithTrace records a structured trace of one query and prints the
// per-stage latency summary.
func ExampleWithTrace() {
	tc := mlight.NewTraceCollector()
	ix, _ := mlight.New(mlight.NewLocalDHT(8),
		mlight.WithCapacity(4), mlight.WithMaxInFlight(1), mlight.WithTrace(tc))
	for i := 0; i < 16; i++ {
		_ = ix.Insert(mlight.Record{
			Key:  mlight.Point{float64(i%4)/4 + 0.1, float64(i/4)/4 + 0.1},
			Data: fmt.Sprintf("r%d", i),
		})
	}
	tc.Reset() // trace the query alone
	q, _ := mlight.NewRect(mlight.Point{0.2, 0.2}, mlight.Point{0.8, 0.8})
	_, _ = ix.RangeQuery(q)

	for _, s := range tc.Spans() {
		if s.Kind == mlight.TraceKindQuery {
			fmt.Println(s.Name, "traced with", tc.Len(), "spans")
		}
	}
	// Output: range traced with 10 spans
}
