module mlight

go 1.22
