package mlight_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mlight"
	"mlight/internal/chord"
	"mlight/internal/core"
	"mlight/internal/peerquery"
	"mlight/internal/simnet"
	"mlight/internal/workload"
)

// TestFullSystem is the grand integration test: a 48-peer Chord ring with
// replication on a latency-modelled network, an m-LIGHT index loaded with
// 15k skewed records through the public API, client-driven and
// peer-executed queries cross-checked against a linear scan, churn (leaves
// and crashes) in the middle, and a snapshot/restore of the final state.
func TestFullSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system test")
	}
	const (
		peers   = 48
		records = 15000
	)
	net := simnet.New(simnet.Options{Latency: simnet.ConstantLatency(time.Millisecond)})
	ring := chord.NewRing(net, chord.Config{Seed: 7, Replication: 3})
	for i := 0; i < peers; i++ {
		if _, err := ring.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ring.Stabilize(2)

	ix, err := mlight.New(ring, mlight.Options{ThetaSplit: 80, ThetaMerge: 40})
	if err != nil {
		t.Fatal(err)
	}
	data := mlight.GenerateNE(records, 7)
	for i, rec := range data {
		if err := ix.Insert(rec); err != nil {
			t.Fatalf("insert #%d: %v", i, err)
		}
	}
	ring.Stabilize(1)

	svc, err := peerquery.New(ring, net, 2, 28)
	if err != nil {
		t.Fatal(err)
	}

	gen, err := workload.NewRangeGenerator(2, 99)
	if err != nil {
		t.Fatal(err)
	}
	scanCount := func(q mlight.Rect) int {
		n := 0
		for _, rec := range data {
			if q.Contains(rec.Key) {
				n++
			}
		}
		return n
	}
	checkQueries := func(phase string) {
		t.Helper()
		for trial := 0; trial < 10; trial++ {
			q, err := gen.Span(0.12)
			if err != nil {
				t.Fatal(err)
			}
			want := scanCount(q)
			res, err := ix.RangeQuery(q)
			if err != nil {
				t.Fatalf("%s: client query: %v", phase, err)
			}
			if len(res.Records) != want {
				t.Fatalf("%s: client query = %d, scan = %d", phase, len(res.Records), want)
			}
			peer, err := svc.RangeQuery(q)
			if err != nil {
				t.Fatalf("%s: peer query: %v", phase, err)
			}
			if len(peer.Records) != want {
				t.Fatalf("%s: peer query = %d, scan = %d", phase, len(peer.Records), want)
			}
			if peer.Latency <= 0 {
				t.Fatalf("%s: no latency measured", phase)
			}
		}
	}
	checkQueries("initial")

	// Churn: two graceful leaves and two crashes (absorbed by r=3).
	for i, victim := range []mlight.NodeID{"node-5", "node-23"} {
		if i%2 == 0 {
			if err := ring.RemoveNode(victim); err != nil {
				t.Fatal(err)
			}
		} else if err := ring.CrashNode(victim); err != nil {
			t.Fatal(err)
		}
		ring.Stabilize(2)
	}
	if err := ring.CrashNode("node-31"); err != nil {
		t.Fatal(err)
	}
	ring.Stabilize(2)
	svc.Reinstall() // membership changed
	checkQueries("post-churn")

	// kNN sanity on the churned system.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		p := mlight.Point{rng.Float64(), rng.Float64()}
		res, err := ix.Nearest(p, 5)
		if err != nil || len(res.Neighbors) != 5 {
			t.Fatalf("kNN after churn: %d results, %v", len(res.Neighbors), err)
		}
	}

	// Snapshot the live system and restore onto a fresh local substrate.
	var buf bytes.Buffer
	if err := ix.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := core.RestoreInto(mlight.NewLocalDHT(16), bytes.NewReader(buf.Bytes()), core.Options{
		ThetaSplit: 80, ThetaMerge: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := restored.Size()
	if err != nil {
		t.Fatal(err)
	}
	if n != records {
		t.Fatalf("restored %d records, want %d", n, records)
	}
	q, err := mlight.NewRect(mlight.Point{0.3, 0.45}, mlight.Point{0.5, 0.65})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ix.RangeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.RangeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("restored query differs: %d vs %d", len(b.Records), len(a.Records))
	}
}
