package kademlia

import (
	"fmt"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/dht/dhttest"
	"mlight/internal/simnet"
)

func buildOverlay(t *testing.T, n int) *Overlay {
	t.Helper()
	net := simnet.New(simnet.Options{})
	o := NewOverlay(net, Config{Seed: 1})
	for i := 0; i < n; i++ {
		if _, err := o.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatalf("AddNode(%d): %v", i, err)
		}
	}
	o.Stabilize(2)
	return o
}

// oracleOwner computes ground-truth ownership: minimal XOR distance.
func oracleOwner(o *Overlay, key dht.Key) simnet.NodeID {
	h := dht.HashKey(key)
	var best *Node
	for _, addr := range o.Nodes() {
		n, _ := o.nodeAt(addr)
		if best == nil || closerTo(h, n.ID(), best.ID()) {
			best = n
		}
	}
	return best.Addr()
}

func TestConformance(t *testing.T) {
	dhttest.VerifyNoLeaks(t)
	dhttest.RunConformance(t, func(t *testing.T) dht.DHT {
		return buildOverlay(t, 10)
	})
}

func TestFaultTolerance(t *testing.T) {
	dhttest.VerifyNoLeaks(t)
	dhttest.RunFaultTolerance(t, func(t *testing.T) dht.DHT {
		return buildOverlay(t, 10)
	})
}

func TestXORMetric(t *testing.T) {
	a := dht.HashString("a")
	b := dht.HashString("b")
	var zero dht.ID
	if xorDist(a, a) != zero {
		t.Error("d(a,a) != 0")
	}
	if xorDist(a, b) != xorDist(b, a) {
		t.Error("XOR distance not symmetric")
	}
	// Triangle equality of XOR: d(a,c) = d(a,b) XOR d(b,c).
	c := dht.HashString("c")
	if xorDist(a, c) != xorDist(xorDist(a, b), xorDist(zero, xorDist(b, c))) {
		t.Error("XOR composition broken")
	}
}

func TestOwnerMatchesOracle(t *testing.T) {
	o := buildOverlay(t, 16)
	for i := 0; i < 300; i++ {
		key := dht.Key(fmt.Sprintf("key-%d", i))
		got, err := o.Owner(key)
		if err != nil {
			t.Fatalf("Owner(%q): %v", key, err)
		}
		if want := oracleOwner(o, key); got != string(want) {
			t.Fatalf("Owner(%q) = %q, want %q", key, got, want)
		}
	}
}

func TestJoinMovesKeys(t *testing.T) {
	o := buildOverlay(t, 4)
	keys := make([]dht.Key, 0, 300)
	for i := 0; i < 300; i++ {
		k := dht.Key(fmt.Sprintf("jk%d", i))
		keys = append(keys, k)
		if err := o.Put(k, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 4; i < 12; i++ {
		if _, err := o.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize(2)
	for i, k := range keys {
		v, ok, err := o.Get(k)
		if err != nil || !ok || v != i {
			t.Fatalf("after joins Get(%q) = %v, %v, %v", k, v, ok, err)
		}
		owner := oracleOwner(o, k)
		n, _ := o.nodeAt(owner)
		if _, found := n.storeSnapshot()[k]; !found {
			t.Fatalf("key %q not at oracle owner %q", k, owner)
		}
	}
}

func TestGracefulLeaveKeepsData(t *testing.T) {
	o := buildOverlay(t, 10)
	for i := 0; i < 300; i++ {
		if err := o.Put(dht.Key(fmt.Sprintf("lk%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	for _, victim := range []simnet.NodeID{"node-1", "node-6", "node-8"} {
		if err := o.RemoveNode(victim); err != nil {
			t.Fatalf("RemoveNode(%q): %v", victim, err)
		}
		o.Stabilize(2)
	}
	lost := 0
	for i := 0; i < 300; i++ {
		k := dht.Key(fmt.Sprintf("lk%d", i))
		v, ok, err := o.Get(k)
		if err != nil || !ok || v != i {
			lost++
		}
	}
	if lost != 0 {
		t.Errorf("%d of 300 keys lost after graceful leaves", lost)
	}
	if err := o.RemoveNode("node-1"); err == nil {
		t.Error("double RemoveNode succeeded")
	}
}

func TestCrashRecoversRouting(t *testing.T) {
	o := buildOverlay(t, 10)
	if err := o.CrashNode("node-6"); err != nil {
		t.Fatal(err)
	}
	o.Stabilize(2)
	for i := 0; i < 100; i++ {
		k := dht.Key(fmt.Sprintf("ck%d", i))
		if err := o.Put(k, i); err != nil {
			t.Fatalf("Put after crash: %v", err)
		}
		v, ok, err := o.Get(k)
		if err != nil || !ok || v != i {
			t.Fatalf("Get after crash = %v, %v, %v", v, ok, err)
		}
	}
	if err := o.CrashNode("node-6"); err == nil {
		t.Error("double CrashNode succeeded")
	}
}

func TestLookupCostLogarithmic(t *testing.T) {
	o := buildOverlay(t, 32)
	o.Hops.Reset()
	o.Lookups.Reset()
	for i := 0; i < 300; i++ {
		if _, err := o.Owner(dht.Key(fmt.Sprintf("probe-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	mean := o.MeanRouteLength()
	if mean <= 0 {
		t.Fatal("no hops recorded")
	}
	// With α=3 parallel probes the RPC count per lookup stays modest.
	if mean > 20 {
		t.Errorf("mean FIND_NODE RPCs per lookup = %.1f for 32 nodes", mean)
	}
}

func TestBucketsBounded(t *testing.T) {
	o := buildOverlay(t, 24)
	for _, addr := range o.Nodes() {
		n, _ := o.nodeAt(addr)
		n.mu.Lock()
		for i, b := range n.buckets {
			if len(b) > K {
				t.Errorf("node %q bucket %d holds %d > K", addr, i, len(b))
			}
			for _, c := range b {
				if n.id.CommonPrefixDigits(c.ID, 1) != i {
					t.Errorf("node %q: contact %v in wrong bucket %d", addr, c.ID, i)
				}
			}
		}
		n.mu.Unlock()
	}
}

func TestEmptyOverlayErrors(t *testing.T) {
	o := NewOverlay(simnet.New(simnet.Options{}), Config{})
	if err := o.Put("k", 1); err == nil {
		t.Error("Put on empty overlay succeeded")
	}
}

func TestDuplicateAddNode(t *testing.T) {
	o := buildOverlay(t, 2)
	if _, err := o.AddNode("node-0"); err == nil {
		t.Error("duplicate AddNode succeeded")
	}
}

func TestDistributionAcrossNodes(t *testing.T) {
	o := buildOverlay(t, 12)
	for i := 0; i < 400; i++ {
		if err := o.Put(dht.Key(fmt.Sprintf("d%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	occupied := 0
	for _, addr := range o.Nodes() {
		n, _ := o.nodeAt(addr)
		if n.StoreLen() > 0 {
			occupied++
		}
	}
	if occupied < 6 {
		t.Errorf("only %d of 12 nodes hold data", occupied)
	}
}

func buildReplicatedOverlay(t *testing.T, n, replication int) *Overlay {
	t.Helper()
	net := simnet.New(simnet.Options{})
	o := NewOverlay(net, Config{Seed: 1, Replication: replication})
	for i := 0; i < n; i++ {
		if _, err := o.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize(2)
	return o
}

func TestReplicationSurvivesCrash(t *testing.T) {
	o := buildReplicatedOverlay(t, 14, 3)
	for i := 0; i < 250; i++ {
		if err := o.Put(dht.Key(fmt.Sprintf("rk%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	for _, victim := range []simnet.NodeID{"node-3", "node-9"} {
		if err := o.CrashNode(victim); err != nil {
			t.Fatal(err)
		}
		o.Stabilize(2)
	}
	lost := 0
	for i := 0; i < 250; i++ {
		v, ok, err := o.Get(dht.Key(fmt.Sprintf("rk%d", i)))
		if err != nil || !ok || v != i {
			lost++
		}
	}
	if lost != 0 {
		t.Errorf("%d of 250 keys lost after two crashes with r=3", lost)
	}
}

func TestReplicationApplyPropagates(t *testing.T) {
	o := buildReplicatedOverlay(t, 10, 3)
	inc := func(cur any, ok bool) (any, bool) {
		if !ok {
			return 1, true
		}
		n, _ := cur.(int)
		return n + 1, true
	}
	for i := 0; i < 4; i++ {
		if err := o.Apply("ctr", inc); err != nil {
			t.Fatal(err)
		}
	}
	// Crash the closest holder; the surviving replica answers with the
	// latest applied value.
	owner, err := o.Owner("ctr")
	if err != nil {
		t.Fatal(err)
	}
	if err := o.CrashNode(simnet.NodeID(owner)); err != nil {
		t.Fatal(err)
	}
	o.Stabilize(2)
	v, ok, err := o.Get("ctr")
	if err != nil || !ok || v != 4 {
		t.Fatalf("counter after crash = %v, %v, %v", v, ok, err)
	}
}

func TestReplicationRangeDeduplicates(t *testing.T) {
	o := buildReplicatedOverlay(t, 8, 3)
	for i := 0; i < 60; i++ {
		if err := o.Put(dht.Key(fmt.Sprintf("dk%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	if err := o.Range(func(dht.Key, any) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 60 {
		t.Errorf("Range reported %d entries for 60 keys (replication leaked)", count)
	}
}

func TestReplicationFactorClamped(t *testing.T) {
	o := NewOverlay(simnet.New(simnet.Options{}), Config{Replication: 99})
	if o.replication != K {
		t.Errorf("replication = %d, want clamp at %d", o.replication, K)
	}
	o2 := NewOverlay(simnet.New(simnet.Options{}), Config{Replication: -1})
	if o2.replication != 1 {
		t.Errorf("replication = %d, want 1", o2.replication)
	}
}
