package kademlia

import (
	"strings"
	"testing"

	"mlight/internal/simnet"
)

// TestMaintenanceErrorsCountRefreshFailures pins the Stabilize fix: a
// bucket-refresh self-lookup that fails lands in MaintenanceErrors and
// LastMaintenanceError instead of vanishing in a `_, _ =` assignment.
func TestMaintenanceErrorsCountRefreshFailures(t *testing.T) {
	o := buildOverlay(t, 8)
	if got := o.MaintenanceErrors.Load(); got != 0 {
		t.Fatalf("MaintenanceErrors = %d on a healthy overlay, want 0", got)
	}
	if err := o.LastMaintenanceError(); err != nil {
		t.Fatalf("LastMaintenanceError = %v on a healthy overlay, want nil", err)
	}

	o.net.(*simnet.Network).SetDropRate(1.0)
	o.Stabilize(1)
	if got := o.MaintenanceErrors.Load(); got == 0 {
		t.Fatal("MaintenanceErrors = 0 after refreshing under total loss, want > 0")
	}
	err := o.LastMaintenanceError()
	if err == nil {
		t.Fatal("LastMaintenanceError = nil after failed refresh lookups")
	}
	if !strings.Contains(err.Error(), "refresh find-node") {
		t.Fatalf("LastMaintenanceError = %v, want a refresh failure", err)
	}

	// Healed network: refresh succeeds again and the counter stays put.
	o.net.(*simnet.Network).SetDropRate(0)
	o.Stabilize(1)
	before := o.MaintenanceErrors.Load()
	o.Stabilize(1)
	if got := o.MaintenanceErrors.Load(); got != before {
		t.Fatalf("MaintenanceErrors grew from %d to %d on a healed network", before, got)
	}
}
