package kademlia

import (
	"fmt"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/simnet"
)

// benchOverlay builds a preloaded 16-node overlay in the given lookup mode.
func benchOverlay(b *testing.B, serial bool, keys int) *Overlay {
	b.Helper()
	net := simnet.New(simnet.Options{Seed: 3})
	o := NewOverlay(net, Config{Seed: 1, Serial: serial})
	for i := 0; i < 16; i++ {
		if _, err := o.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			b.Fatalf("AddNode(%d): %v", i, err)
		}
	}
	o.Stabilize(2)
	for i := 0; i < keys; i++ {
		if err := o.Put(dht.Key(fmt.Sprintf("bench-%d", i)), i); err != nil {
			b.Fatalf("Put(%d): %v", i, err)
		}
	}
	return o
}

// BenchmarkIterativeLookup measures one overlay Get end to end, comparing
// the serial one-RPC-at-a-time iterative round against the α-parallel round
// (concurrent candidate RPCs per round, identical accounting).
func BenchmarkIterativeLookup(b *testing.B) {
	const keys = 32
	for _, mode := range []struct {
		name   string
		serial bool
	}{
		{"serial", true},
		{"alpha-parallel", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			o := benchOverlay(b, mode.serial, keys)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := dht.Key(fmt.Sprintf("bench-%d", i%keys))
				v, ok, err := o.Get(k)
				if err != nil || !ok || v != i%keys {
					b.Fatalf("Get(%q) = %v, %v, %v", k, v, ok, err)
				}
			}
		})
	}
}
