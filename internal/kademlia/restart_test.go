package kademlia

import (
	"fmt"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/simnet"
)

// TestCrashWipesNodeState asserts crash semantics are destructive: the
// crashed node's store and k-buckets are gone, not merely unreachable.
func TestCrashWipesNodeState(t *testing.T) {
	o := buildOverlay(t, 8)
	for i := 0; i < 100; i++ {
		if err := o.Put(dht.Key(fmt.Sprintf("k%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	var victim *Node
	for _, addr := range o.Nodes() {
		n, _ := o.nodeAt(addr)
		if n.StoreLen() > 0 {
			victim = n
			break
		}
	}
	if victim == nil {
		t.Fatal("no node holds data")
	}
	if err := o.CrashNode(victim.Addr()); err != nil {
		t.Fatal(err)
	}
	if victim.StoreLen() != 0 {
		t.Errorf("crashed node still stores %d entries; crash must wipe volatile state", victim.StoreLen())
	}
	if got := victim.knownContacts(); len(got) != 0 {
		t.Errorf("crashed node kept %d routing contacts", len(got))
	}
}

// TestRestartRejoinsAndReconverges runs the crash → failover → restart
// cycle on a replicated overlay: no key may be lost while the node is
// down, and after restart the overlay reconverges with the restarted node
// claiming back the keys it owns.
func TestRestartRejoinsAndReconverges(t *testing.T) {
	net := simnet.New(simnet.Options{})
	o := NewOverlay(net, Config{Seed: 1, Replication: 2})
	for i := 0; i < 10; i++ {
		if _, err := o.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize(2)

	want := map[dht.Key]int{}
	for i := 0; i < 200; i++ {
		k := dht.Key(fmt.Sprintf("rk%d", i))
		want[k] = i
		if err := o.Put(k, i); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize(2) // settle replica placement

	if err := o.CrashNode("node-4"); err != nil {
		t.Fatal(err)
	}
	if got := o.CrashedNodes(); len(got) != 1 || got[0] != "node-4" {
		t.Fatalf("CrashedNodes = %v, want [node-4]", got)
	}
	o.Stabilize(3) // failover: evict the dead contact, re-replicate

	for k, v := range want {
		got, ok, err := o.Get(k)
		if err != nil || !ok || got != v {
			t.Fatalf("while down Get(%q) = %v, %v, %v; want %d", k, got, ok, err, v)
		}
	}

	n, err := o.RestartNode("node-4")
	if err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	if len(o.CrashedNodes()) != 0 {
		t.Errorf("CrashedNodes after restart = %v, want empty", o.CrashedNodes())
	}
	found := false
	for _, addr := range o.Nodes() {
		if addr == "node-4" {
			found = true
		}
	}
	if !found {
		t.Fatal("restarted node missing from Nodes()")
	}
	o.Stabilize(3)

	got := map[dht.Key]int{}
	if err := o.Range(func(k dht.Key, v any) bool {
		got[k], _ = v.(int)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Range saw %d entries after restart, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Range[%q] = %d, want %d", k, got[k], v)
		}
	}
	if len(n.knownContacts()) == 0 {
		t.Error("restarted node has no routing contacts; rejoin did not run")
	}
	for k, v := range want {
		gotV, ok, err := o.Get(k)
		if err != nil || !ok || gotV != v {
			t.Fatalf("after restart Get(%q) = %v, %v, %v; want %d", k, gotV, ok, err, v)
		}
	}
}

func TestRestartErrors(t *testing.T) {
	o := buildOverlay(t, 4)
	if _, err := o.RestartNode("node-1"); err == nil {
		t.Error("RestartNode of a live node succeeded")
	}
	if _, err := o.RestartNode("nope"); err == nil {
		t.Error("RestartNode of an unknown node succeeded")
	}
	if err := o.CrashNode("node-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := o.RestartNode("node-1"); err != nil {
		t.Fatalf("first RestartNode: %v", err)
	}
	if _, err := o.RestartNode("node-1"); err == nil {
		t.Error("second RestartNode succeeded")
	}
}

// TestRepairRestoresReplicaCount is the regression test for the replica
// erosion bug: a joiner's claim consumes every existing copy it is closer
// to the key than, and crashes thin replica sets with nothing re-pushing
// copies, so churn walked keys down to a single copy and then to zero.
// The Stabilize repair pass (periodic republish) must restore exactly
// Replication copies per key after a join and after a crash.
func TestRepairRestoresReplicaCount(t *testing.T) {
	const keys = 100
	net := simnet.New(simnet.Options{})
	o := NewOverlay(net, Config{Seed: 1, Replication: 3})
	for i := 0; i < 10; i++ {
		if _, err := o.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize(2)
	for i := 0; i < keys; i++ {
		if err := o.Put(dht.Key(fmt.Sprintf("rr%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}

	countCopies := func() map[dht.Key]int {
		out := make(map[dht.Key]int, keys)
		for _, addr := range o.Nodes() {
			n, _ := o.nodeAt(addr)
			for k := range n.storeSnapshot() {
				out[k]++
			}
		}
		return out
	}
	checkExact := func(stage string) {
		t.Helper()
		copies := countCopies()
		for i := 0; i < keys; i++ {
			k := dht.Key(fmt.Sprintf("rr%d", i))
			if copies[k] != 3 {
				t.Fatalf("%s: key %q has %d copies, want exactly 3", stage, k, copies[k])
			}
		}
	}

	o.Stabilize(1)
	checkExact("steady state")

	// A join erodes replica sets via its claim; repair must restore them.
	if _, err := o.AddNode("node-late"); err != nil {
		t.Fatal(err)
	}
	eroded := 0
	for _, c := range countCopies() {
		if c < 3 {
			eroded++
		}
	}
	if eroded == 0 {
		t.Log("join eroded no replica sets in this layout; crash phase still validates repair")
	}
	o.Stabilize(1)
	checkExact("after join")

	// A crash thins replica sets; repair must re-push to the new targets.
	if err := o.CrashNode("node-4"); err != nil {
		t.Fatal(err)
	}
	o.Stabilize(2)
	checkExact("after crash")

	for i := 0; i < keys; i++ {
		k := dht.Key(fmt.Sprintf("rr%d", i))
		v, ok, err := o.Get(k)
		if err != nil || !ok || v != i {
			t.Fatalf("Get(%q) = %v, %v, %v", k, v, ok, err)
		}
	}
}
