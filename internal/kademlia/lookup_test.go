package kademlia

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/dht/dhttest"
	"mlight/internal/simnet"
)

// TestMalformedResponseEvictsCandidate is the regression test for the
// shortlist bug: a contact whose findNodeResp fails the type assertion used
// to stay in the shortlist (queried, never evicted) and could surface in
// the lookup result. It must be treated exactly like a call failure.
func TestMalformedResponseEvictsCandidate(t *testing.T) {
	o := buildOverlay(t, 6)
	rogueAddr := simnet.NodeID("rogue")
	rogue := ref{Addr: rogueAddr, ID: dht.HashString(string(rogueAddr))}
	err := o.net.Register(rogueAddr, simnet.HandlerFunc(func(simnet.NodeID, any) (any, error) {
		return "garbage", nil // wrong type for every request
	}))
	if err != nil {
		t.Fatal(err)
	}
	// Seed the rogue into a real node's routing table so the lookup
	// discovers it; target the rogue's own ID so it sorts closest and is
	// guaranteed to be queried.
	entry, ok := o.nodeAt("node-0")
	if !ok {
		t.Fatal("node-0 missing")
	}
	entry.observe(rogue)
	closest, err := o.iterativeFindNode(entry.self(), rogue.ID)
	if err != nil {
		t.Fatalf("iterativeFindNode: %v", err)
	}
	if len(closest) == 0 {
		t.Fatal("lookup returned no contacts")
	}
	for _, c := range closest {
		if c.Addr == rogueAddr {
			t.Fatalf("malformed responder %q survived in the shortlist: %v", rogueAddr, closest)
		}
	}
}

// TestProbeLiveAccounting pins the liveness-probe bugfixes: the entry node
// vouches for itself (no self-ping RPC), every real ping is metered, and a
// failed ping is counted and surfaced instead of silently discarded.
func TestProbeLiveAccounting(t *testing.T) {
	o := buildOverlay(t, 4)
	entry, _ := o.nodeAt("node-0")
	liveNode, _ := o.nodeAt("node-1")
	deadAddr := simnet.NodeID("dead")
	dead := ref{Addr: deadAddr, ID: dht.HashString(string(deadAddr))}
	err := o.net.Register(deadAddr, simnet.HandlerFunc(func(simnet.NodeID, any) (any, error) {
		return nil, errors.New("no pong")
	}))
	if err != nil {
		t.Fatal(err)
	}
	closest := []ref{entry.self(), dead, liveNode.self()}

	t.Run("parallel", func(t *testing.T) {
		o.Pings.Reset()
		o.PingFailures.Reset()
		out := o.probeLive(entry.self(), closest, 3)
		if len(out) != 2 || out[0].Addr != entry.addr || out[1].Addr != liveNode.addr {
			t.Fatalf("probeLive = %v, want [entry, node-1]", out)
		}
		if got := o.Pings.Load(); got != 2 {
			t.Errorf("Pings = %d, want 2 (entry must not be pinged)", got)
		}
		if got := o.PingFailures.Load(); got != 1 {
			t.Errorf("PingFailures = %d, want 1", got)
		}
		if o.LastPingError() == nil {
			t.Error("LastPingError = nil after a failed probe")
		}
	})

	t.Run("serial-early-exit", func(t *testing.T) {
		o.serial = true
		defer func() { o.serial = false }()
		o.Pings.Reset()
		o.PingFailures.Reset()
		out := o.probeLive(entry.self(), closest, 1)
		if len(out) != 1 || out[0].Addr != entry.addr {
			t.Fatalf("probeLive = %v, want [entry]", out)
		}
		// The entry satisfied count=1 by itself: zero network pings — the
		// old path paid one redundant self-ping RPC here.
		if got := o.Pings.Load(); got != 0 {
			t.Errorf("Pings = %d, want 0", got)
		}
	})
}

func buildOverlayMode(t *testing.T, n int, serial bool) *Overlay {
	t.Helper()
	net := simnet.New(simnet.Options{Seed: 3})
	o := NewOverlay(net, Config{Seed: 1, Serial: serial})
	for i := 0; i < n; i++ {
		if _, err := o.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatalf("AddNode(%d): %v", i, err)
		}
	}
	o.Stabilize(2)
	return o
}

// TestSerialParallelIdenticalAccounting: the α-parallel lookup must report
// the same Hops and Lookups as the serial baseline for a fixed seed — the
// round batches are chosen before any RPC is issued and outcomes merge in
// batch order, so concurrency changes wall-clock, never the counters.
func TestSerialParallelIdenticalAccounting(t *testing.T) {
	serial := buildOverlayMode(t, 16, true)
	parallel := buildOverlayMode(t, 16, false)
	run := func(o *Overlay) map[dht.Key]any {
		o.Hops.Reset()
		o.Lookups.Reset()
		got := make(map[dht.Key]any)
		for i := 0; i < 80; i++ {
			k := dht.Key(fmt.Sprintf("acct-%d", i))
			if err := o.Put(k, i); err != nil {
				t.Fatalf("Put(%q): %v", k, err)
			}
		}
		for i := 0; i < 80; i++ {
			k := dht.Key(fmt.Sprintf("acct-%d", i))
			v, ok, err := o.Get(k)
			if err != nil || !ok {
				t.Fatalf("Get(%q) = %v, %v, %v", k, v, ok, err)
			}
			got[k] = v
		}
		return got
	}
	gotSerial := run(serial)
	gotParallel := run(parallel)
	for k, v := range gotSerial {
		if gotParallel[k] != v {
			t.Errorf("value mismatch at %q: serial %v, parallel %v", k, v, gotParallel[k])
		}
	}
	if s, p := serial.Hops.Load(), parallel.Hops.Load(); s != p {
		t.Errorf("Hops: serial %d, parallel %d — accounting must not depend on scheduling", s, p)
	}
	if s, p := serial.Lookups.Load(), parallel.Lookups.Load(); s != p {
		t.Errorf("Lookups: serial %d, parallel %d", s, p)
	}
	if hw := parallel.LookupInFlight.Load(); hw < 2 {
		t.Errorf("LookupInFlight high-water = %d, want ≥ 2 (rounds actually ran concurrently)", hw)
	}
}

// TestLookupUnderLoss runs the shared dhttest conformance case: seeded link
// loss, bounded retries, ≥90% resolution, zero terminal failures.
func TestLookupUnderLoss(t *testing.T) {
	dhttest.VerifyNoLeaks(t)
	dhttest.RunLookupUnderLoss(t, func(t *testing.T, seed int64) (dht.DHT, func(float64)) {
		net := simnet.New(simnet.Options{Seed: seed})
		// Replication 3 is the paper's own answer to lossy links: the key
		// lives at the closest replicas, so one dropped ping or retrieve
		// cannot silently misroute a read.
		o := NewOverlay(net, Config{Seed: seed, Replication: 3})
		for i := 0; i < 12; i++ {
			if _, err := o.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
				t.Fatalf("AddNode(%d): %v", i, err)
			}
		}
		o.Stabilize(2)
		return o, net.SetDropRate
	})
}

// TestConcurrentLookupStress drives many α-parallel lookups from competing
// goroutines — the -race companion to the determinism tests. Phase one is
// lossless and must fully succeed; phase two injects loss and only requires
// the overlay to stay race-free and return classified errors.
func TestConcurrentLookupStress(t *testing.T) {
	dhttest.VerifyNoLeaks(t)
	o := buildOverlayMode(t, 16, false)
	const keys = 64
	for i := 0; i < keys; i++ {
		if err := o.Put(dht.Key(fmt.Sprintf("stress-%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	var bad atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				idx := (g*25 + i) % keys
				v, ok, err := o.Get(dht.Key(fmt.Sprintf("stress-%d", idx)))
				if err != nil || !ok || v != idx {
					bad.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Errorf("%d lossless concurrent Gets failed", n)
	}

	o.net.(*simnet.Network).SetDropRate(0.05)
	var failed atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				k := dht.Key(fmt.Sprintf("stress-%d", (g*15+i)%keys))
				if _, _, err := o.Get(k); err != nil {
					failed.Add(1) // loss may fail lookups; racing is the bug
				}
			}
		}(g)
	}
	wg.Wait()
	t.Logf("lossy phase: %d/120 Gets failed (loss-induced, tolerated)", failed.Load())
}
