// Package kademlia implements the Kademlia distributed hash table
// (Maymounkov & Mazières, IPTPS 2002) over the simulated network — the
// third pluggable substrate beneath the m-LIGHT index, alongside
// internal/chord and internal/pastry.
//
// Kademlia's distinguishing choices, all implemented here:
//
//   - the XOR metric: d(a, b) = a ⊕ b, which is symmetric and unifies
//     "distance to a node" and "distance to a key";
//   - k-buckets: one bucket of up to k contacts per shared-prefix length,
//     refreshed opportunistically — every inbound RPC's sender is inserted,
//     so routing state maintains itself from ordinary traffic;
//   - iterative lookups with concurrency α: the querier keeps a shortlist
//     of the closest known contacts and repeatedly asks the α best
//     unqueried ones for closer nodes until the shortlist converges.
//
// A key is owned by the node whose identifier has minimal XOR distance to
// hash(key). Joins backfill routing tables by looking up the joiner's own
// identifier; graceful leaves hand keys to the next-closest contact;
// crashes are repaired by the Overlay's Stabilize rounds (bucket refresh +
// dead-contact eviction).
//
// With Config.Replication = r > 1, writes follow the paper's placement
// rule — store at the r closest nodes — so reads survive up to r-1 crashed
// replicas. Replicas are refreshed on every write; this implementation
// omits the original's TTL-based republishing, so copies left behind by
// ownership changes persist until overwritten or removed.
package kademlia

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"mlight/internal/dht"
	"mlight/internal/metrics"
	"mlight/internal/simnet"
)

const (
	// K is the bucket capacity (number of contacts remembered per
	// shared-prefix length). The original paper uses 20; 8 suits the
	// simulation scales here.
	K = 8
	// Alpha is the lookup concurrency factor.
	Alpha = 3
)

// clientAddr is the source address for overlay-initiated RPCs.
const clientAddr simnet.NodeID = "kademlia-client"

// ErrLookupFailed is returned when an iterative lookup cannot complete. It
// is marked retryable: routing tables heal after Refresh, so a retry layer
// may usefully try again.
var ErrLookupFailed = dht.Retryable(errors.New("kademlia: lookup failed"))

// ref names a remote node.
type ref struct {
	Addr simnet.NodeID
	ID   dht.ID
}

func (r ref) isZero() bool { return r.Addr == "" }

// xorDist returns the XOR distance between two identifiers.
func xorDist(a, b dht.ID) dht.ID {
	var out dht.ID
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// closerTo reports whether a is strictly closer to target than b in the
// XOR metric, with ties (only possible when a == b) broken false.
func closerTo(target, a, b dht.ID) bool {
	return xorDist(a, target).Cmp(xorDist(b, target)) < 0
}

// Node is one Kademlia peer.
type Node struct {
	addr simnet.NodeID
	id   dht.ID
	net  *simnet.Network

	mu      sync.Mutex
	buckets [dht.IDBits][]ref // buckets[i]: contacts sharing exactly i prefix bits
	store   map[dht.Key]any
}

// rpc request/response types.
type (
	pingReq     struct{ From ref }
	findNodeReq struct {
		From   ref
		Target dht.ID
	}
	findNodeResp struct{ Closest []ref }
	storeReq     struct {
		From  ref
		Key   dht.Key
		Value any
	}
	retrieveReq struct {
		From ref
		Key  dht.Key
	}
	retrieveResp struct {
		Value any
		Found bool
	}
	removeReq struct {
		From ref
		Key  dht.Key
	}
	applyReq struct {
		From ref
		Key  dht.Key
		Fn   dht.ApplyFunc
	}
	applyResp struct {
		Value any
		Keep  bool
	}
	claimReq   struct{ Joiner ref }
	claimResp  struct{ Entries map[dht.Key]any }
	handoffReq struct{ Entries map[dht.Key]any }
)

func newNode(net *simnet.Network, addr simnet.NodeID) (*Node, error) {
	n := &Node{
		addr:  addr,
		id:    dht.HashString(string(addr)),
		net:   net,
		store: make(map[dht.Key]any),
	}
	if err := net.Register(addr, n); err != nil {
		return nil, fmt.Errorf("kademlia: register %q: %w", addr, err)
	}
	return n, nil
}

// Addr returns the node's network address.
func (n *Node) Addr() simnet.NodeID { return n.addr }

// ID returns the node's identifier.
func (n *Node) ID() dht.ID { return n.id }

func (n *Node) self() ref { return ref{Addr: n.addr, ID: n.id} }

// HandleRPC implements simnet.Handler. Every request carries its sender,
// which is opportunistically inserted into the routing table — Kademlia's
// self-maintaining state.
func (n *Node) HandleRPC(from simnet.NodeID, req any) (any, error) {
	switch r := req.(type) {
	case pingReq:
		n.observe(r.From)
		return n.self(), nil
	case findNodeReq:
		n.observe(r.From)
		return findNodeResp{Closest: n.closest(r.Target, K)}, nil
	case storeReq:
		n.observe(r.From)
		n.mu.Lock()
		defer n.mu.Unlock()
		n.store[r.Key] = r.Value
		return struct{}{}, nil
	case retrieveReq:
		n.observe(r.From)
		n.mu.Lock()
		defer n.mu.Unlock()
		v, ok := n.store[r.Key]
		return retrieveResp{Value: v, Found: ok}, nil
	case removeReq:
		n.observe(r.From)
		n.mu.Lock()
		defer n.mu.Unlock()
		delete(n.store, r.Key)
		return struct{}{}, nil
	case applyReq:
		n.observe(r.From)
		n.mu.Lock()
		defer n.mu.Unlock()
		cur, ok := n.store[r.Key]
		next, keep := r.Fn(cur, ok)
		if keep {
			n.store[r.Key] = next
		} else {
			delete(n.store, r.Key)
		}
		return applyResp{Value: next, Keep: keep}, nil
	case claimReq:
		return n.handleClaim(r.Joiner), nil
	case handoffReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		for k, v := range r.Entries {
			n.store[k] = v
		}
		return struct{}{}, nil
	default:
		return nil, fmt.Errorf("kademlia: %s: unknown request type %T", n.addr, req)
	}
}

// observe inserts a contact into its k-bucket (move-to-front on
// re-observation; drop when full, preferring long-lived contacts, per the
// paper's LRU policy without the ping-eviction refinement).
func (n *Node) observe(c ref) {
	if c.isZero() || c.Addr == n.addr {
		return
	}
	i := n.id.CommonPrefixDigits(c.ID, 1)
	if i >= dht.IDBits {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	bucket := n.buckets[i]
	for j, existing := range bucket {
		if existing.Addr == c.Addr {
			// Move to front (most recently seen).
			copy(bucket[1:j+1], bucket[:j])
			bucket[0] = c
			return
		}
	}
	if len(bucket) < K {
		n.buckets[i] = append([]ref{c}, bucket...)
	}
	// Bucket full: keep the existing (older, more reliable) contacts.
}

// evict removes a dead contact.
func (n *Node) evict(c ref) {
	i := n.id.CommonPrefixDigits(c.ID, 1)
	if i >= dht.IDBits {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	bucket := n.buckets[i]
	for j, existing := range bucket {
		if existing.Addr == c.Addr {
			n.buckets[i] = append(bucket[:j], bucket[j+1:]...)
			return
		}
	}
}

// closest returns up to count known contacts closest to target (including
// the node itself).
func (n *Node) closest(target dht.ID, count int) []ref {
	n.mu.Lock()
	cands := []ref{n.self()}
	for i := range n.buckets {
		cands = append(cands, n.buckets[i]...)
	}
	n.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool {
		return closerTo(target, cands[i].ID, cands[j].ID)
	})
	if len(cands) > count {
		cands = cands[:count]
	}
	return cands
}

// handleClaim yields the keys a joining peer now owns.
func (n *Node) handleClaim(joiner ref) claimResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[dht.Key]any)
	for k, v := range n.store {
		h := dht.HashKey(k)
		if closerTo(h, joiner.ID, n.id) {
			out[k] = v
			delete(n.store, k)
		}
	}
	return claimResp{Entries: out}
}

func (n *Node) storeSnapshot() map[dht.Key]any {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[dht.Key]any, len(n.store))
	for k, v := range n.store {
		out[k] = v
	}
	return out
}

// StoreLen returns the number of entries stored on the node.
func (n *Node) StoreLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.store)
}

// knownContacts returns every routing-table contact.
func (n *Node) knownContacts() []ref {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []ref
	for i := range n.buckets {
		out = append(out, n.buckets[i]...)
	}
	return out
}

// Config tunes an Overlay.
type Config struct {
	// MaxRounds bounds one iterative lookup; 0 means a generous default.
	MaxRounds int
	// Seed drives entry-point selection.
	Seed int64
	// Replication stores each key at the first Replication closest live
	// nodes — the original paper's "store at the k closest" rule. 0 or 1
	// means a single copy; the cap is K.
	Replication int
}

// Overlay manages a set of Kademlia nodes and exposes them as one dht.DHT.
type Overlay struct {
	net         *simnet.Network
	maxRounds   int
	replication int

	mu           sync.Mutex
	nodes        map[simnet.NodeID]*Node
	order        []simnet.NodeID
	rng          *rand.Rand
	lastMaintErr error

	// Lookups counts iterative lookups; Hops counts FIND_NODE RPCs issued.
	Lookups metrics.Counter
	Hops    metrics.Counter
	// MaintenanceErrors counts failed maintenance work — the bucket-refresh
	// self-lookups Stabilize issues. A failed refresh leaves routing-table
	// coverage stale until a later round; the counter surfaces what the old
	// fire-and-forget `_, _ = o.iterativeFindNode(...)` discarded.
	MaintenanceErrors metrics.Counter
}

var (
	_ dht.DHT        = (*Overlay)(nil)
	_ dht.Enumerator = (*Overlay)(nil)
)

// NewOverlay creates an empty overlay on net.
func NewOverlay(net *simnet.Network, cfg Config) *Overlay {
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64
	}
	replication := cfg.Replication
	if replication < 1 {
		replication = 1
	}
	if replication > K {
		replication = K
	}
	return &Overlay{
		net:         net,
		maxRounds:   maxRounds,
		replication: replication,
		nodes:       make(map[simnet.NodeID]*Node),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
	}
}

// AddNode creates and joins a node at addr: it seeds its routing table
// from a bootstrap contact, looks up its own identifier (backfilling
// buckets along the way), and claims the keys it now owns from its closest
// neighbours.
func (o *Overlay) AddNode(addr simnet.NodeID) (*Node, error) {
	o.mu.Lock()
	if _, dup := o.nodes[addr]; dup {
		o.mu.Unlock()
		return nil, fmt.Errorf("kademlia: node %q already in overlay", addr)
	}
	var bootstrap *Node
	for _, a := range o.order {
		bootstrap = o.nodes[a]
		break
	}
	o.mu.Unlock()

	n, err := newNode(o.net, addr)
	if err != nil {
		return nil, err
	}
	if bootstrap != nil {
		n.observe(bootstrap.self())
		// Self-lookup populates the routing table and announces us.
		closest, err := o.iterativeFindNode(n.self(), n.id)
		if err != nil {
			o.net.Deregister(addr)
			return nil, fmt.Errorf("kademlia: join %q: %w", addr, err)
		}
		for _, c := range closest {
			n.observe(c)
			claimAny, err := o.net.Call(n.addr, c.Addr, claimReq{Joiner: n.self()})
			if err != nil {
				continue
			}
			if claim, ok := claimAny.(claimResp); ok && len(claim.Entries) > 0 {
				n.mu.Lock()
				for k, v := range claim.Entries {
					n.store[k] = v
				}
				n.mu.Unlock()
			}
		}
	}
	o.mu.Lock()
	o.nodes[addr] = n
	o.order = append(o.order, addr)
	sort.Slice(o.order, func(i, j int) bool { return o.order[i] < o.order[j] })
	o.mu.Unlock()
	return n, nil
}

// RemoveNode gracefully departs a node, handing each key to the closest
// remaining contact.
func (o *Overlay) RemoveNode(addr simnet.NodeID) error {
	o.mu.Lock()
	n, ok := o.nodes[addr]
	if ok {
		delete(o.nodes, addr)
		o.order = removeAddr(o.order, addr)
	}
	last := len(o.nodes) == 0
	o.mu.Unlock()
	if !ok {
		return fmt.Errorf("kademlia: node %q not in overlay", addr)
	}
	defer o.net.Deregister(addr)
	if last {
		return nil
	}
	entries := n.storeSnapshot()
	if len(entries) == 0 {
		return nil
	}
	batches := make(map[simnet.NodeID]map[dht.Key]any)
	for k, v := range entries {
		// The key's next owner is the closest *remaining* node: run the
		// iterative lookup and skip ourselves in the result.
		closest, err := o.iterativeFindNode(n.self(), dht.HashKey(k))
		if err != nil {
			continue
		}
		var owner ref
		for _, c := range closest {
			if c.Addr == addr {
				continue
			}
			if _, err := o.net.Call(addr, c.Addr, pingReq{From: n.self()}); err == nil {
				owner = c
				break
			}
		}
		if owner.isZero() {
			continue
		}
		if batches[owner.Addr] == nil {
			batches[owner.Addr] = make(map[dht.Key]any)
		}
		batches[owner.Addr][k] = v
	}
	for dst, batch := range batches {
		if _, err := o.net.Call(addr, dst, handoffReq{Entries: batch}); err != nil {
			return fmt.Errorf("kademlia: leave %q: handoff to %q: %w", addr, dst, err)
		}
	}
	return nil
}

// CrashNode fails a node abruptly; its keys are lost and its contacts are
// evicted during Stabilize.
func (o *Overlay) CrashNode(addr simnet.NodeID) error {
	o.mu.Lock()
	_, ok := o.nodes[addr]
	if ok {
		delete(o.nodes, addr)
		o.order = removeAddr(o.order, addr)
	}
	o.mu.Unlock()
	if !ok {
		return fmt.Errorf("kademlia: node %q not in overlay", addr)
	}
	o.net.SetDown(addr, true)
	return nil
}

func removeAddr(order []simnet.NodeID, addr simnet.NodeID) []simnet.NodeID {
	out := order[:0]
	for _, a := range order {
		if a != addr {
			out = append(out, a)
		}
	}
	return out
}

// LastMaintenanceError returns the most recent failed maintenance lookup,
// or nil. Pair with MaintenanceErrors to see both rate and cause.
func (o *Overlay) LastMaintenanceError() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.lastMaintErr
}

// noteMaintenanceError records one failed maintenance operation.
func (o *Overlay) noteMaintenanceError(err error) {
	o.MaintenanceErrors.Inc()
	o.mu.Lock()
	o.lastMaintErr = err
	o.mu.Unlock()
}

// Stabilize runs bucket-refresh rounds: every node pings its contacts,
// evicts the dead, and re-looks-up its own identifier to heal coverage.
func (o *Overlay) Stabilize(rounds int) {
	for i := 0; i < rounds; i++ {
		for _, addr := range o.Nodes() {
			n, ok := o.nodeAt(addr)
			if !ok {
				continue
			}
			for _, c := range n.knownContacts() {
				if _, err := o.net.Call(n.addr, c.Addr, pingReq{From: n.self()}); err != nil {
					n.evict(c)
				}
			}
			// Refresh self-lookup: failures mean the node could not rebuild
			// bucket coverage this round. Count them; the next round retries.
			if _, err := o.iterativeFindNode(n.self(), n.id); err != nil {
				o.noteMaintenanceError(fmt.Errorf("kademlia: refresh find-node at %q: %w", n.addr, err))
			}
		}
	}
}

// Nodes returns the managed node addresses in sorted order.
func (o *Overlay) Nodes() []simnet.NodeID {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]simnet.NodeID(nil), o.order...)
}

// NumNodes returns the number of managed nodes.
func (o *Overlay) NumNodes() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.nodes)
}

func (o *Overlay) nodeAt(addr simnet.NodeID) (*Node, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	n, ok := o.nodes[addr]
	return n, ok
}

func (o *Overlay) pickEntry() (*Node, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.order) == 0 {
		return nil, dht.ErrNoPeers
	}
	return o.nodes[o.order[o.rng.Intn(len(o.order))]], nil
}

// iterativeFindNode runs Kademlia's iterative node lookup from the given
// origin, returning the K closest live contacts to target.
func (o *Overlay) iterativeFindNode(origin ref, target dht.ID) ([]ref, error) {
	type candidate struct {
		ref     ref
		queried bool
	}
	shortlist := map[simnet.NodeID]*candidate{
		origin.Addr: {ref: origin},
	}
	sortedList := func() []*candidate {
		out := make([]*candidate, 0, len(shortlist))
		for _, c := range shortlist {
			out = append(out, c)
		}
		sort.Slice(out, func(i, j int) bool {
			return closerTo(target, out[i].ref.ID, out[j].ref.ID)
		})
		return out
	}
	for round := 0; round < o.maxRounds; round++ {
		// Termination rule (per the paper): stop once the K closest known
		// candidates have all been queried — not merely when a round adds
		// nothing new, since an unqueried near candidate can still reveal
		// closer nodes.
		batch := make([]*candidate, 0, Alpha)
		top := sortedList()
		if len(top) > K {
			top = top[:K]
		}
		for _, c := range top {
			if len(batch) >= Alpha {
				break
			}
			if !c.queried {
				batch = append(batch, c)
			}
		}
		if len(batch) == 0 {
			break
		}
		for _, c := range batch {
			c.queried = true
			respAny, err := o.net.Call(clientAddr, c.ref.Addr, findNodeReq{From: origin, Target: target})
			o.Hops.Inc()
			if err != nil {
				delete(shortlist, c.ref.Addr)
				continue
			}
			resp, ok := respAny.(findNodeResp)
			if !ok {
				continue
			}
			for _, found := range resp.Closest {
				if _, seen := shortlist[found.Addr]; !seen {
					shortlist[found.Addr] = &candidate{ref: found}
				}
			}
		}
	}
	out := make([]ref, 0, K)
	for _, c := range sortedList() {
		if len(out) >= K {
			break
		}
		out = append(out, c.ref)
	}
	if len(out) == 0 {
		return nil, ErrLookupFailed
	}
	return out, nil
}

// ownersOf returns the first count live nodes closest to the target.
func (o *Overlay) ownersOf(target dht.ID, count int) ([]ref, error) {
	entry, err := o.pickEntry()
	if err != nil {
		return nil, err
	}
	closest, err := o.iterativeFindNode(entry.self(), target)
	if err != nil {
		return nil, err
	}
	o.Lookups.Inc()
	out := make([]ref, 0, count)
	for _, c := range closest {
		if len(out) >= count {
			break
		}
		if _, err := o.net.Call(clientAddr, c.Addr, pingReq{From: entry.self()}); err == nil {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no live contact near %v", ErrLookupFailed, target)
	}
	return out, nil
}

// route resolves the live owner (closest node) of a target identifier.
// origin, when non-nil, supplies the starting shortlist; otherwise a random
// managed node is used.
func (o *Overlay) route(target dht.ID, origin *Node) (ref, error) {
	entry := origin
	if entry == nil {
		var err error
		entry, err = o.pickEntry()
		if err != nil {
			return ref{}, err
		}
	}
	closest, err := o.iterativeFindNode(entry.self(), target)
	if err != nil {
		return ref{}, err
	}
	o.Lookups.Inc()
	for _, c := range closest {
		if _, err := o.net.Call(clientAddr, c.Addr, pingReq{From: entry.self()}); err == nil {
			return c, nil
		}
	}
	return ref{}, fmt.Errorf("%w: no live contact near %v", ErrLookupFailed, target)
}

// Put implements dht.DHT: the value is stored at the Replication closest
// live nodes (the paper's placement rule).
func (o *Overlay) Put(key dht.Key, value any) error {
	owners, err := o.ownersOf(dht.HashKey(key), o.replication)
	if err != nil {
		return err
	}
	for _, owner := range owners {
		if _, err := o.net.Call(clientAddr, owner.Addr, storeReq{Key: key, Value: value}); err != nil {
			return err
		}
	}
	return nil
}

// Get implements dht.DHT: replicas are consulted closest-first, so a value
// survives as long as any of its copies does.
func (o *Overlay) Get(key dht.Key) (any, bool, error) {
	owners, err := o.ownersOf(dht.HashKey(key), o.replication)
	if err != nil {
		return nil, false, err
	}
	for _, owner := range owners {
		respAny, err := o.net.Call(clientAddr, owner.Addr, retrieveReq{Key: key})
		if err != nil {
			continue
		}
		resp, ok := respAny.(retrieveResp)
		if !ok {
			return nil, false, fmt.Errorf("kademlia: bad retrieve response %T", respAny)
		}
		if resp.Found {
			return resp.Value, true, nil
		}
	}
	return nil, false, nil
}

// Remove implements dht.DHT: the key is removed from every replica.
func (o *Overlay) Remove(key dht.Key) error {
	owners, err := o.ownersOf(dht.HashKey(key), o.replication)
	if err != nil {
		return err
	}
	for _, owner := range owners {
		if _, err := o.net.Call(clientAddr, owner.Addr, removeReq{Key: key}); err != nil {
			return err
		}
	}
	return nil
}

// Apply implements dht.DHT: the transform runs at the closest live node
// and its result is pushed to the remaining replicas.
func (o *Overlay) Apply(key dht.Key, fn dht.ApplyFunc) error {
	owners, err := o.ownersOf(dht.HashKey(key), o.replication)
	if err != nil {
		return err
	}
	respAny, err := o.net.Call(clientAddr, owners[0].Addr, applyReq{Key: key, Fn: fn})
	if err != nil {
		return err
	}
	resp, ok := respAny.(applyResp)
	if !ok {
		return fmt.Errorf("kademlia: bad apply response %T", respAny)
	}
	for _, owner := range owners[1:] {
		if resp.Keep {
			if _, err := o.net.Call(clientAddr, owner.Addr, storeReq{Key: key, Value: resp.Value}); err != nil {
				return err
			}
		} else if _, err := o.net.Call(clientAddr, owner.Addr, removeReq{Key: key}); err != nil {
			return err
		}
	}
	return nil
}

// Owner implements dht.DHT.
func (o *Overlay) Owner(key dht.Key) (string, error) {
	owner, err := o.route(dht.HashKey(key), nil)
	if err != nil {
		return "", err
	}
	return string(owner.Addr), nil
}

// Range implements dht.Enumerator. With replication enabled the same key
// exists on several nodes; each key is reported once.
func (o *Overlay) Range(fn func(key dht.Key, value any) bool) error {
	seen := make(map[dht.Key]bool)
	for _, addr := range o.Nodes() {
		n, ok := o.nodeAt(addr)
		if !ok {
			continue
		}
		for k, v := range n.storeSnapshot() {
			if seen[k] {
				continue
			}
			seen[k] = true
			if !fn(k, v) {
				return nil
			}
		}
	}
	return nil
}

// MeanRouteLength returns the average FIND_NODE RPCs per completed lookup.
func (o *Overlay) MeanRouteLength() float64 {
	lookups := o.Lookups.Load()
	if lookups == 0 {
		return 0
	}
	return float64(o.Hops.Load()) / float64(lookups)
}
