// Package kademlia implements the Kademlia distributed hash table
// (Maymounkov & Mazières, IPTPS 2002) over any transport.Interface — the
// third pluggable substrate beneath the m-LIGHT index, alongside
// internal/chord and internal/pastry.
//
// Kademlia's distinguishing choices, all implemented here:
//
//   - the XOR metric: d(a, b) = a ⊕ b, which is symmetric and unifies
//     "distance to a node" and "distance to a key";
//   - k-buckets: one bucket of up to k contacts per shared-prefix length,
//     refreshed opportunistically — every inbound RPC's sender is inserted,
//     so routing state maintains itself from ordinary traffic;
//   - iterative lookups with concurrency α: the querier keeps a shortlist
//     of the closest known contacts and repeatedly asks the α best
//     unqueried ones for closer nodes until the shortlist converges.
//
// A key is owned by the node whose identifier has minimal XOR distance to
// hash(key). Joins backfill routing tables by looking up the joiner's own
// identifier; graceful leaves hand keys to the next-closest contact;
// crashes are repaired by the Overlay's Stabilize rounds (bucket refresh +
// dead-contact eviction).
//
// With Config.Replication = r > 1, writes follow the paper's placement
// rule — store at the r closest nodes — so reads survive up to r-1 crashed
// replicas. Replicas are refreshed on every write; this implementation
// omits the original's TTL-based republishing, so copies left behind by
// ownership changes persist until overwritten or removed.
package kademlia

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mlight/internal/dht"
	"mlight/internal/metrics"
	"mlight/internal/trace"
	"mlight/internal/transport"
)

const (
	// K is the bucket capacity (number of contacts remembered per
	// shared-prefix length). The original paper uses 20; 8 suits the
	// simulation scales here.
	K = 8
	// Alpha is the lookup concurrency factor.
	Alpha = 3
)

// clientAddr is the source address for overlay-initiated RPCs.
const clientAddr transport.NodeID = "kademlia-client"

// ErrLookupFailed is returned when an iterative lookup cannot complete. It
// is marked retryable: routing tables heal after Refresh, so a retry layer
// may usefully try again.
var ErrLookupFailed = dht.Retryable(errors.New("kademlia: lookup failed"))

// ErrRPCTimeout is returned when a single overlay RPC exceeds its adaptive
// deadline. It is retryable: a hung peer may answer the next attempt, and
// the iterative lookup treats a timed-out candidate exactly like an
// unreachable one.
var ErrRPCTimeout = dht.Retryable(errors.New("kademlia: rpc timed out"))

// minRPCTimeout floors the adaptive per-RPC deadline so a few fast early
// observations cannot starve slower links.
const minRPCTimeout = 200 * time.Millisecond

// rttEstimator maintains an EWMA of observed round-trip times and derives
// the adaptive per-RPC timeout from it (Salah/Roos/Strufe: timeouts sized
// from live RTT measurements, not a fixed worst case, are what make
// α-parallel lookups cut tail latency instead of stacking full-deadline
// waits). Before any observation the estimator answers with a
// seeded-deterministic fallback in [minRPCTimeout, 2·minRPCTimeout), so a
// fixed seed yields the same timeout schedule on every run.
type rttEstimator struct {
	mu       sync.Mutex
	ewma     time.Duration // 0 = nothing observed yet
	fallback time.Duration
}

// observe folds one measured round trip into the estimate (EWMA with
// smoothing 1/4, the classic TCP SRTT weighting).
func (e *rttEstimator) observe(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	e.mu.Lock()
	if e.ewma == 0 {
		e.ewma = rtt
	} else {
		e.ewma = (3*e.ewma + rtt) / 4
	}
	e.mu.Unlock()
}

// timeout returns the current per-RPC deadline: 4× the smoothed RTT,
// floored at minRPCTimeout, or the seeded fallback before any observation.
func (e *rttEstimator) timeout() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ewma == 0 {
		return e.fallback
	}
	t := 4 * e.ewma
	if t < minRPCTimeout {
		t = minRPCTimeout
	}
	return t
}

// maxDecayedRTT caps how far repeated timeouts can inflate the estimate
// (deadline cap: 4× this value).
const maxDecayedRTT = 2 * time.Second

// decay reacts to a timed-out RPC. Timeouts never produce an RTT sample,
// so without decay an estimator trained on a fast pre-restart peer keeps
// issuing the same too-tight deadline forever — every call to the slower
// recovered peer times out, and no observation can ever correct the
// profile. Doubling the estimate (capped) on each timeout breaks the loop
// deterministically: deadlines grow until calls start succeeding, and the
// successes then re-tighten the EWMA.
func (e *rttEstimator) decay() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ewma == 0 {
		// Pre-observation: start the backoff from the fallback deadline's
		// implied RTT so the next timeout() answers 2× the fallback.
		e.ewma = e.fallback / 2
		return
	}
	e.ewma *= 2
	if e.ewma > maxDecayedRTT {
		e.ewma = maxDecayedRTT
	}
}

// reset discards all observed history, returning the estimator to its
// seeded pre-observation fallback — the clean-slate hook for tests and for
// operators who know the network just changed under the estimator.
func (e *rttEstimator) reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ewma = 0
}

// ref names a remote node.
type ref struct {
	Addr transport.NodeID
	ID   dht.ID
}

func (r ref) isZero() bool { return r.Addr == "" }

// xorDist returns the XOR distance between two identifiers.
func xorDist(a, b dht.ID) dht.ID {
	var out dht.ID
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// closerTo reports whether a is strictly closer to target than b in the
// XOR metric, with ties (only possible when a == b) broken false.
func closerTo(target, a, b dht.ID) bool {
	return xorDist(a, target).Cmp(xorDist(b, target)) < 0
}

// Node is one Kademlia peer.
type Node struct {
	addr transport.NodeID
	id   dht.ID
	net  transport.Interface

	mu      sync.Mutex
	buckets [dht.IDBits][]ref // buckets[i]: contacts sharing exactly i prefix bits
	store   map[dht.Key]any
	// vers tracks per-key mutation versions for the wire-safe remote apply
	// protocol (see dht.VersionedStore).
	vers dht.VersionedStore
}

// rpc request/response types.
type (
	pingReq     struct{ From ref }
	findNodeReq struct {
		From   ref
		Target dht.ID
	}
	findNodeResp struct{ Closest []ref }
	storeReq     struct {
		From  ref
		Key   dht.Key
		Value any
	}
	retrieveReq struct {
		From ref
		Key  dht.Key
	}
	retrieveResp struct {
		Value any
		Found bool
	}
	removeReq struct {
		From ref
		Key  dht.Key
	}
	applyReq struct {
		From ref
		Key  dht.Key
		Fn   dht.ApplyFunc
	}
	applyResp struct {
		Value any
		Keep  bool
	}
	claimReq   struct{ Joiner ref }
	claimResp  struct{ Entries map[dht.Key]any }
	handoffReq struct{ Entries map[dht.Key]any }
)

func newNode(net transport.Interface, addr transport.NodeID) (*Node, error) {
	n := &Node{
		addr:  addr,
		id:    dht.HashString(string(addr)),
		net:   net,
		store: make(map[dht.Key]any),
	}
	if err := net.Register(addr, n); err != nil {
		return nil, fmt.Errorf("kademlia: register %q: %w", addr, err)
	}
	return n, nil
}

// OnCrash implements transport.Crasher: a hard crash destroys the node's
// volatile memory — stored keys and the entire routing table. Identity
// (address, XOR position) survives so the node can restart and rejoin as
// the same peer with empty buckets.
func (n *Node) OnCrash() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.store = make(map[dht.Key]any)
	n.buckets = [dht.IDBits][]ref{}
	n.vers.Reset()
}

// Addr returns the node's network address.
func (n *Node) Addr() transport.NodeID { return n.addr }

// ID returns the node's identifier.
func (n *Node) ID() dht.ID { return n.id }

func (n *Node) self() ref { return ref{Addr: n.addr, ID: n.id} }

// HandleRPC implements transport.Handler. Every request carries its sender,
// which is opportunistically inserted into the routing table — Kademlia's
// self-maintaining state.
func (n *Node) HandleRPC(from transport.NodeID, req any) (any, error) {
	switch r := req.(type) {
	case pingReq:
		n.observe(r.From)
		return n.self(), nil
	case findNodeReq:
		n.observe(r.From)
		return findNodeResp{Closest: n.closest(r.Target, K)}, nil
	case storeReq:
		n.observe(r.From)
		n.mu.Lock()
		defer n.mu.Unlock()
		n.store[r.Key] = r.Value
		n.vers.Bump(r.Key)
		return struct{}{}, nil
	case retrieveReq:
		n.observe(r.From)
		n.mu.Lock()
		defer n.mu.Unlock()
		v, ok := n.store[r.Key]
		return retrieveResp{Value: v, Found: ok}, nil
	case removeReq:
		n.observe(r.From)
		n.mu.Lock()
		defer n.mu.Unlock()
		delete(n.store, r.Key)
		n.vers.Bump(r.Key)
		return struct{}{}, nil
	case applyReq:
		n.observe(r.From)
		n.mu.Lock()
		defer n.mu.Unlock()
		cur, ok := n.store[r.Key]
		next, keep := r.Fn(cur, ok)
		if keep {
			n.store[r.Key] = next
		} else {
			delete(n.store, r.Key)
		}
		n.vers.Bump(r.Key)
		return applyResp{Value: next, Keep: keep}, nil
	case dht.GetVerReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		v, ok := n.store[r.Key]
		return n.vers.Snapshot(r, v, ok), nil
	case dht.CASReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		cur, ok := n.store[r.Key]
		resp, apply := n.vers.CAS(r, cur, ok)
		if apply {
			if r.Keep {
				n.store[r.Key] = r.Value
			} else {
				delete(n.store, r.Key)
			}
		}
		return resp, nil
	case claimReq:
		return n.handleClaim(r.Joiner), nil
	case handoffReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		for k, v := range r.Entries {
			n.store[k] = v
			n.vers.Bump(k)
		}
		return struct{}{}, nil
	default:
		return nil, fmt.Errorf("kademlia: %s: unknown request type %T", n.addr, req)
	}
}

// observe inserts a contact into its k-bucket (move-to-front on
// re-observation; drop when full, preferring long-lived contacts, per the
// paper's LRU policy without the ping-eviction refinement).
func (n *Node) observe(c ref) {
	if c.isZero() || c.Addr == n.addr {
		return
	}
	i := n.id.CommonPrefixDigits(c.ID, 1)
	if i >= dht.IDBits {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	bucket := n.buckets[i]
	for j, existing := range bucket {
		if existing.Addr == c.Addr {
			// Move to front (most recently seen).
			copy(bucket[1:j+1], bucket[:j])
			bucket[0] = c
			return
		}
	}
	if len(bucket) < K {
		n.buckets[i] = append([]ref{c}, bucket...)
	}
	// Bucket full: keep the existing (older, more reliable) contacts.
}

// evict removes a dead contact.
func (n *Node) evict(c ref) {
	i := n.id.CommonPrefixDigits(c.ID, 1)
	if i >= dht.IDBits {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	bucket := n.buckets[i]
	for j, existing := range bucket {
		if existing.Addr == c.Addr {
			n.buckets[i] = append(bucket[:j], bucket[j+1:]...)
			return
		}
	}
}

// closest returns up to count known contacts closest to target (including
// the node itself).
func (n *Node) closest(target dht.ID, count int) []ref {
	n.mu.Lock()
	cands := []ref{n.self()}
	for i := range n.buckets {
		cands = append(cands, n.buckets[i]...)
	}
	n.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool {
		return closerTo(target, cands[i].ID, cands[j].ID)
	})
	if len(cands) > count {
		cands = cands[:count]
	}
	return cands
}

// handleClaim yields the keys a joining peer now owns.
func (n *Node) handleClaim(joiner ref) claimResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[dht.Key]any)
	for k, v := range n.store {
		h := dht.HashKey(k)
		if closerTo(h, joiner.ID, n.id) {
			out[k] = v
			delete(n.store, k)
			n.vers.Bump(k)
		}
	}
	return claimResp{Entries: out}
}

func (n *Node) storeSnapshot() map[dht.Key]any {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[dht.Key]any, len(n.store))
	for k, v := range n.store {
		out[k] = v
	}
	return out
}

// StoreLen returns the number of entries stored on the node.
func (n *Node) StoreLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.store)
}

// knownContacts returns every routing-table contact.
func (n *Node) knownContacts() []ref {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []ref
	for i := range n.buckets {
		out = append(out, n.buckets[i]...)
	}
	return out
}

// Config tunes an Overlay.
type Config struct {
	// MaxRounds bounds one iterative lookup; 0 means a generous default.
	MaxRounds int
	// Seed drives entry-point selection and the pre-observation RPC
	// timeout fallback.
	Seed int64
	// Replication stores each key at the first Replication closest live
	// nodes — the original paper's "store at the k closest" rule. 0 or 1
	// means a single copy; the cap is K.
	Replication int
	// Alpha overrides the lookup concurrency factor; 0 means the package
	// default Alpha. It bounds how many candidate RPCs one lookup round
	// issues concurrently.
	Alpha int
	// Serial forces the historical one-RPC-at-a-time lookup and
	// liveness-probe path. It is kept as the before/after yardstick for
	// the α-parallel rewrite: accounting (Hops, Lookups) is identical in
	// both modes for a fixed seed, only wall-clock and ping scheduling
	// differ (serial liveness probing early-exits after the first count
	// live contacts; parallel probing pings all candidates at once and
	// adjudicates in closest order).
	Serial bool
	// RPCTimeout fixes the per-RPC deadline; 0 means adaptive (4× the
	// EWMA of observed round trips, floored at 200ms, with a
	// seeded-deterministic fallback before the first observation).
	RPCTimeout time.Duration
	// Seeds names remote entry points for lookups when the overlay manages
	// no local node (a client dialing a daemon cluster) or its first local
	// node must join an overlay hosted elsewhere. Over TCP a seed is a
	// dialable address; its identifier is the hash of that address.
	Seeds []transport.NodeID
}

// Overlay manages a set of Kademlia nodes and exposes them as one dht.DHT.
type Overlay struct {
	net         transport.Interface
	maxRounds   int
	replication int
	alpha       int
	serial      bool
	rpcTimeout  time.Duration
	rtt         rttEstimator

	mu    sync.Mutex
	nodes map[transport.NodeID]*Node
	order []transport.NodeID
	// crashed retains crashed peers' node objects (volatile state already
	// wiped) so RestartNode can revive them under the same identity.
	crashed      map[transport.NodeID]*Node
	seeds        []ref
	rng          *rand.Rand
	lastMaintErr error
	lastPingErr  error
	tracer       *trace.Collector

	// Lookups counts iterative lookups; Hops counts FIND_NODE RPCs issued.
	Lookups metrics.Counter
	Hops    metrics.Counter
	// Pings counts liveness-probe RPCs; PingFailures counts the ones that
	// failed (dead or unreachable contact). The lookup entry node vouches
	// for itself and is never pinged, so Pings only meters real network
	// probes.
	Pings        metrics.Counter
	PingFailures metrics.Counter
	// LookupTimeouts counts overlay RPCs cut off by the adaptive deadline.
	LookupTimeouts metrics.Counter
	// LookupInFlight is the high-water mark of concurrently outstanding
	// FIND_NODE RPCs within one lookup round.
	LookupInFlight metrics.Gauge
	// MaintenanceErrors counts failed maintenance work — the bucket-refresh
	// self-lookups Stabilize issues. A failed refresh leaves routing-table
	// coverage stale until a later round; the counter surfaces what the old
	// fire-and-forget `_, _ = o.iterativeFindNode(...)` discarded.
	MaintenanceErrors metrics.Counter
}

var (
	_ dht.DHT        = (*Overlay)(nil)
	_ dht.Enumerator = (*Overlay)(nil)
)

// NewOverlay creates an empty overlay on net.
func NewOverlay(net transport.Interface, cfg Config) *Overlay {
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64
	}
	replication := cfg.Replication
	if replication < 1 {
		replication = 1
	}
	if replication > K {
		replication = K
	}
	alpha := cfg.Alpha
	if alpha < 1 {
		alpha = Alpha
	}
	// The fallback timeout draws from its own derived source so the
	// entry-selection stream stays byte-identical to earlier versions for
	// a given seed.
	fallbackRng := rand.New(rand.NewSource(cfg.Seed ^ 0x746d656f75747331))
	seeds := make([]ref, 0, len(cfg.Seeds))
	for _, s := range cfg.Seeds {
		seeds = append(seeds, ref{Addr: s, ID: dht.HashString(string(s))})
	}
	return &Overlay{
		net:         net,
		seeds:       seeds,
		maxRounds:   maxRounds,
		replication: replication,
		alpha:       alpha,
		serial:      cfg.Serial,
		rpcTimeout:  cfg.RPCTimeout,
		rtt: rttEstimator{
			fallback: minRPCTimeout + time.Duration(fallbackRng.Int63n(int64(minRPCTimeout))),
		},
		nodes:   make(map[transport.NodeID]*Node),
		crashed: make(map[transport.NodeID]*Node),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
}

// SetTracer attaches a trace collector: every iterative lookup is recorded
// as a KindLookup span with one KindRound child per α-batch. A nil
// collector, the default, records nothing.
func (o *Overlay) SetTracer(c *trace.Collector) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.tracer = c
}

func (o *Overlay) getTracer() *trace.Collector {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.tracer
}

// AddNode creates and joins a node at addr: it seeds its routing table
// from a bootstrap contact, looks up its own identifier (backfilling
// buckets along the way), and claims the keys it now owns from its closest
// neighbours.
func (o *Overlay) AddNode(addr transport.NodeID) (*Node, error) {
	o.mu.Lock()
	if _, dup := o.nodes[addr]; dup {
		o.mu.Unlock()
		return nil, fmt.Errorf("kademlia: node %q already in overlay", addr)
	}
	bootstrap, haveBootstrap := o.bootstrapRefLocked()
	o.mu.Unlock()

	n, err := newNode(o.net, addr)
	if err != nil {
		return nil, err
	}
	if haveBootstrap {
		if err := o.join(n, bootstrap); err != nil {
			o.net.Deregister(addr)
			return nil, err
		}
	}
	o.mu.Lock()
	o.nodes[addr] = n
	o.order = append(o.order, addr)
	sort.Slice(o.order, func(i, j int) bool { return o.order[i] < o.order[j] })
	o.mu.Unlock()
	return n, nil
}

// bootstrapRefLocked picks the contact a joining node seeds its routing
// table from: any managed node, else a configured seed (an overlay hosted
// by other processes). Callers hold o.mu.
func (o *Overlay) bootstrapRefLocked() (ref, bool) {
	for _, a := range o.order {
		return o.nodes[a].self(), true
	}
	if len(o.seeds) > 0 {
		return o.seeds[o.rng.Intn(len(o.seeds))], true
	}
	return ref{}, false
}

// join bootstraps n into the overlay: seed the routing table from the
// bootstrap contact, self-lookup to backfill buckets and announce, then
// claim the keys n now owns from its closest neighbours.
func (o *Overlay) join(n *Node, bootstrap ref) error {
	n.observe(bootstrap)
	// Self-lookup populates the routing table and announces us.
	closest, err := o.iterativeFindNode(n.self(), n.id)
	if err != nil {
		return fmt.Errorf("kademlia: join %q: %w", n.addr, err)
	}
	for _, c := range closest {
		n.observe(c)
		claimAny, err := o.net.Call(n.addr, c.Addr, claimReq{Joiner: n.self()})
		if err != nil {
			continue
		}
		if claim, ok := claimAny.(claimResp); ok && len(claim.Entries) > 0 {
			n.mu.Lock()
			for k, v := range claim.Entries {
				n.store[k] = v
				n.vers.Bump(k)
			}
			n.mu.Unlock()
		}
	}
	return nil
}

// RemoveNode gracefully departs a node, handing each key to the closest
// remaining contact.
func (o *Overlay) RemoveNode(addr transport.NodeID) error {
	o.mu.Lock()
	n, ok := o.nodes[addr]
	if ok {
		delete(o.nodes, addr)
		o.order = removeAddr(o.order, addr)
	}
	o.mu.Unlock()
	if !ok {
		return fmt.Errorf("kademlia: node %q not in overlay", addr)
	}
	defer o.net.Deregister(addr)
	// Even the process's last local node tries to hand off — in a daemon
	// deployment its routing table names remote peers; in a true singleton
	// every per-key lookup below finds nobody and skips.
	entries := n.storeSnapshot()
	if len(entries) == 0 {
		return nil
	}
	batches := make(map[transport.NodeID]map[dht.Key]any)
	for k, v := range entries {
		// The key's next owner is the closest *remaining* node: run the
		// iterative lookup and skip ourselves in the result.
		closest, err := o.iterativeFindNode(n.self(), dht.HashKey(k))
		if err != nil {
			continue
		}
		var owner ref
		for _, c := range closest {
			if c.Addr == addr {
				continue
			}
			if _, err := o.net.Call(addr, c.Addr, pingReq{From: n.self()}); err == nil {
				owner = c
				break
			}
		}
		if owner.isZero() {
			continue
		}
		if batches[owner.Addr] == nil {
			batches[owner.Addr] = make(map[dht.Key]any)
		}
		batches[owner.Addr][k] = v
	}
	for dst, batch := range batches {
		if _, err := o.net.Call(addr, dst, handoffReq{Entries: batch}); err != nil {
			return fmt.Errorf("kademlia: leave %q: handoff to %q: %w", addr, dst, err)
		}
	}
	return nil
}

// CrashNode fails a node abruptly: its volatile state — stored keys and
// routing table — is destroyed (transport Crash → Node.OnCrash), not merely
// hidden behind a partition. Its contacts are evicted from peers during
// Stabilize; RestartNode can later revive the identity.
func (o *Overlay) CrashNode(addr transport.NodeID) error {
	o.mu.Lock()
	n, ok := o.nodes[addr]
	if ok {
		delete(o.nodes, addr)
		o.order = removeAddr(o.order, addr)
		o.crashed[addr] = n
	}
	o.mu.Unlock()
	if !ok {
		return fmt.Errorf("kademlia: node %q not in overlay", addr)
	}
	return o.net.Crash(addr)
}

// RestartNode revives a crashed node under its old identity: the network
// registration comes back up and the node re-bootstraps from a live peer —
// self-lookup to rebuild its buckets, then claims back the keys it owns
// from its closest neighbours.
func (o *Overlay) RestartNode(addr transport.NodeID) (*Node, error) {
	o.mu.Lock()
	n, ok := o.crashed[addr]
	if ok {
		delete(o.crashed, addr)
	}
	bootstrap, haveBootstrap := o.bootstrapRefLocked()
	o.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("kademlia: node %q is not crashed", addr)
	}
	if err := o.net.Restart(addr); err != nil {
		o.mu.Lock()
		o.crashed[addr] = n
		o.mu.Unlock()
		return nil, err
	}
	if haveBootstrap {
		if err := o.join(n, bootstrap); err != nil {
			// Rejoin failed: put the node back down so a later restart
			// attempt starts clean.
			o.net.SetDown(addr, true)
			o.mu.Lock()
			o.crashed[addr] = n
			o.mu.Unlock()
			return nil, err
		}
	}
	o.mu.Lock()
	o.nodes[addr] = n
	o.order = append(o.order, addr)
	sort.Slice(o.order, func(i, j int) bool { return o.order[i] < o.order[j] })
	o.mu.Unlock()
	return n, nil
}

// CrashedNodes returns the addresses of crashed, restartable nodes in
// sorted order — the churn scheduler's restart candidates.
func (o *Overlay) CrashedNodes() []transport.NodeID {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]transport.NodeID, 0, len(o.crashed))
	for addr := range o.crashed {
		out = append(out, addr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RPCDeadline exposes the current adaptive per-RPC deadline, for tests and
// diagnostics.
func (o *Overlay) RPCDeadline() time.Duration {
	if o.rpcTimeout > 0 {
		return o.rpcTimeout
	}
	return o.rtt.timeout()
}

// ResetRTTEstimate discards the adaptive timeout's observed history,
// returning it to the seeded pre-observation fallback. Use when the
// network demonstrably changed under the estimator (e.g. a latency model
// swap in an experiment); routine restarts do not need it — the decay path
// already un-sticks a stale-low profile.
func (o *Overlay) ResetRTTEstimate() { o.rtt.reset() }

func removeAddr(order []transport.NodeID, addr transport.NodeID) []transport.NodeID {
	out := order[:0]
	for _, a := range order {
		if a != addr {
			out = append(out, a)
		}
	}
	return out
}

// LastMaintenanceError returns the most recent failed maintenance lookup,
// or nil. Pair with MaintenanceErrors to see both rate and cause.
func (o *Overlay) LastMaintenanceError() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.lastMaintErr
}

// noteMaintenanceError records one failed maintenance operation.
func (o *Overlay) noteMaintenanceError(err error) {
	o.MaintenanceErrors.Inc()
	o.mu.Lock()
	o.lastMaintErr = err
	o.mu.Unlock()
}

// Stabilize runs bucket-refresh rounds: every node pings its contacts,
// evicts the dead, and re-looks-up its own identifier to heal coverage.
// Each round ends with a replica-repair pass (the paper's periodic
// republish), which is what makes data placement reconverge after churn.
func (o *Overlay) Stabilize(rounds int) {
	for i := 0; i < rounds; i++ {
		for _, addr := range o.Nodes() {
			n, ok := o.nodeAt(addr)
			if !ok {
				continue
			}
			for _, c := range n.knownContacts() {
				if _, err := o.net.Call(n.addr, c.Addr, pingReq{From: n.self()}); err != nil {
					n.evict(c)
				}
			}
			// Refresh self-lookup: failures mean the node could not rebuild
			// bucket coverage this round. Count them; the next round retries.
			if _, err := o.iterativeFindNode(n.self(), n.id); err != nil {
				o.noteMaintenanceError(fmt.Errorf("kademlia: refresh find-node at %q: %w", n.addr, err))
			}
		}
		o.repairReplicas()
	}
}

// repairReplicas is the data half of one Stabilize round — the periodic
// republish of the original paper, which this overlay previously lacked
// entirely: joins erode replica sets (a joiner's claim consumes every
// existing copy it is closer than), and crashes silently thin them, so
// without republish a churn schedule steadily walks keys down to one copy
// and then to zero. Each round, for every key, the holder closest to the
// key pushes its value to the key's Replication closest live nodes, and
// every holder outside that target set drops its copy (placement GC —
// stale holders otherwise serve outdated values through Range and
// resurrect deletes).
//
// The closest holder is authoritative. Under the crash model used here
// that is sound: a crash wipes the node's store, so a copy can only be
// stale if its holder silently left and re-entered the target set with old
// memory intact — a partition, not a crash. Deployments that heal long
// partitions need per-record versioning on top (sequence numbers in the
// original paper); the management plane here never re-admits a partitioned
// node's store without a claim cycle.
func (o *Overlay) repairReplicas() {
	addrs := o.Nodes()
	live := make([]*Node, 0, len(addrs))
	for _, addr := range addrs {
		if n, ok := o.nodeAt(addr); ok {
			live = append(live, n)
		}
	}
	if len(live) == 0 {
		return
	}
	type holding struct {
		n *Node
		v any
	}
	holders := make(map[dht.Key][]holding)
	for _, n := range live {
		for k, v := range n.storeSnapshot() {
			holders[k] = append(holders[k], holding{n: n, v: v})
		}
	}
	keys := make([]dht.Key, 0, len(holders))
	for k := range holders {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	for _, k := range keys {
		h := dht.HashKey(k)
		hs := holders[k]
		// holders listed in live order (sorted addresses); pick the one
		// closest to the key as the authoritative source.
		src := hs[0]
		for _, cand := range hs[1:] {
			if closerTo(h, cand.n.id, src.n.id) {
				src = cand
			}
		}
		targets := append([]*Node(nil), live...)
		sort.Slice(targets, func(i, j int) bool { return closerTo(h, targets[i].id, targets[j].id) })
		r := o.replication
		if r < 1 {
			r = 1
		}
		if len(targets) > r {
			targets = targets[:r]
		}
		inTargets := make(map[transport.NodeID]bool, len(targets))
		for _, tgt := range targets {
			inTargets[tgt.addr] = true
			if tgt.addr == src.n.addr {
				continue
			}
			if _, err := o.net.Call(src.n.addr, tgt.addr, storeReq{From: src.n.self(), Key: k, Value: src.v}); err != nil {
				o.noteMaintenanceError(fmt.Errorf("kademlia: republish %q from %q to %q: %w", k, src.n.addr, tgt.addr, err))
			}
		}
		for _, hold := range hs {
			if !inTargets[hold.n.addr] {
				hold.n.mu.Lock()
				delete(hold.n.store, k)
				hold.n.vers.Bump(k)
				hold.n.mu.Unlock()
			}
		}
	}
}

// Nodes returns the managed node addresses in sorted order.
func (o *Overlay) Nodes() []transport.NodeID {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]transport.NodeID(nil), o.order...)
}

// NumNodes returns the number of managed nodes.
func (o *Overlay) NumNodes() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.nodes)
}

func (o *Overlay) nodeAt(addr transport.NodeID) (*Node, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	n, ok := o.nodes[addr]
	return n, ok
}

func (o *Overlay) pickEntry() (*Node, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.order) == 0 {
		return nil, dht.ErrNoPeers
	}
	return o.nodes[o.order[o.rng.Intn(len(o.order))]], nil
}

// pickEntryRef selects a lookup entry point: a live managed node when any
// exist, otherwise a configured seed (client/daemon mode).
func (o *Overlay) pickEntryRef() (ref, error) {
	if n, err := o.pickEntry(); err == nil {
		return n.self(), nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.seeds) == 0 {
		return ref{}, dht.ErrNoPeers
	}
	return o.seeds[o.rng.Intn(len(o.seeds))], nil
}

// timedCall issues one overlay RPC under the adaptive per-RPC deadline. On
// success the modeled round trip feeds the RTT estimator, tightening future
// deadlines. A timeout abandons the in-flight call (its goroutine drains
// into a buffered channel) and returns ErrRPCTimeout.
func (o *Overlay) timedCall(to transport.NodeID, req any) (any, error) {
	timeout := o.rpcTimeout
	if timeout <= 0 {
		timeout = o.rtt.timeout()
	}
	type result struct {
		resp any
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := o.net.Call(clientAddr, to, req)
		ch <- result{resp, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		if r.err == nil {
			o.rtt.observe(o.net.OneWayLatency(clientAddr, to) + o.net.OneWayLatency(to, clientAddr))
		}
		return r.resp, r.err
	case <-timer.C:
		o.LookupTimeouts.Inc()
		if o.rpcTimeout <= 0 {
			// Adaptive mode: widen the next deadline so a stale-low RTT
			// profile cannot time out every future call indefinitely.
			o.rtt.decay()
		}
		return nil, fmt.Errorf("%w: %q after %v", ErrRPCTimeout, to, timeout)
	}
}

// findOutcome is the result of one FIND_NODE RPC in a lookup round. A
// malformed response (failed findNodeResp assertion) is folded into err so
// the merge step treats it exactly like an unreachable contact — it must
// not keep its slot in the shortlist.
type findOutcome struct {
	resp findNodeResp
	err  error
}

// findNodeRound issues the round's batch of FIND_NODE RPCs — concurrently
// up to α in the default mode, one at a time under Config.Serial — and
// returns outcomes positionally aligned with batch. Hops accounting happens
// up front (one per issued RPC, identical in both modes), and results are
// merged by the caller in batch order, so the counters and the shortlist
// evolution for a fixed seed do not depend on goroutine scheduling.
func (o *Overlay) findNodeRound(origin ref, target dht.ID, batch []ref) []findOutcome {
	o.Hops.Add(int64(len(batch)))
	out := make([]findOutcome, len(batch))
	if o.serial || len(batch) == 1 {
		o.LookupInFlight.Observe(1)
		for i, c := range batch {
			out[i] = o.findNodeOne(origin, target, c)
		}
		return out
	}
	o.LookupInFlight.Observe(int64(len(batch)))
	var wg sync.WaitGroup
	for i, c := range batch {
		wg.Add(1)
		go func(i int, c ref) {
			defer wg.Done()
			out[i] = o.findNodeOne(origin, target, c)
		}(i, c)
	}
	wg.Wait()
	return out
}

func (o *Overlay) findNodeOne(origin ref, target dht.ID, c ref) findOutcome {
	respAny, err := o.timedCall(c.Addr, findNodeReq{From: origin, Target: target})
	if err != nil {
		return findOutcome{err: err}
	}
	resp, ok := respAny.(findNodeResp)
	if !ok {
		return findOutcome{err: fmt.Errorf("kademlia: bad find-node response %T from %q", respAny, c.Addr)}
	}
	return findOutcome{resp: resp}
}

// iterativeFindNode runs Kademlia's iterative node lookup from the given
// origin, returning the K closest live contacts to target. Each round
// queries the α best unqueried candidates concurrently (findNodeRound);
// outcomes are merged in batch order, so for a fixed seed the rounds, the
// Hops counter, and the returned contacts are reproducible regardless of
// how the concurrent RPCs interleave.
func (o *Overlay) iterativeFindNode(origin ref, target dht.ID) ([]ref, error) {
	tracer := o.getTracer()
	var span trace.SpanID
	if tracer != nil {
		span = tracer.Begin(0, trace.KindLookup, "kademlia find-node",
			trace.Int("alpha", int64(o.alpha)))
	}
	type candidate struct {
		ref     ref
		queried bool
	}
	shortlist := map[transport.NodeID]*candidate{
		origin.Addr: {ref: origin},
	}
	sortedList := func() []*candidate {
		out := make([]*candidate, 0, len(shortlist))
		for _, c := range shortlist {
			out = append(out, c)
		}
		sort.Slice(out, func(i, j int) bool {
			return closerTo(target, out[i].ref.ID, out[j].ref.ID)
		})
		return out
	}
	rounds := 0
	for ; rounds < o.maxRounds; rounds++ {
		// Termination rule (per the paper): stop once the K closest known
		// candidates have all been queried — not merely when a round adds
		// nothing new, since an unqueried near candidate can still reveal
		// closer nodes.
		batch := make([]*candidate, 0, o.alpha)
		top := sortedList()
		if len(top) > K {
			top = top[:K]
		}
		for _, c := range top {
			if len(batch) >= o.alpha {
				break
			}
			if !c.queried {
				batch = append(batch, c)
			}
		}
		if len(batch) == 0 {
			break
		}
		refs := make([]ref, len(batch))
		for i, c := range batch {
			c.queried = true
			refs[i] = c.ref
		}
		var roundSpan trace.SpanID
		if tracer != nil {
			roundSpan = tracer.Begin(span, trace.KindRound, "find-node round",
				trace.Int("batch", int64(len(refs))))
		}
		outcomes := o.findNodeRound(origin, target, refs)
		failed := 0
		for i, oc := range outcomes {
			if oc.err != nil {
				// Call failure, timeout, or malformed response: the
				// contact is useless — drop it from the shortlist so it
				// neither occupies a top-K slot nor appears in the result.
				delete(shortlist, refs[i].Addr)
				failed++
				continue
			}
			for _, found := range oc.resp.Closest {
				if _, seen := shortlist[found.Addr]; !seen {
					shortlist[found.Addr] = &candidate{ref: found}
				}
			}
		}
		if tracer != nil {
			tracer.End(roundSpan, trace.Int("failed", int64(failed)))
		}
	}
	out := make([]ref, 0, K)
	for _, c := range sortedList() {
		if len(out) >= K {
			break
		}
		out = append(out, c.ref)
	}
	if tracer != nil {
		tracer.End(span, trace.Int("rounds", int64(rounds)), trace.Int("found", int64(len(out))))
	}
	if len(out) == 0 {
		return nil, ErrLookupFailed
	}
	return out, nil
}

// LastPingError returns the most recent failed liveness probe, or nil. Pair
// with PingFailures to see both rate and cause.
func (o *Overlay) LastPingError() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.lastPingErr
}

// notePingError records one failed liveness probe.
func (o *Overlay) notePingError(err error) {
	o.PingFailures.Inc()
	o.mu.Lock()
	o.lastPingErr = err
	o.mu.Unlock()
}

// pingContact probes one contact for liveness. The lookup entry node just
// answered the iterative lookup, so it vouches for itself without paying a
// ping RPC (the old path pinged it redundantly). Failures are metered and
// surfaced via LastPingError rather than silently discarded.
func (o *Overlay) pingContact(entry ref, c ref) bool {
	if c.Addr == entry.Addr {
		return true
	}
	o.Pings.Inc()
	if _, err := o.timedCall(c.Addr, pingReq{From: entry}); err != nil {
		o.notePingError(fmt.Errorf("kademlia: liveness ping %q: %w", c.Addr, err))
		return false
	}
	return true
}

// probeLive returns the first count live contacts from closest, preserving
// closest-first order. The default mode pings every candidate concurrently
// and then adjudicates in closest order — first-count-live wins, and the
// winner set is deterministic because selection ignores arrival order.
// Under Config.Serial it reproduces the historical behaviour: ping one at a
// time, stop at count live (fewer Pings, sum-of-RTT wall-clock).
func (o *Overlay) probeLive(entry ref, closest []ref, count int) []ref {
	out := make([]ref, 0, count)
	if o.serial {
		for _, c := range closest {
			if len(out) >= count {
				break
			}
			if o.pingContact(entry, c) {
				out = append(out, c)
			}
		}
		return out
	}
	live := make([]bool, len(closest))
	var wg sync.WaitGroup
	for i, c := range closest {
		wg.Add(1)
		go func(i int, c ref) {
			defer wg.Done()
			live[i] = o.pingContact(entry, c)
		}(i, c)
	}
	wg.Wait()
	for i, c := range closest {
		if len(out) >= count {
			break
		}
		if live[i] {
			out = append(out, c)
		}
	}
	return out
}

// ownersOf returns the first count live nodes closest to the target.
func (o *Overlay) ownersOf(target dht.ID, count int) ([]ref, error) {
	entry, err := o.pickEntryRef()
	if err != nil {
		return nil, err
	}
	closest, err := o.iterativeFindNode(entry, target)
	if err != nil {
		return nil, err
	}
	o.Lookups.Inc()
	out := o.probeLive(entry, closest, count)
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no live contact near %v", ErrLookupFailed, target)
	}
	return out, nil
}

// route resolves the live owner (closest node) of a target identifier.
// origin, when non-nil, supplies the starting shortlist; otherwise a random
// managed node is used.
func (o *Overlay) route(target dht.ID, origin *Node) (ref, error) {
	var entry ref
	if origin != nil {
		entry = origin.self()
	} else {
		var err error
		entry, err = o.pickEntryRef()
		if err != nil {
			return ref{}, err
		}
	}
	closest, err := o.iterativeFindNode(entry, target)
	if err != nil {
		return ref{}, err
	}
	o.Lookups.Inc()
	out := o.probeLive(entry, closest, 1)
	if len(out) == 0 {
		return ref{}, fmt.Errorf("%w: no live contact near %v", ErrLookupFailed, target)
	}
	return out[0], nil
}

// Put implements dht.DHT: the value is stored at the Replication closest
// live nodes (the paper's placement rule).
func (o *Overlay) Put(key dht.Key, value any) error {
	owners, err := o.ownersOf(dht.HashKey(key), o.replication)
	if err != nil {
		return err
	}
	for _, owner := range owners {
		if _, err := o.net.Call(clientAddr, owner.Addr, storeReq{Key: key, Value: value}); err != nil {
			return err
		}
	}
	return nil
}

// Get implements dht.DHT: replicas are consulted closest-first, so a value
// survives as long as any of its copies does. "Not found" is only reported
// when at least one replica authoritatively answered; if every consult
// failed on the network the last error surfaces instead, so the retry
// layer can distinguish a missing key from an unlucky loss burst.
func (o *Overlay) Get(key dht.Key) (any, bool, error) {
	owners, err := o.ownersOf(dht.HashKey(key), o.replication)
	if err != nil {
		return nil, false, err
	}
	var lastErr error
	answered := false
	for _, owner := range owners {
		respAny, err := o.net.Call(clientAddr, owner.Addr, retrieveReq{Key: key})
		if err != nil {
			lastErr = err
			continue
		}
		resp, ok := respAny.(retrieveResp)
		if !ok {
			return nil, false, fmt.Errorf("kademlia: bad retrieve response %T", respAny)
		}
		if resp.Found {
			return resp.Value, true, nil
		}
		answered = true
	}
	if !answered && lastErr != nil {
		return nil, false, lastErr
	}
	return nil, false, nil
}

// Remove implements dht.DHT: the key is removed from every replica.
func (o *Overlay) Remove(key dht.Key) error {
	owners, err := o.ownersOf(dht.HashKey(key), o.replication)
	if err != nil {
		return err
	}
	for _, owner := range owners {
		if _, err := o.net.Call(clientAddr, owner.Addr, removeReq{Key: key}); err != nil {
			return err
		}
	}
	return nil
}

// Apply implements dht.DHT: the transform runs at the closest live node
// and its result is pushed to the remaining replicas.
func (o *Overlay) Apply(key dht.Key, fn dht.ApplyFunc) error {
	owners, err := o.ownersOf(dht.HashKey(key), o.replication)
	if err != nil {
		return err
	}
	if !transport.SupportsInline(o.net) {
		// A closure cannot cross a real socket: run the transform
		// client-side under the wire-safe versioned CAS protocol, then
		// fan the result out to the remaining replicas.
		value, keep, err := dht.RemoteApply(func(req any) (any, error) {
			return o.net.Call(clientAddr, owners[0].Addr, req)
		}, key, fn)
		if err != nil {
			return err
		}
		for _, owner := range owners[1:] {
			if keep {
				if _, err := o.net.Call(clientAddr, owner.Addr, storeReq{Key: key, Value: value}); err != nil {
					return err
				}
			} else if _, err := o.net.Call(clientAddr, owner.Addr, removeReq{Key: key}); err != nil {
				return err
			}
		}
		return nil
	}
	respAny, err := o.net.Call(clientAddr, owners[0].Addr, applyReq{Key: key, Fn: fn})
	if err != nil {
		return err
	}
	resp, ok := respAny.(applyResp)
	if !ok {
		return fmt.Errorf("kademlia: bad apply response %T", respAny)
	}
	for _, owner := range owners[1:] {
		if resp.Keep {
			if _, err := o.net.Call(clientAddr, owner.Addr, storeReq{Key: key, Value: resp.Value}); err != nil {
				return err
			}
		} else if _, err := o.net.Call(clientAddr, owner.Addr, removeReq{Key: key}); err != nil {
			return err
		}
	}
	return nil
}

// Owner implements dht.DHT.
func (o *Overlay) Owner(key dht.Key) (string, error) {
	owner, err := o.route(dht.HashKey(key), nil)
	if err != nil {
		return "", err
	}
	return string(owner.Addr), nil
}

// Range implements dht.Enumerator. With replication enabled the same key
// exists on several nodes; each key is reported once.
func (o *Overlay) Range(fn func(key dht.Key, value any) bool) error {
	seen := make(map[dht.Key]bool)
	for _, addr := range o.Nodes() {
		n, ok := o.nodeAt(addr)
		if !ok {
			continue
		}
		for k, v := range n.storeSnapshot() {
			if seen[k] {
				continue
			}
			seen[k] = true
			if !fn(k, v) {
				return nil
			}
		}
	}
	return nil
}

// MeanRouteLength returns the average FIND_NODE RPCs per completed lookup.
func (o *Overlay) MeanRouteLength() float64 {
	lookups := o.Lookups.Load()
	if lookups == 0 {
		return 0
	}
	return float64(o.Hops.Load()) / float64(lookups)
}
