package kademlia

import (
	"testing"
	"time"

	"mlight/internal/simnet"
)

// TestRTTDecayGrowsDeadline is the regression test for the stale-RTT
// deadlock: an estimator trained on a fast pre-restart peer kept issuing
// the same too-tight deadline forever, because timeouts produce no RTT
// sample to correct it. Decay must grow the deadline deterministically
// until calls can succeed again, and successes must then re-tighten it.
func TestRTTDecayGrowsDeadline(t *testing.T) {
	e := rttEstimator{fallback: 300 * time.Millisecond}

	// Train on a fast peer: deadline sits at the floor.
	for i := 0; i < 8; i++ {
		e.observe(10 * time.Millisecond)
	}
	if got := e.timeout(); got != minRPCTimeout {
		t.Fatalf("trained deadline = %v, want floor %v", got, minRPCTimeout)
	}

	// The peer restarts slower; every call times out. Each decay must
	// strictly grow the deadline until the cap.
	prev := e.timeout()
	grew := 0
	for i := 0; i < 20; i++ {
		e.decay()
		cur := e.timeout()
		if cur < prev {
			t.Fatalf("decay %d shrank deadline: %v -> %v", i, prev, cur)
		}
		if cur > prev {
			grew++
		}
		prev = cur
	}
	if grew == 0 {
		t.Fatal("20 decays never grew the deadline")
	}
	if want := 4 * maxDecayedRTT; prev != want {
		t.Fatalf("saturated deadline = %v, want cap %v", prev, want)
	}

	// Calls succeed again; observations re-tighten the estimate back to
	// the floor.
	for i := 0; i < 64; i++ {
		e.observe(10 * time.Millisecond)
	}
	if got := e.timeout(); got != minRPCTimeout {
		t.Errorf("re-tightened deadline = %v, want floor %v", got, minRPCTimeout)
	}
}

// TestRTTDecayPreObservation: a timeout before any successful observation
// must also back off, starting from the seeded fallback.
func TestRTTDecayPreObservation(t *testing.T) {
	e := rttEstimator{fallback: 300 * time.Millisecond}
	if got := e.timeout(); got != e.fallback {
		t.Fatalf("pre-observation deadline = %v, want fallback %v", got, e.fallback)
	}
	e.decay()
	if got, want := e.timeout(), 2*e.fallback; got != want {
		t.Fatalf("deadline after pre-observation decay = %v, want %v", got, want)
	}
}

// TestRTTReset returns the estimator to its seeded fallback.
func TestRTTReset(t *testing.T) {
	e := rttEstimator{fallback: 300 * time.Millisecond}
	e.observe(50 * time.Millisecond)
	if got := e.timeout(); got == e.fallback {
		t.Fatal("observation did not move the deadline off the fallback")
	}
	e.reset()
	if got := e.timeout(); got != e.fallback {
		t.Fatalf("deadline after reset = %v, want fallback %v", got, e.fallback)
	}
}

// TestOverlayRPCDeadline: fixed-timeout mode reports the configured value;
// adaptive mode reports the estimator's current deadline and
// ResetRTTEstimate returns it to the seeded fallback.
func TestOverlayRPCDeadline(t *testing.T) {
	fixed := NewOverlay(simnet.New(simnet.Options{}), Config{Seed: 1, RPCTimeout: 700 * time.Millisecond})
	if got := fixed.RPCDeadline(); got != 700*time.Millisecond {
		t.Errorf("fixed RPCDeadline = %v, want 700ms", got)
	}

	adaptive := NewOverlay(simnet.New(simnet.Options{}), Config{Seed: 1})
	base := adaptive.RPCDeadline()
	if base < minRPCTimeout || base >= 2*minRPCTimeout {
		t.Fatalf("adaptive fallback deadline = %v, want in [%v, %v)", base, minRPCTimeout, 2*minRPCTimeout)
	}
	adaptive.rtt.observe(time.Second)
	if got := adaptive.RPCDeadline(); got != 4*time.Second {
		t.Errorf("adaptive deadline after 1s observation = %v, want 4s", got)
	}
	adaptive.ResetRTTEstimate()
	if got := adaptive.RPCDeadline(); got != base {
		t.Errorf("deadline after ResetRTTEstimate = %v, want fallback %v", got, base)
	}
}
