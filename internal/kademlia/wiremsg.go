package kademlia

import "mlight/internal/transport"

// Register every kademlia RPC message with the transport codec so overlays
// run unchanged over framed TCP. applyReq is deliberately absent: it
// carries a closure, which only an inline transport can deliver — over the
// wire, Overlay.Apply uses the dht versioned-CAS protocol instead.
func init() {
	transport.RegisterType(ref{})
	transport.RegisterType([]ref(nil))
	transport.RegisterType(pingReq{})
	transport.RegisterType(findNodeReq{})
	transport.RegisterType(findNodeResp{})
	transport.RegisterType(storeReq{})
	transport.RegisterType(retrieveReq{})
	transport.RegisterType(retrieveResp{})
	transport.RegisterType(removeReq{})
	transport.RegisterType(applyResp{})
	transport.RegisterType(claimReq{})
	transport.RegisterType(claimResp{})
	transport.RegisterType(handoffReq{})
}
