package kademlia

import (
	"fmt"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/dht/dhttest"
	"mlight/internal/simnet"
)

// churnOverlay adapts the Overlay management plane to the dhttest churn
// suite.
type churnOverlay struct {
	o *Overlay
	d dht.DHT
}

func (c *churnOverlay) DHT() dht.DHT                 { return c.d }
func (c *churnOverlay) Live() []simnet.NodeID        { return c.o.Nodes() }
func (c *churnOverlay) Down() []simnet.NodeID        { return c.o.CrashedNodes() }
func (c *churnOverlay) Crash(id simnet.NodeID) error { return c.o.CrashNode(id) }
func (c *churnOverlay) Leave(id simnet.NodeID) error { return c.o.RemoveNode(id) }
func (c *churnOverlay) Settle()                      { c.o.Stabilize(3) }

func (c *churnOverlay) Restart(id simnet.NodeID) error {
	_, err := c.o.RestartNode(id)
	return err
}

func (c *churnOverlay) Join(id simnet.NodeID) error {
	_, err := c.o.AddNode(id)
	return err
}

func newChurnOverlay(t *testing.T, wrap func(dht.DHT) dht.DHT) dhttest.Churner {
	t.Helper()
	net := simnet.New(simnet.Options{})
	o := NewOverlay(net, Config{Seed: 1, Replication: 3})
	for i := 0; i < 10; i++ {
		if _, err := o.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize(2)
	return &churnOverlay{o: o, d: wrap(o)}
}

// TestChurnSchedule pins the correctness gate of the churn suite on the
// raw overlay: after a deterministic schedule of joins, leaves, crashes,
// and restarts under an active workload, a full scan equals ground truth.
func TestChurnSchedule(t *testing.T) {
	dhttest.VerifyNoLeaks(t)
	dhttest.RunChurn(t, func(t *testing.T) dhttest.Churner {
		return newChurnOverlay(t, func(d dht.DHT) dht.DHT { return d })
	})
}

// TestChurnScheduleDecorated runs the same gate through the decorator
// stack an index deployment actually uses, so churn recovery is proven to
// compose with retries and accounting.
func TestChurnScheduleDecorated(t *testing.T) {
	dhttest.VerifyNoLeaks(t)
	dhttest.RunChurn(t, func(t *testing.T) dhttest.Churner {
		return newChurnOverlay(t, func(d dht.DHT) dht.DHT {
			return dht.NewResilient(dht.NewCounting(d, nil),
				dht.RetryPolicy{MaxAttempts: 4, Sleep: dht.NoSleep}, nil)
		})
	})
}
