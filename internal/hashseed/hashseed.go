// Package hashseed is the repository's seeded, allocation-free hashing
// toolkit. Deterministic components (the simnet drop streams, the churn
// scheduler, stripe selection in sharded tables) derive pseudo-random
// decisions by hashing an explicit seed together with the decision's
// coordinates — edge, sequence number, round, node id — instead of
// consulting a stateful generator. Hash-derived draws have two properties a
// shared rand.Rand cannot offer: they are independent of call interleaving
// (concurrent callers cannot reorder each other's streams), and they never
// allocate (the standard hash/fnv constructor heap-allocates a hasher per
// use, which is why hot paths fold the FNV-1a step inline here).
//
// Every function is a pure function of its arguments. The FNV-1a helpers
// are byte-identical to feeding the same bytes through hash/fnv.New64a —
// pinned by tests in this package and by the simnet golden-stream test —
// so switching a call site from hash/fnv to hashseed never changes a seeded
// run's behavior.
//
// This package is the sanctioned alternative to hash/maphash, whose seeds
// are randomized per process and therefore break reproducibility (the
// mlight-lint determinism pass rejects maphash outside this package).
package hashseed

const (
	// FNVOffset64 is the FNV-1a 64-bit offset basis: the initial hash state.
	FNVOffset64 uint64 = 14695981039346656037
	// FNVPrime64 is the FNV-1a 64-bit prime.
	FNVPrime64 uint64 = 1099511628211
)

// Byte folds one byte into an FNV-1a running hash.
func Byte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * FNVPrime64
}

// String folds the bytes of s into an FNV-1a running hash.
func String(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * FNVPrime64
	}
	return h
}

// Bytes folds p into an FNV-1a running hash.
func Bytes(h uint64, p []byte) uint64 {
	for _, b := range p {
		h = (h ^ uint64(b)) * FNVPrime64
	}
	return h
}

// Uint64LE folds v into an FNV-1a running hash as 8 little-endian bytes,
// matching binary.LittleEndian.PutUint64 followed by a Write.
func Uint64LE(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * FNVPrime64
		v >>= 8
	}
	return h
}

// Fmix64 is the murmur3 64-bit finalizer. FNV's final multiply diffuses the
// last input bytes into the middle of the word but barely into the top bits;
// inputs that differ only in trailing characters (node-1, node-2, ...) hash
// to nearly the same high bits. Apply Fmix64 before taking top bits (Unit)
// or a modulus to restore avalanche.
func Fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Unit maps a 64-bit hash onto [0,1) using its top 53 bits — the same
// construction math/rand.Float64 uses, so comparing against a probability
// honours it uniformly.
func Unit(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}
