package hashseed

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"testing"
)

// TestFNVEquivalence pins the package's core contract: folding bytes with
// Byte/String/Bytes/Uint64LE is byte-identical to writing the same bytes
// into hash/fnv.New64a. Any drift here would silently reshuffle every
// seeded drop and churn stream in the repository.
func TestFNVEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)

		ref := fnv.New64a()
		ref.Write(buf)
		if got := Bytes(FNVOffset64, buf); got != ref.Sum64() {
			t.Fatalf("Bytes(%x) = %#x, want %#x", buf, got, ref.Sum64())
		}
		if got := String(FNVOffset64, string(buf)); got != ref.Sum64() {
			t.Fatalf("String(%x) = %#x, want %#x", buf, got, ref.Sum64())
		}
	}
}

func TestByteAndUint64LE(t *testing.T) {
	ref := fnv.New64a()
	ref.Write([]byte{0x7f})
	if got := Byte(FNVOffset64, 0x7f); got != ref.Sum64() {
		t.Fatalf("Byte = %#x, want %#x", got, ref.Sum64())
	}

	for _, v := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
		var word [8]byte
		binary.LittleEndian.PutUint64(word[:], v)
		ref := fnv.New64a()
		ref.Write(word[:])
		if got := Uint64LE(FNVOffset64, v); got != ref.Sum64() {
			t.Fatalf("Uint64LE(%#x) = %#x, want %#x", v, got, ref.Sum64())
		}
	}
}

// TestFmix64 pins the murmur3 finalizer against hand-computed values so the
// churn scheduler's historical draw streams cannot drift.
func TestFmix64(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 0},
		{1, 0xb456bcfc34c2cb2c},
		{0xdeadbeef, 0xd24bd59f862a1dac},
	}
	for _, c := range cases {
		if got := Fmix64(c.in); got != c.want {
			t.Errorf("Fmix64(%#x) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestUnitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		u := Unit(rng.Uint64())
		if u < 0 || u >= 1 {
			t.Fatalf("Unit out of [0,1): %v", u)
		}
	}
	if Unit(^uint64(0)) >= 1 {
		t.Error("Unit(max) >= 1")
	}
}

// TestZeroAlloc pins that every helper is allocation-free — the reason the
// hot paths use this package instead of hash/fnv.
func TestZeroAlloc(t *testing.T) {
	s := "node-12345"
	p := []byte(s)
	if n := testing.AllocsPerRun(100, func() {
		h := Uint64LE(FNVOffset64, 99)
		h = String(h, s)
		h = Byte(h, 0)
		h = Bytes(h, p)
		_ = Unit(Fmix64(h))
	}); n != 0 {
		t.Errorf("allocs per run = %v, want 0", n)
	}
}
