package kdtree

import (
	"math/rand"
	"testing"

	"mlight/internal/spatial"
)

func buildTree(t *testing.T, m, theta, n int, seed int64) (*Tree, []spatial.Record) {
	t.Helper()
	tr, err := NewTree(m, theta, theta/2, 40)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	rs := randomRecords(rng, m, n)
	for _, r := range rs {
		if err := tr.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tr, rs
}

func TestNewTreeValidation(t *testing.T) {
	if _, err := NewTree(0, 10, 5, 20); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewTree(2, 10, 10, 20); err == nil {
		t.Error("thetaMerge >= thetaSplit accepted")
	}
	if _, err := NewTree(2, 10, 5, 0); err == nil {
		t.Error("maxDepth=0 accepted")
	}
	if _, err := NewTree(2, 10, 5, 200); err == nil {
		t.Error("maxDepth beyond label width accepted")
	}
}

func TestTreeInsertSplits(t *testing.T) {
	tr, _ := buildTree(t, 2, 10, 400, 1)
	if tr.Size() != 400 {
		t.Errorf("Size = %d", tr.Size())
	}
	if tr.NumLeaves() < 40 {
		t.Errorf("NumLeaves = %d, expected ≥ 40 for θ=10", tr.NumLeaves())
	}
	for _, c := range tr.Leaves() {
		if c.Load() > 10 {
			t.Errorf("leaf %v load %d > θ", c.Label, c.Load())
		}
	}
	assertTiling(t, tr.Leaves(), 2)
}

func TestTreeLeafFor(t *testing.T) {
	tr, rs := buildTree(t, 2, 10, 300, 2)
	for _, r := range rs {
		c, err := tr.LeafFor(r.Key)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Region.Contains(r.Key) {
			t.Fatalf("LeafFor(%v) = %v, region %v does not contain it", r.Key, c.Label, c.Region)
		}
		found := false
		for _, stored := range c.Records {
			if samePoint(stored.Key, r.Key) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("record %v not stored in its leaf", r.Key)
		}
	}
	if _, err := tr.LeafFor(spatial.Point{0.5}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestTreeSearchMatchesLinearScan(t *testing.T) {
	tr, rs := buildTree(t, 2, 8, 500, 3)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		lo := spatial.Point{rng.Float64() * 0.8, rng.Float64() * 0.8}
		hi := spatial.Point{lo[0] + rng.Float64()*0.2, lo[1] + rng.Float64()*0.2}
		q, err := spatial.NewRect(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tr.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, r := range rs {
			if q.Contains(r.Key) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("Search(%v) = %d records, want %d", q, len(got), want)
		}
		for _, r := range got {
			if !q.Contains(r.Key) {
				t.Fatalf("Search returned %v outside %v", r.Key, q)
			}
		}
	}
	if _, err := tr.Search(spatial.Rect{Lo: spatial.Point{0}, Hi: spatial.Point{1}}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestTreeDeleteAndMerge(t *testing.T) {
	tr, rs := buildTree(t, 2, 10, 200, 5)
	leavesBefore := tr.NumLeaves()
	for _, r := range rs {
		ok, err := tr.Delete(r.Key, r.Data)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("Delete(%v) did not find the record", r.Key)
		}
	}
	if tr.Size() != 0 {
		t.Errorf("Size after deleting all = %d", tr.Size())
	}
	if got := tr.NumLeaves(); got >= leavesBefore {
		t.Errorf("no merges happened: %d leaves before, %d after", leavesBefore, got)
	}
	// Deleting an absent record reports false.
	ok, err := tr.Delete(spatial.Point{0.123, 0.456}, "")
	if err != nil || ok {
		t.Errorf("Delete(absent) = %v, %v", ok, err)
	}
	if _, err := tr.Delete(spatial.Point{0.5}, ""); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestTreeInsertRejectsWrongDim(t *testing.T) {
	tr, err := NewTree(2, 10, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(spatial.Record{Key: spatial.Point{0.5}}); err == nil {
		t.Error("wrong-dim insert accepted")
	}
}

func TestTreeDepthCapOnDuplicates(t *testing.T) {
	tr, err := NewTree(2, 2, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 20 identical points cannot be separated; the depth cap must stop the
	// splitting recursion and keep all records.
	for i := 0; i < 20; i++ {
		if err := tr.Insert(spatial.Record{Key: spatial.Point{0.3, 0.3}}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Size() != 20 {
		t.Errorf("Size = %d, want 20", tr.Size())
	}
	total := 0
	for _, c := range tr.Leaves() {
		total += c.Load()
	}
	if total != 20 {
		t.Errorf("leaves hold %d records, want 20", total)
	}
}
