package kdtree

import (
	"math/rand"
	"testing"

	"mlight/internal/bitlabel"
	"mlight/internal/spatial"
)

func rootCell(m int, recs []spatial.Record) Cell {
	return Cell{
		Label:   bitlabel.Root(m),
		Region:  spatial.UnitCube(m),
		Records: recs,
	}
}

func recs(points ...spatial.Point) []spatial.Record {
	out := make([]spatial.Record, len(points))
	for i, p := range points {
		out[i] = spatial.Record{Key: p}
	}
	return out
}

func randomRecords(rng *rand.Rand, m, n int) []spatial.Record {
	out := make([]spatial.Record, n)
	for i := range out {
		p := make(spatial.Point, m)
		for d := range p {
			p[d] = rng.Float64()
		}
		out[i] = spatial.Record{Key: p}
	}
	return out
}

func TestPartitionRecords(t *testing.T) {
	g := spatial.UnitCube(1)
	rs := recs(spatial.Point{0.2}, spatial.Point{0.5}, spatial.Point{0.7}, spatial.Point{0.49})
	lower, upper := PartitionRecords(rs, g, 0)
	if len(lower) != 2 || len(upper) != 2 {
		t.Fatalf("partition = %d/%d, want 2/2", len(lower), len(upper))
	}
	// The midpoint itself goes up (half-open cells).
	for _, r := range upper {
		if r.Key[0] < 0.5 {
			t.Errorf("record %v in upper half", r.Key)
		}
	}
}

func TestSplitOnce(t *testing.T) {
	m := 2
	c := rootCell(m, recs(spatial.Point{0.1, 0.9}, spatial.Point{0.9, 0.1}))
	left, right, err := SplitOnce(c, m)
	if err != nil {
		t.Fatal(err)
	}
	if got := left.Label.Pretty(m); got != "#0" {
		t.Errorf("left label = %s", got)
	}
	if got := right.Label.Pretty(m); got != "#1" {
		t.Errorf("right label = %s", got)
	}
	if left.Region.Hi[0] != 0.5 || right.Region.Lo[0] != 0.5 {
		t.Errorf("regions: %v / %v", left.Region, right.Region)
	}
	if left.Load() != 1 || right.Load() != 1 {
		t.Errorf("loads: %d / %d", left.Load(), right.Load())
	}
	// Second-level split goes along dim 1.
	ll, lr, err := SplitOnce(left, m)
	if err != nil {
		t.Fatal(err)
	}
	if ll.Region.Hi[1] != 0.5 || lr.Region.Lo[1] != 0.5 {
		t.Errorf("second-level regions: %v / %v", ll.Region, lr.Region)
	}
}

func TestSplitOnceAtMaxDepth(t *testing.T) {
	c := Cell{Label: bitlabel.New(0, bitlabel.MaxLen), Region: spatial.UnitCube(1)}
	if _, _, err := SplitOnce(c, 1); err == nil {
		t.Error("SplitOnce at max depth succeeded")
	}
}

func TestThresholdSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := 2
	c := rootCell(m, randomRecords(rng, m, 500))
	cells, err := ThresholdSplit(c, m, 20, 40)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, cell := range cells {
		if cell.Load() > 20 {
			t.Errorf("cell %v load %d exceeds threshold", cell.Label, cell.Load())
		}
		total += cell.Load()
	}
	if total != 500 {
		t.Errorf("records lost: %d of 500", total)
	}
	assertTiling(t, cells, m)
	// Invalid threshold.
	if _, err := ThresholdSplit(c, m, 0, 10); err == nil {
		t.Error("thetaSplit=0 accepted")
	}
	// Depth cap stops recursion even when overfull.
	dup := rootCell(1, recs(spatial.Point{0.3}, spatial.Point{0.3}, spatial.Point{0.3}))
	capped, err := ThresholdSplit(dup, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, cell := range capped {
		sum += cell.Load()
	}
	if sum != 3 {
		t.Errorf("depth-capped split lost records: %d", sum)
	}
}

// assertTiling checks the cells form an antichain of labels whose regions
// are pairwise disjoint, i.e. a valid kd-subtree frontier.
func assertTiling(t *testing.T, cells []Cell, m int) {
	t.Helper()
	for i := range cells {
		for j := range cells {
			if i == j {
				continue
			}
			if cells[i].Label.IsPrefixOf(cells[j].Label) {
				t.Fatalf("cell %v is ancestor of %v", cells[i].Label, cells[j].Label)
			}
		}
	}
	// Every cell's region must match its label.
	for _, c := range cells {
		g, err := spatial.RegionOf(c.Label, m)
		if err != nil {
			t.Fatal(err)
		}
		if g.String() != c.Region.String() {
			t.Fatalf("cell %v region %v, label says %v", c.Label, c.Region, g)
		}
		for _, r := range c.Records {
			if !c.Region.Contains(r.Key) {
				t.Fatalf("record %v outside its cell %v", r.Key, c.Label)
			}
		}
	}
}

// TestOptimalSplitPaperExample reproduces Fig. 3 (ε = 2): four points
// arranged two per quarter-cell with an empty half have split cost equal to
// the unsplit cost (4), so no split happens; a fifth point landing in the
// empty half drops the split cost to 1 and triggers a 3-cell split with
// loads {2, 2, 1}.
func TestOptimalSplitPaperExample(t *testing.T) {
	m := 2
	before := recs(
		spatial.Point{0.1, 0.8}, spatial.Point{0.2, 0.9}, // upper quarter of the left half
		spatial.Point{0.3, 0.2}, spatial.Point{0.4, 0.3}, // lower quarter of the left half
	)
	cells, improved, err := OptimalSplit(rootCell(m, before), m, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	if improved || len(cells) != 1 {
		t.Fatalf("before insertion: improved=%v cells=%d, want no split", improved, len(cells))
	}

	after := append(append([]spatial.Record{}, before...),
		spatial.Record{Key: spatial.Point{0.7, 0.2}}) // the empty right half
	cells, improved, err = OptimalSplit(rootCell(m, after), m, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !improved {
		t.Fatal("after insertion: split not triggered")
	}
	if len(cells) != 3 {
		t.Fatalf("after insertion: %d cells, want 3", len(cells))
	}
	loads := map[int]int{}
	var cost int64
	for _, c := range cells {
		loads[c.Load()]++
		cost += localCost(c.Load(), 2)
	}
	if loads[2] != 2 || loads[1] != 1 {
		t.Errorf("loads = %v, want {2:2, 1:1}", loads)
	}
	if cost != 1 {
		t.Errorf("total cost = %d, want 1", cost)
	}
	assertTiling(t, cells, m)
}

func TestOptimalSplitNoSplitWhenSmall(t *testing.T) {
	m := 2
	c := rootCell(m, recs(spatial.Point{0.1, 0.1}))
	cells, improved, err := OptimalSplit(c, m, 2, 30)
	if err != nil || improved || len(cells) != 1 {
		t.Fatalf("OptimalSplit on tiny bucket: %v/%v/%v", cells, improved, err)
	}
	if _, _, err := OptimalSplit(c, m, 0, 30); err == nil {
		t.Error("epsilon=0 accepted")
	}
}

// TestOptimalSplitInvariants: on random data the result preserves records,
// tiles the cell, achieves cost Σ(l-ε)² no worse than the unsplit cost and
// no worse than the threshold-split frontier, and improved is consistent.
func TestOptimalSplitInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		m := 1 + rng.Intn(3)
		n := 1 + rng.Intn(120)
		epsilon := 1 + rng.Intn(20)
		c := rootCell(m, randomRecords(rng, m, n))
		cells, improved, err := OptimalSplit(c, m, epsilon, 30)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		var cost int64
		for _, cell := range cells {
			total += cell.Load()
			cost += localCost(cell.Load(), epsilon)
		}
		if total != n {
			t.Fatalf("records lost: %d of %d", total, n)
		}
		assertTiling(t, cells, m)
		unsplit := localCost(n, epsilon)
		if improved != (cost < unsplit) {
			t.Fatalf("improved=%v but cost=%d vs unsplit=%d", improved, cost, unsplit)
		}
		if !improved && len(cells) != 1 {
			t.Fatalf("no improvement but %d cells", len(cells))
		}
		// The optimum can't be beaten by the threshold frontier at θ=ε.
		frontier, err := ThresholdSplit(c, m, epsilon, 30)
		if err != nil {
			t.Fatal(err)
		}
		var frontierCost int64
		for _, cell := range frontier {
			frontierCost += localCost(cell.Load(), epsilon)
		}
		if cost > frontierCost && cost > unsplit {
			t.Fatalf("optimal cost %d beaten by frontier %d (unsplit %d)", cost, frontierCost, unsplit)
		}
		if cost > unsplit {
			t.Fatalf("optimal cost %d worse than not splitting %d", cost, unsplit)
		}
	}
}

// TestOptimalSplitBeatsThresholdVariance: the headline of §4.2 — for
// clustered data the data-aware frontier has load variance no worse than
// the θ-threshold frontier at matched expected load.
func TestOptimalSplitBeatsThresholdVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := 2
	// Clustered data: one dense blob plus sparse noise.
	var rs []spatial.Record
	for i := 0; i < 300; i++ {
		rs = append(rs, spatial.Record{Key: spatial.Point{
			clamp01(0.2 + rng.NormFloat64()*0.03),
			clamp01(0.7 + rng.NormFloat64()*0.03),
		}})
	}
	for i := 0; i < 30; i++ {
		rs = append(rs, spatial.Record{Key: spatial.Point{rng.Float64(), rng.Float64()}})
	}
	c := rootCell(m, rs)
	optimal, _, err := OptimalSplit(c, m, 20, 40)
	if err != nil {
		t.Fatal(err)
	}
	frontier, err := ThresholdSplit(c, m, 28, 40) // roughly matched leaf count
	if err != nil {
		t.Fatal(err)
	}
	if deviation(optimal, 20) > deviation(frontier, 20) {
		t.Errorf("data-aware deviation %d worse than threshold %d",
			deviation(optimal, 20), deviation(frontier, 20))
	}
}

func deviation(cells []Cell, epsilon int) int64 {
	var s int64
	for _, c := range cells {
		s += localCost(c.Load(), epsilon)
	}
	return s
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
