// Package kdtree implements the space kd-tree of m-LIGHT §3.2 — recursive
// bisection of the unit cube along dimensions 0,1,…,m-1 cyclically — plus
// the two index splitting strategies of §4:
//
//   - threshold splitting: a leaf holding more than θsplit records divides
//     at its spatial midpoint (SplitOnce), recursively until every leaf is
//     within threshold (ThresholdSplit);
//   - data-aware splitting: Algorithm 1 (OptimalSplit) computes the split
//     subtree that minimises Σ(load-ε)² over its leaves, the strategy
//     Theorem 6 proves optimal for peer load balance.
//
// The package also provides Tree, an in-memory global space kd-tree. The
// distributed index never materialises this structure — it exists as the
// reference model ("what the paper's Figure 1 draws") and as the oracle in
// integration tests: the union of a distributed index's leaf buckets must
// equal the reference tree's leaves.
package kdtree

import (
	"fmt"

	"mlight/internal/bitlabel"
	"mlight/internal/spatial"
)

// Cell is one leaf of a (sub)tree: an absolute kd-tree label, its region,
// and the records that fall in it.
type Cell struct {
	Label   bitlabel.Label
	Region  spatial.Region
	Records []spatial.Record
}

// Load returns the number of records in the cell.
func (c Cell) Load() int { return len(c.Records) }

// PartitionRecords splits records between the two halves of region g along
// dim. Records on the midpoint boundary go to the upper half, matching the
// half-open region convention.
func PartitionRecords(records []spatial.Record, g spatial.Region, dim int) (lower, upper []spatial.Record) {
	mid := (g.Lo[dim] + g.Hi[dim]) / 2
	for _, r := range records {
		if r.Key[dim] < mid {
			lower = append(lower, r)
		} else {
			upper = append(upper, r)
		}
	}
	return lower, upper
}

// SplitOnce divides a leaf cell into its two children along the dimension
// its depth dictates. It fails if the label cannot grow.
func SplitOnce(c Cell, m int) (left, right Cell, err error) {
	if c.Label.Len() >= bitlabel.MaxLen {
		return Cell{}, Cell{}, fmt.Errorf("kdtree: cell %v at maximum depth: %w", c.Label, bitlabel.ErrTooLong)
	}
	dim := spatial.SplitDim(c.Label.Len()-(m+1), m)
	lowRegion, highRegion := c.Region.Halves(dim)
	lowRecs, highRecs := PartitionRecords(c.Records, c.Region, dim)
	left = Cell{Label: c.Label.MustAppend(0), Region: lowRegion, Records: lowRecs}
	right = Cell{Label: c.Label.MustAppend(1), Region: highRegion, Records: highRecs}
	return left, right, nil
}

// ThresholdSplit recursively divides the cell until every resulting leaf
// holds at most thetaSplit records or maxDepth additional levels have been
// used (overfull leaves at the depth limit are returned as-is, the standard
// escape for duplicate-heavy data). The input cell must be over threshold;
// callers check that, so a within-threshold cell is returned unchanged.
func ThresholdSplit(c Cell, m, thetaSplit, maxDepth int) ([]Cell, error) {
	if thetaSplit < 1 {
		return nil, fmt.Errorf("kdtree: thetaSplit must be positive, got %d", thetaSplit)
	}
	if c.Load() <= thetaSplit || maxDepth <= 0 || c.Label.Len() >= bitlabel.MaxLen {
		return []Cell{c}, nil
	}
	left, right, err := SplitOnce(c, m)
	if err != nil {
		return nil, err
	}
	lcells, err := ThresholdSplit(left, m, thetaSplit, maxDepth-1)
	if err != nil {
		return nil, err
	}
	rcells, err := ThresholdSplit(right, m, thetaSplit, maxDepth-1)
	if err != nil {
		return nil, err
	}
	return append(lcells, rcells...), nil
}

// OptimalSplit is Algorithm 1 (local-split) of the paper: it computes the
// virtual subtree rooted at the cell that minimises the total squared
// deviation Σ (load(leaf) - ε)² over its leaves, recursing while a cell
// holds more than ε records (and depth remains). It returns the leaves of
// the optimal subtree and whether splitting strictly improves on keeping
// the bucket whole; when improved is false the returned slice is the input
// cell alone.
func OptimalSplit(c Cell, m, epsilon, maxDepth int) (leaves []Cell, improved bool, err error) {
	if epsilon < 1 {
		return nil, false, fmt.Errorf("kdtree: epsilon must be positive, got %d", epsilon)
	}
	cost, cells, err := optimalSplitRec(c, m, epsilon, maxDepth)
	if err != nil {
		return nil, false, err
	}
	if localCost(c.Load(), epsilon) <= cost {
		// Keeping the bucket whole is at least as good: no split (the
		// comparison in Algorithm 1 line 8 keeps s_local on ties).
		return []Cell{c}, false, nil
	}
	return cells, true, nil
}

// localCost is (l-ε)² in exact integer arithmetic.
func localCost(load, epsilon int) int64 {
	d := int64(load - epsilon)
	return d * d
}

// optimalSplitRec returns the minimal cost achievable for the cell and the
// leaf set realising it (which is the cell itself when not splitting wins).
func optimalSplitRec(c Cell, m, epsilon, maxDepth int) (int64, []Cell, error) {
	slocal := localCost(c.Load(), epsilon)
	if c.Load() <= epsilon || maxDepth <= 0 || c.Label.Len() >= bitlabel.MaxLen {
		return slocal, []Cell{c}, nil
	}
	left, right, err := SplitOnce(c, m)
	if err != nil {
		return 0, nil, err
	}
	lcost, lcells, err := optimalSplitRec(left, m, epsilon, maxDepth-1)
	if err != nil {
		return 0, nil, err
	}
	rcost, rcells, err := optimalSplitRec(right, m, epsilon, maxDepth-1)
	if err != nil {
		return 0, nil, err
	}
	snonlocal := lcost + rcost
	if slocal <= snonlocal {
		return slocal, []Cell{c}, nil
	}
	return snonlocal, append(lcells, rcells...), nil
}
