package kdtree

import (
	"fmt"

	"mlight/internal/bitlabel"
	"mlight/internal/spatial"
)

// Tree is an in-memory global space kd-tree with threshold splitting — the
// logical structure m-LIGHT decomposes and distributes. It serves as the
// reference model and test oracle; the distributed index never builds it.
type Tree struct {
	m          int
	thetaSplit int
	thetaMerge int
	maxDepth   int
	root       *treeNode
	size       int
}

type treeNode struct {
	cell     Cell
	children *[2]*treeNode // nil for leaves
}

// NewTree creates a reference tree for dimensionality m. thetaMerge should
// be below thetaSplit (the paper suggests θsplit/2); maxDepth bounds levels
// below the ordinary root.
func NewTree(m, thetaSplit, thetaMerge, maxDepth int) (*Tree, error) {
	if m < 1 {
		return nil, fmt.Errorf("kdtree: dimensionality %d < 1", m)
	}
	if thetaSplit < 1 || thetaMerge < 0 || thetaMerge >= thetaSplit {
		return nil, fmt.Errorf("kdtree: need 0 <= thetaMerge < thetaSplit, got %d, %d", thetaMerge, thetaSplit)
	}
	if maxDepth < 1 || m+1+maxDepth > bitlabel.MaxLen {
		return nil, fmt.Errorf("kdtree: maxDepth %d out of range for m=%d", maxDepth, m)
	}
	return &Tree{
		m:          m,
		thetaSplit: thetaSplit,
		thetaMerge: thetaMerge,
		maxDepth:   maxDepth,
		root: &treeNode{cell: Cell{
			Label:  bitlabel.Root(m),
			Region: spatial.UnitCube(m),
		}},
	}, nil
}

// Size returns the number of records stored.
func (t *Tree) Size() int { return t.size }

// NumLeaves returns the number of leaf cells.
func (t *Tree) NumLeaves() int {
	n := 0
	t.walkLeaves(t.root, func(*treeNode) bool { n++; return true })
	return n
}

// Insert adds a record, splitting the target leaf while it exceeds
// θsplit.
func (t *Tree) Insert(rec spatial.Record) error {
	if rec.Key.Dim() != t.m {
		return fmt.Errorf("kdtree: record dim %d != tree dim %d", rec.Key.Dim(), t.m)
	}
	n := t.leafFor(rec.Key)
	n.cell.Records = append(n.cell.Records, rec)
	t.size++
	return t.splitWhileOver(n)
}

func (t *Tree) splitWhileOver(n *treeNode) error {
	if n.cell.Load() <= t.thetaSplit || n.cell.Label.Len()-(t.m+1) >= t.maxDepth {
		return nil
	}
	left, right, err := SplitOnce(n.cell, t.m)
	if err != nil {
		return err
	}
	n.children = &[2]*treeNode{{cell: left}, {cell: right}}
	n.cell.Records = nil
	if err := t.splitWhileOver(n.children[0]); err != nil {
		return err
	}
	return t.splitWhileOver(n.children[1])
}

// Delete removes one record with the given key (and Data, when non-empty,
// to disambiguate duplicates). It reports whether a record was removed and
// merges sibling leaves whose combined load falls below θmerge.
func (t *Tree) Delete(key spatial.Point, data string) (bool, error) {
	if key.Dim() != t.m {
		return false, fmt.Errorf("kdtree: key dim %d != tree dim %d", key.Dim(), t.m)
	}
	path := t.pathFor(key)
	n := path[len(path)-1]
	idx := -1
	for i, r := range n.cell.Records {
		if samePoint(r.Key, key) && (data == "" || r.Data == data) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false, nil
	}
	n.cell.Records = append(n.cell.Records[:idx], n.cell.Records[idx+1:]...)
	t.size--
	// Merge upwards while a pair of sibling leaves is jointly underfull.
	for i := len(path) - 2; i >= 0; i-- {
		parent := path[i]
		c := parent.children
		if c == nil || c[0].children != nil || c[1].children != nil {
			break
		}
		if c[0].cell.Load()+c[1].cell.Load() >= t.thetaMerge {
			break
		}
		parent.cell.Records = append(append([]spatial.Record{}, c[0].cell.Records...), c[1].cell.Records...)
		parent.children = nil
	}
	return true, nil
}

// LeafFor returns the leaf cell covering the point.
func (t *Tree) LeafFor(key spatial.Point) (Cell, error) {
	if key.Dim() != t.m {
		return Cell{}, fmt.Errorf("kdtree: key dim %d != tree dim %d", key.Dim(), t.m)
	}
	return t.leafFor(key).cell, nil
}

func (t *Tree) leafFor(key spatial.Point) *treeNode {
	path := t.pathFor(key)
	return path[len(path)-1]
}

// pathFor returns the root-to-leaf chain of nodes covering key.
func (t *Tree) pathFor(key spatial.Point) []*treeNode {
	path := []*treeNode{t.root}
	n := t.root
	for n.children != nil {
		dim := spatial.SplitDim(n.cell.Label.Len()-(t.m+1), t.m)
		mid := (n.cell.Region.Lo[dim] + n.cell.Region.Hi[dim]) / 2
		if key[dim] < mid {
			n = n.children[0]
		} else {
			n = n.children[1]
		}
		path = append(path, n)
	}
	return path
}

// Leaves returns all leaf cells, in label order of a depth-first walk.
func (t *Tree) Leaves() []Cell {
	var out []Cell
	t.walkLeaves(t.root, func(n *treeNode) bool {
		out = append(out, n.cell)
		return true
	})
	return out
}

func (t *Tree) walkLeaves(n *treeNode, fn func(*treeNode) bool) bool {
	if n.children == nil {
		return fn(n)
	}
	if !t.walkLeaves(n.children[0], fn) {
		return false
	}
	return t.walkLeaves(n.children[1], fn)
}

// Search returns every stored record whose key lies in the closed
// rectangle.
func (t *Tree) Search(q spatial.Rect) ([]spatial.Record, error) {
	if q.Dim() != t.m {
		return nil, fmt.Errorf("kdtree: query dim %d != tree dim %d", q.Dim(), t.m)
	}
	var out []spatial.Record
	t.search(t.root, q, &out)
	return out, nil
}

func (t *Tree) search(n *treeNode, q spatial.Rect, out *[]spatial.Record) {
	if !n.cell.Region.Overlaps(q) {
		return
	}
	if n.children == nil {
		for _, r := range n.cell.Records {
			if q.Contains(r.Key) {
				*out = append(*out, r)
			}
		}
		return
	}
	t.search(n.children[0], q, out)
	t.search(n.children[1], q, out)
}

func samePoint(a, b spatial.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
