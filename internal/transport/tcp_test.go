package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

type echoReq struct{ Msg string }
type echoResp struct {
	Msg  string
	From string
}

type failReq struct{ Transient bool }

func init() {
	RegisterType(echoReq{})
	RegisterType(echoResp{})
	RegisterType(failReq{})
}

type echoHandler struct {
	mu      sync.Mutex
	crashed bool
	calls   int
}

func (h *echoHandler) HandleRPC(from NodeID, req any) (any, error) {
	h.mu.Lock()
	h.calls++
	h.mu.Unlock()
	switch r := req.(type) {
	case echoReq:
		return echoResp{Msg: r.Msg, From: string(from)}, nil
	case failReq:
		if r.Transient {
			return nil, fmt.Errorf("busy: %w", ErrUnreachable)
		}
		return nil, errors.New("permanent rejection")
	default:
		return nil, fmt.Errorf("unknown request %T", req)
	}
}

func (h *echoHandler) OnCrash() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.crashed = true
}

func newTestTCP(t *testing.T) *TCP {
	t.Helper()
	tr := NewTCP(TCPOptions{CallTimeout: 5 * time.Second, DialTimeout: 2 * time.Second})
	t.Cleanup(func() {
		if err := tr.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return tr
}

func TestTCPBasicCall(t *testing.T) {
	tr := newTestTCP(t)
	id, err := tr.Reserve()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(id, &echoHandler{}); err != nil {
		t.Fatal(err)
	}
	resp, err := tr.Call("client", id, echoReq{Msg: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := resp.(echoResp)
	if !ok || got.Msg != "hello" || got.From != "client" {
		t.Fatalf("resp = %#v", resp)
	}
}

func TestTCPConnectionReuseAndConcurrency(t *testing.T) {
	tr := newTestTCP(t)
	h := &echoHandler{}
	id, err := tr.Reserve()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(id, h); err != nil {
		t.Fatal(err)
	}
	const callers, perCaller = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, callers*perCaller)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				msg := fmt.Sprintf("c%d-%d", c, i)
				resp, err := tr.Call("client", id, echoReq{Msg: msg})
				if err != nil {
					errs <- err
					return
				}
				if got := resp.(echoResp).Msg; got != msg {
					errs <- fmt.Errorf("echo %q != %q", got, msg)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	tr.mu.Lock()
	conns := len(tr.peers)
	tr.mu.Unlock()
	if conns != 1 {
		t.Errorf("pooled connections = %d, want 1 (multiplexed reuse)", conns)
	}
}

func TestTCPErrorTransienceCrossesWire(t *testing.T) {
	tr := newTestTCP(t)
	id, err := tr.Reserve()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(id, &echoHandler{}); err != nil {
		t.Fatal(err)
	}

	_, err = tr.Call("client", id, failReq{Transient: true})
	var tmp interface{ Temporary() bool }
	if err == nil || !errors.As(err, &tmp) || !tmp.Temporary() {
		t.Errorf("transient handler error lost its classification: %v", err)
	}

	_, err = tr.Call("client", id, failReq{Transient: false})
	tmp = nil
	if err == nil {
		t.Error("permanent handler error vanished")
	} else if errors.As(err, &tmp) && tmp.Temporary() {
		t.Errorf("permanent handler error became transient: %v", err)
	}
}

func TestTCPUnreachablePeerIsTransient(t *testing.T) {
	tr := newTestTCP(t)
	// Grab a port that is then closed again, so nothing listens on it.
	id, err := tr.Reserve()
	if err != nil {
		t.Fatal(err)
	}
	tr.Deregister(id)

	_, err = tr.Call("client", id, echoReq{Msg: "anyone?"})
	var tmp interface{ Temporary() bool }
	if err == nil || !errors.As(err, &tmp) || !tmp.Temporary() {
		t.Errorf("dial failure should be transient, got %v", err)
	}
}

func TestTCPDownNodeSemantics(t *testing.T) {
	tr := newTestTCP(t)
	h := &echoHandler{}
	id, err := tr.Reserve()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(id, h); err != nil {
		t.Fatal(err)
	}

	tr.SetDown(id, true)
	if !tr.IsDown(id) {
		t.Fatal("IsDown = false after SetDown(true)")
	}
	if _, err := tr.Call("client", id, echoReq{Msg: "x"}); err == nil {
		t.Error("call to a down node succeeded")
	}
	if _, err := tr.Call(id, "client", echoReq{Msg: "x"}); !errors.Is(err, ErrCallerDown) {
		t.Errorf("down caller err = %v, want ErrCallerDown", err)
	}

	tr.SetDown(id, false)
	if _, err := tr.Call("client", id, echoReq{Msg: "back"}); err != nil {
		t.Errorf("call after heal failed: %v", err)
	}
}

func TestTCPCrashRestartHooks(t *testing.T) {
	tr := newTestTCP(t)
	h := &echoHandler{}
	id, err := tr.Reserve()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(id, h); err != nil {
		t.Fatal(err)
	}
	if err := tr.Crash(id); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	crashed := h.crashed
	h.mu.Unlock()
	if !crashed {
		t.Error("Crasher hook did not run")
	}
	if !tr.IsDown(id) {
		t.Error("crashed node not marked down")
	}
	if err := tr.Restart(id); err != nil {
		t.Fatal(err)
	}
	if tr.IsDown(id) {
		t.Error("restarted node still down")
	}
	if _, err := tr.Call("client", id, echoReq{Msg: "alive"}); err != nil {
		t.Errorf("call after restart: %v", err)
	}
}

func TestTCPRegisterEphemeralWithoutReserveFails(t *testing.T) {
	tr := newTestTCP(t)
	err := tr.Register("127.0.0.1:0", &echoHandler{})
	if err == nil {
		t.Fatal("Register with an unresolved ephemeral address succeeded; peers could never dial it")
	}
}

func TestTCPDuplicateRegister(t *testing.T) {
	tr := newTestTCP(t)
	id, err := tr.Reserve()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(id, &echoHandler{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(id, &echoHandler{}); !errors.Is(err, ErrDuplicateNode) {
		t.Errorf("duplicate register err = %v", err)
	}
}

func TestTCPCloseDrainsAndRejects(t *testing.T) {
	tr := NewTCP(TCPOptions{})
	id, err := tr.Reserve()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(id, &echoHandler{}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Call("client", id, echoReq{Msg: "pre-close"}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Call("client", id, echoReq{Msg: "post-close"}); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close call err = %v, want ErrClosed", err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestTCPTwoProcessesStyleConversation(t *testing.T) {
	// Two transports in one test process stand in for two OS processes:
	// nothing is shared but the loopback sockets.
	server := newTestTCP(t)
	client := newTestTCP(t)

	id, err := server.Reserve()
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Register(id, &echoHandler{}); err != nil {
		t.Fatal(err)
	}

	resp, err := client.Call("dialer", id, echoReq{Msg: "cross-transport"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(echoResp).Msg != "cross-transport" {
		t.Fatalf("resp = %#v", resp)
	}
}

func TestTCPRedialAfterServerRestart(t *testing.T) {
	server := NewTCP(TCPOptions{})
	client := newTestTCP(t)

	id, err := server.Reserve()
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Register(id, &echoHandler{}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Call("dialer", id, echoReq{Msg: "first"}); err != nil {
		t.Fatal(err)
	}

	// Server goes away: in-pool connection dies, further calls fail
	// transiently.
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	//lint:allow determinism a real-socket outage window is paced by wall clock
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := client.Call("dialer", id, echoReq{Msg: "during outage"}); err != nil {
			break
		}
		//lint:allow determinism a real-socket outage window is paced by wall clock
		if time.Now().After(deadline) {
			t.Fatal("calls kept succeeding after server close")
		}
	}

	// Server comes back on the same address: the client's next call redials.
	server2 := NewTCP(TCPOptions{})
	defer func() {
		if err := server2.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if _, err := server2.Listen(string(id)); err != nil {
		t.Fatalf("rebind %q: %v", id, err)
	}
	if err := server2.Register(id, &echoHandler{}); err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		if _, lastErr = client.Call("dialer", id, echoReq{Msg: "after restart"}); lastErr == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("client never reconnected: %v", lastErr)
}
