// Conformance over real sockets: the same behavioural suites every substrate
// passes on simnet, rerun with the overlays wired over loopback TCP. Every
// RPC — joins, stabilization, lookups, stores, the remote-apply CAS protocol
// — crosses a real framed connection, so this is the transport's end-to-end
// gate: if the envelope codec, the connection pool, or the CAS protocol
// miscarried anything, these suites fail exactly as they would for a broken
// overlay.
package transport_test

import (
	"testing"
	"time"

	"mlight/internal/chord"
	"mlight/internal/dht"
	"mlight/internal/dht/dhttest"
	"mlight/internal/kademlia"
	"mlight/internal/pastry"
	"mlight/internal/transport"
	"mlight/internal/wire"
)

// tcpNodes is the overlay size for socket-backed suites: large enough to
// force multi-hop routing, small enough that the O(n²) join traffic keeps
// the suite fast.
const tcpNodes = 5

func newTCPTransport(t *testing.T) *transport.TCP {
	t.Helper()
	tr := transport.NewTCP(transport.TCPOptions{
		CallTimeout: 10 * time.Second,
		DialTimeout: 2 * time.Second,
	})
	t.Cleanup(func() {
		if err := tr.Close(); err != nil {
			t.Errorf("transport close: %v", err)
		}
	})
	return tr
}

// Builders for each substrate over one TCP transport. All nodes live in
// this process, but every message between them crosses a loopback socket.
func buildChordTCP(t *testing.T) dht.DHT {
	t.Helper()
	tr := newTCPTransport(t)
	ring := chord.NewRing(tr, chord.Config{Seed: 1})
	for i := 0; i < tcpNodes; i++ {
		id, err := tr.Reserve()
		if err != nil {
			t.Fatalf("reserve %d: %v", i, err)
		}
		if _, err := ring.AddNode(id); err != nil {
			t.Fatalf("AddNode(%d): %v", i, err)
		}
	}
	ring.Stabilize(2)
	return ring
}

func buildPastryTCP(t *testing.T) dht.DHT {
	t.Helper()
	tr := newTCPTransport(t)
	o := pastry.NewOverlay(tr, pastry.Config{Seed: 1})
	for i := 0; i < tcpNodes; i++ {
		id, err := tr.Reserve()
		if err != nil {
			t.Fatalf("reserve %d: %v", i, err)
		}
		if _, err := o.AddNode(id); err != nil {
			t.Fatalf("AddNode(%d): %v", i, err)
		}
	}
	o.Stabilize(2)
	return o
}

func buildKademliaTCP(t *testing.T) dht.DHT {
	t.Helper()
	tr := newTCPTransport(t)
	o := kademlia.NewOverlay(tr, kademlia.Config{Seed: 1})
	for i := 0; i < tcpNodes; i++ {
		id, err := tr.Reserve()
		if err != nil {
			t.Fatalf("reserve %d: %v", i, err)
		}
		if _, err := o.AddNode(id); err != nil {
			t.Fatalf("AddNode(%d): %v", i, err)
		}
	}
	o.Stabilize(2)
	return o
}

var tcpSubstrates = []struct {
	name  string
	build func(t *testing.T) dht.DHT
}{
	{"chord", buildChordTCP},
	{"pastry", buildPastryTCP},
	{"kademlia", buildKademliaTCP},
}

func TestConformanceOverTCP(t *testing.T) {
	dhttest.VerifyNoLeaks(t)
	if testing.Short() {
		t.Skip("socket-backed conformance is not short")
	}
	for _, s := range tcpSubstrates {
		s := s
		t.Run(s.name, func(t *testing.T) {
			t.Parallel()
			dhttest.RunConformance(t, s.build)
		})
	}
}

func TestFaultToleranceOverTCP(t *testing.T) {
	dhttest.VerifyNoLeaks(t)
	if testing.Short() {
		t.Skip("socket-backed fault suite is not short")
	}
	for _, s := range tcpSubstrates {
		s := s
		t.Run(s.name, func(t *testing.T) {
			t.Parallel()
			dhttest.RunFaultTolerance(t, s.build)
		})
	}
}

// TestDecoratedStackOverTCP pins that the decorator stack — byte codec,
// retry layer, operation counters — composes over a socket-backed substrate
// exactly as it does in-process: the decorators only see the dht.DHT
// interface, so the transport underneath must be invisible to them.
func TestDecoratedStackOverTCP(t *testing.T) {
	dhttest.VerifyNoLeaks(t)
	if testing.Short() {
		t.Skip("socket-backed stack suite is not short")
	}
	dhttest.RunConformance(t, func(t *testing.T) dht.DHT {
		var d dht.DHT = buildChordTCP(t)
		d = dht.NewResilient(d, dht.RetryPolicy{MaxAttempts: 3, Sleep: dht.NoSleep}, nil)
		d = dht.NewCounting(d, nil)
		return d
	})
}

// TestRemoteApplyAtomicityOverTCP hammers the versioned-CAS path directly:
// concurrent increments of one counter key must all land, even though each
// transform runs client-side and races its peers for the install.
func TestRemoteApplyAtomicityOverTCP(t *testing.T) {
	dhttest.VerifyNoLeaks(t)
	if testing.Short() {
		t.Skip("socket-backed atomicity suite is not short")
	}
	for _, s := range tcpSubstrates {
		s := s
		t.Run(s.name, func(t *testing.T) {
			t.Parallel()
			d := s.build(t)
			const workers, each = 8, 10
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				go func() {
					for i := 0; i < each; i++ {
						if err := d.Apply("counter", func(cur any, ok bool) (any, bool) {
							if !ok {
								return 1, true
							}
							return cur.(int) + 1, true
						}); err != nil {
							errs <- err
							return
						}
					}
					errs <- nil
				}()
			}
			for w := 0; w < workers; w++ {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}
			v, ok, err := d.Get("counter")
			if err != nil || !ok {
				t.Fatalf("Get(counter) = %v, %v, %v", v, ok, err)
			}
			if v != workers*each {
				t.Errorf("counter = %v, want %d (lost increments over the wire)", v, workers*each)
			}
		})
	}
}

// TestByteDHTOverTCP sends opaque byte values through a socket-backed ring,
// the shape a Dial-based client actually uses.
func TestByteDHTOverTCP(t *testing.T) {
	dhttest.VerifyNoLeaks(t)
	if testing.Short() {
		t.Skip("socket-backed wire suite is not short")
	}
	d := wire.NewByteDHT(buildChordTCP(t), transport.Codec{})
	if err := d.Put("k", []byte("opaque")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := d.Get("k")
	if err != nil || !ok {
		t.Fatalf("Get = %v %v %v", v, ok, err)
	}
	if string(v.([]byte)) != "opaque" {
		t.Errorf("value = %q", v)
	}
}
