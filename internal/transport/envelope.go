package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire envelope. Every message on a TCP connection is one frame:
//
//	version(1) | uvarint bodyLen | body | crc32(body), little-endian
//
// mirroring the record framing of internal/wire and the WAL. The body is
//
//	kind(1) | uvarint seq | payload
//
// where seq matches a response to its in-flight call (connections are
// multiplexed: many calls share one socket and responses may return out of
// order). Payloads by kind:
//
//	frameCall: uvarint fromLen | from | type-tagged request  (codec.go)
//	frameResp: type-tagged response
//	frameErr:  flags(1, bit 0 = transient) | uvarint msgLen | msg
//
// A frame longer than MaxFrameSize is rejected before its body is read, so
// a hostile peer cannot make a node allocate unbounded memory by declaring
// an absurd length.

const (
	// envelopeVersion is the wire protocol version, the first byte of every
	// frame. A mismatch fails the connection immediately: there is exactly
	// one version today, and refusing loudly beats misparsing quietly.
	envelopeVersion = 1

	// MaxFrameSize bounds one frame's declared body length (16 MiB). The
	// largest legitimate payloads — handoff maps during a join — stay far
	// below this; anything bigger is hostile or corrupt.
	MaxFrameSize = 16 << 20

	frameCall = 1
	frameResp = 2
	frameErr  = 3

	errFlagTemporary = 1
)

// errBadFrame tags malformed-envelope failures (bad version, CRC mismatch,
// oversized or truncated frames) so the connection layer can distinguish
// protocol damage from ordinary I/O errors.
var errBadFrame = errors.New("transport: bad frame")

// appendFrame appends one encoded frame to buf.
func appendFrame(buf []byte, kind byte, seq uint64, payload []byte) []byte {
	body := make([]byte, 0, 1+binary.MaxVarintLen64+len(payload))
	body = append(body, kind)
	body = binary.AppendUvarint(body, seq)
	body = append(body, payload...)

	buf = append(buf, envelopeVersion)
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	buf = append(buf, body...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
}

// decodeFrame parses one frame from data, returning the frame and the
// remaining bytes. It performs every validation readFrame does, on an
// in-memory buffer — the fuzz target.
func decodeFrame(data []byte) (kind byte, seq uint64, payload []byte, rest []byte, err error) {
	if len(data) < 1 {
		return 0, 0, nil, nil, fmt.Errorf("%w: empty", errBadFrame)
	}
	if data[0] != envelopeVersion {
		return 0, 0, nil, nil, fmt.Errorf("%w: version %d", errBadFrame, data[0])
	}
	n, w := binary.Uvarint(data[1:])
	if w <= 0 {
		return 0, 0, nil, nil, fmt.Errorf("%w: truncated length", errBadFrame)
	}
	if n > MaxFrameSize {
		return 0, 0, nil, nil, fmt.Errorf("%w: length %d exceeds limit %d", errBadFrame, n, MaxFrameSize)
	}
	rest = data[1+w:]
	if uint64(len(rest)) < n+4 {
		return 0, 0, nil, nil, fmt.Errorf("%w: truncated body", errBadFrame)
	}
	body := rest[:n]
	sum := binary.LittleEndian.Uint32(rest[n : n+4])
	if crc32.ChecksumIEEE(body) != sum {
		return 0, 0, nil, nil, fmt.Errorf("%w: crc mismatch", errBadFrame)
	}
	kind, seq, payload, err = splitBody(body)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	return kind, seq, payload, rest[n+4:], nil
}

func splitBody(body []byte) (kind byte, seq uint64, payload []byte, err error) {
	if len(body) < 1 {
		return 0, 0, nil, fmt.Errorf("%w: empty body", errBadFrame)
	}
	kind = body[0]
	switch kind {
	case frameCall, frameResp, frameErr:
	default:
		return 0, 0, nil, fmt.Errorf("%w: unknown kind %d", errBadFrame, kind)
	}
	seq, w := binary.Uvarint(body[1:])
	if w <= 0 {
		return 0, 0, nil, fmt.Errorf("%w: truncated seq", errBadFrame)
	}
	return kind, seq, body[1+w:], nil
}

// readFrame reads one frame from a buffered connection stream, enforcing
// the size guard before the body is allocated.
func readFrame(br *bufio.Reader) (kind byte, seq uint64, payload []byte, err error) {
	ver, err := br.ReadByte()
	if err != nil {
		return 0, 0, nil, err
	}
	if ver != envelopeVersion {
		return 0, 0, nil, fmt.Errorf("%w: version %d", errBadFrame, ver)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("%w: length: %v", errBadFrame, err)
	}
	if n > MaxFrameSize {
		return 0, 0, nil, fmt.Errorf("%w: length %d exceeds limit %d", errBadFrame, n, MaxFrameSize)
	}
	buf := make([]byte, n+4)
	if _, err := io.ReadFull(br, buf); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: body: %v", errBadFrame, err)
	}
	body := buf[:n]
	sum := binary.LittleEndian.Uint32(buf[n:])
	if crc32.ChecksumIEEE(body) != sum {
		return 0, 0, nil, fmt.Errorf("%w: crc mismatch", errBadFrame)
	}
	return splitBody(body)
}

// encodeCallPayload builds a frameCall payload: the caller's identity
// followed by the type-tagged request.
func encodeCallPayload(from NodeID, req any) ([]byte, error) {
	buf := appendString(nil, string(from))
	return appendAny(buf, req)
}

// decodeCallPayload parses a frameCall payload.
func decodeCallPayload(payload []byte) (from NodeID, req any, err error) {
	s, rest, err := consumeString(payload)
	if err != nil {
		return "", nil, err
	}
	v, rest, err := consumeAny(rest)
	if err != nil {
		return "", nil, err
	}
	if len(rest) != 0 {
		return "", nil, fmt.Errorf("%w: %d trailing bytes in call", errBadFrame, len(rest))
	}
	return NodeID(s), v, nil
}

// encodeErrPayload builds a frameErr payload, preserving the Temporary()
// classification so the caller's retry layer sees the same transience the
// remote handler reported.
func encodeErrPayload(callErr error) []byte {
	var flags byte
	var tmp interface{ Temporary() bool }
	if errors.As(callErr, &tmp) && tmp.Temporary() {
		flags |= errFlagTemporary
	}
	buf := []byte{flags}
	return appendString(buf, callErr.Error())
}

// decodeErrPayload reconstructs a remote handler error.
func decodeErrPayload(payload []byte) (error, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("%w: empty error payload", errBadFrame)
	}
	flags := payload[0]
	msg, rest, err := consumeString(payload[1:])
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in error", errBadFrame, len(rest))
	}
	if flags&errFlagTemporary != 0 {
		return &temporaryError{msg: msg}, nil
	}
	return errors.New(msg), nil
}
