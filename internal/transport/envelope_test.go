package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)}
	kinds := []byte{frameCall, frameResp, frameErr}
	var buf []byte
	for i, p := range payloads {
		buf = appendFrame(buf, kinds[i%len(kinds)], uint64(i*7), p)
	}
	rest := buf
	for i, p := range payloads {
		kind, seq, payload, r, err := decodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if kind != kinds[i%len(kinds)] || seq != uint64(i*7) || !bytes.Equal(payload, p) {
			t.Fatalf("frame %d: kind=%d seq=%d payload=%d bytes", i, kind, seq, len(payload))
		}
		rest = r
	}
	if len(rest) != 0 {
		t.Fatalf("%d undecoded bytes", len(rest))
	}
}

func TestFrameReaderMatchesDecoder(t *testing.T) {
	frame := appendFrame(nil, frameResp, 42, []byte("payload"))
	kind, seq, payload, err := readFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatal(err)
	}
	if kind != frameResp || seq != 42 || string(payload) != "payload" {
		t.Fatalf("readFrame = %d/%d/%q", kind, seq, payload)
	}
}

func TestFrameRejectsBadVersion(t *testing.T) {
	frame := appendFrame(nil, frameCall, 1, []byte("x"))
	frame[0] = 9
	if _, _, _, _, err := decodeFrame(frame); !errors.Is(err, errBadFrame) {
		t.Errorf("bad version: err = %v", err)
	}
}

func TestFrameRejectsBadCRC(t *testing.T) {
	frame := appendFrame(nil, frameCall, 1, []byte("payload"))
	frame[len(frame)-1] ^= 0xFF
	if _, _, _, _, err := decodeFrame(frame); !errors.Is(err, errBadFrame) {
		t.Errorf("bad crc: err = %v", err)
	}
	// Body corruption must also fail the checksum.
	frame = appendFrame(nil, frameCall, 1, []byte("payload"))
	frame[len(frame)-6] ^= 0x01
	if _, _, _, _, err := decodeFrame(frame); !errors.Is(err, errBadFrame) {
		t.Errorf("corrupt body: err = %v", err)
	}
}

func TestFrameRejectsTruncation(t *testing.T) {
	frame := appendFrame(nil, frameErr, 3, []byte("some payload"))
	for cut := 0; cut < len(frame); cut++ {
		if _, _, _, _, err := decodeFrame(frame[:cut]); err == nil {
			t.Errorf("decodeFrame accepted %d/%d-byte prefix", cut, len(frame))
		}
	}
}

func TestFrameRejectsOversizedLength(t *testing.T) {
	// Declare a body just over the limit; the guard must fire before any
	// attempt to read (or allocate) the body.
	hdr := []byte{envelopeVersion}
	hdr = binary.AppendUvarint(hdr, MaxFrameSize+1)
	if _, _, _, _, err := decodeFrame(hdr); !errors.Is(err, errBadFrame) {
		t.Errorf("oversized decodeFrame err = %v", err)
	}
	if _, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr))); !errors.Is(err, errBadFrame) {
		t.Errorf("oversized readFrame err = %v", err)
	}
}

func TestFrameRejectsUnknownKind(t *testing.T) {
	body := []byte{77} // unknown kind
	body = binary.AppendUvarint(body, 1)
	frame := []byte{envelopeVersion}
	frame = binary.AppendUvarint(frame, uint64(len(body)))
	frame = append(frame, body...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(body))
	if _, _, _, _, err := decodeFrame(frame); !errors.Is(err, errBadFrame) {
		t.Errorf("unknown kind err = %v", err)
	}
}

func TestErrPayloadPreservesTransience(t *testing.T) {
	cases := []struct {
		err       error
		temporary bool
	}{
		{fmt.Errorf("wrapped: %w", ErrUnreachable), true},
		{errors.New("permanent failure"), false},
	}
	for _, tc := range cases {
		decoded, err := decodeErrPayload(encodeErrPayload(tc.err))
		if err != nil {
			t.Fatal(err)
		}
		var tmp interface{ Temporary() bool }
		got := errors.As(decoded, &tmp) && tmp.Temporary()
		if got != tc.temporary {
			t.Errorf("transience of %q = %v, want %v", tc.err, got, tc.temporary)
		}
		if decoded.Error() != tc.err.Error() {
			t.Errorf("message %q != %q", decoded.Error(), tc.err.Error())
		}
	}
}

func TestCallPayloadRoundTrip(t *testing.T) {
	payload, err := encodeCallPayload("127.0.0.1:7401", codecRef{Addr: "peer", ID: [4]byte{9}})
	if err != nil {
		t.Fatal(err)
	}
	from, req, err := decodeCallPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if from != "127.0.0.1:7401" {
		t.Errorf("from = %q", from)
	}
	if r, ok := req.(codecRef); !ok || r.Addr != "peer" {
		t.Errorf("req = %#v", req)
	}
}

// FuzzFrame throws arbitrary bytes at the frame decoder. The decoder must
// never panic, never hand back more bytes than it was given, and anything it
// does accept must re-encode to a decodable frame.
func FuzzFrame(f *testing.F) {
	f.Add(appendFrame(nil, frameCall, 1, []byte("seed call")))
	f.Add(appendFrame(nil, frameResp, 1<<40, []byte{}))
	f.Add(appendFrame(nil, frameErr, 0, encodeErrPayload(ErrUnreachable)))
	long := appendFrame(nil, frameResp, 7, bytes.Repeat([]byte{1}, 1000))
	f.Add(long)
	f.Add(long[:len(long)-3])            // truncated
	f.Add([]byte{envelopeVersion, 0xFF}) // hostile length
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, seq, payload, rest, err := decodeFrame(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("rest grew: %d > %d", len(rest), len(data))
		}
		reencoded := appendFrame(nil, kind, seq, payload)
		k2, s2, p2, r2, err := decodeFrame(reencoded)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		if k2 != kind || s2 != seq || !bytes.Equal(p2, payload) || len(r2) != 0 {
			t.Fatalf("re-encode mismatch: kind %d→%d seq %d→%d", kind, k2, seq, s2)
		}
	})
}

// FuzzReadFrame runs the same property through the streaming reader, which
// has its own allocation guard.
func FuzzReadFrame(f *testing.F) {
	f.Add(appendFrame(nil, frameCall, 5, []byte("stream seed")))
	hostile := []byte{envelopeVersion}
	hostile = binary.AppendUvarint(hostile, MaxFrameSize+1)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(io.LimitReader(bytes.NewReader(data), int64(len(data))))
		kind, seq, payload, err := readFrame(br)
		if err != nil {
			return
		}
		reencoded := appendFrame(nil, kind, seq, payload)
		if _, _, _, _, err := decodeFrame(reencoded); err != nil {
			t.Fatalf("re-encode of streamed frame failed: %v", err)
		}
	})
}

// FuzzUnmarshal throws arbitrary bytes at the value codec: no panics, no
// unbounded allocations (enforced by the testing runtime's memory limits on
// pathological inputs).
func FuzzUnmarshal(f *testing.F) {
	seed, _ := Marshal(codecStruct{Name: "seed", Entries: map[string]any{"k": 1}})
	f.Add(seed)
	seedRefs, _ := Marshal([]codecRef{{Addr: "a"}})
	f.Add(seedRefs)
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Anything accepted must re-marshal (closure under round-trips).
		if _, err := Marshal(v); err != nil {
			t.Fatalf("re-marshal of accepted value %#v failed: %v", v, err)
		}
	})
}
