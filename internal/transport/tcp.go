package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPOptions tunes a TCP transport. The zero value selects the defaults.
type TCPOptions struct {
	// CallTimeout bounds one RPC round trip (queue + write + remote handler
	// + response). Expired calls fail with a transient error, so retry
	// layers treat a hung peer like a lost message. Default 10s.
	CallTimeout time.Duration
	// DialTimeout bounds establishing a connection to a peer. Default 5s.
	DialTimeout time.Duration
	// WriteTimeout bounds one frame write on either side. Default 10s.
	WriteTimeout time.Duration
	// IdleTimeout is the server-side read deadline: a connection that stays
	// silent this long is closed (the client transparently redials on its
	// next call). Default 2m.
	IdleTimeout time.Duration
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.CallTimeout <= 0 {
		o.CallTimeout = 10 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	return o
}

// TCP implements Interface over real sockets. A NodeID is the peer's
// dialable listen address ("host:port"): Register opens a listener at that
// address, and Call dials the destination directly, so the refs the
// overlays gossip are themselves routable and no address resolution layer
// is needed.
//
// Outbound connections are pooled: the first call to a peer dials once, and
// every later call multiplexes over the same connection through a write
// pump, matched to its response by the envelope sequence number. A failed
// connection drains its in-flight calls with a transient error and is
// redialed on the next call.
//
// The fault hooks (SetDown, Crash, Restart, IsDown) act on *local* nodes
// only — a process cannot partition a peer it does not host. A down local
// node answers every inbound call with a transient unreachable error and
// refuses to originate calls, mirroring simnet's crash semantics closely
// enough that the overlay lifecycle paths (CrashNode, RestartNode) work
// unchanged.
type TCP struct {
	opts TCPOptions

	mu     sync.Mutex
	locals map[NodeID]*tcpLocal
	peers  map[NodeID]*tcpPeer
	down   map[NodeID]bool
	conns  map[net.Conn]struct{} // accepted inbound connections
	closed bool
	wg     sync.WaitGroup
}

var _ Interface = (*TCP)(nil)

// NewTCP creates a TCP transport hosting no nodes yet.
func NewTCP(opts TCPOptions) *TCP {
	return &TCP{
		opts:   opts.withDefaults(),
		locals: make(map[NodeID]*tcpLocal),
		peers:  make(map[NodeID]*tcpPeer),
		down:   make(map[NodeID]bool),
		conns:  make(map[net.Conn]struct{}),
	}
}

// tcpLocal is one hosted node: a listener plus its request handler.
type tcpLocal struct {
	id NodeID
	ln net.Listener

	mu sync.Mutex
	h  Handler
}

func (l *tcpLocal) handler() Handler {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h
}

// Reserve binds a loopback listener on an ephemeral port and returns its
// address as a NodeID, without attaching a handler yet. Tests and daemons
// use it to learn concrete addresses ("127.0.0.1:0" resolved) before the
// overlay nodes that will own them exist; a later Register with the same id
// attaches the handler to the already-listening socket, so no port is ever
// advertised before it is bound.
func (t *TCP) Reserve() (NodeID, error) {
	return t.listen("127.0.0.1:0", nil)
}

// Listen binds a listener on an explicit address ("host:port", ":7400") and
// returns the resolved NodeID. Like Reserve, the handler arrives with a
// later Register.
func (t *TCP) Listen(addr string) (NodeID, error) {
	return t.listen(addr, nil)
}

func (t *TCP) listen(addr string, h Handler) (NodeID, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return "", ErrClosed
	}
	t.mu.Unlock()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %q: %w", addr, err)
	}
	id := NodeID(ln.Addr().String())
	l := &tcpLocal{id: id, ln: ln, h: h}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		ln.Close() //lint:allow droppederr best-effort teardown of an already-failed or superseded conn
		return "", ErrClosed
	}
	if _, dup := t.locals[id]; dup {
		t.mu.Unlock()
		ln.Close() //lint:allow droppederr best-effort teardown of an already-failed or superseded conn
		return "", fmt.Errorf("%w: %q", ErrDuplicateNode, id)
	}
	t.locals[id] = l
	t.wg.Add(1)
	t.mu.Unlock()

	go t.acceptLoop(l)
	return id, nil
}

// Register attaches a handler under id. If id names a reserved listener the
// handler is attached to it; otherwise a new listener is bound at the
// address id spells.
func (t *TCP) Register(id NodeID, h Handler) error {
	if h == nil {
		return fmt.Errorf("transport: nil handler for %q", id)
	}
	t.mu.Lock()
	l, ok := t.locals[id]
	t.mu.Unlock()
	if ok {
		l.mu.Lock()
		defer l.mu.Unlock()
		if l.h != nil {
			return fmt.Errorf("%w: %q", ErrDuplicateNode, id)
		}
		l.h = h
		return nil
	}
	got, err := t.listen(string(id), h)
	if err != nil {
		return err
	}
	if got != id {
		// The listener resolved to a different address than the id spells
		// (e.g. an ephemeral port was requested under a fixed name). Peers
		// would dial the id and miss the listener, so refuse.
		t.Deregister(got)
		return fmt.Errorf("transport: register %q resolved to %q; use Reserve for ephemeral ports", id, got)
	}
	return nil
}

// Deregister closes the node's listener and forgets it. In-flight handler
// executions finish; their connections die with the listener's teardown.
func (t *TCP) Deregister(id NodeID) {
	t.mu.Lock()
	l, ok := t.locals[id]
	delete(t.locals, id)
	delete(t.down, id)
	t.mu.Unlock()
	if ok {
		l.ln.Close() //lint:allow droppederr best-effort teardown of an already-failed or superseded conn
	}
}

// SetDown marks a local node as partitioned (true) or healed (false): while
// down it answers every call with a transient unreachable error and cannot
// originate calls, but keeps all state — the partition/crash split the
// churn machinery relies on.
func (t *TCP) SetDown(id NodeID, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if down {
		t.down[id] = true
	} else {
		delete(t.down, id)
	}
}

// Crash marks a local node down and destroys its volatile state via the
// Crasher hook, exactly as simnet.Network.Crash does.
func (t *TCP) Crash(id NodeID) error {
	t.mu.Lock()
	l, ok := t.locals[id]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("transport: crash of unregistered node %q", id)
	}
	t.down[id] = true
	t.mu.Unlock()
	if c, ok := l.handler().(Crasher); ok {
		c.OnCrash()
	}
	return nil
}

// Restart clears a local node's down mark and runs its Restarter hook so
// recovery completes before peers can observe the node.
func (t *TCP) Restart(id NodeID) error {
	t.mu.Lock()
	l, ok := t.locals[id]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("transport: restart of unregistered node %q", id)
	}
	delete(t.down, id)
	t.mu.Unlock()
	if r, ok := l.handler().(Restarter); ok {
		r.OnRestart()
	}
	return nil
}

// IsDown reports whether a local node is marked down.
func (t *TCP) IsDown(id NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.down[id]
}

// OneWayLatency implements Interface: a real network has no latency model.
func (t *TCP) OneWayLatency(from, to NodeID) time.Duration { return 0 }

// Close shuts the transport down gracefully: listeners stop accepting,
// pooled connections close (draining in-flight calls with a transient
// error), and Close blocks until every connection goroutine has exited.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	locals := make([]*tcpLocal, 0, len(t.locals))
	for _, l := range t.locals {
		locals = append(locals, l)
	}
	peers := make([]*tcpPeer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.locals = make(map[NodeID]*tcpLocal)
	t.peers = make(map[NodeID]*tcpPeer)
	t.conns = make(map[net.Conn]struct{})
	t.mu.Unlock()

	for _, l := range locals {
		l.ln.Close() //lint:allow droppederr best-effort teardown of an already-failed or superseded conn
	}
	for _, p := range peers {
		p.fail(ErrClosed)
	}
	for _, c := range conns {
		c.Close() //lint:allow droppederr best-effort teardown of an already-failed or superseded conn
	}
	t.wg.Wait()
	return nil
}

// acceptLoop serves one listener until it closes.
func (t *TCP) acceptLoop(l *tcpLocal) {
	defer t.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close() //lint:allow droppederr best-effort teardown of an already-failed or superseded conn
			return
		}
		t.conns[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.serveConn(l, conn)
	}
}

// serveConn handles one inbound connection: frames are read under the idle
// deadline, each call runs its handler on its own goroutine (nested RPCs
// must not block the connection), and responses funnel through a write pump
// so concurrent completions never interleave bytes.
func (t *TCP) serveConn(l *tcpLocal, conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	defer func() {
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()

	writeCh := make(chan []byte, 16)
	writeDone := make(chan struct{})
	go func() {
		defer close(writeDone)
		for frame := range writeCh {
			conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout)) //lint:allow determinism socket deadlines are wall-clock by nature
			if _, err := conn.Write(frame); err != nil {
				// Reader notices the dead conn on its next read.
				conn.Close() //lint:allow droppederr best-effort teardown of an already-failed or superseded conn
				return
			}
		}
	}()
	var handlers sync.WaitGroup
	defer func() {
		// Let in-flight handlers finish enqueueing, then drain the pump.
		handlers.Wait()
		close(writeCh)
		<-writeDone
	}()

	br := bufio.NewReader(conn)
	for {
		conn.SetReadDeadline(time.Now().Add(t.opts.IdleTimeout)) //lint:allow determinism socket deadlines are wall-clock by nature
		kind, seq, payload, err := readFrame(br)
		if err != nil {
			return
		}
		if kind != frameCall {
			continue // a server connection only ever receives calls
		}
		handlers.Add(1)
		go func(seq uint64, payload []byte) {
			defer handlers.Done()
			frame := t.dispatch(l, seq, payload)
			select {
			case writeCh <- frame:
			case <-writeDone:
			}
		}(seq, payload)
	}
}

// dispatch decodes one call, runs the handler, and encodes the reply frame.
func (t *TCP) dispatch(l *tcpLocal, seq uint64, payload []byte) []byte {
	from, req, err := decodeCallPayload(payload)
	if err != nil {
		return appendFrame(nil, frameErr, seq, encodeErrPayload(err))
	}
	if t.IsDown(l.id) {
		return appendFrame(nil, frameErr, seq,
			encodeErrPayload(fmt.Errorf("%w: %q", ErrUnreachable, l.id)))
	}
	h := l.handler()
	if h == nil {
		return appendFrame(nil, frameErr, seq,
			encodeErrPayload(fmt.Errorf("%w: %q has no handler yet", ErrUnreachable, l.id)))
	}
	resp, err := h.HandleRPC(from, req)
	if err != nil {
		return appendFrame(nil, frameErr, seq, encodeErrPayload(err))
	}
	body, err := appendAny(nil, resp)
	if err != nil {
		return appendFrame(nil, frameErr, seq,
			encodeErrPayload(fmt.Errorf("transport: %q: encode response: %v", l.id, err)))
	}
	return appendFrame(nil, frameResp, seq, body)
}

// callResult carries one response back to its waiting caller.
type callResult struct {
	resp any
	err  error
}

// tcpPeer is one pooled outbound connection, multiplexing concurrent calls.
type tcpPeer struct {
	addr NodeID

	mu      sync.Mutex
	conn    net.Conn
	writeCh chan []byte
	done    chan struct{}
	pending map[uint64]chan callResult
	seq     uint64
	dead    error // non-nil once the connection failed
}

// fail tears the connection down, draining every in-flight call with err.
func (p *tcpPeer) fail(err error) {
	p.mu.Lock()
	if p.dead != nil {
		p.mu.Unlock()
		return
	}
	p.dead = err
	conn := p.conn
	pending := p.pending
	p.pending = nil
	p.mu.Unlock()
	if conn != nil {
		conn.Close() //lint:allow droppederr best-effort teardown of an already-failed or superseded conn
	}
	close(p.done)
	for _, ch := range pending {
		ch <- callResult{err: err}
	}
}

// Call implements Interface. The handler runs in the destination process;
// any delivery failure — dial refused, connection lost, timeout — comes
// back as a transient error so retry layers can act on it.
func (t *TCP) Call(from, to NodeID, req any) (any, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if t.down[from] {
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrCallerDown, from)
	}
	t.mu.Unlock()

	payload, err := encodeCallPayload(from, req)
	if err != nil {
		return nil, fmt.Errorf("transport: call %q→%q: %w", from, to, err)
	}
	p, err := t.peer(to)
	if err != nil {
		return nil, err
	}

	ch := make(chan callResult, 1)
	p.mu.Lock()
	if p.dead != nil {
		err := p.dead
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: %q: %v", ErrUnreachable, to, err)
	}
	p.seq++
	seq := p.seq
	p.pending[seq] = ch
	p.mu.Unlock()

	frame := appendFrame(nil, frameCall, seq, payload)
	timer := time.NewTimer(t.opts.CallTimeout)
	defer timer.Stop()

	select {
	case p.writeCh <- frame:
	case <-p.done:
		t.dropPeer(p)
		return nil, fmt.Errorf("%w: %q: connection lost", ErrUnreachable, to)
	case <-timer.C:
		p.forget(seq)
		return nil, fmt.Errorf("%w: %q: call timed out", ErrUnreachable, to)
	}

	select {
	case r := <-ch:
		if r.err != nil {
			if p.isDead() {
				t.dropPeer(p)
			}
			return nil, r.err
		}
		return r.resp, nil
	case <-timer.C:
		p.forget(seq)
		return nil, fmt.Errorf("%w: %q: call timed out", ErrUnreachable, to)
	}
}

func (p *tcpPeer) forget(seq uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.pending, seq)
}

func (p *tcpPeer) isDead() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dead != nil
}

// dropPeer removes a failed connection from the pool so the next call to
// that address dials afresh.
func (t *TCP) dropPeer(p *tcpPeer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.peers[p.addr]; ok && cur == p {
		delete(t.peers, p.addr)
	}
}

// peer returns the pooled connection to addr, dialing it if absent. Dial
// errors are transient: the peer process may simply not be up yet.
func (t *TCP) peer(addr NodeID) (*tcpPeer, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if p, ok := t.peers[addr]; ok {
		t.mu.Unlock()
		return p, nil
	}
	t.mu.Unlock()

	conn, err := net.DialTimeout("tcp", string(addr), t.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %q: %v", ErrUnreachable, addr, err)
	}

	p := &tcpPeer{
		addr:    addr,
		conn:    conn,
		writeCh: make(chan []byte, 16),
		done:    make(chan struct{}),
		pending: make(map[uint64]chan callResult),
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close() //lint:allow droppederr best-effort teardown of an already-failed or superseded conn
		return nil, ErrClosed
	}
	if cur, ok := t.peers[addr]; ok {
		// Lost the dial race; use the winner's connection.
		t.mu.Unlock()
		conn.Close() //lint:allow droppederr best-effort teardown of an already-failed or superseded conn
		return cur, nil
	}
	t.peers[addr] = p
	t.wg.Add(2)
	t.mu.Unlock()

	go t.peerWriteLoop(p)
	go t.peerReadLoop(p)
	return p, nil
}

// peerWriteLoop is the connection's write pump.
func (t *TCP) peerWriteLoop(p *tcpPeer) {
	defer t.wg.Done()
	for {
		select {
		case frame := <-p.writeCh:
			p.conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout)) //lint:allow determinism socket deadlines are wall-clock by nature
			if _, err := p.conn.Write(frame); err != nil {
				p.fail(fmt.Errorf("%w: %q: %v", ErrUnreachable, p.addr, err))
				return
			}
		case <-p.done:
			return
		}
	}
}

// peerReadLoop dispatches responses to their waiting callers by sequence
// number. Responses whose caller already timed out are dropped.
func (t *TCP) peerReadLoop(p *tcpPeer) {
	defer t.wg.Done()
	br := bufio.NewReader(p.conn)
	for {
		kind, seq, payload, err := readFrame(br)
		if err != nil {
			p.fail(fmt.Errorf("%w: %q: %v", ErrUnreachable, p.addr, err))
			t.dropPeer(p)
			return
		}
		var result callResult
		switch kind {
		case frameResp:
			v, err := Unmarshal(payload)
			if err != nil {
				result = callResult{err: fmt.Errorf("transport: %q: decode response: %w", p.addr, err)}
			} else {
				result = callResult{resp: v}
			}
		case frameErr:
			remoteErr, err := decodeErrPayload(payload)
			if err != nil {
				result = callResult{err: fmt.Errorf("transport: %q: decode error frame: %w", p.addr, err)}
			} else {
				result = callResult{err: remoteErr}
			}
		default:
			continue // a client connection only ever receives replies
		}
		p.mu.Lock()
		ch := p.pending[seq]
		delete(p.pending, seq)
		p.mu.Unlock()
		if ch != nil {
			// Non-blocking by construction: the channel is buffered(1) and
			// the entry left the map above, so only one sender can ever
			// reach it — but delivering through a default arm makes the
			// read loop's liveness a local fact instead of a cross-function
			// argument (and keeps the goroutineleak pass's proof trivial).
			select {
			case ch <- result:
			default:
			}
		}
	}
}
