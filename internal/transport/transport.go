// Package transport defines the RPC boundary every DHT overlay in this
// repository speaks: synchronous request/response calls between named
// peers, handler registration, and the fault-injection hooks (down marks,
// crashes, restarts) the churn machinery drives.
//
// The interface is extracted from internal/simnet, whose Network was the
// implicit contract the overlays were written against. simnet remains one
// implementation — the deterministic in-process simulator — and this
// package adds TCP (tcp.go): length-prefixed framed envelopes over real
// sockets, so a cluster of OS processes can serve the same overlays. The
// overlay packages (chord, pastry, kademlia) take a transport.Interface and
// run unchanged over either.
//
// The two implementations differ in one observable capability: simnet
// delivers requests *inline* (the remote handler runs on the caller's
// goroutine in the same address space), so values that cannot cross a
// process boundary — dht.ApplyFunc closures — work. Real transports cannot
// do that; callers probe with SupportsInline and fall back to a wire-safe
// protocol (see dht.RemoteApply).
package transport

import (
	"errors"
	"time"
)

// NodeID identifies a peer. For the simulated network it is an arbitrary
// label; for TCP it is the peer's dialable listen address ("host:port"), so
// a ref learned from any overlay message is directly reachable and no
// separate address book is needed.
type NodeID string

// Handler processes one inbound RPC on a peer. Implementations must be safe
// for concurrent use if the transport is driven from multiple goroutines.
type Handler interface {
	HandleRPC(from NodeID, req any) (any, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from NodeID, req any) (any, error)

// HandleRPC implements Handler.
func (f HandlerFunc) HandleRPC(from NodeID, req any) (any, error) { return f(from, req) }

// Crasher is implemented by handlers whose node holds volatile state that a
// hard crash destroys. Crash invokes OnCrash after marking the node down,
// so the handler wipes memory-resident buckets, routing tables, and
// replicas exactly as a process kill would. Durable state (a write-ahead
// log, a snapshot file) must survive OnCrash.
type Crasher interface {
	OnCrash()
}

// Restarter is implemented by handlers that rebuild volatile state when the
// process comes back: Restart invokes OnRestart after clearing the down
// mark, so recovery (log replay, rejoin) runs before any peer traffic can
// observe the node.
type Restarter interface {
	OnRestart()
}

// Interface is the message fabric the overlays are written against.
//
// Call performs a synchronous RPC and must be safe for concurrent use. A
// failed delivery (peer down, link lost, connection refused) is reported
// with an error that declares itself transient via the net.Error
// Temporary() convention, so retry layers (dht.DefaultClassify) recognise
// it without importing the transport.
//
// Register/Deregister manage the local request handlers; SetDown, Crash,
// Restart, and IsDown are the fault-injection and lifecycle hooks (a real
// transport implements them for its local nodes only — it cannot partition
// a remote process). OneWayLatency exposes the modeled one-way delay so
// application layers can account critical-path time; transports without a
// latency model return zero.
type Interface interface {
	Call(from, to NodeID, req any) (any, error)
	Register(id NodeID, h Handler) error
	Deregister(id NodeID)
	SetDown(id NodeID, down bool)
	Crash(id NodeID) error
	Restart(id NodeID) error
	IsDown(id NodeID) bool
	OneWayLatency(from, to NodeID) time.Duration
}

// InlineCaller is the capability marker for transports that deliver a
// request to the remote handler within the caller's address space, so
// non-serialisable values (closures) survive the trip. simnet implements
// it; TCP does not.
type InlineCaller interface {
	InlineDelivery() bool
}

// SupportsInline reports whether t delivers requests inline (same address
// space). Overlay code uses it to choose between the closure-carrying apply
// path and the wire-safe compare-and-swap protocol.
func SupportsInline(t Interface) bool {
	ic, ok := t.(InlineCaller)
	return ok && ic.InlineDelivery()
}

// temporaryError declares itself transient via the net.Error Temporary()
// convention, mirroring simnet's failure sentinels.
type temporaryError struct{ msg string }

func (e *temporaryError) Error() string   { return e.msg }
func (e *temporaryError) Temporary() bool { return true }

var (
	// ErrUnreachable is returned when the destination peer cannot be
	// reached: nothing listens at its address, the connection died, or the
	// call timed out. It is Temporary(): the peer may recover, so retry
	// layers treat it as transient.
	ErrUnreachable error = &temporaryError{"transport: peer unreachable"}
	// ErrCallerDown is returned when the *calling* node is marked down. It
	// is deliberately not Temporary() — retrying from a crashed node cannot
	// succeed until that node itself recovers.
	ErrCallerDown = errors.New("transport: calling peer is down")
	// ErrDuplicateNode is returned when registering an already registered
	// node identifier.
	ErrDuplicateNode = errors.New("transport: node already registered")
	// ErrClosed is returned by operations on a transport after Close.
	ErrClosed = errors.New("transport: closed")
)
