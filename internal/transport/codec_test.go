package transport

import (
	"reflect"
	"strings"
	"testing"
)

type codecStruct struct {
	Name    string
	N       int
	B       []byte
	Entries map[string]any
	Nested  *codecStruct
	Any     any

	hidden int // unexported: must not cross the wire
}

type codecEmpty struct{}

type codecRef struct {
	Addr string
	ID   [4]byte
}

func init() {
	RegisterType(codecStruct{})
	RegisterType(codecEmpty{})
	RegisterType(codecRef{})
	RegisterType([]codecRef(nil))
	RegisterType(map[string]int(nil))
}

func roundTrip(t *testing.T, v any) any {
	t.Helper()
	data, err := Marshal(v)
	if err != nil {
		t.Fatalf("Marshal(%#v): %v", v, err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal of %#v's encoding: %v", v, err)
	}
	return got
}

func TestCodecRoundTripScalars(t *testing.T) {
	for _, v := range []any{
		true, false, "", "hello", int(-42), int(1 << 40), int8(-7),
		int16(300), int32(-70000), int64(1) << 60, uint(9), uint8(255),
		uint16(65535), uint32(1 << 30), uint64(1) << 63,
		float32(3.5), float64(-2.25), []byte{1, 2, 3}, []byte{},
		struct{}{}, nil,
	} {
		if got := roundTrip(t, v); !reflect.DeepEqual(got, v) {
			t.Errorf("round trip of %#v = %#v", v, got)
		}
	}
}

func TestCodecRoundTripStructs(t *testing.T) {
	v := codecStruct{
		Name:    "bucket/0110",
		N:       -17,
		B:       []byte("payload"),
		Entries: map[string]any{"a": 1, "b": "two", "c": codecRef{Addr: "x"}},
		Nested:  &codecStruct{Name: "inner", Any: uint64(12)},
		Any:     codecEmpty{},
		hidden:  99,
	}
	got := roundTrip(t, v)
	want := v
	want.hidden = 0
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip:\n got %#v\nwant %#v", got, want)
	}
}

func TestCodecRoundTripCollections(t *testing.T) {
	for _, v := range []any{
		[]codecRef{{Addr: "a", ID: [4]byte{1}}, {Addr: "b"}},
		[]codecRef{},
		[]codecRef(nil),
		map[string]int{"x": 1, "y": -2},
		map[string]int{},
		map[string]int(nil),
	} {
		if got := roundTrip(t, v); !reflect.DeepEqual(got, v) {
			t.Errorf("round trip of %#v = %#v", v, got)
		}
	}
}

func TestCodecDeterministicMaps(t *testing.T) {
	v := map[string]int{"alpha": 1, "beta": 2, "gamma": 3, "delta": 4, "epsilon": 5}
	first, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := Marshal(map[string]int{"gamma": 3, "epsilon": 5, "alpha": 1, "delta": 4, "beta": 2})
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatalf("map encoding not deterministic: %x vs %x", again, first)
		}
	}
}

func TestCodecUnregisteredType(t *testing.T) {
	type private struct{ X int }
	if _, err := Marshal(private{X: 1}); err == nil {
		t.Error("Marshal of unregistered type succeeded")
	}
	if _, err := Marshal(codecStruct{Any: private{}}); err == nil {
		t.Error("Marshal with unregistered interface payload succeeded")
	}
}

func TestCodecRegisterCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering a name with a different type did not panic")
		}
	}()
	// Forge a name collision: two distinct local types print the same name.
	register := func() {
		type collider struct{ A int }
		RegisterType(collider{})
	}
	register()
	func() {
		type collider struct{ B string }
		RegisterType(collider{})
	}()
}

func TestCodecTrailingGarbage(t *testing.T) {
	data, err := Marshal("ok")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(append(data, 0xFF)); err == nil {
		t.Error("Unmarshal accepted trailing garbage")
	}
}

func TestCodecTruncatedInputs(t *testing.T) {
	data, err := Marshal(codecStruct{Name: "x", B: []byte("abc"), Entries: map[string]any{"k": 7}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := Unmarshal(data[:cut]); err == nil {
			t.Errorf("Unmarshal of %d/%d-byte prefix succeeded", cut, len(data))
		}
	}
}

func TestCodecHostileLengths(t *testing.T) {
	// A declared length far beyond the remaining payload must be rejected
	// before allocation, not trusted.
	data, err := Marshal([]codecRef{{Addr: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the element-count uvarint region and expect an error, never a
	// panic or a giant allocation.
	for i := 0; i < len(data); i++ {
		mutated := append([]byte(nil), data...)
		mutated[i] = 0xFF
		//lint:allow droppederr the probe only checks for panics and runaway allocation
		_, _ = Unmarshal(mutated)
	}
	if _, err := Unmarshal([]byte{4, 'u', 'i', 'n', 't'}); err == nil {
		t.Error("bare type tag with no payload decoded")
	}
}

func TestCodecAdapterMatchesPackageFuncs(t *testing.T) {
	var c Codec
	data, err := c.Marshal("abc")
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if v != "abc" {
		t.Errorf("Codec round trip = %#v", v)
	}
}

func TestCodecErrorMentionsTypeName(t *testing.T) {
	type unknown struct{ Z int }
	_, err := Marshal(unknown{})
	if err == nil || !strings.Contains(err.Error(), "unregistered") {
		t.Errorf("err = %v, want mention of unregistered type", err)
	}
}
