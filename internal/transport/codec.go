package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
)

// This file is the value codec of the wire transport: a reflection-driven
// binary encoding with an explicit type registry, following the codec
// conventions of internal/wire (uvarint lengths, little-endian fixed-width
// scalars, attack-resistant bounds checks on every length read).
//
// Why not gob or JSON: gob refuses struct types with zero exported fields,
// and the overlay protocols are full of them (pingReq struct{}, struct{}{}
// acks); JSON decodes every number to float64, breaking the int round-trips
// the dhttest conformance suite pins. A hand-rolled codec also keeps the
// encoding deterministic (map entries are sorted by encoded key), which the
// repository's determinism lint cares about.
//
// A value crosses the wire type-tagged: the dynamic type's name (as printed
// by reflect.Type.String, e.g. "chord.storeReq") followed by the value
// encoded structurally. Only types that travel *as dynamic values* — the
// request/response structs themselves, and anything stored in an `any`
// field — need registering (RegisterType, called from each overlay's init).
// Field types are recovered structurally from the registered struct type,
// so refs, dht.IDs, and maps need no registration of their own.

// typeRegistry maps wire type names to concrete types.
var typeRegistry = struct {
	sync.RWMutex
	byName map[string]reflect.Type
}{byName: make(map[string]reflect.Type)}

// RegisterType makes v's dynamic type decodable when received as a
// type-tagged wire value. Registration is idempotent for the same type;
// registering a *different* type under an already-taken name panics (the
// name is the wire identity, so a collision is a programming error caught
// at init time).
func RegisterType(v any) {
	t := reflect.TypeOf(v)
	if t == nil {
		return
	}
	name := t.String()
	typeRegistry.Lock()
	defer typeRegistry.Unlock()
	if prev, ok := typeRegistry.byName[name]; ok && prev != t {
		panic(fmt.Sprintf("transport: wire name %q already registered to %v", name, prev))
	}
	typeRegistry.byName[name] = t
}

func lookupType(name string) (reflect.Type, bool) {
	typeRegistry.RLock()
	defer typeRegistry.RUnlock()
	t, ok := typeRegistry.byName[name]
	return t, ok
}

func init() {
	// Builtin dynamic types every substrate exchanges: stored values of the
	// conformance suites and the empty-struct acks of the overlay protocols.
	for _, v := range []any{
		false, "", int(0), int8(0), int16(0), int32(0), int64(0),
		uint(0), uint8(0), uint16(0), uint32(0), uint64(0),
		float32(0), float64(0), []byte(nil), struct{}{},
	} {
		RegisterType(v)
	}
}

// Marshal encodes v type-tagged. v's dynamic type (and the dynamic type of
// every value reached through an interface field) must be registered.
func Marshal(v any) ([]byte, error) {
	return appendAny(nil, v)
}

func appendAny(buf []byte, v any) ([]byte, error) {
	if v == nil {
		return appendString(buf, ""), nil
	}
	rv := reflect.ValueOf(v)
	name := rv.Type().String()
	if _, ok := lookupType(name); !ok {
		return nil, fmt.Errorf("transport: marshal of unregistered type %s", name)
	}
	buf = appendString(buf, name)
	return appendValue(buf, rv)
}

// Unmarshal decodes one type-tagged value, rejecting trailing garbage.
func Unmarshal(data []byte) (any, error) {
	v, rest, err := consumeAny(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes after value", len(rest))
	}
	return v, nil
}

func consumeAny(data []byte) (any, []byte, error) {
	name, rest, err := consumeString(data)
	if err != nil {
		return nil, nil, err
	}
	if name == "" {
		return nil, rest, nil
	}
	t, ok := lookupType(name)
	if !ok {
		return nil, nil, fmt.Errorf("transport: unmarshal of unregistered type %q", name)
	}
	rv, rest, err := consumeValue(rest, t)
	if err != nil {
		return nil, nil, fmt.Errorf("transport: unmarshal %s: %w", name, err)
	}
	return rv.Interface(), rest, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func consumeString(data []byte) (string, []byte, error) {
	n, rest, err := consumeUvarint(data)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, fmt.Errorf("transport: string length %d exceeds %d remaining bytes", n, len(rest))
	}
	return string(rest[:n]), rest[n:], nil
}

func consumeUvarint(data []byte) (uint64, []byte, error) {
	n, w := binary.Uvarint(data)
	if w <= 0 {
		return 0, nil, fmt.Errorf("transport: truncated or malformed uvarint")
	}
	return n, data[w:], nil
}

// appendValue encodes rv structurally (no type tag).
func appendValue(buf []byte, rv reflect.Value) ([]byte, error) {
	switch rv.Kind() {
	case reflect.Bool:
		if rv.Bool() {
			return append(buf, 1), nil
		}
		return append(buf, 0), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return binary.AppendVarint(buf, rv.Int()), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return binary.AppendUvarint(buf, rv.Uint()), nil
	case reflect.Float32:
		return binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(rv.Float()))), nil
	case reflect.Float64:
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(rv.Float())), nil
	case reflect.String:
		return appendString(buf, rv.String()), nil
	case reflect.Slice:
		if rv.IsNil() {
			return append(buf, 0), nil
		}
		buf = append(buf, 1)
		n := rv.Len()
		buf = binary.AppendUvarint(buf, uint64(n))
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			return append(buf, rv.Bytes()...), nil
		}
		var err error
		for i := 0; i < n; i++ {
			if buf, err = appendValue(buf, rv.Index(i)); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case reflect.Array:
		var err error
		for i := 0; i < rv.Len(); i++ {
			if buf, err = appendValue(buf, rv.Index(i)); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case reflect.Map:
		return appendMap(buf, rv)
	case reflect.Struct:
		t := rv.Type()
		var err error
		for i := 0; i < t.NumField(); i++ {
			if t.Field(i).PkgPath != "" {
				continue // unexported: not part of the wire shape
			}
			if buf, err = appendValue(buf, rv.Field(i)); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case reflect.Pointer:
		if rv.IsNil() {
			return append(buf, 0), nil
		}
		return appendValue(append(buf, 1), rv.Elem())
	case reflect.Interface:
		if rv.IsNil() {
			return append(buf, 0), nil
		}
		return appendAny(append(buf, 1), rv.Elem().Interface())
	default:
		return nil, fmt.Errorf("transport: cannot marshal %s value", rv.Type())
	}
}

// appendMap encodes a map with entries sorted by encoded key bytes, so the
// wire form of a given map is deterministic regardless of iteration order.
func appendMap(buf []byte, rv reflect.Value) ([]byte, error) {
	if rv.IsNil() {
		return append(buf, 0), nil
	}
	buf = append(buf, 1)
	buf = binary.AppendUvarint(buf, uint64(rv.Len()))
	type entry struct{ key, val []byte }
	entries := make([]entry, 0, rv.Len())
	iter := rv.MapRange()
	for iter.Next() {
		k, err := appendValue(nil, iter.Key())
		if err != nil {
			return nil, err
		}
		v, err := appendValue(nil, iter.Value())
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{k, v})
	}
	sort.Slice(entries, func(i, j int) bool {
		return string(entries[i].key) < string(entries[j].key)
	})
	for _, e := range entries {
		buf = append(buf, e.key...)
		buf = append(buf, e.val...)
	}
	return buf, nil
}

func consumeBool(data []byte) (bool, []byte, error) {
	if len(data) < 1 {
		return false, nil, fmt.Errorf("transport: truncated bool")
	}
	switch data[0] {
	case 0:
		return false, data[1:], nil
	case 1:
		return true, data[1:], nil
	default:
		return false, nil, fmt.Errorf("transport: bad bool byte %#x", data[0])
	}
}

// consumeValue decodes one structural value of type t.
func consumeValue(data []byte, t reflect.Type) (reflect.Value, []byte, error) {
	switch t.Kind() {
	case reflect.Bool:
		b, rest, err := consumeBool(data)
		if err != nil {
			return reflect.Value{}, nil, err
		}
		v := reflect.New(t).Elem()
		v.SetBool(b)
		return v, rest, nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n, w := binary.Varint(data)
		if w <= 0 {
			return reflect.Value{}, nil, fmt.Errorf("transport: truncated varint")
		}
		v := reflect.New(t).Elem()
		if v.OverflowInt(n) {
			return reflect.Value{}, nil, fmt.Errorf("transport: %d overflows %s", n, t)
		}
		v.SetInt(n)
		return v, data[w:], nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		n, rest, err := consumeUvarint(data)
		if err != nil {
			return reflect.Value{}, nil, err
		}
		v := reflect.New(t).Elem()
		if v.OverflowUint(n) {
			return reflect.Value{}, nil, fmt.Errorf("transport: %d overflows %s", n, t)
		}
		v.SetUint(n)
		return v, rest, nil
	case reflect.Float32:
		if len(data) < 4 {
			return reflect.Value{}, nil, fmt.Errorf("transport: truncated float32")
		}
		v := reflect.New(t).Elem()
		v.SetFloat(float64(math.Float32frombits(binary.LittleEndian.Uint32(data))))
		return v, data[4:], nil
	case reflect.Float64:
		if len(data) < 8 {
			return reflect.Value{}, nil, fmt.Errorf("transport: truncated float64")
		}
		v := reflect.New(t).Elem()
		v.SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(data)))
		return v, data[8:], nil
	case reflect.String:
		s, rest, err := consumeString(data)
		if err != nil {
			return reflect.Value{}, nil, err
		}
		v := reflect.New(t).Elem()
		v.SetString(s)
		return v, rest, nil
	case reflect.Slice:
		present, rest, err := consumeBool(data)
		if err != nil {
			return reflect.Value{}, nil, err
		}
		v := reflect.New(t).Elem()
		if !present {
			return v, rest, nil
		}
		n, rest, err := consumeUvarint(rest)
		if err != nil {
			return reflect.Value{}, nil, err
		}
		if t.Elem().Kind() == reflect.Uint8 {
			if n > uint64(len(rest)) {
				return reflect.Value{}, nil, fmt.Errorf("transport: byte slice length %d exceeds %d remaining", n, len(rest))
			}
			b := make([]byte, n)
			copy(b, rest[:n])
			v.SetBytes(b)
			return v, rest[n:], nil
		}
		// One encoded element costs at least a byte: reject lengths the
		// remaining payload cannot possibly hold before allocating.
		if n > uint64(len(rest)) {
			return reflect.Value{}, nil, fmt.Errorf("transport: slice length %d exceeds %d remaining bytes", n, len(rest))
		}
		v.Set(reflect.MakeSlice(t, int(n), int(n)))
		for i := 0; i < int(n); i++ {
			var ev reflect.Value
			ev, rest, err = consumeValue(rest, t.Elem())
			if err != nil {
				return reflect.Value{}, nil, err
			}
			v.Index(i).Set(ev)
		}
		return v, rest, nil
	case reflect.Array:
		v := reflect.New(t).Elem()
		var err error
		for i := 0; i < t.Len(); i++ {
			var ev reflect.Value
			ev, data, err = consumeValue(data, t.Elem())
			if err != nil {
				return reflect.Value{}, nil, err
			}
			v.Index(i).Set(ev)
		}
		return v, data, nil
	case reflect.Map:
		present, rest, err := consumeBool(data)
		if err != nil {
			return reflect.Value{}, nil, err
		}
		v := reflect.New(t).Elem()
		if !present {
			return v, rest, nil
		}
		n, rest, err := consumeUvarint(rest)
		if err != nil {
			return reflect.Value{}, nil, err
		}
		if n > uint64(len(rest)) {
			return reflect.Value{}, nil, fmt.Errorf("transport: map length %d exceeds %d remaining bytes", n, len(rest))
		}
		v.Set(reflect.MakeMapWithSize(t, int(n)))
		for i := 0; i < int(n); i++ {
			var kv, vv reflect.Value
			kv, rest, err = consumeValue(rest, t.Key())
			if err != nil {
				return reflect.Value{}, nil, err
			}
			vv, rest, err = consumeValue(rest, t.Elem())
			if err != nil {
				return reflect.Value{}, nil, err
			}
			v.SetMapIndex(kv, vv)
		}
		return v, rest, nil
	case reflect.Struct:
		v := reflect.New(t).Elem()
		var err error
		for i := 0; i < t.NumField(); i++ {
			if t.Field(i).PkgPath != "" {
				continue
			}
			var fv reflect.Value
			fv, data, err = consumeValue(data, t.Field(i).Type)
			if err != nil {
				return reflect.Value{}, nil, err
			}
			v.Field(i).Set(fv)
		}
		return v, data, nil
	case reflect.Pointer:
		present, rest, err := consumeBool(data)
		if err != nil {
			return reflect.Value{}, nil, err
		}
		v := reflect.New(t).Elem()
		if !present {
			return v, rest, nil
		}
		ev, rest, err := consumeValue(rest, t.Elem())
		if err != nil {
			return reflect.Value{}, nil, err
		}
		p := reflect.New(t.Elem())
		p.Elem().Set(ev)
		v.Set(p)
		return v, rest, nil
	case reflect.Interface:
		present, rest, err := consumeBool(data)
		if err != nil {
			return reflect.Value{}, nil, err
		}
		v := reflect.New(t).Elem()
		if !present {
			return v, rest, nil
		}
		inner, rest, err := consumeAny(rest)
		if err != nil {
			return reflect.Value{}, nil, err
		}
		if inner != nil {
			iv := reflect.ValueOf(inner)
			if !iv.Type().AssignableTo(t) {
				return reflect.Value{}, nil, fmt.Errorf("transport: %s not assignable to %s", iv.Type(), t)
			}
			v.Set(iv)
		}
		return v, rest, nil
	default:
		return reflect.Value{}, nil, fmt.Errorf("transport: cannot unmarshal %s value", t)
	}
}

// Codec adapts Marshal/Unmarshal to the structural codec interface shared
// by wire.Codec and dht.Codec, so a daemon can journal overlay store values
// (opaque bytes, or any registered wire type) through the WAL machinery.
type Codec struct{}

// Marshal implements the codec interface.
func (Codec) Marshal(v any) ([]byte, error) { return Marshal(v) }

// Unmarshal implements the codec interface.
func (Codec) Unmarshal(data []byte) (any, error) { return Unmarshal(data) }
