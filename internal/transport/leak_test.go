// End-of-test goroutine accounting for the connection machinery: every
// pooled connection owns two pump goroutines and every inbound call runs
// on its own, so the Close/timeout races this file provokes are exactly
// the paths where a missed drain edge parks a goroutine forever. The
// static goroutineleak pass proves the channel topology has escape edges;
// these tests prove the runtime actually takes them.
package transport_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"mlight/internal/dht/dhttest"
	"mlight/internal/transport"
)

type leakEchoReq struct{ Msg string }

type leakBlockReq struct{}

func init() {
	transport.RegisterType(leakEchoReq{})
	transport.RegisterType(leakBlockReq{})
}

// gateHandler blocks leakBlockReq calls until released and echoes
// everything else, so a test can hold an RPC in flight across a timeout.
// Each blocked arrival is announced on started (buffered generously, so
// the handler never stalls on the announcement itself).
type gateHandler struct {
	release chan struct{}
	started chan struct{}
}

func newGateHandler() *gateHandler {
	return &gateHandler{release: make(chan struct{}), started: make(chan struct{}, 64)}
}

func (h *gateHandler) HandleRPC(from transport.NodeID, req any) (any, error) {
	if _, ok := req.(leakBlockReq); ok {
		h.started <- struct{}{}
		<-h.release
		return leakEchoReq{Msg: "late"}, nil
	}
	return req, nil
}

// TestNoLeakAfterAbandonedCall pins the abandoned-RPC drain: a call times
// out, its reply arrives afterwards, and the connection must drop the
// orphaned response, keep multiplexing new calls, and leave zero
// goroutines behind after Close.
func TestNoLeakAfterAbandonedCall(t *testing.T) {
	dhttest.VerifyNoLeaks(t)
	server := transport.NewTCP(transport.TCPOptions{})
	t.Cleanup(func() {
		if err := server.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	client := transport.NewTCP(transport.TCPOptions{CallTimeout: 100 * time.Millisecond})
	t.Cleanup(func() {
		if err := client.Close(); err != nil {
			t.Errorf("client close: %v", err)
		}
	})
	h := newGateHandler()
	// Cleanups run LIFO: the gate opens before either transport closes, so
	// the parked handler can finish and the server can drain.
	t.Cleanup(func() { close(h.release) })

	id, err := server.Reserve()
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Register(id, h); err != nil {
		t.Fatal(err)
	}

	if _, err := client.Call("caller", id, leakBlockReq{}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("blocked call err = %v, want timeout wrapping ErrUnreachable", err)
	}

	// The connection must still multiplex fresh calls while the abandoned
	// one is parked server-side, and must survive its late reply.
	resp, err := client.Call("caller", id, leakEchoReq{Msg: "after-timeout"})
	if err != nil {
		t.Fatalf("call after abandoned call: %v", err)
	}
	if resp.(leakEchoReq).Msg != "after-timeout" {
		t.Fatalf("resp = %#v", resp)
	}
}

// TestNoLeakAfterServerVanishes pins client-side teardown when the peer
// process dies mid-conversation: the raw listener below accepts one
// connection and slams it shut, so the client's read pump sees EOF and
// must unwind both pumps and drain the in-flight call with an error.
func TestNoLeakAfterServerVanishes(t *testing.T) {
	dhttest.VerifyNoLeaks(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan struct{})
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			conn.Close() //lint:allow droppederr slamming the socket shut is the fault being injected
		}
		close(accepted)
	}()
	t.Cleanup(func() {
		ln.Close() //lint:allow droppederr teardown of a listener the test body may already have closed
		<-accepted
	})

	client := transport.NewTCP(transport.TCPOptions{CallTimeout: 2 * time.Second})
	t.Cleanup(func() {
		if err := client.Close(); err != nil {
			t.Errorf("client close: %v", err)
		}
	})
	addr := transport.NodeID(ln.Addr().String())
	if _, err := client.Call("caller", addr, leakEchoReq{Msg: "doomed"}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("call to vanishing server err = %v, want ErrUnreachable", err)
	}
	// The failed connection must be out of the pool: a retry dials afresh
	// (and fails to connect once the listener is gone) rather than reusing
	// the dead peer entry.
	ln.Close() //lint:allow droppederr closing early to kill the endpoint; cleanup handles the real teardown
	if _, err := client.Call("caller", addr, leakEchoReq{Msg: "retry"}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("retry err = %v, want dial failure wrapping ErrUnreachable", err)
	}
}

// TestNoLeakCloseWithInFlightCalls pins the Close/in-flight race: calls
// parked in the second select (awaiting replies) when the client transport
// closes must all drain with an error, and no pump may outlive Close.
func TestNoLeakCloseWithInFlightCalls(t *testing.T) {
	dhttest.VerifyNoLeaks(t)
	server := transport.NewTCP(transport.TCPOptions{})
	t.Cleanup(func() {
		if err := server.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	h := newGateHandler()
	t.Cleanup(func() { close(h.release) })
	id, err := server.Reserve()
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Register(id, h); err != nil {
		t.Fatal(err)
	}

	client := transport.NewTCP(transport.TCPOptions{CallTimeout: 30 * time.Second})
	const inFlight = 4
	errs := make(chan error, inFlight)
	for i := 0; i < inFlight; i++ {
		go func() {
			_, err := client.Call("caller", id, leakBlockReq{})
			errs <- err
		}()
	}
	// Wait until the handler holds all of them, then close underneath.
	for i := 0; i < inFlight; i++ {
		<-h.started
	}
	if err := client.Close(); err != nil {
		t.Fatalf("close with in-flight calls: %v", err)
	}
	for i := 0; i < inFlight; i++ {
		if err := <-errs; err == nil {
			t.Error("in-flight call returned nil error after Close")
		}
	}
}
