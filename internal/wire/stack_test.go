package wire_test

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/dht/dhttest"
	"mlight/internal/trace"
	"mlight/internal/wire"
)

// valueCodec round-trips the scalar values the conformance suite stores
// (ints and strings) through bytes, standing in for an application codec so
// ByteDHT can participate in arbitrary decorator stacks.
type valueCodec struct{}

func (valueCodec) Marshal(v any) ([]byte, error) {
	switch x := v.(type) {
	case int:
		return append([]byte{'i'}, strconv.Itoa(x)...), nil
	case string:
		return append([]byte{'s'}, x...), nil
	default:
		return nil, fmt.Errorf("valueCodec: cannot encode %T", v)
	}
}

func (valueCodec) Unmarshal(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("valueCodec: empty payload")
	}
	switch data[0] {
	case 'i':
		return strconv.Atoi(string(data[1:]))
	case 's':
		return string(data[1:]), nil
	default:
		return nil, fmt.Errorf("valueCodec: unknown tag %q", data[0])
	}
}

// TestDecoratorStackPermutations runs the substrate conformance suite over
// every ordering of the three decorators (ByteDHT, Resilient, Counting)
// stacked on the local substrate. The decorators are designed to compose —
// Resilient and Counting never interpret stored values, ByteDHT never
// retries or counts — so the contract must hold no matter how a deployment
// layers them.
func TestDecoratorStackPermutations(t *testing.T) {
	decorate := map[string]func(dht.DHT) dht.DHT{
		"bytes": func(d dht.DHT) dht.DHT {
			return wire.NewByteDHT(d, valueCodec{})
		},
		"resilient": func(d dht.DHT) dht.DHT {
			return dht.NewResilient(d, dht.RetryPolicy{MaxAttempts: 3, Sleep: dht.NoSleep}, nil)
		},
		"counting": func(d dht.DHT) dht.DHT {
			return dht.NewCounting(d, nil)
		},
	}
	for _, perm := range permutations([]string{"bytes", "resilient", "counting"}) {
		perm := perm
		t.Run(strings.Join(perm, "-"), func(t *testing.T) {
			dhttest.RunConformance(t, func(t *testing.T) dht.DHT {
				d := dht.DHT(dht.MustNewLocal(16))
				// perm lists the stack outside-in; wrap in reverse so
				// perm[0] ends up outermost.
				for i := len(perm) - 1; i >= 0; i-- {
					d = decorate[perm[i]](d)
				}
				return d
			})
		})
	}
}

// TestDecoratorStackCounting pins that a full stack still charges logical
// operations exactly once no matter where Counting sits.
func TestDecoratorStackCounting(t *testing.T) {
	for _, build := range []struct {
		name  string
		stack func(c *dht.Counting) dht.DHT
	}{
		{"counting-outermost", func(c *dht.Counting) dht.DHT { return c }},
		{"bytes-over-counting", func(c *dht.Counting) dht.DHT {
			return wire.NewByteDHT(c, valueCodec{})
		}},
	} {
		t.Run(build.name, func(t *testing.T) {
			var inner dht.DHT = dht.MustNewLocal(8)
			if build.name == "counting-outermost" {
				inner = wire.NewByteDHT(inner, valueCodec{})
			}
			c := dht.NewCounting(inner, nil)
			d := build.stack(c)
			for i := 0; i < 10; i++ {
				if err := d.Put(dht.Key(fmt.Sprintf("k%d", i)), i); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 10; i++ {
				if _, _, err := d.Get(dht.Key(fmt.Sprintf("k%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if got := c.Stats().DHTLookups.Load(); got != 20 {
				t.Errorf("DHTLookups = %d, want 20", got)
			}
		})
	}
}

// TestByteDHTForwardsSpans pins that ByteDHT participates in trace
// attribution: a GetSpan through the codec layer must reach the retry
// layer below with the caller's parent span intact, so attempt spans nest
// under the logical operation instead of detaching into flat orphans.
func TestByteDHTForwardsSpans(t *testing.T) {
	tc := trace.NewCollector()
	res := dht.NewResilient(dht.MustNewLocal(8), dht.RetryPolicy{MaxAttempts: 3, Sleep: dht.NoSleep}, nil)
	res.SetTracer(tc)
	d := wire.NewByteDHT(res, valueCodec{})

	if err := d.Put("k", 42); err != nil {
		t.Fatal(err)
	}
	parent := tc.Begin(0, trace.KindQuery, "lookup")
	v, found, err := d.GetSpan("k", parent)
	tc.End(parent)
	if err != nil || !found {
		t.Fatalf("GetSpan = %v, %v, %v; want 42, true, nil", v, found, err)
	}
	if got, ok := v.(int); !ok || got != 42 {
		t.Fatalf("GetSpan decoded %T %v, want int 42", v, v)
	}

	var nested int
	for _, s := range tc.Spans() {
		if s.Kind == trace.KindAttempt && s.Parent == parent {
			nested++
		}
	}
	if nested == 0 {
		t.Fatalf("no KindAttempt span nested under the caller's parent; spans: %+v", tc.Spans())
	}
}

// permutations returns every ordering of items.
func permutations(items []string) [][]string {
	if len(items) <= 1 {
		return [][]string{append([]string(nil), items...)}
	}
	var out [][]string
	for i := range items {
		rest := make([]string, 0, len(items)-1)
		rest = append(rest, items[:i]...)
		rest = append(rest, items[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]string{items[i]}, p...))
		}
	}
	return out
}
