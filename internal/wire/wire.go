// Package wire provides the byte-level encoding of the index's stored
// values. Real DHT services (OpenDHT, the paper's deployment target) store
// opaque byte strings, not in-process objects; an over-DHT index therefore
// has to serialise its buckets at the DHT boundary. ByteDHT wraps any
// substrate and round-trips every stored value through this package's
// compact binary format, proving the index depends on nothing but bytes.
//
// Format (all integers little-endian; lengths as uvarint):
//
//	point   = uvarint dims, dims × float64 bits
//	record  = point, uvarint len(data), data bytes
//	bucket  = byte labelLen, uint64 labelBits, uvarint count, count × record
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"mlight/internal/bitlabel"
	"mlight/internal/core"
	"mlight/internal/dht"
	"mlight/internal/spatial"
	"mlight/internal/trace"
)

// ErrMalformed reports undecodable bytes.
var ErrMalformed = errors.New("wire: malformed encoding")

// AppendPoint appends the encoding of p to buf. Allocation-free when buf
// has capacity (the codec fast path — callers reuse scratch buffers).
//
//lint:hotpath
func AppendPoint(buf []byte, p spatial.Point) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(p)))
	for _, c := range p {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c))
	}
	return buf
}

// DecodePoint decodes a point, returning the remaining bytes.
func DecodePoint(buf []byte) (spatial.Point, []byte, error) {
	dims, n := binary.Uvarint(buf)
	if n <= 0 || dims > 1<<16 {
		return nil, nil, fmt.Errorf("%w: point dims", ErrMalformed)
	}
	buf = buf[n:]
	if len(buf) < int(dims)*8 {
		return nil, nil, fmt.Errorf("%w: point truncated", ErrMalformed)
	}
	p := make(spatial.Point, dims)
	for i := range p {
		p[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return p, buf[dims*8:], nil
}

// AppendRecord appends the encoding of r to buf. Allocation-free when buf
// has capacity (the codec fast path — callers reuse scratch buffers).
//
//lint:hotpath
func AppendRecord(buf []byte, r spatial.Record) []byte {
	buf = AppendPoint(buf, r.Key)
	buf = binary.AppendUvarint(buf, uint64(len(r.Data)))
	return append(buf, r.Data...)
}

// DecodeRecord decodes a record, returning the remaining bytes.
func DecodeRecord(buf []byte) (spatial.Record, []byte, error) {
	key, rest, err := DecodePoint(buf)
	if err != nil {
		return spatial.Record{}, nil, err
	}
	size, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < size {
		return spatial.Record{}, nil, fmt.Errorf("%w: record data", ErrMalformed)
	}
	rest = rest[n:]
	return spatial.Record{Key: key, Data: string(rest[:size])}, rest[size:], nil
}

// MarshalBucket encodes a core bucket.
func MarshalBucket(b core.Bucket) []byte {
	n := b.Load()
	buf := make([]byte, 0, 16+n*40)
	buf = append(buf, byte(b.Label.Len()))
	buf = binary.LittleEndian.AppendUint64(buf, b.Label.Bits())
	buf = binary.AppendUvarint(buf, uint64(n))
	for i := 0; i < n; i++ {
		buf = AppendRecord(buf, b.RecordAt(i))
	}
	return buf
}

// UnmarshalBucket decodes a core bucket.
func UnmarshalBucket(buf []byte) (core.Bucket, error) {
	if len(buf) < 9 {
		return core.Bucket{}, fmt.Errorf("%w: bucket header", ErrMalformed)
	}
	labelLen := int(buf[0])
	if labelLen > bitlabel.MaxLen {
		return core.Bucket{}, fmt.Errorf("%w: label length %d", ErrMalformed, labelLen)
	}
	bits := binary.LittleEndian.Uint64(buf[1:9])
	label := bitlabel.New(bits, labelLen)
	rest := buf[9:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return core.Bucket{}, fmt.Errorf("%w: record count", ErrMalformed)
	}
	rest = rest[n:]
	// A record encodes to at least two bytes, so a count beyond len(rest)/2
	// cannot be satisfied — reject it up front rather than trusting an
	// attacker-controlled length for allocation (found by fuzzing).
	if count > uint64(len(rest)/2)+1 {
		return core.Bucket{}, fmt.Errorf("%w: record count %d exceeds payload", ErrMalformed, count)
	}
	out := core.Bucket{Label: label}
	for i := uint64(0); i < count; i++ {
		var rec spatial.Record
		var err error
		rec, rest, err = DecodeRecord(rest)
		if err != nil {
			return core.Bucket{}, fmt.Errorf("record %d: %w", i, err)
		}
		out = out.Append(rec)
	}
	if len(rest) != 0 {
		return core.Bucket{}, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(rest))
	}
	return out, nil
}

// BucketCodec is the Codec for core buckets.
type BucketCodec struct{}

var _ Codec = BucketCodec{}

// Marshal implements Codec.
func (BucketCodec) Marshal(v any) ([]byte, error) {
	b, ok := v.(core.Bucket)
	if !ok {
		return nil, fmt.Errorf("wire: BucketCodec cannot encode %T", v)
	}
	return MarshalBucket(b), nil
}

// Unmarshal implements Codec.
func (BucketCodec) Unmarshal(data []byte) (any, error) {
	return UnmarshalBucket(data)
}

// Codec converts between in-process values and bytes.
type Codec interface {
	Marshal(v any) ([]byte, error)
	Unmarshal(data []byte) (any, error)
}

// ByteDHT wraps a substrate so that every stored value crosses the
// interface as bytes, the way a real deployment over OpenDHT would work.
type ByteDHT struct {
	inner dht.DHT
	codec Codec
}

var (
	_ dht.DHT         = (*ByteDHT)(nil)
	_ dht.Batcher     = (*ByteDHT)(nil)
	_ dht.BatchWriter = (*ByteDHT)(nil)
	_ dht.SpanGetter  = (*ByteDHT)(nil)
)

// NewByteDHT builds the adapter.
func NewByteDHT(inner dht.DHT, codec Codec) *ByteDHT {
	return &ByteDHT{inner: inner, codec: codec}
}

// Put implements dht.DHT.
func (b *ByteDHT) Put(key dht.Key, value any) error {
	data, err := b.codec.Marshal(value)
	if err != nil {
		return err
	}
	return b.inner.Put(key, data)
}

// Get implements dht.DHT.
func (b *ByteDHT) Get(key dht.Key) (any, bool, error) {
	return b.decodeGet(b.inner.Get(key))
}

// GetSpan implements dht.SpanGetter: trace attribution is forwarded to the
// inner substrate (which may itself be a decorator recording spans), and
// the returned payload is decoded exactly as Get decodes it. Without this
// forwarding, wrapping a traced stack in ByteDHT would silently detach
// every retry/attempt span from its query.
func (b *ByteDHT) GetSpan(key dht.Key, parent trace.SpanID) (any, bool, error) {
	return b.decodeGet(dht.GetWithSpan(b.inner, key, parent))
}

// decodeGet translates one Get-shaped result from stored bytes.
func (b *ByteDHT) decodeGet(v any, found bool, err error) (any, bool, error) {
	if err != nil || !found {
		return nil, found, err
	}
	data, ok := v.([]byte)
	if !ok {
		return nil, false, fmt.Errorf("wire: substrate returned %T, want bytes", v)
	}
	out, err := b.codec.Unmarshal(data)
	if err != nil {
		return nil, false, err
	}
	return out, true, nil
}

// Remove implements dht.DHT.
func (b *ByteDHT) Remove(key dht.Key) error {
	return b.inner.Remove(key)
}

// Apply implements dht.DHT: the stored bytes are decoded for the transform
// and its result re-encoded, all at the owning peer.
func (b *ByteDHT) Apply(key dht.Key, fn dht.ApplyFunc) error {
	var codecErr error
	err := b.inner.Apply(key, func(cur any, exists bool) (any, bool) {
		var decoded any
		if exists {
			data, ok := cur.([]byte)
			if !ok {
				codecErr = fmt.Errorf("wire: substrate holds %T, want bytes", cur)
				return cur, true
			}
			decoded, codecErr = b.codec.Unmarshal(data)
			if codecErr != nil {
				return cur, true
			}
		}
		next, keep := fn(decoded, exists)
		if !keep {
			return nil, false
		}
		encoded, err := b.codec.Marshal(next)
		if err != nil {
			codecErr = err
			return cur, exists
		}
		return encoded, true
	})
	if err != nil {
		return err
	}
	return codecErr
}

// Owner implements dht.DHT.
func (b *ByteDHT) Owner(key dht.Key) (string, error) {
	return b.inner.Owner(key)
}

// GetBatch implements dht.Batcher: the whole batch is forwarded to the inner
// substrate's batch path (keys need no encoding), then each returned payload
// is decoded in place.
func (b *ByteDHT) GetBatch(keys []dht.Key, maxInFlight int) []dht.BatchResult {
	results := dht.GetBatch(b.inner, keys, maxInFlight)
	for i := range results {
		if results[i].Err != nil || !results[i].Found {
			continue
		}
		data, ok := results[i].Value.([]byte)
		if !ok {
			results[i] = dht.BatchResult{Err: fmt.Errorf("wire: substrate returned %T, want bytes", results[i].Value)}
			continue
		}
		decoded, err := b.codec.Unmarshal(data)
		if err != nil {
			results[i] = dht.BatchResult{Err: err}
			continue
		}
		results[i].Value = decoded
	}
	return results
}

// PutBatch implements dht.BatchWriter with encode-once semantics: every
// value is marshalled exactly once up front, on the caller's goroutine;
// operations whose values fail to encode get their positional error without
// touching the substrate, and only the encodable remainder is forwarded as
// one inner batch round.
func (b *ByteDHT) PutBatch(ops []dht.PutOp, maxInFlight int) []error {
	errs := make([]error, len(ops))
	encoded := make([]dht.PutOp, 0, len(ops))
	// positions[j] is the caller-visible index of forwarded operation j.
	positions := make([]int, 0, len(ops))
	for i, op := range ops {
		data, err := b.codec.Marshal(op.Value)
		if err != nil {
			errs[i] = err
			continue
		}
		encoded = append(encoded, dht.PutOp{Key: op.Key, Value: data})
		positions = append(positions, i)
	}
	if len(encoded) == 0 {
		return errs
	}
	inner := dht.PutBatch(b.inner, encoded, maxInFlight)
	for j, i := range positions {
		errs[i] = inner[j]
	}
	return errs
}

// ApplyBatch implements dht.BatchWriter: each transform is wrapped with the
// same decode/re-encode shim as Apply (run at the owning peer), and the
// wrapped batch is forwarded as one inner round. Codec failures surface as
// that operation's positional error while leaving the stored bytes intact.
func (b *ByteDHT) ApplyBatch(ops []dht.ApplyOp, maxInFlight int) []error {
	wrapped := make([]dht.ApplyOp, len(ops))
	codecErrs := make([]error, len(ops))
	for i, op := range ops {
		fn := op.Fn
		slot := &codecErrs[i]
		wrapped[i] = dht.ApplyOp{Key: op.Key, Fn: func(cur any, exists bool) (any, bool) {
			// A re-issued attempt must not inherit a stale codec error.
			*slot = nil
			var decoded any
			if exists {
				data, ok := cur.([]byte)
				if !ok {
					*slot = fmt.Errorf("wire: substrate holds %T, want bytes", cur)
					return cur, true
				}
				var err error
				decoded, err = b.codec.Unmarshal(data)
				if err != nil {
					*slot = err
					return cur, true
				}
			}
			next, keep := fn(decoded, exists)
			if !keep {
				return nil, false
			}
			encoded, err := b.codec.Marshal(next)
			if err != nil {
				*slot = err
				return cur, exists
			}
			return encoded, true
		}}
	}
	errs := dht.ApplyBatch(b.inner, wrapped, maxInFlight)
	for i := range errs {
		if errs[i] == nil {
			errs[i] = codecErrs[i]
		}
	}
	return errs
}

// Range implements dht.Enumerator when the substrate does, decoding each
// value.
func (b *ByteDHT) Range(fn func(key dht.Key, value any) bool) error {
	e, ok := b.inner.(dht.Enumerator)
	if !ok {
		return dht.ErrNotEnumerable
	}
	var decodeErr error
	err := e.Range(func(k dht.Key, v any) bool {
		data, isBytes := v.([]byte)
		if !isBytes {
			decodeErr = fmt.Errorf("wire: substrate holds %T, want bytes", v)
			return false
		}
		decoded, err := b.codec.Unmarshal(data)
		if err != nil {
			decodeErr = err
			return false
		}
		return fn(k, decoded)
	})
	if err != nil {
		return err
	}
	return decodeErr
}
