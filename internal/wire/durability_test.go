package wire_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlight/internal/bitlabel"
	"mlight/internal/core"
	"mlight/internal/dht"
	"mlight/internal/spatial"
	"mlight/internal/wire"
)

// walCodec extends valueCodec with a raw-bytes passthrough so a durable
// Local can sit under any decorator permutation: with ByteDHT in the stack
// the substrate journals []byte payloads, without it the scalars land
// directly.
type walCodec struct{}

func (walCodec) Marshal(v any) ([]byte, error) {
	if b, ok := v.([]byte); ok {
		return append([]byte{'b'}, b...), nil
	}
	return valueCodec{}.Marshal(v)
}

func (walCodec) Unmarshal(data []byte) (any, error) {
	if len(data) > 0 && data[0] == 'b' {
		return append([]byte(nil), data[1:]...), nil
	}
	return valueCodec{}.Unmarshal(data)
}

// TestDurableStackCrashRecoverPermutations runs a crash/recover cycle on a
// durable Local under every ordering of the three decorators: the journal
// sits below the whole stack, so whatever the decorators did to the values
// (codec framing, retries, counting) must replay to the identical
// client-visible state. The compaction threshold is set low enough that the
// workload crosses it, so recovery exercises snapshot-plus-log replay, not
// just a flat log.
func TestDurableStackCrashRecoverPermutations(t *testing.T) {
	decorate := map[string]func(dht.DHT) dht.DHT{
		"bytes": func(d dht.DHT) dht.DHT {
			return wire.NewByteDHT(d, valueCodec{})
		},
		"resilient": func(d dht.DHT) dht.DHT {
			return dht.NewResilient(d, dht.RetryPolicy{MaxAttempts: 3, Sleep: dht.NoSleep}, nil)
		},
		"counting": func(d dht.DHT) dht.DHT {
			return dht.NewCounting(d, nil)
		},
	}
	for _, perm := range permutations([]string{"bytes", "resilient", "counting"}) {
		perm := perm
		t.Run(strings.Join(perm, "-"), func(t *testing.T) {
			w, err := dht.OpenWAL(dht.WALOptions{
				Dir: t.TempDir(), Codec: walCodec{}, CompactThreshold: 32,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			local, err := dht.NewDurableLocal(16, w)
			if err != nil {
				t.Fatal(err)
			}
			d := dht.DHT(local)
			for i := len(perm) - 1; i >= 0; i-- {
				d = decorate[perm[i]](d)
			}

			truth := make(map[dht.Key]int)
			key := func(i int) dht.Key { return dht.Key(fmt.Sprintf("dk%d", i)) }
			for i := 0; i < 60; i++ {
				if err := d.Put(key(i), i); err != nil {
					t.Fatal(err)
				}
				truth[key(i)] = i
			}
			for i := 0; i < 60; i += 3 {
				if err := d.Apply(key(i), func(cur any, exists bool) (any, bool) {
					cv, _ := cur.(int)
					return cv + 100, true
				}); err != nil {
					t.Fatal(err)
				}
				truth[key(i)] += 100
			}
			for i := 0; i < 60; i += 5 {
				if err := d.Remove(key(i)); err != nil {
					t.Fatal(err)
				}
				delete(truth, key(i))
			}

			local.CrashVolatile()
			if _, found, err := d.Get(key(1)); err != nil || found {
				t.Fatalf("after crash Get = found %v, err %v; volatile state must be gone", found, err)
			}
			if err := local.Recover(); err != nil {
				t.Fatalf("Recover: %v", err)
			}

			enum, ok := d.(dht.Enumerator)
			if !ok {
				t.Fatal("decorated stack lost Enumerator")
			}
			got := make(map[dht.Key]int)
			if err := enum.Range(func(k dht.Key, v any) bool {
				n, _ := v.(int)
				got[k] = n
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(truth) {
				t.Fatalf("recovered scan saw %d records, want %d", len(got), len(truth))
			}
			for k, v := range truth {
				if got[k] != v {
					t.Errorf("recovered %q = %d, want %d", k, got[k], v)
				}
				gv, found, err := d.Get(k)
				if err != nil || !found || gv != v {
					t.Fatalf("recovered Get(%q) = %v, %v, %v; want %d", k, gv, found, err, v)
				}
			}
		})
	}
}

// buildReferenceLog journals a deterministic mutation sequence and returns
// the raw log bytes plus the ordered records, so damage tests can check
// that recovery yields exactly a replayable prefix.
func buildReferenceLog(t *testing.T) ([]byte, []dht.WALRecord) {
	t.Helper()
	dir := t.TempDir()
	w, err := dht.OpenWAL(dht.WALOptions{Dir: dir, Codec: walCodec{}, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	var recs []dht.WALRecord
	for i := 0; i < 25; i++ {
		recs = append(recs, dht.WALRecord{Op: dht.WALPut, Key: dht.Key(fmt.Sprintf("wk%d", i%10)), Value: i})
		if i%4 == 3 {
			recs = append(recs, dht.WALRecord{Op: dht.WALRemove, Key: dht.Key(fmt.Sprintf("wk%d", (i+2)%10))})
		}
	}
	if err := w.Append(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	return data, recs
}

// restoreDamaged writes log bytes into a fresh WAL dir and restores.
func restoreDamaged(t *testing.T, log []byte) (map[dht.Key]any, dht.ReplayInfo) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), log, 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := dht.OpenWAL(dht.WALOptions{Dir: dir, Codec: walCodec{}, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	state, err := w.Restore()
	if err != nil {
		t.Fatalf("Restore with damaged log (no snapshot) must truncate, not fail: %v", err)
	}
	return state, w.LastReplay()
}

// TestWALRestoreRecoversPrefixUnderLogDamage damages the log every way a
// crash can — truncation at every byte boundary and a flipped byte at every
// offset — and checks the recovery contract: Restore never fails (the log
// is torn-tail tolerant when no snapshot is involved) and the recovered
// state is exactly the replay of some prefix of the committed mutations.
func TestWALRestoreRecoversPrefixUnderLogDamage(t *testing.T) {
	log, recs := buildReferenceLog(t)

	replayPrefix := func(k int) map[dht.Key]any {
		state := make(map[dht.Key]any)
		for _, rec := range recs[:k] {
			if rec.Op == dht.WALPut {
				state[rec.Key] = rec.Value
			} else {
				delete(state, rec.Key)
			}
		}
		return state
	}
	checkPrefix := func(stage string, state map[dht.Key]any, info dht.ReplayInfo) {
		t.Helper()
		if info.LogRecords > len(recs) {
			t.Fatalf("%s: replayed %d records, only %d were written", stage, info.LogRecords, len(recs))
		}
		want := replayPrefix(info.LogRecords)
		if len(state) != len(want) {
			t.Fatalf("%s: recovered %d keys, prefix of %d records has %d", stage, len(state), info.LogRecords, len(want))
		}
		for k, v := range want {
			if state[k] != v {
				t.Fatalf("%s: recovered %q = %v, want %v", stage, k, state[k], v)
			}
		}
	}

	for cut := 0; cut <= len(log); cut += 7 {
		state, info := restoreDamaged(t, log[:cut])
		checkPrefix(fmt.Sprintf("truncate at %d", cut), state, info)
	}
	// A cut strictly inside the final record (the last byte is part of its
	// CRC) must be detected and reported as a torn tail.
	if _, info := restoreDamaged(t, log[:len(log)-1]); !info.TornTail {
		t.Fatal("mid-record truncation not reported as a torn tail")
	}
	for off := 0; off < len(log); off += 11 {
		damaged := append([]byte(nil), log...)
		damaged[off] ^= 0x40
		state, info := restoreDamaged(t, damaged)
		checkPrefix(fmt.Sprintf("flip at %d", off), state, info)
	}
}

// FuzzWALRestore feeds arbitrary bytes to the log-replay path with the
// production bucket codec, seeded with genuine journal bytes over encoded
// buckets (the same corpus construction the codec fuzzers use). Properties:
// Restore never panics and never errors on a snapshot-less store, and the
// recovered state is a fixpoint — compacting it and restoring again yields
// the same records.
func FuzzWALRestore(f *testing.F) {
	seedDir := f.TempDir()
	sw, err := dht.OpenWAL(dht.WALOptions{Dir: seedDir, Codec: wire.BucketCodec{}, CompactThreshold: -1})
	if err != nil {
		f.Fatal(err)
	}
	if err := sw.Append([]dht.WALRecord{
		{Op: dht.WALPut, Key: "b/0011011", Value: core.NewBucket(bitlabel.MustParse("0011011"), []spatial.Record{
			{Key: spatial.Point{0.25, 0.75}, Data: "x"},
			{Key: spatial.Point{0.5, 0.5}, Data: ""},
		})},
		{Op: dht.WALPut, Key: "b/root", Value: core.Bucket{Label: bitlabel.Root(2)}},
		{Op: dht.WALRemove, Key: "b/root"},
	}); err != nil {
		f.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(filepath.Join(seedDir, "wal.log"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{0xff, 0x03, 'P', 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := dht.OpenWAL(dht.WALOptions{Dir: dir, Codec: wire.BucketCodec{}, CompactThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		state, err := w.Restore()
		if err != nil {
			t.Fatalf("Restore errored on snapshot-less store: %v", err)
		}
		if err := w.Compact(state); err != nil {
			t.Fatalf("Compact of recovered state: %v", err)
		}
		again, err := w.Restore()
		if err != nil {
			t.Fatalf("Restore after Compact: %v", err)
		}
		if len(again) != len(state) {
			t.Fatalf("compacted restore has %d keys, first restore had %d", len(again), len(state))
		}
		for k, v := range state {
			b1, ok1 := v.(core.Bucket)
			b2, ok2 := again[k].(core.Bucket)
			if !ok1 || !ok2 {
				t.Fatalf("key %q: non-bucket values %T, %T", k, v, again[k])
			}
			if b1.Label != b2.Label || b1.Load() != b2.Load() {
				t.Fatalf("key %q changed across compact/restore", k)
			}
		}
	})
}
