package wire

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mlight/internal/bitlabel"
	"mlight/internal/core"
	"mlight/internal/dht"
	"mlight/internal/spatial"
)

func TestPointRoundTripQuick(t *testing.T) {
	f := func(coords []float64) bool {
		for i, c := range coords {
			if math.IsNaN(c) {
				coords[i] = 0 // NaN != NaN; the index never stores NaN
			}
		}
		p := spatial.Point(coords)
		buf := AppendPoint(nil, p)
		back, rest, err := DecodePoint(buf)
		if err != nil || len(rest) != 0 || len(back) != len(p) {
			return false
		}
		for i := range p {
			if back[i] != p[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestRecordRoundTripQuick(t *testing.T) {
	f := func(x, y float64, data string) bool {
		if math.IsNaN(x) {
			x = 0
		}
		if math.IsNaN(y) {
			y = 0
		}
		r := spatial.Record{Key: spatial.Point{x, y}, Data: data}
		back, rest, err := DecodeRecord(AppendRecord(nil, r))
		return err == nil && len(rest) == 0 && back.Data == r.Data &&
			back.Key[0] == x && back.Key[1] == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func randomBucket(rng *rand.Rand) core.Bucket {
	label := bitlabel.Root(2)
	for i := rng.Intn(20); i > 0; i-- {
		label = label.MustAppend(byte(rng.Intn(2)))
	}
	b := core.Bucket{Label: label}
	for i := rng.Intn(30); i > 0; i-- {
		b = b.Append(spatial.Record{
			Key:  spatial.Point{rng.Float64(), rng.Float64()},
			Data: fmt.Sprintf("payload-%d-%c", i, 'a'+rng.Intn(26)),
		})
	}
	return b
}

func TestBucketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		b := randomBucket(rng)
		back, err := UnmarshalBucket(MarshalBucket(b))
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if back.Label != b.Label || back.Load() != b.Load() {
			t.Fatalf("bucket differs after round trip")
		}
		for i, n := 0, b.Load(); i < n; i++ {
			if back.DataAt(i) != b.DataAt(i) ||
				back.KeyAt(i).String() != b.KeyAt(i).String() {
				t.Fatalf("record %d differs", i)
			}
		}
	}
	// Empty bucket.
	empty := core.Bucket{Label: bitlabel.Root(2)}
	back, err := UnmarshalBucket(MarshalBucket(empty))
	if err != nil || back.Label != empty.Label || back.Load() != 0 {
		t.Fatalf("empty bucket round trip: %+v, %v", back, err)
	}
}

func TestUnmarshalBucketRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		{65, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // label length 65
		append(MarshalBucket(core.Bucket{Label: bitlabel.Root(2)}), 0xFF), // trailing bytes
	}
	for i, c := range cases {
		if _, err := UnmarshalBucket(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Truncated valid encoding.
	full := MarshalBucket(core.NewBucket(bitlabel.Root(2),
		[]spatial.Record{{Key: spatial.Point{0.5, 0.5}, Data: "x"}}))
	for cut := 1; cut < len(full); cut++ {
		if _, err := UnmarshalBucket(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestBucketCodecTypeSafety(t *testing.T) {
	var c BucketCodec
	if _, err := c.Marshal("not a bucket"); err == nil {
		t.Error("non-bucket accepted")
	}
}

// TestIndexOverByteDHT is the integration proof: the whole index workload
// runs over a substrate that only stores bytes.
func TestIndexOverByteDHT(t *testing.T) {
	byteDHT := NewByteDHT(dht.MustNewLocal(16), BucketCodec{})
	ix, err := core.New(byteDHT, core.Options{ThetaSplit: 15, ThetaMerge: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var records []spatial.Record
	for i := 0; i < 1200; i++ {
		rec := spatial.Record{
			Key:  spatial.Point{rng.Float64(), rng.Float64()},
			Data: fmt.Sprintf("r%d", i),
		}
		records = append(records, rec)
		if err := ix.Insert(rec); err != nil {
			t.Fatalf("Insert #%d over bytes: %v", i, err)
		}
	}
	// Exact and range queries behave identically.
	for _, rec := range records[:100] {
		got, err := ix.Exact(rec.Key)
		if err != nil || len(got) != 1 || got[0].Data != rec.Data {
			t.Fatalf("Exact over bytes: %v, %v", got, err)
		}
	}
	for trial := 0; trial < 30; trial++ {
		lo := spatial.Point{rng.Float64() * 0.7, rng.Float64() * 0.7}
		hi := spatial.Point{lo[0] + 0.2, lo[1] + 0.2}
		q, err := spatial.NewRect(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, r := range records {
			if q.Contains(r.Key) {
				want++
			}
		}
		res, err := ix.RangeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != want {
			t.Fatalf("RangeQuery over bytes = %d, scan %d", len(res.Records), want)
		}
	}
	// Deletes (with merges) round-trip too.
	for _, rec := range records {
		ok, err := ix.Delete(rec.Key, rec.Data)
		if err != nil || !ok {
			t.Fatalf("Delete over bytes: %v, %v", ok, err)
		}
	}
	if n, err := ix.Size(); err != nil || n != 0 {
		t.Fatalf("Size after deleting all = %d, %v", n, err)
	}
	// Every stored value really is bytes.
	if err := byteDHT.inner.(dht.Enumerator).Range(func(k dht.Key, v any) bool {
		if _, ok := v.([]byte); !ok {
			t.Errorf("substrate holds %T, want []byte", v)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestByteDHTRejectsNonByteSubstrateValues(t *testing.T) {
	inner := dht.MustNewLocal(1)
	if err := inner.Put("poison", 42); err != nil {
		t.Fatal(err)
	}
	b := NewByteDHT(inner, BucketCodec{})
	if _, _, err := b.Get("poison"); err == nil {
		t.Error("non-byte value decoded")
	}
	if err := b.Range(func(dht.Key, any) bool { return true }); err == nil {
		t.Error("Range over non-byte value succeeded")
	}
}
