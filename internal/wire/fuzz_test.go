package wire

import (
	"testing"

	"mlight/internal/bitlabel"
	"mlight/internal/core"
	"mlight/internal/spatial"
)

// FuzzUnmarshalBucket: arbitrary bytes never panic; anything that decodes
// re-encodes to a value that decodes to the same bucket (canonical form).
func FuzzUnmarshalBucket(f *testing.F) {
	f.Add([]byte{})
	f.Add(MarshalBucket(core.Bucket{Label: bitlabel.Root(2)}))
	f.Add(MarshalBucket(core.NewBucket(bitlabel.MustParse("0011011"), []spatial.Record{
		{Key: spatial.Point{0.25, 0.75}, Data: "x"},
		{Key: spatial.Point{0.5, 0.5}, Data: ""},
	})))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := UnmarshalBucket(data)
		if err != nil {
			return
		}
		again, err := UnmarshalBucket(MarshalBucket(b))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Label != b.Label || again.Load() != b.Load() {
			t.Fatal("re-decode differs")
		}
	})
}

// FuzzDecodeRecord: arbitrary bytes never panic.
func FuzzDecodeRecord(f *testing.F) {
	f.Add(AppendRecord(nil, spatial.Record{Key: spatial.Point{0.1, 0.9}, Data: "abc"}))
	f.Add([]byte{2})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, rest, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatal("rest grew")
		}
		_ = rec
	})
}
