package core

import (
	"fmt"
	"math/rand"
	"testing"

	"mlight/internal/bitlabel"
	"mlight/internal/spatial"
)

// randomRecords draws n records in [0,1)^dims with payloads of mixed length
// (including empty, which the offset table must represent exactly).
func randomRecords(rng *rand.Rand, n, dims int) []spatial.Record {
	out := make([]spatial.Record, n)
	for i := range out {
		p := make(spatial.Point, dims)
		for d := range p {
			p[d] = rng.Float64()
		}
		data := ""
		if rng.Intn(4) != 0 {
			data = fmt.Sprintf("rec-%d-%c", i, 'a'+rng.Intn(26))
		}
		out[i] = spatial.Record{Key: p, Data: data}
	}
	return out
}

// sameRecordSlice compares element-wise (order matters: the columnar store
// must preserve insertion order exactly like the old slice layout).
func sameRecordSlice(t *testing.T, got, want []spatial.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("record count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Data != want[i].Data || !samePoint(got[i].Key, want[i].Key) {
			t.Fatalf("record %d = %v %q, want %v %q",
				i, got[i].Key, got[i].Data, want[i].Key, want[i].Data)
		}
	}
}

// TestColumnarMatchesSliceLayout: a Bucket built by Append, a Bucket built
// by NewBucket, and a plain record slice agree on every accessor — the
// columnar arena layout is observationally identical to the old
// []spatial.Record field.
func TestColumnarMatchesSliceLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	label := bitlabel.MustParse("0011")
	for trial := 0; trial < 200; trial++ {
		dims := 1 + rng.Intn(3)
		want := randomRecords(rng, rng.Intn(40), dims)

		appended := Bucket{Label: label}
		for _, rec := range want {
			appended = appended.Append(rec)
		}
		packed := NewBucket(label, want)

		for name, b := range map[string]Bucket{"appended": appended, "packed": packed} {
			if b.Load() != len(want) {
				t.Fatalf("%s: Load = %d, want %d", name, b.Load(), len(want))
			}
			sameRecordSlice(t, b.Records(), want)
			for i, rec := range want {
				if !samePoint(b.KeyAt(i), rec.Key) {
					t.Fatalf("%s: KeyAt(%d) = %v, want %v", name, i, b.KeyAt(i), rec.Key)
				}
				if b.DataAt(i) != rec.Data {
					t.Fatalf("%s: DataAt(%d) = %q, want %q", name, i, b.DataAt(i), rec.Data)
				}
				ri := b.RecordAt(i)
				if !samePoint(ri.Key, rec.Key) || ri.Data != rec.Data {
					t.Fatalf("%s: RecordAt(%d) = %v, want %v", name, i, ri, rec)
				}
			}
		}
	}
}

// TestColumnarCopyOnWrite: a Bucket value taken before further Appends is a
// stable snapshot — later appends (which may share arena capacity) never
// change what an older header observes. This is the invariant the insert
// path's lock-free readers rely on.
func TestColumnarCopyOnWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	recs := randomRecords(rng, 64, 2)
	b := Bucket{Label: bitlabel.MustParse("001")}
	snaps := make([]Bucket, 0, len(recs)+1)
	for _, rec := range recs {
		snaps = append(snaps, b)
		b = b.Append(rec)
	}
	snaps = append(snaps, b)
	for k, s := range snaps {
		if s.Load() != k {
			t.Fatalf("snapshot %d: Load = %d", k, s.Load())
		}
		sameRecordSlice(t, s.Records(), recs[:k])
	}
}

// TestColumnarSplitEquivalence: splitting a columnar bucket (the cellOf →
// decideSplit path used by applyInsert) partitions exactly the records the
// equivalent slice layout holds — every piece's contents round-trip through
// NewBucket unchanged and the union is the original set.
func TestColumnarSplitEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	idx := &Index{opts: Options{Dims: 2, ThetaSplit: 4}.withDefaults()}

	records := randomRecords(rng, 64, 2)
	root := bitlabel.Root(2)
	b := NewBucket(root, records)
	cell, err := idx.cellOf(b)
	if err != nil {
		t.Fatal(err)
	}
	pieces, err := idx.decideSplit(cell)
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) <= 1 {
		t.Fatalf("expected an overfull root to split, got %d pieces", len(pieces))
	}
	var union []spatial.Record
	for _, piece := range pieces {
		pb := NewBucket(piece.Label, piece.Records)
		sameRecordSlice(t, pb.Records(), piece.Records)
		union = append(union, pb.Records()...)
	}
	if len(union) != len(records) {
		t.Fatalf("split moved %d records, want %d", len(union), len(records))
	}
	if !sameRecordSet(union, records) {
		t.Fatal("split pieces do not partition the original records")
	}
}

// TestBucketAppendZeroAlloc is the scale gate: once arena capacity exists,
// Append performs no allocations — a 10M-record ingest must not pay a heap
// object per record.
func TestBucketAppendZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	seed := randomRecords(rng, 100, 2)
	b := NewBucket(bitlabel.Root(2), seed)
	rec := spatial.Record{Key: spatial.Point{0.5, 0.5}, Data: "x"}
	// First append grows the exact-size arenas; subsequent appends into the
	// doubled capacity must be allocation-free.
	b = b.Append(rec)
	base := b
	allocs := testing.AllocsPerRun(20, func() {
		_ = base.Append(rec)
	})
	if allocs != 0 {
		t.Fatalf("Bucket.Append allocates %.1f objects/op with spare capacity, want 0", allocs)
	}
}

// FuzzColumnarRoundTrip: arbitrary byte strings drive record construction;
// the columnar store and the plain slice must stay observationally equal
// under any append sequence.
func FuzzColumnarRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 200, 0, 0, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		dims := 1 + int(len(data))%3
		var want []spatial.Record
		b := Bucket{Label: bitlabel.MustParse("01")}
		for i := 0; i+dims <= len(data); i += dims {
			p := make(spatial.Point, dims)
			for d := 0; d < dims; d++ {
				p[d] = float64(data[i+d]) / 256
			}
			rec := spatial.Record{Key: p, Data: string(data[i : i+dims])}
			want = append(want, rec)
			b = b.Append(rec)
		}
		if b.Load() != len(want) {
			t.Fatalf("Load = %d, want %d", b.Load(), len(want))
		}
		got := b.Records()
		for i := range want {
			if got[i].Data != want[i].Data || !samePoint(got[i].Key, want[i].Key) {
				t.Fatalf("record %d differs", i)
			}
		}
	})
}
