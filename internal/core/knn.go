package core

import (
	"fmt"
	"math"
	"sort"

	"mlight/internal/spatial"
)

// Neighbor is one k-nearest-neighbour result.
type Neighbor struct {
	Record   spatial.Record
	Distance float64
}

// NearestResult carries a kNN answer and its cumulative cost across the
// expanding-ball iterations.
type NearestResult struct {
	Neighbors []Neighbor
	Lookups   int
	Rounds    int
}

// Nearest answers a k-nearest-neighbour query — an extension beyond the
// paper, built from its primitives the way over-DHT systems do it: an
// expanding ball of circle-shaped range queries. The initial radius comes
// from the query point's own leaf cell (one lookup); each unsuccessful
// iteration doubles the radius. The final ball query at radius equal to the
// k-th candidate's distance guarantees exactness.
func (ix *Index) Nearest(p spatial.Point, k int) (*NearestResult, error) {
	m := ix.opts.Dims
	if p.Dim() != m {
		return nil, fmt.Errorf("%w: point has %d dims, index has %d", ErrDimension, p.Dim(), m)
	}
	if !p.Valid() {
		return nil, fmt.Errorf("core: point %v outside the unit cube", p)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k must be ≥ 1, got %d", k)
	}
	res := &NearestResult{}

	// Seed the radius from the local leaf: its cell diameter, or the k-th
	// in-bucket distance when the bucket alone can answer.
	leaf, trace, err := ix.LookupTraced(p)
	if err != nil {
		return nil, err
	}
	res.Lookups += trace.Probes
	res.Rounds += trace.Probes
	radius := ix.seedRadius(leaf, p, k)

	maxRadius := math.Sqrt(float64(m)) // the unit cube's diameter
	for iter := 0; iter < 64; iter++ {
		circle := spatial.Circle{Center: p, Radius: radius}
		qres, err := ix.ShapeQuery(circle)
		if err != nil {
			return nil, err
		}
		res.Lookups += qres.Lookups
		res.Rounds += qres.Rounds // iterations are sequential
		if len(qres.Records) >= k || radius >= maxRadius {
			neighbors := nearestOf(qres.Records, p, k)
			if len(neighbors) == k && neighbors[k-1].Distance > radius {
				// Defensive: cannot happen since the query ball bounds the
				// distances, but keep the invariant explicit.
				radius = neighbors[k-1].Distance
				continue
			}
			if len(neighbors) == k || radius >= maxRadius {
				res.Neighbors = neighbors
				return res, nil
			}
		}
		radius = math.Min(radius*2, maxRadius)
	}
	return nil, fmt.Errorf("core: nearest(%v, %d) did not converge", p, k)
}

// seedRadius picks the first ball radius for a kNN query.
func (ix *Index) seedRadius(leaf Bucket, p spatial.Point, k int) float64 {
	if leaf.Load() >= k {
		neighbors := nearestOf(leaf.Records(), p, k)
		r := neighbors[len(neighbors)-1].Distance
		if r > 0 {
			return r
		}
	}
	g, err := spatial.RegionOf(leaf.Label, ix.opts.Dims)
	if err == nil {
		d := 0.0
		for i := range g.Lo {
			side := g.Hi[i] - g.Lo[i]
			d += side * side
		}
		if d > 0 {
			return math.Sqrt(d)
		}
	}
	return 1.0 / 64
}

// nearestOf sorts records by distance to p and keeps the closest k.
func nearestOf(records []spatial.Record, p spatial.Point, k int) []Neighbor {
	out := make([]Neighbor, 0, len(records))
	for _, r := range records {
		out = append(out, Neighbor{Record: r, Distance: math.Sqrt(spatial.DistSq(r.Key, p))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Record.Data < out[j].Record.Data
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
