// Package core implements m-LIGHT (multi-dimensional Lightweight Hash Tree
// over a DHT), the primary contribution of the ICDCS 2009 paper. It is an
// over-DHT index: it runs entirely above the generic dht.DHT interface and
// never modifies the substrate.
//
// # Structure (paper §3)
//
// Data keys are m-dimensional points in the unit cube, clustered by a space
// kd-tree that always halves cells at their spatial midpoint, cycling
// through the dimensions. The tree is decomposed into leaf buckets: each
// leaf λ stores its label (which encodes its whole local tree — ancestors
// and their siblings) and its data records. The bucket of leaf λ lives in
// the DHT under the label fmd(λ), where fmd is the m-dimensional naming
// function (bitlabel.Name). Because fmd bijectively maps leaves onto
// internal nodes (Theorem 4), every internal-node label hosts exactly one
// bucket, and because a freshly split leaf sends exactly one child to a new
// DHT key (Theorem 5), maintenance is incremental: half the work of a
// naive re-insertion.
//
// # Operations
//
//   - Lookup (§5): binary search over the candidate prefix set of the
//     point's interleaved path label, O(log D) DHT gets.
//   - Insert/Delete (§4.1): one lookup plus an Apply at the bucket; leaf
//     splits relocate only the children not named to the old key, merges
//     relocate only one sibling.
//   - Data-aware splitting (§4.2): Algorithm 1 chooses the split subtree
//     minimising Σ(load−ε)², Theorem 6's optimal load balance.
//   - Range queries (§6): the query is forwarded to the corner cell of the
//     range's lowest common ancestor and recursively decomposed over branch
//     nodes (Algorithms 2–3); a parallel variant trades bandwidth for
//     latency with a lookahead factor h.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mlight/internal/bitlabel"
	"mlight/internal/dht"
	"mlight/internal/index"
	"mlight/internal/kdtree"
	"mlight/internal/metrics"
	"mlight/internal/spatial"
	"mlight/internal/trace"
)

// SplitStrategy selects how overfull leaf buckets divide (paper §4). It is
// the shared strategy type of the index contract package.
type SplitStrategy = index.SplitStrategy

const (
	// SplitThreshold is the conventional θsplit/θmerge strategy (§4.1).
	SplitThreshold = index.SplitThreshold
	// SplitDataAware is the data-aware strategy of §4.2: buckets split
	// according to the optimal split subtree of Algorithm 1.
	SplitDataAware = index.SplitDataAware
)

// Options configures an Index. The zero value of each field selects the
// listed default.
type Options struct {
	// Dims is the data dimensionality m. Default 2.
	Dims int
	// MaxDepth is D, the maximum index-tree depth below the ordinary root;
	// the lookup binary search runs over candidate labels of length up to
	// m+1+D (§5). Default 28, the paper's evaluation setting.
	MaxDepth int
	// ThetaSplit is the leaf capacity for threshold splitting. Default 100.
	ThetaSplit int
	// ThetaMerge triggers a merge when a sibling leaf pair jointly holds
	// fewer records (§4.1 suggests θsplit/2). Default ThetaSplit/2.
	ThetaMerge int
	// Strategy selects the splitting strategy. Default SplitThreshold.
	Strategy SplitStrategy
	// Epsilon is the expected per-bucket load ε for SplitDataAware.
	// Default 70, the paper's Fig. 6 setting.
	Epsilon int
	// MaxInFlight caps the number of concurrently outstanding DHT probes
	// per query round. 1 forces fully sequential execution (every probe on
	// the calling goroutine); larger values let each round's frontier —
	// branch subqueries plus the h lookahead pieces — overlap, so measured
	// latency tracks Rounds instead of Lookups. The cap changes only
	// execution, never the Lookups/Rounds accounting. Default 16.
	MaxInFlight int
	// CacheSize enables the client-side leaf-label lookup cache: an LRU of
	// recently resolved leaves that seeds the §5 binary search, resolving a
	// repeat lookup on an unchanged index with a single verification probe.
	// Entries observed stale (the leaf split or merged) are evicted and the
	// search falls back to the standard bounds, so the cache never serves
	// stale buckets. 0 disables the cache (the default, preserving the
	// paper experiments' probe accounting).
	CacheSize int
	// Retry, when non-nil, interposes a dht.Resilient fault-tolerance layer
	// between the index and the substrate: every DHT operation is retried
	// under the policy's backoff/attempt budget and per-owner circuit
	// breakers, so queries and maintenance survive transient loss. The
	// logical operation accounting (DHTLookups etc.) is unchanged — retries
	// are metered separately, see ResilienceStats. Nil (the default) leaves
	// the substrate unwrapped.
	Retry *dht.RetryPolicy
	// Trace, when non-nil, records an operation trace of every query into
	// the collector: query → batch round → probe → DHT op → retry attempt
	// spans, plus lookup searches and cache events. Nil (the default)
	// disables tracing entirely; every collection point is a nil check, so
	// a disabled trace costs nothing.
	Trace *trace.Collector
	// Sleep is the sleeper maintenance uses to back off between
	// conflicting insert attempts (a concurrent split's relocated buckets
	// become visible within a few put operations). Nil selects time.Sleep;
	// tests inject dht.NoSleep so retries are deterministic and free, the
	// same convention RetryPolicy.Sleep follows.
	Sleep func(time.Duration)
	// WriterBatch bounds how many queued inserts one group commit of the
	// Writer drains (see Index.Writer). Default 256.
	WriterBatch int
	// Seed seeds the index's internal randomness — the depth-probe sampling
	// of EstimateDepth. The index never reads the global rand source or the
	// wall clock, so any fixed Seed (including the zero value) makes runs
	// replayable.
	Seed int64
	// Multicast switches range queries to prefix-multicast dissemination:
	// instead of probing covering leaves level by level (optionally with a
	// blind h-piece lookahead), each forwarding step splits its subrange
	// down the globally known space partitioning to the estimated leaf
	// depth and probes the whole prefix-tree frontier in one round. The
	// result set and its depth-first ordering are identical to the
	// round-synchronous engine's; only the Lookups/Rounds cost profile
	// changes. Default off.
	Multicast bool
}

// Apply implements index.Option: an Options value used as a functional
// option overwrites the whole tuning, so place it before any With*
// refinements.
func (o Options) Apply(t *index.Tuning) {
	*t = index.Tuning{
		Dims:           o.Dims,
		MaxDepth:       o.MaxDepth,
		Capacity:       o.ThetaSplit,
		MergeThreshold: o.ThetaMerge,
		Strategy:       o.Strategy,
		Epsilon:        o.Epsilon,
		MaxInFlight:    o.MaxInFlight,
		CacheSize:      o.CacheSize,
		Retry:          o.Retry,
		Trace:          o.Trace,
		Sleep:          o.Sleep,
		WriterBatch:    o.WriterBatch,
		Seed:           o.Seed,
		Multicast:      o.Multicast,
	}
}

// FromTuning maps the shared tuning surface onto this package's Options.
func FromTuning(t index.Tuning) Options {
	return Options{
		Dims:        t.Dims,
		MaxDepth:    t.MaxDepth,
		ThetaSplit:  t.Capacity,
		ThetaMerge:  t.MergeThreshold,
		Strategy:    t.Strategy,
		Epsilon:     t.Epsilon,
		MaxInFlight: t.MaxInFlight,
		CacheSize:   t.CacheSize,
		Retry:       t.Retry,
		Trace:       t.Trace,
		Sleep:       t.Sleep,
		WriterBatch: t.WriterBatch,
		Seed:        t.Seed,
		Multicast:   t.Multicast,
	}
}

func (o Options) withDefaults() Options {
	if o.Dims == 0 {
		o.Dims = 2
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 28
	}
	if o.ThetaSplit == 0 {
		o.ThetaSplit = 100
	}
	if o.ThetaMerge == 0 {
		o.ThetaMerge = o.ThetaSplit / 2
	}
	if o.Strategy == 0 {
		o.Strategy = SplitThreshold
	}
	if o.Epsilon == 0 {
		o.Epsilon = 70
	}
	if o.MaxInFlight == 0 {
		o.MaxInFlight = dht.DefaultMaxInFlight
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	if o.WriterBatch == 0 {
		o.WriterBatch = 256
	}
	return o
}

func (o Options) validate() error {
	if o.Dims < 1 {
		return fmt.Errorf("core: Dims must be ≥ 1, got %d", o.Dims)
	}
	if o.MaxDepth < 1 || o.Dims+1+o.MaxDepth > bitlabel.MaxLen {
		return fmt.Errorf("core: MaxDepth %d out of range for m=%d (need m+1+D ≤ %d)",
			o.MaxDepth, o.Dims, bitlabel.MaxLen)
	}
	if o.ThetaSplit < 1 {
		return fmt.Errorf("core: ThetaSplit must be ≥ 1, got %d", o.ThetaSplit)
	}
	if o.ThetaMerge < 0 || o.ThetaMerge >= o.ThetaSplit {
		return fmt.Errorf("core: need 0 ≤ ThetaMerge < ThetaSplit, got %d, %d", o.ThetaMerge, o.ThetaSplit)
	}
	if o.MaxInFlight < 1 {
		return fmt.Errorf("core: MaxInFlight must be ≥ 1, got %d", o.MaxInFlight)
	}
	if o.CacheSize < 0 {
		return fmt.Errorf("core: CacheSize must be ≥ 0, got %d", o.CacheSize)
	}
	if o.WriterBatch < 1 {
		return fmt.Errorf("core: WriterBatch must be ≥ 1, got %d", o.WriterBatch)
	}
	switch o.Strategy {
	case SplitThreshold:
	case SplitDataAware:
		if o.Epsilon < 1 {
			return fmt.Errorf("core: Epsilon must be ≥ 1 for data-aware splitting, got %d", o.Epsilon)
		}
	default:
		return fmt.Errorf("core: unknown split strategy %v", o.Strategy)
	}
	return nil
}

// Bucket is one leaf bucket of the index (§3.3): the label store (the leaf
// label λ, from which the whole local tree is derived) and the record
// store. Buckets are stored in the DHT under key fmd(λ). Records live in a
// columnar arena layout (see columnar.go) behind the NewBucket/Records/
// KeyAt/DataAt/Append accessors, so multi-million-record runs pay 4 bytes
// of per-record overhead instead of two headers and two heap objects. The
// zero value with a Label is a valid empty bucket.
type Bucket struct {
	// Label is the leaf's kd-tree label λ.
	Label bitlabel.Label
	// rs is the columnar record store; access through the Bucket methods.
	rs recs
}

// Key returns the DHT key the bucket lives under: fmd(λ).
func (b Bucket) Key(m int) dht.Key {
	return labelKey(bitlabel.Name(b.Label, m))
}

// labelKey converts a node label into a DHT key.
func labelKey(l bitlabel.Label) dht.Key {
	return dht.Key("mlight/" + l.Key())
}

// Errors reported by the index.
var (
	// ErrNotFound is returned by lookups that cannot locate a covering
	// bucket — the index is missing or inconsistent.
	ErrNotFound = errors.New("core: no bucket covers the key")
	// ErrDimension is returned when an argument's dimensionality does not
	// match the index.
	ErrDimension = errors.New("core: dimensionality mismatch")
)

// Index is the m-LIGHT implementation of the shared Querier contract.
var _ index.Querier = (*Index)(nil)

// Index is an m-LIGHT index client bound to a DHT substrate. All methods
// are safe for concurrent use if the substrate is; the experiments drive it
// single-threaded for determinism.
type Index struct {
	opts  Options
	raw   dht.DHT       // uncounted: local rewrites on the owning peer
	d     *dht.Counting // counted: operations that cross the DHT
	stats *metrics.IndexStats
	// resilience meters the retry layer when Options.Retry is set; nil
	// otherwise.
	resilience *metrics.ResilienceStats
	// cache is the client-side leaf-label lookup cache; nil when disabled.
	cache *leafCache
	// writer is the lazily created group-commit insert engine (see Writer).
	writerOnce sync.Once
	writer     *Writer
}

// New creates an index client over d and bootstraps the root bucket if the
// index does not exist yet. Several clients may attach to the same
// substrate; only the first creates the root.
func New(d dht.DHT, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	stats := &metrics.IndexStats{}
	ix := &Index{opts: opts, stats: stats}
	if opts.Retry != nil {
		// The resilient layer sits below Counting: a logical operation is
		// charged once no matter how many attempts it takes. All index
		// traffic — counted operations and local rewrites alike — flows
		// through it.
		ix.resilience = &metrics.ResilienceStats{}
		res := dht.NewResilient(d, *opts.Retry, ix.resilience)
		res.SetTracer(opts.Trace)
		d = res
	}
	ix.raw = d
	ix.d = dht.NewCounting(d, stats)
	if opts.CacheSize > 0 {
		ix.cache = newLeafCache(opts.CacheSize)
	}
	root := bitlabel.Root(opts.Dims)
	// Bootstrap idempotently: create the root bucket only when absent.
	err := ix.raw.Apply(labelKey(bitlabel.Name(root, opts.Dims)), func(cur any, exists bool) (any, bool) {
		if exists {
			return cur, true
		}
		return Bucket{Label: root}, true
	})
	if err != nil {
		return nil, fmt.Errorf("core: bootstrap root bucket: %w", err)
	}
	return ix, nil
}

// Options returns the index configuration (with defaults resolved).
func (ix *Index) Options() Options { return ix.opts }

// Dims returns the index dimensionality m.
func (ix *Index) Dims() int { return ix.opts.Dims }

// Stats returns a snapshot of the maintenance counters.
func (ix *Index) Stats() metrics.Snapshot { return ix.stats.Snapshot() }

// ResetStats zeroes the maintenance counters.
func (ix *Index) ResetStats() { ix.stats.Reset() }

// ResilienceStats returns the retry-layer counters, or nil when
// Options.Retry is unset.
func (ix *Index) ResilienceStats() *metrics.ResilienceStats { return ix.resilience }

// DHT returns the counted substrate view used by the index.
func (ix *Index) DHT() dht.DHT { return ix.d }

// Buckets returns all leaf buckets, in unspecified order. It requires an
// enumerable substrate and is intended for measurements and tests.
func (ix *Index) Buckets() ([]Bucket, error) {
	e, ok := ix.raw.(dht.Enumerator)
	if !ok {
		return nil, dht.ErrNotEnumerable
	}
	var out []Bucket
	err := e.Range(func(k dht.Key, v any) bool {
		if b, isBucket := v.(Bucket); isBucket {
			out = append(out, b)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Size returns the total number of records across all buckets (requires an
// enumerable substrate).
func (ix *Index) Size() (int, error) {
	bs, err := ix.Buckets()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, b := range bs {
		n += b.Load()
	}
	return n, nil
}

// cellOf converts a bucket into the kd-tree cell it indexes.
func (ix *Index) cellOf(b Bucket) (kdtree.Cell, error) {
	g, err := spatial.RegionOf(b.Label, ix.opts.Dims)
	if err != nil {
		return kdtree.Cell{}, err
	}
	return kdtree.Cell{Label: b.Label, Region: g, Records: b.Records()}, nil
}

// remainingDepth returns how many more levels a leaf at label may split.
func (ix *Index) remainingDepth(label bitlabel.Label) int {
	used := label.Len() - (ix.opts.Dims + 1)
	return ix.opts.MaxDepth - used
}
