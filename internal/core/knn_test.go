package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/spatial"
)

// TestShapeQueryCircleAgainstScan: circle queries return exactly the
// records a linear scan finds, with and without parallel lookahead.
func TestShapeQueryCircleAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ix := newIndex(t, Options{ThetaSplit: 12, ThetaMerge: 6})
	points := randomPoints(rng, 2, 2500)
	for i, p := range points {
		if err := ix.Insert(spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 60; trial++ {
		c := spatial.Circle{
			Center: spatial.Point{rng.Float64(), rng.Float64()},
			Radius: rng.Float64() * 0.3,
		}
		want := 0
		for _, p := range points {
			if c.ContainsPoint(p) {
				want++
			}
		}
		res, err := ix.ShapeQuery(c)
		if err != nil {
			t.Fatalf("ShapeQuery(%+v): %v", c, err)
		}
		if len(res.Records) != want {
			t.Fatalf("ShapeQuery(%+v) = %d records, scan %d", c, len(res.Records), want)
		}
		pres, err := ix.ShapeQueryParallel(c, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(pres.Records) != want {
			t.Fatalf("parallel ShapeQuery = %d records, scan %d", len(pres.Records), want)
		}
		// Pruning must not cost more lookups than the bounding-box query.
		bb := c.BoundingBox()
		bres, err := ix.RangeQuery(bb)
		if err != nil {
			t.Fatal(err)
		}
		if res.Lookups > bres.Lookups {
			t.Fatalf("circle query %d lookups exceeds bounding box %d", res.Lookups, bres.Lookups)
		}
	}
}

func TestShapeQueryValidation(t *testing.T) {
	ix := newIndex(t, Options{})
	if _, err := ix.ShapeQuery(nil); err == nil {
		t.Error("nil shape accepted")
	}
	if _, err := ix.ShapeQueryParallel(spatial.Circle{Center: spatial.Point{0.5, 0.5}, Radius: 0.1}, 0); err == nil {
		t.Error("h=0 accepted")
	}
	// Wrong-dimension shape.
	c := spatial.Circle{Center: spatial.Point{0.5}, Radius: 0.1}
	if _, err := ix.ShapeQuery(c); !errors.Is(err, ErrDimension) {
		t.Errorf("wrong-dim shape: %v", err)
	}
}

// knnOracle returns the exact k nearest records by linear scan.
func knnOracle(records []spatial.Record, p spatial.Point, k int) []string {
	type cand struct {
		d    float64
		data string
	}
	cands := make([]cand, len(records))
	for i, r := range records {
		cands[i] = cand{d: math.Sqrt(spatial.DistSq(r.Key, p)), data: r.Data}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].data < cands[j].data
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.data
	}
	return out
}

func TestNearestAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ix := newIndex(t, Options{ThetaSplit: 15, ThetaMerge: 7})
	var records []spatial.Record
	for i, p := range clusteredPoints(rng, 2, 1500) {
		rec := spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}
		records = append(records, rec)
		if err := ix.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 40; trial++ {
		p := spatial.Point{rng.Float64(), rng.Float64()}
		k := 1 + rng.Intn(20)
		res, err := ix.Nearest(p, k)
		if err != nil {
			t.Fatalf("Nearest(%v, %d): %v", p, k, err)
		}
		want := knnOracle(records, p, k)
		if len(res.Neighbors) != len(want) {
			t.Fatalf("Nearest(%v, %d) = %d results, want %d", p, k, len(res.Neighbors), len(want))
		}
		for i, nb := range res.Neighbors {
			if nb.Record.Data != want[i] {
				t.Fatalf("Nearest(%v, %d)[%d] = %s (d=%f), want %s",
					p, k, i, nb.Record.Data, nb.Distance, want[i])
			}
		}
		// Distances are sorted.
		for i := 1; i < len(res.Neighbors); i++ {
			if res.Neighbors[i].Distance < res.Neighbors[i-1].Distance {
				t.Fatal("neighbours not sorted by distance")
			}
		}
		if res.Lookups < 1 || res.Rounds < 1 {
			t.Fatalf("implausible cost %+v", res)
		}
	}
}

func TestNearestSmallIndex(t *testing.T) {
	ix := newIndex(t, Options{})
	// k larger than the dataset returns everything.
	for i := 0; i < 3; i++ {
		p := spatial.Point{0.1 * float64(i+1), 0.2}
		if err := ix.Insert(spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ix.Nearest(spatial.Point{0.5, 0.5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 3 {
		t.Fatalf("Nearest on 3-record index = %d results", len(res.Neighbors))
	}
	// Empty index returns no neighbours.
	empty := newIndex(t, Options{})
	res, err = empty.Nearest(spatial.Point{0.5, 0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 0 {
		t.Fatalf("Nearest on empty index = %d results", len(res.Neighbors))
	}
}

func TestNearestValidation(t *testing.T) {
	ix := newIndex(t, Options{})
	if _, err := ix.Nearest(spatial.Point{0.5}, 1); !errors.Is(err, ErrDimension) {
		t.Errorf("wrong-dim: %v", err)
	}
	if _, err := ix.Nearest(spatial.Point{0.5, 0.5}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ix.Nearest(spatial.Point{1.5, 0.5}, 1); err == nil {
		t.Error("out-of-cube point accepted")
	}
}

func TestNearestExactPointQuery(t *testing.T) {
	ix := newIndex(t, Options{ThetaSplit: 5, ThetaMerge: 2})
	target := spatial.Point{0.3, 0.7}
	if err := ix.Insert(spatial.Record{Key: target, Data: "bullseye"}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 100; i++ {
		if err := ix.Insert(spatial.Record{
			Key:  spatial.Point{rng.Float64(), rng.Float64()},
			Data: fmt.Sprintf("r%d", i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ix.Nearest(target, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 1 || res.Neighbors[0].Record.Data != "bullseye" || res.Neighbors[0].Distance != 0 {
		t.Fatalf("Nearest at exact point = %+v", res.Neighbors)
	}
}

// TestSphereQuery3D: the circle shape works in any dimensionality (it is a
// Euclidean ball); check 3-D against a linear scan.
func TestSphereQuery3D(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	ix := newIndex3D(t)
	var points []spatial.Point
	for i := 0; i < 1200; i++ {
		p := spatial.Point{rng.Float64(), rng.Float64(), rng.Float64()}
		points = append(points, p)
		if err := ix.Insert(spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 25; trial++ {
		ball := spatial.Circle{
			Center: spatial.Point{rng.Float64(), rng.Float64(), rng.Float64()},
			Radius: 0.05 + rng.Float64()*0.3,
		}
		want := 0
		for _, p := range points {
			if ball.ContainsPoint(p) {
				want++
			}
		}
		res, err := ix.ShapeQuery(ball)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != want {
			t.Fatalf("3-D ball query = %d, scan %d", len(res.Records), want)
		}
	}
	// kNN in 3-D too.
	res, err := ix.Nearest(spatial.Point{0.5, 0.5, 0.5}, 7)
	if err != nil || len(res.Neighbors) != 7 {
		t.Fatalf("3-D Nearest: %d results, %v", len(res.Neighbors), err)
	}
}

func newIndex3D(t *testing.T) *Index {
	t.Helper()
	ix, err := New(dht.MustNewLocal(16), Options{Dims: 3, ThetaSplit: 15, ThetaMerge: 7, MaxDepth: 20})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}
