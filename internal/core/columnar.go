package core

import (
	"unsafe"

	"mlight/internal/bitlabel"
	"mlight/internal/spatial"
)

// This file implements the Bucket's columnar record storage. A bucket at
// the 10M-record scale target cannot afford one slice header (24B), one
// string header (16B), and two heap objects per record: the records live in
// three flat arenas instead — a coordinate block, a payload byte block, and
// an offset table — so per-record overhead is 4 bytes (the offset) and a
// range scan walks contiguous memory.
//
//	coords: [x0 y0 x1 y1 x2 y2 ...]           len = n·dims
//	data:   "payload0payload1payload2..."
//	offs:   [0, end0, end1, end2, ...]        len = n+1
//
// Accessors materialize spatial views without copying: KeyAt returns a
// capacity-clamped subslice of the coordinate block and DataAt an
// unsafe.String over the payload block. Both are safe under the index's
// copy-on-write discipline: arenas are append-only — a mutation (Delete, a
// split) packs fresh arenas rather than editing these — so a view taken
// from any Bucket value stays valid forever, exactly like the old
// []spatial.Record sharing. Append beyond len is invisible to readers
// holding shorter headers (the same argument applyInsert has always made).

// recs is one bucket's columnar record store. The zero value is an empty
// store. recs values are copied freely (four slice headers + an int);
// the arenas themselves are shared and append-only.
type recs struct {
	dims   int
	coords []float64
	offs   []uint32
	data   []byte
}

func (r recs) len() int {
	if len(r.offs) == 0 {
		return 0
	}
	return len(r.offs) - 1
}

func (r recs) keyAt(i int) spatial.Point {
	lo := i * r.dims
	hi := lo + r.dims
	return spatial.Point(r.coords[lo:hi:hi])
}

func (r recs) dataAt(i int) string {
	lo, hi := r.offs[i], r.offs[i+1]
	if lo == hi {
		return ""
	}
	// Zero-copy view: the payload arena is append-only (never edited in
	// place) so the string stays valid for the life of the arena.
	return unsafe.String(&r.data[lo], int(hi-lo))
}

// append extends the arenas by one record. Amortized allocation-free:
// the only heap move the compiler sees is the first-append offset-arena
// seed, waived below.
//
//lint:hotpath
func (r recs) append(rec spatial.Record) recs {
	if r.len() == 0 {
		r.dims = rec.Key.Dim()
	}
	if r.offs == nil {
		r.offs = make([]uint32, 1, 9) //lint:allow hotpath one-time arena seed on first append
	}
	r.coords = append(r.coords, rec.Key...)
	r.data = append(r.data, rec.Data...)
	r.offs = append(r.offs, uint32(len(r.data)))
	return r
}

// packRecs builds arenas sized exactly for the given records.
func packRecs(records []spatial.Record) recs {
	if len(records) == 0 {
		return recs{}
	}
	nd := 0
	for _, rec := range records {
		nd += len(rec.Data)
	}
	d := records[0].Key.Dim()
	r := recs{
		dims:   d,
		coords: make([]float64, 0, len(records)*d),
		offs:   make([]uint32, 1, len(records)+1),
		data:   make([]byte, 0, nd),
	}
	for _, rec := range records {
		r.coords = append(r.coords, rec.Key...)
		r.data = append(r.data, rec.Data...)
		r.offs = append(r.offs, uint32(len(r.data)))
	}
	return r
}

// NewBucket builds a bucket over the given records, packing them into
// columnar storage sized exactly for the set. The records slice is not
// retained; its Points and Data are copied into the arenas.
func NewBucket(label bitlabel.Label, records []spatial.Record) Bucket {
	return Bucket{Label: label, rs: packRecs(records)}
}

// Load returns the number of records stored in the bucket (§4.1 load).
func (b Bucket) Load() int { return b.rs.len() }

// KeyAt returns record i's key as a zero-copy view into the coordinate
// arena. The view must not be mutated.
func (b Bucket) KeyAt(i int) spatial.Point { return b.rs.keyAt(i) }

// DataAt returns record i's payload as a zero-copy view into the payload
// arena.
func (b Bucket) DataAt(i int) string { return b.rs.dataAt(i) }

// RecordAt returns record i with zero-copy key and payload views.
func (b Bucket) RecordAt(i int) spatial.Record {
	return spatial.Record{Key: b.rs.keyAt(i), Data: b.rs.dataAt(i)}
}

// Records materializes the record set. The returned slice is freshly
// allocated (one allocation — the element headers), but keys and payloads
// are views into the bucket's arenas, not copies.
func (b Bucket) Records() []spatial.Record {
	n := b.rs.len()
	if n == 0 {
		return nil
	}
	out := make([]spatial.Record, n)
	for i := range out {
		out[i] = spatial.Record{Key: b.rs.keyAt(i), Data: b.rs.dataAt(i)}
	}
	return out
}

// Append returns the bucket extended by one record, sharing arena capacity
// with the receiver (amortized O(1), zero allocations when capacity
// suffices). Readers holding the previous Bucket value see their own
// shorter arenas and never index past them — the copy-on-write argument
// the insert path has always relied on.
//
//lint:hotpath
func (b Bucket) Append(rec spatial.Record) Bucket {
	b.rs = b.rs.append(rec) //lint:allow hotpath inlined copy of recs.append first-append arena seed
	return b
}
