package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/spatial"
)

// TestConcurrentInsertsAndQueries drives the index from many goroutines at
// once. Inserts must all land (the retry loop absorbs concurrent splits);
// queries may transiently miss mid-split buckets but must never return
// wrong data; and the final structure must be exactly consistent.
func TestConcurrentInsertsAndQueries(t *testing.T) {
	ix, err := New(dht.MustNewLocal(16), Options{ThetaSplit: 12, ThetaMerge: 6})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers   = 8
		perWriter = 300
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				rec := spatial.Record{
					Key:  spatial.Point{rng.Float64(), rng.Float64()},
					Data: fmt.Sprintf("w%d-%d", w, i),
				}
				if err := ix.Insert(rec); err != nil {
					t.Errorf("writer %d insert %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	// Concurrent readers: range queries while the tree is splitting.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := randomRect(rng, 2)
				res, err := ix.RangeQuery(q)
				if err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if err == nil {
					for _, rec := range res.Records {
						if !q.Contains(rec.Key) {
							t.Errorf("reader %d: record %v outside %v", r, rec.Key, q)
							return
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	// Final consistency: every record present exactly once, structure sane.
	if n, err := ix.Size(); err != nil || n != writers*perWriter {
		t.Fatalf("Size = %d, %v; want %d", n, err, writers*perWriter)
	}
	buckets, err := ix.Buckets()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, b := range buckets {
		g, err := spatial.RegionOf(b.Label, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range b.Records() {
			if !g.Contains(rec.Key) {
				t.Fatalf("record %v outside its bucket %v", rec.Key, b.Label)
			}
			if seen[rec.Data] {
				t.Fatalf("record %s duplicated", rec.Data)
			}
			seen[rec.Data] = true
		}
	}
	// Whole-space query returns everything.
	all, err := ix.RangeQuery(spatial.Rect{Lo: spatial.Point{0, 0}, Hi: spatial.Point{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Records) != writers*perWriter {
		t.Fatalf("whole-space query = %d records, want %d", len(all.Records), writers*perWriter)
	}
}
