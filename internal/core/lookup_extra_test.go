package core

import (
	"fmt"
	"math/rand"
	"testing"

	"mlight/internal/index"
	"mlight/internal/spatial"
)

func TestEstimateDepth(t *testing.T) {
	ix := newIndex(t, Options{ThetaSplit: 10, ThetaMerge: 5, Seed: 1})
	// Empty index: only the root leaf, depth 0.
	d, err := ix.EstimateDepth(50)
	if err != nil || d != 0 {
		t.Fatalf("empty index depth = %d, %v", d, err)
	}
	rng := rand.New(rand.NewSource(3))
	for i, p := range randomPoints(rng, 2, 2000) {
		if err := ix.Insert(spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	d, err = ix.EstimateDepth(300)
	if err != nil {
		t.Fatal(err)
	}
	// 2000 records at θ=10 gives ≥200 leaves: depth at least log2(200) ≈ 8.
	if d < 8 || d > ix.Options().MaxDepth {
		t.Errorf("estimated depth = %d, expected within [8, %d]", d, ix.Options().MaxDepth)
	}
	// The estimate never exceeds the true maximum over all buckets.
	buckets, err := ix.Buckets()
	if err != nil {
		t.Fatal(err)
	}
	trueMax := 0
	for _, b := range buckets {
		if depth := b.Label.Len() - 3; depth > trueMax {
			trueMax = depth
		}
	}
	if d > trueMax {
		t.Errorf("estimate %d above true max %d", d, trueMax)
	}
	if _, err := ix.EstimateDepth(0); err == nil {
		t.Error("samples=0 accepted")
	}
	// The probe sampling is seeded from Options, so on an unchanged index
	// repeated estimates are replayable bit-for-bit.
	d2, err := ix.EstimateDepth(300)
	if err != nil {
		t.Fatal(err)
	}
	if d2 != d {
		t.Errorf("repeated estimate = %d, first = %d; sampling not replayable", d2, d)
	}
}

// TestSeedRoundTripsThroughTuning pins the Options↔Tuning mapping for Seed:
// a facade-level WithSeed must reach EstimateDepth's probe source.
func TestSeedRoundTripsThroughTuning(t *testing.T) {
	o := Options{Seed: 42}
	var tun struct{ index.Tuning }
	o.Apply(&tun.Tuning)
	if tun.Seed != 42 {
		t.Fatalf("Apply lost Seed: %d", tun.Seed)
	}
	back := FromTuning(tun.Tuning)
	if back.Seed != 42 {
		t.Fatalf("FromTuning lost Seed: %d", back.Seed)
	}
}
