package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"mlight/internal/bitlabel"
	"mlight/internal/dht"
	"mlight/internal/kdtree"
	"mlight/internal/spatial"
)

// This file is the group-commit insert engine: the write-path counterpart of
// the concurrent query execution PR 1 introduced. A sequential Insert pays a
// lookup, one Apply round trip, and one Put per relocated split piece — per
// record. InsertBatch amortises all three: destination leaves are resolved
// with overlapped lookups, every record bound for the same leaf rides one
// Apply, and all relocated pieces of the whole batch ship in one PutBatch
// round. The Writer on top coalesces concurrent Insert callers into such
// batches without timers or background goroutines.
//
// Stats-equality discipline (the invariant PR 1 established for queries):
// batching changes execution, never the maintenance accounting. The group
// Apply replays its records one at a time over a local frontier of cells —
// find the covering cell, append, decide the split, keep the piece named to
// that cell's key — charging Splits and RecordsMoved exactly as the
// sequential stream would have at each intermediate split event. Only the
// final frontier pieces are then placed physically, without re-charging:
// identical trees, identical Splits/RecordsMoved, fewer DHT round trips.
// DHTLookups intentionally differs — that reduction is the point.

// InsertBatch adds a batch of records in one group-committed pass and
// returns a positional error slice: errs[i] is record i's outcome, nil on
// success. Records destined for the same leaf coalesce into a single Apply
// at the owning peer; leaves are processed concurrently up to
// Options.MaxInFlight. Records whose destination moved mid-flight (a
// concurrent split or merge) fall back to the sequential Insert path, in
// stream order, so the batch as a whole has insert-per-record semantics.
func (ix *Index) InsertBatch(recs []spatial.Record) []error {
	errs := make([]error, len(recs))
	if len(recs) == 0 {
		return errs
	}
	m := ix.opts.Dims
	valid := make([]int, 0, len(recs))
	for i, rec := range recs {
		if rec.Key.Dim() != m {
			errs[i] = fmt.Errorf("%w: record has %d dims, index has %d", ErrDimension, rec.Key.Dim(), m)
			continue
		}
		if !rec.Key.Valid() {
			errs[i] = fmt.Errorf("core: record key %v outside the unit cube", rec.Key)
			continue
		}
		valid = append(valid, i)
	}

	// Resolve every record's destination leaf, overlapping the lookups up
	// to the in-flight cap. A lookup that cannot locate a covering bucket
	// (a concurrent split mid-flight) routes the record to the sequential
	// fallback, which retries with backoff.
	labels := make([]bitlabel.Label, len(recs))
	resolveErrs := make([]error, len(recs))
	sem := make(chan struct{}, ix.opts.MaxInFlight)
	var wg sync.WaitGroup
	for _, i := range valid {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			b, err := ix.Lookup(recs[i].Key)
			if err != nil {
				resolveErrs[i] = err
				return
			}
			labels[i] = b.Label
		}(i)
	}
	wg.Wait()

	var fallback []int
	groups := make(map[bitlabel.Label]*insertGroup)
	var order []*insertGroup
	for _, i := range valid {
		if err := resolveErrs[i]; err != nil {
			if errors.Is(err, ErrNotFound) {
				fallback = append(fallback, i)
			} else {
				errs[i] = err
			}
			continue
		}
		g := groups[labels[i]]
		if g == nil {
			g = &insertGroup{label: labels[i]}
			groups[labels[i]] = g
			order = append(order, g)
		}
		// Stream order is preserved within a group: valid is ascending.
		g.recIdx = append(g.recIdx, i)
	}

	// One Apply per destination leaf, all leaves in flight at once.
	ops := make([]dht.ApplyOp, len(order))
	for j, g := range order {
		ops[j] = dht.ApplyOp{Key: labelKey(bitlabel.Name(g.label, m)), Fn: ix.groupCommit(g, recs)}
	}
	applyErrs := dht.ApplyBatch(ix.d, ops, ix.opts.MaxInFlight)

	var placeOps []dht.PutOp
	var placeGroups []*insertGroup
	for j, g := range order {
		if applyErrs[j] != nil {
			for _, i := range g.recIdx {
				errs[i] = fmt.Errorf("core: insert apply at %v: %w", g.label, applyErrs[j])
			}
			continue
		}
		if g.err != nil {
			for _, i := range g.recIdx {
				errs[i] = fmt.Errorf("core: insert split at %v: %w", g.label, g.err)
			}
			continue
		}
		if g.stale {
			// The whole bucket moved between lookup and apply.
			ix.invalidateLeaf(g.label)
			fallback = append(fallback, g.recIdx...)
			continue
		}
		fallback = append(fallback, g.staleRecs...)
		// Charge the replay outcome: exactly what the sequential stream
		// would have charged across its intermediate split events, plus one
		// moved record per accepted insert (the record crossing the DHT to
		// its bucket).
		ix.stats.Splits.Add(g.splits)
		ix.stats.RecordsMoved.Add(g.recMoved + int64(len(g.accepted)))
		if len(g.moved) > 0 {
			ix.invalidateLeaf(g.label)
			if ix.cache != nil {
				for _, c := range g.moved {
					ix.cache.add(c.Label)
				}
			}
			for _, c := range g.moved {
				placeOps = append(placeOps, dht.PutOp{
					Key:   labelKey(bitlabel.Name(c.Label, m)),
					Value: NewBucket(c.Label, c.Records),
				})
				placeGroups = append(placeGroups, g)
			}
		}
	}

	// Ship every relocated piece of the whole batch in one PutBatch round.
	// The movement was already charged at the replay split events; placing
	// the final pieces charges only the DHT operations themselves.
	if len(placeOps) > 0 {
		for k, err := range dht.PutBatch(ix.d, placeOps, ix.opts.MaxInFlight) {
			if err == nil {
				continue
			}
			g := placeGroups[k]
			for _, i := range g.accepted {
				if errs[i] == nil {
					errs[i] = fmt.Errorf("core: place bucket: %w", err)
				}
			}
		}
	}

	// Sequential fallback, in stream order.
	sort.Ints(fallback)
	for _, i := range fallback {
		errs[i] = ix.Insert(recs[i])
	}
	return errs
}

// insertGroup is the per-leaf unit of a group commit: the records bound for
// one destination leaf and the outcome of replaying them at the owning peer.
// The outcome fields are reset at the start of every Apply attempt, so a
// retried closure never inherits state from a failed try.
type insertGroup struct {
	label  bitlabel.Label
	recIdx []int // positions in the batch, ascending (stream order)

	stale     bool          // the stored bucket is no longer this leaf
	staleRecs []int         // records the replayed frontier does not cover
	accepted  []int         // records the replay inserted
	moved     []kdtree.Cell // final frontier pieces that must relocate
	splits    int64         // split-piece count, charged as sequential would
	recMoved  int64         // records moved at intermediate split events
	err       error         // split-machinery failure
}

// groupCommit builds the Apply transform for one group: a sequential replay
// of the group's records over a local frontier of cells, seeded with the
// stored bucket. Each record finds its covering frontier cell (the frontier
// partitions the original leaf's region, so exactly one covers it), is
// appended, and may split that cell — the piece named to the cell's key
// replaces it in place (Theorem 5: the stayer keeps the DHT key), the rest
// join the frontier under their own keys. The transform returns the
// frontier's root-slot piece as the bucket to store; the rest are reported
// through the group for batch placement.
func (ix *Index) groupCommit(g *insertGroup, recs []spatial.Record) dht.ApplyFunc {
	m := ix.opts.Dims
	return func(cur any, exists bool) (any, bool) {
		g.stale, g.staleRecs, g.accepted, g.moved = false, nil, nil, nil
		g.splits, g.recMoved, g.err = 0, 0, nil
		if !exists {
			g.stale = true
			return nil, false
		}
		cb, ok := cur.(Bucket)
		if !ok || cb.Label != g.label {
			g.stale = true
			return cur, true
		}
		cell, cellErr := ix.cellOf(cb)
		if cellErr != nil {
			g.err = cellErr
			return cur, true
		}
		frontier := []kdtree.Cell{cell}
		for _, i := range g.recIdx {
			rec := recs[i]
			slot := -1
			for j := range frontier {
				if frontier[j].Region.Contains(rec.Key) {
					slot = j
					break
				}
			}
			if slot < 0 {
				// The record lies outside the leaf this bucket covers: the
				// leaf changed shape since the lookup. Only this record
				// re-enters through the sequential path.
				g.staleRecs = append(g.staleRecs, i)
				continue
			}
			frontier[slot].Records = append(frontier[slot].Records, rec)
			pieces, decideErr := ix.decideSplit(frontier[slot])
			if decideErr != nil {
				g.err = decideErr
				return cur, true
			}
			if len(pieces) > 1 {
				stay, movedPieces, pickErr := pickStayer(pieces, frontier[slot].Label, m)
				if pickErr != nil {
					g.err = pickErr
					return cur, true
				}
				g.splits += int64(len(pieces) - 1)
				for _, p := range movedPieces {
					g.recMoved += int64(p.Load())
				}
				frontier[slot] = stay
				frontier = append(frontier, movedPieces...)
			}
			g.accepted = append(g.accepted, i)
		}
		g.moved = frontier[1:]
		return NewBucket(frontier[0].Label, frontier[0].Records), true
	}
}

// Writer is the group-commit front end for concurrent inserters: callers
// block in Insert while their records coalesce with everyone else's into
// InsertBatch commits. Leadership rotates through a baton channel — whichever
// waiter holds the baton drains the queue (up to Options.WriterBatch records)
// and commits it for the group — so there are no timers and no background
// goroutines: a lone inserter commits immediately, and batches form exactly
// when callers actually overlap.
type Writer struct {
	ix       *Index
	maxBatch int

	mu    sync.Mutex
	queue []*pendingInsert
	// baton holds the single leadership token; taking it makes the caller
	// the committer for the current queue.
	baton chan struct{}
}

// pendingInsert is one queued record and the channel its error comes back on.
type pendingInsert struct {
	rec  spatial.Record
	done chan error
}

// Writer returns the index's group-commit insert engine, created on first
// use. The writer is shared: every goroutine calling Writer().Insert
// participates in the same commit group. The sequential Insert method
// remains available alongside it.
func (ix *Index) Writer() *Writer {
	ix.writerOnce.Do(func() {
		ix.writer = &Writer{
			ix:       ix,
			maxBatch: ix.opts.WriterBatch,
			baton:    make(chan struct{}, 1),
		}
		ix.writer.baton <- struct{}{}
	})
	return ix.writer
}

// Insert adds one record through the group-commit engine, blocking until its
// commit completes. Semantics match Index.Insert: the same errors, the same
// split behaviour, the same maintenance accounting — only the round trips
// are shared with concurrently inserting goroutines.
func (w *Writer) Insert(rec spatial.Record) error {
	p := &pendingInsert{rec: rec, done: make(chan error, 1)}
	w.mu.Lock()
	w.queue = append(w.queue, p)
	w.mu.Unlock()
	for {
		select {
		case err := <-p.done:
			return err
		case <-w.baton:
			w.commit()
			w.baton <- struct{}{}
		}
	}
}

// commit drains up to maxBatch queued inserts and runs them as one
// InsertBatch, delivering each waiter its positional error. Called only by
// the baton holder.
func (w *Writer) commit() {
	w.mu.Lock()
	n := len(w.queue)
	if n > w.maxBatch {
		n = w.maxBatch
	}
	batch := w.queue[:n:n]
	w.queue = append([]*pendingInsert(nil), w.queue[n:]...)
	w.mu.Unlock()
	if n == 0 {
		return
	}
	recs := make([]spatial.Record, n)
	for i, p := range batch {
		recs[i] = p.rec
	}
	errs := w.ix.InsertBatch(recs)
	for i, p := range batch {
		p.done <- errs[i]
	}
}
