package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"mlight/internal/bitlabel"
	"mlight/internal/dht"
	"mlight/internal/spatial"
)

// This file pins the concurrent execution engine to the recursive reference
// implementation it replaced (kept below verbatim, renamed old*). On a
// static index the two must agree:
//
//   - Records: identical, in identical order, for every h — the engine's
//     execution-tree DFS reproduces the recursion's depth-first order.
//   - Rounds: identical for every h — a batch barrier corresponds exactly
//     to one level of the recursion's parallel-step accounting.
//   - Lookups: identical for every h. On a speculative overshoot the
//     engine schedules all intermediate-ancestor candidates into one round
//     but early-exits on the first hit exactly like the reference's
//     sequential scan, and charges the deterministic sequential cost (see
//     coverGroup/adjudicate), so no over-probing is ever charged.

// oldQueryResult mirrors what the reference returns for comparison.
func runOldRangeQuery(ix *Index, q spatial.Rect, ctx queryCtx) (*QueryResult, error) {
	m := ix.opts.Dims
	if q.Dim() != m {
		return nil, fmt.Errorf("%w: query has %d dims, index has %d", ErrDimension, q.Dim(), m)
	}
	if _, err := spatial.NewRect(q.Lo, q.Hi); err != nil {
		return nil, fmt.Errorf("core: invalid query rectangle: %w", err)
	}
	res := &QueryResult{}
	lca, err := spatial.LCALabel(q, m, ix.opts.MaxDepth)
	if err != nil {
		return nil, err
	}
	b, found, err := ix.getBucket(bitlabel.Name(lca, m), nil)
	res.Lookups++
	if err != nil {
		return nil, err
	}
	if !found {
		leaf, trace, err := ix.LookupTraced(clampPoint(q.Lo))
		if err != nil {
			return nil, err
		}
		res.Lookups += trace.Probes
		res.Rounds = 1 + trace.Probes
		res.Records = filterRecords(leaf, q, ctx.shape)
		return res, nil
	}
	recs, rounds, lookups, err := oldProcess(ix, q, lca, b, ctx)
	if err != nil {
		return nil, err
	}
	res.Records = append(res.Records, recs...)
	res.Lookups += lookups
	res.Rounds = 1 + rounds
	return res, nil
}

func oldProcess(ix *Index, q spatial.Rect, beta bitlabel.Label, b Bucket, ctx queryCtx) (records []spatial.Record, rounds, lookups int, err error) {
	m := ix.opts.Dims
	records = filterRecords(b, q, ctx.shape)
	leafRegion, err := spatial.RegionOf(b.Label, m)
	if err != nil {
		return nil, 0, 0, err
	}
	if leafRegion.Covers(q) {
		return records, 0, 0, nil
	}
	local, err := bitlabel.NewLocalTree(b.Label, m)
	if err != nil {
		return nil, 0, 0, err
	}
	for _, branch := range local.BranchNodesBelow(beta) {
		g, regionErr := spatial.RegionOf(branch, m)
		if regionErr != nil {
			return nil, 0, 0, regionErr
		}
		sub, overlaps := g.Intersect(q)
		if !overlaps {
			continue
		}
		if ctx.shape != nil && !ctx.shape.IntersectsRect(sub) {
			continue
		}
		recs, r, lk, subErr := oldSubquery(ix, sub, branch, ctx)
		if subErr != nil {
			return nil, 0, 0, subErr
		}
		records = append(records, recs...)
		lookups += lk
		if r > rounds {
			rounds = r
		}
	}
	return records, rounds, lookups, nil
}

func oldSubquery(ix *Index, q spatial.Rect, beta bitlabel.Label, ctx queryCtx) (records []spatial.Record, rounds, lookups int, err error) {
	pieces := []piece{{node: beta, base: beta, q: q}}
	if ctx.h > 1 {
		pieces = ix.speculate(beta, q, ctx)
	}
	for _, p := range pieces {
		recs, r, lk, pieceErr := oldResolvePiece(ix, p, ctx)
		if pieceErr != nil {
			return nil, 0, 0, pieceErr
		}
		records = append(records, recs...)
		lookups += lk
		if r > rounds {
			rounds = r
		}
	}
	return records, rounds, lookups, nil
}

func oldResolvePiece(ix *Index, p piece, ctx queryCtx) (records []spatial.Record, rounds, lookups int, err error) {
	m := ix.opts.Dims
	b, found, err := ix.getBucket(bitlabel.Name(p.node, m), nil)
	lookups = 1
	rounds = 1
	if err != nil {
		return nil, 0, 0, err
	}
	if !found {
		leaf, extraLookups, extraRounds, fallbackErr := oldCoveringLeaf(ix, p)
		if fallbackErr != nil {
			return nil, 0, 0, fallbackErr
		}
		lookups += extraLookups
		rounds += extraRounds
		return filterRecords(leaf, p.q, ctx.shape), rounds, lookups, nil
	}
	if b.Label == p.node {
		return filterRecords(b, p.q, ctx.shape), rounds, lookups, nil
	}
	recs, r, lk, err := oldProcess(ix, p.q, p.node, b, ctx)
	if err != nil {
		return nil, 0, 0, err
	}
	return recs, rounds + r, lookups + lk, nil
}

func oldCoveringLeaf(ix *Index, p piece) (Bucket, int, int, error) {
	m := ix.opts.Dims
	probed := map[bitlabel.Label]bool{bitlabel.Name(p.node, m): true}
	lookups := 0
	for j := p.node.Len() - 1; j >= p.base.Len(); j-- {
		cand := p.node.Prefix(j)
		name := bitlabel.Name(cand, m)
		if probed[name] {
			continue
		}
		probed[name] = true
		b, found, err := ix.getBucket(name, nil)
		lookups++
		if err != nil {
			return Bucket{}, 0, 0, err
		}
		if found && b.Label.IsPrefixOf(p.node) {
			return b, lookups, 1, nil
		}
	}
	leaf, trace, err := ix.LookupTraced(clampPoint(p.q.Lo))
	if err != nil {
		return Bucket{}, 0, 0, err
	}
	return leaf, lookups + trace.Probes, 1 + trace.Probes, nil
}

func equivIndex(t *testing.T, opts Options, n int, seed int64) *Index {
	t.Helper()
	ix, err := New(dht.MustNewLocal(16), opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	m := opts.Dims
	if m == 0 {
		m = 2
	}
	for i := 0; i < n; i++ {
		p := make(spatial.Point, m)
		for d := range p {
			p[d] = rng.Float64()
		}
		if err := ix.Insert(spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

func sameRecords(a, b []spatial.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Data != b[i].Data || !samePoint(a[i].Key, b[i].Key) {
			return false
		}
	}
	return true
}

// TestEngineMatchesRecursiveReference compares the engine against the
// recursive reference over many random rectangles and lookaheads.
func TestEngineMatchesRecursiveReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
		n    int
	}{
		{"2d-threshold", Options{ThetaSplit: 10, ThetaMerge: 5}, 1200},
		{"3d-threshold", Options{Dims: 3, ThetaSplit: 8, ThetaMerge: 4}, 900},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ix := equivIndex(t, tc.opts, tc.n, 42)
			m := ix.opts.Dims
			rng := rand.New(rand.NewSource(7))
			queries := []spatial.Rect{wholeSpace(m)}
			for i := 0; i < 40; i++ {
				queries = append(queries, randomRect(rng, m))
			}
			for _, h := range []int{1, 2, 4, 8} {
				ctx := queryCtx{h: h}
				for qi, q := range queries {
					want, err := runOldRangeQuery(ix, q, ctx)
					if err != nil {
						t.Fatalf("h=%d q#%d reference: %v", h, qi, err)
					}
					got, err := ix.rangeQuery(q, ctx)
					if err != nil {
						t.Fatalf("h=%d q#%d engine: %v", h, qi, err)
					}
					if !sameRecords(got.Records, want.Records) {
						t.Fatalf("h=%d q#%d %v: engine returned %d records, reference %d (or ordering differs)",
							h, qi, q, len(got.Records), len(want.Records))
					}
					if got.Rounds != want.Rounds {
						t.Errorf("h=%d q#%d %v: Rounds = %d, reference %d", h, qi, q, got.Rounds, want.Rounds)
					}
					if got.Lookups != want.Lookups {
						t.Errorf("h=%d q#%d %v: Lookups = %d, reference %d", h, qi, q, got.Lookups, want.Lookups)
					}
				}
			}
		})
	}
}

// TestEngineShapeMatchesReference repeats the comparison for shape queries,
// exercising the shape-pruning paths of both implementations.
func TestEngineShapeMatchesReference(t *testing.T) {
	ix := equivIndex(t, Options{ThetaSplit: 10, ThetaMerge: 5}, 1000, 11)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 15; i++ {
		c := spatial.Circle{
			Center: spatial.Point{rng.Float64(), rng.Float64()},
			Radius: 0.05 + 0.3*rng.Float64(),
		}
		bound := c.BoundingBox()
		q := spatial.Rect{Lo: clampPoint(bound.Lo), Hi: clampPoint(bound.Hi)}
		for _, h := range []int{1, 4} {
			ctx := queryCtx{h: h, shape: c}
			want, err := runOldRangeQuery(ix, q, ctx)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ix.rangeQuery(q, ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !sameRecords(got.Records, want.Records) {
				t.Fatalf("h=%d circle #%d: engine %d records, reference %d", h, i, len(got.Records), len(want.Records))
			}
			if got.Rounds != want.Rounds {
				t.Errorf("h=%d circle #%d: Rounds = %d, reference %d", h, i, got.Rounds, want.Rounds)
			}
		}
	}
}

// TestSequentialConcurrentIdenticalAccounting pins the engine's core
// guarantee: MaxInFlight bounds only how probes overlap in time, never what
// is probed, so sequential (MaxInFlight = 1) and concurrent execution return
// identical Records, Lookups, and Rounds.
func TestSequentialConcurrentIdenticalAccounting(t *testing.T) {
	seq := equivIndex(t, Options{ThetaSplit: 10, ThetaMerge: 5, MaxInFlight: 1}, 1200, 42)
	conc := equivIndex(t, Options{ThetaSplit: 10, ThetaMerge: 5, MaxInFlight: 16}, 1200, 42)
	m := 2
	rng := rand.New(rand.NewSource(9))
	queries := []spatial.Rect{wholeSpace(m)}
	for i := 0; i < 30; i++ {
		queries = append(queries, randomRect(rng, m))
	}
	for _, h := range []int{1, 2, 4} {
		for qi, q := range queries {
			a, err := seq.RangeQueryParallel(q, h)
			if err != nil {
				t.Fatal(err)
			}
			b, err := conc.RangeQueryParallel(q, h)
			if err != nil {
				t.Fatal(err)
			}
			if !sameRecords(a.Records, b.Records) {
				t.Fatalf("h=%d q#%d: sequential %d records, concurrent %d (or ordering differs)",
					h, qi, len(a.Records), len(b.Records))
			}
			if a.Lookups != b.Lookups || a.Rounds != b.Rounds {
				t.Errorf("h=%d q#%d %v: sequential (L=%d R=%d) vs concurrent (L=%d R=%d)",
					h, qi, q, a.Lookups, a.Rounds, b.Lookups, b.Rounds)
			}
		}
	}
}

// sortedByData returns a copy of recs ordered by Data. Record data strings
// are unique in these tests ("r%d"), so the order is total and the sorted
// slices compare positionally.
func sortedByData(recs []spatial.Record) []spatial.Record {
	out := append([]spatial.Record(nil), recs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Data < out[j].Data })
	return out
}

// TestMulticastMatchesBaseline pins the prefix-multicast engine to the
// round-synchronous baseline it accelerates: for every query the two must
// return the same record set. Piece scheduling differs (the multicast split
// emits the prefix-tree frontier in breadth-first order, the baseline
// recursion descends branch by branch), so only the set — not the ordering —
// is common; the multicast engine's own ordering and accounting must in turn
// be exactly reproducible run over run, which the second half asserts.
func TestMulticastMatchesBaseline(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
		n    int
	}{
		{"2d-threshold", Options{ThetaSplit: 10, ThetaMerge: 5}, 1200},
		{"3d-threshold", Options{Dims: 3, ThetaSplit: 8, ThetaMerge: 4}, 900},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ix := equivIndex(t, tc.opts, tc.n, 42)
			m := ix.opts.Dims
			rng := rand.New(rand.NewSource(19))
			queries := []spatial.Rect{wholeSpace(m)}
			for i := 0; i < 40; i++ {
				queries = append(queries, randomRect(rng, m))
			}
			for qi, q := range queries {
				base, err := ix.rangeQuery(q, queryCtx{h: 1})
				if err != nil {
					t.Fatalf("q#%d baseline: %v", qi, err)
				}
				mc, err := ix.rangeQuery(q, queryCtx{h: 1, multicast: true})
				if err != nil {
					t.Fatalf("q#%d multicast: %v", qi, err)
				}
				if !sameRecords(sortedByData(mc.Records), sortedByData(base.Records)) {
					t.Fatalf("q#%d %v: multicast returned %d records, baseline %d (or sets differ)",
						qi, q, len(mc.Records), len(base.Records))
				}
				// Determinism: the multicast engine replays exactly — same
				// records in the same order, same Lookups, same Rounds.
				again, err := ix.rangeQuery(q, queryCtx{h: 1, multicast: true})
				if err != nil {
					t.Fatalf("q#%d multicast replay: %v", qi, err)
				}
				if !sameRecords(again.Records, mc.Records) {
					t.Fatalf("q#%d %v: multicast replay changed records/ordering", qi, q)
				}
				if again.Lookups != mc.Lookups || again.Rounds != mc.Rounds {
					t.Errorf("q#%d %v: multicast replay (L=%d R=%d) vs first run (L=%d R=%d)",
						qi, q, again.Lookups, again.Rounds, mc.Lookups, mc.Rounds)
				}
			}
			if splits := ix.Stats().MulticastSplits; splits == 0 {
				t.Error("multicast queries ran but MulticastSplits stayed 0")
			}
		})
	}
}

// TestMulticastShapeMatchesBaseline repeats the set-equivalence check for
// shape queries, exercising the multicast split's shape-pruning branch.
func TestMulticastShapeMatchesBaseline(t *testing.T) {
	ix := equivIndex(t, Options{ThetaSplit: 10, ThetaMerge: 5}, 1000, 11)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		c := spatial.Circle{
			Center: spatial.Point{rng.Float64(), rng.Float64()},
			Radius: 0.05 + 0.3*rng.Float64(),
		}
		bound := c.BoundingBox()
		q := spatial.Rect{Lo: clampPoint(bound.Lo), Hi: clampPoint(bound.Hi)}
		base, err := ix.rangeQuery(q, queryCtx{h: 1, shape: c})
		if err != nil {
			t.Fatal(err)
		}
		mc, err := ix.rangeQuery(q, queryCtx{h: 1, shape: c, multicast: true})
		if err != nil {
			t.Fatal(err)
		}
		if !sameRecords(sortedByData(mc.Records), sortedByData(base.Records)) {
			t.Fatalf("circle #%d: multicast %d records, baseline %d (or sets differ)",
				i, len(mc.Records), len(base.Records))
		}
	}
}

// TestMulticastSequentialConcurrentIdenticalAccounting extends the engine's
// core guarantee to the multicast path: MaxInFlight bounds only how probes
// overlap in time, so sequential and concurrent multicast execution return
// identical Records, Lookups, and Rounds.
func TestMulticastSequentialConcurrentIdenticalAccounting(t *testing.T) {
	seq := equivIndex(t, Options{ThetaSplit: 10, ThetaMerge: 5, MaxInFlight: 1, Multicast: true}, 1200, 42)
	conc := equivIndex(t, Options{ThetaSplit: 10, ThetaMerge: 5, MaxInFlight: 16, Multicast: true}, 1200, 42)
	m := 2
	rng := rand.New(rand.NewSource(13))
	queries := []spatial.Rect{wholeSpace(m)}
	for i := 0; i < 25; i++ {
		queries = append(queries, randomRect(rng, m))
	}
	for qi, q := range queries {
		a, err := seq.RangeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := conc.RangeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRecords(a.Records, b.Records) {
			t.Fatalf("q#%d: sequential %d records, concurrent %d (or ordering differs)",
				qi, len(a.Records), len(b.Records))
		}
		if a.Lookups != b.Lookups || a.Rounds != b.Rounds {
			t.Errorf("q#%d %v: sequential (L=%d R=%d) vs concurrent (L=%d R=%d)",
				qi, q, a.Lookups, a.Rounds, b.Lookups, b.Rounds)
		}
	}
}

func wholeSpace(m int) spatial.Rect {
	lo := make(spatial.Point, m)
	hi := make(spatial.Point, m)
	for d := 0; d < m; d++ {
		hi[d] = 1
	}
	return spatial.Rect{Lo: lo, Hi: hi}
}
