package core

import (
	"fmt"
	"math/rand"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/spatial"
)

// TestBulkLoadMatchesIncrementalThreshold: for the threshold strategy, bulk
// loading yields exactly the tree progressive insertion builds.
func TestBulkLoadMatchesIncrementalThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	records := make([]spatial.Record, 3000)
	for i := range records {
		records[i] = spatial.Record{
			Key:  spatial.Point{rng.Float64(), rng.Float64()},
			Data: fmt.Sprintf("r%d", i),
		}
	}
	opts := Options{ThetaSplit: 20, ThetaMerge: 10, MaxDepth: 24}
	bulk, err := New(dht.MustNewLocal(16), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := bulk.BulkLoad(records); err != nil {
		t.Fatal(err)
	}
	incr, err := New(dht.MustNewLocal(16), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range records {
		if err := incr.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	bulkBuckets, err := bulk.Buckets()
	if err != nil {
		t.Fatal(err)
	}
	incrBuckets, err := incr.Buckets()
	if err != nil {
		t.Fatal(err)
	}
	if len(bulkBuckets) != len(incrBuckets) {
		t.Fatalf("bulk %d buckets, incremental %d", len(bulkBuckets), len(incrBuckets))
	}
	byLabel := map[string]Bucket{}
	for _, b := range incrBuckets {
		byLabel[b.Label.String()] = b
	}
	for _, b := range bulkBuckets {
		other, ok := byLabel[b.Label.String()]
		if !ok {
			t.Fatalf("bulk bucket %v missing from incremental tree", b.Label)
		}
		if !sameRecordSet(b.Records(), other.Records()) {
			t.Fatalf("bucket %v contents differ", b.Label)
		}
	}
	// Bulk loading is far cheaper in DHT operations.
	bs, is := bulk.Stats(), incr.Stats()
	if bs.DHTLookups*3 > is.DHTLookups {
		t.Errorf("bulk %d lookups not ≪ incremental %d", bs.DHTLookups, is.DHTLookups)
	}
	// Both moved every record exactly... bulk moves each record once.
	if bs.RecordsMoved != int64(len(records)) {
		t.Errorf("bulk moved %d records, want %d", bs.RecordsMoved, len(records))
	}
}

func TestBulkLoadDataAwareQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	records := make([]spatial.Record, 2000)
	for i := range records {
		records[i] = spatial.Record{
			Key:  spatial.Point{clamp01(0.3 + rng.NormFloat64()*0.1), clamp01(0.6 + rng.NormFloat64()*0.1)},
			Data: fmt.Sprintf("r%d", i),
		}
	}
	ix, err := New(dht.MustNewLocal(16), Options{
		Strategy: SplitDataAware, Epsilon: 25, ThetaSplit: 40, ThetaMerge: 12, MaxDepth: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.BulkLoad(records); err != nil {
		t.Fatal(err)
	}
	if n, err := ix.Size(); err != nil || n != len(records) {
		t.Fatalf("Size = %d, %v", n, err)
	}
	for trial := 0; trial < 40; trial++ {
		q := randomRect(rng, 2)
		want := 0
		for _, r := range records {
			if q.Contains(r.Key) {
				want++
			}
		}
		res, err := ix.RangeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != want {
			t.Fatalf("RangeQuery(%v) = %d, scan %d", q, len(res.Records), want)
		}
	}
	// Inserts and deletes keep working on the bulk-loaded structure.
	extra := spatial.Record{Key: spatial.Point{0.9, 0.1}, Data: "extra"}
	if err := ix.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if ok, err := ix.Delete(extra.Key, extra.Data); err != nil || !ok {
		t.Fatalf("delete after bulk load: %v, %v", ok, err)
	}
}

func TestBulkLoadValidation(t *testing.T) {
	ix := newIndex(t, Options{})
	if err := ix.BulkLoad([]spatial.Record{{Key: spatial.Point{0.5}}}); err == nil {
		t.Error("wrong-dim record accepted")
	}
	if err := ix.BulkLoad([]spatial.Record{{Key: spatial.Point{2, 2}}}); err == nil {
		t.Error("out-of-cube record accepted")
	}
	if err := ix.Insert(spatial.Record{Key: spatial.Point{0.5, 0.5}}); err != nil {
		t.Fatal(err)
	}
	if err := ix.BulkLoad([]spatial.Record{{Key: spatial.Point{0.1, 0.1}}}); err == nil {
		t.Error("BulkLoad on non-empty index accepted")
	}
	// Empty load on an empty index is a no-op.
	fresh := newIndex(t, Options{})
	if err := fresh.BulkLoad(nil); err != nil {
		t.Errorf("empty BulkLoad: %v", err)
	}
}
