package core

import (
	"errors"
	"fmt"
	"time"

	"mlight/internal/bitlabel"
	"mlight/internal/dht"
	"mlight/internal/kdtree"
	"mlight/internal/spatial"
)

// Insert adds a record to the index (paper §4): a lookup locates the leaf
// bucket, the record is applied at the owning peer, and if the bucket's
// load now warrants it the peer splits locally. Per Theorem 5 exactly one
// piece of a split keeps the old DHT key, so only the other pieces are
// re-assigned with DHT puts — the incremental maintenance that halves
// m-LIGHT's split cost relative to PHT.
func (ix *Index) Insert(rec spatial.Record) error {
	m := ix.opts.Dims
	if rec.Key.Dim() != m {
		return fmt.Errorf("%w: record has %d dims, index has %d", ErrDimension, rec.Key.Dim(), m)
	}
	if !rec.Key.Valid() {
		return fmt.Errorf("core: record key %v outside the unit cube", rec.Key)
	}
	const maxAttempts = 12
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			// Back off briefly: a concurrent split's relocated buckets
			// become visible within a few put operations. The sleeper is
			// injectable (Options.Sleep) so tests stay deterministic.
			backoff := time.Duration(1<<uint(min(attempt, 6))) * 25 * time.Microsecond
			ix.opts.Sleep(backoff)
		}
		b, err := ix.Lookup(rec.Key)
		if errors.Is(err, ErrNotFound) {
			// A concurrent split is mid-flight: the bucket moving to its
			// new key is not yet visible. Retry from a fresh lookup.
			lastErr = err
			continue
		}
		if err != nil {
			return err
		}
		moved, stale, err := ix.applyInsert(b.Label, rec)
		if err != nil {
			return err
		}
		if stale {
			// The bucket split or merged between lookup and apply;
			// retry from a fresh lookup.
			ix.invalidateLeaf(b.Label)
			continue
		}
		if len(moved) > 0 {
			// The leaf split: the old label no longer names a leaf, and the
			// relocated pieces are fresh leaves this client just observed.
			ix.invalidateLeaf(b.Label)
			if ix.cache != nil {
				for _, c := range moved {
					ix.cache.add(c.Label)
				}
			}
		}
		// The inserted record itself crossed the DHT to its bucket.
		ix.stats.RecordsMoved.Inc()
		if len(moved) > 0 {
			if err := ix.placeCells(moved); err != nil {
				return err
			}
		}
		return nil
	}
	if lastErr != nil {
		return fmt.Errorf("core: insert %v: retries exhausted: %w", rec.Key, lastErr)
	}
	return fmt.Errorf("core: insert %v: too many conflicting bucket changes", rec.Key)
}

// applyInsert runs at the owning peer: it appends the record to the bucket
// stored under fmd(label), decides whether to split, keeps the piece named
// to the existing key in place, and reports the pieces that must move.
func (ix *Index) applyInsert(label bitlabel.Label, rec spatial.Record) (moved []kdtree.Cell, stale bool, err error) {
	m := ix.opts.Dims
	key := labelKey(bitlabel.Name(label, m))
	var splitErr error
	applyErr := ix.d.Apply(key, func(cur any, exists bool) (any, bool) {
		if !exists {
			stale = true
			return nil, false
		}
		cb, ok := cur.(Bucket)
		if !ok || cb.Label != label {
			stale = true
			return cur, true
		}
		g, regionErr := spatial.RegionOf(cb.Label, m)
		if regionErr != nil {
			splitErr = regionErr
			return cur, true
		}
		if !g.Contains(rec.Key) {
			// The leaf changed shape since the lookup.
			stale = true
			return cur, true
		}
		// A plain arena append is safe without copying the whole bucket:
		// readers holding the previous Bucket value see their own shorter
		// arenas and never index past them, and the kd-tree split functions
		// build fresh slices rather than mutating their input. Shared-capacity
		// growth is therefore invisible to every concurrent observer.
		nb := cb.Append(rec)
		if ix.underSplitBound(nb.Load(), label) {
			// The common case: the bucket stays a leaf. No record
			// materialization, no split machinery — amortized O(1).
			return nb, true
		}
		cell := kdtree.Cell{Label: cb.Label, Region: g, Records: nb.Records()}
		pieces, decideErr := ix.decideSplit(cell)
		if decideErr != nil {
			splitErr = decideErr
			return cur, true
		}
		if len(pieces) <= 1 {
			return nb, true
		}
		stay, rest, pickErr := pickStayer(pieces, label, m)
		if pickErr != nil {
			splitErr = pickErr
			return cur, true
		}
		moved = rest
		ix.stats.Splits.Add(int64(len(pieces) - 1))
		return NewBucket(stay.Label, stay.Records), true
	})
	if applyErr != nil {
		return nil, false, fmt.Errorf("core: insert apply at %v: %w", label, applyErr)
	}
	if splitErr != nil {
		return nil, false, fmt.Errorf("core: insert split at %v: %w", label, splitErr)
	}
	return moved, stale, nil
}

// underSplitBound reports whether a bucket at the given load cannot split
// under the configured strategy — the fast-path check that lets the insert
// path skip record materialization entirely. It mirrors decideSplit's
// no-split preconditions exactly; unknown strategies return false so
// decideSplit gets to surface its error.
func (ix *Index) underSplitBound(load int, label bitlabel.Label) bool {
	switch ix.opts.Strategy {
	case SplitThreshold:
		return load <= ix.opts.ThetaSplit || ix.remainingDepth(label) <= 0
	case SplitDataAware:
		return load <= ix.opts.Epsilon || ix.remainingDepth(label) <= 0
	}
	return false
}

// decideSplit returns the final leaf frontier for a (possibly overfull)
// cell under the configured strategy. A single-element result means no
// split.
func (ix *Index) decideSplit(cell kdtree.Cell) ([]kdtree.Cell, error) {
	depth := ix.remainingDepth(cell.Label)
	switch ix.opts.Strategy {
	case SplitThreshold:
		if cell.Load() <= ix.opts.ThetaSplit || depth <= 0 {
			return []kdtree.Cell{cell}, nil
		}
		return kdtree.ThresholdSplit(cell, ix.opts.Dims, ix.opts.ThetaSplit, depth)
	case SplitDataAware:
		if cell.Load() <= ix.opts.Epsilon || depth <= 0 {
			return []kdtree.Cell{cell}, nil
		}
		cells, improved, err := kdtree.OptimalSplit(cell, ix.opts.Dims, ix.opts.Epsilon, depth)
		if err != nil {
			return nil, err
		}
		if !improved {
			return []kdtree.Cell{cell}, nil
		}
		return cells, nil
	default:
		return nil, fmt.Errorf("core: unknown split strategy %v", ix.opts.Strategy)
	}
}

// pickStayer finds the unique frontier piece whose name equals the split
// leaf's own name — by the subtree naming bijection exactly one exists —
// so it keeps the old key and peer, while the rest move.
func pickStayer(pieces []kdtree.Cell, oldLabel bitlabel.Label, m int) (stay kdtree.Cell, moved []kdtree.Cell, err error) {
	oldName := bitlabel.Name(oldLabel, m)
	found := false
	for _, p := range pieces {
		if bitlabel.Name(p.Label, m) == oldName {
			if found {
				return kdtree.Cell{}, nil, fmt.Errorf("core: two pieces named %v splitting %v", oldName, oldLabel)
			}
			stay = p
			found = true
			continue
		}
		moved = append(moved, p)
	}
	if !found {
		return kdtree.Cell{}, nil, fmt.Errorf("core: no piece named %v splitting %v", oldName, oldLabel)
	}
	return stay, moved, nil
}

// placeCells writes relocated buckets to their DHT keys in one PutBatch
// round — the destinations are independent leaves, so the transfers overlap
// up to Options.MaxInFlight instead of paying one blocking round trip per
// bucket — charging the data movement the transfers cost. Empty cells still
// become buckets (the bijection requires a bucket per leaf); they move no
// records. The per-bucket logical charge is unchanged: one DHT operation and
// Load() moved records per placed bucket.
func (ix *Index) placeCells(cells []kdtree.Cell) error {
	if len(cells) == 0 {
		return nil
	}
	m := ix.opts.Dims
	ops := make([]dht.PutOp, len(cells))
	for i, c := range cells {
		ops[i] = dht.PutOp{
			Key:   labelKey(bitlabel.Name(c.Label, m)),
			Value: NewBucket(c.Label, c.Records),
		}
	}
	for i, err := range dht.PutBatch(ix.d, ops, ix.opts.MaxInFlight) {
		if err != nil {
			return fmt.Errorf("core: place bucket %v: %w", cells[i].Label, err)
		}
		ix.stats.RecordsMoved.Add(int64(cells[i].Load()))
	}
	return nil
}

// Delete removes one record matching key (and Data when non-empty). It
// reports whether a record was removed, merging underfull sibling leaves
// afterwards (§4.1): the merged bucket keeps the key one child already
// occupies, so only the other child's records cross the DHT.
func (ix *Index) Delete(key spatial.Point, data string) (bool, error) {
	m := ix.opts.Dims
	if key.Dim() != m {
		return false, fmt.Errorf("%w: key has %d dims, index has %d", ErrDimension, key.Dim(), m)
	}
	b, err := ix.Lookup(key)
	if err != nil {
		return false, err
	}
	removed := false
	var after Bucket
	dhtKey := labelKey(bitlabel.Name(b.Label, m))
	applyErr := ix.d.Apply(dhtKey, func(cur any, exists bool) (any, bool) {
		if !exists {
			return nil, false
		}
		cb, ok := cur.(Bucket)
		if !ok || cb.Label != b.Label {
			return cur, true
		}
		for i, n := 0, cb.Load(); i < n; i++ {
			if samePoint(cb.KeyAt(i), key) && (data == "" || cb.DataAt(i) == data) {
				// Pack fresh arenas — an in-place shift would mutate storage
				// concurrent readers share. One exact-size repack.
				records := make([]spatial.Record, 0, n-1)
				for j := 0; j < n; j++ {
					if j != i {
						records = append(records, cb.RecordAt(j))
					}
				}
				cb = NewBucket(cb.Label, records)
				removed = true
				break
			}
		}
		after = cb
		return cb, true
	})
	if applyErr != nil {
		return false, fmt.Errorf("core: delete apply at %v: %w", b.Label, applyErr)
	}
	if !removed {
		return false, nil
	}
	if err := ix.mergeUpwards(after); err != nil {
		return true, err
	}
	return true, nil
}

// mergeUpwards merges the bucket with its sibling leaf while the pair
// jointly holds fewer than θmerge records, cascading towards the root.
func (ix *Index) mergeUpwards(b Bucket) error {
	m := ix.opts.Dims
	for b.Label != bitlabel.Root(m) {
		sibLabel := b.Label.Sibling()
		sib, found, err := ix.getBucket(bitlabel.Name(sibLabel, m), nil)
		if err != nil {
			return err
		}
		if !found || sib.Label != sibLabel {
			// The sibling is an internal node (its key hosts some deeper
			// corner leaf) or missing: no merge possible.
			return nil
		}
		if b.Load()+sib.Load() >= ix.opts.ThetaMerge {
			return nil
		}
		parent := b.Label.Parent()
		parentName := bitlabel.Name(parent, m)
		merged := NewBucket(parent, append(b.Records(), sib.Records()...))
		if bitlabel.Name(b.Label, m) == parentName {
			// We already sit at the merged bucket's key: rewrite locally,
			// and pull the sibling's bucket across the DHT.
			if err := ix.raw.Put(labelKey(parentName), merged); err != nil {
				return fmt.Errorf("core: merge rewrite %v: %w", parent, err)
			}
			if err := ix.d.Remove(labelKey(bitlabel.Name(sibLabel, m))); err != nil {
				return fmt.Errorf("core: merge remove %v: %w", sibLabel, err)
			}
			ix.stats.RecordsMoved.Add(int64(sib.Load()))
		} else {
			// The sibling sits at the merged key: ship our records there
			// and retire our own bucket locally.
			if err := ix.d.Put(labelKey(parentName), merged); err != nil {
				return fmt.Errorf("core: merge write %v: %w", parent, err)
			}
			ix.stats.RecordsMoved.Add(int64(b.Load()))
			if err := ix.raw.Remove(labelKey(bitlabel.Name(b.Label, m))); err != nil {
				return fmt.Errorf("core: merge retire %v: %w", b.Label, err)
			}
		}
		ix.stats.Merges.Inc()
		// Both children are gone; the parent is the leaf this client just
		// wrote.
		ix.invalidateLeaf(b.Label)
		ix.invalidateLeaf(sibLabel)
		ix.cacheLeaf(merged)
		b = merged
	}
	return nil
}
