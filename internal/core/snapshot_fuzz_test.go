package core

import (
	"bytes"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/spatial"
)

// FuzzRestoreInto: arbitrary bytes never panic the restorer; anything that
// restores successfully yields a structurally valid, queryable index.
func FuzzRestoreInto(f *testing.F) {
	seedIx, err := New(dht.MustNewLocal(2), Options{ThetaSplit: 4, ThetaMerge: 2})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p := spatial.Point{float64(i%5) / 5, float64(i/5) / 4}
		if err := seedIx.Insert(spatial.Record{Key: p, Data: "s"}); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := seedIx.Snapshot(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("MLIGHTSNAP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := RestoreInto(dht.MustNewLocal(2), bytes.NewReader(data), Options{})
		if err != nil {
			return
		}
		// Whatever restored must answer a whole-space query sanely, in its
		// own dimensionality.
		m := ix.Dims()
		lo := make(spatial.Point, m)
		hi := make(spatial.Point, m)
		for d := range hi {
			hi[d] = 1
		}
		res, err := ix.RangeQuery(spatial.Rect{Lo: lo, Hi: hi})
		if err != nil {
			t.Fatalf("restored index broken: %v", err)
		}
		n, err := ix.Size()
		if err != nil || n != len(res.Records) {
			t.Fatalf("Size %d vs whole-space query %d (%v)", n, len(res.Records), err)
		}
		// Columnar round trip: every restored bucket's record set must
		// survive re-packing into fresh arenas unchanged.
		buckets, err := ix.Buckets()
		if err != nil {
			t.Fatalf("restored index not enumerable: %v", err)
		}
		for _, b := range buckets {
			repacked := NewBucket(b.Label, b.Records())
			if repacked.Load() != b.Load() || !sameRecordSet(repacked.Records(), b.Records()) {
				t.Fatalf("bucket %v does not round-trip through columnar repack", b.Label)
			}
		}
	})
}
