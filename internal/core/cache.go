package core

import (
	"container/list"
	"sync"

	"mlight/internal/bitlabel"
)

// leafCache is a client-side LRU of recently resolved leaf labels — the
// lightweight lookup cache of Salah et al. (PAPERS.md) adapted to m-LIGHT's
// label space, and the same trick PHT's original implementation plays with
// its prefix cache. A cached leaf λ seeds the §5 binary search: the first
// probe targets fmd(λ) directly, so a repeat lookup on an unchanged index
// costs a single verification probe instead of O(log D).
//
// The cache stores only labels, never bucket contents, so it can suggest a
// wrong starting point after a split or merge but can never serve stale
// records: the verification probe re-reads the bucket, and a mismatch
// (missing bucket, or a different label at the key) evicts the entry and
// falls back to the standard binary search bounds. Structural operations
// the client itself performs (splits in Insert, merges in Delete)
// invalidate eagerly; restructuring by other clients is caught lazily by
// the verification probe.
//
// All methods are safe for concurrent use.
type leafCache struct {
	mu      sync.Mutex
	cap     int
	entries map[bitlabel.Label]*list.Element // leaf label → LRU element
	lru     *list.List                       // front = most recent; values are bitlabel.Label
}

func newLeafCache(capacity int) *leafCache {
	return &leafCache{
		cap:     capacity,
		entries: make(map[bitlabel.Label]*list.Element, capacity),
		lru:     list.New(),
	}
}

// add records leaf as recently resolved, evicting the least recently used
// entry when the cache is full.
func (c *leafCache) add(leaf bitlabel.Label) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[leaf]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.entries[leaf] = c.lru.PushFront(leaf)
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(bitlabel.Label))
	}
}

// find returns the deepest cached leaf whose label is a prefix of path —
// the cell that covered the point last time — marking it recently used.
// Leaf labels are prefixes of the path labels of the points they cover, so
// candidates are exactly the prefixes of path present in the cache.
func (c *leafCache) find(path bitlabel.Label, minLen int) (bitlabel.Label, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for l := path.Len(); l >= minLen; l-- {
		if el, ok := c.entries[path.Prefix(l)]; ok {
			c.lru.MoveToFront(el)
			return el.Value.(bitlabel.Label), true
		}
	}
	return bitlabel.Label{}, false
}

// invalidate drops a leaf observed split, merged, or otherwise gone.
func (c *leafCache) invalidate(leaf bitlabel.Label) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[leaf]; ok {
		c.lru.Remove(el)
		delete(c.entries, leaf)
	}
}

// len returns the number of cached leaves.
func (c *leafCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// cacheLeaf records a leaf bucket observed current (just read from the
// DHT). No-op when the cache is disabled.
func (ix *Index) cacheLeaf(b Bucket) {
	if ix.cache != nil {
		ix.cache.add(b.Label)
	}
}

// invalidateLeaf drops a leaf the client observed restructured or missing.
// No-op when the cache is disabled.
func (ix *Index) invalidateLeaf(label bitlabel.Label) {
	if ix.cache != nil {
		ix.cache.invalidate(label)
	}
}

// CacheLen returns the number of entries in the lookup cache (0 when the
// cache is disabled), for tests and monitoring.
func (ix *Index) CacheLen() int {
	if ix.cache == nil {
		return 0
	}
	return ix.cache.len()
}
