package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"mlight/internal/bitlabel"
	"mlight/internal/dht"
	"mlight/internal/metrics"
	"mlight/internal/spatial"
)

// Snapshot / RestoreInto provide whole-index persistence (an operational
// extension beyond the paper): every bucket is streamed out in a compact
// binary framing so an index can be checkpointed to disk and rebuilt on a
// fresh substrate. The format is self-describing: magic, version,
// dimensionality, bucket count, then one length-prefixed bucket frame
// each. Restoration validates the structure — labels must extend the root
// and form an antichain (no bucket may be an ancestor of another), records
// must lie inside their bucket's cell — so a corrupted snapshot is
// rejected rather than silently producing a broken index.

const (
	snapshotMagic   = "MLIGHTSNAP"
	snapshotVersion = 1
	// maxSnapshotBuckets bounds the declared bucket count (DoS guard).
	maxSnapshotBuckets = 1 << 26
)

// ErrSnapshot reports a malformed or incompatible snapshot stream.
var ErrSnapshot = errors.New("core: invalid snapshot")

// Snapshot writes every bucket of the index to w. It requires an
// enumerable substrate. The snapshot is a consistent copy only if the
// index is quiescent while it runs.
func (ix *Index) Snapshot(w io.Writer) error {
	buckets, err := ix.Buckets()
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	header := make([]byte, 0, 16)
	header = binary.AppendUvarint(header, snapshotVersion)
	header = binary.AppendUvarint(header, uint64(ix.opts.Dims))
	header = binary.AppendUvarint(header, uint64(len(buckets)))
	if _, err := bw.Write(header); err != nil {
		return err
	}
	for _, b := range buckets {
		frame := marshalBucketFrame(b)
		var size [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(size[:], uint64(len(frame)))
		if _, err := bw.Write(size[:n]); err != nil {
			return err
		}
		if _, err := bw.Write(frame); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// RestoreInto rebuilds an index from a snapshot onto the substrate d,
// which must not already hold index buckets. opts.Dims, if set, must match
// the snapshot's dimensionality; the remaining options configure the
// restored index (so a restore may change, say, the splitting strategy).
func RestoreInto(d dht.DHT, r io.Reader, opts Options) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshot)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil || version != snapshotVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrSnapshot, version)
	}
	dims64, err := binary.ReadUvarint(br)
	if err != nil || dims64 < 1 || dims64 > 16 {
		return nil, fmt.Errorf("%w: dimensionality %d", ErrSnapshot, dims64)
	}
	dims := int(dims64)
	if opts.Dims != 0 && opts.Dims != dims {
		return nil, fmt.Errorf("%w: snapshot is %d-dimensional, options say %d", ErrSnapshot, dims, opts.Dims)
	}
	opts.Dims = dims
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil || count > maxSnapshotBuckets {
		return nil, fmt.Errorf("%w: bucket count", ErrSnapshot)
	}

	buckets := make([]Bucket, 0, minInt64(count, 1<<16))
	labels := make(map[bitlabel.Label]bool, minInt64(count, 1<<16))
	for i := uint64(0); i < count; i++ {
		size, err := binary.ReadUvarint(br)
		if err != nil || size > 1<<30 {
			return nil, fmt.Errorf("%w: bucket %d frame size", ErrSnapshot, i)
		}
		frame := make([]byte, size)
		if _, err := io.ReadFull(br, frame); err != nil {
			return nil, fmt.Errorf("%w: bucket %d truncated", ErrSnapshot, i)
		}
		b, err := unmarshalBucketFrame(frame, dims)
		if err != nil {
			return nil, fmt.Errorf("bucket %d: %w", i, err)
		}
		if labels[b.Label] {
			return nil, fmt.Errorf("%w: duplicate bucket label %v", ErrSnapshot, b.Label)
		}
		labels[b.Label] = true
		buckets = append(buckets, b)
	}
	// Structural validation: the labels must form an antichain of cells
	// (no bucket an ancestor of another) so lookups terminate uniquely.
	for l := range labels {
		for p := l; p.Len() > dims+1; {
			p = p.Parent()
			if labels[p] {
				return nil, fmt.Errorf("%w: bucket %v is an ancestor of bucket %v", ErrSnapshot, p, l)
			}
		}
	}

	stats := &metrics.IndexStats{}
	ix := &Index{
		opts:  opts,
		raw:   d,
		d:     dht.NewCounting(d, stats),
		stats: stats,
	}
	if n, err := ix.Size(); err == nil && n > 0 {
		return nil, fmt.Errorf("core: RestoreInto requires an empty substrate, found %d records", n)
	}
	for _, b := range buckets {
		if err := d.Put(labelKey(bitlabel.Name(b.Label, dims)), b); err != nil {
			return nil, fmt.Errorf("core: restore bucket %v: %w", b.Label, err)
		}
	}
	if len(buckets) == 0 {
		// Empty snapshot: bootstrap a fresh root.
		root := bitlabel.Root(dims)
		if err := d.Put(labelKey(bitlabel.Name(root, dims)), Bucket{Label: root}); err != nil {
			return nil, fmt.Errorf("core: restore root: %w", err)
		}
	}
	return ix, nil
}

// marshalBucketFrame encodes one bucket (label + records) for the
// snapshot stream.
func marshalBucketFrame(b Bucket) []byte {
	n := b.Load()
	buf := make([]byte, 0, 16+n*48)
	buf = append(buf, byte(b.Label.Len()))
	buf = binary.LittleEndian.AppendUint64(buf, b.Label.Bits())
	buf = binary.AppendUvarint(buf, uint64(n))
	for i := 0; i < n; i++ {
		key := b.KeyAt(i)
		buf = binary.AppendUvarint(buf, uint64(len(key)))
		for _, c := range key {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c))
		}
		data := b.DataAt(i)
		buf = binary.AppendUvarint(buf, uint64(len(data)))
		buf = append(buf, data...)
	}
	return buf
}

// unmarshalBucketFrame decodes and validates one bucket frame.
func unmarshalBucketFrame(frame []byte, dims int) (Bucket, error) {
	if len(frame) < 9 {
		return Bucket{}, fmt.Errorf("%w: frame header", ErrSnapshot)
	}
	labelLen := int(frame[0])
	if labelLen > bitlabel.MaxLen {
		return Bucket{}, fmt.Errorf("%w: label length %d", ErrSnapshot, labelLen)
	}
	label := bitlabel.New(binary.LittleEndian.Uint64(frame[1:9]), labelLen)
	if !bitlabel.Root(dims).IsPrefixOf(label) {
		return Bucket{}, fmt.Errorf("%w: label %v does not extend the root", ErrSnapshot, label)
	}
	region, err := spatial.RegionOf(label, dims)
	if err != nil {
		return Bucket{}, fmt.Errorf("%w: label %v: %v", ErrSnapshot, label, err)
	}
	rest := frame[9:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > uint64(len(rest)) {
		return Bucket{}, fmt.Errorf("%w: record count", ErrSnapshot)
	}
	rest = rest[n:]
	b := Bucket{Label: label}
	for i := uint64(0); i < count; i++ {
		keyLen, n := binary.Uvarint(rest)
		if n <= 0 || int(keyLen) != dims {
			return Bucket{}, fmt.Errorf("%w: record %d key dims", ErrSnapshot, i)
		}
		rest = rest[n:]
		if len(rest) < dims*8 {
			return Bucket{}, fmt.Errorf("%w: record %d truncated", ErrSnapshot, i)
		}
		key := make(spatial.Point, dims)
		for d := 0; d < dims; d++ {
			key[d] = math.Float64frombits(binary.LittleEndian.Uint64(rest[d*8:]))
		}
		rest = rest[dims*8:]
		dataLen, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < dataLen {
			return Bucket{}, fmt.Errorf("%w: record %d data", ErrSnapshot, i)
		}
		rest = rest[n:]
		rec := spatial.Record{Key: key, Data: string(rest[:dataLen])}
		rest = rest[dataLen:]
		if !rec.Key.Valid() || !region.Contains(rec.Key) {
			return Bucket{}, fmt.Errorf("%w: record %d outside its bucket cell", ErrSnapshot, i)
		}
		b = b.Append(rec)
	}
	if len(rest) != 0 {
		return Bucket{}, fmt.Errorf("%w: %d trailing bytes in frame", ErrSnapshot, len(rest))
	}
	return b, nil
}

func minInt64(a uint64, b int) int {
	if a < uint64(b) {
		return int(a)
	}
	return b
}
