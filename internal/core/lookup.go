package core

import (
	"fmt"
	"math/rand"

	"mlight/internal/bitlabel"
	"mlight/internal/dht"
	"mlight/internal/spatial"
	"mlight/internal/trace"
)

// LookupTrace reports the cost of one lookup operation: the number of DHT
// probes issued (the paper's bandwidth unit) — which, because the binary
// search is sequential, also equals its rounds of DHT-lookups.
type LookupTrace struct {
	Probes int
}

// Lookup locates the leaf bucket covering data key δ (paper §5): the
// candidate set is the prefixes of the root-prefixed interleaved path label
// of δ, and a binary search over candidate lengths probes fmd(candidate)
// keys. Each probe either finds the target, proves every candidate at or
// below some length is absent, or proves every candidate above some length
// is internal:
//
//   - a missing bucket at key fmd(c) means fmd(c) is not an internal node,
//     so the target is no longer than fmd(c);
//   - a found bucket whose label extends the probed candidate c proves c is
//     internal (the bucket is a corner cell of c, Theorem 1), pushing the
//     search deeper;
//   - a found bucket diverging from the path at depth cp proves every path
//     prefix through cp is internal and the candidate c is not, bounding
//     the search on both sides.
func (ix *Index) Lookup(key spatial.Point) (Bucket, error) {
	b, _, err := ix.LookupTraced(key)
	return b, err
}

// LookupTraced is Lookup returning probe accounting.
func (ix *Index) LookupTraced(key spatial.Point) (Bucket, LookupTrace, error) {
	var lt LookupTrace
	b, err := ix.lookup(key, &lt, 0)
	return b, lt, err
}

// lookup runs the §5 binary search. parent, when tracing is enabled,
// nests the search's span under the caller's span.
func (ix *Index) lookup(key spatial.Point, lt *LookupTrace, parent trace.SpanID) (b Bucket, err error) {
	if tc := ix.opts.Trace; tc != nil {
		span := tc.Begin(parent, trace.KindLookup, "binsearch")
		parent = span
		defer func() {
			if err != nil {
				tc.End(span, trace.Int("probes", int64(lt.Probes)), trace.Str("error", err.Error()))
				return
			}
			tc.End(span, trace.Int("probes", int64(lt.Probes)), trace.Str("leaf", b.Label.String()))
		}()
	}
	return ix.lookupSearch(key, lt, parent)
}

func (ix *Index) lookupSearch(key spatial.Point, lt *LookupTrace, parent trace.SpanID) (Bucket, error) {
	m := ix.opts.Dims
	if key.Dim() != m {
		return Bucket{}, fmt.Errorf("%w: key has %d dims, index has %d", ErrDimension, key.Dim(), m)
	}
	if !key.Valid() {
		return Bucket{}, fmt.Errorf("core: key %v outside the unit cube", key)
	}
	path, err := bitlabel.PathLabel(key, ix.opts.MaxDepth)
	if err != nil {
		return Bucket{}, fmt.Errorf("core: path label: %w", err)
	}
	lo, hi := m+1, path.Len()
	// The leaf-label cache seeds the binary search: when a cached leaf
	// covers δ (its label is a prefix of δ's path label), the first probe
	// targets that leaf's length directly. On an unchanged index the probe
	// verifies the leaf and the lookup completes with a single DHT get; a
	// stale entry (the leaf split or merged since) is evicted, and the
	// probe's outcome still tightens the bounds by the standard §5 rules —
	// the cache can mis-seed the search but can never serve a stale bucket.
	hint := 0
	if ix.cache != nil {
		if cached, ok := ix.cache.find(path, lo); ok {
			hint = cached.Len()
		} else {
			ix.stats.CacheMisses.Inc()
			ix.traceCache(parent, "miss")
		}
	}
	for iter := 0; iter <= ix.opts.MaxDepth+3 && lo <= hi; iter++ {
		mid := (lo + hi) / 2
		hinted := iter == 0 && hint >= lo && hint <= hi
		if hinted {
			mid = hint
		}
		cand := path.Prefix(mid)
		probeKey := bitlabel.Name(cand, m)
		v, found, err := ix.getBucketSpan(probeKey, lt, parent)
		if err != nil {
			return Bucket{}, err
		}
		if !found {
			if hinted {
				ix.stats.CacheStale.Inc()
				ix.traceCache(parent, "stale")
				ix.invalidateLeaf(cand)
			}
			// probeKey is not internal: the target is at or above it.
			if probeKey.Len() < lo {
				return Bucket{}, fmt.Errorf("%w: probe %v contradicts bounds [%d,%d] for %v",
					ErrNotFound, probeKey, lo, hi, key)
			}
			hi = probeKey.Len()
			continue
		}
		if v.Label.IsPrefixOf(path) {
			// The bucket's cell covers δ: this is the target leaf.
			if hinted {
				ix.stats.CacheHits.Inc()
				ix.traceCache(parent, "hit")
			}
			ix.cacheLeaf(v)
			return v, nil
		}
		if hinted {
			// The cached leaf's key now hosts a different, non-covering
			// bucket: the leaf was restructured. Evict, keep searching.
			ix.stats.CacheStale.Inc()
			ix.traceCache(parent, "stale")
			ix.invalidateLeaf(cand)
		}
		cp := v.Label.CommonPrefixLen(path)
		if cp >= mid {
			// cand is a prefix of the returned leaf, hence internal
			// (Theorem 1: the leaf named fmd(cand) is a corner cell of
			// cand); in fact every path prefix through cp is internal.
			lo = cp + 1
		} else {
			// cand is not internal (otherwise the named leaf would lie
			// inside it) and is not the target; the target is shorter.
			hi = mid - 1
			if cp+1 > lo {
				lo = cp + 1
			}
		}
	}
	return Bucket{}, fmt.Errorf("%w: search exhausted for %v", ErrNotFound, key)
}

// getBucket probes one DHT key, decoding the stored bucket.
func (ix *Index) getBucket(label bitlabel.Label, lt *LookupTrace) (Bucket, bool, error) {
	return ix.getBucketSpan(label, lt, 0)
}

// getBucketSpan is getBucket recording one KindDHTOp span under parent when
// tracing is enabled; the span is handed down to the substrate so the retry
// layer can nest its attempt spans inside it.
func (ix *Index) getBucketSpan(label bitlabel.Label, lt *LookupTrace, parent trace.SpanID) (Bucket, bool, error) {
	if lt != nil {
		lt.Probes++
	}
	var (
		v     any
		found bool
		err   error
	)
	if tc := ix.opts.Trace; tc != nil {
		span := tc.Begin(parent, trace.KindDHTOp, "get", trace.Str("label", label.String()))
		v, found, err = dht.GetWithSpan(ix.d, labelKey(label), span)
		endDHTOp(tc, span, found, err)
	} else {
		v, found, err = ix.d.Get(labelKey(label))
	}
	return decodeBucket(label, v, found, err)
}

// endDHTOp closes a DHT-op span with its outcome.
func endDHTOp(tc *trace.Collector, span trace.SpanID, found bool, err error) {
	switch {
	case err != nil:
		tc.End(span, trace.Str("error", err.Error()))
	case found:
		tc.End(span, trace.Int("found", 1))
	default:
		tc.End(span, trace.Int("found", 0))
	}
}

// decodeBucket converts a raw Get result into a bucket.
func decodeBucket(label bitlabel.Label, v any, found bool, err error) (Bucket, bool, error) {
	if err != nil {
		return Bucket{}, false, fmt.Errorf("core: get %v: %w", label, err)
	}
	if !found {
		return Bucket{}, false, nil
	}
	b, ok := v.(Bucket)
	if !ok {
		return Bucket{}, false, fmt.Errorf("core: key %v holds %T, not a bucket", label, v)
	}
	return b, true, nil
}

// traceCache records a lookup-cache event under the given span.
func (ix *Index) traceCache(parent trace.SpanID, outcome string) {
	if tc := ix.opts.Trace; tc != nil {
		tc.Event(parent, trace.KindCache, outcome)
	}
}

// getBucketRaw is getBucket against the uncounted substrate view. The range
// engine uses it for covering-leaf candidate probes, whose logical charge
// is computed deterministically at group adjudication (the slots up to and
// including the first hit — exactly what a sequential early-exit scan pays)
// instead of per physical probe: a concurrent probe racing past the first
// hit must not perturb the accounting. With Options.Retry set the raw view
// is the resilient wrapper, so these probes are still retried.
func (ix *Index) getBucketRaw(label bitlabel.Label) (Bucket, bool, error) {
	return ix.getBucketRawSpan(label, 0)
}

// getBucketRawSpan is getBucketRaw with span attribution (see
// getBucketSpan). The physical probe is traced even though its logical
// charge lands at adjudication — the trace shows what actually ran.
func (ix *Index) getBucketRawSpan(label bitlabel.Label, parent trace.SpanID) (Bucket, bool, error) {
	var (
		v     any
		found bool
		err   error
	)
	if tc := ix.opts.Trace; tc != nil {
		span := tc.Begin(parent, trace.KindDHTOp, "get-cand", trace.Str("label", label.String()))
		v, found, err = dht.GetWithSpan(ix.raw, labelKey(label), span)
		endDHTOp(tc, span, found, err)
	} else {
		v, found, err = ix.raw.Get(labelKey(label))
	}
	return decodeBucket(label, v, found, err)
}

// Exact returns all records whose key equals δ exactly — the exact-match
// query of §5.
func (ix *Index) Exact(key spatial.Point) ([]spatial.Record, error) {
	b, err := ix.Lookup(key)
	if err != nil {
		return nil, err
	}
	var out []spatial.Record
	for i, n := 0, b.Load(); i < n; i++ {
		if samePoint(b.KeyAt(i), key) {
			out = append(out, b.RecordAt(i))
		}
	}
	return out, nil
}

func samePoint(a, b spatial.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EstimateDepth estimates the index tree's current depth by probing sample
// random points — the technique §5 cites for choosing the lookup bound D
// ("estimated by apriori knowledge or by probing certain values before
// query processing"). It returns the maximum leaf depth observed below the
// ordinary root; callers typically add a safety margin before using it as
// MaxDepth elsewhere. The probe points are drawn from a source seeded by
// Options.Seed (WithSeed), so repeated runs sample identically.
func (ix *Index) EstimateDepth(samples int) (int, error) {
	if samples < 1 {
		return 0, fmt.Errorf("core: samples must be ≥ 1, got %d", samples)
	}
	rng := rand.New(rand.NewSource(ix.opts.Seed))
	m := ix.opts.Dims
	maxDepth := 0
	for i := 0; i < samples; i++ {
		p := make(spatial.Point, m)
		for d := range p {
			p[d] = rng.Float64()
		}
		b, err := ix.Lookup(p)
		if err != nil {
			return 0, err
		}
		if depth := b.Label.Len() - (m + 1); depth > maxDepth {
			maxDepth = depth
		}
	}
	return maxDepth, nil
}
