package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/spatial"
)

// TestRangeQueryParallelRaceStress hammers the concurrent query engine from
// many goroutines over one shared Index — parallel range queries with
// lookahead, cached point lookups, and a writer splitting and merging leaves
// underneath them. It exists to run under the race detector: the engine's
// worker pool, the batch counters, and the leaf-label cache must all be
// race-clean, and results must stay inside their query rectangles even while
// the tree is restructuring.
func TestRangeQueryParallelRaceStress(t *testing.T) {
	ix, err := New(dht.MustNewLocal(16), Options{
		ThetaSplit:  8,
		ThetaMerge:  4,
		MaxInFlight: 8,
		CacheSize:   32,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Seed enough records that queries fan out over a real leaf frontier.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		rec := spatial.Record{
			Key:  spatial.Point{rng.Float64(), rng.Float64()},
			Data: fmt.Sprintf("seed-%d", i),
		}
		if err := ix.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}

	const (
		queriers   = 8
		perQuerier = 30
	)
	var wg sync.WaitGroup

	// One writer keeps the tree moving: inserts force splits, deletes force
	// merges, both invalidating cache entries the readers just planted.
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(99))
		for i := 0; i < 150; i++ {
			p := spatial.Point{wrng.Float64(), wrng.Float64()}
			data := fmt.Sprintf("churn-%d", i)
			if err := ix.Insert(spatial.Record{Key: p, Data: data}); err != nil {
				t.Errorf("writer insert: %v", err)
				return
			}
			if i%3 == 0 {
				if _, err := ix.Delete(p, data); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("writer delete: %v", err)
					return
				}
			}
		}
	}()

	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < perQuerier; i++ {
				q := randomRect(qrng, 2)
				res, err := ix.RangeQueryParallel(q, 4)
				if err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("querier %d: %v", g, err)
					return
				}
				if err == nil {
					for _, rec := range res.Records {
						if !q.Contains(rec.Key) {
							t.Errorf("querier %d: record %v outside %v", g, rec.Key, q)
							return
						}
					}
				}
				// Cached point lookups race with the writer's splits and
				// merges; a stale hint must recover, never error.
				p := spatial.Point{qrng.Float64(), qrng.Float64()}
				if _, err := ix.Lookup(p); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("querier %d lookup: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// The batch counters must have seen the fan-out, and a final
	// whole-space query must still see a consistent tree.
	snap := ix.Stats()
	if snap.BatchRounds == 0 || snap.BatchProbes == 0 {
		t.Errorf("batch counters unused: rounds=%d probes=%d", snap.BatchRounds, snap.BatchProbes)
	}
	if snap.MaxInFlight < 1 || snap.MaxInFlight > 8 {
		t.Errorf("MaxInFlight high-water %d outside [1,8]", snap.MaxInFlight)
	}
	all, err := ix.RangeQuery(spatial.Rect{Lo: spatial.Point{0, 0}, Hi: spatial.Point{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := ix.Size(); err != nil || len(all.Records) != n {
		t.Fatalf("whole-space query = %d records, Size = %d (%v)", len(all.Records), n, err)
	}
}

// TestMulticastRaceStress repeats the concurrent-query hammering with the
// prefix-multicast engine selected for every public entry point. The
// multicast split's per-engine depth estimate, the shared multicast stats
// counters, and the candidate adjudication of overshot frontier pieces must
// all stay race-clean while a writer splits and merges leaves underneath.
func TestMulticastRaceStress(t *testing.T) {
	ix, err := New(dht.MustNewLocal(16), Options{
		ThetaSplit:  8,
		ThetaMerge:  4,
		MaxInFlight: 8,
		CacheSize:   32,
		Multicast:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 400; i++ {
		rec := spatial.Record{
			Key:  spatial.Point{rng.Float64(), rng.Float64()},
			Data: fmt.Sprintf("seed-%d", i),
		}
		if err := ix.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}

	const (
		queriers   = 8
		perQuerier = 25
	)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(101))
		for i := 0; i < 120; i++ {
			p := spatial.Point{wrng.Float64(), wrng.Float64()}
			data := fmt.Sprintf("churn-%d", i)
			if err := ix.Insert(spatial.Record{Key: p, Data: data}); err != nil {
				t.Errorf("writer insert: %v", err)
				return
			}
			if i%3 == 0 {
				if _, err := ix.Delete(p, data); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("writer delete: %v", err)
					return
				}
			}
		}
	}()

	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(int64(2000 + g)))
			for i := 0; i < perQuerier; i++ {
				q := randomRect(qrng, 2)
				res, err := ix.RangeQuery(q)
				if err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("querier %d: %v", g, err)
					return
				}
				if err == nil {
					for _, rec := range res.Records {
						if !q.Contains(rec.Key) {
							t.Errorf("querier %d: record %v outside %v", g, rec.Key, q)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()

	snap := ix.Stats()
	if snap.MulticastSplits == 0 || snap.MulticastPieces == 0 {
		t.Errorf("multicast counters unused: splits=%d pieces=%d", snap.MulticastSplits, snap.MulticastPieces)
	}
	all, err := ix.RangeQuery(spatial.Rect{Lo: spatial.Point{0, 0}, Hi: spatial.Point{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := ix.Size(); err != nil || len(all.Records) != n {
		t.Fatalf("whole-space query = %d records, Size = %d (%v)", len(all.Records), n, err)
	}
}
