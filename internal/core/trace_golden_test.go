package core

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/spatial"
	"mlight/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// TestTraceGolden pins the two trace exporters byte for byte on a seeded
// multi-round query. MaxInFlight = 1 makes execution fully sequential, so
// span IDs and the logical clock — and therefore both rendered forms — are
// deterministic. A diff here means the span taxonomy, the collection
// points, or an exporter changed; regenerate with -update when the change
// is intentional.
func TestTraceGolden(t *testing.T) {
	tc := trace.NewCollector()
	ix, err := New(dht.MustNewLocal(16), Options{
		Dims:        2,
		MaxDepth:    12,
		ThetaSplit:  4,
		MaxInFlight: 1,
		Trace:       tc,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 48; i++ {
		rec := spatial.Record{
			Key:  spatial.Point{rng.Float64(), rng.Float64()},
			Data: fmt.Sprintf("r%d", i),
		}
		if err := ix.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	tc.Reset() // the golden covers the query alone, not the build

	q := spatial.Rect{Lo: spatial.Point{0.2, 0.2}, Hi: spatial.Point{0.8, 0.8}}
	res, err := ix.RangeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 2 {
		t.Fatalf("query resolved in %d rounds; the golden needs a multi-round trace", res.Rounds)
	}

	var tree, events bytes.Buffer
	if err := tc.WriteTree(&tree); err != nil {
		t.Fatal(err)
	}
	if err := tc.WriteTraceEvent(&events); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateTraceEvent(events.Bytes()); err != nil {
		t.Fatalf("exported trace fails its own schema: %v", err)
	}
	compareGolden(t, "trace_tree.golden", tree.Bytes())
	compareGolden(t, "trace_events.golden", events.Bytes())
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from the golden file (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}
