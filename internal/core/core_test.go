package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"mlight/internal/bitlabel"
	"mlight/internal/dht"
	"mlight/internal/kdtree"
	"mlight/internal/spatial"
)

func newIndex(t *testing.T, opts Options) *Index {
	t.Helper()
	ix, err := New(dht.MustNewLocal(16), opts)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func randomPoints(rng *rand.Rand, m, n int) []spatial.Point {
	out := make([]spatial.Point, n)
	for i := range out {
		p := make(spatial.Point, m)
		for d := range p {
			p[d] = rng.Float64()
		}
		out[i] = p
	}
	return out
}

func clusteredPoints(rng *rand.Rand, m, n int) []spatial.Point {
	centers := [][]float64{{0.2, 0.7}, {0.8, 0.3}, {0.5, 0.5}}
	out := make([]spatial.Point, n)
	for i := range out {
		p := make(spatial.Point, m)
		c := centers[rng.Intn(len(centers))]
		for d := range p {
			base := 0.5
			if d < len(c) {
				base = c[d]
			}
			p[d] = clamp01(base + rng.NormFloat64()*0.05)
		}
		out[i] = p
	}
	return out
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func TestOptionsValidation(t *testing.T) {
	d := dht.MustNewLocal(2)
	bad := []Options{
		{Dims: -1},
		{Dims: 2, MaxDepth: 80},
		{Dims: 2, ThetaSplit: -5},
		{Dims: 2, ThetaSplit: 10, ThetaMerge: 10},
		{Dims: 2, Strategy: SplitStrategy(99)},
		{Dims: 2, Strategy: SplitDataAware, Epsilon: -3},
	}
	for i, o := range bad {
		if _, err := New(d, o); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, o)
		}
	}
	ix := newIndex(t, Options{})
	o := ix.Options()
	if o.Dims != 2 || o.MaxDepth != 28 || o.ThetaSplit != 100 || o.ThetaMerge != 50 ||
		o.Strategy != SplitThreshold || o.Epsilon != 70 {
		t.Errorf("defaults = %+v", o)
	}
	if SplitThreshold.String() != "threshold" || SplitDataAware.String() != "data-aware" {
		t.Error("strategy names wrong")
	}
	if !strings.Contains(SplitStrategy(42).String(), "42") {
		t.Error("unknown strategy String")
	}
}

func TestBootstrapIdempotent(t *testing.T) {
	d := dht.MustNewLocal(4)
	ix1, err := New(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix1.Insert(spatial.Record{Key: spatial.Point{0.5, 0.5}, Data: "a"}); err != nil {
		t.Fatal(err)
	}
	// A second client attaching must not wipe the index.
	ix2, err := New(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ix2.Exact(spatial.Point{0.5, 0.5})
	if err != nil || len(recs) != 1 || recs[0].Data != "a" {
		t.Fatalf("second client sees %v, %v", recs, err)
	}
}

func TestInsertLookupExact(t *testing.T) {
	ix := newIndex(t, Options{ThetaSplit: 4, ThetaMerge: 2})
	points := []spatial.Point{
		{0.1, 0.1}, {0.9, 0.9}, {0.4, 0.6}, {0.6, 0.4},
		{0.25, 0.75}, {0.75, 0.25}, {0.5, 0.5}, {0.123, 0.456},
	}
	for i, p := range points {
		if err := ix.Insert(spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatalf("Insert(%v): %v", p, err)
		}
	}
	for i, p := range points {
		b, err := ix.Lookup(p)
		if err != nil {
			t.Fatalf("Lookup(%v): %v", p, err)
		}
		g, err := spatial.RegionOf(b.Label, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Contains(p) {
			t.Fatalf("Lookup(%v) = %v whose region %v misses it", p, b.Label, g)
		}
		recs, err := ix.Exact(p)
		if err != nil || len(recs) != 1 || recs[0].Data != fmt.Sprintf("r%d", i) {
			t.Fatalf("Exact(%v) = %v, %v", p, recs, err)
		}
	}
	// Exact on an absent point returns nothing.
	recs, err := ix.Exact(spatial.Point{0.111, 0.222})
	if err != nil || len(recs) != 0 {
		t.Fatalf("Exact(absent) = %v, %v", recs, err)
	}
	if n, err := ix.Size(); err != nil || n != len(points) {
		t.Fatalf("Size = %d, %v", n, err)
	}
}

func TestInsertValidation(t *testing.T) {
	ix := newIndex(t, Options{})
	if err := ix.Insert(spatial.Record{Key: spatial.Point{0.5}}); !errors.Is(err, ErrDimension) {
		t.Errorf("wrong-dim insert: %v", err)
	}
	if err := ix.Insert(spatial.Record{Key: spatial.Point{1.5, 0.5}}); err == nil {
		t.Error("out-of-cube insert accepted")
	}
	if _, err := ix.Lookup(spatial.Point{0.5}); !errors.Is(err, ErrDimension) {
		t.Errorf("wrong-dim lookup: %v", err)
	}
}

// assertMatchesOracle compares the distributed index against the in-memory
// reference tree: identical leaf labels and identical record multisets per
// leaf.
func assertMatchesOracle(t *testing.T, ix *Index, oracle *kdtree.Tree) {
	t.Helper()
	buckets, err := ix.Buckets()
	if err != nil {
		t.Fatal(err)
	}
	leaves := oracle.Leaves()
	if len(buckets) != len(leaves) {
		t.Fatalf("index has %d buckets, oracle has %d leaves", len(buckets), len(leaves))
	}
	byLabel := make(map[bitlabel.Label]Bucket, len(buckets))
	for _, b := range buckets {
		if _, dup := byLabel[b.Label]; dup {
			t.Fatalf("duplicate bucket label %v", b.Label)
		}
		byLabel[b.Label] = b
	}
	for _, leaf := range leaves {
		b, ok := byLabel[leaf.Label]
		if !ok {
			t.Fatalf("oracle leaf %v missing from index", leaf.Label)
		}
		if !sameRecordSet(b.Records(), leaf.Records) {
			t.Fatalf("leaf %v: index has %d records, oracle %d (or contents differ)",
				leaf.Label, b.Load(), len(leaf.Records))
		}
	}
}

func sameRecordSet(a, b []spatial.Record) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(r spatial.Record) string {
		return fmt.Sprintf("%v|%s", r.Key, r.Data)
	}
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i] = key(a[i])
		bs[i] = key(b[i])
	}
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestThresholdAgainstOracle is the main integration property: for several
// dimensionalities and thresholds, progressive insertion into the
// distributed index produces exactly the leaves of the reference global
// kd-tree, and every lookup and range query matches the oracle.
func TestThresholdAgainstOracle(t *testing.T) {
	cases := []struct {
		m, theta, n int
		seed        int64
		clustered   bool
	}{
		{m: 1, theta: 8, n: 400, seed: 1},
		{m: 2, theta: 10, n: 800, seed: 2},
		{m: 2, theta: 25, n: 800, seed: 3, clustered: true},
		{m: 3, theta: 12, n: 600, seed: 4},
		{m: 4, theta: 15, n: 400, seed: 5},
	}
	for _, c := range cases {
		name := fmt.Sprintf("m%d_theta%d_n%d", c.m, c.theta, c.n)
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(c.seed))
			maxDepth := 24
			ix, err := New(dht.MustNewLocal(32), Options{
				Dims: c.m, ThetaSplit: c.theta, ThetaMerge: c.theta / 2, MaxDepth: maxDepth,
			})
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := kdtree.NewTree(c.m, c.theta, c.theta/2, maxDepth)
			if err != nil {
				t.Fatal(err)
			}
			var points []spatial.Point
			if c.clustered {
				points = clusteredPoints(rng, c.m, c.n)
			} else {
				points = randomPoints(rng, c.m, c.n)
			}
			for i, p := range points {
				rec := spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}
				if err := ix.Insert(rec); err != nil {
					t.Fatalf("Insert #%d %v: %v", i, p, err)
				}
				if err := oracle.Insert(rec); err != nil {
					t.Fatal(err)
				}
			}
			assertMatchesOracle(t, ix, oracle)

			// Lookups agree with the oracle's leaf assignment.
			for _, p := range points[:min(len(points), 200)] {
				b, err := ix.Lookup(p)
				if err != nil {
					t.Fatalf("Lookup(%v): %v", p, err)
				}
				leaf, err := oracle.LeafFor(p)
				if err != nil {
					t.Fatal(err)
				}
				if b.Label != leaf.Label {
					t.Fatalf("Lookup(%v) = %v, oracle leaf %v", p, b.Label, leaf.Label)
				}
			}

			// Range queries agree with the oracle for random rectangles.
			for trial := 0; trial < 60; trial++ {
				q := randomRect(rng, c.m)
				want, err := oracle.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				res, err := ix.RangeQuery(q)
				if err != nil {
					t.Fatalf("RangeQuery(%v): %v", q, err)
				}
				if !sameRecordSet(res.Records, want) {
					t.Fatalf("RangeQuery(%v) = %d records, oracle %d", q, len(res.Records), len(want))
				}
				if res.Lookups < 1 || res.Rounds < 1 || res.Rounds > res.Lookups {
					t.Fatalf("implausible cost: %+v", res)
				}
				// The parallel variant returns the same answer.
				for _, h := range []int{2, 4} {
					pres, err := ix.RangeQueryParallel(q, h)
					if err != nil {
						t.Fatalf("RangeQueryParallel(%v, %d): %v", q, h, err)
					}
					if !sameRecordSet(pres.Records, want) {
						t.Fatalf("parallel-%d RangeQuery(%v) differs: %d vs %d records",
							h, q, len(pres.Records), len(want))
					}
				}
			}
		})
	}
}

func randomRect(rng *rand.Rand, m int) spatial.Rect {
	lo := make(spatial.Point, m)
	hi := make(spatial.Point, m)
	for d := 0; d < m; d++ {
		a, b := rng.Float64(), rng.Float64()
		if a > b {
			a, b = b, a
		}
		lo[d], hi[d] = a, b
	}
	return spatial.Rect{Lo: lo, Hi: hi}
}

// TestDeleteAgainstOracle runs a mixed insert/delete workload against the
// oracle, checking merges keep the structures identical.
func TestDeleteAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, theta, maxDepth := 2, 10, 24
	ix, err := New(dht.MustNewLocal(16), Options{
		Dims: m, ThetaSplit: theta, ThetaMerge: theta / 2, MaxDepth: maxDepth,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := kdtree.NewTree(m, theta, theta/2, maxDepth)
	if err != nil {
		t.Fatal(err)
	}
	var live []spatial.Record
	id := 0
	for step := 0; step < 1500; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			rec := spatial.Record{Key: randomPoints(rng, m, 1)[0], Data: fmt.Sprintf("r%d", id)}
			id++
			if err := ix.Insert(rec); err != nil {
				t.Fatalf("step %d Insert: %v", step, err)
			}
			if err := oracle.Insert(rec); err != nil {
				t.Fatal(err)
			}
			live = append(live, rec)
		} else {
			i := rng.Intn(len(live))
			rec := live[i]
			live = append(live[:i], live[i+1:]...)
			ok, err := ix.Delete(rec.Key, rec.Data)
			if err != nil {
				t.Fatalf("step %d Delete(%v): %v", step, rec.Key, err)
			}
			if !ok {
				t.Fatalf("step %d Delete(%v) found nothing", step, rec.Key)
			}
			ok, err = oracle.Delete(rec.Key, rec.Data)
			if err != nil || !ok {
				t.Fatalf("oracle delete: %v, %v", ok, err)
			}
		}
	}
	assertMatchesOracle(t, ix, oracle)
	if n, err := ix.Size(); err != nil || n != len(live) {
		t.Fatalf("Size = %d, want %d (%v)", n, len(live), err)
	}
	// Deleting everything shrinks the structure back towards the root.
	for _, rec := range live {
		if ok, err := ix.Delete(rec.Key, rec.Data); err != nil || !ok {
			t.Fatalf("final Delete(%v): %v, %v", rec.Key, ok, err)
		}
	}
	buckets, err := ix.Buckets()
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) > 3 {
		t.Errorf("after deleting everything, %d buckets remain (merges not cascading)", len(buckets))
	}
	if ok, err := ix.Delete(spatial.Point{0.42, 0.42}, ""); err != nil || ok {
		t.Errorf("Delete(absent) = %v, %v", ok, err)
	}
	if _, err := ix.Delete(spatial.Point{0.5}, ""); !errors.Is(err, ErrDimension) {
		t.Errorf("wrong-dim delete: %v", err)
	}
}

// TestIncrementalSplitMovesHalf pins Theorem 5's cost claim: a single split
// moves only the records of the child not named to the old key.
func TestIncrementalSplitMovesHalf(t *testing.T) {
	theta := 10
	ix := newIndex(t, Options{ThetaSplit: theta, ThetaMerge: theta / 2})
	rng := rand.New(rand.NewSource(2))
	// Fill the root bucket to exactly θ records — no split yet.
	for i := 0; i < theta; i++ {
		p := spatial.Point{rng.Float64(), rng.Float64()}
		if err := ix.Insert(spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	before := ix.Stats()
	if before.Splits != 0 {
		t.Fatalf("premature split: %+v", before)
	}
	// The θ+1-st record triggers the split.
	if err := ix.Insert(spatial.Record{Key: spatial.Point{0.5, 0.5}, Data: "trigger"}); err != nil {
		t.Fatal(err)
	}
	delta := ix.Stats().Sub(before)
	if delta.Splits < 1 {
		t.Fatalf("no split happened: %+v", delta)
	}
	buckets, err := ix.Buckets()
	if err != nil {
		t.Fatal(err)
	}
	stayLoad := -1
	total := 0
	for _, b := range buckets {
		total += b.Load()
		if bitlabel.Name(b.Label, 2) == bitlabel.VirtualRoot(2) {
			stayLoad = b.Load()
		}
	}
	if total != theta+1 {
		t.Fatalf("records after split = %d", total)
	}
	if stayLoad < 0 {
		t.Fatal("no bucket remained at the root's key")
	}
	// Moved records = inserted record (1) + everything that left the old
	// key (total - stayLoad).
	wantMoved := int64(1 + total - stayLoad)
	if delta.RecordsMoved != wantMoved {
		t.Errorf("RecordsMoved delta = %d, want %d (stay=%d)", delta.RecordsMoved, wantMoved, stayLoad)
	}
}

// hierarchicalPoints mimics the paper's NE postal data: metro centres with
// town subclusters and tight street-level clusters, plus sparse background
// noise. Multi-scale skew is what separates the splitting strategies.
func hierarchicalPoints(rng *rand.Rand, n int) []spatial.Point {
	metros := [][2]float64{{0.25, 0.7}, {0.5, 0.45}, {0.75, 0.2}}
	var towns [][2]float64
	for _, c := range metros {
		for t := 0; t < 8; t++ {
			towns = append(towns, [2]float64{
				clamp01(c[0] + rng.NormFloat64()*0.05),
				clamp01(c[1] + rng.NormFloat64()*0.05),
			})
		}
	}
	out := make([]spatial.Point, n)
	for i := range out {
		if rng.Float64() < 0.02 {
			out[i] = spatial.Point{rng.Float64(), rng.Float64()}
			continue
		}
		tw := towns[rng.Intn(len(towns))]
		out[i] = spatial.Point{
			clamp01(tw[0] + rng.NormFloat64()*0.004),
			clamp01(tw[1] + rng.NormFloat64()*0.004),
		}
	}
	return out
}

// TestDataAwareStrategy: the data-aware index stays consistent and, on
// multi-scale clustered data, yields fewer empty buckets than threshold
// splitting with a comparable bucket count — the §7.3 claim.
func TestDataAwareStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	points := hierarchicalPoints(rng, 8000)

	aware, err := New(dht.MustNewLocal(16), Options{
		Dims: 2, Strategy: SplitDataAware, Epsilon: 35, ThetaSplit: 50, ThetaMerge: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	threshold, err := New(dht.MustNewLocal(16), Options{
		Dims: 2, Strategy: SplitThreshold, ThetaSplit: 50, ThetaMerge: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		rec := spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}
		if err := aware.Insert(rec); err != nil {
			t.Fatalf("data-aware Insert #%d: %v", i, err)
		}
		if err := threshold.Insert(rec); err != nil {
			t.Fatalf("threshold Insert #%d: %v", i, err)
		}
	}
	// Consistency: everything is retrievable and range queries match a
	// linear scan.
	for trial := 0; trial < 40; trial++ {
		q := randomRect(rng, 2)
		want := 0
		for _, p := range points {
			if q.Contains(p) {
				want++
			}
		}
		res, err := aware.RangeQuery(q)
		if err != nil {
			t.Fatalf("RangeQuery: %v", err)
		}
		if len(res.Records) != want {
			t.Fatalf("data-aware RangeQuery(%v) = %d records, want %d", q, len(res.Records), want)
		}
	}
	emptyFrac := func(ix *Index) (float64, int) {
		bs, err := ix.Buckets()
		if err != nil {
			t.Fatal(err)
		}
		empty := 0
		for _, b := range bs {
			if b.Load() == 0 {
				empty++
			}
		}
		return float64(empty) / float64(len(bs)), len(bs)
	}
	awareEmpty, awareN := emptyFrac(aware)
	thrEmpty, thrN := emptyFrac(threshold)
	t.Logf("data-aware: %d buckets, %.1f%% empty; threshold: %d buckets, %.1f%% empty",
		awareN, 100*awareEmpty, thrN, 100*thrEmpty)
	if awareEmpty > thrEmpty {
		t.Errorf("data-aware splitting has more empty buckets (%.3f) than threshold (%.3f)",
			awareEmpty, thrEmpty)
	}
}

// TestParallelTradeoff: averaged over queries, higher lookahead h must not
// increase latency (rounds) and must not decrease bandwidth (lookups) —
// the §6 trade-off.
func TestParallelTradeoff(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ix := newIndex(t, Options{ThetaSplit: 10, ThetaMerge: 5})
	for i, p := range randomPoints(rng, 2, 2000) {
		if err := ix.Insert(spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	var basicRounds, p4Rounds, basicLookups, p4Lookups int
	for trial := 0; trial < 50; trial++ {
		q := spanRect(rng, 2, 0.3)
		b, err := ix.RangeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		p4, err := ix.RangeQueryParallel(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		basicRounds += b.Rounds
		p4Rounds += p4.Rounds
		basicLookups += b.Lookups
		p4Lookups += p4.Lookups
	}
	t.Logf("basic: rounds=%d lookups=%d; parallel-4: rounds=%d lookups=%d",
		basicRounds, basicLookups, p4Rounds, p4Lookups)
	if p4Rounds > basicRounds {
		t.Errorf("parallel-4 total rounds %d exceed basic %d", p4Rounds, basicRounds)
	}
	if p4Lookups < basicLookups {
		t.Errorf("parallel-4 total lookups %d below basic %d", p4Lookups, basicLookups)
	}
	if _, err := ix.RangeQueryParallel(spanRect(rng, 2, 0.1), 0); err == nil {
		t.Error("h=0 accepted")
	}
}

// spanRect returns a random rectangle with the given total area (span),
// clipped inside the unit square.
func spanRect(rng *rand.Rand, m int, span float64) spatial.Rect {
	side := 1.0
	for d := 0; d < m; d++ {
		side *= 1.0
	}
	side = powRoot(span, m)
	lo := make(spatial.Point, m)
	hi := make(spatial.Point, m)
	for d := 0; d < m; d++ {
		start := rng.Float64() * (1 - side)
		lo[d] = start
		hi[d] = start + side
	}
	return spatial.Rect{Lo: lo, Hi: hi}
}

func powRoot(x float64, m int) float64 {
	if m == 1 {
		return x
	}
	// m-th root via repeated square root for m a power of two, else a
	// short Newton iteration.
	guess := x
	for i := 0; i < 60; i++ {
		next := guess - (pow(guess, m)-x)/(float64(m)*pow(guess, m-1))
		if next <= 0 {
			next = guess / 2
		}
		if diff := next - guess; diff < 1e-12 && diff > -1e-12 {
			return next
		}
		guess = next
	}
	return guess
}

func pow(x float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= x
	}
	return out
}

// TestRangeQueryWithinLeaf covers Algorithm 2's NULL branch: a range
// strictly inside one leaf resolves through a corner lookup.
func TestRangeQueryWithinLeaf(t *testing.T) {
	ix := newIndex(t, Options{ThetaSplit: 100})
	for i, p := range randomPoints(rand.New(rand.NewSource(5)), 2, 50) {
		if err := ix.Insert(spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Tree is a single root leaf; a tiny query's LCA is far below it.
	q, _ := spatial.NewRect(spatial.Point{0.41, 0.41}, spatial.Point{0.42, 0.42})
	res, err := ix.RangeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lookups < 2 {
		t.Errorf("NULL branch should cost LCA probe + lookup probes, got %d", res.Lookups)
	}
}

func TestLookupProbesBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ix := newIndex(t, Options{ThetaSplit: 10, ThetaMerge: 5})
	points := randomPoints(rng, 2, 3000)
	for i, p := range points {
		if err := ix.Insert(spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	maxProbes := 0
	total := 0
	for _, p := range points[:500] {
		_, trace, err := ix.LookupTraced(p)
		if err != nil {
			t.Fatal(err)
		}
		if trace.Probes > maxProbes {
			maxProbes = trace.Probes
		}
		total += trace.Probes
	}
	// Binary search over D+1 = 29 candidates: ceil(log2(29)) = 5 plus
	// slack for the naming indirection.
	if maxProbes > 7 {
		t.Errorf("max lookup probes = %d, want ≤ 7", maxProbes)
	}
	t.Logf("lookup probes: mean=%.2f max=%d", float64(total)/500, maxProbes)
}

func TestStatsAccounting(t *testing.T) {
	ix := newIndex(t, Options{ThetaSplit: 100})
	before := ix.Stats()
	if err := ix.Insert(spatial.Record{Key: spatial.Point{0.3, 0.3}}); err != nil {
		t.Fatal(err)
	}
	delta := ix.Stats().Sub(before)
	// One insert with no split: lookup probes + 1 apply, 1 record moved.
	if delta.RecordsMoved != 1 {
		t.Errorf("RecordsMoved = %d, want 1", delta.RecordsMoved)
	}
	if delta.DHTLookups < 2 {
		t.Errorf("DHTLookups = %d, want ≥ 2", delta.DHTLookups)
	}
	ix.ResetStats()
	if ix.Stats() != (ix.Stats().Sub(ix.Stats().Sub(ix.Stats()))) {
		t.Error("ResetStats broken")
	}
}

func TestBucketsOnOpaqueSubstrate(t *testing.T) {
	ix, err := New(opaque{dht.MustNewLocal(1)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Buckets(); !errors.Is(err, dht.ErrNotEnumerable) {
		t.Errorf("Buckets on opaque substrate: %v", err)
	}
}

type opaque struct{ dht.DHT }

// TestHighDimensionalOracle pushes the oracle comparison to m = 5 and 6,
// beyond the paper's 2-D evaluation.
func TestHighDimensionalOracle(t *testing.T) {
	for _, m := range []int{5, 6} {
		t.Run(fmt.Sprintf("m%d", m), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(m)))
			theta, maxDepth := 12, 20
			ix, err := New(dht.MustNewLocal(16), Options{
				Dims: m, ThetaSplit: theta, ThetaMerge: theta / 2, MaxDepth: maxDepth,
			})
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := kdtree.NewTree(m, theta, theta/2, maxDepth)
			if err != nil {
				t.Fatal(err)
			}
			points := randomPoints(rng, m, 300)
			for i, p := range points {
				rec := spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}
				if err := ix.Insert(rec); err != nil {
					t.Fatalf("insert #%d: %v", i, err)
				}
				if err := oracle.Insert(rec); err != nil {
					t.Fatal(err)
				}
			}
			assertMatchesOracle(t, ix, oracle)
			for trial := 0; trial < 20; trial++ {
				q := randomRect(rng, m)
				want, err := oracle.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				res, err := ix.RangeQuery(q)
				if err != nil {
					t.Fatal(err)
				}
				if !sameRecordSet(res.Records, want) {
					t.Fatalf("m=%d RangeQuery(%v) = %d, oracle %d", m, q, len(res.Records), len(want))
				}
			}
		})
	}
}

// failingDHT fails Puts after a budget, exercising maintenance error paths.
type failingDHT struct {
	dht.DHT
	putsLeft int
}

func (f *failingDHT) Put(key dht.Key, value any) error {
	if f.putsLeft <= 0 {
		return errors.New("injected put failure")
	}
	f.putsLeft--
	return f.DHT.Put(key, value)
}

func TestInsertSurfacesSubstrateFailures(t *testing.T) {
	inner := dht.MustNewLocal(4)
	flaky := &failingDHT{DHT: inner, putsLeft: 1 << 30}
	ix, err := New(flaky, Options{ThetaSplit: 4, ThetaMerge: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	// Cut off puts so the next split's placement fails.
	flaky.putsLeft = 0
	var sawErr bool
	for i := 0; i < 50; i++ {
		p := spatial.Point{rng.Float64(), rng.Float64()}
		if err := ix.Insert(spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Error("substrate put failures never surfaced from Insert")
	}
}

func TestBucketKeyAndDHTAccessor(t *testing.T) {
	ix := newIndex(t, Options{})
	if ix.DHT() == nil {
		t.Fatal("DHT() returned nil")
	}
	if err := ix.Insert(spatial.Record{Key: spatial.Point{0.3, 0.3}, Data: "x"}); err != nil {
		t.Fatal(err)
	}
	buckets, err := ix.Buckets()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range buckets {
		// The bucket must actually be stored under Bucket.Key.
		v, found, err := ix.DHT().Get(b.Key(2))
		if err != nil || !found {
			t.Fatalf("bucket %v not at its Key: %v, %v", b.Label, found, err)
		}
		got, ok := v.(Bucket)
		if !ok || got.Label != b.Label {
			t.Fatalf("key holds %v, want %v", got.Label, b.Label)
		}
	}
}
