package core

import (
	"fmt"
	"math/rand"
	"testing"

	"mlight/internal/bitlabel"
	"mlight/internal/dht"
	"mlight/internal/spatial"
)

// benchRangeIndex builds an index with n seeded uniform records.
func benchRangeIndex(b *testing.B, multicast bool, n int) *Index {
	b.Helper()
	ix, err := New(dht.MustNewLocal(16), Options{
		ThetaSplit:  16,
		ThetaMerge:  8,
		MaxInFlight: 8,
		Multicast:   multicast,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		p := spatial.Point{rng.Float64(), rng.Float64()}
		if err := ix.Insert(spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}); err != nil {
			b.Fatal(err)
		}
	}
	return ix
}

// BenchmarkRangeDissemination answers one large-span range query per
// iteration, comparing prefix-multicast dissemination against the blind
// h = 4 lookahead on identically loaded indexes.
func BenchmarkRangeDissemination(b *testing.B) {
	const records = 800
	q := spatial.Rect{Lo: spatial.Point{0.2, 0.3}, Hi: spatial.Point{0.7, 0.8}}
	b.Run("lookahead-4", func(b *testing.B) {
		ix := benchRangeIndex(b, false, records)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ix.RangeQueryParallel(q, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("multicast", func(b *testing.B) {
		ix := benchRangeIndex(b, true, records)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ix.RangeQuery(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBucketAppend measures the ingest hot path: appending a record
// into a bucket with spare arena capacity. Paired with
// TestBucketAppendZeroAlloc, the ReportAllocs number is the CI gate.
func BenchmarkBucketAppend(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	bk := NewBucket(bitlabel.Root(2), randomRecords(rng, 100, 2))
	rec := spatial.Record{Key: spatial.Point{0.5, 0.5}, Data: "payload"}
	bk = bk.Append(rec) // grow once; the loop appends into spare capacity
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bk.Append(rec)
	}
}

// BenchmarkBucketScan walks every record of a θ-sized bucket through the
// columnar accessors — the inner loop of every range-query filter.
func BenchmarkBucketScan(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	bk := NewBucket(bitlabel.Root(2), randomRecords(rng, 100, 2))
	q := spatial.Rect{Lo: spatial.Point{0.25, 0.25}, Hi: spatial.Point{0.75, 0.75}}
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		for j, n := 0, bk.Load(); j < n; j++ {
			if q.Contains(bk.KeyAt(j)) {
				hits++
			}
		}
	}
	_ = hits
}
