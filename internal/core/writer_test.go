package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/spatial"
)

// genRecords builds a deterministic record stream.
func genRecords(seed int64, n int) []spatial.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]spatial.Record, n)
	for i := range recs {
		recs[i] = spatial.Record{
			Key:  spatial.Point{rng.Float64(), rng.Float64()},
			Data: fmt.Sprintf("r%d", i),
		}
	}
	return recs
}

// sameTree asserts two indexes hold identical leaf frontiers with identical
// bucket contents.
func sameTree(t *testing.T, a, b *Index) {
	t.Helper()
	ab, err := a.Buckets()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Buckets()
	if err != nil {
		t.Fatal(err)
	}
	if len(ab) != len(bb) {
		t.Fatalf("tree mismatch: %d vs %d buckets", len(ab), len(bb))
	}
	byLabel := map[string]Bucket{}
	for _, x := range bb {
		byLabel[x.Label.String()] = x
	}
	for _, x := range ab {
		other, ok := byLabel[x.Label.String()]
		if !ok {
			t.Fatalf("bucket %v missing from the other tree", x.Label)
		}
		if !sameRecordSet(x.Records(), other.Records()) {
			t.Fatalf("bucket %v contents differ", x.Label)
		}
	}
}

// TestInsertBatchEquivalentToSequential is the stats-equality acceptance
// test of the group-commit engine: on the same record stream, batched and
// sequential ingestion must produce identical final trees and identical
// Splits/RecordsMoved accounting — batching amortises DHT round trips, it
// never changes what maintenance logically happened.
func TestInsertBatchEquivalentToSequential(t *testing.T) {
	for _, tc := range []struct {
		name  string
		opts  Options
		chunk int
	}{
		{"threshold-wholestream", Options{ThetaSplit: 16, ThetaMerge: 8, MaxDepth: 24}, 0},
		{"threshold-chunks", Options{ThetaSplit: 16, ThetaMerge: 8, MaxDepth: 24}, 37},
		{"dataaware-wholestream", Options{Strategy: SplitDataAware, Epsilon: 12, ThetaSplit: 16, ThetaMerge: 8, MaxDepth: 24}, 0},
		{"dataaware-chunks", Options{Strategy: SplitDataAware, Epsilon: 12, ThetaSplit: 16, ThetaMerge: 8, MaxDepth: 24}, 53},
	} {
		t.Run(tc.name, func(t *testing.T) {
			records := genRecords(1234, 2000)

			seq, err := New(dht.MustNewLocal(16), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, rec := range records {
				if err := seq.Insert(rec); err != nil {
					t.Fatal(err)
				}
			}

			bat, err := New(dht.MustNewLocal(16), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			chunk := tc.chunk
			if chunk == 0 {
				chunk = len(records)
			}
			for at := 0; at < len(records); at += chunk {
				end := at + chunk
				if end > len(records) {
					end = len(records)
				}
				for i, err := range bat.InsertBatch(records[at:end]) {
					if err != nil {
						t.Fatalf("batched record %d: %v", at+i, err)
					}
				}
			}

			sameTree(t, seq, bat)
			ss, bs := seq.Stats(), bat.Stats()
			if ss.Splits != bs.Splits {
				t.Errorf("Splits: sequential %d, batched %d", ss.Splits, bs.Splits)
			}
			if ss.RecordsMoved != bs.RecordsMoved {
				t.Errorf("RecordsMoved: sequential %d, batched %d", ss.RecordsMoved, bs.RecordsMoved)
			}
			// The whole point: batching must not cost MORE DHT operations.
			if bs.DHTLookups > ss.DHTLookups {
				t.Errorf("DHTLookups: batched %d exceeds sequential %d", bs.DHTLookups, ss.DHTLookups)
			}
		})
	}
}

// TestInsertBatchValidationPositional pins per-record validation: bad
// records fail in place, good ones land.
func TestInsertBatchValidationPositional(t *testing.T) {
	ix, err := New(dht.MustNewLocal(8), Options{ThetaSplit: 8, ThetaMerge: 4})
	if err != nil {
		t.Fatal(err)
	}
	recs := []spatial.Record{
		{Key: spatial.Point{0.1, 0.2}, Data: "ok-0"},
		{Key: spatial.Point{0.5}, Data: "wrong-dims"},
		{Key: spatial.Point{1.5, 0.5}, Data: "outside"},
		{Key: spatial.Point{0.9, 0.9}, Data: "ok-1"},
	}
	errs := ix.InsertBatch(recs)
	if errs[0] != nil || errs[3] != nil {
		t.Errorf("valid records errored: %v, %v", errs[0], errs[3])
	}
	if !errors.Is(errs[1], ErrDimension) {
		t.Errorf("wrong-dims = %v, want ErrDimension", errs[1])
	}
	if errs[2] == nil {
		t.Error("outside-cube record accepted")
	}
	if got, _ := ix.Size(); got != 2 {
		t.Errorf("index holds %d records, want 2", got)
	}
	if errs := ix.InsertBatch(nil); len(errs) != 0 {
		t.Errorf("empty batch returned %d errors", len(errs))
	}
}

// TestInsertBatchSingleLeafManySplits drives one batch that splits a single
// leaf several levels deep: the replay must cascade splits exactly as the
// sequential stream would.
func TestInsertBatchSingleLeafManySplits(t *testing.T) {
	opts := Options{ThetaSplit: 4, ThetaMerge: 2, MaxDepth: 20}
	seq, _ := New(dht.MustNewLocal(8), opts)
	bat, _ := New(dht.MustNewLocal(8), opts)
	// All records in one quadrant: every split keeps cascading locally.
	rng := rand.New(rand.NewSource(5))
	recs := make([]spatial.Record, 200)
	for i := range recs {
		recs[i] = spatial.Record{
			Key:  spatial.Point{rng.Float64() * 0.25, rng.Float64() * 0.25},
			Data: fmt.Sprintf("q%d", i),
		}
	}
	for _, r := range recs {
		if err := seq.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	for i, err := range bat.InsertBatch(recs) {
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	sameTree(t, seq, bat)
	ss, bs := seq.Stats(), bat.Stats()
	if ss.Splits != bs.Splits || ss.RecordsMoved != bs.RecordsMoved {
		t.Errorf("stats diverged: seq splits/moved %d/%d, batch %d/%d",
			ss.Splits, ss.RecordsMoved, bs.Splits, bs.RecordsMoved)
	}
}

// TestWriterCoalescesConcurrentInserts hammers the group-commit Writer from
// many goroutines: every record must land exactly once, with insert-level
// error semantics, while commits batch whatever overlaps.
func TestWriterCoalescesConcurrentInserts(t *testing.T) {
	ix, err := New(dht.MustNewLocal(16), Options{
		ThetaSplit:  8,
		ThetaMerge:  4,
		MaxInFlight: 8,
		WriterBatch: 32,
		Sleep:       dht.NoSleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := ix.Writer()
	if w != ix.Writer() {
		t.Fatal("Writer() is not a stable singleton")
	}
	const (
		goroutines = 8
		perG       = 50
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				rec := spatial.Record{
					Key:  spatial.Point{rng.Float64(), rng.Float64()},
					Data: fmt.Sprintf("w%d-%d", g, i),
				}
				if err := w.Insert(rec); err != nil {
					t.Errorf("writer insert: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got, err := ix.Size(); err != nil || got != goroutines*perG {
		t.Fatalf("index holds %d records (err %v), want %d", got, err, goroutines*perG)
	}
	// Every record must be findable — the trees the commits built are
	// consistent, not just complete.
	for g := 0; g < goroutines; g++ {
		rng := rand.New(rand.NewSource(int64(g)))
		for i := 0; i < perG; i++ {
			p := spatial.Point{rng.Float64(), rng.Float64()}
			recs, err := ix.Exact(p)
			if err != nil {
				t.Fatalf("exact(%v): %v", p, err)
			}
			if len(recs) == 0 {
				t.Fatalf("record w%d-%d at %v not found", g, i, p)
			}
		}
	}
}

// TestInsertBatchRangeQueryRaceStress runs concurrent InsertBatch commits
// against parallel range queries over one shared index — the write-path
// counterpart of TestRangeQueryParallelRaceStress, here for the race
// detector: group-commit replay, batched placement, cache maintenance, and
// the query engine must all be race-clean while the tree restructures.
func TestInsertBatchRangeQueryRaceStress(t *testing.T) {
	ix, err := New(dht.MustNewLocal(16), Options{
		ThetaSplit:  8,
		ThetaMerge:  4,
		MaxInFlight: 8,
		CacheSize:   32,
		Sleep:       dht.NoSleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range genRecords(11, 200) {
		if err := ix.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	const writers = 3
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + wr)))
			for round := 0; round < 10; round++ {
				batch := make([]spatial.Record, 20)
				for i := range batch {
					batch[i] = spatial.Record{
						Key:  spatial.Point{rng.Float64(), rng.Float64()},
						Data: fmt.Sprintf("b%d-%d-%d", wr, round, i),
					}
				}
				for i, err := range ix.InsertBatch(batch) {
					if err != nil {
						t.Errorf("writer %d round %d record %d: %v", wr, round, i, err)
						return
					}
				}
			}
		}(wr)
	}
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + q)))
			for i := 0; i < 25; i++ {
				rect := randomRect(rng, 2)
				res, err := ix.RangeQueryParallel(rect, 4)
				if err != nil {
					if errors.Is(err, ErrNotFound) {
						continue
					}
					t.Errorf("querier %d: %v", q, err)
					return
				}
				for _, r := range res.Records {
					if !rect.Contains(r.Key) {
						t.Errorf("querier %d: record %v outside %v", q, r.Key, rect)
						return
					}
				}
			}
		}(q)
	}
	wg.Wait()
	if got, err := ix.Size(); err != nil || got != 200+writers*10*20 {
		t.Fatalf("index holds %d records (err %v), want %d", got, err, 200+writers*10*20)
	}
}
