package core

import (
	"fmt"

	"mlight/internal/bitlabel"
	"mlight/internal/spatial"
)

// QueryResult carries the answer and the cost of one range query, in the
// paper's units: total DHT-lookups (bandwidth, Fig. 7a) and rounds of
// DHT-lookups on the critical path (latency, Fig. 7b).
type QueryResult struct {
	Records []spatial.Record
	Lookups int
	Rounds  int
}

// queryCtx carries the per-query options through the recursive
// decomposition: the parallel lookahead h and, for arbitrary-shape queries,
// the shape used for subtree pruning and final filtering.
type queryCtx struct {
	h     int
	shape spatial.Shape
}

// RangeQuery answers a multi-dimensional range query with the basic
// algorithm of §6 (Algorithms 2 and 3): route to the corner cell of the
// range's lowest common ancestor, then recursively decompose the range over
// the branch nodes of each reached cell's local tree. Subranges never
// overlap, so no bucket is visited redundantly.
func (ix *Index) RangeQuery(q spatial.Rect) (*QueryResult, error) {
	return ix.rangeQuery(q, queryCtx{h: 1})
}

// RangeQueryParallel is the parallel variant of §6: at every forwarding
// step a branch node's subrange is speculatively pre-split into up to h
// pieces along the (globally known) space partitioning, and all pieces are
// probed in the same round. Larger h shortens the critical path and spends
// more DHT-lookups; h = 1 degrades to the basic algorithm.
func (ix *Index) RangeQueryParallel(q spatial.Rect, h int) (*QueryResult, error) {
	if h < 1 {
		return nil, fmt.Errorf("core: lookahead h must be ≥ 1, got %d", h)
	}
	return ix.rangeQuery(q, queryCtx{h: h})
}

// ShapeQuery answers a query over an arbitrarily shaped region (§6 notes
// the queried region "can be of an arbitrary shape"): the shape's bounding
// box drives the kd-tree decomposition, subtrees whose cells provably miss
// the shape are pruned, and records are filtered by exact membership.
func (ix *Index) ShapeQuery(s spatial.Shape) (*QueryResult, error) {
	return ix.shapeQuery(s, 1)
}

// ShapeQueryParallel is ShapeQuery with the parallel lookahead h.
func (ix *Index) ShapeQueryParallel(s spatial.Shape, h int) (*QueryResult, error) {
	if h < 1 {
		return nil, fmt.Errorf("core: lookahead h must be ≥ 1, got %d", h)
	}
	return ix.shapeQuery(s, h)
}

func (ix *Index) shapeQuery(s spatial.Shape, h int) (*QueryResult, error) {
	if s == nil {
		return nil, fmt.Errorf("core: nil shape")
	}
	bound := s.BoundingBox()
	clamped := spatial.Rect{Lo: clampPoint(bound.Lo), Hi: clampPoint(bound.Hi)}
	return ix.rangeQuery(clamped, queryCtx{h: h, shape: s})
}

func (ix *Index) rangeQuery(q spatial.Rect, ctx queryCtx) (*QueryResult, error) {
	m := ix.opts.Dims
	if q.Dim() != m {
		return nil, fmt.Errorf("%w: query has %d dims, index has %d", ErrDimension, q.Dim(), m)
	}
	if _, err := spatial.NewRect(q.Lo, q.Hi); err != nil {
		return nil, fmt.Errorf("core: invalid query rectangle: %w", err)
	}
	res := &QueryResult{}

	lca, err := spatial.LCALabel(q, m, ix.opts.MaxDepth)
	if err != nil {
		return nil, err
	}
	b, found, err := ix.getBucket(bitlabel.Name(lca, m), nil)
	res.Lookups++
	if err != nil {
		return nil, err
	}
	if !found {
		// The LCA is not an internal node, so the whole range lies inside
		// one leaf (Algorithm 2 lines 3–4): find it by looking up a corner
		// of the range.
		leaf, trace, err := ix.LookupTraced(clampPoint(q.Lo))
		if err != nil {
			return nil, err
		}
		res.Lookups += trace.Probes
		res.Rounds = 1 + trace.Probes
		res.Records = filterRecords(leaf.Records, q, ctx.shape)
		return res, nil
	}
	recs, rounds, lookups, err := ix.process(q, lca, b, ctx)
	if err != nil {
		return nil, err
	}
	res.Records = append(res.Records, recs...)
	res.Lookups += lookups
	res.Rounds = 1 + rounds
	return res, nil
}

// process handles a bucket b fetched as the corner cell of node β with
// (clipped) subrange q: it collects b's matching records and forwards the
// remainder of q to the branch nodes of b's local tree below β
// (Algorithm 3). The returned rounds and lookups exclude the fetch of b
// itself.
func (ix *Index) process(q spatial.Rect, beta bitlabel.Label, b Bucket, ctx queryCtx) (records []spatial.Record, rounds, lookups int, err error) {
	m := ix.opts.Dims
	records = filterRecords(b.Records, q, ctx.shape)
	leafRegion, err := spatial.RegionOf(b.Label, m)
	if err != nil {
		return nil, 0, 0, err
	}
	if leafRegion.Covers(q) {
		return records, 0, 0, nil
	}
	// Decompose over the branch nodes of b's local tree strictly below β
	// (Algorithm 3).
	local, err := bitlabel.NewLocalTree(b.Label, m)
	if err != nil {
		return nil, 0, 0, err
	}
	for _, branch := range local.BranchNodesBelow(beta) {
		g, regionErr := spatial.RegionOf(branch, m)
		if regionErr != nil {
			return nil, 0, 0, regionErr
		}
		sub, overlaps := g.Intersect(q)
		if !overlaps {
			continue
		}
		if ctx.shape != nil && !ctx.shape.IntersectsRect(sub) {
			continue // the shape provably misses this subtree
		}
		recs, r, lk, subErr := ix.subquery(sub, branch, ctx)
		if subErr != nil {
			return nil, 0, 0, subErr
		}
		records = append(records, recs...)
		lookups += lk
		if r > rounds {
			rounds = r // branch subqueries proceed in parallel
		}
	}
	return records, rounds, lookups, nil
}

// subquery resolves subrange q against the subtree rooted at node β. With
// h > 1 the subrange is pre-split into up to h pieces probed in one round.
// The returned rounds include the round that fetches the pieces' buckets.
func (ix *Index) subquery(q spatial.Rect, beta bitlabel.Label, ctx queryCtx) (records []spatial.Record, rounds, lookups int, err error) {
	pieces := []piece{{node: beta, base: beta, q: q}}
	if ctx.h > 1 {
		pieces = ix.speculate(beta, q, ctx)
	}
	for _, p := range pieces {
		recs, r, lk, pieceErr := ix.resolvePiece(p, ctx)
		if pieceErr != nil {
			return nil, 0, 0, pieceErr
		}
		records = append(records, recs...)
		lookups += lk
		if r > rounds {
			rounds = r // pieces are probed in parallel
		}
	}
	return records, rounds, lookups, nil
}

// resolvePiece fetches the bucket named to one piece's node and continues
// the decomposition there. Speculative nodes may lie below the actual tree:
// a missing bucket means some leaf between the piece's base node and its
// speculative node covers the whole piece; that leaf is found by probing
// the names of all intermediate ancestors in a single parallel round — more
// bandwidth, no extra latency, exactly the parallel algorithm's trade.
func (ix *Index) resolvePiece(p piece, ctx queryCtx) (records []spatial.Record, rounds, lookups int, err error) {
	m := ix.opts.Dims
	b, found, err := ix.getBucket(bitlabel.Name(p.node, m), nil)
	lookups = 1
	rounds = 1
	if err != nil {
		return nil, 0, 0, err
	}
	if !found {
		leaf, extraLookups, extraRounds, fallbackErr := ix.coveringLeaf(p)
		if fallbackErr != nil {
			return nil, 0, 0, fallbackErr
		}
		lookups += extraLookups
		rounds += extraRounds
		return filterRecords(leaf.Records, p.q, ctx.shape), rounds, lookups, nil
	}
	if b.Label == p.node {
		// The node itself is a leaf; it covers the piece entirely.
		return filterRecords(b.Records, p.q, ctx.shape), rounds, lookups, nil
	}
	recs, r, lk, err := ix.process(p.q, p.node, b, ctx)
	if err != nil {
		return nil, 0, 0, err
	}
	return recs, rounds + r, lookups + lk, nil
}

// piece is a speculative (node, subrange) unit of parallel forwarding.
// base is the real tree node the speculation started from, bounding where
// the covering leaf can sit when the speculative node overshoots the tree.
type piece struct {
	node bitlabel.Label
	base bitlabel.Label
	q    spatial.Rect
}

// coveringLeaf recovers from a speculative overshoot: the leaf covering the
// piece is one of the labels between the piece's base (inclusive) and its
// node (exclusive), so probing all their names in one parallel round finds
// it. Names of nested prefixes can coincide, so probes are deduplicated.
func (ix *Index) coveringLeaf(p piece) (Bucket, int, int, error) {
	m := ix.opts.Dims
	probed := map[bitlabel.Label]bool{bitlabel.Name(p.node, m): true} // already missed
	lookups := 0
	for j := p.node.Len() - 1; j >= p.base.Len(); j-- {
		cand := p.node.Prefix(j)
		name := bitlabel.Name(cand, m)
		if probed[name] {
			continue
		}
		probed[name] = true
		b, found, err := ix.getBucket(name, nil)
		lookups++
		if err != nil {
			return Bucket{}, 0, 0, err
		}
		if found && b.Label.IsPrefixOf(p.node) {
			return b, lookups, 1, nil
		}
	}
	// The parallel probe round failed to surface the leaf (possible only
	// under concurrent restructuring); fall back to a sequential lookup.
	leaf, trace, err := ix.LookupTraced(clampPoint(p.q.Lo))
	if err != nil {
		return Bucket{}, 0, 0, err
	}
	return leaf, lookups + trace.Probes, 1 + trace.Probes, nil
}

// speculate pre-splits subrange q below node β into up to h pieces by
// descending the deterministic space partitioning — no DHT traffic is
// needed because every peer knows the global partitioning rule (§3.2).
func (ix *Index) speculate(beta bitlabel.Label, q spatial.Rect, ctx queryCtx) []piece {
	m := ix.opts.Dims
	queue := []piece{{node: beta, base: beta, q: q}}
	var done []piece
	guard := 0
	for len(queue) > 0 && len(queue)+len(done) < ctx.h && guard < 64*ctx.h {
		guard++
		p := queue[0]
		queue = queue[1:]
		if ix.remainingDepth(p.node) <= 0 || p.node.Len() >= bitlabel.MaxLen {
			done = append(done, p)
			continue
		}
		expanded := false
		for _, bit := range []byte{0, 1} {
			child := p.node.MustAppend(bit)
			g, err := spatial.RegionOf(child, m)
			if err != nil {
				continue
			}
			sub, overlaps := g.Intersect(p.q)
			if !overlaps {
				continue
			}
			if ctx.shape != nil && !ctx.shape.IntersectsRect(sub) {
				continue
			}
			queue = append(queue, piece{node: child, base: beta, q: sub})
			expanded = true
		}
		if !expanded {
			done = append(done, p)
		}
	}
	return append(done, queue...)
}

// filterRecords returns the records inside q (and inside the shape, when
// one is given).
func filterRecords(records []spatial.Record, q spatial.Rect, shape spatial.Shape) []spatial.Record {
	var out []spatial.Record
	for _, r := range records {
		if !q.Contains(r.Key) {
			continue
		}
		if shape != nil && !shape.ContainsPoint(r.Key) {
			continue
		}
		out = append(out, r)
	}
	return out
}

// clampPoint nudges a rectangle corner into the unit cube's valid key
// domain.
func clampPoint(p spatial.Point) spatial.Point {
	out := p.Clone()
	for i, c := range out {
		if c < 0 {
			out[i] = 0
		}
		if c > 1 {
			out[i] = 1
		}
	}
	return out
}
