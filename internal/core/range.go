package core

import (
	"fmt"
	"strconv"
	"sync"

	"mlight/internal/bitlabel"
	"mlight/internal/index"
	"mlight/internal/spatial"
	"mlight/internal/trace"
)

// QueryResult carries the answer and the cost of one range query, in the
// paper's units: total DHT-lookups (bandwidth, Fig. 7a) and rounds of
// DHT-lookups on the critical path (latency, Fig. 7b). It is the shared
// result type of the index contract package, so all three indexes in this
// repository answer queries with the same type.
type QueryResult = index.Result

// queryCtx carries the per-query options through the decomposition: the
// parallel lookahead h, the multicast engine switch, and, for
// arbitrary-shape queries, the shape used for subtree pruning and final
// filtering. span is the query's trace span (zero when tracing is
// disabled).
type queryCtx struct {
	h         int
	multicast bool
	shape     spatial.Shape
	span      trace.SpanID
}

// RangeQuery answers a multi-dimensional range query with the basic
// algorithm of §6 (Algorithms 2 and 3): route to the corner cell of the
// range's lowest common ancestor, then recursively decompose the range over
// the branch nodes of each reached cell's local tree. Subranges never
// overlap, so no bucket is visited redundantly.
func (ix *Index) RangeQuery(q spatial.Rect) (*QueryResult, error) {
	return ix.rangeQuery(q, queryCtx{h: 1})
}

// RangeQueryParallel is the parallel variant of §6: at every forwarding
// step a branch node's subrange is speculatively pre-split into up to h
// pieces along the (globally known) space partitioning, and all pieces are
// probed in the same round. Larger h shortens the critical path and spends
// more DHT-lookups; h = 1 degrades to the basic algorithm.
func (ix *Index) RangeQueryParallel(q spatial.Rect, h int) (*QueryResult, error) {
	if h < 1 {
		return nil, fmt.Errorf("core: lookahead h must be ≥ 1, got %d", h)
	}
	return ix.rangeQuery(q, queryCtx{h: h})
}

// ShapeQuery answers a query over an arbitrarily shaped region (§6 notes
// the queried region "can be of an arbitrary shape"): the shape's bounding
// box drives the kd-tree decomposition, subtrees whose cells provably miss
// the shape are pruned, and records are filtered by exact membership.
func (ix *Index) ShapeQuery(s spatial.Shape) (*QueryResult, error) {
	return ix.shapeQuery(s, 1)
}

// ShapeQueryParallel is ShapeQuery with the parallel lookahead h.
func (ix *Index) ShapeQueryParallel(s spatial.Shape, h int) (*QueryResult, error) {
	if h < 1 {
		return nil, fmt.Errorf("core: lookahead h must be ≥ 1, got %d", h)
	}
	return ix.shapeQuery(s, h)
}

func (ix *Index) shapeQuery(s spatial.Shape, h int) (*QueryResult, error) {
	if s == nil {
		return nil, fmt.Errorf("core: nil shape")
	}
	bound := s.BoundingBox()
	clamped := spatial.Rect{Lo: clampPoint(bound.Lo), Hi: clampPoint(bound.Hi)}
	return ix.rangeQuery(clamped, queryCtx{h: h, shape: s})
}

// rangeQuery drives the round-synchronous execution engine: every round the
// current frontier of independent DHT probes is issued as one concurrent
// batch (bounded by Options.MaxInFlight), a barrier waits for the whole
// batch, and the results generate the next frontier. Rounds therefore
// equals the number of synchronous batch barriers — the paper's latency
// unit — and wall-clock latency over a latency-bearing substrate scales
// with Rounds, not Lookups. MaxInFlight = 1 degrades to fully sequential
// execution with identical Records, Lookups, and Rounds: the cap changes
// only how probes overlap, never what is probed.
func (ix *Index) rangeQuery(q spatial.Rect, ctx queryCtx) (res *QueryResult, err error) {
	// Options.Multicast switches the engine for every public entry point;
	// internal callers (tests, experiments) may also set ctx.multicast
	// directly to drive one query through the multicast path.
	ctx.multicast = ctx.multicast || ix.opts.Multicast
	if tc := ix.opts.Trace; tc != nil {
		kind := "range"
		if ctx.shape != nil {
			kind = "shape"
		}
		engine := "rounds"
		if ctx.multicast {
			engine = "multicast"
		}
		ctx.span = tc.Begin(0, trace.KindQuery, kind,
			trace.Int("h", int64(ctx.h)), trace.Str("engine", engine))
		defer func() {
			if err != nil {
				tc.End(ctx.span, trace.Str("error", err.Error()))
				return
			}
			tc.End(ctx.span,
				trace.Int("lookups", int64(res.Lookups)),
				trace.Int("rounds", int64(res.Rounds)),
				trace.Int("records", int64(len(res.Records))))
		}()
	}
	return ix.rangeQueryCtx(q, ctx)
}

func (ix *Index) rangeQueryCtx(q spatial.Rect, ctx queryCtx) (*QueryResult, error) {
	m := ix.opts.Dims
	if q.Dim() != m {
		return nil, fmt.Errorf("%w: query has %d dims, index has %d", ErrDimension, q.Dim(), m)
	}
	if _, err := spatial.NewRect(q.Lo, q.Hi); err != nil {
		return nil, fmt.Errorf("core: invalid query rectangle: %w", err)
	}

	lca, err := spatial.LCALabel(q, m, ix.opts.MaxDepth)
	if err != nil {
		return nil, err
	}
	res := &QueryResult{}
	b, found, err := ix.getBucketSpan(bitlabel.Name(lca, m), nil, ctx.span)
	res.Lookups++
	res.Rounds++
	if err != nil {
		return nil, err
	}
	if !found {
		// The LCA is not an internal node, so the whole range lies inside
		// one leaf (Algorithm 2 lines 3–4): find it by looking up a corner
		// of the range.
		var lt LookupTrace
		leaf, err := ix.lookup(clampPoint(q.Lo), &lt, ctx.span)
		if err != nil {
			return nil, err
		}
		res.Lookups += lt.Probes
		res.Rounds += lt.Probes
		res.Records = filterRecords(leaf, q, ctx.shape)
		return res, nil
	}

	eng := &rangeEngine{ix: ix, ctx: ctx}
	root := &execNode{}
	frontier, err := eng.expand(q, lca, b, root)
	if err != nil {
		return nil, err
	}
	if err := eng.run(frontier); err != nil {
		return nil, err
	}
	res.Lookups += eng.lookups
	res.Rounds += eng.barriers + eng.extraRounds
	res.Records = root.collect(res.Records)
	return res, nil
}

// rangeEngine executes one query's decomposition as synchronized rounds of
// concurrent probes, accumulating the cost accounting.
type rangeEngine struct {
	ix  *Index
	ctx queryCtx

	// lookups counts every DHT probe issued; barriers counts completed
	// batch rounds. extraRounds accounts the rare sequential recovery
	// lookup (possible only under concurrent restructuring), whose probes
	// are serial rounds the barrier count cannot see.
	lookups     int
	barriers    int
	extraRounds int

	// candMu guards candResults, the current round's shared hedge-probe
	// outcomes keyed by probed name (multicast engine only; the wide
	// multicast frontier makes sibling pieces hedge heavily overlapping
	// ancestor ladders, so each distinct name is probed and charged once
	// per round — see coalesceCands and resolveHedged).
	candMu      sync.Mutex
	candResults map[bitlabel.Label]bucketProbe
}

// execNode is one node of the query's execution tree. Each frontier item
// owns exactly one node and writes only to it, so concurrent workers never
// share state; the tree's depth-first order reproduces the deterministic
// result ordering of the sequential decomposition regardless of probe
// completion order.
type execNode struct {
	records  []spatial.Record
	children []*execNode
}

// collect appends the subtree's records in depth-first order.
func (n *execNode) collect(out []spatial.Record) []spatial.Record {
	out = append(out, n.records...)
	for _, c := range n.children {
		out = c.collect(out)
	}
	return out
}

// itemKind discriminates frontier work items.
type itemKind int

const (
	// itemProbe fetches the bucket named to a piece's node and expands the
	// decomposition there.
	itemProbe itemKind = iota
	// itemCand probes one covering-leaf candidate of an overshot piece; all
	// of a piece's candidates run in the same round and are adjudicated
	// together at the barrier.
	itemCand
	// itemFallback runs the sequential recovery lookup after the candidate
	// round failed to surface the covering leaf (possible only under
	// concurrent restructuring).
	itemFallback
	// itemHedge probes one ancestor-ladder name of the multicast engine's
	// speculative pieces in the same round as the pieces themselves, so an
	// overshot piece resolves its covering leaf at this round's barrier
	// instead of waiting for a follow-up candidate round.
	itemHedge
)

// frontierItem is one unit of work inside a round.
type frontierItem struct {
	kind itemKind
	p    piece
	node *execNode
	// group links itemCand items of the same overshot piece; slot is this
	// candidate's priority position inside it.
	group *coverGroup
	slot  int
	// name is the DHT name an itemHedge probes.
	name bitlabel.Label
	// dup marks a hedge whose name is already probed by an earlier item of
	// the same round (see coalesceCands); the item executes as a no-op and
	// overshot pieces read the owner's shared result.
	dup bool
}

// coverGroup gathers the covering-leaf candidate probes of one overshot
// piece. Candidates are ordered deepest-first, matching the priority the
// paper's parallel recovery implies: the first candidate (in that order)
// whose bucket is a prefix of the overshot node is the covering leaf.
//
// In the lookahead engine probing early-exits on the first hit, like the
// sequential reference: a candidate slot launches only while no lower slot
// has already qualified, so under sequential execution the scan stops
// exactly where the recursive algorithm stopped. Under concurrent execution
// slots past the first hit may race and probe anyway; those probes are
// physical overhead only — the logical charge, computed at adjudication, is
// always the deterministic "slots up to and including the first hit" (or
// all slots on a total miss), identical to the sequential cost.
//
// The multicast engine does not use candidate groups at all: it hedges
// every speculative piece's ancestor ladder in the piece's own round and
// resolves overshoots at that round's barrier — see expand, executeHedge,
// and resolveHedged.
type coverGroup struct {
	p     piece
	node  *execNode
	names []bitlabel.Label

	mu    sync.Mutex
	found []bucketProbe
	// hit is the lowest qualifying slot recorded so far; len(names) while
	// none has qualified.
	hit int
}

// skip reports whether the slot's probe can be elided because a
// strictly-lower slot already holds the covering leaf.
func (g *coverGroup) skip(slot int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.hit < slot
}

// record stores one completed probe's outcome.
func (g *coverGroup) record(slot int, pr bucketProbe, qualifies bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.found[slot] = pr
	if qualifies && slot < g.hit {
		g.hit = slot
	}
}

// bucketProbe is one completed probe's outcome.
type bucketProbe struct {
	b     Bucket
	found bool
}

// itemResult is what executing one frontier item produces: the next round's
// items it generated, plus accounting adjustments.
type itemResult struct {
	next        []frontierItem
	lookups     int
	extraRounds int
	err         error
	// missed marks a multicast piece probe that found no bucket: its
	// covering leaf is resolved at the barrier from the round's hedge
	// results (see resolveHedged).
	missed bool
}

// run executes rounds until the frontier drains. Each round is one
// synchronous batch barrier: all items are issued through a bounded worker
// pool, the barrier waits for every probe, and the (deterministically
// ordered) results build the next frontier.
func (e *rangeEngine) run(frontier []frontierItem) error {
	tc := e.ix.opts.Trace
	for len(frontier) > 0 {
		if e.ctx.multicast {
			e.coalesceCands(frontier)
		}
		e.barriers++
		e.ix.stats.BatchRounds.Inc()
		e.ix.stats.BatchProbes.Add(int64(len(frontier)))
		inFlight := len(frontier)
		if e.ix.opts.MaxInFlight < inFlight {
			inFlight = e.ix.opts.MaxInFlight
		}
		e.ix.stats.MaxInFlight.Observe(int64(inFlight))

		var round trace.SpanID
		if tc != nil {
			round = tc.Begin(e.ctx.span, trace.KindRound, strconv.Itoa(e.barriers),
				trace.Int("items", int64(len(frontier))),
				trace.Int("in_flight", int64(inFlight)))
		}
		results := e.runBatch(frontier, round)
		if tc != nil {
			tc.End(round)
		}

		var next []frontierItem
		resolved := map[*coverGroup]bool{}
		for i := range frontier {
			r := &results[i]
			e.lookups += r.lookups
			if r.err != nil {
				return r.err
			}
			if r.extraRounds > e.extraRounds {
				e.extraRounds = r.extraRounds
			}
			next = append(next, r.next...)
			if r.missed {
				// An overshot multicast piece: its ancestor-ladder hedges
				// ran in this same round, so the covering leaf resolves at
				// this barrier from the shared results.
				if item, ok := e.resolveHedged(frontier[i]); !ok {
					next = append(next, item)
				}
			}
			// All candidate probes of a group live in this same round, so
			// the group is adjudicable as soon as its first member is
			// reached in order.
			if g := frontier[i].group; g != nil && !resolved[g] {
				resolved[g] = true
				item, done := e.adjudicate(g)
				if !done {
					next = append(next, item)
				}
			}
		}
		frontier = next
	}
	return nil
}

// coalesceCands prepares one multicast round's hedge probes: the first
// item carrying each distinct name owns its probe, later items with the
// same name are marked dup and read the shared result at the barrier. The
// ownership assignment follows frontier order, so the probed-name set — and
// with it the round's lookup charge — is deterministic regardless of how
// the round's items are scheduled.
func (e *rangeEngine) coalesceCands(frontier []frontierItem) {
	e.candResults = make(map[bitlabel.Label]bucketProbe)
	owned := make(map[bitlabel.Label]bool)
	for i := range frontier {
		it := &frontier[i]
		if it.kind != itemHedge {
			continue
		}
		if owned[it.name] {
			it.dup = true
			continue
		}
		owned[it.name] = true
	}
}

// runBatch executes one round's items concurrently, bounded by
// Options.MaxInFlight. Results are positional. With a single worker (or a
// single item) everything runs inline on the calling goroutine, which keeps
// the sequential execution mode allocation-light and exactly ordered.
func (e *rangeEngine) runBatch(items []frontierItem, round trace.SpanID) []itemResult {
	results := make([]itemResult, len(items))
	workers := e.ix.opts.MaxInFlight
	if workers == 1 || len(items) == 1 {
		for i := range items {
			results[i] = e.execute(items[i], round)
		}
		return results
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range items {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = e.execute(items[i], round)
		}(i)
	}
	wg.Wait()
	return results
}

// execute runs one frontier item, recording its probe span under the round
// when tracing is enabled. It touches only the item's own execNode (and,
// for candidates, the item's own group slot), so items of a round never
// race.
func (e *rangeEngine) execute(it frontierItem, round trace.SpanID) itemResult {
	tc := e.ix.opts.Trace
	var span trace.SpanID
	if tc != nil {
		span = tc.Begin(round, trace.KindProbe, probeName(it))
	}
	var res itemResult
	switch it.kind {
	case itemProbe:
		res = e.executeProbe(it, span)
	case itemCand:
		res = e.executeCand(it, span)
	case itemHedge:
		res = e.executeHedge(it, span)
	case itemFallback:
		res = e.executeFallback(it, span)
	default:
		res = itemResult{err: fmt.Errorf("core: unknown frontier item kind %d", it.kind)}
	}
	if tc != nil {
		if res.err != nil {
			tc.End(span, trace.Str("error", res.err.Error()))
		} else {
			tc.End(span, trace.Int("next", int64(len(res.next))))
		}
	}
	return res
}

// probeName labels a frontier item's trace span.
func probeName(it frontierItem) string {
	switch it.kind {
	case itemProbe:
		return it.p.node.String()
	case itemCand:
		return "cand " + it.group.names[it.slot].String() + " slot " + strconv.Itoa(it.slot)
	case itemHedge:
		return "hedge " + it.name.String()
	case itemFallback:
		return "fallback"
	default:
		return "unknown"
	}
}

// executeProbe fetches the bucket named to the piece's node and continues
// the decomposition there. Speculative nodes may lie below the actual tree:
// a missing bucket means some leaf between the piece's base node and its
// speculative node covers the whole piece; that leaf is found by probing
// the names of all intermediate ancestors in the next round's batch — more
// bandwidth, no extra latency, exactly the parallel algorithm's trade.
func (e *rangeEngine) executeProbe(it frontierItem, span trace.SpanID) itemResult {
	m := e.ix.opts.Dims
	res := itemResult{lookups: 1}
	b, found, err := e.ix.getBucketSpan(bitlabel.Name(it.p.node, m), nil, span)
	if err != nil {
		res.err = err
		return res
	}
	if !found {
		if e.ctx.multicast {
			// The ancestor-ladder hedges of this piece ran in this same
			// round; the barrier resolves the covering leaf from them.
			res.missed = true
			return res
		}
		names := coverCandidates(it.p, m)
		if len(names) == 0 {
			// No intermediate ancestors to try: go straight to the
			// sequential recovery lookup next round.
			res.next = []frontierItem{{kind: itemFallback, p: it.p, node: it.node}}
			return res
		}
		g := &coverGroup{p: it.p, node: it.node, names: names,
			found: make([]bucketProbe, len(names)), hit: len(names)}
		for slot := range names {
			res.next = append(res.next, frontierItem{kind: itemCand, p: it.p, group: g, slot: slot})
		}
		return res
	}
	e.ix.cacheLeaf(b)
	if b.Label == it.p.node {
		// The node itself is a leaf; it covers the piece entirely.
		it.node.records = filterRecords(b, it.p.q, e.ctx.shape)
		return res
	}
	next, err := e.expand(it.p.q, it.p.node, b, it.node)
	if err != nil {
		res.err = err
		return res
	}
	res.next = next
	return res
}

// executeHedge probes one ancestor-ladder name on behalf of every
// speculative piece of the round that lists it; dup items (same name, later
// frontier position) are no-ops. Each distinct name costs exactly one
// charged lookup whatever the round's scheduling, so the multicast engine's
// accounting stays deterministic.
func (e *rangeEngine) executeHedge(it frontierItem, span trace.SpanID) itemResult {
	if it.dup {
		return itemResult{}
	}
	b, found, err := e.ix.getBucketRawSpan(it.name, span)
	if err != nil {
		return itemResult{err: err}
	}
	e.candMu.Lock()
	e.candResults[it.name] = bucketProbe{b: b, found: found}
	e.candMu.Unlock()
	e.ix.stats.DHTLookups.Inc()
	return itemResult{lookups: 1}
}

// resolveHedged settles an overshot multicast piece at its round's barrier:
// the deepest ancestor-ladder name holding a bucket that covers the piece's
// node is the covering leaf. The hedges were emitted alongside the piece
// (see expand), so the shared results are complete here. When none
// qualifies (possible only under concurrent restructuring) the sequential
// recovery item is scheduled and ok is false.
func (e *rangeEngine) resolveHedged(it frontierItem) (item frontierItem, ok bool) {
	for _, name := range coverCandidates(it.p, e.ix.opts.Dims) {
		pr := e.candResults[name]
		if pr.found && pr.b.Label.IsPrefixOf(it.p.node) {
			e.ix.cacheLeaf(pr.b)
			it.node.records = filterRecords(pr.b, it.p.q, e.ctx.shape)
			return frontierItem{}, true
		}
	}
	return frontierItem{kind: itemFallback, p: it.p, node: it.node}, false
}

// executeCand probes one covering-leaf candidate, recording the outcome in
// its group slot for adjudication at the barrier. The probe is skipped when
// a lower-priority-index slot already found the covering leaf (the
// early-exit of the sequential reference), and it is issued uncounted: the
// group's deterministic logical charge is added once, at adjudication.
func (e *rangeEngine) executeCand(it frontierItem, span trace.SpanID) itemResult {
	g := it.group
	if g.skip(it.slot) {
		return itemResult{}
	}
	b, found, err := e.ix.getBucketRawSpan(g.names[it.slot], span)
	if err != nil {
		return itemResult{err: err}
	}
	qualifies := found && b.Label.IsPrefixOf(g.p.node)
	g.record(it.slot, bucketProbe{b: b, found: found}, qualifies)
	return itemResult{}
}

// executeFallback recovers with a sequential lookup at a corner of the
// piece. Its probes run serially on this worker, so they are charged as
// extra rounds beyond the barrier the item occupies.
func (e *rangeEngine) executeFallback(it frontierItem, span trace.SpanID) itemResult {
	var lt LookupTrace
	leaf, err := e.ix.lookup(clampPoint(it.p.q.Lo), &lt, span)
	if err != nil {
		return itemResult{err: err}
	}
	it.node.records = filterRecords(leaf, it.p.q, e.ctx.shape)
	return itemResult{lookups: lt.Probes, extraRounds: lt.Probes - 1}
}

// adjudicate resolves a completed candidate round: the first candidate (in
// the group's deepest-first priority order) holding a bucket whose label is
// a prefix of the overshot node is the covering leaf. When no candidate
// qualifies (possible only under concurrent restructuring) a sequential
// fallback item is scheduled; done reports whether the group completed.
//
// The logical charge for the whole group is added here: slots up to and
// including the first hit, or every slot on a total miss — the exact cost
// of the sequential early-exit scan, no matter which extra probes raced.
// The invariant making this sound: a slot is skipped only when a strictly
// lower slot already qualified, so every slot at or below the final first
// hit was genuinely probed, and the slots above it are the over-probing the
// charge excludes.
func (e *rangeEngine) adjudicate(g *coverGroup) (item frontierItem, done bool) {
	g.mu.Lock()
	hit := g.hit
	g.mu.Unlock()
	charged := len(g.names)
	if hit < len(g.names) {
		charged = hit + 1
	}
	e.lookups += charged
	e.ix.stats.DHTLookups.Add(int64(charged))
	if hit < len(g.names) {
		pr := g.found[hit]
		e.ix.cacheLeaf(pr.b)
		g.node.records = filterRecords(pr.b, g.p.q, e.ctx.shape)
		return frontierItem{}, true
	}
	return frontierItem{kind: itemFallback, p: g.p, node: g.node}, false
}

// coverCandidates returns the DHT names to probe when a speculative piece
// overshoots the tree: the covering leaf is one of the labels between the
// piece's base (inclusive) and its node (exclusive), deepest first. Names
// of nested prefixes can coincide, so probes are deduplicated; the name
// that already missed is excluded.
func coverCandidates(p piece, m int) []bitlabel.Label {
	probed := map[bitlabel.Label]bool{bitlabel.Name(p.node, m): true} // already missed
	var names []bitlabel.Label
	for j := p.node.Len() - 1; j >= p.base.Len(); j-- {
		name := bitlabel.Name(p.node.Prefix(j), m)
		if probed[name] {
			continue
		}
		probed[name] = true
		names = append(names, name)
	}
	return names
}

// expand handles a bucket b fetched as the corner cell of node β with
// (clipped) subrange q: it collects b's matching records into the execution
// node and forwards the remainder of q to the branch nodes of b's local
// tree below β (Algorithm 3), emitting one next-round probe per piece. All
// emitted probes join the same batch barrier, so sibling subqueries — and,
// with h > 1, their speculative pieces — genuinely overlap.
func (e *rangeEngine) expand(q spatial.Rect, beta bitlabel.Label, b Bucket, node *execNode) ([]frontierItem, error) {
	m := e.ix.opts.Dims
	node.records = filterRecords(b, q, e.ctx.shape)
	leafRegion, err := spatial.RegionOf(b.Label, m)
	if err != nil {
		return nil, err
	}
	if leafRegion.Covers(q) {
		return nil, nil
	}
	// Decompose over the branch nodes of b's local tree strictly below β
	// (Algorithm 3).
	local, err := bitlabel.NewLocalTree(b.Label, m)
	if err != nil {
		return nil, err
	}
	var items []frontierItem
	for _, branch := range local.BranchNodesBelow(beta) {
		g, regionErr := spatial.RegionOf(branch, m)
		if regionErr != nil {
			return nil, regionErr
		}
		sub, overlaps := g.Intersect(q)
		if !overlaps {
			continue
		}
		if e.ctx.shape != nil && !e.ctx.shape.IntersectsRect(sub) {
			continue // the shape provably misses this subtree
		}
		pieces := []piece{{node: branch, base: branch, q: sub}}
		if e.ctx.multicast {
			pieces = e.multicastSplit(branch, sub, b.Label.Len())
		} else if e.ctx.h > 1 {
			pieces = e.ix.speculate(branch, sub, e.ctx)
		}
		for _, p := range pieces {
			child := &execNode{}
			node.children = append(node.children, child)
			items = append(items, frontierItem{kind: itemProbe, p: p, node: child})
		}
		if e.ctx.multicast {
			// Hedge the speculative pieces: probe their ancestor-ladder
			// names in the same round, so any piece that overshoots the
			// tree resolves its covering leaf at this round's barrier
			// instead of paying a follow-up candidate round. Sibling
			// pieces share most of their ladder (and the fmd ray folds
			// aligned prefixes onto one name), so the deduplicated hedge
			// set stays far smaller than the per-piece ladders combined.
			seen := map[bitlabel.Label]bool{}
			for _, p := range pieces {
				if p.node == p.base {
					continue // nothing speculative to hedge
				}
				for _, name := range coverCandidates(p, m) {
					if seen[name] {
						continue
					}
					seen[name] = true
					items = append(items, frontierItem{kind: itemHedge, name: name})
				}
			}
		}
	}
	return items, nil
}

// piece is a speculative (node, subrange) unit of parallel forwarding.
// base is the real tree node the speculation started from, bounding where
// the covering leaf can sit when the speculative node overshoots the tree.
type piece struct {
	node bitlabel.Label
	base bitlabel.Label
	q    spatial.Rect
}

// speculate pre-splits subrange q below node β into up to h pieces by
// descending the deterministic space partitioning — no DHT traffic is
// needed because every peer knows the global partitioning rule (§3.2).
func (ix *Index) speculate(beta bitlabel.Label, q spatial.Rect, ctx queryCtx) []piece {
	m := ix.opts.Dims
	queue := []piece{{node: beta, base: beta, q: q}}
	var done []piece
	guard := 0
	for len(queue) > 0 && len(queue)+len(done) < ctx.h && guard < 64*ctx.h {
		guard++
		p := queue[0]
		queue = queue[1:]
		if ix.remainingDepth(p.node) <= 0 || p.node.Len() >= bitlabel.MaxLen {
			done = append(done, p)
			continue
		}
		expanded := false
		for _, bit := range []byte{0, 1} {
			child := p.node.MustAppend(bit)
			g, err := spatial.RegionOf(child, m)
			if err != nil {
				continue
			}
			sub, overlaps := g.Intersect(p.q)
			if !overlaps {
				continue
			}
			if ctx.shape != nil && !ctx.shape.IntersectsRect(sub) {
				continue
			}
			queue = append(queue, piece{node: child, base: beta, q: sub})
			expanded = true
		}
		if !expanded {
			done = append(done, p)
		}
	}
	return append(done, queue...)
}

const (
	// multicastMinAdvance is the guaranteed depth progress of one split,
	// independent of the corner estimate, so deep subtrees discovered
	// incrementally still descend several levels per round.
	multicastMinAdvance = 2
	// multicastMaxAdvance caps how many levels below a branch node one
	// multicast split may descend, bounding the worst-case candidate scan
	// an overshot piece can trigger.
	multicastMaxAdvance = 16
	// multicastMaxFan caps the pieces one split emits; a capped split
	// leaves the remaining subranges at intermediate depth, where the next
	// round splits them further.
	multicastMaxFan = 256
)

// multicastSplit builds one forwarding step of the prefix-multicast
// dissemination (the "Optimally Efficient Prefix Search and Multicast"
// construction adapted to m-LIGHT's label space): the subrange q below
// branch node β is partitioned along the globally known space partitioning
// into the full prefix-tree frontier at an estimated leaf depth, and every
// frontier label is probed in the same round. No DHT traffic is needed to
// build the tree (§3.2: every peer knows the partitioning rule); resolving
// a frontier label via fmd's ray property either hits a leaf exactly, lands
// on a deeper corner leaf (the next round continues from it), or overshoots
// below a leaf — resolved in the same round by the hedged ancestor-ladder
// probes expand emits alongside the pieces (see executeHedge/resolveHedged).
//
// est is the label length of the corner leaf just fetched for β's subtree —
// the best locally available depth estimate for β's other leaves. Estimating
// per subtree rather than globally matters: a global estimate is dragged to
// the shallowest leaf anywhere in the query range, which degenerates deep
// subtrees back to one-level-per-round descent. The split targets half the
// estimated gap (never less than multicastMinAdvance levels): sibling
// subtrees are routinely deeper than the corner estimate suggests, and
// overshooting k levels below a leaf spawns 2^k redundant pieces, so a
// half-step converges geometrically while keeping overshoot cheap. Compared
// with the blind h-piece lookahead, the split adapts its depth to what the
// query has already learned, so large ranges reach their leaves in a handful
// of forwarding steps without speculative over-probing at every level.
func (e *rangeEngine) multicastSplit(beta bitlabel.Label, q spatial.Rect, est int) []piece {
	target := beta.Len() + (est-beta.Len())/2
	if min := beta.Len() + multicastMinAdvance; target < min {
		target = min
	}
	if max := beta.Len() + multicastMaxAdvance; target > max {
		target = max
	}
	if max := e.ix.opts.Dims + 1 + e.ix.opts.MaxDepth; target > max {
		target = max
	}
	if target > bitlabel.MaxLen {
		target = bitlabel.MaxLen
	}
	if target <= beta.Len() {
		return []piece{{node: beta, base: beta, q: q}}
	}
	m := e.ix.opts.Dims
	queue := []piece{{node: beta, base: beta, q: q}}
	var done []piece
	for len(queue) > 0 {
		if len(queue)+len(done) >= multicastMaxFan {
			break
		}
		p := queue[0]
		queue = queue[1:]
		if p.node.Len() >= target {
			done = append(done, p)
			continue
		}
		expanded := false
		for _, bit := range []byte{0, 1} {
			child := p.node.MustAppend(bit)
			g, err := spatial.RegionOf(child, m)
			if err != nil {
				continue
			}
			sub, overlaps := g.Intersect(p.q)
			if !overlaps {
				continue
			}
			if e.ctx.shape != nil && !e.ctx.shape.IntersectsRect(sub) {
				continue
			}
			queue = append(queue, piece{node: child, base: beta, q: sub})
			expanded = true
		}
		if !expanded {
			done = append(done, p)
		}
	}
	pieces := append(done, queue...)
	e.ix.stats.MulticastSplits.Inc()
	e.ix.stats.MulticastPieces.Add(int64(len(pieces)))
	deepest := 0
	for _, p := range pieces {
		if l := p.node.Len(); l > deepest {
			deepest = l
		}
	}
	e.ix.stats.MulticastDepth.Observe(int64(deepest))
	return pieces
}

// filterRecords returns the bucket's records inside q (and inside the
// shape, when one is given). The scan walks the bucket's columnar arenas
// directly — contiguous coordinate memory, no materialized record slice.
func filterRecords(b Bucket, q spatial.Rect, shape spatial.Shape) []spatial.Record {
	var out []spatial.Record
	for i, n := 0, b.Load(); i < n; i++ {
		key := b.KeyAt(i)
		if !q.Contains(key) {
			continue
		}
		if shape != nil && !shape.ContainsPoint(key) {
			continue
		}
		out = append(out, b.RecordAt(i))
	}
	return out
}

// clampPoint nudges a rectangle corner into the unit cube's valid key
// domain.
func clampPoint(p spatial.Point) spatial.Point {
	out := p.Clone()
	for i, c := range out {
		if c < 0 {
			out[i] = 0
		}
		if c > 1 {
			out[i] = 1
		}
	}
	return out
}
