package core

import (
	"fmt"

	"mlight/internal/bitlabel"
	"mlight/internal/kdtree"
	"mlight/internal/spatial"
)

// BulkLoad builds the index for a whole record set in one pass — the
// offline loading path (an extension beyond the paper, which only measures
// progressive insertion). The global space kd-tree is computed locally
// under the configured splitting strategy and every leaf bucket is placed
// with a single DHT put, so loading costs one DHT operation per bucket plus
// one transfer per record, instead of a lookup + apply per record.
//
// For the threshold strategy the resulting tree is identical to the one
// progressive insertion builds (splitting is monotone in the record set).
// For the data-aware strategy BulkLoad computes the *global* optimum of
// Algorithm 1's objective over the whole set, which can balance better than
// the incremental greedy splits.
//
// The index must be empty (just the bootstrap root bucket).
func (ix *Index) BulkLoad(records []spatial.Record) error {
	m := ix.opts.Dims
	for i, rec := range records {
		if rec.Key.Dim() != m {
			return fmt.Errorf("%w: record %d has %d dims, index has %d", ErrDimension, i, rec.Key.Dim(), m)
		}
		if !rec.Key.Valid() {
			return fmt.Errorf("core: record %d key %v outside the unit cube", i, rec.Key)
		}
	}
	if n, err := ix.Size(); err == nil && n > 0 {
		return fmt.Errorf("core: BulkLoad requires an empty index, found %d records", n)
	} else if err != nil {
		return fmt.Errorf("core: BulkLoad needs an enumerable substrate to verify emptiness: %w", err)
	}

	root := kdtree.Cell{
		Label:   bitlabel.Root(m),
		Region:  spatial.UnitCube(m),
		Records: append([]spatial.Record{}, records...),
	}
	cells, err := ix.decideSplit(root)
	if err != nil {
		return err
	}
	// Exactly one frontier cell is named to the root's key; it overwrites
	// the bootstrap bucket in place, the rest are fresh puts.
	stay, moved, err := pickStayer(cells, root.Label, m)
	if err != nil {
		return err
	}
	if err := ix.raw.Put(labelKey(bitlabel.Name(root.Label, m)), NewBucket(stay.Label, stay.Records)); err != nil {
		return fmt.Errorf("core: bulk place root bucket: %w", err)
	}
	ix.stats.DHTLookups.Inc() // the loader ships the staying bucket too
	ix.stats.RecordsMoved.Add(int64(stay.Load()))
	if err := ix.placeCells(moved); err != nil {
		return err
	}
	if len(cells) > 1 {
		ix.stats.Splits.Add(int64(len(cells) - 1))
	}
	return nil
}
