package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/spatial"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	src := newIndex(t, Options{ThetaSplit: 15, ThetaMerge: 7})
	var records []spatial.Record
	for i, p := range clusteredPoints(rng, 2, 2000) {
		rec := spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}
		records = append(records, rec)
		if err := src.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreInto(dht.MustNewLocal(16), bytes.NewReader(buf.Bytes()), Options{
		ThetaSplit: 15, ThetaMerge: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Identical structure.
	srcBuckets, err := src.Buckets()
	if err != nil {
		t.Fatal(err)
	}
	dstBuckets, err := restored.Buckets()
	if err != nil {
		t.Fatal(err)
	}
	if len(srcBuckets) != len(dstBuckets) {
		t.Fatalf("restored %d buckets, want %d", len(dstBuckets), len(srcBuckets))
	}
	// Identical behaviour: lookups and range queries match.
	for _, rec := range records[:200] {
		got, err := restored.Exact(rec.Key)
		if err != nil || len(got) != 1 || got[0].Data != rec.Data {
			t.Fatalf("restored Exact(%v) = %v, %v", rec.Key, got, err)
		}
	}
	for trial := 0; trial < 30; trial++ {
		q := randomRect(rng, 2)
		a, err := src.RangeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.RangeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRecordSet(a.Records, b.Records) {
			t.Fatalf("restored RangeQuery(%v) differs: %d vs %d", q, len(b.Records), len(a.Records))
		}
	}
	// The restored index keeps working as a live index.
	if err := restored.Insert(spatial.Record{Key: spatial.Point{0.123, 0.456}, Data: "post-restore"}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotEmptyIndex(t *testing.T) {
	src := newIndex(t, Options{})
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreInto(dht.MustNewLocal(4), bytes.NewReader(buf.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := restored.Size(); err != nil || n != 0 {
		t.Fatalf("restored Size = %d, %v", n, err)
	}
	// And usable.
	if err := restored.Insert(spatial.Record{Key: spatial.Point{0.5, 0.5}}); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreValidation(t *testing.T) {
	src := newIndex(t, Options{})
	if err := src.Insert(spatial.Record{Key: spatial.Point{0.2, 0.8}, Data: "x"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Wrong magic.
	bad := append([]byte("NOTASNAP??"), good[10:]...)
	if _, err := RestoreInto(dht.MustNewLocal(2), bytes.NewReader(bad), Options{}); !errors.Is(err, ErrSnapshot) {
		t.Errorf("bad magic: %v", err)
	}
	// Dim mismatch against options.
	if _, err := RestoreInto(dht.MustNewLocal(2), bytes.NewReader(good), Options{Dims: 3}); !errors.Is(err, ErrSnapshot) {
		t.Errorf("dim mismatch: %v", err)
	}
	// Truncations anywhere must error, not panic.
	for cut := 1; cut < len(good); cut += 3 {
		if _, err := RestoreInto(dht.MustNewLocal(2), bytes.NewReader(good[:cut]), Options{}); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Non-empty substrate refused.
	d := dht.MustNewLocal(2)
	if _, err := New(d, Options{}); err != nil {
		t.Fatal(err)
	}
	ix2, _ := New(d, Options{})
	if err := ix2.Insert(spatial.Record{Key: spatial.Point{0.1, 0.1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreInto(d, bytes.NewReader(good), Options{}); err == nil {
		t.Error("restore onto non-empty substrate accepted")
	}
}
