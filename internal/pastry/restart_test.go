package pastry

import (
	"fmt"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/simnet"
)

// TestCrashWipesNodeState asserts crash semantics are destructive: the
// crashed node's store, leaf set, and routing table are gone, not merely
// unreachable behind a partition.
func TestCrashWipesNodeState(t *testing.T) {
	_, o := buildOverlay(t, 8)
	for i := 0; i < 100; i++ {
		if err := o.Put(dht.Key(fmt.Sprintf("k%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	var victim *Node
	for _, addr := range o.Nodes() {
		n, _ := o.nodeAt(addr)
		if n.StoreLen() > 0 {
			victim = n
			break
		}
	}
	if victim == nil {
		t.Fatal("no node holds data")
	}
	if err := o.CrashNode(victim.Addr()); err != nil {
		t.Fatal(err)
	}
	if victim.StoreLen() != 0 {
		t.Errorf("crashed node still stores %d entries; crash must wipe volatile state", victim.StoreLen())
	}
	if got := victim.LeafSet(); len(got) != 0 {
		t.Errorf("crashed node kept leaf set %v", got)
	}
}

// TestRestartRejoinsAndReconverges runs the crash → failover → restart
// cycle on a replicated overlay: no key may be lost while the node is
// down, and after restart the overlay reconverges with the restarted node
// owning its share of the keyspace again.
func TestRestartRejoinsAndReconverges(t *testing.T) {
	net := simnet.New(simnet.Options{})
	o := NewOverlay(net, Config{Seed: 1, Replication: 2})
	for i := 0; i < 10; i++ {
		if _, err := o.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize(2)

	want := map[dht.Key]int{}
	for i := 0; i < 200; i++ {
		k := dht.Key(fmt.Sprintf("rk%d", i))
		want[k] = i
		if err := o.Put(k, i); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize(2) // settle replica placement

	if err := o.CrashNode("node-4"); err != nil {
		t.Fatal(err)
	}
	if got := o.CrashedNodes(); len(got) != 1 || got[0] != "node-4" {
		t.Fatalf("CrashedNodes = %v, want [node-4]", got)
	}
	o.Stabilize(3) // failover: promote replicas, re-replicate

	for k, v := range want {
		got, ok, err := o.Get(k)
		if err != nil || !ok || got != v {
			t.Fatalf("while down Get(%q) = %v, %v, %v; want %d", k, got, ok, err, v)
		}
	}

	n, err := o.RestartNode("node-4")
	if err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	if len(o.CrashedNodes()) != 0 {
		t.Errorf("CrashedNodes after restart = %v, want empty", o.CrashedNodes())
	}
	found := false
	for _, addr := range o.Nodes() {
		if addr == "node-4" {
			found = true
		}
	}
	if !found {
		t.Fatal("restarted node missing from Nodes()")
	}
	o.Stabilize(3)

	got := map[dht.Key]int{}
	if err := o.Range(func(k dht.Key, v any) bool {
		got[k], _ = v.(int)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Range saw %d entries after restart, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Range[%q] = %d, want %d", k, got[k], v)
		}
	}
	if n.StoreLen() == 0 {
		t.Error("restarted node owns no keys; claim-on-rejoin did not run")
	}
	for k, v := range want {
		gotV, ok, err := o.Get(k)
		if err != nil || !ok || gotV != v {
			t.Fatalf("after restart Get(%q) = %v, %v, %v; want %d", k, gotV, ok, err, v)
		}
	}
}

func TestRestartErrors(t *testing.T) {
	_, o := buildOverlay(t, 4)
	if _, err := o.RestartNode("node-1"); err == nil {
		t.Error("RestartNode of a live node succeeded")
	}
	if _, err := o.RestartNode("nope"); err == nil {
		t.Error("RestartNode of an unknown node succeeded")
	}
	if err := o.CrashNode("node-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := o.RestartNode("node-1"); err != nil {
		t.Fatalf("first RestartNode: %v", err)
	}
	if _, err := o.RestartNode("node-1"); err == nil {
		t.Error("second RestartNode succeeded")
	}
}

// TestRestartResetsBreaker: the circuit breaker guarding replication RPCs
// to a peer accumulates failure evidence while that peer is down; a
// restart invalidates the evidence, so RestartNode must reset the owner's
// breaker instead of leaving the healthy peer fenced off for the rest of
// the cooldown.
func TestRestartResetsBreaker(t *testing.T) {
	net := simnet.New(simnet.Options{})
	o := NewOverlay(net, Config{Seed: 1, Replication: 2, Retry: &dht.RetryPolicy{
		MaxAttempts:      1,
		BreakerThreshold: 1,
		BreakerCooldown:  1000,
		Sleep:            dht.NoSleep,
	}})
	for i := 0; i < 6; i++ {
		if _, err := o.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize(2)

	if err := o.CrashNode("node-2"); err != nil {
		t.Fatal(err)
	}
	// A replication push to the dead peer trips its breaker.
	o.replicaCall("node-0", "node-2", pingReq{})
	if st := o.ReplicationRetrier().BreakerState("node-2"); st != "open" {
		t.Fatalf("breaker after crash pushes = %q, want open", st)
	}

	if _, err := o.RestartNode("node-2"); err != nil {
		t.Fatal(err)
	}
	if st := o.ReplicationRetrier().BreakerState("node-2"); st != "closed" {
		t.Errorf("breaker after restart = %q, want closed", st)
	}
}
