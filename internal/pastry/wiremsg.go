package pastry

import "mlight/internal/transport"

// Register every pastry RPC message with the transport codec so overlays
// run unchanged over framed TCP. applyReq is deliberately absent: it
// carries a closure, which only an inline transport can deliver — over the
// wire, Overlay.Apply uses the dht versioned-CAS protocol instead.
func init() {
	transport.RegisterType(ref{})
	transport.RegisterType([]ref(nil))
	transport.RegisterType(pingReq{})
	transport.RegisterType(nextHopReq{})
	transport.RegisterType(nextHopResp{})
	transport.RegisterType(getPeersReq{})
	transport.RegisterType(getPeersResp{})
	transport.RegisterType(announceReq{})
	transport.RegisterType(retireReq{})
	transport.RegisterType(claimReq{})
	transport.RegisterType(claimResp{})
	transport.RegisterType(handoffReq{})
	transport.RegisterType(storeReq{})
	transport.RegisterType(retrieveReq{})
	transport.RegisterType(retrieveResp{})
	transport.RegisterType(removeReq{})
	transport.RegisterType(applyResp{})
	transport.RegisterType(replicateReq{})
	transport.RegisterType(dropReplicaReq{})
	transport.RegisterType(offerReq{})
}
