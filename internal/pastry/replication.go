package pastry

import (
	"sort"

	"mlight/internal/dht"
	"mlight/internal/simnet"
)

// Leaf-set replication, Bamboo/PAST style (and therefore the mechanism the
// m-LIGHT paper's own deployment platform used): with Config.Replication =
// r > 1, every key is copied to the owner's r-1 nearest leaf-set members.
// Replicas live in a separate store so enumeration and ownership transfers
// never confuse copies with primaries. Repair is periodic: each Stabilize
// round a node re-pushes its primary entries to its current nearest
// neighbours, and a read that misses the primary store falls back to the
// replica store — which is exactly where the data sits on the next-closest
// node after its owner crashes.

// replicateReq pushes replica copies to a leaf-set member.
type replicateReq struct{ Entries map[dht.Key]any }

// dropReplicaReq removes a replica after a delete.
type dropReplicaReq struct{ Key dht.Key }

// handleReplicate stores pushed replica copies.
func (n *Node) handleReplicate(entries map[dht.Key]any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.replicas == nil {
		n.replicas = make(map[dht.Key]any, len(entries))
	}
	for k, v := range entries {
		n.replicas[k] = v
	}
}

// ReplicaLen returns the number of replica entries held (for tests).
func (n *Node) ReplicaLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.replicas)
}

// replicaTargets returns the owner's r-1 nearest live leaf-set members on
// the ring.
func (o *Overlay) replicaTargets(owner ref) []ref {
	if o.replication <= 1 {
		return nil
	}
	n, ok := o.nodeAt(owner.Addr)
	if !ok {
		return nil
	}
	n.mu.Lock()
	cands := make([]ref, 0, len(n.leaves))
	for _, c := range n.leaves {
		cands = append(cands, c)
	}
	n.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool {
		return dht.CircularDistance(cands[i].ID, owner.ID).Cmp(
			dht.CircularDistance(cands[j].ID, owner.ID)) < 0
	})
	out := make([]ref, 0, o.replication-1)
	for _, c := range cands {
		if len(out) >= o.replication-1 {
			break
		}
		if _, err := o.net.Call(owner.Addr, c.Addr, pingReq{}); err == nil {
			out = append(out, c)
		}
	}
	return out
}

// replicaCall issues one replication RPC through the overlay's retry
// layer, keyed by the destination node. A call that still fails after the
// retry budget is counted in ReplicationErrors and recorded as the last
// replication error rather than silently dropped: the replica stays
// missing until the next stabilization round re-pushes it, and the counter
// makes that loss observable.
func (o *Overlay) replicaCall(from, to simnet.NodeID, req any) {
	err := o.retrier.Do(string(to), func() error {
		_, e := o.net.Call(from, to, req)
		return e
	})
	if err != nil {
		o.ReplicationErrors.Inc()
		o.mu.Lock()
		o.lastReplicaErr = err
		o.mu.Unlock()
	}
}

// replicate pushes one key's value to the owner's replica targets.
func (o *Overlay) replicate(owner ref, key dht.Key, value any) {
	for _, t := range o.replicaTargets(owner) {
		o.replicaCall(owner.Addr, t.Addr, replicateReq{Entries: map[dht.Key]any{key: value}})
	}
}

// dropReplicas removes the key's replicas after a Remove.
func (o *Overlay) dropReplicas(owner ref, key dht.Key) {
	for _, t := range o.replicaTargets(owner) {
		o.replicaCall(owner.Addr, t.Addr, dropReplicaReq{Key: key})
	}
}

// reReplicate pushes a node's whole primary store to its current replica
// targets — the periodic repair of one stabilization round.
func (o *Overlay) reReplicate(n *Node) {
	if o.replication <= 1 {
		return
	}
	entries := n.storeSnapshot()
	if len(entries) == 0 {
		return
	}
	for _, t := range o.replicaTargets(n.self()) {
		o.replicaCall(n.addr, t.Addr, replicateReq{Entries: entries})
	}
}
