package pastry

import (
	"sort"

	"mlight/internal/dht"
	"mlight/internal/transport"
)

// Leaf-set replication, Bamboo/PAST style (and therefore the mechanism the
// m-LIGHT paper's own deployment platform used): with Config.Replication =
// r > 1, every key is copied to the r-1 leaf-set members of its owner that
// are nearest to the KEY's ring position — the nodes that inherit ownership,
// in order, as closer holders crash. Placement follows the ownership
// comparator (closerTo) alone; an unreachable target simply misses the push
// and is repaired by the next stabilization round. (Placing by distance to
// the owner, or diverting to a farther neighbour when a target fails a
// ping, puts copies on nodes that can never inherit the key: after the
// owner crashes, routing converges on the closest survivor, which then
// holds nothing.)
//
// Replicas live in a separate store so enumeration and ownership transfers
// never confuse copies with primaries. Repair is periodic, as in chord's
// replication: each Stabilize round a node promotes replica entries it now
// owns into its primary store, then re-pushes its primary entries to each
// key's current targets; a read that misses the primary store still falls
// back to the replica store to cover the window before promotion.

// replicateReq pushes replica copies to a leaf-set member.
type replicateReq struct{ Entries map[dht.Key]any }

// dropReplicaReq removes a replica after a delete.
type dropReplicaReq struct{ Key dht.Key }

// offerReq hands a possibly-orphaned entry to the key's current owner.
// Unlike handoffReq (a graceful-leave transfer, which is authoritative and
// overwrites), an offer is speculative: the receiver keeps its own value if
// it already has one and only adopts the entry when the key is absent.
type offerReq struct{ Entries map[dht.Key]any }

// handleReplicate stores pushed replica copies and stamps their lease: a
// push is the owner saying "you are still in this key's line of
// succession".
func (n *Node) handleReplicate(entries map[dht.Key]any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.replicas == nil {
		n.replicas = make(map[dht.Key]any, len(entries))
	}
	if n.replicaSeen == nil {
		n.replicaSeen = make(map[dht.Key]uint64, len(entries))
	}
	for k, v := range entries {
		n.replicas[k] = v
		n.replicaSeen[k] = n.repRound
	}
}

// replicaGraceRounds is how many repair rounds an unrefreshed replica
// survives before relocateStaleReplicas takes it as stale. One round of
// grace absorbs a transiently failed re-push (the retry budget already
// exhausted); two consecutive missed refreshes mean the owner no longer
// counts this node among the key's targets — ownership moved (a join, or
// a crashed node restarting and reclaiming its keyspace) — so keeping the
// copy would serve stale reads and resurrect deleted keys on promotion.
const replicaGraceRounds = 2

// takeExpiredReplicas removes and returns the replica entries whose lease
// ran out, and closes the repair round. Runs once per stabilization round,
// after every node has re-pushed its primaries, so a current target is
// always refreshed before its lease is checked.
func (n *Node) takeExpiredReplicas() map[dht.Key]any {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out map[dht.Key]any
	for k, v := range n.replicas {
		if n.repRound-n.replicaSeen[k] >= replicaGraceRounds {
			if out == nil {
				out = make(map[dht.Key]any)
			}
			out[k] = v
			delete(n.replicas, k)
			delete(n.replicaSeen, k)
		}
	}
	n.repRound++
	return out
}

// restoreReplica shelves an expired replica back with a fresh lease after a
// failed relocation, so the copy survives until routing can resolve its
// owner.
func (n *Node) restoreReplica(k dht.Key, v any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.replicas == nil {
		n.replicas = make(map[dht.Key]any)
	}
	if n.replicaSeen == nil {
		n.replicaSeen = make(map[dht.Key]uint64)
	}
	n.replicas[k] = v
	n.replicaSeen[k] = n.repRound
}

// relocateStaleReplicas resolves each lease-expired replica to the key's
// current owner and moves the copy there instead of destroying it. A stale
// lease usually means ownership moved and the owner already holds the key —
// then the offer is a no-op and the stale copy just disappears. But after
// an owner's crash the numerically closest live node may be one that never
// held a copy (a joiner whose id slots in between the dead owner and its
// replica set inherits the key with no data); destroying the expired
// replica there would lose the record's last copies, so the holder offers
// the entry to the resolved owner, which adopts it only if the key is
// absent. Under the crash fault model this cannot resurrect deletes (an
// unreachable replica holder has, by definition, lost its copies); healing
// partitions as well would need per-record versions.
func (o *Overlay) relocateStaleReplicas(n *Node) {
	stale := n.takeExpiredReplicas()
	if len(stale) == 0 {
		return
	}
	keys := make([]dht.Key, 0, len(stale))
	for k := range stale {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		v := stale[k]
		owner, err := o.route(dht.HashKey(k))
		if err != nil || owner.isZero() {
			n.restoreReplica(k, v)
			continue
		}
		if owner.Addr == n.addr {
			n.mu.Lock()
			if _, exists := n.store[k]; !exists {
				n.store[k] = v
				n.vers.Bump(k)
			}
			n.mu.Unlock()
			continue
		}
		if _, err := o.net.Call(n.addr, owner.Addr, offerReq{Entries: map[dht.Key]any{k: v}}); err != nil {
			n.restoreReplica(k, v)
		}
	}
}

// ReplicaLen returns the number of replica entries held (for tests).
func (n *Node) ReplicaLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.replicas)
}

// replicaTargets returns the r-1 leaf-set members of owner nearest to the
// key position h under the ownership comparator — the key's line of
// succession. The choice is deterministic for a given leaf set: no liveness
// probe diverts a push to a node that could never inherit the key.
func (o *Overlay) replicaTargets(owner ref, h dht.ID) []ref {
	if o.replication <= 1 {
		return nil
	}
	n, ok := o.nodeAt(owner.Addr)
	if !ok {
		return nil
	}
	n.mu.Lock()
	cands := make([]ref, 0, len(n.leaves))
	for _, c := range n.leaves {
		cands = append(cands, c)
	}
	n.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool {
		return closerTo(h, cands[i].ID, cands[j].ID)
	})
	if len(cands) > o.replication-1 {
		cands = cands[:o.replication-1]
	}
	return cands
}

// replicaCall issues one replication RPC through the overlay's retry
// layer, keyed by the destination node. A call that still fails after the
// retry budget is counted in ReplicationErrors and recorded as the last
// replication error rather than silently dropped: the replica stays
// missing until the next stabilization round re-pushes it, and the counter
// makes that loss observable.
func (o *Overlay) replicaCall(from, to transport.NodeID, req any) {
	err := o.retrier.Do(string(to), func() error {
		_, e := o.net.Call(from, to, req)
		return e
	})
	if err != nil {
		o.ReplicationErrors.Inc()
		o.mu.Lock()
		o.lastReplicaErr = err
		o.mu.Unlock()
	}
}

// replicate pushes one key's value to the key's replica targets.
func (o *Overlay) replicate(owner ref, key dht.Key, value any) {
	for _, t := range o.replicaTargets(owner, dht.HashKey(key)) {
		o.replicaCall(owner.Addr, t.Addr, replicateReq{Entries: map[dht.Key]any{key: value}})
	}
}

// dropReplicas removes the key's replicas after a Remove.
func (o *Overlay) dropReplicas(owner ref, key dht.Key) {
	for _, t := range o.replicaTargets(owner, dht.HashKey(key)) {
		o.replicaCall(owner.Addr, t.Addr, dropReplicaReq{Key: key})
	}
}

// reReplicate pushes a node's primary entries to each key's current replica
// targets — the periodic repair of one stabilization round. Targets are
// per key, so entries are batched per destination before pushing.
func (o *Overlay) reReplicate(n *Node) {
	if o.replication <= 1 {
		return
	}
	entries := n.storeSnapshot()
	if len(entries) == 0 {
		return
	}
	self := n.self()
	batches := make(map[transport.NodeID]map[dht.Key]any)
	for k, v := range entries {
		for _, t := range o.replicaTargets(self, dht.HashKey(k)) {
			if batches[t.Addr] == nil {
				batches[t.Addr] = make(map[dht.Key]any)
			}
			batches[t.Addr][k] = v
		}
	}
	for dst, batch := range batches {
		o.replicaCall(n.addr, dst, replicateReq{Entries: batch})
	}
}

// promoteOwnedReplicas moves replica entries the node now owns — no known
// live peer is closer to the key's ring position — into the primary store.
// This is the ownership-transfer half of crash repair: after the owner of a
// key crashes, routing converges on the closest survivor, which by the
// placement rule above already holds the replica it promotes here. Runs
// after the stabilization round refreshed the leaf set, so the comparison
// is against live peers only.
func (o *Overlay) promoteOwnedReplicas(n *Node) {
	if o.replication <= 1 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for k, v := range n.replicas {
		h := dht.HashKey(k)
		owned := true
		for _, p := range n.leaves {
			if closerTo(h, p.ID, n.id) {
				owned = false
				break
			}
		}
		if !owned {
			continue
		}
		if _, exists := n.store[k]; !exists {
			n.store[k] = v
			n.vers.Bump(k)
		}
		delete(n.replicas, k)
		delete(n.replicaSeen, k)
	}
}
