package pastry

import (
	"strings"
	"testing"
)

// TestMaintenanceErrorsCountRetireFailures pins the RemoveNode fix: retire
// notices lost to the network land in MaintenanceErrors instead of
// vanishing in a `_, _ =` assignment, while the departure itself still
// succeeds (peers re-probe the dead entry on their next stabilization).
func TestMaintenanceErrorsCountRetireFailures(t *testing.T) {
	net, o := buildOverlay(t, 6)
	if got := o.MaintenanceErrors.Load(); got != 0 {
		t.Fatalf("MaintenanceErrors = %d on a healthy overlay, want 0", got)
	}

	net.SetDropRate(1.0)
	if err := o.RemoveNode("node-2"); err != nil {
		t.Fatalf("RemoveNode under loss: %v", err)
	}
	if got := o.MaintenanceErrors.Load(); got == 0 {
		t.Fatal("MaintenanceErrors = 0 after retiring under total loss, want > 0")
	}
	err := o.LastMaintenanceError()
	if err == nil {
		t.Fatal("LastMaintenanceError = nil after dropped retire notices")
	}
	if !strings.Contains(err.Error(), "retire") {
		t.Fatalf("LastMaintenanceError = %v, want a retire failure", err)
	}
}

// TestMaintenanceErrorsCountAnnounceFailures injects partial, seeded link
// loss so stabilization adopts peers (pings get through) but some announce
// messages are dropped — those must be counted, not discarded.
func TestMaintenanceErrorsCountAnnounceFailures(t *testing.T) {
	net, o := buildOverlay(t, 10)

	net.SetDropRate(0.3)
	o.Stabilize(3)
	net.SetDropRate(0)

	if got := o.MaintenanceErrors.Load(); got == 0 {
		t.Fatal("MaintenanceErrors = 0 after stabilizing under 30% loss, want > 0")
	}
	if err := o.LastMaintenanceError(); err == nil {
		t.Fatal("LastMaintenanceError = nil after lossy stabilization")
	}
}
