package pastry

import (
	"fmt"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/dht/dhttest"
	"mlight/internal/simnet"
)

func buildOverlay(t *testing.T, n int) (*simnet.Network, *Overlay) {
	t.Helper()
	net := simnet.New(simnet.Options{})
	o := NewOverlay(net, Config{Seed: 1})
	for i := 0; i < n; i++ {
		if _, err := o.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatalf("AddNode(%d): %v", i, err)
		}
	}
	o.Stabilize(2)
	return net, o
}

// oracleOwner computes ground-truth ownership with the same comparator the
// overlay uses: numerically closest identifier, ties to the smaller.
func oracleOwner(o *Overlay, key dht.Key) simnet.NodeID {
	h := dht.HashKey(key)
	var best *Node
	for _, addr := range o.Nodes() {
		n, _ := o.nodeAt(addr)
		if best == nil || closerTo(h, n.ID(), best.ID()) {
			best = n
		}
	}
	return best.Addr()
}

func TestConformance(t *testing.T) {
	dhttest.RunConformance(t, func(t *testing.T) dht.DHT {
		_, o := buildOverlay(t, 10)
		return o
	})
}

func TestFaultTolerance(t *testing.T) {
	dhttest.RunFaultTolerance(t, func(t *testing.T) dht.DHT {
		_, o := buildOverlay(t, 10)
		return o
	})
}

func TestOwnerMatchesOracle(t *testing.T) {
	_, o := buildOverlay(t, 16)
	for i := 0; i < 300; i++ {
		key := dht.Key(fmt.Sprintf("key-%d", i))
		got, err := o.Owner(key)
		if err != nil {
			t.Fatalf("Owner(%q): %v", key, err)
		}
		if want := oracleOwner(o, key); got != string(want) {
			t.Fatalf("Owner(%q) = %q, want %q", key, got, want)
		}
	}
}

func TestJoinMovesKeys(t *testing.T) {
	_, o := buildOverlay(t, 4)
	keys := make([]dht.Key, 0, 300)
	for i := 0; i < 300; i++ {
		k := dht.Key(fmt.Sprintf("jk%d", i))
		keys = append(keys, k)
		if err := o.Put(k, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 4; i < 12; i++ {
		if _, err := o.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize(2)
	for i, k := range keys {
		v, ok, err := o.Get(k)
		if err != nil || !ok || v != i {
			t.Fatalf("after joins Get(%q) = %v, %v, %v", k, v, ok, err)
		}
		owner := oracleOwner(o, k)
		n, _ := o.nodeAt(owner)
		if _, found := n.storeSnapshot()[k]; !found {
			t.Fatalf("key %q not stored at oracle owner %q", k, owner)
		}
	}
}

func TestGracefulLeaveKeepsData(t *testing.T) {
	_, o := buildOverlay(t, 10)
	for i := 0; i < 300; i++ {
		if err := o.Put(dht.Key(fmt.Sprintf("lk%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	for _, victim := range []simnet.NodeID{"node-2", "node-8", "node-5"} {
		if err := o.RemoveNode(victim); err != nil {
			t.Fatalf("RemoveNode(%q): %v", victim, err)
		}
		o.Stabilize(2)
	}
	for i := 0; i < 300; i++ {
		k := dht.Key(fmt.Sprintf("lk%d", i))
		v, ok, err := o.Get(k)
		if err != nil || !ok || v != i {
			t.Fatalf("after leaves Get(%q) = %v, %v, %v", k, v, ok, err)
		}
	}
	if err := o.RemoveNode("node-2"); err == nil {
		t.Error("double RemoveNode succeeded")
	}
}

func TestCrashRecoversRouting(t *testing.T) {
	_, o := buildOverlay(t, 10)
	if err := o.CrashNode("node-6"); err != nil {
		t.Fatal(err)
	}
	o.Stabilize(3)
	for i := 0; i < 100; i++ {
		k := dht.Key(fmt.Sprintf("ck%d", i))
		if err := o.Put(k, i); err != nil {
			t.Fatalf("Put after crash: %v", err)
		}
		v, ok, err := o.Get(k)
		if err != nil || !ok || v != i {
			t.Fatalf("Get after crash = %v, %v, %v", v, ok, err)
		}
	}
	if err := o.CrashNode("node-6"); err == nil {
		t.Error("double CrashNode succeeded")
	}
}

func TestRouteLengthReasonable(t *testing.T) {
	_, o := buildOverlay(t, 32)
	o.Hops.Reset()
	o.Lookups.Reset()
	for i := 0; i < 500; i++ {
		if _, err := o.Owner(dht.Key(fmt.Sprintf("probe-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	mean := o.MeanRouteLength()
	if mean <= 0 {
		t.Fatal("no hops recorded")
	}
	if mean > 10 {
		t.Errorf("mean route length %.1f hops for 32 nodes; want ≲ 10", mean)
	}
}

func TestLeafSetBounded(t *testing.T) {
	_, o := buildOverlay(t, 24)
	for _, addr := range o.Nodes() {
		n, _ := o.nodeAt(addr)
		if got := len(n.LeafSet()); got > 2*leafHalf {
			t.Errorf("node %q leaf set size %d exceeds %d", addr, got, 2*leafHalf)
		}
		if got := len(n.LeafSet()); got == 0 {
			t.Errorf("node %q leaf set empty", addr)
		}
	}
}

func TestEmptyOverlayErrors(t *testing.T) {
	net := simnet.New(simnet.Options{})
	o := NewOverlay(net, Config{})
	if err := o.Put("k", 1); err == nil {
		t.Error("Put on empty overlay succeeded")
	}
}

func TestDuplicateAddNode(t *testing.T) {
	_, o := buildOverlay(t, 2)
	if _, err := o.AddNode("node-0"); err == nil {
		t.Error("duplicate AddNode succeeded")
	}
}

func TestDistributionAcrossNodes(t *testing.T) {
	_, o := buildOverlay(t, 12)
	for i := 0; i < 400; i++ {
		if err := o.Put(dht.Key(fmt.Sprintf("d%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	occupied := 0
	for _, addr := range o.Nodes() {
		n, _ := o.nodeAt(addr)
		if n.StoreLen() > 0 {
			occupied++
		}
	}
	if occupied < 6 {
		t.Errorf("only %d of 12 nodes hold data", occupied)
	}
}
