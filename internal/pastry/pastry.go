// Package pastry implements a Pastry-style prefix-routing overlay (Rowstron
// & Druschel, Middleware 2001) in the maintenance style of Bamboo (Rhea et
// al., USENIX 2004) — the DHT the m-LIGHT paper actually deployed on. It is
// the second pluggable substrate beneath the index, alongside
// internal/chord.
//
// Nodes keep a leaf set (the numerically nearest peers on both sides of the
// 160-bit ring) and a routing table indexed by shared hex-digit prefix
// length. A key is owned by the node whose identifier is numerically
// closest on the ring (ties to the smaller identifier). Routing is greedy:
// each hop forwards to its best-known strictly closer peer, which with a
// populated routing table takes O(log₁₆ n) hops.
//
// Following Bamboo's design point, repair is periodic rather than reactive:
// the Overlay's Stabilize rounds re-probe neighbours, merge leaf sets, and
// rebuild routing tables, which is what recovers the overlay after churn.
package pastry

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"mlight/internal/dht"
	"mlight/internal/metrics"
	"mlight/internal/transport"
)

const (
	// digitBits is the routing digit width: base-16 digits as in Pastry's
	// default configuration.
	digitBits = 4
	numCols   = 1 << digitBits
	// leafHalf is the number of leaf-set entries kept on each side.
	leafHalf = 4
)

var numRows = dht.NumDigits(digitBits)

// clientAddr is the source address for overlay-initiated RPCs.
const clientAddr transport.NodeID = "pastry-client"

// ErrLookupFailed is returned when greedy routing cannot complete. It is
// marked retryable: stale leaf sets heal after stabilization, so a retry
// layer may usefully try again.
var ErrLookupFailed = dht.Retryable(errors.New("pastry: lookup failed"))

// ref names a remote node.
type ref struct {
	Addr transport.NodeID
	ID   dht.ID
}

func (r ref) isZero() bool { return r.Addr == "" }

// closerTo reports whether a is strictly closer to target than b, with ties
// broken towards the smaller identifier. This single comparator defines key
// ownership for the whole overlay.
func closerTo(target, a, b dht.ID) bool {
	da := dht.CircularDistance(a, target)
	db := dht.CircularDistance(b, target)
	switch da.Cmp(db) {
	case -1:
		return true
	case 1:
		return false
	default:
		return a.Cmp(b) < 0
	}
}

// Node is one Pastry peer.
type Node struct {
	addr transport.NodeID
	id   dht.ID
	net  transport.Interface

	mu     sync.Mutex
	leaves map[transport.NodeID]ref
	table  [][numCols]ref // numRows rows
	store  map[dht.Key]any
	// replicas holds leaf-set copies of neighbours' keys when the overlay
	// runs with Replication > 1; see replication.go.
	replicas map[dht.Key]any
	// replicaSeen records the local repair round at which each replica was
	// last refreshed by its owner; repRound counts completed repair rounds.
	// Together they implement the replica lease: a copy whose owner stops
	// refreshing it (ownership moved — a join, or a restart reclaiming the
	// keyspace) expires instead of lingering stale. See expireStaleReplicas.
	replicaSeen map[dht.Key]uint64
	repRound    uint64
	// vers tracks per-key mutation versions for the wire-safe remote apply
	// protocol (see dht.VersionedStore).
	vers dht.VersionedStore
}

// rpc request/response types.
type (
	pingReq     struct{}
	nextHopReq  struct{ Target dht.ID }
	nextHopResp struct {
		Done bool
		Next ref
	}
	getPeersReq  struct{}
	getPeersResp struct{ Peers []ref }
	announceReq  struct{ Peer ref }
	retireReq    struct{ Peer ref }
	claimReq     struct{ Joiner ref }
	claimResp    struct{ Entries map[dht.Key]any }
	handoffReq   struct{ Entries map[dht.Key]any }
	storeReq     struct {
		Key   dht.Key
		Value any
	}
	retrieveReq  struct{ Key dht.Key }
	retrieveResp struct {
		Value any
		Found bool
	}
	removeReq struct{ Key dht.Key }
	applyReq  struct {
		Key dht.Key
		Fn  dht.ApplyFunc
	}
	applyResp struct {
		Value any
		Keep  bool
	}
)

func newNode(net transport.Interface, addr transport.NodeID) (*Node, error) {
	n := &Node{
		addr:   addr,
		id:     dht.HashString(string(addr)),
		net:    net,
		leaves: make(map[transport.NodeID]ref),
		table:  make([][numCols]ref, numRows),
		store:  make(map[dht.Key]any),
	}
	if err := net.Register(addr, n); err != nil {
		return nil, fmt.Errorf("pastry: register %q: %w", addr, err)
	}
	return n, nil
}

// OnCrash implements transport.Crasher: a hard crash destroys the node's
// volatile memory — stored keys, replicas, leaf set, and routing table.
// Identity (address, ring position) survives so the node can restart and
// rejoin as the same peer with empty buckets.
func (n *Node) OnCrash() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.store = make(map[dht.Key]any)
	n.replicas = nil
	n.replicaSeen = nil
	n.repRound = 0
	n.leaves = make(map[transport.NodeID]ref)
	n.table = make([][numCols]ref, numRows)
	n.vers.Reset()
}

// Addr returns the node's network address.
func (n *Node) Addr() transport.NodeID { return n.addr }

// ID returns the node's ring identifier.
func (n *Node) ID() dht.ID { return n.id }

func (n *Node) self() ref { return ref{Addr: n.addr, ID: n.id} }

// HandleRPC implements transport.Handler.
func (n *Node) HandleRPC(from transport.NodeID, req any) (any, error) {
	switch r := req.(type) {
	case pingReq:
		return n.self(), nil
	case nextHopReq:
		return n.nextHop(r.Target), nil
	case getPeersReq:
		return getPeersResp{Peers: n.knownPeers()}, nil
	case announceReq:
		n.integrate([]ref{r.Peer})
		return struct{}{}, nil
	case retireReq:
		n.forget(r.Peer)
		return struct{}{}, nil
	case replicateReq:
		n.handleReplicate(r.Entries)
		return struct{}{}, nil
	case dropReplicaReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		delete(n.replicas, r.Key)
		delete(n.replicaSeen, r.Key)
		return struct{}{}, nil
	case claimReq:
		return n.handleClaim(r.Joiner), nil
	case handoffReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		for k, v := range r.Entries {
			n.store[k] = v
			n.vers.Bump(k)
		}
		return struct{}{}, nil
	case offerReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		for k, v := range r.Entries {
			if _, exists := n.store[k]; !exists {
				n.store[k] = v
				n.vers.Bump(k)
			}
		}
		return struct{}{}, nil
	case storeReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		n.store[r.Key] = r.Value
		n.vers.Bump(r.Key)
		return struct{}{}, nil
	case retrieveReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		v, ok := n.store[r.Key]
		if !ok {
			// Crash window: routing may already point here while the key
			// still sits in the replica store.
			v, ok = n.replicas[r.Key]
		}
		return retrieveResp{Value: v, Found: ok}, nil
	case removeReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		delete(n.store, r.Key)
		delete(n.replicas, r.Key)
		delete(n.replicaSeen, r.Key)
		n.vers.Bump(r.Key)
		return struct{}{}, nil
	case applyReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		cur, ok := n.store[r.Key]
		if !ok {
			if rv, rok := n.replicas[r.Key]; rok {
				cur, ok = rv, true
				n.store[r.Key] = rv // promote on write
				delete(n.replicas, r.Key)
			}
		}
		next, keep := r.Fn(cur, ok)
		if keep {
			n.store[r.Key] = next
		} else {
			delete(n.store, r.Key)
		}
		n.vers.Bump(r.Key)
		return applyResp{Value: next, Keep: keep}, nil
	case dht.GetVerReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		v, ok := n.store[r.Key]
		if !ok {
			if rv, rok := n.replicas[r.Key]; rok {
				// Promote on write intent, as applyReq does, so the CAS
				// that follows lands on the primary copy.
				v, ok = rv, true
				n.store[r.Key] = rv
				n.vers.Bump(r.Key)
				delete(n.replicas, r.Key)
				delete(n.replicaSeen, r.Key)
			}
		}
		return n.vers.Snapshot(r, v, ok), nil
	case dht.CASReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		cur, ok := n.store[r.Key]
		resp, apply := n.vers.CAS(r, cur, ok)
		if apply {
			if r.Keep {
				n.store[r.Key] = r.Value
			} else {
				delete(n.store, r.Key)
				delete(n.replicas, r.Key)
				delete(n.replicaSeen, r.Key)
			}
		}
		return resp, nil
	default:
		return nil, fmt.Errorf("pastry: %s: unknown request type %T", n.addr, req)
	}
}

// nextHop answers one greedy routing step: the best-known peer strictly
// closer to target than this node, or Done when none is known.
func (n *Node) nextHop(target dht.ID) nextHopResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	best := n.self()
	consider := func(c ref) {
		if !c.isZero() && closerTo(target, c.ID, best.ID) {
			best = c
		}
	}
	// Prefer the routing-table entry for the next digit — Pastry's prefix
	// rule — then let the leaf set refine.
	l := n.id.CommonPrefixDigits(target, digitBits)
	if l < numRows {
		consider(n.table[l][target.Digit(l, digitBits)])
	}
	for _, c := range n.leaves {
		consider(c)
	}
	for row := range n.table {
		for col := range n.table[row] {
			consider(n.table[row][col])
		}
	}
	if best.Addr == n.addr {
		return nextHopResp{Done: true, Next: n.self()}
	}
	return nextHopResp{Next: best}
}

// knownPeers returns the node's leaf set and routing-table entries.
func (n *Node) knownPeers() []ref {
	n.mu.Lock()
	defer n.mu.Unlock()
	seen := make(map[transport.NodeID]ref, len(n.leaves))
	for a, c := range n.leaves {
		seen[a] = c
	}
	for row := range n.table {
		for _, c := range n.table[row] {
			if !c.isZero() {
				seen[c.Addr] = c
			}
		}
	}
	out := make([]ref, 0, len(seen))
	for _, c := range seen {
		out = append(out, c)
	}
	return out
}

// integrate merges candidate peers into the leaf set and routing table.
func (n *Node) integrate(cands []ref) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, c := range cands {
		if c.isZero() || c.Addr == n.addr {
			continue
		}
		n.leaves[c.Addr] = c
		row := n.id.CommonPrefixDigits(c.ID, digitBits)
		if row >= numRows {
			continue
		}
		col := c.ID.Digit(row, digitBits)
		if n.table[row][col].isZero() {
			n.table[row][col] = c
		}
	}
	n.trimLeavesLocked()
}

// forget removes a departed peer from all local state.
func (n *Node) forget(peer ref) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.leaves, peer.Addr)
	for row := range n.table {
		for col := range n.table[row] {
			if n.table[row][col].Addr == peer.Addr {
				n.table[row][col] = ref{}
			}
		}
	}
}

// trimLeavesLocked keeps only the leafHalf nearest peers on each side of
// the ring. Callers hold n.mu.
func (n *Node) trimLeavesLocked() {
	if len(n.leaves) <= 2*leafHalf {
		return
	}
	type distEnt struct {
		c  ref
		cw dht.ID // clockwise distance from n to c
	}
	ents := make([]distEnt, 0, len(n.leaves))
	for _, c := range n.leaves {
		ents = append(ents, distEnt{c: c, cw: c.ID.Sub(n.id)})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].cw.Cmp(ents[j].cw) < 0 })
	keep := make(map[transport.NodeID]ref, 2*leafHalf)
	for i := 0; i < leafHalf && i < len(ents); i++ {
		keep[ents[i].c.Addr] = ents[i].c // clockwise side
	}
	for i := 0; i < leafHalf && i < len(ents); i++ {
		e := ents[len(ents)-1-i] // counter-clockwise side
		keep[e.c.Addr] = e.c
	}
	n.leaves = keep
}

// handleClaim yields the keys a joining peer now owns (those strictly
// closer to the joiner than to this node).
func (n *Node) handleClaim(joiner ref) claimResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[dht.Key]any)
	for k, v := range n.store {
		h := dht.HashKey(k)
		if closerTo(h, joiner.ID, n.id) {
			out[k] = v
			delete(n.store, k)
			n.vers.Bump(k)
		}
	}
	return claimResp{Entries: out}
}

func (n *Node) storeSnapshot() map[dht.Key]any {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[dht.Key]any, len(n.store))
	for k, v := range n.store {
		out[k] = v
	}
	return out
}

// StoreLen returns the number of entries stored on the node.
func (n *Node) StoreLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.store)
}

// LeafSet returns the addresses currently in the node's leaf set.
func (n *Node) LeafSet() []transport.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]transport.NodeID, 0, len(n.leaves))
	for a := range n.leaves {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Config tunes an Overlay.
type Config struct {
	// MaxHops bounds one routed lookup; 0 means a generous default.
	MaxHops int
	// Seed drives entry-point selection.
	Seed int64
	// Replication copies each key to the owner's Replication-1 nearest
	// leaf-set members (PAST/Bamboo style). 0 or 1 disables; capped at
	// leafHalf.
	Replication int
	// Retry governs the replication RPCs (replica pushes and drops). Nil
	// selects a default of 3 attempts with no backoff sleep — the simulated
	// network fails synchronously, so waiting buys nothing; real
	// deployments should supply a policy with a real Sleep.
	Retry *dht.RetryPolicy
	// Seeds names remote entry points for routing when the overlay manages
	// no local node (a client dialing a daemon cluster) or its first local
	// node must join an overlay hosted elsewhere. Over TCP a seed is a
	// dialable address; its identifier is the hash of that address.
	Seeds []transport.NodeID
}

// Overlay manages a set of Pastry nodes and exposes them as one dht.DHT.
type Overlay struct {
	net         transport.Interface
	maxHops     int
	replication int

	mu    sync.Mutex
	nodes map[transport.NodeID]*Node
	order []transport.NodeID
	// crashed retains crashed peers' node objects (volatile state already
	// wiped) so RestartNode can revive them under the same identity.
	crashed        map[transport.NodeID]*Node
	seeds          []ref
	rng            *rand.Rand
	retrier        *dht.Retrier
	lastReplicaErr error
	lastMaintErr   error

	// Lookups counts routed lookups; Hops counts next-hop RPCs.
	Lookups metrics.Counter
	Hops    metrics.Counter
	// ReplicationErrors counts replica pushes and drops that still failed
	// after the retry budget — replicas that stay missing until the next
	// stabilization round repairs them.
	ReplicationErrors metrics.Counter
	// MaintenanceErrors counts failed maintenance RPCs — the retire
	// notices a departing node sends and the announce messages that make
	// stabilized links symmetric. Each failure leaves a peer with stale
	// state until a later round repairs it; the counter surfaces what the
	// old fire-and-forget `_, _ = net.Call(...)` discarded.
	MaintenanceErrors metrics.Counter
}

var (
	_ dht.DHT        = (*Overlay)(nil)
	_ dht.Enumerator = (*Overlay)(nil)
)

// NewOverlay creates an empty overlay on net.
func NewOverlay(net transport.Interface, cfg Config) *Overlay {
	maxHops := cfg.MaxHops
	if maxHops <= 0 {
		maxHops = 512
	}
	replication := cfg.Replication
	if replication < 1 {
		replication = 1
	}
	if replication > leafHalf {
		replication = leafHalf
	}
	policy := dht.RetryPolicy{MaxAttempts: 3, Seed: cfg.Seed, Sleep: dht.NoSleep}
	if cfg.Retry != nil {
		policy = *cfg.Retry
	}
	seeds := make([]ref, 0, len(cfg.Seeds))
	for _, s := range cfg.Seeds {
		seeds = append(seeds, ref{Addr: s, ID: dht.HashString(string(s))})
	}
	return &Overlay{
		net:         net,
		seeds:       seeds,
		maxHops:     maxHops,
		replication: replication,
		nodes:       make(map[transport.NodeID]*Node),
		crashed:     make(map[transport.NodeID]*Node),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		retrier:     dht.NewRetrier(policy, nil),
	}
}

// ReplicationRetrier exposes the retry executor guarding replication RPCs,
// so tests and experiments can inspect its counters and breaker states.
func (o *Overlay) ReplicationRetrier() *dht.Retrier { return o.retrier }

// LastReplicationError returns the most recent replication push or drop
// that failed after exhausting its retry budget, or nil.
func (o *Overlay) LastReplicationError() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.lastReplicaErr
}

// LastMaintenanceError returns the most recent failed maintenance RPC, or
// nil. Pair with MaintenanceErrors to see both rate and cause.
func (o *Overlay) LastMaintenanceError() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.lastMaintErr
}

// noteMaintenanceError records one failed maintenance RPC.
func (o *Overlay) noteMaintenanceError(err error) {
	o.MaintenanceErrors.Inc()
	o.mu.Lock()
	o.lastMaintErr = err
	o.mu.Unlock()
}

// AddNode creates and joins a node at addr.
func (o *Overlay) AddNode(addr transport.NodeID) (*Node, error) {
	o.mu.Lock()
	if _, dup := o.nodes[addr]; dup {
		o.mu.Unlock()
		return nil, fmt.Errorf("pastry: node %q already in overlay", addr)
	}
	// An overlay with remote seeds is never "empty": its first local node
	// joins the overlay the seeds belong to instead of standing alone.
	empty := len(o.nodes) == 0 && len(o.seeds) == 0
	o.mu.Unlock()

	n, err := newNode(o.net, addr)
	if err != nil {
		return nil, err
	}
	if !empty {
		if err := o.join(n); err != nil {
			o.net.Deregister(addr)
			return nil, err
		}
	}
	o.mu.Lock()
	o.nodes[addr] = n
	o.order = append(o.order, addr)
	sort.Slice(o.order, func(i, j int) bool { return o.order[i] < o.order[j] })
	o.mu.Unlock()
	return n, nil
}

// join wires a new node in: route to the current owner of its identifier,
// seed local state from that node's view, announce, and claim keys.
func (o *Overlay) join(n *Node) error {
	owner, err := o.route(n.id)
	if err != nil {
		return fmt.Errorf("pastry: join %q: %w", n.addr, err)
	}
	peersAny, err := o.net.Call(clientAddr, owner.Addr, getPeersReq{})
	if err != nil {
		return fmt.Errorf("pastry: join %q: fetch peers: %w", n.addr, err)
	}
	peers, _ := peersAny.(getPeersResp)
	n.integrate(append(peers.Peers, owner))

	// Announce to everyone we now know, so they learn about us, and claim
	// the keys we own from each (ownership can move from any near peer).
	for _, p := range n.knownPeers() {
		if _, err := o.net.Call(n.addr, p.Addr, announceReq{Peer: n.self()}); err != nil {
			continue
		}
		claimAny, err := o.net.Call(n.addr, p.Addr, claimReq{Joiner: n.self()})
		if err != nil {
			continue
		}
		if claim, ok := claimAny.(claimResp); ok && len(claim.Entries) > 0 {
			n.mu.Lock()
			for k, v := range claim.Entries {
				n.store[k] = v
				n.vers.Bump(k)
			}
			n.mu.Unlock()
		}
	}
	return nil
}

// RemoveNode gracefully departs a node, handing its keys to the next-best
// owner and telling peers to forget it.
func (o *Overlay) RemoveNode(addr transport.NodeID) error {
	o.mu.Lock()
	n, ok := o.nodes[addr]
	if ok {
		delete(o.nodes, addr)
		o.order = removeAddr(o.order, addr)
	}
	last := len(o.nodes) == 0
	o.mu.Unlock()
	if !ok {
		return fmt.Errorf("pastry: node %q not in overlay", addr)
	}
	defer o.net.Deregister(addr)

	entries := n.storeSnapshot()
	peers := n.knownPeers()
	// A true singleton — the process's last local node knowing no remote
	// peers — departs silently; a daemon's only node has remote peers in
	// its tables and hands its shard off below.
	if last && len(peers) == 0 {
		return nil
	}
	// Tell peers to forget us before handing off, so re-routes skip us. A
	// peer that misses the notice keeps a dead routing entry until its next
	// stabilization probe, so failures are counted rather than fatal.
	for _, p := range peers {
		if _, err := o.net.Call(addr, p.Addr, retireReq{Peer: n.self()}); err != nil {
			o.noteMaintenanceError(fmt.Errorf("pastry: retire notice to %q from %q: %w", p.Addr, addr, err))
		}
	}
	if len(entries) > 0 {
		// Per-key handoff to the next-closest known peer.
		batches := make(map[transport.NodeID]map[dht.Key]any)
		for k, v := range entries {
			h := dht.HashKey(k)
			var best ref
			for _, p := range peers {
				if best.isZero() || closerTo(h, p.ID, best.ID) {
					best = p
				}
			}
			if best.isZero() {
				continue
			}
			if batches[best.Addr] == nil {
				batches[best.Addr] = make(map[dht.Key]any)
			}
			batches[best.Addr][k] = v
		}
		for dst, batch := range batches {
			if _, err := o.net.Call(addr, dst, handoffReq{Entries: batch}); err != nil {
				return fmt.Errorf("pastry: leave %q: handoff to %q: %w", addr, dst, err)
			}
		}
	}
	return nil
}

// CrashNode fails a node abruptly: its volatile state — stored keys,
// replicas, leaf set, routing table — is destroyed (transport Crash →
// Node.OnCrash), not merely hidden behind a partition. Peers discover the
// failure during Stabilize; RestartNode can later revive the identity.
func (o *Overlay) CrashNode(addr transport.NodeID) error {
	o.mu.Lock()
	n, ok := o.nodes[addr]
	if ok {
		delete(o.nodes, addr)
		o.order = removeAddr(o.order, addr)
		o.crashed[addr] = n
	}
	o.mu.Unlock()
	if !ok {
		return fmt.Errorf("pastry: node %q not in overlay", addr)
	}
	return o.net.Crash(addr)
}

// RestartNode revives a crashed node under its old identity: the network
// registration comes back up, the node rejoins (re-seeding its leaf set and
// routing table from the current owner of its identifier and claiming back
// the keys it owns), and the replication retrier forgets the peer's past
// failures so its circuit breaker does not shed traffic to a now-healthy
// node.
func (o *Overlay) RestartNode(addr transport.NodeID) (*Node, error) {
	o.mu.Lock()
	n, ok := o.crashed[addr]
	if ok {
		delete(o.crashed, addr)
	}
	empty := len(o.nodes) == 0
	o.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("pastry: node %q is not crashed", addr)
	}
	if err := o.net.Restart(addr); err != nil {
		o.mu.Lock()
		o.crashed[addr] = n
		o.mu.Unlock()
		return nil, err
	}
	if !empty {
		if err := o.join(n); err != nil {
			// Rejoin failed: put the node back down so a later restart
			// attempt starts clean.
			o.net.SetDown(addr, true)
			o.mu.Lock()
			o.crashed[addr] = n
			o.mu.Unlock()
			return nil, err
		}
	}
	o.mu.Lock()
	o.nodes[addr] = n
	o.order = append(o.order, addr)
	sort.Slice(o.order, func(i, j int) bool { return o.order[i] < o.order[j] })
	o.mu.Unlock()
	o.retrier.ResetOwner(string(addr))
	return n, nil
}

// CrashedNodes returns the addresses of crashed, restartable nodes in
// sorted order — the churn scheduler's restart candidates.
func (o *Overlay) CrashedNodes() []transport.NodeID {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]transport.NodeID, 0, len(o.crashed))
	for addr := range o.crashed {
		out = append(out, addr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func removeAddr(order []transport.NodeID, addr transport.NodeID) []transport.NodeID {
	out := order[:0]
	for _, a := range order {
		if a != addr {
			out = append(out, a)
		}
	}
	return out
}

// Stabilize runs Bamboo-style periodic repair: every node probes its known
// peers, drops dead ones, merges the leaf sets of live neighbours, and
// rebuilds its routing table.
func (o *Overlay) Stabilize(rounds int) {
	for i := 0; i < rounds; i++ {
		for _, addr := range o.Nodes() {
			n, ok := o.nodeAt(addr)
			if !ok {
				continue
			}
			o.stabilizeNode(n)
		}
		// Replica leases expire only after every node has re-pushed its
		// primaries this round, so current targets are always refreshed
		// before their lease is checked. Expired copies are offered to the
		// key's current owner rather than destroyed — see
		// relocateStaleReplicas.
		if o.replication > 1 {
			for _, addr := range o.Nodes() {
				if n, ok := o.nodeAt(addr); ok {
					o.relocateStaleReplicas(n)
				}
			}
		}
	}
}

func (o *Overlay) stabilizeNode(n *Node) {
	known := n.knownPeers()
	live := make([]ref, 0, len(known))
	var dead []ref
	for _, p := range known {
		if _, err := o.net.Call(n.addr, p.Addr, pingReq{}); err != nil {
			dead = append(dead, p)
		} else {
			live = append(live, p)
		}
	}
	for _, p := range dead {
		n.forget(p)
	}
	merged := append([]ref(nil), live...)
	for _, p := range live {
		peersAny, err := o.net.Call(n.addr, p.Addr, getPeersReq{})
		if err != nil {
			continue
		}
		if resp, ok := peersAny.(getPeersResp); ok {
			merged = append(merged, resp.Peers...)
		}
	}
	// Verify second-hand peers are alive before adopting them.
	adopted := make([]ref, 0, len(merged))
	seen := make(map[transport.NodeID]bool, len(merged))
	for _, p := range merged {
		if p.Addr == n.addr || seen[p.Addr] {
			continue
		}
		seen[p.Addr] = true
		if _, err := o.net.Call(n.addr, p.Addr, pingReq{}); err == nil {
			adopted = append(adopted, p)
		}
	}
	n.integrate(adopted)
	// Announce ourselves to newly learned peers so links become symmetric.
	// A lost announce delays symmetry to a later round; count it so churn
	// outpacing repair is visible.
	for _, p := range adopted {
		if _, err := o.net.Call(n.addr, p.Addr, announceReq{Peer: n.self()}); err != nil {
			o.noteMaintenanceError(fmt.Errorf("pastry: announce to %q from %q: %w", p.Addr, n.addr, err))
		}
	}
	o.promoteOwnedReplicas(n)
	o.reReplicate(n)
}

// Nodes returns the managed node addresses in sorted order.
func (o *Overlay) Nodes() []transport.NodeID {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]transport.NodeID(nil), o.order...)
}

// NumNodes returns the number of managed nodes.
func (o *Overlay) NumNodes() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.nodes)
}

func (o *Overlay) nodeAt(addr transport.NodeID) (*Node, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	n, ok := o.nodes[addr]
	return n, ok
}

func (o *Overlay) pickEntry() (*Node, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.order) == 0 {
		return nil, dht.ErrNoPeers
	}
	return o.nodes[o.order[o.rng.Intn(len(o.order))]], nil
}

// pickEntryRef selects a routing entry point: a live managed node when any
// exist, otherwise a configured seed (client/daemon mode).
func (o *Overlay) pickEntryRef() (ref, error) {
	if n, err := o.pickEntry(); err == nil {
		return n.self(), nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.seeds) == 0 {
		return ref{}, dht.ErrNoPeers
	}
	return o.seeds[o.rng.Intn(len(o.seeds))], nil
}

// route resolves the owner of target, retrying across entry points when
// stale state fails a trace.
func (o *Overlay) route(target dht.ID) (ref, error) {
	const retries = 3
	var lastErr error
	for attempt := 0; attempt < retries; attempt++ {
		entry, err := o.pickEntryRef()
		if err != nil {
			return ref{}, err
		}
		found, err := o.trace(entry, target)
		if err == nil {
			o.Lookups.Inc()
			return found, nil
		}
		lastErr = err
	}
	return ref{}, fmt.Errorf("%w: %v", ErrLookupFailed, lastErr)
}

func (o *Overlay) trace(cur ref, target dht.ID) (ref, error) {
	for hop := 0; hop < o.maxHops; hop++ {
		respAny, err := o.net.Call(clientAddr, cur.Addr, nextHopReq{Target: target})
		o.Hops.Inc()
		if err != nil {
			return ref{}, fmt.Errorf("pastry: step via %q: %w", cur.Addr, err)
		}
		resp, ok := respAny.(nextHopResp)
		if !ok {
			return ref{}, fmt.Errorf("pastry: step via %q: bad response %T", cur.Addr, respAny)
		}
		if resp.Done {
			return cur, nil
		}
		if !closerTo(target, resp.Next.ID, cur.ID) {
			return ref{}, fmt.Errorf("pastry: non-monotone hop %q → %q", cur.Addr, resp.Next.Addr)
		}
		cur = resp.Next
	}
	return ref{}, fmt.Errorf("pastry: exceeded %d hops", o.maxHops)
}

// Put implements dht.DHT.
func (o *Overlay) Put(key dht.Key, value any) error {
	owner, err := o.route(dht.HashKey(key))
	if err != nil {
		return err
	}
	if _, err := o.net.Call(clientAddr, owner.Addr, storeReq{Key: key, Value: value}); err != nil {
		return err
	}
	o.replicate(owner, key, value)
	return nil
}

// Get implements dht.DHT.
func (o *Overlay) Get(key dht.Key) (any, bool, error) {
	owner, err := o.route(dht.HashKey(key))
	if err != nil {
		return nil, false, err
	}
	respAny, err := o.net.Call(clientAddr, owner.Addr, retrieveReq{Key: key})
	if err != nil {
		return nil, false, err
	}
	resp, ok := respAny.(retrieveResp)
	if !ok {
		return nil, false, fmt.Errorf("pastry: bad retrieve response %T", respAny)
	}
	return resp.Value, resp.Found, nil
}

// Remove implements dht.DHT.
func (o *Overlay) Remove(key dht.Key) error {
	owner, err := o.route(dht.HashKey(key))
	if err != nil {
		return err
	}
	if _, err := o.net.Call(clientAddr, owner.Addr, removeReq{Key: key}); err != nil {
		return err
	}
	o.dropReplicas(owner, key)
	return nil
}

// Apply implements dht.DHT: the post-apply value is pushed to the leaf-set
// replicas.
func (o *Overlay) Apply(key dht.Key, fn dht.ApplyFunc) error {
	owner, err := o.route(dht.HashKey(key))
	if err != nil {
		return err
	}
	if !transport.SupportsInline(o.net) {
		// A closure cannot cross a real socket: run the transform
		// client-side under the wire-safe versioned CAS protocol.
		value, keep, err := dht.RemoteApply(func(req any) (any, error) {
			return o.net.Call(clientAddr, owner.Addr, req)
		}, key, fn)
		if err != nil {
			return err
		}
		if o.replication > 1 {
			if keep {
				o.replicate(owner, key, value)
			} else {
				o.dropReplicas(owner, key)
			}
		}
		return nil
	}
	respAny, err := o.net.Call(clientAddr, owner.Addr, applyReq{Key: key, Fn: fn})
	if err != nil {
		return err
	}
	if resp, ok := respAny.(applyResp); ok && o.replication > 1 {
		if resp.Keep {
			o.replicate(owner, key, resp.Value)
		} else {
			o.dropReplicas(owner, key)
		}
	}
	return nil
}

// Owner implements dht.DHT.
func (o *Overlay) Owner(key dht.Key) (string, error) {
	owner, err := o.route(dht.HashKey(key))
	if err != nil {
		return "", err
	}
	return string(owner.Addr), nil
}

// Range implements dht.Enumerator.
func (o *Overlay) Range(fn func(key dht.Key, value any) bool) error {
	for _, addr := range o.Nodes() {
		n, ok := o.nodeAt(addr)
		if !ok {
			continue
		}
		for k, v := range n.storeSnapshot() {
			if !fn(k, v) {
				return nil
			}
		}
	}
	return nil
}

// MeanRouteLength returns the average hops per completed lookup so far.
func (o *Overlay) MeanRouteLength() float64 {
	lookups := o.Lookups.Load()
	if lookups == 0 {
		return 0
	}
	return float64(o.Hops.Load()) / float64(lookups)
}
