package pastry

import (
	"fmt"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/simnet"
)

func buildReplicatedOverlay(t *testing.T, n, replication int) *Overlay {
	t.Helper()
	net := simnet.New(simnet.Options{})
	o := NewOverlay(net, Config{Seed: 1, Replication: replication})
	for i := 0; i < n; i++ {
		if _, err := o.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize(2)
	return o
}

func TestLeafSetReplicationSurvivesCrash(t *testing.T) {
	o := buildReplicatedOverlay(t, 14, 3)
	for i := 0; i < 250; i++ {
		if err := o.Put(dht.Key(fmt.Sprintf("rk%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize(1) // settle replica placement
	for _, victim := range []simnet.NodeID{"node-2", "node-11"} {
		if err := o.CrashNode(victim); err != nil {
			t.Fatal(err)
		}
		o.Stabilize(2)
	}
	lost := 0
	for i := 0; i < 250; i++ {
		v, ok, err := o.Get(dht.Key(fmt.Sprintf("rk%d", i)))
		if err != nil || !ok || v != i {
			lost++
		}
	}
	if lost != 0 {
		t.Errorf("%d of 250 keys lost after two crashes with r=3", lost)
	}
}

func TestLeafSetReplicationApply(t *testing.T) {
	o := buildReplicatedOverlay(t, 10, 2)
	inc := func(cur any, ok bool) (any, bool) {
		if !ok {
			return 1, true
		}
		n, _ := cur.(int)
		return n + 1, true
	}
	for i := 0; i < 6; i++ {
		if err := o.Apply("ctr", inc); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize(1)
	owner, err := o.Owner("ctr")
	if err != nil {
		t.Fatal(err)
	}
	if err := o.CrashNode(simnet.NodeID(owner)); err != nil {
		t.Fatal(err)
	}
	o.Stabilize(2)
	v, ok, err := o.Get("ctr")
	if err != nil || !ok || v != 6 {
		t.Fatalf("counter after owner crash = %v, %v, %v", v, ok, err)
	}
	// Post-crash writes promote the replica and keep counting.
	if err := o.Apply("ctr", inc); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := o.Get("ctr"); v != 7 {
		t.Fatalf("counter after post-crash apply = %v", v)
	}
}

func TestLeafSetReplicationRemoveDropsReplicas(t *testing.T) {
	o := buildReplicatedOverlay(t, 8, 3)
	if err := o.Put("gone", "x"); err != nil {
		t.Fatal(err)
	}
	o.Stabilize(1)
	if err := o.Remove("gone"); err != nil {
		t.Fatal(err)
	}
	owner, err := o.Owner("gone")
	if err != nil {
		t.Fatal(err)
	}
	if err := o.CrashNode(simnet.NodeID(owner)); err != nil {
		t.Fatal(err)
	}
	o.Stabilize(2)
	if _, ok, _ := o.Get("gone"); ok {
		t.Error("removed key resurrected from a replica")
	}
}

func TestReplicationClamped(t *testing.T) {
	o := NewOverlay(simnet.New(simnet.Options{}), Config{Replication: 99})
	if o.replication != leafHalf {
		t.Errorf("replication = %d, want clamp at %d", o.replication, leafHalf)
	}
}

func TestReplicasHeldOnNeighbours(t *testing.T) {
	o := buildReplicatedOverlay(t, 10, 3)
	for i := 0; i < 100; i++ {
		if err := o.Put(dht.Key(fmt.Sprintf("hk%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize(1)
	primaries, replicas := 0, 0
	for _, addr := range o.Nodes() {
		n, _ := o.nodeAt(addr)
		primaries += n.StoreLen()
		replicas += n.ReplicaLen()
	}
	if primaries != 100 {
		t.Errorf("primary copies = %d, want 100", primaries)
	}
	if replicas < 150 || replicas > 200 {
		t.Errorf("replica copies = %d, want ≈ 200 for r=3", replicas)
	}
}
