package pastry

import (
	"fmt"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/simnet"
)

func buildReplicatedOverlay(t *testing.T, n, replication int) *Overlay {
	t.Helper()
	net := simnet.New(simnet.Options{})
	o := NewOverlay(net, Config{Seed: 1, Replication: replication})
	for i := 0; i < n; i++ {
		if _, err := o.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize(2)
	return o
}

func TestLeafSetReplicationSurvivesCrash(t *testing.T) {
	o := buildReplicatedOverlay(t, 14, 3)
	for i := 0; i < 250; i++ {
		if err := o.Put(dht.Key(fmt.Sprintf("rk%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize(1) // settle replica placement
	for _, victim := range []simnet.NodeID{"node-2", "node-11"} {
		if err := o.CrashNode(victim); err != nil {
			t.Fatal(err)
		}
		o.Stabilize(2)
	}
	lost := 0
	for i := 0; i < 250; i++ {
		v, ok, err := o.Get(dht.Key(fmt.Sprintf("rk%d", i)))
		if err != nil || !ok || v != i {
			lost++
		}
	}
	if lost != 0 {
		t.Errorf("%d of 250 keys lost after two crashes with r=3", lost)
	}
}

func TestLeafSetReplicationApply(t *testing.T) {
	o := buildReplicatedOverlay(t, 10, 2)
	inc := func(cur any, ok bool) (any, bool) {
		if !ok {
			return 1, true
		}
		n, _ := cur.(int)
		return n + 1, true
	}
	for i := 0; i < 6; i++ {
		if err := o.Apply("ctr", inc); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize(1)
	owner, err := o.Owner("ctr")
	if err != nil {
		t.Fatal(err)
	}
	if err := o.CrashNode(simnet.NodeID(owner)); err != nil {
		t.Fatal(err)
	}
	o.Stabilize(2)
	v, ok, err := o.Get("ctr")
	if err != nil || !ok || v != 6 {
		t.Fatalf("counter after owner crash = %v, %v, %v", v, ok, err)
	}
	// Post-crash writes promote the replica and keep counting.
	if err := o.Apply("ctr", inc); err != nil {
		t.Fatal(err)
	}
	if v, _, err := o.Get("ctr"); err != nil {
		t.Fatal(err)
	} else if v != 7 {
		t.Fatalf("counter after post-crash apply = %v", v)
	}
}

func TestLeafSetReplicationRemoveDropsReplicas(t *testing.T) {
	o := buildReplicatedOverlay(t, 8, 3)
	if err := o.Put("gone", "x"); err != nil {
		t.Fatal(err)
	}
	o.Stabilize(1)
	if err := o.Remove("gone"); err != nil {
		t.Fatal(err)
	}
	owner, err := o.Owner("gone")
	if err != nil {
		t.Fatal(err)
	}
	if err := o.CrashNode(simnet.NodeID(owner)); err != nil {
		t.Fatal(err)
	}
	o.Stabilize(2)
	if _, ok, err := o.Get("gone"); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Error("removed key resurrected from a replica")
	}
}

// TestLeafSetReplicationConvergesUnderLoss mirrors the chord regression
// test for the silent replica-loss bug: with a lossy network during writes,
// retried pushes plus one clean repair round converge the replica set, and
// the converged copies really do survive a crash.
func TestLeafSetReplicationConvergesUnderLoss(t *testing.T) {
	const keys = 150
	net := simnet.New(simnet.Options{Seed: 42})
	o := NewOverlay(net, Config{Seed: 1, Replication: 3})
	for i := 0; i < 12; i++ {
		if _, err := o.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize(2)

	net.SetDropRate(0.1)
	for i := 0; i < keys; i++ {
		k := dht.Key(fmt.Sprintf("lk%d", i))
		var err error
		for attempt := 0; attempt < 8; attempt++ {
			if err = o.Put(k, i); err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("Put(%q) kept failing: %v", k, err)
		}
	}
	if st := o.ReplicationRetrier().Stats().Snapshot(); st.Retries == 0 {
		t.Error("no replication retries at DropRate 0.1 — retry layer not exercised")
	}

	net.SetDropRate(0)
	o.Stabilize(1)
	countCopies := func() (primaries int, holders map[dht.Key]int) {
		holders = make(map[dht.Key]int, keys)
		for _, addr := range o.Nodes() {
			n, _ := o.nodeAt(addr)
			primaries += n.StoreLen()
			n.mu.Lock()
			for k := range n.replicas {
				holders[k]++
			}
			n.mu.Unlock()
		}
		return primaries, holders
	}
	primaries, holders := countCopies()
	if primaries != keys {
		t.Errorf("primary copies = %d, want %d", primaries, keys)
	}
	// Exact reconvergence: placement is deterministic (each key's r-1
	// targets are its line of succession, never diverted by liveness
	// probes), so one clean repair round restores exactly r-1 copies per
	// key — the same invariant the chord regression test pins.
	for i := 0; i < keys; i++ {
		k := dht.Key(fmt.Sprintf("lk%d", i))
		if holders[k] != 2 {
			t.Errorf("key %q has %d replica copies after repair, want exactly 2 (r=3)", k, holders[k])
		}
	}

	// The converged copies must survive a crash: ownership moves to the
	// closest survivor, which promotes its replica, and repair restores the
	// full replica set for every key.
	if err := o.CrashNode("node-5"); err != nil {
		t.Fatal(err)
	}
	o.Stabilize(2)
	for i := 0; i < keys; i++ {
		k := dht.Key(fmt.Sprintf("lk%d", i))
		v, ok, err := o.Get(k)
		if err != nil || !ok || v != i {
			t.Errorf("key %q after crash: %v, %v, %v", k, v, ok, err)
		}
	}
	primaries, holders = countCopies()
	if primaries != keys {
		t.Errorf("primary copies after crash = %d, want %d", primaries, keys)
	}
	for i := 0; i < keys; i++ {
		k := dht.Key(fmt.Sprintf("lk%d", i))
		if holders[k] != 2 {
			t.Errorf("key %q has %d replica copies after crash repair, want exactly 2", k, holders[k])
		}
	}
}

func TestReplicationClamped(t *testing.T) {
	o := NewOverlay(simnet.New(simnet.Options{}), Config{Replication: 99})
	if o.replication != leafHalf {
		t.Errorf("replication = %d, want clamp at %d", o.replication, leafHalf)
	}
}

func TestReplicasHeldOnNeighbours(t *testing.T) {
	o := buildReplicatedOverlay(t, 10, 3)
	for i := 0; i < 100; i++ {
		if err := o.Put(dht.Key(fmt.Sprintf("hk%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize(1)
	primaries, replicas := 0, 0
	for _, addr := range o.Nodes() {
		n, _ := o.nodeAt(addr)
		primaries += n.StoreLen()
		replicas += n.ReplicaLen()
	}
	if primaries != 100 {
		t.Errorf("primary copies = %d, want 100", primaries)
	}
	// Deterministic per-key placement: exactly r-1 copies per key on a
	// lossless network.
	if replicas != 200 {
		t.Errorf("replica copies = %d, want exactly 200 for r=3", replicas)
	}
}

// countCopiesPerKeyPastry tallies, across all live nodes, how many primary
// and replica copies each key has.
func countCopiesPerKeyPastry(o *Overlay) (primaries map[dht.Key]int, replicas map[dht.Key]int) {
	primaries = make(map[dht.Key]int)
	replicas = make(map[dht.Key]int)
	for _, addr := range o.Nodes() {
		n, _ := o.nodeAt(addr)
		n.mu.Lock()
		for k := range n.store {
			primaries[k]++
		}
		for k := range n.replicas {
			replicas[k]++
		}
		n.mu.Unlock()
	}
	return primaries, replicas
}

// TestReplicaPlacementExactAfterRestartCycle is the regression test for the
// stale-replica leak: reReplicate only ever added copies, so when a crashed
// node restarted and reclaimed its keyspace, the nodes that had covered for
// it kept their now-stale copies forever — over-counted replica sets that
// serve stale reads and resurrect deleted keys on promotion. With the
// replica lease in place, the copy count per key must return to exactly
// r-1 after a full crash → failover → restart → reconverge cycle.
func TestReplicaPlacementExactAfterRestartCycle(t *testing.T) {
	const keys = 200
	o := buildReplicatedOverlay(t, 12, 3)
	for i := 0; i < keys; i++ {
		if err := o.Put(dht.Key(fmt.Sprintf("xk%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	o.Stabilize(2)

	checkExact := func(stage string) {
		t.Helper()
		primaries, replicas := countCopiesPerKeyPastry(o)
		for i := 0; i < keys; i++ {
			k := dht.Key(fmt.Sprintf("xk%d", i))
			if primaries[k] != 1 {
				t.Errorf("%s: key %q has %d primary copies, want exactly 1", stage, k, primaries[k])
			}
			if replicas[k] != 2 {
				t.Errorf("%s: key %q has %d replica copies, want exactly 2 (r=3)", stage, k, replicas[k])
			}
		}
		if t.Failed() {
			t.FailNow()
		}
	}
	checkExact("before churn")

	if err := o.CrashNode("node-5"); err != nil {
		t.Fatal(err)
	}
	o.Stabilize(3) // failover + lease expiry of displaced copies
	checkExact("after crash")

	if _, err := o.RestartNode("node-5"); err != nil {
		t.Fatal(err)
	}
	o.Stabilize(3) // rejoin, reclaim, and lease expiry of stale copies
	checkExact("after restart")

	for i := 0; i < keys; i++ {
		k := dht.Key(fmt.Sprintf("xk%d", i))
		v, ok, err := o.Get(k)
		if err != nil || !ok || v != i {
			t.Fatalf("after restart cycle Get(%q) = %v, %v, %v", k, v, ok, err)
		}
	}
}
