package dataset

import (
	"strings"
	"testing"
)

// FuzzLoadCSV: arbitrary text never panics, and whatever loads is valid.
func FuzzLoadCSV(f *testing.F) {
	f.Add("0.5,0.5\n0.1,0.9\n")
	f.Add("# comment\n\n1.5,-2\n")
	f.Add("abc")
	f.Add("0.1,0.2,0.3\n0.4\n")
	f.Fuzz(func(t *testing.T, s string) {
		records, err := LoadCSV(strings.NewReader(s))
		if err != nil {
			return
		}
		for _, r := range records {
			if !r.Key.Valid() {
				t.Fatalf("loaded invalid point %v", r.Key)
			}
		}
	})
}
