// Package dataset provides the evaluation data for the m-LIGHT
// reproduction.
//
// The paper evaluates on a real dataset of 123,593 postal addresses in the
// New York, Philadelphia and Boston metropolitan areas
// (rtreeportal.org/datasets/spatial/US/NE.zip), normalised to [0,1] per
// dimension. That file is not redistributable here, so SyntheticNE
// generates a statistical stand-in: a seeded hierarchical Gaussian mixture
// — three metropolitan clusters of unequal weight, each with town-level
// subclusters and street-level micro-clusters, over sparse uniform
// background noise. The experimentally relevant properties (cardinality
// and heavy multi-scale spatial skew, which drives bucket-split behaviour
// and load imbalance) are preserved; LoadCSV accepts the real file when
// available.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"mlight/internal/spatial"
)

// NESize is the cardinality of the paper's NE dataset.
const NESize = 123593

// metro describes one metropolitan cluster of the synthetic NE model.
type metro struct {
	x, y   float64
	weight float64 // share of non-noise points
	spread float64 // town-level standard deviation
	towns  int
}

// The three metros roughly follow the relative populations of the paper's
// areas (New York > Philadelphia > Boston); positions are arbitrary but
// fixed so every run of the suite sees the same space.
var metros = []metro{
	{x: 0.38, y: 0.55, weight: 0.50, spread: 0.060, towns: 14}, // New York
	{x: 0.18, y: 0.25, weight: 0.28, spread: 0.050, towns: 10}, // Philadelphia
	{x: 0.72, y: 0.80, weight: 0.22, spread: 0.045, towns: 8},  // Boston
}

// noiseFraction is the share of points drawn uniformly over the unit
// square (rural addresses).
const noiseFraction = 0.03

// streetSpread is the standard deviation of street-level micro-clusters.
const streetSpread = 0.0035

// SyntheticNE generates the full-size synthetic NE dataset.
func SyntheticNE(seed int64) []spatial.Record {
	return Generate(NESize, seed)
}

// Generate produces n records from the synthetic NE model, deterministically
// for a given seed. Records carry a sequential id in Data, so duplicates in
// space remain distinguishable.
func Generate(n int, seed int64) []spatial.Record {
	rng := rand.New(rand.NewSource(seed))

	// Lay out towns per metro, then weight towns so a few dominate (a
	// Zipf-flavoured skew, like real city centres versus suburbs).
	type town struct {
		x, y   float64
		cumulW float64
	}
	var towns []town
	var totalW float64
	for _, m := range metros {
		for t := 0; t < m.towns; t++ {
			w := m.weight / float64(t+1) // harmonic within-metro weights
			totalW += w
			towns = append(towns, town{
				x:      clamp01(m.x + rng.NormFloat64()*m.spread),
				y:      clamp01(m.y + rng.NormFloat64()*m.spread),
				cumulW: totalW,
			})
		}
	}

	out := make([]spatial.Record, n)
	for i := range out {
		var p spatial.Point
		if rng.Float64() < noiseFraction {
			p = spatial.Point{rng.Float64(), rng.Float64()}
		} else {
			r := rng.Float64() * totalW
			tw := towns[len(towns)-1]
			for _, t := range towns {
				if r <= t.cumulW {
					tw = t
					break
				}
			}
			p = spatial.Point{
				clamp01(tw.x + rng.NormFloat64()*streetSpread),
				clamp01(tw.y + rng.NormFloat64()*streetSpread),
			}
		}
		out[i] = spatial.Record{Key: p, Data: strconv.Itoa(i)}
	}
	return out
}

// Uniform produces n records uniformly distributed over the unit m-cube —
// the skew-free control used by ablation benchmarks.
func Uniform(n, m int, seed int64) []spatial.Record {
	rng := rand.New(rand.NewSource(seed))
	out := make([]spatial.Record, n)
	for i := range out {
		p := make(spatial.Point, m)
		for d := range p {
			p[d] = rng.Float64()
		}
		out[i] = spatial.Record{Key: p, Data: strconv.Itoa(i)}
	}
	return out
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// WriteCSV writes records as one "x,y,…" line each.
func WriteCSV(w io.Writer, records []spatial.Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range records {
		for d, c := range r.Key {
			if d > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(c, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadCSV reads records from "x,y,…" lines (as in the rtreeportal NE data
// after normalisation), clamping coordinates to [0,1]. Blank lines and
// lines starting with '#' are skipped. The dimensionality is taken from the
// first data line.
func LoadCSV(r io.Reader) ([]spatial.Record, error) {
	var out []spatial.Record
	dims := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if dims == 0 {
			dims = len(fields)
			if dims < 1 {
				return nil, fmt.Errorf("dataset: line %d: no fields", lineNo)
			}
		}
		if len(fields) != dims {
			return nil, fmt.Errorf("dataset: line %d: %d fields, want %d", lineNo, len(fields), dims)
		}
		p := make(spatial.Point, dims)
		for d, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d field %d: %w", lineNo, d, err)
			}
			if math.IsNaN(v) {
				return nil, fmt.Errorf("dataset: line %d field %d: NaN coordinate", lineNo, d)
			}
			p[d] = clamp01(v)
		}
		out = append(out, spatial.Record{Key: p, Data: strconv.Itoa(len(out))})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read: %w", err)
	}
	return out, nil
}
