package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(500, 42)
	b := Generate(500, 42)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("sizes %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key[0] != b[i].Key[0] || a[i].Key[1] != b[i].Key[1] || a[i].Data != b[i].Data {
			t.Fatalf("record %d differs between runs", i)
		}
	}
	c := Generate(500, 43)
	same := 0
	for i := range a {
		if a[i].Key[0] == c[i].Key[0] {
			same++
		}
	}
	if same > 10 {
		t.Errorf("different seeds produced %d identical coordinates", same)
	}
}

func TestGenerateValidAndSkewed(t *testing.T) {
	recs := Generate(20000, 7)
	// All in the unit square.
	for _, r := range recs {
		if !r.Key.Valid() || r.Key.Dim() != 2 {
			t.Fatalf("invalid point %v", r.Key)
		}
	}
	// Heavy skew: an 8×8 grid must show a very uneven histogram — the max
	// cell should hold far more than the uniform expectation.
	var grid [8][8]int
	for _, r := range recs {
		i := int(r.Key[0] * 8)
		j := int(r.Key[1] * 8)
		if i == 8 {
			i = 7
		}
		if j == 8 {
			j = 7
		}
		grid[i][j]++
	}
	maxCell := 0
	empties := 0
	for i := range grid {
		for j := range grid[i] {
			if grid[i][j] > maxCell {
				maxCell = grid[i][j]
			}
			if grid[i][j] < 20 {
				empties++
			}
		}
	}
	uniform := 20000.0 / 64
	if float64(maxCell) < 3*uniform {
		t.Errorf("max cell %d; expected ≥ 3× uniform %f (dataset not skewed)", maxCell, uniform)
	}
	if empties < 10 {
		t.Errorf("only %d near-empty cells; expected sparse countryside", empties)
	}
}

func TestSyntheticNESize(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generation")
	}
	recs := SyntheticNE(1)
	if len(recs) != NESize {
		t.Fatalf("SyntheticNE produced %d records, want %d", len(recs), NESize)
	}
}

func TestUniform(t *testing.T) {
	recs := Uniform(1000, 3, 5)
	if len(recs) != 1000 {
		t.Fatal("size")
	}
	var mean [3]float64
	for _, r := range recs {
		if r.Key.Dim() != 3 || !r.Key.Valid() {
			t.Fatalf("bad point %v", r.Key)
		}
		for d := 0; d < 3; d++ {
			mean[d] += r.Key[d]
		}
	}
	for d := 0; d < 3; d++ {
		if m := mean[d] / 1000; math.Abs(m-0.5) > 0.05 {
			t.Errorf("dim %d mean %f, want ≈ 0.5", d, m)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := Generate(200, 3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip %d of %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i].Key[0] != recs[i].Key[0] || back[i].Key[1] != recs[i].Key[1] {
			t.Fatalf("record %d: %v != %v", i, back[i].Key, recs[i].Key)
		}
	}
}

func TestLoadCSVEdgeCases(t *testing.T) {
	in := "# comment\n\n0.5,0.5\n1.5,-0.25\n"
	recs, err := LoadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	// Out-of-range values are clamped.
	if recs[1].Key[0] != 1 || recs[1].Key[1] != 0 {
		t.Errorf("clamping failed: %v", recs[1].Key)
	}
	if _, err := LoadCSV(strings.NewReader("0.1,0.2\n0.3\n")); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := LoadCSV(strings.NewReader("abc,0.2\n")); err == nil {
		t.Error("non-numeric field accepted")
	}
}
