// Package peerquery executes m-LIGHT range queries the way the paper's
// deployment does: Algorithm 3's recursive forwarding runs ON the peers
// that own the buckets, as installed application handlers (the over-DHT
// pattern OpenDHT enables), not as client-driven recursion. A query is one
// network message to the corner cell of the range's LCA; each reached peer
// reads its bucket from its own local store, decomposes the remaining range
// over its local tree, and forwards subranges to the next peers itself.
//
// Because forwarding happens between real simulated peers, the service can
// measure true critical-path latency under the network's latency model —
// milliseconds, not just rounds: every forward pays the DHT-lookup hops
// from the forwarding peer plus the one-way delivery delay, and parallel
// branches contribute their maximum.
package peerquery

import (
	"fmt"
	"time"

	"mlight/internal/bitlabel"
	"mlight/internal/chord"
	"mlight/internal/core"
	"mlight/internal/dht"
	"mlight/internal/simnet"
	"mlight/internal/spatial"
)

// clientAddr is the query initiator's network address.
const clientAddr simnet.NodeID = "peerquery-client"

// forwardReq asks the peer owning bucket key fmd(Beta) to resolve Query
// against the subtree rooted at Beta.
type forwardReq struct {
	Query spatial.Rect
	Beta  bitlabel.Label
}

// forwardResp carries the records found under the subtree plus the cost of
// resolving it: DHT-lookup count (bandwidth) and the critical-path time
// spent AFTER this peer received the request (latency).
type forwardResp struct {
	Records  []spatial.Record
	Lookups  int
	Critical time.Duration
}

// Result is a peer-executed range-query answer.
type Result struct {
	Records []spatial.Record
	// Lookups counts DHT-lookup operations across all peers (bandwidth).
	Lookups int
	// Latency is the critical-path simulated time from query start to the
	// last subrange's completion, under the network's latency model.
	Latency time.Duration
}

// Service installs and drives peer-side query execution over a Chord ring.
type Service struct {
	ring     *chord.Ring
	net      *simnet.Network
	dims     int
	maxDepth int
}

// New creates the service and installs its handler on every current node
// of the ring. The dims/maxDepth must match the index stored in the ring.
func New(ring *chord.Ring, net *simnet.Network, dims, maxDepth int) (*Service, error) {
	if dims < 1 {
		return nil, fmt.Errorf("peerquery: dims must be ≥ 1, got %d", dims)
	}
	if maxDepth < 1 || dims+1+maxDepth > bitlabel.MaxLen {
		return nil, fmt.Errorf("peerquery: maxDepth %d out of range for m=%d", maxDepth, dims)
	}
	s := &Service{ring: ring, net: net, dims: dims, maxDepth: maxDepth}
	s.Reinstall()
	return s, nil
}

// Reinstall re-installs the handler on every managed node (call after
// membership changes add nodes).
func (s *Service) Reinstall() {
	s.ring.InstallAppHandler(func(n *chord.Node) simnet.Handler {
		return &peerHandler{service: s, node: n}
	})
}

// peerHandler runs on one chord node.
type peerHandler struct {
	service *Service
	node    *chord.Node
}

// HandleRPC implements simnet.Handler for the application layer.
func (h *peerHandler) HandleRPC(from simnet.NodeID, req any) (any, error) {
	r, ok := req.(forwardReq)
	if !ok {
		return nil, fmt.Errorf("peerquery: %s: unknown request %T", h.node.Addr(), req)
	}
	return h.service.resolveAt(h.node, r)
}

// bucketKey mirrors the index's key derivation for a node label.
func bucketKey(l bitlabel.Label, m int) dht.Key {
	return core.Bucket{Label: l}.Key(m)
}

// resolveAt executes Algorithm 3 at the peer owning fmd(Beta)'s bucket.
func (s *Service) resolveAt(node *chord.Node, req forwardReq) (forwardResp, error) {
	m := s.dims
	v, ok := node.LocalGet(bucketKey(req.Beta, m))
	if !ok {
		// The subtree node is not materialised (β not internal): the range
		// lies inside a leaf somewhere above; fall back to a client-style
		// lookup from this peer. Rare in a consistent index.
		return s.fallbackLookup(node, req)
	}
	b, isBucket := v.(core.Bucket)
	if !isBucket {
		return forwardResp{}, fmt.Errorf("peerquery: key for %v holds %T", req.Beta, v)
	}
	resp := forwardResp{}
	resp.Records = filterRecords(b, req.Query)
	leafRegion, err := spatial.RegionOf(b.Label, m)
	if err != nil {
		return forwardResp{}, err
	}
	if leafRegion.Covers(req.Query) || b.Label == req.Beta {
		return resp, nil
	}
	local, err := bitlabel.NewLocalTree(b.Label, m)
	if err != nil {
		return forwardResp{}, err
	}
	for _, branch := range local.BranchNodesBelow(req.Beta) {
		g, err := spatial.RegionOf(branch, m)
		if err != nil {
			return forwardResp{}, err
		}
		sub, overlaps := g.Intersect(req.Query)
		if !overlaps {
			continue
		}
		child, err := s.forward(node.Addr(), forwardReq{Query: sub, Beta: branch})
		if err != nil {
			return forwardResp{}, err
		}
		resp.Records = append(resp.Records, child.Records...)
		resp.Lookups += child.Lookups
		if child.Critical > resp.Critical {
			resp.Critical = child.Critical // parallel branches
		}
	}
	return resp, nil
}

// forward routes a subquery from one peer to the owner of the branch
// node's bucket key: a DHT-lookup (hops × RTT) followed by one delivery,
// then the remote resolution. The returned Critical covers all of it.
func (s *Service) forward(from simnet.NodeID, req forwardReq) (forwardResp, error) {
	key := bucketKey(req.Beta, s.dims)
	owner, hops, err := s.ring.LookupFrom(from, key)
	if err != nil {
		return forwardResp{}, fmt.Errorf("peerquery: lookup %v: %w", req.Beta, err)
	}
	lookupTime := time.Duration(hops) * 2 * s.net.OneWayLatency(from, owner)
	respAny, err := s.net.Call(from, owner, req)
	if err != nil {
		return forwardResp{}, err
	}
	resp, ok := respAny.(forwardResp)
	if !ok {
		if e, isErr := respAny.(error); isErr {
			return forwardResp{}, e
		}
		return forwardResp{}, fmt.Errorf("peerquery: bad response %T", respAny)
	}
	resp.Lookups++ // this forward's DHT-lookup
	resp.Critical += lookupTime + s.net.OneWayLatency(from, owner)
	return resp, nil
}

// fallbackLookup finds the covering leaf by corner lookup through the ring
// (sequential probes from this peer).
func (s *Service) fallbackLookup(node *chord.Node, req forwardReq) (forwardResp, error) {
	m := s.dims
	corner := req.Query.Lo
	path, err := bitlabel.PathLabel(corner, s.maxDepth)
	if err != nil {
		return forwardResp{}, err
	}
	resp := forwardResp{}
	// Walk candidate ancestors of β upward until a bucket covers the query.
	for j := req.Beta.Len(); j >= m+1; j-- {
		cand := path.Prefix(minInt(j, path.Len()))
		key := bucketKey(cand, m)
		owner, hops, err := s.ring.LookupFrom(node.Addr(), key)
		if err != nil {
			return forwardResp{}, err
		}
		resp.Lookups++
		resp.Critical += time.Duration(hops)*2*s.net.OneWayLatency(node.Addr(), owner) +
			2*s.net.OneWayLatency(node.Addr(), owner)
		n, ok := s.ring.NodeAt(owner)
		if !ok {
			continue
		}
		if v, found := n.LocalGet(key); found {
			if b, isBucket := v.(core.Bucket); isBucket && b.Label.IsPrefixOf(path) {
				resp.Records = filterRecords(b, req.Query)
				return resp, nil
			}
		}
	}
	return resp, fmt.Errorf("peerquery: no leaf covers %v", req.Query)
}

// RangeQuery runs a peer-executed range query: the initiator computes the
// LCA locally, routes one message to the LCA's corner-cell peer, and the
// peers do the rest.
func (s *Service) RangeQuery(q spatial.Rect) (*Result, error) {
	if q.Dim() != s.dims {
		return nil, fmt.Errorf("peerquery: query has %d dims, service has %d", q.Dim(), s.dims)
	}
	lca, err := spatial.LCALabel(q, s.dims, s.maxDepth)
	if err != nil {
		return nil, err
	}
	entry := s.entryAddr()
	if entry == "" {
		return nil, dht.ErrNoPeers
	}
	resp, err := s.forward(entry, forwardReq{Query: q, Beta: lca})
	if err != nil {
		return nil, err
	}
	return &Result{Records: resp.Records, Lookups: resp.Lookups, Latency: resp.Critical}, nil
}

// entryAddr picks the initiating peer (the first managed node).
func (s *Service) entryAddr() simnet.NodeID {
	nodes := s.ring.Nodes()
	if len(nodes) == 0 {
		return ""
	}
	return nodes[0]
}

func filterRecords(b core.Bucket, q spatial.Rect) []spatial.Record {
	var out []spatial.Record
	for i, n := 0, b.Load(); i < n; i++ {
		if q.Contains(b.KeyAt(i)) {
			out = append(out, b.RecordAt(i))
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
