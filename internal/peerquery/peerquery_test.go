package peerquery

import (
	"fmt"
	"testing"
	"time"

	"mlight/internal/chord"
	"mlight/internal/core"
	"mlight/internal/dataset"
	"mlight/internal/simnet"
	"mlight/internal/spatial"
	"mlight/internal/workload"
)

// buildStack assembles the full system: simnet with latency, chord ring,
// m-LIGHT index loaded with data, and the peer-query service.
func buildStack(t *testing.T, peers, records int, latency time.Duration) (*Service, *core.Index, []spatial.Record) {
	t.Helper()
	net := simnet.New(simnet.Options{Latency: simnet.ConstantLatency(latency)})
	ring := chord.NewRing(net, chord.Config{Seed: 1})
	for i := 0; i < peers; i++ {
		if _, err := ring.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ring.Stabilize(2)
	ix, err := core.New(ring, core.Options{ThetaSplit: 40, ThetaMerge: 20, MaxDepth: 22})
	if err != nil {
		t.Fatal(err)
	}
	recs := dataset.Generate(records, 3)
	for i, rec := range recs {
		if err := ix.Insert(rec); err != nil {
			t.Fatalf("insert #%d: %v", i, err)
		}
	}
	svc, err := New(ring, net, 2, 22)
	if err != nil {
		t.Fatal(err)
	}
	return svc, ix, recs
}

// TestPeerQueryMatchesClientQuery: peer-executed queries return exactly the
// records the client-driven algorithm returns.
func TestPeerQueryMatchesClientQuery(t *testing.T) {
	svc, ix, _ := buildStack(t, 16, 4000, time.Millisecond)
	gen, err := workload.NewRangeGenerator(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		q, err := gen.Span(0.15)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ix.RangeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := svc.RangeQuery(q)
		if err != nil {
			t.Fatalf("peer RangeQuery(%v): %v", q, err)
		}
		if len(got.Records) != len(want.Records) {
			t.Fatalf("peer query = %d records, client query = %d", len(got.Records), len(want.Records))
		}
		if got.Lookups < 1 {
			t.Fatalf("no lookups recorded: %+v", got)
		}
		if got.Latency <= 0 {
			t.Fatalf("no latency recorded: %+v", got)
		}
	}
}

// TestPeerQuerySmallRangeInsideLeaf exercises the fallback path (LCA not
// internal).
func TestPeerQuerySmallRangeInsideLeaf(t *testing.T) {
	svc, ix, recs := buildStack(t, 8, 600, time.Millisecond)
	// A tiny box around one known record.
	p := recs[17].Key
	lo := spatial.Point{clamp01(p[0] - 0.001), clamp01(p[1] - 0.001)}
	hi := spatial.Point{clamp01(p[0] + 0.001), clamp01(p[1] + 0.001)}
	q, err := spatial.NewRect(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ix.RangeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := svc.RangeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want.Records) || len(got.Records) == 0 {
		t.Fatalf("fallback query = %d records, want %d (≥1)", len(got.Records), len(want.Records))
	}
}

// TestLatencyScalesWithModel: doubling the link latency doubles the
// measured critical path (all costs are latency-proportional).
func TestLatencyScalesWithModel(t *testing.T) {
	q, err := spatial.NewRect(spatial.Point{0.2, 0.3}, spatial.Point{0.6, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	svc1, _, _ := buildStack(t, 12, 3000, time.Millisecond)
	res1, err := svc1.RangeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	svc2, _, _ := buildStack(t, 12, 3000, 2*time.Millisecond)
	res2, err := svc2.RangeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Latency <= 0 || res2.Latency != 2*res1.Latency {
		t.Errorf("latency did not scale with the model: %v vs %v", res1.Latency, res2.Latency)
	}
	// Same answers, same bandwidth regardless of latency model.
	if len(res1.Records) != len(res2.Records) || res1.Lookups != res2.Lookups {
		t.Errorf("results differ across latency models: %+v vs %+v",
			res1.Lookups, res2.Lookups)
	}
}

// TestLatencyBelowSequentialSum: parallel branch forwarding means the
// critical path is shorter than the sum of all per-forward costs would be,
// for a range wide enough to decompose.
func TestLatencyBelowSequentialSum(t *testing.T) {
	svc, _, _ := buildStack(t, 16, 4000, time.Millisecond)
	q, err := spatial.NewRect(spatial.Point{0.1, 0.1}, spatial.Point{0.9, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.RangeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lookups < 4 {
		t.Skipf("query decomposed into only %d forwards", res.Lookups)
	}
	// With L=1ms one-way, every forward costs at least 1ms delivery; a
	// fully sequential execution would take ≥ lookups × 1ms.
	sequentialFloor := time.Duration(res.Lookups) * time.Millisecond
	if res.Latency >= sequentialFloor {
		t.Errorf("critical path %v not below sequential floor %v (%d forwards)",
			res.Latency, sequentialFloor, res.Lookups)
	}
}

func TestServiceValidation(t *testing.T) {
	net := simnet.New(simnet.Options{})
	ring := chord.NewRing(net, chord.Config{Seed: 1})
	if _, err := New(ring, net, 0, 20); err == nil {
		t.Error("dims=0 accepted")
	}
	if _, err := New(ring, net, 2, 200); err == nil {
		t.Error("excessive depth accepted")
	}
	svc, err := New(ring, net, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RangeQuery(spatial.Rect{Lo: spatial.Point{0.1}, Hi: spatial.Point{0.2}}); err == nil {
		t.Error("wrong-dim query accepted")
	}
	if _, err := svc.RangeQuery(spatial.Rect{Lo: spatial.Point{0.1, 0.1}, Hi: spatial.Point{0.2, 0.2}}); err == nil {
		t.Error("query on empty ring succeeded")
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
