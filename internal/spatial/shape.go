package spatial

import (
	"fmt"
	"math"
)

// Shape is an arbitrary query region (paper §6: "the queried region can be
// of an arbitrary shape"). Queries route with the bounding box, prune
// subtrees whose cells the shape provably misses, and filter records with
// exact point membership.
type Shape interface {
	// BoundingBox returns a closed rectangle containing the shape.
	BoundingBox() Rect
	// ContainsPoint reports whether the shape contains p.
	ContainsPoint(p Point) bool
	// IntersectsRect reports whether the shape intersects the closed
	// rectangle. False positives cost extra traffic; false negatives lose
	// answers, so implementations must be conservative.
	IntersectsRect(r Rect) bool
}

// Circle is a Euclidean ball, the canonical non-rectangular query shape
// ("all restaurants within 2 km").
type Circle struct {
	Center Point
	Radius float64
}

var _ Shape = Circle{}

// NewCircle validates and builds a circle query.
func NewCircle(center Point, radius float64) (Circle, error) {
	if len(center) == 0 {
		return Circle{}, fmt.Errorf("spatial: circle needs a centre point")
	}
	if math.IsNaN(radius) || radius < 0 {
		return Circle{}, fmt.Errorf("spatial: invalid radius %v", radius)
	}
	return Circle{Center: center.Clone(), Radius: radius}, nil
}

// BoundingBox implements Shape, clipped to the unit cube.
func (c Circle) BoundingBox() Rect {
	lo := make(Point, len(c.Center))
	hi := make(Point, len(c.Center))
	for i, x := range c.Center {
		lo[i] = math.Max(0, x-c.Radius)
		hi[i] = math.Min(1, x+c.Radius)
	}
	return Rect{Lo: lo, Hi: hi}
}

// ContainsPoint implements Shape (closed ball).
func (c Circle) ContainsPoint(p Point) bool {
	if len(p) != len(c.Center) {
		return false
	}
	return c.distSqTo(p) <= c.Radius*c.Radius
}

// IntersectsRect implements Shape: the ball meets a rectangle iff the
// rectangle's closest point to the centre is within the radius.
func (c Circle) IntersectsRect(r Rect) bool {
	if len(r.Lo) != len(c.Center) {
		return false
	}
	sum := 0.0
	for i, x := range c.Center {
		closest := math.Min(math.Max(x, r.Lo[i]), r.Hi[i])
		d := x - closest
		sum += d * d
	}
	return sum <= c.Radius*c.Radius
}

func (c Circle) distSqTo(p Point) float64 {
	sum := 0.0
	for i := range c.Center {
		d := c.Center[i] - p[i]
		sum += d * d
	}
	return sum
}

// RectShape adapts a plain rectangle to the Shape interface.
type RectShape struct {
	R Rect
}

var _ Shape = RectShape{}

// BoundingBox implements Shape.
func (s RectShape) BoundingBox() Rect { return s.R }

// ContainsPoint implements Shape.
func (s RectShape) ContainsPoint(p Point) bool { return s.R.Contains(p) }

// IntersectsRect implements Shape.
func (s RectShape) IntersectsRect(r Rect) bool {
	if len(r.Lo) != len(s.R.Lo) {
		return false
	}
	for i := range r.Lo {
		if r.Hi[i] < s.R.Lo[i] || r.Lo[i] > s.R.Hi[i] {
			return false
		}
	}
	return true
}

// DistSq returns the squared Euclidean distance between two points of equal
// dimensionality.
func DistSq(a, b Point) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}
