package spatial

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewCircleValidation(t *testing.T) {
	if _, err := NewCircle(nil, 0.1); err == nil {
		t.Error("empty centre accepted")
	}
	if _, err := NewCircle(Point{0.5, 0.5}, -1); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := NewCircle(Point{0.5, 0.5}, math.NaN()); err == nil {
		t.Error("NaN radius accepted")
	}
	c, err := NewCircle(Point{0.5, 0.5}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// The constructor must not alias the caller's point.
	center := Point{0.5, 0.5}
	c2, _ := NewCircle(center, 0.1)
	center[0] = 0.9
	if c2.Center[0] != 0.5 {
		t.Error("NewCircle aliases its argument")
	}
	_ = c
}

func TestCircleContainsPoint(t *testing.T) {
	c := Circle{Center: Point{0.5, 0.5}, Radius: 0.2}
	if !c.ContainsPoint(Point{0.5, 0.5}) || !c.ContainsPoint(Point{0.5, 0.7}) {
		t.Error("circle misses its centre or boundary")
	}
	if c.ContainsPoint(Point{0.5, 0.71}) || c.ContainsPoint(Point{0.8, 0.8}) {
		t.Error("circle contains outside point")
	}
	if c.ContainsPoint(Point{0.5}) {
		t.Error("dim mismatch accepted")
	}
}

func TestCircleBoundingBoxClipped(t *testing.T) {
	c := Circle{Center: Point{0.05, 0.95}, Radius: 0.2}
	bb := c.BoundingBox()
	if bb.Lo[0] != 0 || bb.Hi[1] != 1 {
		t.Errorf("bounding box not clipped: %v", bb)
	}
	if math.Abs(bb.Hi[0]-0.25) > 1e-12 || math.Abs(bb.Lo[1]-0.75) > 1e-12 {
		t.Errorf("bounding box wrong: %v", bb)
	}
}

// TestCircleIntersectsRectProperty: IntersectsRect must be exact for the
// closest-point criterion — cross-checked against dense point sampling.
func TestCircleIntersectsRectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 2000; trial++ {
		c := Circle{
			Center: Point{rng.Float64(), rng.Float64()},
			Radius: rng.Float64() * 0.3,
		}
		lo := Point{rng.Float64() * 0.8, rng.Float64() * 0.8}
		hi := Point{lo[0] + rng.Float64()*0.2, lo[1] + rng.Float64()*0.2}
		r := Rect{Lo: lo, Hi: hi}
		got := c.IntersectsRect(r)
		// Oracle: closest point on the rect to the centre.
		cx := math.Min(math.Max(c.Center[0], lo[0]), hi[0])
		cy := math.Min(math.Max(c.Center[1], lo[1]), hi[1])
		want := DistSq(Point{cx, cy}, c.Center) <= c.Radius*c.Radius
		if got != want {
			t.Fatalf("IntersectsRect(%+v, %v) = %v, want %v", c, r, got, want)
		}
	}
	c := Circle{Center: Point{0.5, 0.5}, Radius: 0.1}
	if c.IntersectsRect(Rect{Lo: Point{0.1}, Hi: Point{0.2}}) {
		t.Error("dim mismatch accepted")
	}
}

// TestCircleShapeConsistency: every point the shape contains lies in its
// bounding box, and every rect containing such a point intersects.
func TestCircleShapeConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 1000; trial++ {
		c := Circle{
			Center: Point{rng.Float64(), rng.Float64()},
			Radius: rng.Float64() * 0.3,
		}
		p := Point{rng.Float64(), rng.Float64()}
		if !c.ContainsPoint(p) {
			continue
		}
		if !c.BoundingBox().Contains(p) {
			t.Fatalf("point %v in circle %+v but outside bounding box", p, c)
		}
		tiny := Rect{Lo: p.Clone(), Hi: p.Clone()}
		if !c.IntersectsRect(tiny) {
			t.Fatalf("degenerate rect at contained point %v reported disjoint", p)
		}
	}
}

func TestRectShape(t *testing.T) {
	r, _ := NewRect(Point{0.2, 0.2}, Point{0.6, 0.6})
	s := RectShape{R: r}
	if s.BoundingBox().Lo[0] != 0.2 {
		t.Error("bounding box wrong")
	}
	if !s.ContainsPoint(Point{0.4, 0.4}) || s.ContainsPoint(Point{0.1, 0.4}) {
		t.Error("membership wrong")
	}
	touch, _ := NewRect(Point{0.6, 0.6}, Point{0.8, 0.8})
	if !s.IntersectsRect(touch) {
		t.Error("touching rect reported disjoint")
	}
	far, _ := NewRect(Point{0.7, 0.7}, Point{0.8, 0.8})
	if s.IntersectsRect(far) {
		t.Error("disjoint rect reported intersecting")
	}
	if s.IntersectsRect(Rect{Lo: Point{0.1}, Hi: Point{0.2}}) {
		t.Error("dim mismatch accepted")
	}
}

func TestDistSq(t *testing.T) {
	if d := DistSq(Point{0, 0}, Point{3.0 / 5, 4.0 / 5}); math.Abs(d-1) > 1e-12 {
		t.Errorf("DistSq = %v, want 1", d)
	}
	if d := DistSq(Point{0.5}, Point{0.5}); d != 0 {
		t.Errorf("DistSq self = %v", d)
	}
}
