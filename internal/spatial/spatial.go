// Package spatial provides the geometric vocabulary of the m-LIGHT index:
// m-dimensional points in the unit cube, query rectangles, data records,
// and the cell regions addressed by kd-tree labels.
//
// Conventions. Data keys are points δ = <δ1,…,δm> with each δi ∈ [0,1]
// (paper §3.1). Cells produced by recursive bisection are half-open boxes
// [lo, hi) along each axis, except that a face at the upper boundary of the
// unit cube is closed so that the cube is exactly tiled. Query rectangles
// are closed boxes, matching the paper's example queries.
package spatial

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"mlight/internal/bitlabel"
)

// Point is a data key: an m-dimensional vector with coordinates in [0,1].
type Point []float64

// Clone returns a copy of p.
func (p Point) Clone() Point {
	out := make(Point, len(p))
	copy(out, p)
	return out
}

// Dim returns the dimensionality of p.
func (p Point) Dim() int { return len(p) }

// Valid reports whether all coordinates lie in [0,1] and are finite.
func (p Point) Valid() bool {
	for _, c := range p {
		if math.IsNaN(c) || c < 0 || c > 1 {
			return false
		}
	}
	return len(p) > 0
}

// String renders the point in the paper's <δ1, δ2, …> notation.
func (p Point) String() string {
	var sb strings.Builder
	sb.WriteByte('<')
	for i, c := range p {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(strconv.FormatFloat(c, 'g', -1, 64))
	}
	sb.WriteByte('>')
	return sb.String()
}

// Record is one indexed data record: a multi-dimensional key plus an opaque
// payload. Records are the unit of the paper's data-movement metric.
type Record struct {
	Key  Point
	Data string
}

// Rect is a closed query rectangle [Lo, Hi] in all dimensions.
type Rect struct {
	Lo, Hi Point
}

// NewRect validates and builds a rectangle. Lo and Hi must have equal
// dimensionality and Lo[i] <= Hi[i] in every dimension.
func NewRect(lo, hi Point) (Rect, error) {
	if len(lo) == 0 || len(lo) != len(hi) {
		return Rect{}, fmt.Errorf("spatial: rect corners have dims %d and %d", len(lo), len(hi))
	}
	for i := range lo {
		if math.IsNaN(lo[i]) || math.IsNaN(hi[i]) || lo[i] > hi[i] {
			return Rect{}, fmt.Errorf("spatial: invalid rect extent [%v, %v] in dim %d", lo[i], hi[i], i)
		}
	}
	return Rect{Lo: lo.Clone(), Hi: hi.Clone()}, nil
}

// Dim returns the rectangle's dimensionality.
func (r Rect) Dim() int { return len(r.Lo) }

// Contains reports whether the closed rectangle contains p.
func (r Rect) Contains(p Point) bool {
	if len(p) != len(r.Lo) {
		return false
	}
	for i := range p {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Area returns the product of the rectangle's extents.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Lo {
		a *= r.Hi[i] - r.Lo[i]
	}
	return a
}

// String renders the rectangle as [lo, hi] per dimension.
func (r Rect) String() string {
	var sb strings.Builder
	for i := range r.Lo {
		if i > 0 {
			sb.WriteString(" × ")
		}
		fmt.Fprintf(&sb, "[%g, %g]", r.Lo[i], r.Hi[i])
	}
	return sb.String()
}

// Region is a kd-tree cell: half-open [Lo, Hi) along each axis, with faces
// at the unit-cube boundary (Hi[i] == 1) closed.
type Region struct {
	Lo, Hi Point
}

// UnitCube returns the whole data space for dimensionality m.
func UnitCube(m int) Region {
	lo := make(Point, m)
	hi := make(Point, m)
	for i := range hi {
		hi[i] = 1
	}
	return Region{Lo: lo, Hi: hi}
}

// Dim returns the region's dimensionality.
func (g Region) Dim() int { return len(g.Lo) }

// Contains reports whether the cell contains point p under the half-open
// convention.
func (g Region) Contains(p Point) bool {
	if len(p) != len(g.Lo) {
		return false
	}
	for i := range p {
		if p[i] < g.Lo[i] {
			return false
		}
		if p[i] >= g.Hi[i] && g.Hi[i] != 1 {
			return false
		}
		if p[i] > g.Hi[i] {
			return false
		}
	}
	return true
}

// Overlaps reports whether the closed query rectangle q intersects the
// half-open cell g.
func (g Region) Overlaps(q Rect) bool {
	if len(q.Lo) != len(g.Lo) {
		return false
	}
	for i := range g.Lo {
		if q.Hi[i] < g.Lo[i] {
			return false
		}
		if q.Lo[i] >= g.Hi[i] && g.Hi[i] != 1 {
			return false
		}
		if q.Lo[i] > g.Hi[i] {
			return false
		}
	}
	return true
}

// Covers reports whether the cell fully covers the closed rectangle q.
func (g Region) Covers(q Rect) bool {
	if len(q.Lo) != len(g.Lo) {
		return false
	}
	for i := range g.Lo {
		if q.Lo[i] < g.Lo[i] {
			return false
		}
		if q.Hi[i] >= g.Hi[i] && g.Hi[i] != 1 {
			return false
		}
		if q.Hi[i] > g.Hi[i] {
			return false
		}
	}
	return true
}

// Intersect clips the closed rectangle q to the cell's closed hull,
// returning the overlapped subrange Ri = βi ∩ R of the paper's Algorithm 3.
// The boolean result is false when the intersection is empty.
func (g Region) Intersect(q Rect) (Rect, bool) {
	if !g.Overlaps(q) {
		return Rect{}, false
	}
	lo := make(Point, len(g.Lo))
	hi := make(Point, len(g.Lo))
	for i := range g.Lo {
		lo[i] = math.Max(q.Lo[i], g.Lo[i])
		hi[i] = math.Min(q.Hi[i], g.Hi[i])
	}
	return Rect{Lo: lo, Hi: hi}, true
}

// Rect returns the closed hull of the region, usable as a query covering
// exactly this cell.
func (g Region) Rect() Rect {
	return Rect{Lo: g.Lo.Clone(), Hi: g.Hi.Clone()}
}

// Halves splits the cell at its midpoint along dim, returning the lower
// (bit 0) and upper (bit 1) halves.
func (g Region) Halves(dim int) (lower, upper Region) {
	mid := (g.Lo[dim] + g.Hi[dim]) / 2
	lower = Region{Lo: g.Lo.Clone(), Hi: g.Hi.Clone()}
	upper = Region{Lo: g.Lo.Clone(), Hi: g.Hi.Clone()}
	lower.Hi[dim] = mid
	upper.Lo[dim] = mid
	return lower, upper
}

// String renders the region with half-open brackets.
func (g Region) String() string {
	var sb strings.Builder
	for i := range g.Lo {
		if i > 0 {
			sb.WriteString(" × ")
		}
		bracket := ")"
		if g.Hi[i] == 1 {
			bracket = "]"
		}
		fmt.Fprintf(&sb, "[%g, %g%s", g.Lo[i], g.Hi[i], bracket)
	}
	return sb.String()
}

// SplitDim returns the dimension that a node at the given label depth splits
// along: the space is halved along dimensions 0,1,…,m-1 cyclically, starting
// at the ordinary root (paper §3.2). depthBelowRoot counts edges below the
// ordinary root "#".
func SplitDim(depthBelowRoot, m int) int {
	return depthBelowRoot % m
}

// RegionOf computes the cell addressed by a kd-tree label for
// dimensionality m. The label must extend (or equal) the ordinary root; the
// virtual root and the ordinary root both address the whole space.
func RegionOf(l bitlabel.Label, m int) (Region, error) {
	root := bitlabel.Root(m)
	if l == bitlabel.VirtualRoot(m) || l == root {
		return UnitCube(m), nil
	}
	if !root.IsPrefixOf(l) {
		return Region{}, fmt.Errorf("spatial: label %v does not extend the %d-dimensional root", l, m)
	}
	g := UnitCube(m)
	for i := root.Len(); i < l.Len(); i++ {
		dim := SplitDim(i-root.Len(), m)
		lower, upper := g.Halves(dim)
		if l.At(i) == 0 {
			g = lower
		} else {
			g = upper
		}
	}
	return g, nil
}

// ZRegionOf computes the cell addressed by a plain z-order prefix (no root
// prefix): bit j halves dimension j mod m, exactly the partitioning of
// RegionOf below the ordinary root. PHT and DST address cells this way.
func ZRegionOf(l bitlabel.Label, m int) Region {
	g := UnitCube(m)
	for i := 0; i < l.Len(); i++ {
		dim := SplitDim(i, m)
		lower, upper := g.Halves(dim)
		if l.At(i) == 0 {
			g = lower
		} else {
			g = upper
		}
	}
	return g
}

// LCALabel computes the lowest internal node of the (conceptually infinite)
// space kd-tree that fully covers the closed rectangle q — the lowest common
// ancestor of the paper's Algorithm 2. maxDepth bounds the descent below the
// ordinary root. The result always extends or equals the ordinary root.
func LCALabel(q Rect, m, maxDepth int) (bitlabel.Label, error) {
	if q.Dim() != m {
		return bitlabel.Label{}, fmt.Errorf("spatial: rect dim %d != m %d", q.Dim(), m)
	}
	l := bitlabel.Root(m)
	g := UnitCube(m)
	for depth := 0; depth < maxDepth && l.Len() < bitlabel.MaxLen; depth++ {
		dim := SplitDim(depth, m)
		lower, upper := g.Halves(dim)
		switch {
		case lower.Covers(q):
			l = l.MustAppend(0)
			g = lower
		case upper.Covers(q):
			l = l.MustAppend(1)
			g = upper
		default:
			return l, nil
		}
	}
	return l, nil
}
