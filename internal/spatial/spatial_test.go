package spatial

import (
	"math/rand"
	"testing"

	"mlight/internal/bitlabel"
)

func TestPointBasics(t *testing.T) {
	p := Point{0.2, 0.4}
	if p.Dim() != 2 || !p.Valid() {
		t.Errorf("Dim/Valid wrong for %v", p)
	}
	q := p.Clone()
	q[0] = 0.9
	if p[0] != 0.2 {
		t.Error("Clone aliases the original")
	}
	if got := p.String(); got != "<0.2, 0.4>" {
		t.Errorf("String = %q", got)
	}
	if (Point{}).Valid() {
		t.Error("empty point valid")
	}
	if (Point{-0.1}).Valid() || (Point{1.1}).Valid() {
		t.Error("out-of-cube point valid")
	}
}

func TestNewRect(t *testing.T) {
	r, err := NewRect(Point{0.1, 0.6}, Point{0.3, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains(Point{0.2, 0.7}) || !r.Contains(Point{0.1, 0.6}) || !r.Contains(Point{0.3, 0.8}) {
		t.Error("closed rect should contain interior and boundary")
	}
	if r.Contains(Point{0.05, 0.7}) || r.Contains(Point{0.2, 0.9}) {
		t.Error("rect contains outside point")
	}
	if _, err := NewRect(Point{0.5}, Point{0.2}); err == nil {
		t.Error("inverted rect accepted")
	}
	if _, err := NewRect(Point{0.5}, Point{0.2, 0.3}); err == nil {
		t.Error("dim-mismatched rect accepted")
	}
	if _, err := NewRect(nil, nil); err == nil {
		t.Error("empty rect accepted")
	}
}

func TestRectArea(t *testing.T) {
	r, _ := NewRect(Point{0, 0}, Point{0.5, 0.2})
	if got := r.Area(); got != 0.1 {
		t.Errorf("Area = %v, want 0.1", got)
	}
}

func TestRegionContainsHalfOpen(t *testing.T) {
	g := Region{Lo: Point{0, 0}, Hi: Point{0.5, 0.5}}
	if !g.Contains(Point{0, 0}) || !g.Contains(Point{0.49, 0.49}) {
		t.Error("region misses interior points")
	}
	if g.Contains(Point{0.5, 0.2}) {
		t.Error("half-open region contains its upper face")
	}
	top := Region{Lo: Point{0.5, 0.5}, Hi: Point{1, 1}}
	if !top.Contains(Point{1, 1}) {
		t.Error("unit-cube boundary face should be closed")
	}
}

func TestRegionOverlapsCovers(t *testing.T) {
	g := Region{Lo: Point{0.25, 0.5}, Hi: Point{0.5, 0.75}}
	inside, _ := NewRect(Point{0.3, 0.55}, Point{0.4, 0.7})
	if !g.Overlaps(inside) || !g.Covers(inside) {
		t.Error("inside rect should overlap and be covered")
	}
	crossing, _ := NewRect(Point{0.4, 0.6}, Point{0.6, 0.7})
	if !g.Overlaps(crossing) || g.Covers(crossing) {
		t.Error("crossing rect should overlap but not be covered")
	}
	outside, _ := NewRect(Point{0.6, 0.1}, Point{0.9, 0.2})
	if g.Overlaps(outside) {
		t.Error("disjoint rect overlaps")
	}
	// A closed rect touching the region's open face at exactly Hi does not
	// overlap; touching Lo does.
	touchHi, _ := NewRect(Point{0.5, 0.5}, Point{0.7, 0.7})
	if g.Overlaps(touchHi) {
		t.Error("rect starting at open upper face overlaps")
	}
	touchLo, _ := NewRect(Point{0.1, 0.1}, Point{0.25, 0.5})
	if !g.Overlaps(touchLo) {
		t.Error("rect ending at closed lower face should overlap")
	}
	// Rect covering the whole cube is covered only by the whole cube.
	all, _ := NewRect(Point{0, 0}, Point{1, 1})
	if !UnitCube(2).Covers(all) {
		t.Error("unit cube should cover the all-rect")
	}
	if g.Covers(all) {
		t.Error("sub-region covers the all-rect")
	}
}

func TestRegionIntersect(t *testing.T) {
	g := Region{Lo: Point{0, 0}, Hi: Point{0.5, 0.5}}
	q, _ := NewRect(Point{0.25, 0.25}, Point{0.75, 0.75})
	ri, ok := g.Intersect(q)
	if !ok {
		t.Fatal("expected intersection")
	}
	if ri.Lo[0] != 0.25 || ri.Hi[0] != 0.5 || ri.Lo[1] != 0.25 || ri.Hi[1] != 0.5 {
		t.Errorf("Intersect = %v", ri)
	}
	far, _ := NewRect(Point{0.8, 0.8}, Point{0.9, 0.9})
	if _, ok := g.Intersect(far); ok {
		t.Error("disjoint Intersect reported overlap")
	}
}

func TestHalves(t *testing.T) {
	g := UnitCube(2)
	lo, hi := g.Halves(0)
	if lo.Hi[0] != 0.5 || hi.Lo[0] != 0.5 || lo.Hi[1] != 1 || hi.Hi[1] != 1 {
		t.Errorf("Halves(0) = %v, %v", lo, hi)
	}
	// Halves must not alias the parent.
	lo.Hi[1] = 0.123
	if g.Hi[1] != 1 {
		t.Error("Halves aliases parent region")
	}
}

func TestRegionOf(t *testing.T) {
	// 2-D: root covers everything; #0 = x<0.5; #01 = x<0.5, y>=0.5.
	m := 2
	root := bitlabel.Root(m)
	g, err := RegionOf(root, m)
	if err != nil {
		t.Fatal(err)
	}
	if g.Lo[0] != 0 || g.Hi[0] != 1 {
		t.Errorf("root region = %v", g)
	}
	l0 := root.MustAppend(0)
	g, err = RegionOf(l0, m)
	if err != nil {
		t.Fatal(err)
	}
	if g.Hi[0] != 0.5 || g.Hi[1] != 1 {
		t.Errorf("#0 region = %v", g)
	}
	l01 := l0.MustAppend(1)
	g, err = RegionOf(l01, m)
	if err != nil {
		t.Fatal(err)
	}
	if g.Hi[0] != 0.5 || g.Lo[1] != 0.5 {
		t.Errorf("#01 region = %v", g)
	}
	// Virtual root also addresses the whole space.
	g, err = RegionOf(bitlabel.VirtualRoot(m), m)
	if err != nil || g.Lo[0] != 0 || g.Hi[1] != 1 {
		t.Errorf("virtual root region = %v, %v", g, err)
	}
	// Non-root-prefixed labels are rejected.
	if _, err := RegionOf(bitlabel.MustParse("11"), m); err == nil {
		t.Error("bad label accepted")
	}
}

// TestRegionOfMatchesPathLabel: the leaf region computed by label descent
// contains exactly the points whose PathLabel it prefixes. This pins the
// consistency between Interleave's bit order and RegionOf's split order.
func TestRegionOfMatchesPathLabel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for m := 1; m <= 4; m++ {
		for trial := 0; trial < 400; trial++ {
			// Random label of moderate depth.
			l := bitlabel.Root(m)
			for d := rng.Intn(12); d > 0; d-- {
				l = l.MustAppend(byte(rng.Intn(2)))
			}
			g, err := RegionOf(l, m)
			if err != nil {
				t.Fatal(err)
			}
			p := make(Point, m)
			for i := range p {
				p[i] = rng.Float64()
			}
			depth := l.Len() - (m + 1)
			path, err := bitlabel.PathLabel(p, depth+m)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := l.IsPrefixOf(path), g.Contains(p); got != want {
				t.Fatalf("m=%d label=%v point=%v: prefix=%v but contains=%v (region %v, path %v)",
					m, l, p, got, want, g, path)
			}
		}
	}
}

func TestLCALabel(t *testing.T) {
	m := 2
	// The paper's example: R = [0.1,0.3]×[0.6,0.8] has LCA #10.
	// With this repo's dim-0-first split order the same rectangle placed as
	// x∈[0.6,0.8] (dim 0), y∈[0.1,0.3] (dim 1) must give #10: dim0 upper
	// half (bit 1), then dim1 lower half (bit 0).
	q, _ := NewRect(Point{0.6, 0.1}, Point{0.8, 0.3})
	lca, err := LCALabel(q, m, 30)
	if err != nil {
		t.Fatal(err)
	}
	if got := lca.Pretty(m); got != "#10" {
		t.Errorf("LCA = %s, want #10", got)
	}
	// A rect spanning the first split stays at the root.
	wide, _ := NewRect(Point{0.4, 0.4}, Point{0.6, 0.6})
	lca, err = LCALabel(wide, m, 30)
	if err != nil {
		t.Fatal(err)
	}
	if lca != bitlabel.Root(m) {
		t.Errorf("LCA of centered rect = %v, want root", lca)
	}
	// LCA region must cover the rect.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		lo := Point{rng.Float64(), rng.Float64()}
		hi := Point{lo[0] + rng.Float64()*(1-lo[0]), lo[1] + rng.Float64()*(1-lo[1])}
		q, err := NewRect(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		lca, err := LCALabel(q, m, 40)
		if err != nil {
			t.Fatal(err)
		}
		g, err := RegionOf(lca, m)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Covers(q) {
			t.Fatalf("LCA %v region %v does not cover %v", lca, g, q)
		}
		// And neither child covers it (lowest), unless capped by maxDepth.
		if lca.Len()-(m+1) < 40 {
			left := lca.MustAppend(0)
			right := lca.MustAppend(1)
			gl, _ := RegionOf(left, m)
			gr, _ := RegionOf(right, m)
			if gl.Covers(q) || gr.Covers(q) {
				t.Fatalf("LCA %v not lowest for %v", lca, q)
			}
		}
	}
	// Dimension mismatch errors.
	bad, _ := NewRect(Point{0.1}, Point{0.2})
	if _, err := LCALabel(bad, 2, 10); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestSplitDim(t *testing.T) {
	if SplitDim(0, 2) != 0 || SplitDim(1, 2) != 1 || SplitDim(2, 2) != 0 {
		t.Error("SplitDim cycle wrong for m=2")
	}
	if SplitDim(5, 3) != 2 {
		t.Error("SplitDim wrong for m=3")
	}
}

func TestRegionRect(t *testing.T) {
	g := Region{Lo: Point{0.25, 0}, Hi: Point{0.5, 0.5}}
	r := g.Rect()
	if r.Lo[0] != 0.25 || r.Hi[1] != 0.5 {
		t.Errorf("Rect = %v", r)
	}
	r.Lo[0] = 0.99
	if g.Lo[0] != 0.25 {
		t.Error("Rect aliases region")
	}
}

func TestStrings(t *testing.T) {
	g := Region{Lo: Point{0, 0}, Hi: Point{0.5, 1}}
	if got := g.String(); got != "[0, 0.5) × [0, 1]" {
		t.Errorf("Region.String = %q", got)
	}
	q, _ := NewRect(Point{0.1, 0.6}, Point{0.3, 0.8})
	if got := q.String(); got != "[0.1, 0.3] × [0.6, 0.8]" {
		t.Errorf("Rect.String = %q", got)
	}
}
