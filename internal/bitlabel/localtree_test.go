package bitlabel

import (
	"math/rand"
	"testing"
)

func TestNewLocalTreeValidation(t *testing.T) {
	if _, err := NewLocalTree(MustParse("001101"), 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewLocalTree(MustParse("11"), 2); err == nil {
		t.Error("non-root-prefixed leaf accepted")
	}
	if _, err := NewLocalTree(Root(2), 2); err != nil {
		t.Errorf("root-as-leaf rejected: %v", err)
	}
}

// TestLocalTreePaperExample checks Fig. 1b: the local tree of leaf #101111
// (2-D) has ancestors #, #1, #10, #101, #1011, #10111 and branch nodes
// #0, #11, #100, #1010, #10110, #101110.
func TestLocalTreePaperExample(t *testing.T) {
	leaf := MustParse("001" + "101111")
	lt, err := NewLocalTree(leaf, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantAnc := []string{"#", "#1", "#10", "#101", "#1011", "#10111"}
	anc := lt.Ancestors()
	if len(anc) != len(wantAnc) {
		t.Fatalf("ancestors = %d, want %d", len(anc), len(wantAnc))
	}
	for i, a := range anc {
		if got := a.Pretty(2); got != wantAnc[i] {
			t.Errorf("ancestor %d = %s, want %s", i, got, wantAnc[i])
		}
	}
	wantBranch := []string{"#0", "#11", "#100", "#1010", "#10110", "#101110"}
	branches := lt.BranchNodes()
	if len(branches) != len(wantBranch) {
		t.Fatalf("branch nodes = %d, want %d", len(branches), len(wantBranch))
	}
	for i, b := range branches {
		if got := b.Pretty(2); got != wantBranch[i] {
			t.Errorf("branch %d = %s, want %s", i, got, wantBranch[i])
		}
	}
	if lt.Leaf() != leaf {
		t.Error("Leaf() wrong")
	}
}

// TestBranchNodesBelowRangeExample reproduces the §6 range query example:
// the corner cell #10101 of LCA #10 decomposes over branch nodes
// #100, #1010 (sibling of #1011? no — sibling of #1010 is #1011), #10100.
func TestBranchNodesBelowRangeExample(t *testing.T) {
	leaf := MustParse("001" + "10101")
	lca := MustParse("001" + "10")
	lt, err := NewLocalTree(leaf, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := lt.BranchNodesBelow(lca)
	// Path below #10: #101, #1010, #10101 → siblings #100, #1011, #10100 —
	// exactly the three subranges the paper forwards to.
	want := []string{"#100", "#1011", "#10100"}
	if len(got) != len(want) {
		t.Fatalf("branch nodes = %v", got)
	}
	for i, b := range got {
		if b.Pretty(2) != want[i] {
			t.Errorf("branch %d = %s, want %s", i, b.Pretty(2), want[i])
		}
	}
}

// TestLocalTreePartitionProperty: for random leaves, the branch nodes below
// any ancestor β plus the leaf itself form an antichain whose members are
// pairwise disjoint and exactly tile the subtree below β (every extension
// of β is covered by exactly one of them or is an ancestor of the leaf).
func TestLocalTreePartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for m := 1; m <= 4; m++ {
		for trial := 0; trial < 300; trial++ {
			leaf := Root(m)
			for d := 1 + rng.Intn(20); d > 0; d-- {
				leaf = leaf.MustAppend(byte(rng.Intn(2)))
			}
			lt, err := NewLocalTree(leaf, m)
			if err != nil {
				t.Fatal(err)
			}
			// Pick a random ancestor β.
			betaLen := m + 1 + rng.Intn(leaf.Len()-(m+1))
			beta := leaf.Prefix(betaLen)
			branches := lt.BranchNodesBelow(beta)
			if len(branches) != leaf.Len()-betaLen {
				t.Fatalf("m=%d leaf=%v β=%v: %d branches, want %d",
					m, leaf, beta, len(branches), leaf.Len()-betaLen)
			}
			cover := append([]Label{leaf}, branches...)
			for i := range cover {
				for j := range cover {
					if i != j && cover[i].IsPrefixOf(cover[j]) {
						t.Fatalf("cover not an antichain: %v ⊑ %v", cover[i], cover[j])
					}
				}
				if !beta.IsPrefixOf(cover[i]) {
					t.Fatalf("cover element %v escapes β=%v", cover[i], beta)
				}
			}
			// A random deep extension of β must be covered by exactly one
			// element, or be a prefix of the leaf (an internal path node).
			probe := beta
			for d := 0; d < 10; d++ {
				probe = probe.MustAppend(byte(rng.Intn(2)))
			}
			covered := 0
			for _, c := range cover {
				if c.IsPrefixOf(probe) {
					covered++
				}
			}
			if probe.CommonPrefixLen(leaf) == probe.Len() {
				// probe is an ancestor of the leaf: not covered, by design.
				if covered != 0 {
					t.Fatalf("path node %v covered %d times", probe, covered)
				}
			} else if covered != 1 {
				t.Fatalf("probe %v covered %d times by %v", probe, covered, cover)
			}
		}
	}
}

func TestLocalTreeCovers(t *testing.T) {
	leaf := MustParse("001" + "1011")
	lt, err := NewLocalTree(leaf, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"0011011", "001101", "00110", "001", "0011010", "001100", "0010"} {
		if !lt.Covers(MustParse(s)) {
			t.Errorf("local tree should cover %s", s)
		}
	}
	for _, s := range []string{"00110110", "0010101", "00", "0011000"} {
		if lt.Covers(MustParse(s)) {
			t.Errorf("local tree should not cover %s", s)
		}
	}
	// BranchNodesBelow with a non-ancestor returns nothing.
	if got := lt.BranchNodesBelow(MustParse("0010")); got != nil {
		t.Errorf("non-ancestor β produced %v", got)
	}
	if got := lt.BranchNodesBelow(leaf); got != nil {
		t.Errorf("β=leaf produced %v", got)
	}
}
