// Package bitlabel implements the bit-string labels that identify nodes of
// the space kd-tree, together with the m-dimensional naming function fmd of
// the m-LIGHT paper (ICDCS 2009, Definitions 1 and 2).
//
// Every node of the space kd-tree carries a label: the virtual root is
// labelled with m consecutive zero bits, the ordinary root "#" with m zeros
// followed by a one, and every edge appends one bit (0 for the left child,
// 1 for the right child). A label is therefore a bit string of length at
// least m. Labels double as DHT keys: the bucket of leaf λ is stored at the
// peer responsible for hash(fmd(λ)).
//
// Labels are value types packed into a uint64, which bounds their length at
// 64 bits. With dimensionality m the root prefix consumes m+1 bits, leaving
// 63-m bits of tree depth — far beyond the D=28 used in the paper's
// evaluation.
package bitlabel

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"
)

// MaxLen is the maximum number of bits a Label can hold.
const MaxLen = 64

// ErrTooLong is returned when an operation would grow a label past MaxLen.
var ErrTooLong = errors.New("bitlabel: label exceeds 64 bits")

// Label is an immutable bit string of up to MaxLen bits. Bit 0 is the most
// significant (first) bit. The zero value is the empty label.
//
// Internally the bits occupy the low end of v: bit i of a label of length n
// is (v >> (n-1-i)) & 1. Two labels are equal (==) iff they have the same
// bits and length, so Label is directly usable as a map key.
type Label struct {
	v uint64
	n uint8
}

// Empty is the empty label (length 0).
var Empty = Label{}

// New builds a label from the low n bits of v (most significant of those
// bits first). It panics if n exceeds MaxLen; use this only with trusted
// constants or lengths already validated.
func New(v uint64, n int) Label {
	if n < 0 || n > MaxLen {
		panic(fmt.Sprintf("bitlabel: invalid length %d", n))
	}
	if n < MaxLen {
		v &= (1 << uint(n)) - 1
	}
	return Label{v: v, n: uint8(n)}
}

// Parse converts a string of '0' and '1' runes into a Label.
func Parse(s string) (Label, error) {
	if len(s) > MaxLen {
		return Label{}, ErrTooLong
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		v <<= 1
		switch s[i] {
		case '0':
		case '1':
			v |= 1
		default:
			return Label{}, fmt.Errorf("bitlabel: invalid character %q at %d", s[i], i)
		}
	}
	return Label{v: v, n: uint8(len(s))}, nil
}

// MustParse is Parse for trusted constants; it panics on error.
func MustParse(s string) Label {
	l, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return l
}

// VirtualRoot returns the label of the virtual root for dimensionality m:
// m consecutive zeros.
func VirtualRoot(m int) Label {
	return New(0, m)
}

// Root returns the label of the ordinary root "#" for dimensionality m:
// m zeros followed by a one (m+1 bits).
func Root(m int) Label {
	return New(1, m+1)
}

// Len reports the number of bits in the label.
func (l Label) Len() int { return int(l.n) }

// IsEmpty reports whether the label has zero bits.
func (l Label) IsEmpty() bool { return l.n == 0 }

// Bits returns the label's bits right-aligned in a uint64.
func (l Label) Bits() uint64 { return l.v }

// At returns bit i (0-indexed from the first, most significant bit).
// It panics if i is out of range.
func (l Label) At(i int) byte {
	if i < 0 || i >= int(l.n) {
		panic(fmt.Sprintf("bitlabel: bit index %d out of range [0,%d)", i, l.n))
	}
	return byte((l.v >> (uint(l.n) - 1 - uint(i))) & 1)
}

// Last returns the final bit of the label. It panics on the empty label.
func (l Label) Last() byte { return l.At(int(l.n) - 1) }

// Append returns the label extended by one bit (0 or 1).
func (l Label) Append(bit byte) (Label, error) {
	if l.n >= MaxLen {
		return Label{}, ErrTooLong
	}
	return Label{v: l.v<<1 | uint64(bit&1), n: l.n + 1}, nil
}

// MustAppend is Append for callers that have already bounded the depth.
// It panics if the label is full.
func (l Label) MustAppend(bit byte) Label {
	out, err := l.Append(bit)
	if err != nil {
		panic(err)
	}
	return out
}

// Left returns the label of the left child (append 0).
func (l Label) Left() (Label, error) { return l.Append(0) }

// Right returns the label of the right child (append 1).
func (l Label) Right() (Label, error) { return l.Append(1) }

// Parent returns the label with the last bit removed. It panics on the
// empty label.
func (l Label) Parent() Label {
	if l.n == 0 {
		panic("bitlabel: Parent of empty label")
	}
	return Label{v: l.v >> 1, n: l.n - 1}
}

// Sibling returns the label with the last bit inverted — the "branch node"
// construction of the paper's local trees. It panics on the empty label.
func (l Label) Sibling() Label {
	if l.n == 0 {
		panic("bitlabel: Sibling of empty label")
	}
	return Label{v: l.v ^ 1, n: l.n}
}

// Prefix returns the first n bits of the label. It panics if n exceeds the
// label length.
func (l Label) Prefix(n int) Label {
	if n < 0 || n > int(l.n) {
		panic(fmt.Sprintf("bitlabel: prefix length %d out of range [0,%d]", n, l.n))
	}
	return Label{v: l.v >> (uint(l.n) - uint(n)), n: uint8(n)}
}

// IsPrefixOf reports whether l is a (not necessarily proper) prefix of
// other.
func (l Label) IsPrefixOf(other Label) bool {
	if l.n > other.n {
		return false
	}
	return other.v>>(uint(other.n)-uint(l.n)) == l.v
}

// CommonPrefixLen returns the length of the longest common prefix of l and
// other.
func (l Label) CommonPrefixLen(other Label) int {
	n := min(int(l.n), int(other.n))
	a := l.Prefix(n)
	b := other.Prefix(n)
	x := a.v ^ b.v
	if x == 0 {
		return n
	}
	return n - (bits.Len64(x))
}

// CommonPrefix returns the longest common prefix of l and other.
func (l Label) CommonPrefix(other Label) Label {
	return l.Prefix(l.CommonPrefixLen(other))
}

// Compare orders labels first lexicographically by bits, with a prefix
// ordering before any of its extensions. It returns -1, 0, or +1.
func (l Label) Compare(other Label) int {
	n := min(int(l.n), int(other.n))
	a, b := l.Prefix(n).v, other.Prefix(n).v
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case l.n < other.n:
		return -1
	case l.n > other.n:
		return 1
	default:
		return 0
	}
}

// String renders the label as a string of '0' and '1'. Empty labels render
// as "ε".
func (l Label) String() string {
	if l.n == 0 {
		return "ε"
	}
	var sb strings.Builder
	sb.Grow(int(l.n))
	for i := 0; i < int(l.n); i++ {
		if l.At(i) == 1 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Pretty renders the label in the paper's "#suffix" notation for
// dimensionality m: if the label extends the ordinary root, the root prefix
// is abbreviated to '#'. Other labels render as raw bits.
func (l Label) Pretty(m int) string {
	root := Root(m)
	if root.IsPrefixOf(l) {
		return "#" + l.suffixString(root.Len())
	}
	return l.String()
}

func (l Label) suffixString(from int) string {
	var sb strings.Builder
	for i := from; i < int(l.n); i++ {
		if l.At(i) == 1 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Key serializes the label into a compact string suitable for use as a DHT
// key. The encoding is the length byte followed by the big-endian bits; it
// is injective over all labels.
func (l Label) Key() string {
	buf := [9]byte{l.n}
	v := l.v
	for i := 8; i >= 1; i-- {
		buf[i] = byte(v)
		v >>= 8
	}
	return string(buf[:])
}

// FromKey reverses Key.
func FromKey(key string) (Label, error) {
	if len(key) != 9 {
		return Label{}, fmt.Errorf("bitlabel: malformed key of length %d", len(key))
	}
	n := key[0]
	if n > MaxLen {
		return Label{}, ErrTooLong
	}
	var v uint64
	for i := 1; i <= 8; i++ {
		v = v<<8 | uint64(key[i])
	}
	return New(v, int(n)), nil
}
