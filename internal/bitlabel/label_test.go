package bitlabel

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseStringRoundTrip(t *testing.T) {
	cases := []string{"", "0", "1", "01", "001", "0011011", "1111111111", "001101111"}
	for _, s := range cases {
		l, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		got := l.String()
		want := s
		if s == "" {
			want = "ε"
		}
		if got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", s, got, want)
		}
		if l.Len() != len(s) {
			t.Errorf("Parse(%q).Len() = %d, want %d", s, l.Len(), len(s))
		}
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	if _, err := Parse("01x"); err == nil {
		t.Error("Parse(01x) succeeded, want error")
	}
	if _, err := Parse(strings.Repeat("0", 65)); err == nil {
		t.Error("Parse of 65 bits succeeded, want error")
	}
}

func TestNewMasksHighBits(t *testing.T) {
	l := New(0xFF, 4)
	if got := l.String(); got != "1111" {
		t.Errorf("New(0xFF, 4) = %q, want 1111", got)
	}
}

func TestRoots(t *testing.T) {
	for m := 1; m <= 6; m++ {
		vr := VirtualRoot(m)
		if vr.Len() != m || vr.Bits() != 0 {
			t.Errorf("VirtualRoot(%d) = %v", m, vr)
		}
		r := Root(m)
		if r.Len() != m+1 || r.Bits() != 1 {
			t.Errorf("Root(%d) = %v", m, r)
		}
		if !vr.IsPrefixOf(r) {
			t.Errorf("VirtualRoot(%d) not prefix of Root", m)
		}
	}
}

func TestAtAppendParentSibling(t *testing.T) {
	l := MustParse("0011011")
	wantBits := []byte{0, 0, 1, 1, 0, 1, 1}
	for i, w := range wantBits {
		if got := l.At(i); got != w {
			t.Errorf("At(%d) = %d, want %d", i, got, w)
		}
	}
	if got := l.Last(); got != 1 {
		t.Errorf("Last() = %d, want 1", got)
	}
	if got := l.Parent().String(); got != "001101" {
		t.Errorf("Parent() = %q", got)
	}
	if got := l.Sibling().String(); got != "0011010" {
		t.Errorf("Sibling() = %q", got)
	}
	if got := l.MustAppend(0).String(); got != "00110110" {
		t.Errorf("MustAppend(0) = %q", got)
	}
	left, err := l.Left()
	if err != nil || left.String() != "00110110" {
		t.Errorf("Left() = %v, %v", left, err)
	}
	right, err := l.Right()
	if err != nil || right.String() != "00110111" {
		t.Errorf("Right() = %v, %v", right, err)
	}
}

func TestAppendOverflow(t *testing.T) {
	full := New(0, 64)
	if _, err := full.Append(1); err == nil {
		t.Error("Append on full label succeeded, want ErrTooLong")
	}
}

func TestPrefixAndIsPrefixOf(t *testing.T) {
	l := MustParse("001101111")
	if got := l.Prefix(3).String(); got != "001" {
		t.Errorf("Prefix(3) = %q", got)
	}
	if got := l.Prefix(0); got != Empty {
		t.Errorf("Prefix(0) = %v, want empty", got)
	}
	if !MustParse("0011").IsPrefixOf(l) {
		t.Error("0011 should be prefix of 001101111")
	}
	if MustParse("0111").IsPrefixOf(l) {
		t.Error("0111 should not be prefix of 001101111")
	}
	if !l.IsPrefixOf(l) {
		t.Error("label should be prefix of itself")
	}
	if l.IsPrefixOf(l.Parent()) {
		t.Error("label should not be prefix of its parent")
	}
}

// naiveCommonPrefixLen is the string-based oracle for CommonPrefixLen.
func naiveCommonPrefixLen(a, b Label) int {
	as, bs := a.String(), b.String()
	if as == "ε" {
		as = ""
	}
	if bs == "ε" {
		bs = ""
	}
	n := 0
	for n < len(as) && n < len(bs) && as[n] == bs[n] {
		n++
	}
	return n
}

func randomLabel(rng *rand.Rand, maxLen int) Label {
	n := rng.Intn(maxLen + 1)
	return New(rng.Uint64(), n)
}

func TestCommonPrefixLenProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		a := randomLabel(rng, 64)
		b := randomLabel(rng, 64)
		got := a.CommonPrefixLen(b)
		want := naiveCommonPrefixLen(a, b)
		if got != want {
			t.Fatalf("CommonPrefixLen(%v, %v) = %d, want %d", a, b, got, want)
		}
		cp := a.CommonPrefix(b)
		if cp.Len() != want || !cp.IsPrefixOf(a) || !cp.IsPrefixOf(b) {
			t.Fatalf("CommonPrefix(%v, %v) = %v", a, b, cp)
		}
	}
}

func TestKeyRoundTripQuick(t *testing.T) {
	f := func(v uint64, nRaw uint8) bool {
		n := int(nRaw) % (MaxLen + 1)
		l := New(v, n)
		back, err := FromKey(l.Key())
		return err == nil && back == l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestKeyInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seen := make(map[string]Label, 4096)
	for i := 0; i < 4096; i++ {
		l := randomLabel(rng, 64)
		k := l.Key()
		if prev, ok := seen[k]; ok && prev != l {
			t.Fatalf("Key collision: %v and %v both map to %q", prev, l, k)
		}
		seen[k] = l
	}
}

func TestFromKeyRejectsMalformed(t *testing.T) {
	if _, err := FromKey("short"); err == nil {
		t.Error("FromKey(short) succeeded, want error")
	}
	bad := string(append([]byte{65}, make([]byte, 8)...))
	if _, err := FromKey(bad); err == nil {
		t.Error("FromKey with length 65 succeeded, want error")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "0", -1},
		{"0", "1", -1},
		{"01", "010", -1},
		{"010", "01", 1},
		{"0011", "0011", 0},
		{"10", "01", 1},
	}
	for _, c := range cases {
		a, b := MustParse(c.a), MustParse(c.b)
		if got := a.Compare(b); got != c.want {
			t.Errorf("Compare(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := b.Compare(a); got != -c.want {
			t.Errorf("Compare(%q, %q) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestPretty(t *testing.T) {
	// 2-D: root is 001, so 001101111 renders as #101111.
	l := MustParse("001101111")
	if got := l.Pretty(2); got != "#101111" {
		t.Errorf("Pretty = %q, want #101111", got)
	}
	if got := Root(2).Pretty(2); got != "#" {
		t.Errorf("Pretty(root) = %q, want #", got)
	}
	if got := VirtualRoot(2).Pretty(2); got != "00" {
		t.Errorf("Pretty(virtual root) = %q, want 00", got)
	}
}

func TestConcat(t *testing.T) {
	a, b := MustParse("001"), MustParse("1011")
	if got := a.Concat(b).String(); got != "0011011" {
		t.Errorf("Concat = %q", got)
	}
	if got := a.Concat(Empty); got != a {
		t.Errorf("Concat with empty = %v", got)
	}
	if got := Empty.Concat(b); got != b {
		t.Errorf("empty Concat = %v", got)
	}
}
