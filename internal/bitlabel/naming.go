package bitlabel

import "fmt"

// Name applies the m-dimensional naming function fmd of Definition 2 to a
// leaf label. Given λ = b1···bi, fmd compares the last bit b_i with b_{i-m};
// while they are equal the last bit is truncated and the test repeats, and
// when they differ the last bit is truncated one final time. fmd(λ) is
// therefore always a proper prefix of λ.
//
// Intuitively (paper §3.4.1) fmd maps a leaf to its lowest ancestor that is
// not aligned with the leaf in terms of its orthant position: the recursion
// strips levels while the node keeps falling in the same relative orthant of
// its m-levels-up ancestor.
//
// fmd is a bijection from the leaf set onto the internal-node set of any
// space kd-tree (Theorem 4), which is what lets m-LIGHT store exactly one
// leaf bucket per internal-node DHT key.
//
// Name panics if the label is shorter than m+1 bits (only the virtual root
// and shorter strings violate this; they are never leaves).
func Name(leaf Label, m int) Label {
	if m < 1 {
		panic(fmt.Sprintf("bitlabel: dimensionality %d < 1", m))
	}
	if leaf.Len() < m+1 {
		panic(fmt.Sprintf("bitlabel: Name of %v needs at least %d bits", leaf, m+1))
	}
	l := leaf
	for {
		i := l.Len()
		if i < m+1 {
			// Unreachable for labels of a real space kd-tree: every tree
			// label starts with 0^m 1, so the recursion stops at the
			// ordinary root at the latest (its first and (m+1)-th bits
			// differ, yielding the virtual root).
			panic(fmt.Sprintf("bitlabel: %v is not a %d-dimensional kd-tree label", leaf, m))
		}
		// Compare b_i with b_{i-m} (1-indexed in the paper); with 0-indexed
		// At this is bit i-1 versus bit i-1-m.
		same := l.At(i-1) == l.At(i-1-m)
		l = l.Parent()
		if !same {
			return l
		}
	}
}

// NamePreimage returns the two labels whose name is l when l names the
// children of a freshly split leaf: per Theorem 5, splitting leaf λ into λ0
// and λ1 assigns one child the name fmd(λ) and the other the name λ. Given
// an internal node ω this helper answers "which immediate child of ω is
// named ω?" — the child whose appended bit differs from ω's bit m positions
// from the end.
//
// It panics if ω is shorter than m bits.
func NamePreimage(omega Label, m int) Label {
	if omega.Len() < m {
		panic(fmt.Sprintf("bitlabel: NamePreimage of %v needs at least %d bits", omega, m))
	}
	// Child ω·b has Name(ω·b) == ω iff b != bit at position len(ω·b)-1-m,
	// i.e. differs from omega's bit len(ω)-m.
	b := omega.At(omega.Len() - m)
	return omega.MustAppend(1 - b)
}

// Interleave builds the z-order bit string of an m-dimensional point whose
// coordinates are given as binary fractions in [0,1): bit j of the result
// is bit j/m of coordinate j%m. depth is the number of bits taken per
// coordinate, so the result has m*depth bits.
//
// coords[i] must lie in [0,1); values outside are clamped. Interleave
// returns an error if m*depth exceeds MaxLen.
func Interleave(coords []float64, depth int) (Label, error) {
	m := len(coords)
	if m == 0 {
		return Label{}, fmt.Errorf("bitlabel: interleave of zero coordinates")
	}
	if depth < 0 || m*depth > MaxLen {
		return Label{}, fmt.Errorf("bitlabel: interleave depth %d with m=%d exceeds %d bits: %w",
			depth, m, MaxLen, ErrTooLong)
	}
	frac := make([]float64, m)
	for i, c := range coords {
		switch {
		case c < 0:
			frac[i] = 0
		case c >= 1:
			frac[i] = nextBelowOne
		default:
			frac[i] = c
		}
	}
	l := Empty
	for j := 0; j < depth; j++ {
		for i := 0; i < m; i++ {
			frac[i] *= 2
			var bit byte
			if frac[i] >= 1 {
				bit = 1
				frac[i]--
			}
			l = l.MustAppend(bit)
		}
	}
	return l, nil
}

// nextBelowOne is the largest float64 strictly less than 1.
const nextBelowOne = 1 - 1.0/(1<<53)

// PathLabel returns the full candidate path label for a point: the ordinary
// root label followed by the z-order interleaving of the coordinates to the
// given tree depth. Every possible leaf label covering the point is a prefix
// of the result of length ≥ m+1 (paper §5).
func PathLabel(coords []float64, depth int) (Label, error) {
	m := len(coords)
	z, err := Interleave(coords, depthPerCoord(depth, m))
	if err != nil {
		return Label{}, err
	}
	z = z.Prefix(min(z.Len(), depth))
	root := Root(m)
	if root.Len()+z.Len() > MaxLen {
		return Label{}, ErrTooLong
	}
	return root.Concat(z), nil
}

// PathLabelNoRoot returns the plain z-order label of a point to the given
// total bit depth, without the kd-tree root prefix — the linearisation the
// PHT and DST baselines use.
func PathLabelNoRoot(coords []float64, depth int) (Label, error) {
	z, err := Interleave(coords, depthPerCoord(depth, len(coords)))
	if err != nil {
		return Label{}, err
	}
	return z.Prefix(min(z.Len(), depth)), nil
}

// depthPerCoord returns how many bits per coordinate are needed to produce
// at least totalBits interleaved bits.
func depthPerCoord(totalBits, m int) int {
	return (totalBits + m - 1) / m
}

// Concat appends all bits of other to l. It panics if the result would
// exceed MaxLen; callers bound depth ahead of time.
func (l Label) Concat(other Label) Label {
	if int(l.n)+int(other.n) > MaxLen {
		panic(ErrTooLong)
	}
	return Label{v: l.v<<uint(other.n) | other.v, n: l.n + other.n}
}
