package bitlabel

import (
	"math/rand"
	"testing"
)

// name2 is shorthand for the 2-D naming function in the paper's examples.
func name2(t *testing.T, s string) string {
	t.Helper()
	return Name(MustParse(s), 2).String()
}

// TestNamingPaperExamples checks every worked f2d example from §3.4.1.
// The paper writes labels as # + suffix with # = 001 in 2-D.
func TestNamingPaperExamples(t *testing.T) {
	cases := []struct{ leaf, want string }{
		{"001" + "0101111", "001" + "0101"}, // f2d(#0101111) = #0101
		{"001" + "0011111", "001" + "001"},  // f2d(#0011111) = #001
		{"001" + "101111", "001" + "101"},   // f2d(#101111)  = #101
		{"001", "00"},                       // f2d(#) = 00 (virtual root)
		{"001" + "1011100001", "001" + "101110000"},
		{"001" + "10111", "001" + "101"}, // lookup example probe
		{"001" + "1011", "001" + "101"},  // #1011 also named to #101
		// The paper's lookup example prints f2d(#101110) = "#0111", which
		// cannot be literally right: fmd always returns a prefix of its
		// argument, and #0111 is not a prefix of #101110. Truncating the
		// final 0 (third-last bit is 1, differing) gives #10111.
		{"001" + "101110", "001" + "10111"},
		{"001" + "10110", "001" + "1011"}, // range example: covers subrange
		{"001" + "10", "001" + "1"},       // f2d(#10) = #1 (range query LCA)
	}
	for _, c := range cases {
		if got := name2(t, c.leaf); got != c.want {
			t.Errorf("Name(%s, 2) = %s, want %s", c.leaf, got, c.want)
		}
	}
}

// TestNameIsProperPrefix: fmd(λ) is always a proper prefix of λ of length
// at least m (the virtual root), for every dimensionality.
func TestNameIsProperPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for m := 1; m <= 6; m++ {
		root := Root(m)
		for i := 0; i < 2000; i++ {
			depth := rng.Intn(40)
			leaf := root
			for j := 0; j < depth; j++ {
				leaf = leaf.MustAppend(byte(rng.Intn(2)))
			}
			name := Name(leaf, m)
			if !name.IsPrefixOf(leaf) || name.Len() >= leaf.Len() {
				t.Fatalf("m=%d: Name(%v) = %v is not a proper prefix", m, leaf, name)
			}
			if name.Len() < m {
				t.Fatalf("m=%d: Name(%v) = %v shorter than virtual root", m, leaf, name)
			}
		}
	}
}

// TestTheorem5IncrementalSplit: splitting leaf λ into λ0 and λ1 maps one
// child to fmd(λ) and the other to λ.
func TestTheorem5IncrementalSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for m := 1; m <= 6; m++ {
		root := Root(m)
		for i := 0; i < 2000; i++ {
			leaf := root
			for j := rng.Intn(30); j > 0; j-- {
				leaf = leaf.MustAppend(byte(rng.Intn(2)))
			}
			n0 := Name(leaf.MustAppend(0), m)
			n1 := Name(leaf.MustAppend(1), m)
			nl := Name(leaf, m)
			ok := (n0 == nl && n1 == leaf) || (n1 == nl && n0 == leaf)
			if !ok {
				t.Fatalf("m=%d leaf=%v: child names %v, %v; want {%v, %v}",
					m, leaf, n0, n1, nl, leaf)
			}
			// NamePreimage identifies the child named to the parent label.
			pre := NamePreimage(leaf, m)
			if Name(pre, m) != leaf {
				t.Fatalf("m=%d: NamePreimage(%v)=%v but Name(pre)=%v",
					m, leaf, pre, Name(pre, m))
			}
		}
	}
}

// testTree is a random space kd-tree over labels, used to check the
// structural theorems. leaves and internals are label sets; internals
// excludes the virtual root.
type testTree struct {
	m         int
	leaves    map[Label]bool
	internals map[Label]bool
}

func buildRandomTree(rng *rand.Rand, m, splits int) *testTree {
	tr := &testTree{
		m:         m,
		leaves:    map[Label]bool{Root(m): true},
		internals: map[Label]bool{},
	}
	order := make([]Label, 0, splits+1)
	order = append(order, Root(m))
	for s := 0; s < splits; s++ {
		// Pick a random current leaf with room to grow.
		var pick Label
		found := false
		for try := 0; try < 50; try++ {
			cand := order[rng.Intn(len(order))]
			if tr.leaves[cand] && cand.Len() < MaxLen-1 {
				pick = cand
				found = true
				break
			}
		}
		if !found {
			break
		}
		delete(tr.leaves, pick)
		tr.internals[pick] = true
		l, r := pick.MustAppend(0), pick.MustAppend(1)
		tr.leaves[l] = true
		tr.leaves[r] = true
		order = append(order, l, r)
	}
	return tr
}

// TestTheorem4Bijection: fmd maps the leaf set one-to-one onto the
// internal-node set (ordinary internals plus the virtual root).
func TestTheorem4Bijection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for m := 1; m <= 5; m++ {
		for trial := 0; trial < 30; trial++ {
			tr := buildRandomTree(rng, m, 1+rng.Intn(200))
			wantTargets := make(map[Label]bool, len(tr.internals)+1)
			for ω := range tr.internals {
				wantTargets[ω] = true
			}
			wantTargets[VirtualRoot(m)] = true
			if len(tr.leaves) != len(wantTargets) {
				t.Fatalf("m=%d: %d leaves vs %d internals+virtual", m, len(tr.leaves), len(wantTargets))
			}
			got := make(map[Label]Label, len(tr.leaves))
			for leaf := range tr.leaves {
				name := Name(leaf, m)
				if prev, dup := got[name]; dup {
					t.Fatalf("m=%d: leaves %v and %v both named %v", m, prev, leaf, name)
				}
				got[name] = leaf
				if !wantTargets[name] {
					t.Fatalf("m=%d: leaf %v named to %v, not an internal node", m, leaf, name)
				}
			}
			if len(got) != len(wantTargets) {
				t.Fatalf("m=%d: naming not onto: %d of %d targets hit", m, len(got), len(wantTargets))
			}
		}
	}
}

// cornerLeaf descends from internal node ω to the leaf at corner direction
// d (d[i] = 0 for the low corner in dim i, 1 for high): the corner of a
// region remains the same corner of whichever child contains it.
func (tr *testTree) cornerLeaf(omega Label, d []byte) Label {
	cur := omega
	for tr.internals[cur] {
		depthBelowRoot := cur.Len() - (tr.m + 1)
		dim := depthBelowRoot % tr.m
		cur = cur.MustAppend(d[dim])
	}
	return cur
}

// TestTheorem3CornerPreservation: the corner cells of internal node ω are
// named fmd(ω), ω, ω0, ω1, …, ω1…1 (all extensions of ω by fewer than m
// bits, plus fmd(ω)). When the subtree under ω is shallow, several corner
// directions share a cell, so the observed name set may be a strict subset;
// when all 2^m corner cells are distinct the sets must match exactly. In
// every case the leaf named fmd(ω) must itself be one of ω's corner cells —
// the property Algorithm 2 relies on to enter the queried region.
func TestTheorem3CornerPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for m := 1; m <= 4; m++ {
		for trial := 0; trial < 20; trial++ {
			tr := buildRandomTree(rng, m, 1+rng.Intn(300))
			nameToLeaf := make(map[Label]Label, len(tr.leaves))
			for leaf := range tr.leaves {
				nameToLeaf[Name(leaf, m)] = leaf
			}
			for omega := range tr.internals {
				want := map[Label]bool{Name(omega, m): true}
				frontier := []Label{omega}
				for level := 0; level < m; level++ {
					next := make([]Label, 0, 2*len(frontier))
					for _, l := range frontier {
						want[l] = true
						if level < m-1 {
							next = append(next, l.MustAppend(0), l.MustAppend(1))
						}
					}
					frontier = next
				}
				cornerLeaves := make(map[Label]bool, 1<<m)
				got := make(map[Label]bool, 1<<m)
				for dMask := 0; dMask < 1<<m; dMask++ {
					d := make([]byte, m)
					for i := range d {
						d[i] = byte((dMask >> i) & 1)
					}
					corner := tr.cornerLeaf(omega, d)
					cornerLeaves[corner] = true
					got[Name(corner, m)] = true
				}
				for n := range got {
					if !want[n] {
						t.Fatalf("m=%d ω=%v: corner name %v not in %v", m, omega, n, want)
					}
				}
				if len(cornerLeaves) == 1<<m && len(got) != len(want) {
					t.Fatalf("m=%d ω=%v: distinct corners but names %v != %v", m, omega, got, want)
				}
				// The leaf named fmd(ω) is a corner cell of ω.
				entry, ok := nameToLeaf[Name(omega, m)]
				if !ok {
					t.Fatalf("m=%d ω=%v: no leaf named fmd(ω)=%v", m, omega, Name(omega, m))
				}
				if !cornerLeaves[entry] {
					t.Fatalf("m=%d ω=%v: leaf %v named fmd(ω) is not a corner cell", m, omega, entry)
				}
			}
		}
	}
}

func TestInterleaveKnownValues(t *testing.T) {
	// 0.4 = 0.0110…, 0.2 = 0.0011… in binary. Interleaving dim0-first to
	// 3 bits per coordinate: x1 y1 x2 y2 x3 y3 = 0 0 1 0 1 1.
	l, err := Interleave([]float64{0.4, 0.2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.String(); got != "001011" {
		t.Errorf("Interleave(<0.4,0.2>, 3) = %q, want 001011", got)
	}
	// Boundary clamping: coordinates at 1.0 land in the top cell (all ones).
	l, err = Interleave([]float64{1.0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.String(); got != "11111111" {
		t.Errorf("Interleave(<1>, 8) = %q, want all ones", got)
	}
	l, err = Interleave([]float64{0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.String(); got != "0000" {
		t.Errorf("Interleave(<0>, 4) = %q, want all zeros", got)
	}
}

func TestInterleaveErrors(t *testing.T) {
	if _, err := Interleave(nil, 3); err == nil {
		t.Error("Interleave(nil) succeeded")
	}
	if _, err := Interleave(make([]float64, 3), 30); err == nil {
		t.Error("Interleave exceeding 64 bits succeeded")
	}
}

func TestPathLabel(t *testing.T) {
	// PathLabel(p, D) = Root(m) ++ interleave(p) truncated to D bits.
	l, err := PathLabel([]float64{0.4, 0.2}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.String(); got != "001"+"001011" {
		t.Errorf("PathLabel = %q", got)
	}
	if l.Len() != 3+6 {
		t.Errorf("PathLabel length = %d", l.Len())
	}
	// Odd depth truncates mid-coordinate.
	l, err = PathLabel([]float64{0.4, 0.2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.String(); got != "001"+"00101" {
		t.Errorf("PathLabel(depth 5) = %q", got)
	}
	if _, err := PathLabel([]float64{0.5, 0.5}, 80); err == nil {
		t.Error("PathLabel exceeding 64 bits succeeded")
	}
}
