package bitlabel

import "testing"

// FuzzParse: Parse either rejects the input or produces a label whose
// String round-trips, and never panics.
func FuzzParse(f *testing.F) {
	f.Add("")
	f.Add("0")
	f.Add("001101111")
	f.Add("abc")
	f.Add("0101010101010101010101010101010101010101010101010101010101010101")
	f.Fuzz(func(t *testing.T, s string) {
		l, err := Parse(s)
		if err != nil {
			return
		}
		if l.Len() != len(s) {
			t.Fatalf("Parse(%q).Len() = %d", s, l.Len())
		}
		if len(s) > 0 && l.String() != s {
			t.Fatalf("round trip %q → %q", s, l.String())
		}
	})
}

// FuzzFromKey: FromKey never panics and accepts exactly what Key produces.
func FuzzFromKey(f *testing.F) {
	f.Add([]byte(MustParse("0011").Key()))
	f.Add([]byte{})
	f.Add([]byte{9, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := FromKey(string(data))
		if err != nil {
			return
		}
		back, err := FromKey(l.Key())
		if err != nil || back != l {
			t.Fatalf("canonical re-encode failed: %v, %v", back, err)
		}
	})
}

// FuzzName: for any syntactically valid kd-tree label and small m, the
// naming function terminates with a proper prefix.
func FuzzName(f *testing.F) {
	f.Add(uint64(0b0011011), 7, 2)
	f.Add(uint64(1), 2, 1)
	f.Fuzz(func(t *testing.T, bits uint64, n, m int) {
		if m < 1 || m > 8 || n < m+1 || n > MaxLen {
			return
		}
		l := New(bits, n)
		if !Root(m).IsPrefixOf(l) {
			return // not a tree label; Name is specified only on those
		}
		name := Name(l, m)
		if !name.IsPrefixOf(l) || name.Len() >= l.Len() || name.Len() < m {
			t.Fatalf("Name(%v, %d) = %v", l, m, name)
		}
	})
}
