package bitlabel

import "fmt"

// LocalTree is the decomposed view a leaf bucket carries (paper §3.3):
// "the local tree of a leaf consists of all its ancestors", each encoded as
// a prefix of the leaf label, and "the sibling of an ancestor (called
// branch node) can be found by a modified prefix of λ with the ending bit
// inverted". Everything is derived from the leaf label alone, which is why
// a bucket's label store needs only λ.
type LocalTree struct {
	leaf Label
	m    int
}

// NewLocalTree builds the local tree of a leaf for dimensionality m. The
// leaf must extend the ordinary root.
func NewLocalTree(leaf Label, m int) (LocalTree, error) {
	if m < 1 {
		return LocalTree{}, fmt.Errorf("bitlabel: dimensionality %d < 1", m)
	}
	if !Root(m).IsPrefixOf(leaf) {
		return LocalTree{}, fmt.Errorf("bitlabel: %v does not extend the %d-dimensional root", leaf, m)
	}
	return LocalTree{leaf: leaf, m: m}, nil
}

// Leaf returns the leaf label the tree is anchored at.
func (t LocalTree) Leaf() Label { return t.leaf }

// Ancestors returns the leaf's proper ancestors from the ordinary root down
// to the parent.
func (t LocalTree) Ancestors() []Label {
	rootLen := t.m + 1
	if t.leaf.Len() <= rootLen {
		return nil
	}
	out := make([]Label, 0, t.leaf.Len()-rootLen)
	for j := rootLen; j < t.leaf.Len(); j++ {
		out = append(out, t.leaf.Prefix(j))
	}
	return out
}

// BranchNodes returns every branch node of the local tree: the sibling of
// each node on the root-to-leaf path (the root itself has no sibling),
// ordered from shallowest to deepest. The deepest entry is the leaf's own
// sibling.
func (t LocalTree) BranchNodes() []Label {
	return t.BranchNodesBelow(Root(t.m))
}

// BranchNodesBelow returns the branch nodes strictly below ancestor β: the
// siblings of the path nodes with lengths in (len(β), len(leaf)] — the set
// Algorithm 3 decomposes a range over. β must be a prefix of the leaf.
func (t LocalTree) BranchNodesBelow(beta Label) []Label {
	if !beta.IsPrefixOf(t.leaf) || beta.Len() >= t.leaf.Len() {
		return nil
	}
	out := make([]Label, 0, t.leaf.Len()-beta.Len())
	for j := beta.Len() + 1; j <= t.leaf.Len(); j++ {
		out = append(out, t.leaf.Prefix(j).Sibling())
	}
	return out
}

// Covers reports whether the local tree's view contains the label: the
// leaf itself, one of its ancestors, or one of its branch nodes.
func (t LocalTree) Covers(l Label) bool {
	if l == t.leaf {
		return true
	}
	if l.Len() <= t.leaf.Len() && l.IsPrefixOf(t.leaf) && l.Len() >= t.m+1 {
		return true
	}
	if l.Len() >= t.m+2 && l.Len() <= t.leaf.Len() &&
		t.leaf.Prefix(l.Len()).Sibling() == l {
		return true
	}
	return false
}
