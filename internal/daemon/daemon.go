// Package daemon runs one overlay node as a long-lived network service:
// the process model behind cmd/mlightd. Each daemon owns one TCP transport,
// one overlay node (its index shard), an optional WAL for crash recovery,
// and a background stabilization loop. A cluster is simply N such processes
// pointed at each other through Config.Seeds; mlight.Dial turns any subset
// of their addresses into a Querier.
package daemon

import (
	"fmt"
	"sync"
	"time"

	"mlight/internal/chord"
	"mlight/internal/dht"
	"mlight/internal/kademlia"
	"mlight/internal/pastry"
	"mlight/internal/transport"
)

// Config describes one daemon process.
type Config struct {
	// Listen is the TCP address to serve on ("host:port"; ":7401" works).
	// Empty binds an ephemeral loopback port — useful in tests; real
	// deployments fix the port so peers can name it in Seeds.
	Listen string
	// Seeds lists other daemons' listen addresses. The daemon's own
	// address is filtered out, so every process in a cluster can receive
	// the same full peer list. Empty seeds make this daemon bootstrap a
	// fresh singleton overlay.
	Seeds []string
	// Substrate selects the overlay protocol: "chord" (default),
	// "pastry", or "kademlia". Every daemon of one cluster must agree.
	Substrate string
	// Replication is the per-key copy count the overlay maintains.
	Replication int
	// WALDir enables write-ahead durability for this node's shard: every
	// primary-store mutation is journaled before it is acknowledged, and a
	// restarted daemon re-inserts the recovered entries into the overlay
	// (routing them to their current owners, which may have changed while
	// it was gone). Chord only; other substrates reject it.
	WALDir string
	// StabilizeEvery is the background maintenance cadence. 0 means
	// 500ms; negative disables the loop (tests drive Stabilize manually).
	StabilizeEvery time.Duration
	// Seed drives the overlay's internal randomness.
	Seed int64
	// JoinAttempts bounds how often a boot retries joining through Seeds
	// before giving up — daemons of one cluster typically start
	// concurrently, so the first attempts may race peers that are not
	// listening yet. 0 means 20.
	JoinAttempts int
	// JoinBackoff is the pause between join attempts. 0 means 250ms.
	JoinBackoff time.Duration
}

// Daemon is one running overlay node.
type Daemon struct {
	addr      transport.NodeID
	tr        *transport.TCP
	d         dht.DHT
	wal       *dht.WAL
	leave     func() error
	stabStop  chan struct{}
	stabDone  chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// walJournal adapts dht.WAL to the chord.Journal hook.
type walJournal struct{ w *dht.WAL }

func (j walJournal) Record(recs []dht.WALRecord) error { return j.w.Append(recs) }

// Start boots a daemon: bind the listener, join (or bootstrap) the overlay,
// replay the WAL if one is configured, and begin stabilizing. The returned
// daemon serves until Close.
func Start(cfg Config) (*Daemon, error) {
	substrate := cfg.Substrate
	if substrate == "" {
		substrate = "chord"
	}
	if cfg.WALDir != "" && substrate != "chord" {
		return nil, fmt.Errorf("daemon: WAL durability is chord-only (substrate %q)", substrate)
	}

	tr := transport.NewTCP(transport.TCPOptions{})
	fail := func(err error) (*Daemon, error) {
		//lint:allow droppederr the boot error is what the caller needs
		tr.Close()
		return nil, err
	}

	var addr transport.NodeID
	var err error
	if cfg.Listen == "" {
		addr, err = tr.Reserve()
	} else {
		addr, err = tr.Listen(cfg.Listen)
	}
	if err != nil {
		return nil, fmt.Errorf("daemon: bind %q: %w", cfg.Listen, err)
	}

	// Every daemon may receive the cluster's full address list; drop our
	// own entry so a fresh cluster's first node bootstraps instead of
	// trying to join through itself.
	var seeds []transport.NodeID
	for _, s := range cfg.Seeds {
		if s != "" && s != string(addr) {
			seeds = append(seeds, transport.NodeID(s))
		}
	}

	dmn := &Daemon{addr: addr, tr: tr}
	var join func() error
	var stabilize func(rounds int)
	var ring *chord.Ring // non-nil iff substrate == "chord"
	switch substrate {
	case "chord":
		ring = chord.NewRing(tr, chord.Config{
			Seed:        cfg.Seed,
			Replication: cfg.Replication,
			Seeds:       seeds,
		})
		dmn.d = ring
		join = func() error { _, err := ring.AddNode(addr); return err }
		stabilize = ring.Stabilize
		dmn.leave = func() error { return ring.RemoveNode(addr) }
	case "pastry":
		o := pastry.NewOverlay(tr, pastry.Config{
			Seed:        cfg.Seed,
			Replication: cfg.Replication,
			Seeds:       seeds,
		})
		dmn.d = o
		join = func() error { _, err := o.AddNode(addr); return err }
		stabilize = o.Stabilize
		dmn.leave = func() error { return o.RemoveNode(addr) }
	case "kademlia":
		o := kademlia.NewOverlay(tr, kademlia.Config{
			Seed:        cfg.Seed,
			Replication: cfg.Replication,
			Seeds:       seeds,
		})
		dmn.d = o
		join = func() error { _, err := o.AddNode(addr); return err }
		stabilize = o.Stabilize
		dmn.leave = func() error { return o.RemoveNode(addr) }
	default:
		return fail(fmt.Errorf("daemon: unknown substrate %q (want chord, pastry or kademlia)", substrate))
	}

	// Cluster processes start concurrently, so the seeds may not answer
	// yet; retry the join with a flat backoff before declaring the boot
	// failed. AddNode deregisters the address on failure, so each retry
	// rebinds and starts clean.
	attempts := cfg.JoinAttempts
	if attempts <= 0 {
		attempts = 20
	}
	backoff := cfg.JoinBackoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	var joinErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
		}
		if joinErr = join(); joinErr == nil {
			break
		}
	}
	if joinErr != nil {
		return fail(fmt.Errorf("daemon: join via %v: %w", cfg.Seeds, joinErr))
	}

	if cfg.WALDir != "" {
		if err := dmn.restoreWAL(cfg.WALDir, ring); err != nil {
			return fail(err)
		}
	}

	every := cfg.StabilizeEvery
	if every == 0 {
		every = 500 * time.Millisecond
	}
	if every > 0 {
		dmn.stabStop = make(chan struct{})
		dmn.stabDone = make(chan struct{})
		go func() {
			defer close(dmn.stabDone)
			ticker := time.NewTicker(every)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					stabilize(1)
				case <-dmn.stabStop:
					return
				}
			}
		}()
	}
	return dmn, nil
}

// restoreWAL opens the journal, re-inserts recovered entries through the
// overlay (they route to their current owners — ownership may have moved
// while this daemon was down), compacts the log to the node's post-replay
// shard, and installs the journal hook for all subsequent mutations.
func (dmn *Daemon) restoreWAL(dir string, ring *chord.Ring) error {
	w, err := dht.OpenWAL(dht.WALOptions{Dir: dir, Codec: transport.Codec{}})
	if err != nil {
		return fmt.Errorf("daemon: open WAL %q: %w", dir, err)
	}
	restored, err := w.Restore()
	if err != nil {
		//lint:allow droppederr the replay error is what the caller needs
		w.Close()
		return fmt.Errorf("daemon: replay WAL %q: %w", dir, err)
	}
	for k, v := range restored {
		if err := dmn.d.Put(k, v); err != nil {
			//lint:allow droppederr the re-insert error is what the caller needs
			w.Close()
			return fmt.Errorf("daemon: restore key %q: %w", k, err)
		}
	}
	node, ok := ring.NodeAt(dmn.addr)
	if !ok {
		//lint:allow droppederr the lookup error is what the caller needs
		w.Close()
		return fmt.Errorf("daemon: node %q vanished during restore", dmn.addr)
	}
	// Reset the log to exactly the shard this node holds after replay:
	// entries that now live elsewhere drop out instead of being re-replayed
	// (and re-routed) on every future boot. Mutations arriving between this
	// snapshot and SetJournal below are the boot's durability gap; the
	// address is not yet published to clients, so only overlay maintenance
	// traffic can land in it.
	if err := w.Compact(node.StoreSnapshot()); err != nil {
		//lint:allow droppederr the compaction error is what the caller needs
		w.Close()
		return fmt.Errorf("daemon: compact WAL %q: %w", dir, err)
	}
	node.SetJournal(walJournal{w: w})
	dmn.wal = w
	return nil
}

// Addr returns the daemon's dialable listen address — what peers put in
// Seeds and clients pass to mlight.Dial.
func (dmn *Daemon) Addr() string { return string(dmn.addr) }

// DHT exposes the daemon's overlay as a dht.DHT, for in-process smoke tests.
func (dmn *Daemon) DHT() dht.DHT { return dmn.d }

// Close drains the daemon: the stabilization loop stops, the node leaves
// the overlay gracefully (handing its shard to its neighbours — this is the
// SIGTERM path, so a rolling restart loses nothing), the WAL is flushed and
// closed, and the transport is torn down. Safe to call more than once.
func (dmn *Daemon) Close() error {
	dmn.closeOnce.Do(func() {
		if dmn.stabStop != nil {
			close(dmn.stabStop)
			<-dmn.stabDone
		}
		// Leave gracefully, but a failed handoff (the whole cluster may be
		// shutting down at once) must not stop local teardown.
		leaveErr := dmn.leave()
		var walErr error
		if dmn.wal != nil {
			if err := dmn.wal.Sync(); err != nil {
				walErr = err
			}
			if err := dmn.wal.Close(); err != nil && walErr == nil {
				walErr = err
			}
		}
		trErr := dmn.tr.Close()
		switch {
		case leaveErr != nil:
			dmn.closeErr = fmt.Errorf("daemon: leave: %w", leaveErr)
		case walErr != nil:
			dmn.closeErr = fmt.Errorf("daemon: wal: %w", walErr)
		case trErr != nil:
			dmn.closeErr = fmt.Errorf("daemon: transport: %w", trErr)
		}
	})
	return dmn.closeErr
}
