// The daemon suite boots real daemons in-process — every byte between
// them, and between them and the Dial clients, crosses loopback TCP — and
// exercises the full deployment story: cluster formation, a dial-anywhere
// client, graceful drain, and WAL crash recovery.
package daemon_test

import (
	"fmt"
	"testing"
	"time"

	"mlight"
	"mlight/internal/daemon"
	"mlight/internal/dht/dhttest"
)

// startCluster boots n daemons: the first bootstraps, the rest join
// through it. Returns the daemons and their addresses.
func startCluster(t *testing.T, n int, cfg daemon.Config) ([]*daemon.Daemon, []string) {
	t.Helper()
	daemons := make([]*daemon.Daemon, 0, n)
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.Seeds = append([]string(nil), addrs...)
		c.Seed = int64(i + 1)
		d, err := daemon.Start(c)
		if err != nil {
			t.Fatalf("start daemon %d: %v", i, err)
		}
		t.Cleanup(func() {
			//lint:allow droppederr test teardown of an already-drained daemon
			d.Close()
		})
		daemons = append(daemons, d)
		addrs = append(addrs, d.Addr())
	}
	return daemons, addrs
}

func insertSmoke(t *testing.T, q mlight.Querier, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		rec := mlight.Record{
			Key:  mlight.Point{float64(i%13)/13 + 0.02, float64(i/13)/13 + 0.02},
			Data: fmt.Sprintf("rec-%d", i),
		}
		if err := q.Insert(rec); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
}

func countSmoke(t *testing.T, q mlight.Querier) int {
	t.Helper()
	rect, err := mlight.NewRect(mlight.Point{0, 0}, mlight.Point{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.RangeQuery(rect)
	if err != nil {
		t.Fatalf("range query: %v", err)
	}
	return len(res.Records)
}

func TestClusterInsertQueryDrain(t *testing.T) {
	dhttest.VerifyNoLeaks(t)
	if testing.Short() {
		t.Skip("real-socket daemon suite is not short")
	}
	daemons, addrs := startCluster(t, 3, daemon.Config{
		Replication:    2,
		StabilizeEvery: 50 * time.Millisecond,
	})

	// The full client-side decorator stack — retries and span tracing —
	// composes over the remote transport exactly as it does in-process.
	tc := mlight.NewTraceCollector()
	client, err := mlight.Dial(addrs,
		mlight.WithRetry(mlight.RetryPolicy{MaxAttempts: 6}),
		mlight.WithTrace(tc),
	)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := client.Close(); err != nil {
			t.Errorf("client close: %v", err)
		}
	}()

	const records = 40
	insertSmoke(t, client, records)
	if got := countSmoke(t, client); got != records {
		t.Fatalf("pre-drain query returned %d records, want %d", got, records)
	}
	if tc.Len() == 0 {
		t.Error("trace collector recorded no spans over the wire")
	}

	// Graceful drain of one daemon: its shard hands off to its overlay
	// neighbours, so a fresh client dialing only the survivors still sees
	// every record.
	if err := daemons[2].Close(); err != nil {
		t.Fatalf("drain daemon 2: %v", err)
	}
	survivor, err := mlight.Dial(addrs[:2], mlight.WithRetry(mlight.RetryPolicy{MaxAttempts: 6}))
	if err != nil {
		t.Fatalf("dial survivors: %v", err)
	}
	defer func() {
		if err := survivor.Close(); err != nil {
			t.Errorf("survivor close: %v", err)
		}
	}()
	if got := countSmoke(t, survivor); got != records {
		t.Errorf("post-drain query returned %d records, want %d", got, records)
	}
}

func TestDialSubstrates(t *testing.T) {
	dhttest.VerifyNoLeaks(t)
	if testing.Short() {
		t.Skip("real-socket daemon suite is not short")
	}
	for _, substrate := range []string{"pastry", "kademlia"} {
		substrate := substrate
		t.Run(substrate, func(t *testing.T) {
			t.Parallel()
			_, addrs := startCluster(t, 2, daemon.Config{
				Substrate:      substrate,
				StabilizeEvery: 50 * time.Millisecond,
			})
			client, err := mlight.Dial(addrs,
				mlight.WithSubstrate(substrate),
				mlight.WithRetry(mlight.RetryPolicy{MaxAttempts: 6}),
			)
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			defer func() {
				if err := client.Close(); err != nil {
					t.Errorf("client close: %v", err)
				}
			}()
			const records = 12
			insertSmoke(t, client, records)
			if got := countSmoke(t, client); got != records {
				t.Errorf("query returned %d records, want %d", got, records)
			}
		})
	}
}

func TestDialRejectsUnknownSubstrate(t *testing.T) {
	if _, err := mlight.Dial([]string{"127.0.0.1:1"}, mlight.WithSubstrate("gossip")); err == nil {
		t.Fatal("Dial with an unknown substrate succeeded")
	}
	if _, err := mlight.Dial(nil); err == nil {
		t.Fatal("Dial with no addresses succeeded")
	}
}

func TestWALRestartRecoversShard(t *testing.T) {
	dhttest.VerifyNoLeaks(t)
	if testing.Short() {
		t.Skip("real-socket daemon suite is not short")
	}
	walDir := t.TempDir()
	d, err := daemon.Start(daemon.Config{
		WALDir:         walDir,
		StabilizeEvery: -1,
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	addr := d.Addr()

	client, err := mlight.Dial([]string{addr})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	const records = 20
	insertSmoke(t, client, records)
	if err := client.Close(); err != nil {
		t.Errorf("client close: %v", err)
	}

	// The daemon goes away; as the overlay's only node it has nobody to
	// hand its shard to. Without the WAL that shard would be gone.
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	d2, err := daemon.Start(daemon.Config{
		Listen:         addr,
		WALDir:         walDir,
		StabilizeEvery: -1,
	})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer func() {
		if err := d2.Close(); err != nil {
			t.Errorf("close restarted: %v", err)
		}
	}()

	client2, err := mlight.Dial([]string{addr})
	if err != nil {
		t.Fatalf("dial restarted: %v", err)
	}
	defer func() {
		if err := client2.Close(); err != nil {
			t.Errorf("client close: %v", err)
		}
	}()
	if got := countSmoke(t, client2); got != records {
		t.Errorf("post-restart query returned %d records, want %d (WAL replay lost data)", got, records)
	}
}

func TestWALRejectsNonChord(t *testing.T) {
	if _, err := daemon.Start(daemon.Config{Substrate: "pastry", WALDir: t.TempDir()}); err == nil {
		t.Fatal("pastry daemon with a WAL started; durability is chord-only")
	}
}
