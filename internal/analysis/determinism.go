package analysis

import (
	"go/ast"
	"go/types"
)

// determinismPass flags the three ways nondeterminism leaks into
// simulation code: reading the wall clock (time.Now / time.Since /
// time.Until), drawing from math/rand's global, process-seeded source
// (rand.Intn, rand.Float64, rand.Shuffle, …), and hashing through
// hash/maphash, whose seeds cannot be fixed across processes (maphash.Seed
// is opaque and only obtainable from the random MakeSeed, so every run
// hashes differently). All three make a run unreproducible: logical
// clocks, injected seeded *rand.Rand values, and internal/hashseed's
// fixed-seed FNV/Fmix helpers are the sanctioned substitutes, so
// seq/concurrent equivalence tests and the experiment tables replay
// bit-identically for a given seed.
//
// Constructing an explicitly seeded generator — rand.New(rand.NewSource(
// seed)) — is the approved pattern and is not flagged. Packages whose job
// is wall-clock measurement (internal/experiments) or interactive driving
// (cmd/*, examples/*) are exempt via Config.DeterminismAllow; the maphash
// check additionally skips internal/hashseed itself, the one place allowed
// to wrap process-seeded hashing if it ever chooses to.
type determinismPass struct{}

func (determinismPass) Name() string { return "determinism" }

func (determinismPass) Doc() string {
	return "flag wall-clock reads, global math/rand use, and hash/maphash outside experiment/driver packages"
}

// wallClockFuncs are the package time functions that read the wall clock.
// Timer construction (NewTicker, After) is deliberately out of scope: the
// repository's only timers live in explicitly wall-clock components.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededConstructors are the math/rand entry points that build an explicit
// generator from a caller-supplied seed or source; everything else at
// package level draws from the global source.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, // math/rand
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2 sources
}

func (determinismPass) Run(pkg *Package, cfg *Config) []Diagnostic {
	for _, frag := range cfg.determinismAllow() {
		if pathMatches(pkg.Path, frag) {
			return nil
		}
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
					out = append(out, pkg.diag(call.Pos(), "determinism",
						"wall-clock read time.%s breaks replayability; use the logical clock or inject the timestamp (or //lint:allow determinism <reason>)",
						fn.Name()))
				}
			case "hash/maphash":
				if pathMatches(pkg.Path, "internal/hashseed") {
					return true
				}
				name := "maphash." + fn.Name()
				if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
					name = "maphash.Hash." + fn.Name()
				}
				out = append(out, pkg.diag(call.Pos(), "determinism",
					"%s hashes with a per-process random seed and breaks replayability; use mlight/internal/hashseed for stable seeded hashing",
					name))
			case "math/rand", "math/rand/v2":
				if fn.Type().(*types.Signature).Recv() != nil {
					return true // methods on an explicit *rand.Rand are fine
				}
				if seededConstructors[fn.Name()] {
					return true
				}
				out = append(out, pkg.diag(call.Pos(), "determinism",
					"global rand.%s draws from a process-wide source; inject a seeded *rand.Rand (rand.New(rand.NewSource(seed))) instead",
					fn.Name()))
			}
			return true
		})
	}
	return out
}

// calleeFunc resolves the called function or method, looking through
// parentheses and selector expressions. It returns nil for calls whose
// callee is not a named function (conversions, function-typed variables).
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
