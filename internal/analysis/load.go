package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	DepOnly      bool
	Standard     bool
	Incomplete   bool
	Error        *struct{ Err string }
}

// Load resolves the given `go list` patterns (e.g. "./...") relative to dir
// and typechecks every matched package, including its in-package test files.
// External test packages (package foo_test) are loaded as separate packages
// named "<path>_test".
//
// The loader is built purely on the standard library: one `go list -export`
// invocation supplies compiled export data for every dependency (the same
// mechanism golang.org/x/tools/go/packages uses), and the matched packages
// themselves are parsed and typechecked from source so the passes get
// syntax trees with comments.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-test", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,TestGoFiles,XTestGoFiles,DepOnly,Standard,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	targetSet := make(map[string]*listPackage)
	var order []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		// Test variants are listed as "path [root.test]"; fold their export
		// data onto the plain path only when the plain entry has none.
		path := p.ImportPath
		if i := strings.IndexByte(path, ' '); i >= 0 {
			path = path[:i]
		}
		if p.Export != "" {
			if _, ok := exports[path]; !ok || path == p.ImportPath {
				exports[path] = p.Export
			}
		}
		if p.DepOnly || p.Standard || strings.HasSuffix(p.ImportPath, ".test") ||
			strings.IndexByte(p.ImportPath, ' ') >= 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if _, dup := targetSet[p.ImportPath]; !dup {
			targetSet[p.ImportPath] = p
			order = append(order, p.ImportPath)
		}
	}
	sort.Strings(order)

	fset := token.NewFileSet()
	ld := &loader{fset: fset, exports: exports, source: make(map[string]*types.Package)}
	ld.gc = importer.ForCompiler(fset, "gc", ld.lookup)

	var pkgs []*Package
	for _, path := range order {
		lp := targetSet[path]
		files := append(append([]string{}, lp.GoFiles...), lp.CgoFiles...)
		files = append(files, lp.TestGoFiles...)
		pkg, err := ld.check(path, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		if len(lp.XTestGoFiles) > 0 {
			// The external test package imports the base package from the
			// same export data every other dependency references, keeping
			// type identities consistent. An xtest that reaches into
			// helpers declared in the base package's _test.go files is
			// retried with the source-checked (test-augmented) base.
			xpkg, err := ld.check(path+"_test", lp.Dir, lp.XTestGoFiles)
			if err != nil && pkg != nil {
				ld.override = map[string]*types.Package{path: pkg.Types}
				xpkg, err = ld.check(path+"_test", lp.Dir, lp.XTestGoFiles)
				ld.override = nil
			}
			if err != nil {
				return nil, err
			}
			if xpkg != nil {
				pkgs = append(pkgs, xpkg)
			}
		}
	}
	return pkgs, nil
}

// LoadDir typechecks the single package rooted at dir under the given import
// path, resolving imports first against extra source directories (import
// path → directory), then against compiled export data for the import paths
// listed in stdlib. It exists for test harnesses that check packages outside
// the enclosing module (testdata trees).
func LoadDir(dir, path string, extra map[string]string, stdlib map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		exports: stdlib,
		srcDirs: extra,
		source:  make(map[string]*types.Package),
	}
	ld.gc = importer.ForCompiler(fset, "gc", ld.lookup)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	return ld.check(path, dir, files)
}

// ListExports runs `go list -deps -export` over the given packages (typically
// a handful of standard-library paths) and returns import path → export data
// file, for use as LoadDir's stdlib argument.
func ListExports(dir string, pkgs []string) (map[string]string, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list -export %s: %v\n%s", strings.Join(pkgs, " "), err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// loader typechecks packages from source, resolving imports through shared
// compiled export data so all loaded packages agree on imported types.
type loader struct {
	fset     *token.FileSet
	exports  map[string]string // import path → export data file
	srcDirs  map[string]string // import path → source dir (LoadDir mode)
	gc       types.Importer
	source   map[string]*types.Package // source-checked srcDirs packages
	override map[string]*types.Package // per-check import overrides (xtest base)
}

func (l *loader) lookup(path string) (io.ReadCloser, error) {
	f, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

// Import implements types.Importer. Export data wins over source so that
// every package in one load agrees on imported type identities; source is
// used only for the xtest-base override and for srcDirs trees (testdata),
// which have no export data.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.override[path]; ok {
		return p, nil
	}
	if _, ok := l.exports[path]; ok {
		return l.gc.Import(path)
	}
	if p, ok := l.source[path]; ok {
		return p, nil
	}
	if dir, ok := l.srcDirs[path]; ok {
		return l.checkDepDir(path, dir)
	}
	return l.gc.Import(path)
}

func (l *loader) checkDepDir(path, dir string) (*types.Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			files = append(files, e.Name())
		}
	}
	pkg, err := l.check(path, dir, files)
	if err != nil {
		return nil, err
	}
	l.source[path] = pkg.Types
	return pkg.Types, nil
}

// check parses and typechecks one package from the named files under dir.
// A package with no files yields (nil, nil).
func (l *loader) check(path, dir string, files []string) (*Package, error) {
	if len(files) == 0 {
		return nil, nil
	}
	var asts []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", filepath.Join(dir, name), err)
		}
		asts = append(asts, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, asts, info)
	if err != nil && len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: typechecking %s: %v", path, typeErrs[0])
	} else if err != nil {
		return nil, fmt.Errorf("analysis: typechecking %s: %v", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: asts,
		Types: tpkg,
		Info:  info,
	}, nil
}
