package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The goroutineleak pass flags `go` statements whose function can block
// forever on a channel operation with no cancel/timeout/drain edge: the
// maintenance-traffic defect class (abandoned RPC drains, write pumps
// surviving Close, worker-pool goroutines parked on a send nobody will
// receive) that dominates real P2P deployment failures.
//
// The analysis is intraprocedural over the spawned function's body (a
// function literal or a same-package function/method), using the CFG to
// ignore unreachable code. Every channel operation is classified against
// package-level evidence of an escape edge:
//
//   - A send is safe when every `make` for the channel's referent object is
//     buffered (the drain-channel idiom: `ch := make(chan result, 1)` lets
//     an abandoned RPC goroutine complete its send and exit even after the
//     caller timed out). Sends on unbuffered or unknown-provenance
//     channels are flagged.
//   - A receive is safe when the package ever close()s the referent (a
//     done-channel), when it is a timer/ticker/context-cancellation
//     channel (time.After, Timer.C, Ticker.C, ctx.Done()), or when the
//     function spawning the goroutine also sends on the same referent (the
//     semaphore pairing in worker pools: `sem <- tok` before `go`, a
//     deferred `<-sem` inside).
//   - A select is safe when it has a default or any safe case — one
//     ready-eventually arm is an escape edge for the whole statement.
//   - A range over a channel is safe only when the package close()s it.
//
// Blocking on sync primitives (Mutex, WaitGroup) is out of scope here:
// lock-related hazards are the lockorder pass's domain, and WaitGroup.Wait
// inside a spawned goroutine is almost always the intended join point.
//
// Referent identity is the types.Object behind the channel expression
// (variable or struct field), so evidence found on one instance applies to
// all — the usual may-analysis over-approximation, erring toward silence
// only where the idiom itself (a close anywhere, a buffered make anywhere)
// is present in the package.
type goroutineLeakPass struct{}

func (goroutineLeakPass) Name() string { return "goroutineleak" }
func (goroutineLeakPass) Doc() string {
	return "go statements whose function may block forever on a channel op with no cancel/timeout/drain edge"
}

// bufState is what the package's make() calls say about a channel object.
type bufState int8

const (
	bufUnknown    bufState = iota // no make seen (parameter, map element, …)
	bufBuffered                   // every make has a capacity argument
	bufUnbuffered                 // some make is capacity-zero
)

// chanFacts is the package-level evidence the per-goroutine analysis
// consults.
type chanFacts struct {
	pkg    *Package
	buf    map[types.Object]bufState
	closed map[types.Object]bool
	// sends maps each function declaration to the channel objects it sends
	// on anywhere in its subtree (for the semaphore-pairing rule).
	sends map[*ast.FuncDecl]map[types.Object]bool
	// decls resolves same-package functions/methods to their bodies.
	decls map[*types.Func]*ast.FuncDecl
}

func (g goroutineLeakPass) Run(pkg *Package, cfg *Config) []Diagnostic {
	facts := gatherChanFacts(pkg)
	var out []Diagnostic
	reported := map[token.Pos]bool{} // dedup ops of functions spawned at several sites
	for _, f := range pkg.Files {
		var enclosing *ast.FuncDecl
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncDecl:
				enclosing = st
			case *ast.GoStmt:
				body := facts.spawnedBody(st)
				if body != nil {
					for _, d := range analyzeSpawned(pkg, facts, enclosing, body) {
						if !reported[d.Pos.pos] {
							reported[d.Pos.pos] = true
							out = append(out, d.diag)
						}
					}
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return out
}

// posDiag pairs a diagnostic with the op position used for deduplication.
type posDiag struct {
	Pos  struct{ pos token.Pos }
	diag Diagnostic
}

func mkPosDiag(pos token.Pos, d Diagnostic) posDiag {
	pd := posDiag{diag: d}
	pd.Pos.pos = pos
	return pd
}

// gatherChanFacts makes one package-wide evidence pass.
func gatherChanFacts(pkg *Package) *chanFacts {
	f := &chanFacts{
		pkg:    pkg,
		buf:    map[types.Object]bufState{},
		closed: map[types.Object]bool{},
		sends:  map[*ast.FuncDecl]map[types.Object]bool{},
		decls:  map[*types.Func]*ast.FuncDecl{},
	}
	for _, file := range pkg.Files {
		var enclosing *ast.FuncDecl
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncDecl:
				enclosing = st
				if fn, ok := pkg.Info.Defs[st.Name].(*types.Func); ok {
					f.decls[fn] = st
				}
			case *ast.CallExpr:
				if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "close" && len(st.Args) == 1 {
					if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
						if obj := chanReferent(pkg, st.Args[0]); obj != nil {
							f.closed[obj] = true
						}
					}
				}
			case *ast.SendStmt:
				if obj := chanReferent(pkg, st.Chan); obj != nil && enclosing != nil {
					set := f.sends[enclosing]
					if set == nil {
						set = map[types.Object]bool{}
						f.sends[enclosing] = set
					}
					set[obj] = true
				}
			case *ast.AssignStmt:
				for i, rhs := range st.Rhs {
					if i < len(st.Lhs) {
						f.recordMake(st.Lhs[i], rhs)
					}
				}
			case *ast.ValueSpec:
				for i, v := range st.Values {
					if i < len(st.Names) {
						f.recordMake(st.Names[i], v)
					}
				}
			case *ast.KeyValueExpr:
				if key, ok := st.Key.(*ast.Ident); ok {
					f.recordMake(key, st.Value)
				}
			}
			return true
		})
	}
	return f
}

// recordMake notes a `make(chan …)` bound to lhs, folding the buffered
// verdict conservatively: one unbuffered make taints the object.
func (f *chanFacts) recordMake(lhs ast.Expr, rhs ast.Expr) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) == 0 {
		return
	}
	if _, isBuiltin := f.pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	if t := exprType(f.pkg, rhs); t == nil || !isChanType(t) {
		return
	}
	obj := chanReferent(f.pkg, lhs)
	if obj == nil {
		return
	}
	verdict := bufUnbuffered
	if len(call.Args) >= 2 {
		// Any explicit capacity expression counts as buffered; a literal 0
		// is the one spelled-out exception.
		verdict = bufBuffered
		if lit, ok := ast.Unparen(call.Args[1]).(*ast.BasicLit); ok && lit.Value == "0" {
			verdict = bufUnbuffered
		}
	}
	switch f.buf[obj] {
	case bufUnknown:
		f.buf[obj] = verdict
	case bufBuffered:
		if verdict == bufUnbuffered {
			f.buf[obj] = bufUnbuffered
		}
	}
}

// spawnedBody resolves the function a go statement runs: a literal's body
// directly, or the declaration of a same-package function or method.
func (f *chanFacts) spawnedBody(g *ast.GoStmt) *ast.BlockStmt {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := f.pkg.Info.Uses[fun].(*types.Func); ok {
			if fd := f.decls[fn]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := f.pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if fd := f.decls[fn]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// chanReferent resolves a channel expression to the variable or field
// object that identifies it across the package.
func chanReferent(pkg *Package, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[x]; obj != nil {
			return obj
		}
		return pkg.Info.Defs[x]
	case *ast.SelectorExpr:
		if obj, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok {
			return obj
		}
	case *ast.IndexExpr:
		return chanReferent(pkg, x.X)
	}
	return nil
}

func isChanType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// analyzeSpawned reports the blocking channel operations in a spawned body
// that no package evidence marks as draining.
func analyzeSpawned(pkg *Package, facts *chanFacts, enclosing *ast.FuncDecl, body *ast.BlockStmt) []posDiag {
	cfg := BuildCFG(body)
	dead := deadSpans(cfg)
	var out []posDiag
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, mkPosDiag(pos, pkg.diag(pos, "goroutineleak", format, args...)))
	}
	covered := map[ast.Node]bool{} // select comm statements, judged with their select

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if inSpans(dead, n.Pos()) {
			return false
		}
		switch st := n.(type) {
		case *ast.GoStmt:
			// A nested go statement is its own spawn site; its body's ops do
			// not block this goroutine.
			return false
		case *ast.SelectStmt:
			if reason := selectUnsafe(pkg, facts, enclosing, st); reason != "" {
				report(st.Pos(), "goroutine may block forever: %s", reason)
			}
			for _, cs := range st.Body.List {
				if cc, ok := cs.(*ast.CommClause); ok && cc.Comm != nil {
					covered[cc.Comm] = true
				}
			}
			return true
		case *ast.SendStmt:
			if covered[st] {
				return true
			}
			if reason := sendUnsafe(pkg, facts, st); reason != "" {
				report(st.Pos(), "goroutine may block forever: %s", reason)
			}
			return true
		case *ast.UnaryExpr:
			if st.Op == token.ARROW {
				if reason := recvUnsafe(pkg, facts, enclosing, st.X); reason != "" {
					report(st.Pos(), "goroutine may block forever: %s", reason)
				}
			}
			return true
		case *ast.ExprStmt:
			if covered[st] {
				// A covered comm clause like `case <-done:`: skip the recv
				// itself but nothing else.
				if u, ok := ast.Unparen(st.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					walk(u.X)
					return false
				}
			}
			return true
		case *ast.AssignStmt:
			if covered[st] {
				for _, rhs := range st.Rhs {
					if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						walk(u.X)
						continue
					}
					walk(rhs)
				}
				return false
			}
			return true
		case *ast.RangeStmt:
			if t := exprType(pkg, st.X); t != nil && isChanType(t) {
				obj := chanReferent(pkg, st.X)
				if obj == nil || !facts.closed[obj] {
					report(st.Pos(), "goroutine may block forever: range over channel %s that is never closed in this package",
						types.ExprString(st.X))
				}
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
	return out
}

// deadSpans returns the source spans of CFG-unreachable nodes, so blocking
// ops in dead code are not reported.
func deadSpans(c *CFG) [][2]token.Pos {
	var spans [][2]token.Pos
	for _, b := range c.Blocks {
		if b.Reachable() {
			continue
		}
		for _, n := range b.Nodes {
			spans = append(spans, [2]token.Pos{n.Pos(), n.End()})
		}
	}
	return spans
}

func inSpans(spans [][2]token.Pos, pos token.Pos) bool {
	for _, s := range spans {
		if pos >= s[0] && pos < s[1] {
			return true
		}
	}
	return false
}

// sendUnsafe explains why a send may block forever, or returns "".
func sendUnsafe(pkg *Package, facts *chanFacts, st *ast.SendStmt) string {
	obj := chanReferent(pkg, st.Chan)
	name := types.ExprString(st.Chan)
	if obj == nil {
		return "send on channel " + name + " of unknown buffering"
	}
	switch facts.buf[obj] {
	case bufBuffered:
		return ""
	case bufUnbuffered:
		return "send on unbuffered channel " + name
	default:
		return "send on channel " + name + " of unknown buffering"
	}
}

// recvUnsafe explains why a receive may block forever, or returns "".
func recvUnsafe(pkg *Package, facts *chanFacts, enclosing *ast.FuncDecl, ch ast.Expr) string {
	ch = ast.Unparen(ch)
	if isEscapeChan(pkg, ch) {
		return ""
	}
	obj := chanReferent(pkg, ch)
	if obj != nil {
		if facts.closed[obj] {
			return ""
		}
		if enclosing != nil && facts.sends[enclosing][obj] {
			return "" // semaphore pairing: the spawning function sends on it
		}
	}
	return "receive on channel " + types.ExprString(ch) +
		" that is never closed in this package and has no send in the spawning function"
}

// isEscapeChan recognizes channels that fire by construction: time.After,
// Timer.C, Ticker.C, and ctx.Done()-style cancellation channels.
func isEscapeChan(pkg *Package, ch ast.Expr) bool {
	switch x := ch.(type) {
	case *ast.CallExpr:
		switch fun := ast.Unparen(x.Fun).(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Done" {
				return true // context-style cancellation accessor
			}
			if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
				if fn.Pkg() != nil && fn.Pkg().Path() == "time" && (fn.Name() == "After" || fn.Name() == "Tick") {
					return true
				}
			}
		}
	case *ast.SelectorExpr:
		if x.Sel.Name == "C" {
			if t := exprType(pkg, x.X); t != nil {
				s := t.String()
				if strings.HasSuffix(s, "time.Timer") || strings.HasSuffix(s, "time.Ticker") {
					return true
				}
			}
		}
	}
	return false
}

// selectUnsafe explains why a select may block forever, or returns "". A
// default clause or any single safe arm is an escape edge for the whole
// statement.
func selectUnsafe(pkg *Package, facts *chanFacts, enclosing *ast.FuncDecl, st *ast.SelectStmt) string {
	if len(st.Body.List) == 0 {
		return "empty select blocks forever"
	}
	for _, cs := range st.Body.List {
		cc := cs.(*ast.CommClause)
		if cc.Comm == nil {
			return "" // default clause
		}
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			if sendUnsafe(pkg, facts, comm) == "" {
				return ""
			}
		case *ast.ExprStmt:
			if u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				if recvUnsafe(pkg, facts, enclosing, u.X) == "" {
					return ""
				}
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if u, ok := ast.Unparen(comm.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					if recvUnsafe(pkg, facts, enclosing, u.X) == "" {
						return ""
					}
				}
			}
		}
	}
	return "select with no default and no timeout/cancel/close/buffered arm"
}
