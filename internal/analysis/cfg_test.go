package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildTestCFG parses a function body and builds its CFG.
func buildTestCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fn.Body)
}

// reaches reports whether to is reachable from from by following Succs.
func reaches(from, to *Block) bool {
	seen := map[*Block]bool{}
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// nodeBlocks maps each node's source text position line to its block, for
// locating specific statements in assertions.
func blockWithCall(c *CFG, name string) *Block {
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok && id.Name == name {
					found = true
				}
				return !found
			})
			if found {
				return b
			}
		}
	}
	return nil
}

func TestCFGStraightLine(t *testing.T) {
	c := buildTestCFG(t, "a(); b()")
	if !c.Exit.Reachable() {
		t.Fatal("exit unreachable in straight-line code")
	}
	ba, bb := blockWithCall(c, "a"), blockWithCall(c, "b")
	if ba == nil || bb == nil || ba != bb {
		t.Fatalf("a and b should share one block: %v %v", ba, bb)
	}
}

func TestCFGIfElseJoins(t *testing.T) {
	c := buildTestCFG(t, "if cond() {\n a()\n} else {\n b()\n}\nafter()")
	ba, bb, bafter := blockWithCall(c, "a"), blockWithCall(c, "b"), blockWithCall(c, "after")
	if ba == nil || bb == nil || bafter == nil {
		t.Fatal("missing blocks for branches or join")
	}
	if ba == bb {
		t.Fatal("then and else share a block")
	}
	if !reaches(ba, bafter) || !reaches(bb, bafter) {
		t.Fatal("branches do not rejoin")
	}
	if reaches(ba, bb) || reaches(bb, ba) {
		t.Fatal("sibling branches reach each other")
	}
}

func TestCFGInfiniteForNeverExits(t *testing.T) {
	c := buildTestCFG(t, "for {\n a()\n}\nafter()")
	if c.Exit.Reachable() {
		t.Fatal("exit reachable past for{}")
	}
	if b := blockWithCall(c, "after"); b != nil && b.Reachable() {
		t.Fatal("code after for{} is reachable")
	}
	ba := blockWithCall(c, "a")
	if ba == nil || !reaches(ba, ba) {
		t.Fatal("loop body has no back edge")
	}
}

func TestCFGForBreakEscapes(t *testing.T) {
	c := buildTestCFG(t, "for {\n if cond() {\n  break\n }\n a()\n}\nafter()")
	bafter := blockWithCall(c, "after")
	if bafter == nil || !bafter.Reachable() {
		t.Fatal("break does not reach code after the loop")
	}
	if !c.Exit.Reachable() {
		t.Fatal("exit unreachable despite break")
	}
}

func TestCFGForCondAndContinue(t *testing.T) {
	c := buildTestCFG(t, "for i := 0; i < n; i++ {\n if cond() {\n  continue\n }\n a()\n}\nafter()")
	ba, bafter := blockWithCall(c, "a"), blockWithCall(c, "after")
	if ba == nil || bafter == nil {
		t.Fatal("missing body or after block")
	}
	if !reaches(ba, ba) {
		t.Fatal("loop body cannot iterate")
	}
	if !reaches(c.Entry, bafter) {
		t.Fatal("conditional loop cannot exit")
	}
}

func TestCFGRange(t *testing.T) {
	c := buildTestCFG(t, "for range xs {\n a()\n}\nafter()")
	ba, bafter := blockWithCall(c, "a"), blockWithCall(c, "after")
	if ba == nil || bafter == nil {
		t.Fatal("missing blocks")
	}
	if !reaches(ba, ba) || !reaches(c.Entry, bafter) {
		t.Fatal("range loop shape wrong")
	}
}

func TestCFGReturnCutsFlow(t *testing.T) {
	c := buildTestCFG(t, "if cond() {\n return\n}\na()")
	ba := blockWithCall(c, "a")
	if ba == nil || !ba.Reachable() {
		t.Fatal("code after conditional return should stay reachable")
	}
	c = buildTestCFG(t, "return\na()")
	if ba := blockWithCall(c, "a"); ba != nil && ba.Reachable() {
		t.Fatal("code after unconditional return is reachable")
	}
}

func TestCFGSwitchFallthroughAndDefault(t *testing.T) {
	c := buildTestCFG(t, "switch tag() {\ncase 1:\n a()\n fallthrough\ncase 2:\n b()\ndefault:\n d()\n}\nafter()")
	ba, bb, bd, bafter := blockWithCall(c, "a"), blockWithCall(c, "b"), blockWithCall(c, "d"), blockWithCall(c, "after")
	if ba == nil || bb == nil || bd == nil || bafter == nil {
		t.Fatal("missing clause blocks")
	}
	if !reaches(ba, bb) {
		t.Fatal("fallthrough edge missing")
	}
	if reaches(bb, bd) {
		t.Fatal("case 2 falls into default without fallthrough")
	}
	// With a default clause the head cannot skip to after directly: every
	// path to after goes through some clause.
	for _, b := range []*Block{ba, bb, bd} {
		if !reaches(b, bafter) {
			t.Fatal("clause does not rejoin")
		}
	}
}

func TestCFGSelect(t *testing.T) {
	// A two-case select: each comm statement lands in its own branch block.
	c := buildTestCFG(t, "select {\ncase <-ch:\n a()\ncase out <- v:\n b()\n}\nafter()")
	ba, bb, bafter := blockWithCall(c, "a"), blockWithCall(c, "b"), blockWithCall(c, "after")
	if ba == nil || bb == nil || bafter == nil {
		t.Fatal("missing select branch blocks")
	}
	if ba == bb {
		t.Fatal("select clauses share a block")
	}
	if !reaches(ba, bafter) || !reaches(bb, bafter) {
		t.Fatal("select clauses do not rejoin")
	}
	// Empty select blocks forever.
	c = buildTestCFG(t, "select {}\nafter()")
	if b := blockWithCall(c, "after"); b != nil && b.Reachable() {
		t.Fatal("code after select{} is reachable")
	}
}

func TestCFGGotoForward(t *testing.T) {
	c := buildTestCFG(t, "if cond() {\n goto done\n}\na()\ndone:\nb()")
	ba, bb := blockWithCall(c, "a"), blockWithCall(c, "b")
	if ba == nil || bb == nil {
		t.Fatal("missing blocks")
	}
	if !bb.Reachable() || !reaches(ba, bb) {
		t.Fatal("goto target unreachable or skipped")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	c := buildTestCFG(t, "outer:\nfor {\n for {\n  if cond() {\n   break outer\n  }\n  a()\n }\n}\nafter()")
	bafter := blockWithCall(c, "after")
	if bafter == nil || !bafter.Reachable() {
		t.Fatal("labeled break does not escape both loops")
	}
	ba := blockWithCall(c, "a")
	if ba == nil || !reaches(ba, ba) {
		t.Fatal("inner loop lost its back edge")
	}
}

func TestCFGLabeledContinue(t *testing.T) {
	c := buildTestCFG(t, "outer:\nfor i := 0; i < n; i++ {\n for {\n  continue outer\n }\n}\nafter()")
	bafter := blockWithCall(c, "after")
	if bafter == nil || !bafter.Reachable() {
		t.Fatal("continue outer should allow the outer loop to terminate")
	}
}

// TestCFGNodeOwnership pins the contract that a block's nodes never include
// another block's statements: the if statement's body call must not appear
// in the condition's block.
func TestCFGNodeOwnership(t *testing.T) {
	c := buildTestCFG(t, "if cond() {\n inner()\n}\n")
	bcond := blockWithCall(c, "cond")
	if bcond == nil {
		t.Fatal("condition block missing")
	}
	for _, n := range bcond.Nodes {
		ast.Inspect(n, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok && id.Name == "inner" {
				t.Fatal("body statement leaked into the condition block")
			}
			return true
		})
	}
}
