package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a file tree under a fresh temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadReportsSyntaxErrors pins the loader's behavior on a package that
// does not parse: one error naming the broken package, not a panic and not
// a silently skipped package.
func TestLoadReportsSyntaxErrors(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":    "module broken\n\ngo 1.22\n",
		"broken.go": "package broken\n\nfunc unclosed( {\n",
	})
	pkgs, err := Load(dir, []string{"./..."})
	if err == nil {
		t.Fatalf("Load over a syntactically broken package succeeded with %d packages", len(pkgs))
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("error does not name the broken package: %v", err)
	}
}

// TestLoadOutsideModule pins the -C failure mode: pointing the loader at a
// directory with no go.mod fails with the pattern-resolution error go list
// reports — exit-code-2 territory for the command, never a zero-package
// success.
func TestLoadOutsideModule(t *testing.T) {
	dir := writeTree(t, map[string]string{"README.txt": "not a module\n"})
	pkgs, err := Load(dir, []string{"./..."})
	if err == nil {
		t.Fatalf("Load outside a module succeeded with %d packages", len(pkgs))
	}
	if !strings.Contains(err.Error(), "module") {
		t.Errorf("error does not explain the missing module: %v", err)
	}
}

// TestLoadDirMissingExportData pins LoadDir's import resolution contract:
// an import with no export data and no source directory is a typecheck
// error naming the unresolvable path.
func TestLoadDirMissingExportData(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"pkg.go": "package needsio\n\nimport \"io\"\n\nvar _ io.Reader\n",
	})
	pkg, err := LoadDir(dir, "example.com/needsio", nil, map[string]string{})
	if err == nil {
		t.Fatalf("LoadDir with empty export table succeeded: %+v", pkg)
	}
	if !strings.Contains(err.Error(), "typechecking") {
		t.Errorf("error is not a typechecking failure: %v", err)
	}
}

// TestLoadDirSyntaxError pins LoadDir's parse failure mode.
func TestLoadDirSyntaxError(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"bad.go": "package bad\n\nfunc {\n",
	})
	if _, err := LoadDir(dir, "example.com/bad", nil, nil); err == nil {
		t.Fatal("LoadDir over unparseable source succeeded")
	} else if !strings.Contains(err.Error(), "parsing") {
		t.Errorf("error is not a parse failure: %v", err)
	}
}

// TestLoadDirMissingDirectory pins the simplest failure: the directory is
// not there.
func TestLoadDirMissingDirectory(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "nope"), "example.com/nope", nil, nil); err == nil {
		t.Fatal("LoadDir over a missing directory succeeded")
	}
}

// TestLoadDirEmptyPackage pins the documented (nil, nil) contract for a
// directory with no Go files.
func TestLoadDirEmptyPackage(t *testing.T) {
	dir := writeTree(t, map[string]string{"notes.txt": "no go files here\n"})
	pkg, err := LoadDir(dir, "example.com/empty", nil, nil)
	if err != nil || pkg != nil {
		t.Fatalf("LoadDir over an empty dir = %v, %v; want nil, nil", pkg, err)
	}
}
