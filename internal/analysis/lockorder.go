package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The lockorder pass builds the per-package mutex-acquisition graph from
// structural Lock/Unlock detection and reports the hazards the race
// detector only catches when the schedule cooperates:
//
//   - acquisition cycles: lock class B taken while A is held in one
//     function, A taken while B is held in another — the classic ABBA
//     deadlock, detected across the whole package even though each
//     function is analyzed intraprocedurally;
//   - nested acquisition of one class: for a plain Mutex a self-deadlock
//     (Go mutexes are not reentrant); for a striped class (a lock reached
//     through an index expression, like the 256-way shard arrays in simnet
//     and dht.Sharded) a reminder that shards must be acquired in
//     ascending shard-index order — the only discipline that makes
//     multi-shard holds safe, and one the analysis cannot verify from
//     syntax, so every such site must carry a waiver citing the ordering
//     argument;
//   - blocking while holding: an RPC (Call/timedCall/Send) or a channel
//     operation executed with a lock must-held on every path — the shape
//     that turns one slow peer into a pile-up behind a stuck mutex.
//
// Lock identity is a class, not an instance: field locks collapse to
// "Type.field" (every tcpPeer.mu is one class), named variables to the
// variable object. Classes over-approximate instances, which is the safe
// direction for ordering (a false cycle is waivable; a missed one is a
// deadlock).
//
// The dataflow runs on the shared CFG with two facts per block — may-held
// (union join) feeds the acquisition graph so no edge is missed, and
// must-held (intersection join) gates the held-across findings so a lock
// released on one branch does not generate a false positive. Deferred
// unlocks do not release during the body: the lock genuinely is held at
// every statement after `defer mu.Unlock()`, which is exactly what the
// held-across findings must see. Function literals are separate analysis
// scopes (their bodies run on nobody's schedule in particular), and `go`
// and `defer` subtrees are skipped during transfer.
type lockOrderPass struct{}

func (lockOrderPass) Name() string { return "lockorder" }
func (lockOrderPass) Doc() string {
	return "mutex acquisition cycles, nested striped-shard locks, and locks held across RPCs/channel ops"
}

// lockBlockingCalls are the method names treated as blocking RPCs for the
// held-across findings: the transport plane's Call/Send and the kademlia
// overlay's deadline wrapper.
var lockBlockingCalls = map[string]bool{"Call": true, "timedCall": true, "Send": true}

// lockClass identifies one lock for ordering purposes.
type lockClass struct {
	id      string // identity key (position-qualified for locals)
	display string // message rendering
	striped bool   // reached through an index expression (shard arrays)
}

// lockEdge is one acquisition-graph edge: to was acquired while from held.
type lockEdge struct {
	pos      token.Pos
	from, to *lockClass
}

func (lockOrderPass) Run(pkg *Package, cfg *Config) []Diagnostic {
	a := &lockOrderAnalysis{
		pkg:   pkg,
		edges: map[string]map[string]*lockEdge{},
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					a.analyzeFunc(fn.Body)
				}
			case *ast.FuncLit:
				// Each literal is its own analysis scope; the walk continues
				// so literals nested inside it get their own too (transfer
				// never descends into them, so nothing is double-counted).
				a.analyzeFunc(fn.Body)
			}
			return true
		})
	}
	a.reportCycles()
	sort.Slice(a.out, func(i, j int) bool { return a.out[i].Pos.Offset < a.out[j].Pos.Offset })
	return a.out
}

type lockOrderAnalysis struct {
	pkg   *Package
	edges map[string]map[string]*lockEdge // from id → to id → first edge
	out   []Diagnostic
}

func (a *lockOrderAnalysis) report(pos token.Pos, format string, args ...any) {
	a.out = append(a.out, a.pkg.diag(pos, "lockorder", format, args...))
}

// lockFacts carries both dataflow facts for one program point.
type lockFacts struct {
	may  map[string]*lockClass
	must map[string]*lockClass
}

func copyClasses(m map[string]*lockClass) map[string]*lockClass {
	out := make(map[string]*lockClass, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// analyzeFunc runs the fixpoint over one function body and emits findings
// with the converged facts. Nested function literals found during the walk
// are analyzed as their own scopes.
func (a *lockOrderAnalysis) analyzeFunc(body *ast.BlockStmt) {
	c := BuildCFG(body)
	preds := make(map[*Block][]*Block)
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	in := make(map[*Block]*lockFacts)
	out := make(map[*Block]*lockFacts)
	in[c.Entry] = &lockFacts{may: map[string]*lockClass{}, must: map[string]*lockClass{}}

	changed := true
	for changed {
		changed = false
		for _, b := range c.Blocks {
			if !b.Reachable() {
				continue
			}
			if b != c.Entry {
				joined := joinFacts(preds[b], out)
				if joined == nil {
					continue // no predecessor facts yet
				}
				in[b] = joined
			}
			f := &lockFacts{may: copyClasses(in[b].may), must: copyClasses(in[b].must)}
			for _, n := range b.Nodes {
				a.transfer(n, f, nil)
			}
			if !factsEqual(out[b], f) {
				out[b] = f
				changed = true
			}
		}
	}

	// Emit pass: replay each block's transfer with the converged entry
	// facts, this time reporting.
	for _, b := range c.Blocks {
		if !b.Reachable() || in[b] == nil {
			continue
		}
		f := &lockFacts{may: copyClasses(in[b].may), must: copyClasses(in[b].must)}
		for _, n := range b.Nodes {
			a.transfer(n, f, a.emit)
		}
	}
}

// joinFacts merges predecessor out-facts: union for may, intersection for
// must. Predecessors not yet computed are skipped (loop back edges on the
// first sweep); nil when none are available.
func joinFacts(preds []*Block, out map[*Block]*lockFacts) *lockFacts {
	var f *lockFacts
	for _, p := range preds {
		po := out[p]
		if po == nil {
			continue
		}
		if f == nil {
			f = &lockFacts{may: copyClasses(po.may), must: copyClasses(po.must)}
			continue
		}
		for id, c := range po.may {
			f.may[id] = c
		}
		for id := range f.must {
			if _, ok := po.must[id]; !ok {
				delete(f.must, id)
			}
		}
	}
	return f
}

func factsEqual(a, b *lockFacts) bool {
	if a == nil || b == nil {
		return a == b
	}
	return sameKeys(a.may, b.may) && sameKeys(a.must, b.must)
}

func sameKeys(x, y map[string]*lockClass) bool {
	if len(x) != len(y) {
		return false
	}
	for k := range x {
		if _, ok := y[k]; !ok {
			return false
		}
	}
	return true
}

// lockEvent is one emit-pass callback: kind is "acquire", "rpc", or a
// channel-op description.
type lockEvent struct {
	kind  string
	pos   token.Pos
	class *lockClass // acquire only
	what  string     // rpc/chanop rendering
}

// transfer walks one CFG node in syntactic order, updating facts and (when
// emit is non-nil) reporting events. go/defer statements and nested
// function literals are opaque: their bodies run on another goroutine or
// at return, not at this program point.
func (a *lockOrderAnalysis) transfer(n ast.Node, f *lockFacts, emit func(*lockFacts, lockEvent)) {
	var walk func(ast.Node) bool
	walk = func(x ast.Node) bool {
		switch st := x.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Lock", "RLock":
				if c := a.classOf(sel.X); c != nil {
					if emit != nil {
						emit(f, lockEvent{kind: "acquire", pos: st.Pos(), class: c})
					}
					f.may[c.id] = c
					f.must[c.id] = c
					return false
				}
			case "Unlock", "RUnlock":
				if c := a.classOf(sel.X); c != nil {
					delete(f.may, c.id)
					delete(f.must, c.id)
					return false
				}
			default:
				if lockBlockingCalls[sel.Sel.Name] && emit != nil {
					emit(f, lockEvent{kind: "rpc", pos: st.Pos(), what: sel.Sel.Name})
				}
			}
			return true
		case *ast.SendStmt:
			if emit != nil {
				emit(f, lockEvent{kind: "chanop", pos: st.Pos(), what: "channel send"})
			}
			return true
		case *ast.UnaryExpr:
			if st.Op == token.ARROW && emit != nil {
				emit(f, lockEvent{kind: "chanop", pos: st.Pos(), what: "channel receive"})
			}
			return true
		}
		return true
	}
	ast.Inspect(n, walk)
}

// emit converts one transfer event into acquisition-graph edges and
// held-across findings.
func (a *lockOrderAnalysis) emit(f *lockFacts, e lockEvent) {
	switch e.kind {
	case "acquire":
		for _, held := range sortedClasses(f.may) {
			if held.id == e.class.id {
				if e.class.striped {
					a.report(e.pos, "nested acquisition of striped lock class %s: shards must be locked in ascending index order",
						e.class.display)
				} else {
					a.report(e.pos, "nested acquisition of lock class %s: possible self-deadlock (Go mutexes are not reentrant)",
						e.class.display)
				}
				continue
			}
			tos := a.edges[held.id]
			if tos == nil {
				tos = map[string]*lockEdge{}
				a.edges[held.id] = tos
			}
			if tos[e.class.id] == nil {
				tos[e.class.id] = &lockEdge{pos: e.pos, from: held, to: e.class}
			}
		}
	case "rpc":
		for _, held := range sortedClasses(f.must) {
			a.report(e.pos, "lock %s held across blocking call %s", held.display, e.what)
		}
	case "chanop":
		for _, held := range sortedClasses(f.must) {
			a.report(e.pos, "lock %s held across %s", held.display, e.what)
		}
	}
}

func sortedClasses(m map[string]*lockClass) []*lockClass {
	out := make([]*lockClass, 0, len(m))
	for _, c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// classOf resolves the expression a Lock method is called on to a lock
// class, or nil when it is not a mutex-shaped type.
func (a *lockOrderAnalysis) classOf(x ast.Expr) *lockClass {
	x = ast.Unparen(x)
	t := exprType(a.pkg, x)
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if !isLockType(t) {
		return nil
	}
	switch e := x.(type) {
	case *ast.Ident:
		obj := a.pkg.Info.Uses[e]
		if obj == nil {
			obj = a.pkg.Info.Defs[e]
		}
		if obj == nil {
			return nil
		}
		if obj.Parent() == a.pkg.Types.Scope() {
			return &lockClass{id: "pkg." + obj.Name(), display: obj.Name()}
		}
		return &lockClass{
			id:      fmt.Sprintf("%s@%d", obj.Name(), obj.Pos()),
			display: obj.Name(),
		}
	case *ast.SelectorExpr:
		recv := exprType(a.pkg, e.X)
		name := namedTypeName(recv)
		striped := containsIndexExpr(e.X)
		display := name + "." + e.Sel.Name
		if striped {
			display += "[*]"
		}
		return &lockClass{id: display, display: display, striped: striped}
	case *ast.IndexExpr:
		// A bare indexed mutex: mus[i].Lock() on []sync.Mutex.
		base := types.ExprString(e.X) + "[*]"
		return &lockClass{id: base, display: base, striped: true}
	}
	display := types.ExprString(x)
	return &lockClass{id: display, display: display}
}

func namedTypeName(t types.Type) string {
	if t == nil {
		return "?"
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(interface{ Obj() *types.TypeName }); ok {
		return n.Obj().Name()
	}
	s := t.String()
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	return s
}

func containsIndexExpr(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.IndexExpr:
			found = true
		case *ast.CallExpr, *ast.FuncLit:
			return false
		}
		return !found
	})
	return found
}

// reportCycles finds acquisition-order cycles in the package-wide graph
// and reports each once, at the edge that closes it.
func (a *lockOrderAnalysis) reportCycles() {
	seen := map[string]bool{}
	froms := make([]string, 0, len(a.edges))
	for from := range a.edges {
		froms = append(froms, from)
	}
	sort.Strings(froms)
	for _, from := range froms {
		tos := make([]string, 0, len(a.edges[from]))
		for to := range a.edges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			e := a.edges[from][to]
			path := a.findPath(to, from)
			if path == nil {
				continue
			}
			// Canonical cycle key: the sorted participant set. The path is
			// inclusive of both endpoints and ends back at `from`, so drop
			// that repeat — otherwise the same cycle walked from its other
			// edge gets a different key and is reported twice.
			members := append([]string{from}, path[:len(path)-1]...)
			sort.Strings(members)
			key := strings.Join(members, "|")
			if seen[key] {
				continue
			}
			seen[key] = true
			names := []string{e.from.display, e.to.display}
			for _, id := range path[1:] {
				names = append(names, a.displayOf(id))
			}
			a.report(e.pos, "lock acquisition cycle: %s", strings.Join(names, " → "))
		}
	}
}

// findPath returns the node sequence from src to dst (inclusive of both)
// following acquisition edges, or nil.
func (a *lockOrderAnalysis) findPath(src, dst string) []string {
	seen := map[string]bool{}
	var dfs func(string) []string
	dfs = func(n string) []string {
		if n == dst {
			return []string{n}
		}
		if seen[n] {
			return nil
		}
		seen[n] = true
		tos := make([]string, 0, len(a.edges[n]))
		for to := range a.edges[n] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if rest := dfs(to); rest != nil {
				return append([]string{n}, rest...)
			}
		}
		return nil
	}
	return dfs(src)
}

func (a *lockOrderAnalysis) displayOf(id string) string {
	for _, tos := range a.edges {
		for _, e := range tos {
			if e.from.id == id {
				return e.from.display
			}
			if e.to.id == id {
				return e.to.display
			}
		}
	}
	return id
}
