package analysis

import (
	"go/ast"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// The hotpath pass turns the repository's zero-allocation guarantees from
// benchmark assertions into a compile-time gate. A function whose doc
// comment carries the marker line
//
//	//lint:hotpath
//
// is verified allocation-free by running the compiler's own escape
// analysis — `go build -gcflags=-m` in the package directory — and
// cross-referencing every "escapes to heap"/"moved to heap" diagnostic
// against the marked functions' line ranges. An escape inside a marked
// function is a finding at the escaping expression's position, so a cold
// error path (the fmt.Errorf in a fast path's failure arm) is waived
// exactly where it allocates with `//lint:allow hotpath <reason>`.
//
// What the gate does and does not see: escape analysis reports every value
// the compiler moves to the heap, which covers the composite-literal,
// closure-capture, and interface-boxing regressions that silently void a
// zero-alloc claim. It does not model append growth beyond capacity or
// runtime-internal allocations (map growth, channel buffers), so the
// dynamic testing.AllocsPerRun gates in internal/experiments remain the
// complementary check: this pass pins the steady-state alloc-free shape at
// compile time, the benchmarks pin the amortized behavior at run time.
//
// The pass skips test files and test-variant packages (the compiler run
// covers the package proper); a marker in a test file or on anything but a
// function declaration is a hygiene finding. Packages with no markers cost
// nothing — the compiler only runs when there is something to verify.
type hotPathPass struct{}

func (hotPathPass) Name() string { return "hotpath" }
func (hotPathPass) Doc() string {
	return "functions marked //lint:hotpath must be allocation-free under compiler escape analysis"
}

// hotpathMarker matches the marker line inside a doc comment.
var hotpathMarker = regexp.MustCompile(`^//\s*lint:hotpath\s*$`)

// escapeLine parses one -gcflags=-m diagnostic.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// hotMark is one marked function.
type hotMark struct {
	name      string
	fsetFile  string // file name as the FileSet knows it (for waiver matching)
	absFile   string // absolute path (for compiler-output matching)
	startLine int
	endLine   int
}

func (h hotPathPass) Run(pkg *Package, cfg *Config) []Diagnostic {
	if strings.HasSuffix(pkg.Path, "_test") || strings.HasSuffix(pkg.Path, ".test") {
		return nil
	}
	var out []Diagnostic
	var marks []*hotMark
	for _, f := range pkg.Files {
		fname := pkg.Fset.Position(f.Pos()).Filename
		isTestFile := strings.HasSuffix(fname, "_test.go")
		// Doc-comment markers on function declarations are the real marks;
		// any other marker placement is a hygiene problem.
		docs := map[*ast.CommentGroup]*ast.FuncDecl{}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
				docs[fd.Doc] = fd
			}
		}
		for _, cg := range f.Comments {
			var marker *ast.Comment
			for _, c := range cg.List {
				if hotpathMarker.MatchString(c.Text) {
					marker = c
					break
				}
			}
			if marker == nil {
				continue
			}
			fd := docs[cg]
			switch {
			case fd == nil:
				out = append(out, pkg.diag(marker.Pos(), h.Name(),
					"//lint:hotpath marker must be the doc comment of a function declaration"))
			case isTestFile:
				out = append(out, pkg.diag(marker.Pos(), h.Name(),
					"//lint:hotpath marker in test file has no effect: escape analysis runs on the package proper"))
			case fd.Body == nil:
				out = append(out, pkg.diag(marker.Pos(), h.Name(),
					"//lint:hotpath marker on bodyless declaration %s cannot be verified", fd.Name.Name))
			default:
				abs, err := filepath.Abs(fname)
				if err != nil {
					abs = fname
				}
				name := fd.Name.Name
				if fd.Recv != nil && len(fd.Recv.List) == 1 {
					name = recvTypeName(fd.Recv.List[0].Type) + "." + name
				}
				marks = append(marks, &hotMark{
					name:      name,
					fsetFile:  fname,
					absFile:   abs,
					startLine: pkg.Fset.Position(fd.Pos()).Line,
					endLine:   pkg.Fset.Position(fd.End()).Line,
				})
			}
		}
	}
	if len(marks) == 0 {
		return out
	}
	out = append(out, h.verify(pkg, marks)...)
	return out
}

func recvTypeName(t ast.Expr) string {
	switch e := t.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return recvTypeName(e.X)
	}
	return "?"
}

// verify runs the compiler's escape analysis over the package directory
// and maps its heap-move diagnostics into the marked functions.
func (h hotPathPass) verify(pkg *Package, marks []*hotMark) []Diagnostic {
	cmd := exec.Command("go", "build", "-gcflags=-m", ".")
	cmd.Dir = pkg.Dir
	raw, err := cmd.CombinedOutput()
	if err != nil {
		// The compiler did not get to escape analysis (broken package,
		// missing go.mod). Attribute the failure to the first mark.
		first := marks[0]
		msg := strings.TrimSpace(string(raw))
		if i := strings.IndexByte(msg, '\n'); i >= 0 {
			msg = msg[:i]
		}
		return []Diagnostic{{
			File: first.fsetFile,
			Line: first.startLine,
			Col:  1,
			Pass: h.Name(),
			Message: "cannot verify //lint:hotpath marks: go build -gcflags=-m failed: " +
				msg,
		}}
	}
	var out []Diagnostic
	for _, line := range strings.Split(string(raw), "\n") {
		m := escapeLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(pkg.Dir, file)
		}
		if abs, aerr := filepath.Abs(file); aerr == nil {
			file = abs
		}
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		for _, mk := range marks {
			if mk.absFile != file || lineNo < mk.startLine || lineNo > mk.endLine {
				continue
			}
			out = append(out, Diagnostic{
				File:    mk.fsetFile,
				Line:    lineNo,
				Col:     col,
				Pass:    h.Name(),
				Message: "allocation in hotpath function " + mk.name + ": " + msg,
			})
			break
		}
	}
	return out
}
