// Package determinism is golden-test input for the determinism pass: wall
// clock reads and global math/rand draws are flagged, explicitly seeded
// generators are not, and //lint:allow directives suppress (or are
// themselves reported when unhygienic).
package determinism

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	t := time.Now()    // want "wall-clock read time.Now"
	d := time.Since(t) // want "wall-clock read time.Since"
	d += time.Until(t) // want "wall-clock read time.Until"
	return d
}

func globalRand() float64 {
	n := rand.Intn(10) // want `global rand.Intn draws from a process-wide source`
	_ = n
	return rand.Float64() // want `global rand.Float64`
}

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // seeded constructor: allowed
	return rng.Intn(10)                   // method on *rand.Rand: allowed
}

func suppressed() time.Time {
	//lint:allow determinism this fixture pins that a reasoned directive suppresses
	return time.Now()
}

func clean() int {
	// The next directive suppresses nothing and must be reported for it.
	//lint:allow determinism stale suppression left behind
	// want:prev "suppresses nothing"
	return 1
}

func reasonless() time.Time {
	// A directive without a reason never suppresses and is reported, so the
	// wall-clock read below it is still flagged too.
	//lint:allow determinism
	// want:prev "missing a reason"
	return time.Now() // want "wall-clock read time.Now"
}
