// Package determinism is golden-test input for the determinism pass: wall
// clock reads and global math/rand draws are flagged, explicitly seeded
// generators are not, and //lint:allow directives suppress (or are
// themselves reported when unhygienic).
package determinism

import (
	"hash/maphash"
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	t := time.Now()    // want "wall-clock read time.Now"
	d := time.Since(t) // want "wall-clock read time.Since"
	d += time.Until(t) // want "wall-clock read time.Until"
	return d
}

func globalRand() float64 {
	n := rand.Intn(10) // want `global rand.Intn draws from a process-wide source`
	_ = n
	return rand.Float64() // want `global rand.Float64`
}

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // seeded constructor: allowed
	return rng.Intn(10)                   // method on *rand.Rand: allowed
}

func processSeededHash(s string) uint64 {
	seed := maphash.MakeSeed() // want `maphash.MakeSeed hashes with a per-process random seed`
	var h maphash.Hash
	h.SetSeed(seed)                // want `maphash.Hash.SetSeed hashes with a per-process random seed`
	_, _ = h.WriteString(s)        // want `maphash.Hash.WriteString hashes with a per-process random seed` `call to WriteString drops its error`
	return maphash.String(seed, s) // want `maphash.String hashes with a per-process random seed`
}

func suppressedHash(s string) uint64 {
	//lint:allow determinism this fixture pins that maphash findings accept a reasoned directive
	return maphash.Bytes(maphash.MakeSeed(), []byte(s))
}

func suppressed() time.Time {
	//lint:allow determinism this fixture pins that a reasoned directive suppresses
	return time.Now()
}

func clean() int {
	// The next directive suppresses nothing and must be reported for it.
	//lint:allow determinism stale suppression left behind
	// want:prev "suppresses nothing"
	return 1
}

func reasonless() time.Time {
	// A directive without a reason never suppresses and is reported, so the
	// wall-clock read below it is still flagged too.
	//lint:allow determinism
	// want:prev "missing a reason"
	return time.Now() // want "wall-clock read time.Now"
}
