package droppederr

import "fmt"

// ExampleGet drops errors the way godoc examples conventionally do; the
// pass exempts Example functions in _test.go files, so nothing here carries
// a want expectation.
func ExampleGet() {
	v, _, _ := Get("k")
	fmt.Println(v)
	// Output: k
}
