// Package droppederr is golden-test input for the dropped-error pass. The
// watched callee names (Call, Get, PutBatch, …) are matched by name, so
// local stand-ins exercise the same rules the real net/dht/retry surfaces
// hit.
package droppederr

// Call mimics the simulated network RPC surface.
func Call(dst string, msg any) (any, error) { return msg, nil }

// Get mimics the DHT read surface.
func Get(k string) (any, bool, error) { return k, true, nil }

// PutBatch mimics the batch write plane: a positional []error carrier.
func PutBatch(ks []string) []error { return nil }

// Append mimics the WAL journal write surface.
func Append(recs []string) error { return nil }

// Restore mimics the WAL replay surface.
func Restore() (map[string]any, error) { return nil, nil }

// helper is deliberately NOT a watched name.
func helper() (int, error) { return 0, nil }

func fireAndForget() {
	_, _ = Call("peer", 1) // want "fire-and-forget call to Call"
	// The all-blank rule is name-agnostic: unwatched callees count too.
	_, _ = helper() // want "fire-and-forget call to helper"
}

func blankedError() {
	v, _, _ := Get("k") // want "error result of Get assigned to _"
	_ = v
}

func discarded() {
	Get("k")      // want "result of Get discarded"
	PutBatch(nil) // want "result of PutBatch discarded"
	Append(nil)   // want "result of Append discarded"
}

func blankedDurability() {
	state, _ := Restore() // want "error result of Restore assigned to _"
	_ = state
}

func handled() error {
	// Blanking data results while keeping the error is fine.
	_, _, err := Get("k")
	if err != nil {
		return err
	}
	// Unwatched callees may blank their error when other results are kept.
	n, _ := helper()
	_ = n
	return nil
}

func suppressed() {
	//lint:allow droppederr probe issued purely to warm the route cache
	_, _ = Call("peer", 2)
}
