// Package lockorder is golden-test input for the lock-order pass: ABBA
// acquisition cycles, nested acquisition of one lock class (striped and
// plain), and locks held across blocking calls or channel operations are
// findings; release-before-blocking, goroutine handoff, and reasoned
// ordering waivers are the sanctioned shapes.
package lockorder

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

// rpc stands in for a transport: Call is in the blocking-call set.
type rpc struct{}

// Call blocks on a peer.
func (r *rpc) Call() {}

// --- acquisition cycle ---------------------------------------------------

// abOrder takes muB while holding muA; baOrder takes them the other way
// around. The cycle is reported once, at the edge that closes it.
func abOrder() {
	muA.Lock()
	muB.Lock() // want "lock acquisition cycle: muA → muB → muA"
	muB.Unlock()
	muA.Unlock()
}

func baOrder() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

// --- nested acquisition --------------------------------------------------

// selfNested reacquires a lock it already holds: Go mutexes are not
// reentrant, so this deadlocks unconditionally.
func selfNested() {
	muA.Lock()
	muA.Lock() // want "nested acquisition of lock class muA: possible self-deadlock"
	muA.Unlock()
	muA.Unlock()
}

// shard is one stripe of a sharded table.
type shard struct {
	mu sync.Mutex
	n  int
}

// table holds striped locks like simnet's peer shards.
type table struct {
	shards [4]shard
}

// lockTwoShards holds two stripes of one class at once; the class is
// striped, so the finding demands the ascending-index discipline.
func (t *table) lockTwoShards(i, j int) {
	t.shards[i].mu.Lock()
	t.shards[j].mu.Lock() // want "nested acquisition of striped lock class shard.mu\\[\\*\\]: shards must be locked in ascending index order"
	t.shards[j].n++
	t.shards[j].mu.Unlock()
	t.shards[i].mu.Unlock()
}

// lockShardsOrdered is the same shape with the discipline argued in a
// waiver, the sanctioned form for multi-shard holds.
func (t *table) lockShardsOrdered(i, j int) {
	if i > j {
		i, j = j, i
	}
	t.shards[i].mu.Lock()
	t.shards[j].mu.Lock() //lint:allow lockorder shards locked in ascending index order: i < j established above
	t.shards[j].n++
	t.shards[j].mu.Unlock()
	t.shards[i].mu.Unlock()
}

// --- blocking while holding ----------------------------------------------

// box guards a value with a mutex.
type box struct {
	mu sync.Mutex
	n  int
}

// callLocked blocks on a peer with box.mu held (the deferred unlock keeps
// it held for the whole body — that is the point of the finding).
func (b *box) callLocked(r *rpc) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r.Call() // want "lock box.mu held across blocking call Call"
	b.n++
}

// sendLocked performs a channel send with box.mu held.
func (b *box) sendLocked(ch chan int) {
	b.mu.Lock()
	ch <- b.n // want "lock box.mu held across channel send"
	b.mu.Unlock()
}

// recvLocked performs a channel receive with box.mu held.
func (b *box) recvLocked(ch chan int) {
	b.mu.Lock()
	b.n = <-ch // want "lock box.mu held across channel receive"
	b.mu.Unlock()
}

// --- negatives -----------------------------------------------------------

// releaseBeforeCall is the sanctioned shape: snapshot under the lock,
// block after releasing it.
func (b *box) releaseBeforeCall(r *rpc) {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	_ = n
	r.Call()
}

// mayHeldOnly: one path released the lock before the call, so it is
// may-held but not must-held there — the intersection join suppresses the
// finding (while the union join still records acquisition edges).
func (b *box) mayHeldOnly(r *rpc, flip bool) {
	b.mu.Lock()
	if flip {
		b.mu.Unlock()
	}
	r.Call()
	if !flip {
		b.mu.Unlock()
	}
}

// handoff: the goroutine body runs on another schedule; holding the lock
// at the spawn point is not holding it at the Call.
func (b *box) handoff(r *rpc) {
	b.mu.Lock()
	go func() {
		r.Call()
	}()
	b.mu.Unlock()
}
