// Package hotpathbroken is golden-test input for the hotpath pass's
// failure modes: a marker on a bodyless declaration is a hygiene finding,
// and the bodyless declaration also breaks `go build`, so the remaining
// marks report as unverifiable instead of silently passing.
package hotpathbroken

// Half is meant to be verified, but the compiler never reaches escape
// analysis because Stub below has no body (and no assembly).
//
//lint:hotpath
func Half(x int) int { // want "cannot verify //lint:hotpath marks"
	return x / 2
}

// Stub is declared without a body.
//
//lint:hotpath
func Stub(x int) int // want:prev "marker on bodyless declaration Stub cannot be verified"
