module example.com/hotpathbroken

go 1.22
