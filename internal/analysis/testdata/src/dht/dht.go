// Package dht is golden-test input for the decorator-completeness pass: a
// structural stand-in for the real substrate package, declaring the DHT
// interface (identified by its Put/Get/Remove shape) and the optional
// capability interfaces looked up by name in this package's scope.
package dht

// Key is the lookup key type.
type Key string

// DHT is the substrate contract.
type DHT interface {
	Put(k Key, v any) error
	Get(k Key) (any, bool, error)
	Remove(k Key) error
}

// Batcher is the optional batched-read capability.
type Batcher interface {
	GetBatch(ks []Key) ([]any, []error)
}

// BatchWriter is the optional batched-write capability.
type BatchWriter interface {
	PutBatch(ks []Key, vs []any) []error
}

// SpanGetter is the optional trace-attribution capability.
type SpanGetter interface {
	GetSpan(k Key, parent int64) (any, bool, error)
}

// Complete forwards every capability and passes the check.
type Complete struct{ inner DHT }

func (c *Complete) Put(k Key, v any) error       { return c.inner.Put(k, v) }
func (c *Complete) Get(k Key) (any, bool, error) { return c.inner.Get(k) }
func (c *Complete) Remove(k Key) error           { return c.inner.Remove(k) }
func (c *Complete) GetBatch(ks []Key) ([]any, []error) {
	errs := make([]error, len(ks))
	vals := make([]any, len(ks))
	for i, k := range ks {
		vals[i], _, errs[i] = c.inner.Get(k)
	}
	return vals, errs
}
func (c *Complete) PutBatch(ks []Key, vs []any) []error {
	errs := make([]error, len(ks))
	for i, k := range ks {
		errs[i] = c.inner.Put(k, vs[i])
	}
	return errs
}
func (c *Complete) GetSpan(k Key, parent int64) (any, bool, error) {
	_ = parent
	return c.inner.Get(k)
}

// Partial wraps the substrate but forwards no capability: one finding per
// missing interface, all anchored at the type declaration.
type Partial struct{ inner DHT } // want "does not implement dht.Batcher" "does not implement dht.BatchWriter" "does not implement dht.SpanGetter"

func (p *Partial) Put(k Key, v any) error       { return p.inner.Put(k, v) }
func (p *Partial) Get(k Key) (any, bool, error) { return p.inner.Get(k) }
func (p *Partial) Remove(k Key) error           { return p.inner.Remove(k) }

// Narrow is deliberately capability-free, like the real dhttest.Flaky; the
// single directive below covers all three findings at this declaration.
//
//lint:allow decoratorcomplete deliberately narrow so per-key paths stay exercised
type Narrow struct{ inner DHT }

func (n *Narrow) Put(k Key, v any) error       { return n.inner.Put(k, v) }
func (n *Narrow) Get(k Key) (any, bool, error) { return n.inner.Get(k) }
func (n *Narrow) Remove(k Key) error           { return n.inner.Remove(k) }

// Plain holds no substrate field and is out of the pass's scope.
type Plain struct{ hits int }

func (p *Plain) Bump() int { p.hits++; return p.hits }
