// Package wire is golden-test input for the decorator-completeness pass's
// cross-package case: the wrapper lives here, but the substrate and
// capability interfaces are resolved in the imported dht package's scope.
package wire

import "example.com/dht"

// Codec wraps a dht.DHT and forwards the batch capabilities but forgets
// SpanGetter — the exact gap the real ByteDHT had.
type Codec struct{ inner dht.DHT } // want "does not implement dht.SpanGetter"

func (c *Codec) Put(k dht.Key, v any) error       { return c.inner.Put(k, v) }
func (c *Codec) Get(k dht.Key) (any, bool, error) { return c.inner.Get(k) }
func (c *Codec) Remove(k dht.Key) error           { return c.inner.Remove(k) }
func (c *Codec) GetBatch(ks []dht.Key) ([]any, []error) {
	vals := make([]any, len(ks))
	errs := make([]error, len(ks))
	for i, k := range ks {
		vals[i], _, errs[i] = c.inner.Get(k)
	}
	return vals, errs
}
func (c *Codec) PutBatch(ks []dht.Key, vs []any) []error {
	errs := make([]error, len(ks))
	for i, k := range ks {
		errs[i] = c.inner.Put(k, vs[i])
	}
	return errs
}
