// Package locksafety is golden-test input for the mutex-copy pass: locks
// (and structs transitively holding them) must move by pointer, never by
// value.
package locksafety

import "sync"

// guarded transitively contains a lock, so copying it copies the lock.
type guarded struct {
	mu sync.Mutex
	n  int
}

func byValueParam(g guarded) int { return g.n } // want "parameter passes sync.Mutex by value"

func byValueResult() (g guarded) { return } // want "result passes sync.Mutex by value"

func (g guarded) byValueReceiver() int { return g.n } // want "receiver passes sync.Mutex by value"

func byPointer(g *guarded) int { return g.n }

func copies(src *guarded) {
	deref := *src // want "assignment copies a value containing sync.Mutex"
	_ = deref

	var local guarded
	dup := local // want "assignment copies a value containing sync.Mutex"
	_ = dup

	// Fresh composite literals and pointer reads are not copies of a
	// shared lock.
	fresh := guarded{n: 1}
	_ = fresh
	ptr := &local
	_ = ptr

	slots := []guarded{{n: 2}}
	one := slots[0] // want "assignment copies a value containing sync.Mutex"
	_ = one
	for _, v := range slots { // want "range copies a value containing sync.Mutex"
		_ = v.n
	}
	for i := range slots { // iterating by index is the sanctioned form
		slots[i].n++
	}
}

func suppressed(src *guarded) {
	//lint:allow locksafety snapshotting a quiescent value in a single-threaded test fixture
	snap := *src
	_ = snap.n
}
