// Package main is golden-test input loaded under the import path
// "example.com/cmd/demo": the "cmd" fragment of DeterminismAllow exempts
// driver packages, so the wall-clock read and global rand draw below carry
// no want expectations.
package main

import (
	"math/rand"
	"time"
)

func main() {
	start := time.Now()
	_ = rand.Intn(10)
	_ = time.Since(start)
}
