// Package goroutineleak is golden-test input for the goroutine-leak pass:
// a `go` statement whose function can park forever on a channel operation
// with no cancel/timeout/drain edge is a leak, while buffered sends,
// package-local close(), escape channels (time.After, ctx-style Done),
// semaphore pairing, and select escape arms are the sanctioned shapes.
package goroutineleak

import "time"

// --- positives -----------------------------------------------------------

// sendUnbuffered parks forever: nothing ever receives.
func sendUnbuffered() {
	ch := make(chan int)
	go func() {
		ch <- 1 // want "send on unbuffered channel ch"
	}()
}

// sendUnknown: the channel arrives as a parameter, so its buffering is not
// knowable from this package and the send must be assumed blocking.
func sendUnknown(ch chan int) {
	go func() {
		ch <- 2 // want "send on channel ch of unknown buffering"
	}()
}

// recvNeverClosed: no close() in the package, no send in the spawner.
func recvNeverClosed() {
	ch := make(chan int, 1)
	go func() {
		<-ch // want "receive on channel ch that is never closed in this package"
	}()
}

// selectNoEscape: every arm is an unknown-buffering op, no default.
func selectNoEscape(a, b chan int) {
	go func() {
		select { // want "select with no default and no timeout/cancel/close/buffered arm"
		case <-a:
		case <-b:
		}
	}()
}

// emptySelect is the canonical park-forever statement.
func emptySelect() {
	go func() {
		select {} // want "empty select blocks forever"
	}()
}

// rangeNeverClosed: the loop only ends when the channel closes, and it
// never does.
func rangeNeverClosed(ch chan int) {
	go func() {
		for v := range ch { // want "range over channel ch that is never closed in this package"
			_ = v
		}
	}()
}

// --- negatives -----------------------------------------------------------

// sendBuffered: every make() for ch is buffered, so the send cannot park
// past the first slot.
func sendBuffered() int {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
	return <-ch
}

// recvClosedInPackage: close(done) below is the drain edge.
func recvClosedInPackage() {
	done := make(chan struct{})
	go func() {
		<-done
	}()
	close(done)
}

// rangeClosedInPackage: the producer closes what the consumer ranges over.
func rangeClosedInPackage() {
	ch := make(chan int, 4)
	go func() {
		for v := range ch {
			_ = v
		}
	}()
	ch <- 1
	close(ch)
}

// selectWithTimeout: time.After is an escape arm for the whole select.
func selectWithTimeout(ch chan int) {
	go func() {
		select {
		case <-ch:
		case <-time.After(time.Second):
		}
	}()
}

// selectWithDefault never blocks at all.
func selectWithDefault(ch chan int) {
	go func() {
		select {
		case <-ch:
		default:
		}
	}()
}

// canceler mimics context.Context's cancellation accessor.
type canceler struct{ done chan struct{} }

// Done returns the cancellation channel.
func (c *canceler) Done() <-chan struct{} { return c.done }

// recvDone: a .Done() accessor is an escape channel by convention.
func recvDone(c *canceler) {
	go func() {
		<-c.Done()
	}()
}

// semaphorePair: the spawning function sends on the same channel the
// goroutine receives from — the bounded-worker-pool shape.
func semaphorePair() {
	sem := make(chan struct{}, 8)
	for i := 0; i < 4; i++ {
		sem <- struct{}{}
		go func() {
			<-sem
		}()
	}
}

// deadOp: the send is CFG-unreachable, so it cannot park anything.
func deadOp(ch chan int) {
	go func() {
		return
		ch <- 1
	}()
}

// nestedSpawn: the inner go statement is its own spawn site; its receive
// does not block the outer goroutine (and is itself safe via the close).
func nestedSpawn() {
	done := make(chan struct{})
	go func() {
		go func() {
			<-done
		}()
	}()
	close(done)
}

// waived: a deliberate fire-and-forget send, suppressed with a reasoned
// directive instead of restructured.
func waived(ch chan int) {
	go func() {
		ch <- 9 //lint:allow goroutineleak fixture guarantees a receiver; fire-and-forget by design
	}()
}
