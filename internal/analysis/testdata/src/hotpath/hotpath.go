// Package hotpath is golden-test input for the hotpath pass: a function
// whose doc comment carries //lint:hotpath must be allocation-free under
// the compiler's escape analysis, and marker placement itself is checked.
// This package has its own go.mod because the pass shells out to
// `go build -gcflags=-m` in the package directory.
package hotpath

var sink any

var global []byte

// Sum is genuinely allocation-free: everything stays on the stack.
//
//lint:hotpath
func Sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// LeakPointer returns a pointer to a local, forcing it to the heap.
//
//lint:hotpath
func LeakPointer() *int {
	x := 42 // want "moved to heap: x"
	return &x
}

// GrowGlobal publishes a fresh slice, so the make escapes.
//
//lint:hotpath
func GrowGlobal(n int) {
	global = make([]byte, n) // want "escapes to heap"
}

// Box stores an integer into an interface, which heap-allocates the box.
//
//lint:hotpath
func Box(i int) {
	sink = i // want "i escapes to heap"
}

// Counter returns a closure over n: both the literal and its captured
// variable move to the heap.
//
//lint:hotpath
func Counter() func() int {
	n := 0              // want "moved to heap: n"
	return func() int { // want "func literal escapes to heap"
		n++
		return n
	}
}

// Waived allocates on a cold path and says why that is fine.
//
//lint:hotpath
func Waived(fail bool) *int {
	if fail {
		x := -1 //lint:allow hotpath cold failure arm, never taken on the fast path
		return &x
	}
	return nil
}

//lint:hotpath
var scratch []byte // want:prev "marker must be the doc comment of a function declaration"
