module example.com/hotpath

go 1.22
