package hotpath

// MarkedInTest carries a marker in a test file, where escape analysis
// never runs.
//
//lint:hotpath
func MarkedInTest() int { return 1 } // want:prev "marker in test file has no effect"
