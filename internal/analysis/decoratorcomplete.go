package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// decoratorCompletePass enforces complete decorator pass-through: every
// struct in a decorator package (Config.DecoratorPackages — the dht
// package, its dhttest kit, and the wire adapter) that wraps a DHT
// substrate field must also implement each optional capability interface
// declared alongside that substrate interface — Batcher, BatchWriter, and
// SpanGetter — or carry an allow directive.
//
// Why: capability discovery is by type assertion (`d.(dht.Batcher)`), so a
// decorator that forgets one method silently downgrades the whole stack —
// batched round-trips degrade to per-key calls, trace spans detach — with
// no compile error and no test failure in the decorator itself. Every PR
// so far has hand-audited this matrix; the pass makes it mechanical.
//
// The check is go/types-driven: a "substrate field" is a field whose type
// is a named interface containing Put, Get, and Remove; the capability
// interfaces are looked up by name in that interface's declaring package,
// so the pass works for the real dht package and the golden-test stand-ins
// alike. Types declared in _test.go files are skipped — test doubles
// legitimately implement the minimal surface (and dhttest.Flaky, a
// non-test type that deliberately narrows the stack, carries the allow
// directive this pass demands).
type decoratorCompletePass struct{}

func (decoratorCompletePass) Name() string { return "decoratorcomplete" }

func (decoratorCompletePass) Doc() string {
	return "flag DHT decorators that do not forward the optional capability interfaces"
}

// capabilityNames are the optional interfaces a decorator must forward.
var capabilityNames = []string{"Batcher", "BatchWriter", "SpanGetter"}

// substrateMethods identify a DHT substrate interface structurally.
var substrateMethods = []string{"Put", "Get", "Remove"}

func (decoratorCompletePass) Run(pkg *Package, cfg *Config) []Diagnostic {
	inScope := false
	for _, seg := range cfg.decoratorPackages() {
		base := pkg.Path
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		if base == seg {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				out = append(out, checkDecorator(pkg, ts, obj)...)
			}
		}
	}
	return out
}

func checkDecorator(pkg *Package, ts *ast.TypeSpec, obj *types.TypeName) []Diagnostic {
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	contract := substratePackage(st)
	if contract == nil {
		return nil
	}
	var out []Diagnostic
	wrapper := obj.Type()
	ptr := types.NewPointer(wrapper)
	for _, name := range capabilityNames {
		capObj, ok := contract.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		iface, ok := capObj.Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		if types.Implements(wrapper, iface) || types.Implements(ptr, iface) {
			continue
		}
		out = append(out, pkg.diag(ts.Pos(), "decoratorcomplete",
			"%s wraps a %s.DHT substrate but does not implement %s.%s; forward it to the inner substrate or //lint:allow decoratorcomplete <reason>",
			obj.Name(), contract.Name(), contract.Name(), name))
	}
	return out
}

// substratePackage returns the package declaring the DHT substrate
// interface wrapped by a field of st, or nil if st wraps none.
func substratePackage(st *types.Struct) *types.Package {
	for i := 0; i < st.NumFields(); i++ {
		named, ok := st.Field(i).Type().(*types.Named)
		if !ok {
			if alias, ok2 := st.Field(i).Type().(*types.Alias); ok2 {
				named, ok = types.Unalias(alias).(*types.Named)
			}
			if !ok {
				continue
			}
		}
		iface, ok := named.Underlying().(*types.Interface)
		if !ok {
			continue
		}
		if isSubstrate(iface) && named.Obj().Pkg() != nil {
			return named.Obj().Pkg()
		}
	}
	return nil
}

func isSubstrate(iface *types.Interface) bool {
	for _, m := range substrateMethods {
		found := false
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == m {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
