package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the flow-analysis substrate the concurrency passes share: a
// lightweight intraprocedural control-flow graph built from go/ast alone
// (no golang.org/x/tools dependency, per the repository's stdlib-only
// rule). Each function body becomes a graph of basic blocks — straight-line
// statement runs — with edges for every structured-control construct:
// if/else, for and range loops (including break/continue, labeled or not),
// switch and type switch (including fallthrough), select, goto, return.
//
// The node-ownership contract the passes rely on: a block's Nodes list
// holds only nodes whose entire subtree executes within that block. Control
// statements never appear themselves — only their evaluated head parts do
// (an if condition, a for condition, a range operand, a switch tag), while
// their bodies become separate blocks. A select contributes its comm
// statements to the per-clause blocks. Passes can therefore ast.Inspect
// every node of a block without double-visiting another block's code.
//
// Two deliberate simplifications keep the layer small without costing the
// passes precision they could actually use:
//
//   - Statements are the unit of transfer. A lock acquired and a channel
//     sent in one statement would be ordered arbitrarily, but Go code holds
//     Lock/Unlock and channel operations in dedicated statements in
//     practice (and gofmt'd code in this repository always does).
//   - Nested function literals are opaque as far as control flow goes:
//     a literal appearing in a block's node belongs to that block as a
//     value; its body's statements are not part of the enclosing CFG.
//     Passes that care (goroutineleak) descend into literals explicitly
//     with their own rules.
//
// panic/Fatal-style no-return calls are treated as ordinary statements; the
// resulting extra paths only make the passes conservative, never unsound
// for their use (a may-analysis over-approximates, a must-analysis
// under-approximates, both in the safe direction).

// Block is one straight-line run of nodes in a CFG. Succs lists the
// possible control-flow successors.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block

	reachable bool
}

// CFG is the control-flow graph of one function body. Entry is where
// execution starts; Exit is the single synthetic block every return and
// fall-off-the-end path reaches.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// cfgBuilder carries the construction state: the current block under
// extension plus the break/continue/label targets of the enclosing
// constructs.
type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	breaks []*Block          // innermost-last break targets
	conts  []*Block          // innermost-last continue targets
	labels map[string]*label // named loop/switch targets and goto anchors
}

type label struct {
	brk    *Block // break L target (after the labeled construct)
	cont   *Block // continue L target (the labeled loop's post/head)
	anchor *Block // the labeled statement itself (goto L target)
}

// BuildCFG constructs the control-flow graph of a function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{}
	b := &cfgBuilder{cfg: c, labels: map[string]*label{}}
	c.Entry = b.newBlock()
	c.Exit = b.newBlock()
	b.cur = c.Entry
	b.stmtList(body.List)
	b.edgeTo(c.Exit) // falling off the end reaches Exit
	c.markReachable()
	return c
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edgeTo links the current block to dst, unless the current position is
// unreachable (cur == nil after a terminating statement).
func (b *cfgBuilder) edgeTo(dst *Block) {
	if b.cur == nil || dst == nil {
		return
	}
	for _, s := range b.cur.Succs {
		if s == dst {
			return
		}
	}
	b.cur.Succs = append(b.cur.Succs, dst)
}

// startBlock begins emitting into blk (with an edge from the current block
// when one is live).
func (b *cfgBuilder) startBlock(blk *Block) {
	b.edgeTo(blk)
	b.cur = blk
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// labelFor returns (creating on demand) the record for a label name, so
// forward gotos and labeled statements agree on the anchor block.
func (b *cfgBuilder) labelFor(name string) *label {
	l, ok := b.labels[name]
	if !ok {
		l = &label{anchor: b.newBlock()}
		b.labels[name] = l
	}
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	if b.cur == nil {
		// Statements after a terminator (return, break, goto) still need a
		// home so passes can see they are dead: give them a fresh block with
		// no predecessors, which markReachable will leave unreachable.
		b.cur = b.newBlock()
	}
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.LabeledStmt:
		l := b.labelFor(st.Label.Name)
		// The label's anchor block heads whatever the labeled statement is.
		b.startBlock(l.anchor)
		switch st.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			after := b.newBlock()
			l.brk = after
			b.labeledControl(st.Stmt, l, after)
			b.cur = after
		default:
			b.stmt(st.Stmt)
		}

	case *ast.IfStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		b.add(st.Cond)
		condBlk := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.startBlock(then)
		b.stmtList(st.Body.List)
		b.edgeTo(after)
		b.cur = condBlk
		if st.Else != nil {
			els := b.newBlock()
			b.startBlock(els)
			b.stmt(st.Else)
			b.edgeTo(after)
		} else {
			b.edgeTo(after)
		}
		b.cur = after

	case *ast.ForStmt:
		b.buildFor(st, nil, b.newBlock())

	case *ast.RangeStmt:
		b.buildRange(st, nil, b.newBlock())

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.buildSwitch(s, b.newBlock())

	case *ast.SelectStmt:
		b.buildSelect(st, b.newBlock())

	case *ast.ReturnStmt:
		b.add(st)
		b.edgeTo(b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			if st.Label != nil {
				b.edgeTo(b.labelFor(st.Label.Name).brk)
			} else if len(b.breaks) > 0 {
				b.edgeTo(b.breaks[len(b.breaks)-1])
			}
			b.cur = nil
		case token.CONTINUE:
			if st.Label != nil {
				b.edgeTo(b.labelFor(st.Label.Name).cont)
			} else if len(b.conts) > 0 {
				b.edgeTo(b.conts[len(b.conts)-1])
			}
			b.cur = nil
		case token.GOTO:
			b.edgeTo(b.labelFor(st.Label.Name).anchor)
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by buildSwitch via clause chaining; nothing to cut.
		}

	default:
		// Straight-line statements: declarations, assignments, expressions,
		// sends, go, defer, inc/dec, empty.
		b.add(s)
	}
}

// labeledControl dispatches a labeled loop/switch/select with its break
// target fixed to after.
func (b *cfgBuilder) labeledControl(s ast.Stmt, l *label, after *Block) {
	switch st := s.(type) {
	case *ast.ForStmt:
		b.buildFor(st, l, after)
	case *ast.RangeStmt:
		b.buildRange(st, l, after)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.buildSwitch(st, after)
	case *ast.SelectStmt:
		b.buildSelect(st, after)
	}
}

func (b *cfgBuilder) buildFor(st *ast.ForStmt, l *label, after *Block) {
	if st.Init != nil {
		b.stmt(st.Init)
	}
	head := b.newBlock()
	post := head
	if st.Post != nil {
		post = b.newBlock()
	}
	if l != nil {
		l.cont = post
	}
	b.startBlock(head)
	if st.Cond != nil {
		b.add(st.Cond)
		b.edgeTo(after)
	}
	body := b.newBlock()
	b.startBlock(body)
	b.breaks = append(b.breaks, after)
	b.conts = append(b.conts, post)
	b.stmtList(st.Body.List)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
	b.edgeTo(post)
	if st.Post != nil {
		b.cur = post
		b.add(st.Post)
		b.edgeTo(head)
	}
	b.cur = after
}

func (b *cfgBuilder) buildRange(st *ast.RangeStmt, l *label, after *Block) {
	head := b.newBlock()
	if l != nil {
		l.cont = head
	}
	b.startBlock(head)
	b.add(st.X) // the ranged operand evaluates at the head
	b.edgeTo(after)
	body := b.newBlock()
	b.startBlock(body)
	b.breaks = append(b.breaks, after)
	b.conts = append(b.conts, head)
	b.stmtList(st.Body.List)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
	b.edgeTo(head)
	b.cur = after
}

func (b *cfgBuilder) buildSwitch(s ast.Stmt, after *Block) {
	var body *ast.BlockStmt
	switch st := s.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		b.add(st.Tag)
		body = st.Body
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		b.add(st.Assign)
		body = st.Body
	}
	head := b.cur
	hasDefault := false
	var clauseBlocks []*Block
	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		cc := cs.(*ast.CaseClause)
		clauses = append(clauses, cc)
		clauseBlocks = append(clauseBlocks, b.newBlock())
		if cc.List == nil {
			hasDefault = true
		}
	}
	for i, cc := range clauses {
		b.cur = head
		b.startBlock(clauseBlocks[i])
		for _, e := range cc.List {
			b.add(e)
		}
		b.breaks = append(b.breaks, after)
		b.stmtList(cc.Body)
		b.breaks = b.breaks[:len(b.breaks)-1]
		if fallsThrough(cc.Body) && i+1 < len(clauseBlocks) {
			b.edgeTo(clauseBlocks[i+1])
			b.cur = nil
		}
		b.edgeTo(after)
	}
	if !hasDefault {
		b.cur = head
		b.edgeTo(after)
	}
	b.cur = after
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *cfgBuilder) buildSelect(st *ast.SelectStmt, after *Block) {
	head := b.cur
	if len(st.Body.List) == 0 {
		// select {} blocks forever: control never reaches after.
		b.cur = after
		return
	}
	for _, cs := range st.Body.List {
		cc := cs.(*ast.CommClause)
		b.cur = head
		blk := b.newBlock()
		b.startBlock(blk)
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.breaks = append(b.breaks, after)
		b.stmtList(cc.Body)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.edgeTo(after)
	}
	b.cur = after
}

// markReachable flags every block reachable from Entry.
func (c *CFG) markReachable() {
	var visit func(*Block)
	visit = func(b *Block) {
		if b.reachable {
			return
		}
		b.reachable = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(c.Entry)
}

// Reachable reports whether the block can execute at all.
func (b *Block) Reachable() bool { return b.reachable }
