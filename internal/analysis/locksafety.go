package analysis

import (
	"go/ast"
	"go/types"
)

// lockSafetyPass flags mutex values that escape their owner by copy:
//
//   - function/method parameters, results, and receivers declared by value
//     with a type that holds a lock (sync.Mutex, sync.RWMutex, or any
//     struct/array transitively containing one) — "a mutex field passed
//     across a function boundary" guards a different lock on each side of
//     the call;
//   - assignments and variable declarations that copy an existing lock-
//     holding value (`x := *node`, `cp := ring.state`). Fresh composite
//     literals and function-call results are not copies of a *shared* lock
//     and are allowed.
//
// The dynamic race detector only catches a copied mutex when two
// goroutines actually collide on it in a given run; this pass rejects the
// copy statically. Lock-holding types are recognized structurally — a
// named type whose pointer method set has Lock and Unlock while its value
// method set does not — so the pass needs no dependency on the sync
// package itself.
type lockSafetyPass struct{}

func (lockSafetyPass) Name() string { return "locksafety" }

func (lockSafetyPass) Doc() string {
	return "flag mutex-by-value copies and mutexes passed across function boundaries"
}

func (lockSafetyPass) Run(pkg *Package, cfg *Config) []Diagnostic {
	seen := make(map[types.Type]string)
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				out = append(out, checkFuncType(pkg, node.Type, node.Recv, seen)...)
			case *ast.FuncLit:
				out = append(out, checkFuncType(pkg, node.Type, nil, seen)...)
			case *ast.AssignStmt:
				for i, rhs := range node.Rhs {
					if i < len(node.Lhs) && isBlank(node.Lhs[i]) {
						continue
					}
					out = append(out, checkCopy(pkg, rhs, seen)...)
				}
			case *ast.ValueSpec:
				for _, v := range node.Values {
					out = append(out, checkCopy(pkg, v, seen)...)
				}
			case *ast.RangeStmt:
				// `for _, v := range slice` copies each element into v.
				if node.Value != nil && !isBlank(node.Value) {
					if t := exprType(pkg, node.Value); t != nil {
						if lock := lockIn(t, seen); lock != "" {
							out = append(out, pkg.diag(node.Value.Pos(), "locksafety",
								"range copies a value containing %s; iterate by index or store pointers", lock))
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// checkFuncType flags by-value lock-holding parameters, results, and
// receivers in a function signature.
func checkFuncType(pkg *Package, ft *ast.FuncType, recv *ast.FieldList, seen map[types.Type]string) []Diagnostic {
	var out []Diagnostic
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pkg.Info.Types[field.Type].Type
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if lock := lockIn(t, seen); lock != "" {
				out = append(out, pkg.diag(field.Pos(), "locksafety",
					"%s passes %s by value across a function boundary; use a pointer", kind, lock))
			}
		}
	}
	check(recv, "receiver")
	check(ft.Params, "parameter")
	check(ft.Results, "result")
	return out
}

// checkCopy flags expressions that copy an existing lock-holding value:
// dereferences, plain variable reads, field selections, and indexing.
// Composite literals, calls, and conversions build fresh values and pass.
func checkCopy(pkg *Package, rhs ast.Expr, seen map[types.Type]string) []Diagnostic {
	switch ast.Unparen(rhs).(type) {
	case *ast.StarExpr, *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
	default:
		return nil
	}
	tv, ok := pkg.Info.Types[rhs]
	if !ok || tv.Type == nil {
		return nil
	}
	// Taking an address or reading a pointer-typed variable is not a copy.
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return nil
	}
	if lock := lockIn(tv.Type, seen); lock != "" {
		return []Diagnostic{pkg.diag(rhs.Pos(), "locksafety",
			"assignment copies a value containing %s; use a pointer", lock)}
	}
	return nil
}

// exprType resolves e's type, falling back to the defined or used object
// for identifiers — range variables introduced with `:=` are recorded in
// Info.Defs, not Info.Types.
func exprType(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pkg.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// lockIn reports the name of a lock type reachable in t by value, or "".
func lockIn(t types.Type, seen map[types.Type]string) string {
	if name, ok := seen[t]; ok {
		return name
	}
	seen[t] = "" // cycle guard; overwritten below on a find
	name := findLock(t, seen)
	seen[t] = name
	return name
}

func findLock(t types.Type, seen map[types.Type]string) string {
	if isLockType(t) {
		return types.TypeString(t, types.RelativeTo(nil))
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockIn(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockIn(u.Elem(), seen)
	}
	return ""
}

// isLockType reports whether *t has Lock and Unlock methods that t itself
// lacks — the shape of sync.Mutex and sync.RWMutex.
func isLockType(t types.Type) bool {
	if _, ok := t.(interface{ Obj() *types.TypeName }); !ok {
		return false
	}
	ptr := types.NewMethodSet(types.NewPointer(t))
	val := types.NewMethodSet(t)
	return hasMethod(ptr, "Lock") && hasMethod(ptr, "Unlock") &&
		!hasMethod(val, "Lock")
}

func hasMethod(ms *types.MethodSet, name string) bool {
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}
