// Package analysis implements mlight-lint, a multi-pass static analyzer
// that machine-checks the repository's correctness conventions — the
// invariants the compiler cannot see but every PR so far has had to audit
// by hand:
//
//   - determinism: no wall-clock reads, global (unseeded) math/rand use,
//     or hash/maphash hashing (whose seeds are per-process and cannot be
//     pinned — internal/hashseed is the sanctioned substitute) outside the
//     experiment/driver packages, so simulations replay identically for a
//     given seed (pass "determinism");
//   - no silently dropped RPC or DHT errors — the class of bug behind the
//     silent replica loss fixed in the fault-tolerance PR
//     (pass "droppederr");
//   - every DHT decorator forwards the optional capability interfaces
//     (Batcher, BatchWriter, SpanGetter) its inner substrate may have, so
//     wrapping never silently disables batching or trace attribution
//     (pass "decoratorcomplete");
//   - mutexes are never copied by value or passed across function
//     boundaries by value (pass "locksafety");
//   - no goroutine is spawned that can block forever on a channel with no
//     cancel/timeout/drain edge — the abandoned-RPC-drain and write-pump
//     leak class (pass "goroutineleak");
//   - the per-package mutex-acquisition graph is cycle-free, striped
//     shard locks nest only under an explicit ordering waiver, and no
//     lock is held across an RPC or channel operation
//     (pass "lockorder");
//   - functions marked //lint:hotpath stay allocation-free under the
//     compiler's escape analysis, making the scale PR's zero-alloc claims
//     a compile-time gate (pass "hotpath").
//
// The flow-aware passes (goroutineleak, lockorder) run on a shared
// intraprocedural CFG/dataflow layer (cfg.go). The analyzer is built
// purely on the standard library's go/ast, go/parser, go/types, and
// go/importer (no golang.org/x/tools dependency), honoring the
// repository's stdlib-only rule. It runs as `go run ./cmd/mlight-lint
// ./...` and exits nonzero on findings.
//
// # Suppression
//
// A finding is suppressed by a directive comment
//
//	//lint:allow <pass> <reason>
//
// placed on the flagged line or on the line immediately above it (the last
// line of a declaration's doc comment works). The reason is mandatory: a
// directive without one is itself reported, as is a directive that
// suppresses nothing, so the suppression inventory stays honest.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Package is one typechecked package under analysis.
type Package struct {
	Path  string // import path ("<path>_test" for external test packages)
	Dir   string // directory holding the source files
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Diagnostic is one finding, positioned at the offending syntax node.
type Diagnostic struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Pass    string         `json:"pass"`
	Message string         `json:"message"`
}

// String renders the canonical "file:line:col: [pass] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Pass, d.Message)
}

// Pass is one invariant checker.
type Pass interface {
	// Name is the identifier used in diagnostics and allow directives.
	Name() string
	// Doc is a one-line description for -list output.
	Doc() string
	// Run reports every violation in pkg. Suppression is applied by the
	// driver, not the pass.
	Run(pkg *Package, cfg *Config) []Diagnostic
}

// Config tunes the passes. The zero value selects the repository defaults;
// the golden tests override individual fields.
type Config struct {
	// DeterminismAllow lists package-path fragments exempt from the
	// determinism pass. A package is exempt when any fragment equals its
	// import path, one of its path segments' prefixes, or a suffix of it —
	// "cmd" matches both "mlight/cmd/mlight-bench" and "cmd/x".
	// Nil selects DefaultDeterminismAllow.
	DeterminismAllow []string
	// DroppedErrCalls lists callee names whose blank-assigned error results
	// the droppederr pass flags even when other results are used. Nil
	// selects DefaultDroppedErrCalls.
	DroppedErrCalls []string
	// DecoratorPackages lists final import-path segments of the packages
	// the decoratorcomplete pass inspects. Nil selects
	// DefaultDecoratorPackages.
	DecoratorPackages []string
}

// DefaultDeterminismAllow exempts the experiment drivers and the command
// and example mains — the only places wall time and convenience randomness
// are part of the job (measuring real elapsed time, seeding demos).
var DefaultDeterminismAllow = []string{"internal/experiments", "cmd", "examples"}

// DefaultDroppedErrCalls are the operations whose errors the repository has
// been burned by dropping: transport RPCs (Call/Send and the kademlia
// overlay's deadline wrapper timedCall), transport lifecycle (a dropped
// Close error hides a leaked listener or an unflushed connection), the DHT
// substrate interface, the batch planes, the retry executor, and the
// durability plane (a dropped WAL Append, Sync, or journal Record error
// silently voids the crash-recovery guarantee; a dropped Restore error
// silently boots from an empty store).
var DefaultDroppedErrCalls = []string{
	"Call", "Send", "timedCall", "Close",
	"Put", "Get", "Remove", "Apply", "Owner",
	"PutBatch", "ApplyBatch", "GetBatch",
	"Do", "DoTraced",
	"Append", "Sync", "Restore", "Record",
}

// DefaultDecoratorPackages are the packages holding DHT decorators: the
// dht package itself, its test-double kit, and the byte-codec adapter.
var DefaultDecoratorPackages = []string{"dht", "dhttest", "wire"}

func (c *Config) determinismAllow() []string {
	if c == nil || c.DeterminismAllow == nil {
		return DefaultDeterminismAllow
	}
	return c.DeterminismAllow
}

func (c *Config) droppedErrCalls() []string {
	if c == nil || c.DroppedErrCalls == nil {
		return DefaultDroppedErrCalls
	}
	return c.DroppedErrCalls
}

func (c *Config) decoratorPackages() []string {
	if c == nil || c.DecoratorPackages == nil {
		return DefaultDecoratorPackages
	}
	return c.DecoratorPackages
}

// pathMatches reports whether the import path matches the fragment, per the
// Config.DeterminismAllow rules.
func pathMatches(path, frag string) bool {
	return path == frag ||
		strings.HasPrefix(path, frag+"/") ||
		strings.HasSuffix(path, "/"+frag) ||
		strings.Contains(path, "/"+frag+"/")
}

// Passes returns the full pass set in reporting order.
func Passes() []Pass {
	return []Pass{
		determinismPass{}, droppedErrPass{}, decoratorCompletePass{}, lockSafetyPass{},
		goroutineLeakPass{}, lockOrderPass{}, hotPathPass{},
	}
}

// AllowName is the pseudo-pass under which directive hygiene problems
// (missing reasons, suppressions that suppress nothing) are reported.
const AllowName = "allow"

var allowRE = regexp.MustCompile(`^//\s*lint:allow\s+([A-Za-z0-9_]+)(?:\s+(.*))?$`)

// directive is one parsed //lint:allow comment.
type directive struct {
	pos    token.Position
	text   string // raw comment text, including the leading //
	pass   string
	reason string
	used   bool
}

// Directive is one //lint:allow comment with its resolution after a Run:
// whether any selected pass produced a finding it suppressed. Pos.Offset
// and Text delimit the comment's exact bytes in its file, which is what
// the -fix mode of cmd/mlight-lint splices.
type Directive struct {
	Pos    token.Position
	Text   string
	Pass   string
	Reason string
	Used   bool
}

// collectDirectives parses every //lint:allow directive in pkg.
func collectDirectives(pkg *Package) []*directive {
	var ds []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				ds = append(ds, &directive{
					pos:    pkg.Fset.Position(c.Pos()),
					text:   c.Text,
					pass:   m[1],
					reason: strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return ds
}

// Run executes the given passes over pkg, applies //lint:allow suppression,
// and reports directive-hygiene problems. Diagnostics come back sorted by
// position.
func Run(pkg *Package, passes []Pass, cfg *Config) []Diagnostic {
	diags, _ := RunWithDirectives(pkg, passes, cfg)
	return diags
}

// RunWithDirectives is Run plus the package's directive inventory with its
// post-run resolution, for tools (the -fix mode) that edit directives.
// Only directives naming a selected pass (or the allow pseudo-pass) are
// returned — a directive for an unselected pass cannot be judged unused.
func RunWithDirectives(pkg *Package, passes []Pass, cfg *Config) ([]Diagnostic, []Directive) {
	ds := collectDirectives(pkg)
	selected := make(map[string]bool, len(passes))
	var out []Diagnostic
	for _, p := range passes {
		selected[p.Name()] = true
		for _, diag := range p.Run(pkg, cfg) {
			if d := matchDirective(ds, diag); d != nil {
				d.used = true
				continue
			}
			out = append(out, diag)
		}
	}
	for _, d := range ds {
		if !selected[d.pass] && d.pass != AllowName {
			continue
		}
		switch {
		case d.reason == "":
			out = append(out, diagAt(d.pos, AllowName,
				fmt.Sprintf("allow directive for %q is missing a reason", d.pass)))
		case !d.used:
			out = append(out, diagAt(d.pos, AllowName,
				fmt.Sprintf("allow directive for %q suppresses nothing", d.pass)))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Pass < b.Pass
	})
	var dirs []Directive
	for _, d := range ds {
		if !selected[d.pass] && d.pass != AllowName {
			continue
		}
		dirs = append(dirs, Directive{
			Pos:    d.pos,
			Text:   d.text,
			Pass:   d.pass,
			Reason: d.reason,
			Used:   d.used,
		})
	}
	return out, dirs
}

// matchDirective finds a directive covering diag: same pass, same file, on
// the diagnosed line or the line immediately above it. Directives without a
// reason never suppress, so a reason cannot be omitted accidentally.
func matchDirective(ds []*directive, diag Diagnostic) *directive {
	for _, d := range ds {
		if d.pass != diag.Pass || d.reason == "" || d.pos.Filename != diag.File {
			continue
		}
		if d.pos.Line == diag.Line || d.pos.Line == diag.Line-1 {
			return d
		}
	}
	return nil
}

func diagAt(pos token.Position, pass, msg string) Diagnostic {
	return Diagnostic{
		Pos:     pos,
		File:    pos.Filename,
		Line:    pos.Line,
		Col:     pos.Column,
		Pass:    pass,
		Message: msg,
	}
}

func (p *Package) diag(pos token.Pos, pass, format string, args ...any) Diagnostic {
	return diagAt(p.Fset.Position(pos), pass, fmt.Sprintf(format, args...))
}
