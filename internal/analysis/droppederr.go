package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// droppedErrPass flags silently dropped error results — the exact shape of
// the replica-loss bug the fault-tolerance PR had to dig out of the chord
// and pastry replication paths (`_, _ = net.Call(...)`).
//
// Two rules:
//
//  1. Fire-and-forget: an assignment whose right side is a single call
//     returning at least one error (or positional []error) and whose left
//     side is entirely blank. The call was issued only for its side
//     effects and its failure is invisible; route the error through a
//     counter (e.g. ReplicationErrors / MaintenanceErrors) or handle it.
//     This rule is name-agnostic: `_, _ = anything(...)` is flagged.
//
//  2. Watched callees: for operations the repository has been burned by —
//     net.Call, the DHT interface methods, the batch planes, Retrier.Do
//     (Config.DroppedErrCalls) — blanking just the error positions is
//     flagged even when the data results are kept, and calling them as a
//     bare statement (discarding every result) is flagged too.
//
// Documentation examples (func Example… in _test.go files) are exempt:
// they drop errors for godoc brevity by design, and an allow directive in
// an example would render into the documentation.
type droppedErrPass struct{}

func (droppedErrPass) Name() string { return "droppederr" }

func (droppedErrPass) Doc() string {
	return "flag blank-assigned or discarded error results from RPC/DHT/retry operations"
}

func (droppedErrPass) Run(pkg *Package, cfg *Config) []Diagnostic {
	watched := make(map[string]bool)
	for _, name := range cfg.droppedErrCalls() {
		watched[name] = true
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		isTestFile := strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go")
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && isTestFile &&
				strings.HasPrefix(fd.Name.Name, "Example") {
				return false
			}
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				if d, ok := checkAssign(pkg, stmt, watched); ok {
					out = append(out, d)
				}
			case *ast.ExprStmt:
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := calleeName(pkg, call)
				if !watched[name] {
					return true
				}
				if hasErrorResult(pkg, call) {
					out = append(out, pkg.diag(call.Pos(), "droppederr",
						"result of %s discarded, dropping its error; handle it, count it, or //lint:allow droppederr <reason>", name))
				}
			}
			return true
		})
	}
	return out
}

func checkAssign(pkg *Package, stmt *ast.AssignStmt, watched map[string]bool) (Diagnostic, bool) {
	if len(stmt.Rhs) != 1 {
		return Diagnostic{}, false
	}
	call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return Diagnostic{}, false
	}
	errPos := errorResultPositions(pkg, call)
	if len(errPos) == 0 {
		return Diagnostic{}, false
	}
	allBlank := true
	for _, lhs := range stmt.Lhs {
		if !isBlank(lhs) {
			allBlank = false
			break
		}
	}
	name := calleeName(pkg, call)
	if allBlank {
		return pkg.diag(stmt.Pos(), "droppederr",
			"fire-and-forget call to %s drops its error; handle it, count it, or //lint:allow droppederr <reason>", name), true
	}
	if !watched[name] {
		return Diagnostic{}, false
	}
	// Error positions blanked while data results are kept.
	for _, i := range errPos {
		if i < len(stmt.Lhs) && isBlank(stmt.Lhs[i]) {
			return pkg.diag(stmt.Lhs[i].Pos(), "droppederr",
				"error result of %s assigned to _; handle it, count it, or //lint:allow droppederr <reason>", name), true
		}
	}
	return Diagnostic{}, false
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// calleeName returns the bare name of the called function or method, or ""
// when the callee is not a simple identifier/selector.
func calleeName(pkg *Package, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

var errorType = types.Universe.Lookup("error").Type()

// resultTypes returns the call's result types, or nil for conversions and
// builtin calls.
func resultTypes(pkg *Package, call *ast.CallExpr) []types.Type {
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		out := make([]types.Type, t.Len())
		for i := 0; i < t.Len(); i++ {
			out[i] = t.At(i).Type()
		}
		return out
	default:
		if tv.IsValue() {
			return []types.Type{t}
		}
	}
	return nil
}

// errorResultPositions returns the indices of results that carry errors:
// plain error results and []error batch results.
func errorResultPositions(pkg *Package, call *ast.CallExpr) []int {
	var out []int
	for i, t := range resultTypes(pkg, call) {
		if isErrorCarrier(t) {
			out = append(out, i)
		}
	}
	return out
}

func hasErrorResult(pkg *Package, call *ast.CallExpr) bool {
	return len(errorResultPositions(pkg, call)) > 0
}

func isErrorCarrier(t types.Type) bool {
	if types.Identical(t, errorType) {
		return true
	}
	if s, ok := t.Underlying().(*types.Slice); ok {
		return types.Identical(s.Elem(), errorType)
	}
	return false
}
