package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestGolden drives every pass over the golden packages under testdata/src.
// Expected findings are written in the sources as analysistest-style
// comments — `// want "regex"` on the offending line, with several quoted
// regexes for lines carrying several findings, and `// want:prev "regex"`
// attributing to the line above (for diagnostics positioned on directive
// comments, which cannot host a second comment). Every diagnostic must be
// wanted and every want must be matched, so the corpus pins both the
// positives and the deliberate negatives (seeded rand, handled errors,
// pointer passing, allow suppression).
func TestGolden(t *testing.T) {
	stdlib, err := ListExports("../..", []string{"fmt", "hash/maphash", "math/rand", "sync", "time"})
	if err != nil {
		t.Fatalf("listing stdlib export data: %v", err)
	}
	dhtDir := filepath.Join("testdata", "src", "dht")
	cases := []struct {
		name  string
		path  string
		extra map[string]string
	}{
		{"determinism", "example.com/determinism", nil},
		{"allowlisted", "example.com/cmd/demo", nil},
		{"droppederr", "example.com/droppederr", nil},
		{"locksafety", "example.com/locksafety", nil},
		{"dht", "example.com/dht", nil},
		{"wire", "example.com/wire", map[string]string{"example.com/dht": dhtDir}},
		{"goroutineleak", "example.com/goroutineleak", nil},
		{"lockorder", "example.com/lockorder", nil},
		{"hotpath", "example.com/hotpath", nil},
		{"hotpathbroken", "example.com/hotpathbroken", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.name)
			if tc.name == "allowlisted" {
				dir = filepath.Join("testdata", "src", "allowlisted")
			}
			pkg, err := LoadDir(dir, tc.path, tc.extra, stdlib)
			if err != nil {
				t.Fatalf("loading %s: %v", dir, err)
			}
			if pkg == nil {
				t.Fatalf("no files in %s", dir)
			}
			diags := Run(pkg, Passes(), nil)
			wants, err := parseWants(dir)
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstWants(t, diags, wants)
		})
	}
}

// want is one expected diagnostic parsed from a golden source comment.
type want struct {
	file string // base name
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRE = regexp.MustCompile(`//\s*want(:prev)?((?:\s+(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `))+)`)
var wantArgRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// parseWants scans every .go file under dir for want comments.
func parseWants(dir string) ([]*want, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*want
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			wantLine := i + 1
			if m[1] == ":prev" {
				wantLine--
			}
			for _, q := range wantArgRE.FindAllString(m[2], -1) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want %s: %v", e.Name(), i+1, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, pat, err)
				}
				out = append(out, &want{file: e.Name(), line: wantLine, re: re, raw: pat})
			}
		}
	}
	return out, nil
}

// checkAgainstWants pairs each diagnostic with an unconsumed want on its
// line and reports both unexpected diagnostics and unmatched wants.
func checkAgainstWants(t *testing.T, diags []Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		text := fmt.Sprintf("[%s] %s", d.Pass, d.Message)
		base := filepath.Base(d.File)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != base || w.line != d.Line {
				continue
			}
			if w.re.MatchString(text) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s:%d: %s", base, d.Line, text)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("want %q at %s:%d matched no diagnostic", w.raw, w.file, w.line)
		}
	}
}

// TestPathMatches pins the DeterminismAllow fragment semantics the package
// doc promises: whole path, leading segment, trailing segment, interior
// segment — but never a bare substring.
func TestPathMatches(t *testing.T) {
	cases := []struct {
		path, frag string
		want       bool
	}{
		{"internal/experiments", "internal/experiments", true},
		{"mlight/internal/experiments", "internal/experiments", true},
		{"mlight/internal/experiments/sub", "internal/experiments", true},
		{"cmd/x", "cmd", true},
		{"mlight/cmd/mlight-bench", "cmd", true},
		{"example.com/cmd/demo", "cmd", true},
		{"mlight/internal/core", "cmd", false},
		{"mlight/cmdutil", "cmd", false},
		{"mycmd/x", "cmd", false},
	}
	for _, c := range cases {
		if got := pathMatches(c.path, c.frag); got != c.want {
			t.Errorf("pathMatches(%q, %q) = %v, want %v", c.path, c.frag, got, c.want)
		}
	}
}

// TestPassesAreRegistered pins the pass set: names are unique, documented,
// and include every invariant the lint tool promises.
func TestPassesAreRegistered(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Passes() {
		if p.Name() == "" || p.Doc() == "" {
			t.Errorf("pass %T has empty name or doc", p)
		}
		if seen[p.Name()] {
			t.Errorf("duplicate pass name %q", p.Name())
		}
		seen[p.Name()] = true
	}
	for _, name := range []string{
		"determinism", "droppederr", "decoratorcomplete", "locksafety",
		"goroutineleak", "lockorder", "hotpath",
	} {
		if !seen[name] {
			t.Errorf("pass %q missing from Passes()", name)
		}
	}
}
