// Package metrics provides the counters and statistical helpers used by the
// m-LIGHT evaluation: DHT-operation counts, record-movement counts, and
// per-peer load statistics (paper §7).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing, concurrency-safe counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// IndexStats aggregates the maintenance metrics the paper reports for an
// over-DHT index (Figs. 5a–5d): every logical DHT operation issued and every
// data record transferred across the DHT.
type IndexStats struct {
	// DHTLookups counts logical DHT operations (lookup/get/put/remove/
	// apply), the unit of Fig. 5a/5c and Fig. 7a.
	DHTLookups Counter
	// RecordsMoved counts data records shipped across the DHT: initial
	// placement of inserted records, bucket halves transferred at splits,
	// buckets transferred at merges, and replica fan-out (DST). The unit of
	// Fig. 5b/5d.
	RecordsMoved Counter
	// Splits and Merges count structural index adjustments.
	Splits Counter
	Merges Counter
}

// Snapshot is a point-in-time copy of IndexStats.
type Snapshot struct {
	DHTLookups   int64
	RecordsMoved int64
	Splits       int64
	Merges       int64
}

// Snapshot copies the current counter values.
func (s *IndexStats) Snapshot() Snapshot {
	return Snapshot{
		DHTLookups:   s.DHTLookups.Load(),
		RecordsMoved: s.RecordsMoved.Load(),
		Splits:       s.Splits.Load(),
		Merges:       s.Merges.Load(),
	}
}

// Reset zeroes all counters.
func (s *IndexStats) Reset() {
	s.DHTLookups.Reset()
	s.RecordsMoved.Reset()
	s.Splits.Reset()
	s.Merges.Reset()
}

// Sub returns the delta between two snapshots (s - older).
func (s Snapshot) Sub(older Snapshot) Snapshot {
	return Snapshot{
		DHTLookups:   s.DHTLookups - older.DHTLookups,
		RecordsMoved: s.RecordsMoved - older.RecordsMoved,
		Splits:       s.Splits - older.Splits,
		Merges:       s.Merges - older.Merges,
	}
}

// String renders the snapshot compactly.
func (s Snapshot) String() string {
	return fmt.Sprintf("lookups=%d moved=%d splits=%d merges=%d",
		s.DHTLookups, s.RecordsMoved, s.Splits, s.Merges)
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - mu
		sum += d * d
	}
	return sum / float64(len(xs))
}

// NormalizedVariance returns the variance of xs/mean(xs) — the squared
// coefficient of variation. This is the load-variance measure of Fig. 6a: it
// is scale-free, so runs with different data sizes are comparable.
func NormalizedVariance(xs []float64) float64 {
	mu := Mean(xs)
	if mu == 0 {
		return 0
	}
	return Variance(xs) / (mu * mu)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation. It returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Gini returns the Gini coefficient of the (non-negative) values — an
// auxiliary imbalance measure used in the extended load-balance experiments.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, total float64
	for i, x := range sorted {
		cum += x * float64(2*(i+1)-n-1)
		total += x
	}
	if total == 0 {
		return 0
	}
	return cum / (float64(n) * total)
}
