// Package metrics provides the counters and statistical helpers used by the
// m-LIGHT evaluation: DHT-operation counts, record-movement counts, and
// per-peer load statistics (paper §7).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing, concurrency-safe counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a concurrency-safe high-water mark: Observe records a sample and
// Load returns the largest sample seen since the last Reset. It meters
// quantities like "maximum probes in flight at once" that a monotonic
// counter cannot express.
type Gauge struct {
	v atomic.Int64
}

// Observe records n, keeping the gauge at the maximum observed value.
func (g *Gauge) Observe(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the high-water mark.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Reset zeroes the gauge.
func (g *Gauge) Reset() { g.v.Store(0) }

// IndexStats aggregates the maintenance metrics the paper reports for an
// over-DHT index (Figs. 5a–5d): every logical DHT operation issued and every
// data record transferred across the DHT.
type IndexStats struct {
	// DHTLookups counts logical DHT operations (lookup/get/put/remove/
	// apply), the unit of Fig. 5a/5c and Fig. 7a.
	DHTLookups Counter
	// RecordsMoved counts data records shipped across the DHT: initial
	// placement of inserted records, bucket halves transferred at splits,
	// buckets transferred at merges, and replica fan-out (DST). The unit of
	// Fig. 5b/5d.
	RecordsMoved Counter
	// Splits and Merges count structural index adjustments.
	Splits Counter
	Merges Counter

	// BatchRounds counts synchronous batch barriers: rounds in which a set
	// of independent DHT gets was issued concurrently. BatchProbes counts
	// the probes scheduled into those rounds; covering-leaf candidate
	// probes elided by the engine's early-exit can make the DHTLookups
	// actually charged smaller.
	BatchRounds Counter
	BatchProbes Counter
	// MaxInFlight is the high-water mark of concurrently outstanding probes
	// within a single batch round.
	MaxInFlight Gauge

	// MulticastSplits counts prefix-tree split operations performed by the
	// multicast range engine (one per forwarding step that fanned out);
	// MulticastPieces counts the pieces those splits produced.
	MulticastSplits Counter
	MulticastPieces Counter
	// MulticastDepth is the high-water mark of the multicast dissemination
	// tree's depth: the deepest prefix label a split targeted.
	MulticastDepth Gauge

	// CacheHits / CacheMisses / CacheStale meter the client-side leaf-label
	// lookup cache: a hit resolved a lookup with a single verification
	// probe; a miss found no cached candidate; a stale entry pointed at a
	// leaf that has since split or merged and was evicted.
	CacheHits   Counter
	CacheMisses Counter
	CacheStale  Counter
}

// ResilienceStats aggregates the counters of the fault-tolerance layer
// (dht.Resilient / dht.Retrier): how often operations were retried, how the
// retry budget was spent, and what the per-owner circuit breakers did. One
// instance is shared by every operation flowing through one retrier.
type ResilienceStats struct {
	// Ops counts logical operations entering the resilient layer.
	Ops Counter
	// Attempts counts substrate attempts issued (≥ Ops; the surplus is the
	// physical retry overhead the resilience experiment reports).
	Attempts Counter
	// Retries counts attempts beyond each operation's first.
	Retries Counter
	// Recovered counts operations that succeeded after at least one retry —
	// the failures the layer absorbed.
	Recovered Counter
	// Exhausted counts operations that failed every attempt in their budget.
	Exhausted Counter
	// Terminal counts operations abandoned on a non-retryable error.
	Terminal Counter
	// BreakerTrips counts closed→open breaker transitions; BreakerFastFails
	// counts operations shed while a breaker was open; BreakerResets counts
	// breakers closed again by a successful half-open trial.
	BreakerTrips     Counter
	BreakerFastFails Counter
	BreakerResets    Counter
}

// ResilienceSnapshot is a point-in-time copy of ResilienceStats.
type ResilienceSnapshot struct {
	Ops              int64 `json:"ops"`
	Attempts         int64 `json:"attempts"`
	Retries          int64 `json:"retries"`
	Recovered        int64 `json:"recovered"`
	Exhausted        int64 `json:"exhausted"`
	Terminal         int64 `json:"terminal"`
	BreakerTrips     int64 `json:"breaker_trips"`
	BreakerFastFails int64 `json:"breaker_fast_fails"`
	BreakerResets    int64 `json:"breaker_resets"`
}

// Snapshot copies the current counter values.
func (s *ResilienceStats) Snapshot() ResilienceSnapshot {
	return ResilienceSnapshot{
		Ops:              s.Ops.Load(),
		Attempts:         s.Attempts.Load(),
		Retries:          s.Retries.Load(),
		Recovered:        s.Recovered.Load(),
		Exhausted:        s.Exhausted.Load(),
		Terminal:         s.Terminal.Load(),
		BreakerTrips:     s.BreakerTrips.Load(),
		BreakerFastFails: s.BreakerFastFails.Load(),
		BreakerResets:    s.BreakerResets.Load(),
	}
}

// Reset zeroes all counters.
func (s *ResilienceStats) Reset() {
	s.Ops.Reset()
	s.Attempts.Reset()
	s.Retries.Reset()
	s.Recovered.Reset()
	s.Exhausted.Reset()
	s.Terminal.Reset()
	s.BreakerTrips.Reset()
	s.BreakerFastFails.Reset()
	s.BreakerResets.Reset()
}

// Sub returns the delta between two snapshots (s - older).
func (s ResilienceSnapshot) Sub(older ResilienceSnapshot) ResilienceSnapshot {
	return ResilienceSnapshot{
		Ops:              s.Ops - older.Ops,
		Attempts:         s.Attempts - older.Attempts,
		Retries:          s.Retries - older.Retries,
		Recovered:        s.Recovered - older.Recovered,
		Exhausted:        s.Exhausted - older.Exhausted,
		Terminal:         s.Terminal - older.Terminal,
		BreakerTrips:     s.BreakerTrips - older.BreakerTrips,
		BreakerFastFails: s.BreakerFastFails - older.BreakerFastFails,
		BreakerResets:    s.BreakerResets - older.BreakerResets,
	}
}

// Snapshot is a point-in-time copy of IndexStats.
type Snapshot struct {
	DHTLookups      int64
	RecordsMoved    int64
	Splits          int64
	Merges          int64
	BatchRounds     int64
	BatchProbes     int64
	MaxInFlight     int64
	MulticastSplits int64
	MulticastPieces int64
	MulticastDepth  int64
	CacheHits       int64
	CacheMisses     int64
	CacheStale      int64
}

// Snapshot copies the current counter values.
func (s *IndexStats) Snapshot() Snapshot {
	return Snapshot{
		DHTLookups:      s.DHTLookups.Load(),
		RecordsMoved:    s.RecordsMoved.Load(),
		Splits:          s.Splits.Load(),
		Merges:          s.Merges.Load(),
		BatchRounds:     s.BatchRounds.Load(),
		BatchProbes:     s.BatchProbes.Load(),
		MaxInFlight:     s.MaxInFlight.Load(),
		MulticastSplits: s.MulticastSplits.Load(),
		MulticastPieces: s.MulticastPieces.Load(),
		MulticastDepth:  s.MulticastDepth.Load(),
		CacheHits:       s.CacheHits.Load(),
		CacheMisses:     s.CacheMisses.Load(),
		CacheStale:      s.CacheStale.Load(),
	}
}

// Reset zeroes all counters.
func (s *IndexStats) Reset() {
	s.DHTLookups.Reset()
	s.RecordsMoved.Reset()
	s.Splits.Reset()
	s.Merges.Reset()
	s.BatchRounds.Reset()
	s.BatchProbes.Reset()
	s.MaxInFlight.Reset()
	s.MulticastSplits.Reset()
	s.MulticastPieces.Reset()
	s.MulticastDepth.Reset()
	s.CacheHits.Reset()
	s.CacheMisses.Reset()
	s.CacheStale.Reset()
}

// Sub returns the delta between two snapshots (s - older). MaxInFlight and
// MulticastDepth are high-water marks, not monotonic counters, so the newer
// snapshot's values are kept rather than subtracted.
func (s Snapshot) Sub(older Snapshot) Snapshot {
	return Snapshot{
		DHTLookups:      s.DHTLookups - older.DHTLookups,
		RecordsMoved:    s.RecordsMoved - older.RecordsMoved,
		Splits:          s.Splits - older.Splits,
		Merges:          s.Merges - older.Merges,
		BatchRounds:     s.BatchRounds - older.BatchRounds,
		BatchProbes:     s.BatchProbes - older.BatchProbes,
		MaxInFlight:     s.MaxInFlight,
		MulticastSplits: s.MulticastSplits - older.MulticastSplits,
		MulticastPieces: s.MulticastPieces - older.MulticastPieces,
		MulticastDepth:  s.MulticastDepth,
		CacheHits:       s.CacheHits - older.CacheHits,
		CacheMisses:     s.CacheMisses - older.CacheMisses,
		CacheStale:      s.CacheStale - older.CacheStale,
	}
}

// String renders the snapshot compactly.
func (s Snapshot) String() string {
	return fmt.Sprintf("lookups=%d moved=%d splits=%d merges=%d",
		s.DHTLookups, s.RecordsMoved, s.Splits, s.Merges)
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - mu
		sum += d * d
	}
	return sum / float64(len(xs))
}

// NormalizedVariance returns the variance of xs/mean(xs) — the squared
// coefficient of variation. This is the load-variance measure of Fig. 6a: it
// is scale-free, so runs with different data sizes are comparable.
func NormalizedVariance(xs []float64) float64 {
	mu := Mean(xs)
	if mu == 0 {
		return 0
	}
	return Variance(xs) / (mu * mu)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation. It returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Gini returns the Gini coefficient of the (non-negative) values — an
// auxiliary imbalance measure used in the extended load-balance experiments.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, total float64
	for i, x := range sorted {
		cum += x * float64(2*(i+1)-n-1)
		total += x
	}
	if total == 0 {
		return 0
	}
	return cum / (float64(n) * total)
}
