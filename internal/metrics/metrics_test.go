package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Errorf("Load = %d, want 42", got)
	}
	c.Reset()
	if got := c.Load(); got != 0 {
		t.Errorf("after Reset = %d", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 10000 {
		t.Errorf("Load = %d, want 10000", got)
	}
}

func TestSnapshotSub(t *testing.T) {
	var s IndexStats
	s.DHTLookups.Add(10)
	s.RecordsMoved.Add(5)
	before := s.Snapshot()
	s.DHTLookups.Add(7)
	s.Splits.Inc()
	delta := s.Snapshot().Sub(before)
	if delta.DHTLookups != 7 || delta.RecordsMoved != 0 || delta.Splits != 1 {
		t.Errorf("delta = %+v", delta)
	}
	if delta.String() == "" {
		t.Error("empty String")
	}
	s.Reset()
	if got := s.Snapshot(); got != (Snapshot{}) {
		t.Errorf("after Reset = %+v", got)
	}
}

func TestMeanVariance(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance(single) = %v", got)
	}
	if got := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", got)
	}
}

func TestNormalizedVarianceScaleFree(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	scaled := []float64{100, 200, 300, 400}
	a, b := NormalizedVariance(xs), NormalizedVariance(scaled)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("NormalizedVariance not scale-free: %v vs %v", a, b)
	}
	if got := NormalizedVariance([]float64{0, 0}); got != 0 {
		t.Errorf("NormalizedVariance of zeros = %v", got)
	}
	uniform := []float64{7, 7, 7, 7}
	if got := NormalizedVariance(uniform); got != 0 {
		t.Errorf("NormalizedVariance of uniform = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("median = %v, want 2.5", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) not NaN")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile sorted its input in place")
	}
}

func TestQuantileMonotonicQuick(t *testing.T) {
	f := func(raw []float64, qa, qb float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa = math.Abs(math.Mod(qa, 1))
		qb = math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGini(t *testing.T) {
	if got := Gini([]float64{5, 5, 5, 5}); math.Abs(got) > 1e-12 {
		t.Errorf("Gini(uniform) = %v, want 0", got)
	}
	// All load on one peer of n approaches 1 - 1/n.
	xs := make([]float64, 100)
	xs[0] = 1
	if got := Gini(xs); math.Abs(got-0.99) > 1e-9 {
		t.Errorf("Gini(concentrated) = %v, want 0.99", got)
	}
	if got := Gini(nil); got != 0 {
		t.Errorf("Gini(nil) = %v", got)
	}
	if got := Gini([]float64{0, 0}); got != 0 {
		t.Errorf("Gini(zeros) = %v", got)
	}
}

func TestGaugeHighWaterMark(t *testing.T) {
	var g Gauge
	g.Observe(3)
	g.Observe(1)
	if got := g.Load(); got != 3 {
		t.Errorf("Load = %d, want 3", got)
	}
	g.Observe(8)
	if got := g.Load(); got != 8 {
		t.Errorf("Load = %d, want 8", got)
	}
	g.Reset()
	if got := g.Load(); got != 0 {
		t.Errorf("after Reset = %d", got)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 1; i <= 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Observe(int64(i*1000 + j))
			}
		}(i)
	}
	wg.Wait()
	if got := g.Load(); got != 10999 {
		t.Errorf("Load = %d, want 10999 (the maximum observed)", got)
	}
}

func TestSnapshotSubKeepsHighWater(t *testing.T) {
	var s IndexStats
	s.MaxInFlight.Observe(5)
	before := s.Snapshot()
	s.BatchRounds.Inc()
	s.MaxInFlight.Observe(9)
	delta := s.Snapshot().Sub(before)
	if delta.BatchRounds != 1 {
		t.Errorf("BatchRounds delta = %d, want 1", delta.BatchRounds)
	}
	if delta.MaxInFlight != 9 {
		t.Errorf("MaxInFlight = %d, want the newer high-water 9, not a difference", delta.MaxInFlight)
	}
}
