package chord

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mlight/internal/dht"
	"mlight/internal/metrics"
	"mlight/internal/transport"
)

// clientAddr is the network source address used for client-side (iterative)
// lookups issued by the Ring itself.
const clientAddr transport.NodeID = "chord-client"

// ErrLookupFailed is returned when an iterative lookup cannot complete,
// e.g. because routing state is stale after heavy churn. It is marked
// retryable: stale routing heals after stabilization, so a retry layer may
// usefully try again.
var ErrLookupFailed = dht.Retryable(errors.New("chord: lookup failed"))

// Config tunes a Ring.
type Config struct {
	// MaxHops bounds one iterative lookup; 0 means a generous default.
	MaxHops int
	// Seed drives entry-point selection for lookups.
	Seed int64
	// Replication is the number of copies of each key (1 = primary only).
	// With r > 1 the ring tolerates up to r-1 simultaneous crashes after a
	// couple of stabilization rounds; see replication.go. At most
	// SuccessorListLen+1.
	Replication int
	// Retry governs the replication RPCs (replica pushes and drops), which
	// are issued ring-internally rather than through a dht.Resilient
	// wrapper. Nil selects a default of 3 attempts with no backoff sleep —
	// the simulated network fails synchronously, so waiting buys nothing;
	// real deployments should supply a policy with a real Sleep.
	Retry *dht.RetryPolicy
	// Seeds names remote entry points for lookups when the ring manages no
	// local node (a pure client dialing a daemon cluster) or is joining an
	// overlay hosted by other processes (a daemon booting with peers).
	// Over TCP a seed is a dialable address; its ring identifier is the
	// hash of that address, exactly as the node at the address computes it.
	Seeds []transport.NodeID
}

// Ring manages a set of Chord nodes on one transport and exposes
// the whole overlay as a dht.DHT. It is the management plane a deployer
// would run: join, graceful leave, crash, and stabilization rounds.
type Ring struct {
	net         transport.Interface
	maxHops     int
	replication int

	mu    sync.Mutex
	nodes map[transport.NodeID]*Node
	order []transport.NodeID // sorted addresses for deterministic iteration
	// crashed retains the node objects of crashed peers (their volatile
	// state already wiped by the transport's Crasher hook) so RestartNode
	// can revive them under the same identity.
	crashed        map[transport.NodeID]*Node
	seeds          []ref
	rng            *rand.Rand
	retrier        *dht.Retrier
	lastReplicaErr error
	lastMaintErr   error

	// Lookups counts completed iterative lookups; Hops counts every
	// lookup-step RPC issued, so Hops/Lookups is the mean route length.
	Lookups metrics.Counter
	Hops    metrics.Counter
	// ReplicationErrors counts replica pushes and drops that still failed
	// after the retry budget — replicas that will stay missing until the
	// next stabilization round repairs them.
	ReplicationErrors metrics.Counter
	// MaintenanceErrors counts failed maintenance RPCs — the stabilize
	// notify that keeps predecessor pointers fresh. A failed notify is not
	// fatal (the next round retries it), but a rising counter means churn
	// or loss is outpacing repair, the signal the old fire-and-forget
	// `_, _ = net.Call(...)` discarded.
	MaintenanceErrors metrics.Counter
}

var (
	_ dht.DHT        = (*Ring)(nil)
	_ dht.Enumerator = (*Ring)(nil)
)

// NewRing creates an empty ring on net.
func NewRing(net transport.Interface, cfg Config) *Ring {
	maxHops := cfg.MaxHops
	if maxHops <= 0 {
		maxHops = 512
	}
	replication := cfg.Replication
	if replication < 1 {
		replication = 1
	}
	if replication > SuccessorListLen+1 {
		replication = SuccessorListLen + 1
	}
	policy := dht.RetryPolicy{MaxAttempts: 3, Seed: cfg.Seed, Sleep: dht.NoSleep}
	if cfg.Retry != nil {
		policy = *cfg.Retry
	}
	seeds := make([]ref, 0, len(cfg.Seeds))
	for _, s := range cfg.Seeds {
		seeds = append(seeds, ref{Addr: s, ID: dht.HashString(string(s))})
	}
	return &Ring{
		net:         net,
		seeds:       seeds,
		maxHops:     maxHops,
		replication: replication,
		nodes:       make(map[transport.NodeID]*Node),
		crashed:     make(map[transport.NodeID]*Node),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		retrier:     dht.NewRetrier(policy, nil),
	}
}

// ReplicationRetrier exposes the retry executor guarding replication RPCs,
// so tests and experiments can inspect its counters and breaker states.
func (r *Ring) ReplicationRetrier() *dht.Retrier { return r.retrier }

// LastReplicationError returns the most recent replication push or drop
// that failed after exhausting its retry budget, or nil. It surfaces
// persistent replica loss that the periodic repair has not yet healed.
func (r *Ring) LastReplicationError() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastReplicaErr
}

// LastMaintenanceError returns the most recent failed maintenance RPC, or
// nil. Pair with MaintenanceErrors to see both rate and cause.
func (r *Ring) LastMaintenanceError() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastMaintErr
}

// noteMaintenanceError records one failed maintenance RPC.
func (r *Ring) noteMaintenanceError(err error) {
	r.MaintenanceErrors.Inc()
	r.mu.Lock()
	r.lastMaintErr = err
	r.mu.Unlock()
}

// AddNode creates a node at addr and joins it to the ring. The first node
// forms a singleton ring. Joining eagerly links predecessor/successor
// pointers and claims the keys the new node now owns, so the ring is
// immediately consistent; finger tables are refreshed lazily by Stabilize.
func (r *Ring) AddNode(addr transport.NodeID) (*Node, error) {
	r.mu.Lock()
	if _, dup := r.nodes[addr]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("chord: node %q already in ring", addr)
	}
	r.mu.Unlock()

	n, err := newNode(r.net, addr)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	// A ring with remote seeds is never "empty": its first local node joins
	// the overlay the seeds belong to instead of forming a singleton.
	empty := len(r.nodes) == 0 && len(r.seeds) == 0
	r.mu.Unlock()

	if empty {
		n.mu.Lock()
		n.succs = []ref{n.self()}
		n.pred = n.self()
		n.mu.Unlock()
	} else if err := r.join(n); err != nil {
		r.net.Deregister(addr)
		return nil, err
	}

	r.mu.Lock()
	r.nodes[addr] = n
	r.order = append(r.order, addr)
	sort.Slice(r.order, func(i, j int) bool { return r.order[i] < r.order[j] })
	r.mu.Unlock()

	r.fixFingers(n)
	return n, nil
}

// join wires a new node into an existing ring.
func (r *Ring) join(n *Node) error {
	succ, err := r.findSuccessor(n.id)
	if err != nil {
		return fmt.Errorf("chord: join %q: %w", n.addr, err)
	}
	oldPredAny, err := r.net.Call(clientAddr, succ.Addr, getPredReq{})
	if err != nil {
		return fmt.Errorf("chord: join %q: read predecessor: %w", n.addr, err)
	}
	oldPred, _ := oldPredAny.(ref)

	succsAny, err := r.net.Call(clientAddr, succ.Addr, getSuccsReq{})
	if err != nil {
		return fmt.Errorf("chord: join %q: read successors: %w", n.addr, err)
	}
	succList, _ := succsAny.([]ref)

	n.mu.Lock()
	n.pred = oldPred
	n.succs = truncateSuccs(append([]ref{succ}, succList...))
	n.mu.Unlock()

	// Take over the keys in (oldPred, n].
	claimAny, err := r.net.Call(clientAddr, succ.Addr, claimReq{Joiner: n.self()})
	if err != nil {
		return fmt.Errorf("chord: join %q: claim keys: %w", n.addr, err)
	}
	if claim, ok := claimAny.(claimResp); ok && len(claim.Entries) > 0 {
		n.mu.Lock()
		err := n.absorbLocked(claim.Entries, true)
		n.mu.Unlock()
		if err != nil {
			return fmt.Errorf("chord: join %q: absorb claimed keys: %w", n.addr, err)
		}
	}

	// Eagerly link neighbours so lookups are correct before the next
	// stabilization round.
	if _, err := r.net.Call(clientAddr, succ.Addr, setPredReq{Pred: n.self()}); err != nil {
		return fmt.Errorf("chord: join %q: link successor: %w", n.addr, err)
	}
	if !oldPred.isZero() && oldPred.Addr != succ.Addr {
		if _, err := r.net.Call(clientAddr, oldPred.Addr, setSuccReq{Succ: n.self()}); err != nil {
			return fmt.Errorf("chord: join %q: link predecessor: %w", n.addr, err)
		}
	} else if oldPred.Addr == succ.Addr {
		// Two-node ring: the successor is also the predecessor.
		if _, err := r.net.Call(clientAddr, succ.Addr, setSuccReq{Succ: n.self()}); err != nil {
			return fmt.Errorf("chord: join %q: link two-node ring: %w", n.addr, err)
		}
	}
	return nil
}

// RemoveNode gracefully departs a node: its keys move to its successor and
// its neighbours are re-linked.
func (r *Ring) RemoveNode(addr transport.NodeID) error {
	r.mu.Lock()
	n, ok := r.nodes[addr]
	if ok {
		delete(r.nodes, addr)
		r.order = removeAddr(r.order, addr)
	}
	last := len(r.nodes) == 0
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("chord: node %q not in ring", addr)
	}
	defer r.net.Deregister(addr)

	n.mu.Lock()
	var succ, pred ref
	if len(n.succs) > 0 {
		succ = n.succs[0]
	}
	pred = n.pred
	entries := make(map[dht.Key]any, len(n.store))
	for k, v := range n.store {
		entries[k] = v
	}
	n.store = make(map[dht.Key]any)
	n.mu.Unlock()

	if succ.isZero() || succ.Addr == addr {
		// No successor to leave to. A true singleton — the process's last
		// local node with no remote successor — departs silently; a daemon's
		// only node usually has remote successors and falls through to the
		// handoff below instead.
		if last {
			return nil
		}
		return fmt.Errorf("chord: node %q has no successor to leave to", addr)
	}
	if len(entries) > 0 {
		if _, err := r.net.Call(addr, succ.Addr, handoffReq{Entries: entries}); err != nil {
			return fmt.Errorf("chord: leave %q: handoff: %w", addr, err)
		}
	}
	if !pred.isZero() && pred.Addr != addr {
		if _, err := r.net.Call(addr, pred.Addr, setSuccReq{Succ: succ}); err != nil {
			return fmt.Errorf("chord: leave %q: relink predecessor: %w", addr, err)
		}
		if _, err := r.net.Call(addr, succ.Addr, setPredReq{Pred: pred}); err != nil {
			return fmt.Errorf("chord: leave %q: relink successor: %w", addr, err)
		}
	}
	return nil
}

// CrashNode fails a node abruptly: it stops answering and its volatile
// state — stored keys, replicas, routing tables — is destroyed
// (transport Crash → Node.OnCrash), not merely hidden behind a partition.
// Stabilization repairs the ring around it; RestartNode can later revive
// the same identity with empty buckets.
func (r *Ring) CrashNode(addr transport.NodeID) error {
	r.mu.Lock()
	n, ok := r.nodes[addr]
	if ok {
		delete(r.nodes, addr)
		r.order = removeAddr(r.order, addr)
		r.crashed[addr] = n
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("chord: node %q not in ring", addr)
	}
	return r.net.Crash(addr)
}

// RestartNode revives a crashed node under its old identity: the network
// registration comes back up, the node rejoins the ring (re-fetching the
// keys it owns from its successor via the claim protocol), and the
// replication retrier forgets the peer's past failures so its circuit
// breaker does not shed traffic to a now-healthy node.
func (r *Ring) RestartNode(addr transport.NodeID) (*Node, error) {
	r.mu.Lock()
	n, ok := r.crashed[addr]
	if ok {
		delete(r.crashed, addr)
	}
	empty := len(r.nodes) == 0 && len(r.seeds) == 0
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("chord: node %q is not crashed", addr)
	}
	if err := r.net.Restart(addr); err != nil {
		r.mu.Lock()
		r.crashed[addr] = n
		r.mu.Unlock()
		return nil, err
	}
	if empty {
		n.mu.Lock()
		n.succs = []ref{n.self()}
		n.pred = n.self()
		n.mu.Unlock()
	} else if err := r.join(n); err != nil {
		// Rejoin failed (e.g. every entry point unreachable): put the node
		// back down so a later restart attempt starts from a clean slate.
		r.net.SetDown(addr, true)
		r.mu.Lock()
		r.crashed[addr] = n
		r.mu.Unlock()
		return nil, err
	}
	r.mu.Lock()
	r.nodes[addr] = n
	r.order = append(r.order, addr)
	sort.Slice(r.order, func(i, j int) bool { return r.order[i] < r.order[j] })
	r.mu.Unlock()
	r.fixFingers(n)
	r.retrier.ResetOwner(string(addr))
	return n, nil
}

// CrashedNodes returns the addresses of crashed, restartable nodes in
// sorted order — the churn scheduler's restart candidates.
func (r *Ring) CrashedNodes() []transport.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]transport.NodeID, 0, len(r.crashed))
	for addr := range r.crashed {
		out = append(out, addr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func removeAddr(order []transport.NodeID, addr transport.NodeID) []transport.NodeID {
	out := order[:0]
	for _, a := range order {
		if a != addr {
			out = append(out, a)
		}
	}
	return out
}

func truncateSuccs(s []ref) []ref {
	if len(s) > SuccessorListLen {
		s = s[:SuccessorListLen]
	}
	return s
}

// Nodes returns the managed (live) node addresses in sorted order.
func (r *Ring) Nodes() []transport.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]transport.NodeID(nil), r.order...)
}

// NumNodes returns the number of live managed nodes.
func (r *Ring) NumNodes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.nodes)
}

// NodeAt returns the managed node at addr, for application layers that
// need local-store access on a specific peer.
func (r *Ring) NodeAt(addr transport.NodeID) (*Node, bool) {
	return r.node(addr)
}

// node returns the managed node at addr.
func (r *Ring) node(addr transport.NodeID) (*Node, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[addr]
	return n, ok
}

// pickEntry selects a live node as the lookup entry point.
func (r *Ring) pickEntry() (*Node, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.order) == 0 {
		return nil, dht.ErrNoPeers
	}
	addr := r.order[r.rng.Intn(len(r.order))]
	return r.nodes[addr], nil
}

// pickEntryRef selects a lookup entry point: a live managed node when the
// ring hosts any, otherwise a configured seed — the client/daemon mode
// where the overlay lives in other processes.
func (r *Ring) pickEntryRef() (ref, error) {
	if n, err := r.pickEntry(); err == nil {
		return n.self(), nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.seeds) == 0 {
		return ref{}, dht.ErrNoPeers
	}
	return r.seeds[r.rng.Intn(len(r.seeds))], nil
}

// findSuccessor resolves the node responsible for target with an iterative
// lookup, retrying from fresh entry points when stale routing state points
// at departed peers.
func (r *Ring) findSuccessor(target dht.ID) (ref, error) {
	const retries = 3
	var lastErr error
	for attempt := 0; attempt < retries; attempt++ {
		entry, err := r.pickEntryRef()
		if err != nil {
			return ref{}, err
		}
		found, err := r.trace(entry, target)
		if err == nil {
			r.Lookups.Inc()
			return found, nil
		}
		lastErr = err
	}
	return ref{}, fmt.Errorf("%w: %v", ErrLookupFailed, lastErr)
}

// trace performs one iterative route from cur towards target.
func (r *Ring) trace(cur ref, target dht.ID) (ref, error) {
	prev := ref{}
	for hop := 0; hop < r.maxHops; hop++ {
		respAny, err := r.net.Call(clientAddr, cur.Addr, lookupStepReq{Target: target})
		r.Hops.Inc()
		if err != nil {
			return ref{}, fmt.Errorf("chord: step via %q: %w", cur.Addr, err)
		}
		resp, ok := respAny.(lookupStepResp)
		if !ok {
			return ref{}, fmt.Errorf("chord: step via %q: bad response %T", cur.Addr, respAny)
		}
		if resp.Done {
			// Verify the answer is alive; a dead successor means stale
			// state that a retry (after stabilization) can fix.
			if _, err := r.net.Call(clientAddr, resp.Next.Addr, pingReq{}); err != nil {
				return ref{}, fmt.Errorf("chord: successor %q dead: %w", resp.Next.Addr, err)
			}
			return resp.Next, nil
		}
		if resp.Next.Addr == cur.Addr || resp.Next.Addr == prev.Addr {
			// No progress; the ring is inconsistent here.
			return ref{}, fmt.Errorf("chord: lookup stalled at %q", cur.Addr)
		}
		prev, cur = cur, resp.Next
	}
	return ref{}, fmt.Errorf("chord: exceeded %d hops", r.maxHops)
}

// Stabilize runs the given number of stabilization rounds over all nodes:
// each round performs Chord's stabilize+notify on every node and refreshes
// every finger table. Two rounds after a churn event are enough to restore
// routing in the simulations used here.
func (r *Ring) Stabilize(rounds int) {
	for i := 0; i < rounds; i++ {
		for _, addr := range r.Nodes() {
			n, ok := r.node(addr)
			if !ok {
				continue
			}
			r.stabilizeNode(n)
		}
		for _, addr := range r.Nodes() {
			if n, ok := r.node(addr); ok {
				r.fixFingers(n)
			}
		}
		// Replica leases expire only after every node has re-pushed its
		// primaries this round, so current targets are always refreshed
		// before their lease is checked. Expired copies are offered to the
		// key's current owner rather than destroyed — see
		// relocateStaleReplicas.
		if r.replication > 1 {
			for _, addr := range r.Nodes() {
				if n, ok := r.node(addr); ok {
					r.relocateStaleReplicas(n)
				}
			}
		}
	}
}

// stabilizeNode is Chord's periodic stabilize on one node.
func (r *Ring) stabilizeNode(n *Node) {
	n.mu.Lock()
	succs := append([]ref(nil), n.succs...)
	n.mu.Unlock()

	// Find the first live successor.
	var succ ref
	for _, s := range succs {
		if s.Addr == n.addr {
			succ = s
			break
		}
		if _, err := r.net.Call(n.addr, s.Addr, pingReq{}); err == nil {
			succ = s
			break
		}
	}
	if succ.isZero() {
		// All successors dead; fall back to any live managed node.
		entry, err := r.pickEntry()
		if err != nil || entry.addr == n.addr {
			succ = n.self()
		} else {
			succ = entry.self()
		}
	}

	if succ.Addr != n.addr {
		if predAny, err := r.net.Call(n.addr, succ.Addr, getPredReq{}); err == nil {
			if x, ok := predAny.(ref); ok && !x.isZero() && x.Addr != n.addr &&
				x.ID.BetweenOpen(n.id, succ.ID) {
				if _, err := r.net.Call(n.addr, x.Addr, pingReq{}); err == nil {
					succ = x
				}
			}
		}
	}

	// Adopt the successor and rebuild the successor list through it,
	// verifying liveness so dead entries do not propagate between lists.
	newSuccs := []ref{succ}
	if succ.Addr != n.addr {
		if listAny, err := r.net.Call(n.addr, succ.Addr, getSuccsReq{}); err == nil {
			if list, ok := listAny.([]ref); ok {
				for _, s := range list {
					if s.Addr == n.addr || s.isZero() {
						continue
					}
					if _, err := r.net.Call(n.addr, s.Addr, pingReq{}); err != nil {
						continue
					}
					newSuccs = append(newSuccs, s)
				}
			}
		}
	}
	n.mu.Lock()
	n.succs = truncateSuccs(newSuccs)
	// Clear a dead predecessor so notify can replace it.
	pred := n.pred
	n.mu.Unlock()
	if !pred.isZero() && pred.Addr != n.addr {
		if _, err := r.net.Call(n.addr, pred.Addr, pingReq{}); err != nil {
			n.mu.Lock()
			n.pred = ref{}
			n.mu.Unlock()
		}
	}
	if succ.Addr != n.addr {
		if _, err := r.net.Call(n.addr, succ.Addr, notifyReq{Candidate: n.self()}); err != nil {
			r.noteMaintenanceError(fmt.Errorf("chord: notify %q from %q: %w", succ.Addr, n.addr, err))
		}
	}
	// Replication repair: promote replica entries this node now owns, then
	// refresh this node's copies on its current successors.
	n.mu.Lock()
	perr := n.promoteOwnedReplicasLocked()
	n.mu.Unlock()
	if perr != nil {
		r.noteMaintenanceError(perr)
	}
	r.reReplicate(n)
}

// fixFingers rebuilds every finger of n by resolving n.id + 2^i. A finger
// whose rebuild fails (routes through a dead peer) is cleared rather than
// kept stale, so lookups degrade to correct successor-walking until the
// next round repairs it.
func (r *Ring) fixFingers(n *Node) {
	for i := 0; i < dht.IDBits; i++ {
		target := n.id.AddPowerOfTwo(i)
		found, err := r.trace(n.self(), target)
		n.mu.Lock()
		if err != nil {
			n.fingers[i] = ref{}
		} else {
			n.fingers[i] = found
		}
		n.mu.Unlock()
	}
}

// Put implements dht.DHT.
func (r *Ring) Put(key dht.Key, value any) error {
	owner, err := r.findSuccessor(dht.HashKey(key))
	if err != nil {
		return err
	}
	if _, err := r.net.Call(clientAddr, owner.Addr, storeReq{Key: key, Value: value}); err != nil {
		return err
	}
	r.replicate(owner, key, value)
	return nil
}

// Get implements dht.DHT.
func (r *Ring) Get(key dht.Key) (any, bool, error) {
	owner, err := r.findSuccessor(dht.HashKey(key))
	if err != nil {
		return nil, false, err
	}
	respAny, err := r.net.Call(clientAddr, owner.Addr, retrieveReq{Key: key})
	if err != nil {
		return nil, false, err
	}
	resp, ok := respAny.(retrieveResp)
	if !ok {
		return nil, false, fmt.Errorf("chord: bad retrieve response %T", respAny)
	}
	return resp.Value, resp.Found, nil
}

// Remove implements dht.DHT.
func (r *Ring) Remove(key dht.Key) error {
	owner, err := r.findSuccessor(dht.HashKey(key))
	if err != nil {
		return err
	}
	if _, err := r.net.Call(clientAddr, owner.Addr, removeReq{Key: key}); err != nil {
		return err
	}
	r.dropReplicas(owner, key)
	return nil
}

// Apply implements dht.DHT: the transform executes on the owning peer, as
// an installed application handler would. The post-apply value is pushed to
// the replicas.
func (r *Ring) Apply(key dht.Key, fn dht.ApplyFunc) error {
	owner, err := r.findSuccessor(dht.HashKey(key))
	if err != nil {
		return err
	}
	if !transport.SupportsInline(r.net) {
		// The transform cannot cross a real socket: run it client-side
		// under the wire-safe versioned CAS protocol instead.
		value, keep, err := dht.RemoteApply(func(req any) (any, error) {
			return r.net.Call(clientAddr, owner.Addr, req)
		}, key, fn)
		if err != nil {
			return err
		}
		if r.replication > 1 {
			if keep {
				r.replicate(owner, key, value)
			} else {
				r.dropReplicas(owner, key)
			}
		}
		return nil
	}
	respAny, err := r.net.Call(clientAddr, owner.Addr, applyReq{Key: key, Fn: fn})
	if err != nil {
		return err
	}
	if resp, ok := respAny.(applyResp); ok && r.replication > 1 {
		if resp.Keep {
			r.replicate(owner, key, resp.Value)
		} else {
			r.dropReplicas(owner, key)
		}
	}
	return nil
}

// Owner implements dht.DHT.
func (r *Ring) Owner(key dht.Key) (string, error) {
	owner, err := r.findSuccessor(dht.HashKey(key))
	if err != nil {
		return "", err
	}
	return string(owner.Addr), nil
}

// Range implements dht.Enumerator by walking every managed node's store.
func (r *Ring) Range(fn func(key dht.Key, value any) bool) error {
	for _, addr := range r.Nodes() {
		n, ok := r.node(addr)
		if !ok {
			continue
		}
		for k, v := range n.storeSnapshot() {
			if !fn(k, v) {
				return nil
			}
		}
	}
	return nil
}

// InstallAppHandler installs an application handler on every managed node
// (and on nodes added later callers must install again). The factory
// receives each node so handlers can read local state.
func (r *Ring) InstallAppHandler(factory func(n *Node) transport.Handler) {
	for _, addr := range r.Nodes() {
		if n, ok := r.node(addr); ok {
			n.SetAppHandler(factory(n))
		}
	}
}

// LookupFrom resolves the owner of key with an iterative lookup starting at
// the given node, returning the owner's address and the number of
// lookup-step RPCs spent — the building block for peer-side forwarding.
func (r *Ring) LookupFrom(addr transport.NodeID, key dht.Key) (transport.NodeID, int, error) {
	n, ok := r.node(addr)
	if !ok {
		return "", 0, fmt.Errorf("chord: node %q not in ring", addr)
	}
	before := r.Hops.Load()
	found, err := r.trace(n.self(), dht.HashKey(key))
	hops := int(r.Hops.Load() - before)
	if err != nil {
		return "", hops, err
	}
	return found.Addr, hops, nil
}

// MeanRouteLength returns the average hops per completed lookup so far.
func (r *Ring) MeanRouteLength() float64 {
	lookups := r.Lookups.Load()
	if lookups == 0 {
		return 0
	}
	return float64(r.Hops.Load()) / float64(lookups)
}

// AutoStabilizer runs Stabilize on a fixed cadence in a managed background
// goroutine. It exists for long-lived demos; simulations and tests should
// call Stabilize explicitly for determinism.
type AutoStabilizer struct {
	stop chan struct{}
	done chan struct{}
}

// StartAutoStabilize launches the background stabilizer. Call Shutdown to
// stop it and wait for exit.
func (r *Ring) StartAutoStabilize(interval time.Duration) *AutoStabilizer {
	a := &AutoStabilizer{
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(a.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				r.Stabilize(1)
			case <-a.stop:
				return
			}
		}
	}()
	return a
}

// Shutdown stops the stabilizer and waits for its goroutine to exit.
func (a *AutoStabilizer) Shutdown() {
	close(a.stop)
	<-a.done
}
