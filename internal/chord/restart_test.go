package chord

import (
	"fmt"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/simnet"
)

// TestCrashWipesNodeState asserts crash semantics are destructive: the
// crashed node's store and routing state are gone, not merely unreachable.
func TestCrashWipesNodeState(t *testing.T) {
	_, ring := buildRing(t, 8)
	for i := 0; i < 100; i++ {
		if err := ring.Put(dht.Key(fmt.Sprintf("k%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	var victim *Node
	for _, addr := range ring.Nodes() {
		n, _ := ring.node(addr)
		if n.StoreLen() > 0 {
			victim = n
			break
		}
	}
	if victim == nil {
		t.Fatal("no node holds data")
	}
	if err := ring.CrashNode(victim.Addr()); err != nil {
		t.Fatal(err)
	}
	if victim.StoreLen() != 0 {
		t.Errorf("crashed node still stores %d entries; crash must wipe volatile state", victim.StoreLen())
	}
	if _, ok := victim.Successor(); ok {
		t.Error("crashed node kept its successor pointer")
	}
}

// TestRestartRejoinsAndReconverges is the full crash → recover → restart
// cycle on a replicated ring: no key may be lost while the node is down,
// and after restart the ring must reconverge with the restarted node
// holding its share of the keyspace again.
func TestRestartRejoinsAndReconverges(t *testing.T) {
	net := simnet.New(simnet.Options{})
	ring := NewRing(net, Config{Seed: 1, Replication: 2})
	for i := 0; i < 10; i++ {
		if _, err := ring.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ring.Stabilize(2)

	want := map[dht.Key]int{}
	for i := 0; i < 200; i++ {
		k := dht.Key(fmt.Sprintf("rk%d", i))
		want[k] = i
		if err := ring.Put(k, i); err != nil {
			t.Fatal(err)
		}
	}
	ring.Stabilize(2) // settle replica placement

	if err := ring.CrashNode("node-4"); err != nil {
		t.Fatal(err)
	}
	if got := ring.CrashedNodes(); len(got) != 1 || got[0] != "node-4" {
		t.Fatalf("CrashedNodes = %v, want [node-4]", got)
	}
	ring.Stabilize(3) // failover: promote replicas, re-replicate

	for k, v := range want {
		got, ok, err := ring.Get(k)
		if err != nil || !ok || got != v {
			t.Fatalf("while down Get(%q) = %v, %v, %v; want %d", k, got, ok, err, v)
		}
	}

	n, err := ring.RestartNode("node-4")
	if err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	if len(ring.CrashedNodes()) != 0 {
		t.Errorf("CrashedNodes after restart = %v, want empty", ring.CrashedNodes())
	}
	found := false
	for _, addr := range ring.Nodes() {
		if addr == "node-4" {
			found = true
		}
	}
	if !found {
		t.Fatal("restarted node missing from Nodes()")
	}
	ring.Stabilize(3)

	// Full scan equals ground truth after the churn cycle.
	got := map[dht.Key]int{}
	if err := ring.Range(func(k dht.Key, v any) bool {
		got[k], _ = v.(int)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Range saw %d entries after restart, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Range[%q] = %d, want %d", k, got[k], v)
		}
	}
	// The restarted node claimed its keyspace share back.
	if n.StoreLen() == 0 {
		t.Error("restarted node owns no keys; claim-on-rejoin did not run")
	}
	// Per-key routed reads still work.
	for k, v := range want {
		gotV, ok, err := ring.Get(k)
		if err != nil || !ok || gotV != v {
			t.Fatalf("after restart Get(%q) = %v, %v, %v; want %d", k, gotV, ok, err, v)
		}
	}
}

func TestRestartErrors(t *testing.T) {
	_, ring := buildRing(t, 4)
	if _, err := ring.RestartNode("node-1"); err == nil {
		t.Error("RestartNode of a live node succeeded")
	}
	if _, err := ring.RestartNode("nope"); err == nil {
		t.Error("RestartNode of an unknown node succeeded")
	}
	if err := ring.CrashNode("node-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ring.RestartNode("node-1"); err != nil {
		t.Fatalf("first RestartNode: %v", err)
	}
	if _, err := ring.RestartNode("node-1"); err == nil {
		t.Error("second RestartNode succeeded")
	}
}

// TestRestartLastNode crashes every node, then restarts one: it must come
// back as a fresh singleton ring that accepts writes.
func TestRestartLastNode(t *testing.T) {
	_, ring := buildRing(t, 3)
	for _, addr := range []simnet.NodeID{"node-0", "node-1", "node-2"} {
		if err := ring.CrashNode(addr); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ring.RestartNode("node-0"); err != nil {
		t.Fatalf("RestartNode into empty ring: %v", err)
	}
	if err := ring.Put("k", 1); err != nil {
		t.Fatalf("Put on restarted singleton: %v", err)
	}
	v, ok, err := ring.Get("k")
	if err != nil || !ok || v != 1 {
		t.Fatalf("Get = %v, %v, %v", v, ok, err)
	}
}

// TestRestartResetsBreaker: the circuit breaker guarding replication RPCs
// to a peer accumulates failure evidence while that peer is down; a
// restart invalidates the evidence, so RestartNode must reset the owner's
// breaker instead of leaving the healthy peer fenced off for the rest of
// the cooldown.
func TestRestartResetsBreaker(t *testing.T) {
	net := simnet.New(simnet.Options{})
	ring := NewRing(net, Config{Seed: 1, Replication: 2, Retry: &dht.RetryPolicy{
		MaxAttempts:      1,
		BreakerThreshold: 1,
		BreakerCooldown:  1000,
		Sleep:            dht.NoSleep,
	}})
	for i := 0; i < 6; i++ {
		if _, err := ring.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ring.Stabilize(2)

	if err := ring.CrashNode("node-2"); err != nil {
		t.Fatal(err)
	}
	// A replication push to the dead peer trips its breaker.
	ring.replicaCall("node-0", "node-2", pingReq{})
	if st := ring.ReplicationRetrier().BreakerState("node-2"); st != "open" {
		t.Fatalf("breaker after crash pushes = %q, want open", st)
	}

	if _, err := ring.RestartNode("node-2"); err != nil {
		t.Fatal(err)
	}
	if st := ring.ReplicationRetrier().BreakerState("node-2"); st != "closed" {
		t.Errorf("breaker after restart = %q, want closed", st)
	}
}
