package chord

import (
	"sort"

	"mlight/internal/dht"
	"mlight/internal/transport"
)

// Replication support (an extension beyond the m-LIGHT paper, mirroring
// DHash/OpenDHT): with Config.Replication = r > 1, every key is stored at
// its primary owner and copied to the next r-1 successors. Replicas live in
// a separate replica store so ownership transfers (joins, claims) never
// confuse the two. Repair is periodic, in Bamboo style:
//
//   - each Stabilize round, every node pushes its primary entries to its
//     current r-1 successors, refreshing stale replica sets;
//   - each node promotes replica entries whose hash it now owns (its
//     predecessor changed after a crash) into its primary store.
//
// After up to r-1 simultaneous crashes and a couple of stabilization
// rounds, every surviving key is primary-owned at the correct node again,
// so index lookups keep working with no application involvement.

// replicateReq pushes replica copies to a successor.
type replicateReq struct{ Entries map[dht.Key]any }

// dropReplicaReq removes a replica after a key is deleted.
type dropReplicaReq struct{ Key dht.Key }

// offerReq hands a possibly-orphaned entry to the key's current owner.
// Unlike handoffReq (a graceful-leave transfer, which is authoritative and
// overwrites), an offer is speculative: the receiver keeps its own value if
// it already has one and only adopts the entry when the key is absent.
type offerReq struct{ Entries map[dht.Key]any }

// handleReplicate stores pushed replica copies and stamps their lease: a
// push is the owner saying "you are still in this key's line of
// succession".
func (n *Node) handleReplicate(entries map[dht.Key]any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.replicas == nil {
		n.replicas = make(map[dht.Key]any, len(entries))
	}
	if n.replicaSeen == nil {
		n.replicaSeen = make(map[dht.Key]uint64, len(entries))
	}
	for k, v := range entries {
		n.replicas[k] = v
		n.replicaSeen[k] = n.repRound
	}
}

// replicaGraceRounds is how many repair rounds an unrefreshed replica
// survives before relocateStaleReplicas takes it as stale. One round of
// grace absorbs a transiently failed re-push (the retry budget already
// exhausted); two consecutive missed refreshes mean the owner no longer
// counts this node among the key's targets — ownership moved (a join, or
// a crashed node restarting and reclaiming its keyspace) — so keeping the
// copy would serve stale reads and resurrect deleted keys on promotion.
const replicaGraceRounds = 2

// takeExpiredReplicas removes and returns the replica entries whose lease
// ran out, and closes the repair round. Runs once per stabilization round,
// after every node has re-pushed its primaries, so a current target is
// always refreshed before its lease is checked.
func (n *Node) takeExpiredReplicas() map[dht.Key]any {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out map[dht.Key]any
	for k, v := range n.replicas {
		if n.repRound-n.replicaSeen[k] >= replicaGraceRounds {
			if out == nil {
				out = make(map[dht.Key]any)
			}
			out[k] = v
			delete(n.replicas, k)
			delete(n.replicaSeen, k)
		}
	}
	n.repRound++
	return out
}

// restoreReplica shelves an expired replica back with a fresh lease after a
// failed relocation, so the copy survives until routing can resolve its
// owner.
func (n *Node) restoreReplica(k dht.Key, v any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.replicas == nil {
		n.replicas = make(map[dht.Key]any)
	}
	if n.replicaSeen == nil {
		n.replicaSeen = make(map[dht.Key]uint64)
	}
	n.replicas[k] = v
	n.replicaSeen[k] = n.repRound
}

// relocateStaleReplicas resolves each lease-expired replica to the key's
// current owner and moves the copy there instead of destroying it. A stale
// lease usually means ownership moved and the owner already holds the key —
// then the offer is a no-op and the stale copy just disappears. But after
// an owner's crash the successor of the key's hash may be a node that never
// held a copy (a joiner that slotted in between the dead primary and its
// replica chain inherits the range with no data); destroying the expired
// replica there would lose the record's last copies, so the holder offers
// the entry to the resolved owner, which adopts it only if the key is
// absent. Under the crash fault model this cannot resurrect deletes (an
// unreachable replica holder has, by definition, lost its copies); healing
// partitions as well would need per-record versions.
func (r *Ring) relocateStaleReplicas(n *Node) {
	stale := n.takeExpiredReplicas()
	if len(stale) == 0 {
		return
	}
	keys := make([]dht.Key, 0, len(stale))
	for k := range stale {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		v := stale[k]
		owner, err := r.trace(n.self(), dht.HashKey(k))
		if err != nil || owner.isZero() {
			n.restoreReplica(k, v)
			continue
		}
		if owner.Addr == n.addr {
			n.mu.Lock()
			err := n.absorbLocked(map[dht.Key]any{k: v}, false)
			n.mu.Unlock()
			if err != nil {
				r.noteMaintenanceError(err)
				n.restoreReplica(k, v)
			}
			continue
		}
		if _, err := r.net.Call(n.addr, owner.Addr, offerReq{Entries: map[dht.Key]any{k: v}}); err != nil {
			n.restoreReplica(k, v)
		}
	}
}

// promoteOwnedReplicasLocked moves replica entries the node now owns (their
// hash falls in (pred, n]) into the primary store. Callers hold n.mu. The
// returned error is a failed journal write: the affected keys stay replicas
// so the next round retries the promotion.
func (n *Node) promoteOwnedReplicasLocked() error {
	if len(n.replicas) == 0 || n.pred.isZero() {
		return nil
	}
	owned := make(map[dht.Key]any)
	for k, v := range n.replicas {
		if dht.HashKey(k).Between(n.pred.ID, n.id) {
			owned[k] = v
		}
	}
	if len(owned) == 0 {
		return nil
	}
	if err := n.absorbLocked(owned, false); err != nil {
		return err
	}
	for k := range owned {
		delete(n.replicas, k)
		delete(n.replicaSeen, k)
	}
	return nil
}

// ReplicaLen returns the number of replica entries held (for tests).
func (n *Node) ReplicaLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.replicas)
}

// replicaCall issues one replication RPC through the ring's retry layer,
// keyed by the destination node (exact owner, no shard approximation
// needed). A call that still fails after the retry budget is counted in
// ReplicationErrors and recorded as the last replication error rather than
// silently dropped: the replica stays missing until the next stabilization
// round's reReplicate re-pushes it, and the counter makes that loss
// observable.
func (r *Ring) replicaCall(from, to transport.NodeID, req any) {
	err := r.retrier.Do(string(to), func() error {
		_, e := r.net.Call(from, to, req)
		return e
	})
	if err != nil {
		r.ReplicationErrors.Inc()
		r.mu.Lock()
		r.lastReplicaErr = err
		r.mu.Unlock()
	}
}

// replicate pushes the value for key to the first r-1 live successors of
// the primary.
func (r *Ring) replicate(primary ref, key dht.Key, value any) {
	if r.replication <= 1 {
		return
	}
	for _, succ := range r.replicaTargets(primary) {
		r.replicaCall(primary.Addr, succ.Addr, replicateReq{Entries: map[dht.Key]any{key: value}})
	}
}

// dropReplicas removes the key's replicas after a Remove.
func (r *Ring) dropReplicas(primary ref, key dht.Key) {
	if r.replication <= 1 {
		return
	}
	for _, succ := range r.replicaTargets(primary) {
		r.replicaCall(primary.Addr, succ.Addr, dropReplicaReq{Key: key})
	}
}

// replicaTargets returns the first r-1 distinct successors of primary.
func (r *Ring) replicaTargets(primary ref) []ref {
	succsAny, err := r.net.Call(primary.Addr, primary.Addr, getSuccsReq{})
	if err != nil {
		return nil
	}
	succs, ok := succsAny.([]ref)
	if !ok {
		return nil
	}
	out := make([]ref, 0, r.replication-1)
	seen := map[ref]bool{primary: true}
	for _, s := range succs {
		if len(out) >= r.replication-1 {
			break
		}
		if s.isZero() || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}

// reReplicate pushes a node's whole primary store to its current replica
// targets — the periodic repair of one stabilization round.
func (r *Ring) reReplicate(n *Node) {
	if r.replication <= 1 {
		return
	}
	entries := n.storeSnapshot()
	if len(entries) == 0 {
		return
	}
	for _, succ := range r.replicaTargets(n.self()) {
		r.replicaCall(n.addr, succ.Addr, replicateReq{Entries: entries})
	}
}
