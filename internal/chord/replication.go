package chord

import (
	"mlight/internal/dht"
	"mlight/internal/simnet"
)

// Replication support (an extension beyond the m-LIGHT paper, mirroring
// DHash/OpenDHT): with Config.Replication = r > 1, every key is stored at
// its primary owner and copied to the next r-1 successors. Replicas live in
// a separate replica store so ownership transfers (joins, claims) never
// confuse the two. Repair is periodic, in Bamboo style:
//
//   - each Stabilize round, every node pushes its primary entries to its
//     current r-1 successors, refreshing stale replica sets;
//   - each node promotes replica entries whose hash it now owns (its
//     predecessor changed after a crash) into its primary store.
//
// After up to r-1 simultaneous crashes and a couple of stabilization
// rounds, every surviving key is primary-owned at the correct node again,
// so index lookups keep working with no application involvement.

// replicateReq pushes replica copies to a successor.
type replicateReq struct{ Entries map[dht.Key]any }

// dropReplicaReq removes a replica after a key is deleted.
type dropReplicaReq struct{ Key dht.Key }

// handleReplicate stores pushed replica copies.
func (n *Node) handleReplicate(entries map[dht.Key]any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.replicas == nil {
		n.replicas = make(map[dht.Key]any, len(entries))
	}
	for k, v := range entries {
		n.replicas[k] = v
	}
}

// promoteOwnedReplicasLocked moves replica entries the node now owns (their
// hash falls in (pred, n]) into the primary store. Callers hold n.mu.
func (n *Node) promoteOwnedReplicasLocked() {
	if len(n.replicas) == 0 || n.pred.isZero() {
		return
	}
	for k, v := range n.replicas {
		if dht.HashKey(k).Between(n.pred.ID, n.id) {
			if _, exists := n.store[k]; !exists {
				n.store[k] = v
			}
			delete(n.replicas, k)
		}
	}
}

// ReplicaLen returns the number of replica entries held (for tests).
func (n *Node) ReplicaLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.replicas)
}

// replicaCall issues one replication RPC through the ring's retry layer,
// keyed by the destination node (exact owner, no shard approximation
// needed). A call that still fails after the retry budget is counted in
// ReplicationErrors and recorded as the last replication error rather than
// silently dropped: the replica stays missing until the next stabilization
// round's reReplicate re-pushes it, and the counter makes that loss
// observable.
func (r *Ring) replicaCall(from, to simnet.NodeID, req any) {
	err := r.retrier.Do(string(to), func() error {
		_, e := r.net.Call(from, to, req)
		return e
	})
	if err != nil {
		r.ReplicationErrors.Inc()
		r.mu.Lock()
		r.lastReplicaErr = err
		r.mu.Unlock()
	}
}

// replicate pushes the value for key to the first r-1 live successors of
// the primary.
func (r *Ring) replicate(primary ref, key dht.Key, value any) {
	if r.replication <= 1 {
		return
	}
	for _, succ := range r.replicaTargets(primary) {
		r.replicaCall(primary.Addr, succ.Addr, replicateReq{Entries: map[dht.Key]any{key: value}})
	}
}

// dropReplicas removes the key's replicas after a Remove.
func (r *Ring) dropReplicas(primary ref, key dht.Key) {
	if r.replication <= 1 {
		return
	}
	for _, succ := range r.replicaTargets(primary) {
		r.replicaCall(primary.Addr, succ.Addr, dropReplicaReq{Key: key})
	}
}

// replicaTargets returns the first r-1 distinct successors of primary.
func (r *Ring) replicaTargets(primary ref) []ref {
	succsAny, err := r.net.Call(primary.Addr, primary.Addr, getSuccsReq{})
	if err != nil {
		return nil
	}
	succs, ok := succsAny.([]ref)
	if !ok {
		return nil
	}
	out := make([]ref, 0, r.replication-1)
	seen := map[ref]bool{primary: true}
	for _, s := range succs {
		if len(out) >= r.replication-1 {
			break
		}
		if s.isZero() || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}

// reReplicate pushes a node's whole primary store to its current replica
// targets — the periodic repair of one stabilization round.
func (r *Ring) reReplicate(n *Node) {
	if r.replication <= 1 {
		return
	}
	entries := n.storeSnapshot()
	if len(entries) == 0 {
		return
	}
	for _, succ := range r.replicaTargets(n.self()) {
		r.replicaCall(n.addr, succ.Addr, replicateReq{Entries: entries})
	}
}
