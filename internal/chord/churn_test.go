package chord

import (
	"fmt"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/dht/dhttest"
	"mlight/internal/simnet"
)

// churnRing adapts the Ring management plane to the dhttest churn suite.
type churnRing struct {
	ring *Ring
	d    dht.DHT
}

func (c *churnRing) DHT() dht.DHT                 { return c.d }
func (c *churnRing) Live() []simnet.NodeID        { return c.ring.Nodes() }
func (c *churnRing) Down() []simnet.NodeID        { return c.ring.CrashedNodes() }
func (c *churnRing) Crash(id simnet.NodeID) error { return c.ring.CrashNode(id) }
func (c *churnRing) Leave(id simnet.NodeID) error { return c.ring.RemoveNode(id) }
func (c *churnRing) Settle()                      { c.ring.Stabilize(3) }

func (c *churnRing) Restart(id simnet.NodeID) error {
	_, err := c.ring.RestartNode(id)
	return err
}

func (c *churnRing) Join(id simnet.NodeID) error {
	_, err := c.ring.AddNode(id)
	return err
}

func newChurnRing(t *testing.T, wrap func(dht.DHT) dht.DHT) dhttest.Churner {
	t.Helper()
	net := simnet.New(simnet.Options{})
	ring := NewRing(net, Config{Seed: 1, Replication: 3})
	for i := 0; i < 10; i++ {
		if _, err := ring.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ring.Stabilize(2)
	return &churnRing{ring: ring, d: wrap(ring)}
}

// TestChurnSchedule pins the correctness gate of the churn suite on the
// raw ring: after a deterministic schedule of joins, leaves, crashes, and
// restarts under an active workload, a full scan equals ground truth.
func TestChurnSchedule(t *testing.T) {
	dhttest.RunChurn(t, func(t *testing.T) dhttest.Churner {
		return newChurnRing(t, func(d dht.DHT) dht.DHT { return d })
	})
}

// TestChurnScheduleDecorated runs the same gate through the decorator
// stack an index deployment actually uses, so churn recovery is proven to
// compose with retries and accounting.
func TestChurnScheduleDecorated(t *testing.T) {
	dhttest.RunChurn(t, func(t *testing.T) dhttest.Churner {
		return newChurnRing(t, func(d dht.DHT) dht.DHT {
			return dht.NewResilient(dht.NewCounting(d, nil),
				dht.RetryPolicy{MaxAttempts: 4, Sleep: dht.NoSleep}, nil)
		})
	})
}
