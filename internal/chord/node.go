// Package chord implements the Chord distributed hash table (Stoica et al.,
// SIGCOMM 2001) over any transport.Interface — the simulated network in
// internal/simnet or real framed TCP. It is one of
// the pluggable substrates beneath the m-LIGHT index: the index only sees
// the generic dht.DHT interface, demonstrating the paper's claim that an
// over-DHT index "is adaptable to any DHT substrate".
//
// Nodes live on a 160-bit identifier ring (SHA-1 of their address). Each
// node maintains a predecessor pointer, a successor list for resilience,
// and a finger table for O(log n) routing. Lookups are iterative: the
// querying side repeatedly asks the closest known predecessor for a better
// next hop, counting each RPC as one overlay hop.
//
// Stabilization (stabilize / notify / fix-fingers) runs as explicit rounds
// driven by the Ring, keeping simulations deterministic.
package chord

import (
	"fmt"
	"sync"

	"mlight/internal/dht"
	"mlight/internal/transport"
)

// SuccessorListLen is the length of each node's successor list.
const SuccessorListLen = 4

// ref identifies a remote node: its network address and ring identifier.
type ref struct {
	Addr transport.NodeID
	ID   dht.ID
}

func (r ref) isZero() bool { return r.Addr == "" }

// Node is one Chord peer.
type Node struct {
	addr transport.NodeID
	id   dht.ID
	net  transport.Interface

	mu      sync.Mutex
	pred    ref
	succs   []ref // succs[0] is the immediate successor; never empty once joined
	fingers [dht.IDBits]ref
	store   map[dht.Key]any
	// replicas holds copies of other nodes' keys when the ring runs with
	// Replication > 1; see replication.go.
	replicas map[dht.Key]any
	// replicaSeen records the local repair round at which each replica was
	// last refreshed by its owner; repRound counts completed repair rounds.
	// Together they implement the replica lease: a copy whose owner stops
	// refreshing it (ownership moved — a join, or a restart reclaiming the
	// keyspace) expires instead of lingering stale. See expireStaleReplicas.
	replicaSeen map[dht.Key]uint64
	repRound    uint64
	// app is the application-level handler consulted for request types the
	// node itself does not recognise — the over-DHT application layer
	// (OpenDHT-style installed handlers). See SetAppHandler.
	app transport.Handler
	// vers tracks per-key mutation versions for the remote (wire-safe)
	// apply protocol; every primary-store write bumps it. See dht.RemoteApply.
	vers dht.VersionedStore
	// journal, when set, records every primary-store mutation before it is
	// acknowledged — the daemon's WAL hook. See SetJournal.
	journal Journal
}

// Journal receives every primary-store mutation of a node, in the critical
// section that applies it, before the RPC is acknowledged. A non-nil error
// fails the mutating RPC: a node that cannot journal must not accept
// writes. The daemon wires a dht.WAL-backed implementation here so a
// crashed process recovers its shard.
type Journal interface {
	Record(recs []dht.WALRecord) error
}

// SetJournal installs the node's durability hook (nil disables).
func (n *Node) SetJournal(j Journal) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.journal = j
}

// SetAppHandler installs an application-level handler for requests the DHT
// layer does not recognise, the hook an over-DHT index uses to run its
// query logic on the peers themselves.
func (n *Node) SetAppHandler(h transport.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.app = h
}

// journalLocked records mutations in the WAL hook, if any. Callers hold
// n.mu; a failure means the mutation must not be applied.
func (n *Node) journalLocked(recs ...dht.WALRecord) error {
	if n.journal == nil {
		return nil
	}
	if err := n.journal.Record(recs); err != nil {
		return fmt.Errorf("chord: %s: journal: %w", n.addr, err)
	}
	return nil
}

// putLocked is the primary-store write funnel: journal, install, bump the
// key's version. Callers hold n.mu.
func (n *Node) putLocked(key dht.Key, value any) error {
	if err := n.journalLocked(dht.WALRecord{Op: dht.WALPut, Key: key, Value: value}); err != nil {
		return err
	}
	n.store[key] = value
	n.vers.Bump(key)
	return nil
}

// removeLocked is the primary-store delete funnel. Callers hold n.mu and
// clear replica bookkeeping themselves where relevant.
func (n *Node) removeLocked(key dht.Key) error {
	if err := n.journalLocked(dht.WALRecord{Op: dht.WALRemove, Key: key}); err != nil {
		return err
	}
	delete(n.store, key)
	n.vers.Bump(key)
	return nil
}

// absorbLocked merges a batch of entries into the primary store (handoffs,
// claims), journaling them as one group commit. When overwrite is false an
// existing entry wins (the offer semantics). Callers hold n.mu.
func (n *Node) absorbLocked(entries map[dht.Key]any, overwrite bool) error {
	recs := make([]dht.WALRecord, 0, len(entries))
	keys := make([]dht.Key, 0, len(entries))
	for k, v := range entries {
		if !overwrite {
			if _, exists := n.store[k]; exists {
				continue
			}
		}
		recs = append(recs, dht.WALRecord{Op: dht.WALPut, Key: k, Value: v})
		keys = append(keys, k)
	}
	if err := n.journalLocked(recs...); err != nil {
		return err
	}
	for i, k := range keys {
		n.store[k] = recs[i].Value
		n.vers.Bump(k)
	}
	return nil
}

// LocalGet reads a value from this node's own store (no network traffic) —
// what an application handler running on the peer sees.
func (n *Node) LocalGet(key dht.Key) (any, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.store[key]
	if !ok {
		v, ok = n.replicas[key]
	}
	return v, ok
}

// rpc request types. Each is handled synchronously by Node.HandleRPC.
type (
	pingReq        struct{}
	getPredReq     struct{}
	getSuccsReq    struct{}
	notifyReq      struct{ Candidate ref }
	lookupStepReq  struct{ Target dht.ID }
	lookupStepResp struct {
		Done bool
		Next ref // the answer when Done, otherwise the next hop
	}
	storeReq struct {
		Key   dht.Key
		Value any
	}
	retrieveReq  struct{ Key dht.Key }
	retrieveResp struct {
		Value any
		Found bool
	}
	removeReq struct{ Key dht.Key }
	applyReq  struct {
		Key dht.Key
		Fn  dht.ApplyFunc
	}
	applyResp struct {
		Value any
		Keep  bool
	}
	// handoffReq asks a node to absorb keys (join/leave transfers).
	handoffReq struct{ Entries map[dht.Key]any }
	// claimReq asks a node to hand over the keys now owned by the joiner:
	// those whose hash is not in (Joiner.ID, node.ID].
	claimReq  struct{ Joiner ref }
	claimResp struct{ Entries map[dht.Key]any }
	// setPredReq / setSuccReq support graceful departure.
	setPredReq struct{ Pred ref }
	setSuccReq struct{ Succ ref }
)

// newNode creates an unjoined node registered on the network.
func newNode(net transport.Interface, addr transport.NodeID) (*Node, error) {
	n := &Node{
		addr:  addr,
		id:    dht.HashString(string(addr)),
		net:   net,
		store: make(map[dht.Key]any),
	}
	if err := net.Register(addr, n); err != nil {
		return nil, fmt.Errorf("chord: register %q: %w", addr, err)
	}
	return n, nil
}

// OnCrash implements transport.Crasher: a hard crash destroys everything this
// process held in memory — stored keys, replicas, and all routing state.
// The address and ring identifier survive (they are identity, not state),
// so the node can restart and rejoin as the same peer with empty buckets.
func (n *Node) OnCrash() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.store = make(map[dht.Key]any)
	n.replicas = nil
	n.replicaSeen = nil
	n.repRound = 0
	n.pred = ref{}
	n.succs = nil
	n.fingers = [dht.IDBits]ref{}
	n.vers.Reset()
}

// Addr returns the node's network address.
func (n *Node) Addr() transport.NodeID { return n.addr }

// ID returns the node's ring identifier.
func (n *Node) ID() dht.ID { return n.id }

// self returns the node's own ref.
func (n *Node) self() ref { return ref{Addr: n.addr, ID: n.id} }

// HandleRPC implements transport.Handler.
func (n *Node) HandleRPC(from transport.NodeID, req any) (any, error) {
	switch r := req.(type) {
	case pingReq:
		return n.self(), nil
	case getPredReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		return n.pred, nil
	case getSuccsReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		return append([]ref(nil), n.succs...), nil
	case notifyReq:
		n.handleNotify(r.Candidate)
		return struct{}{}, nil
	case lookupStepReq:
		return n.handleLookupStep(r.Target), nil
	case storeReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		if err := n.putLocked(r.Key, r.Value); err != nil {
			return nil, err
		}
		return struct{}{}, nil
	case retrieveReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		v, ok := n.store[r.Key]
		if !ok {
			// Crash window: routing may already point here while the key
			// still sits in the replica store, before promotion.
			v, ok = n.replicas[r.Key]
		}
		return retrieveResp{Value: v, Found: ok}, nil
	case removeReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		if err := n.removeLocked(r.Key); err != nil {
			return nil, err
		}
		delete(n.replicas, r.Key)
		delete(n.replicaSeen, r.Key)
		return struct{}{}, nil
	case applyReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		cur, ok := n.store[r.Key]
		if !ok {
			if rv, rok := n.replicas[r.Key]; rok {
				cur, ok = rv, true
				n.store[r.Key] = rv // promote on write
				delete(n.replicas, r.Key)
			}
		}
		next, keep := r.Fn(cur, ok)
		if keep {
			if err := n.putLocked(r.Key, next); err != nil {
				return nil, err
			}
		} else if err := n.removeLocked(r.Key); err != nil {
			return nil, err
		}
		return applyResp{Value: next, Keep: keep}, nil
	case dht.GetVerReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		v, ok := n.store[r.Key]
		if !ok {
			// Promote a crash-window replica before snapshotting, exactly
			// as the inline apply path does: the version returned must name
			// the state the CAS will be judged against.
			if rv, rok := n.replicas[r.Key]; rok {
				if err := n.putLocked(r.Key, rv); err != nil {
					return nil, err
				}
				delete(n.replicas, r.Key)
				v, ok = rv, true
			}
		}
		return n.vers.Snapshot(r, v, ok), nil
	case dht.CASReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		cur, ok := n.store[r.Key]
		resp, apply := n.vers.CAS(r, cur, ok)
		if !apply {
			return resp, nil
		}
		if r.Keep {
			if err := n.journalLocked(dht.WALRecord{Op: dht.WALPut, Key: r.Key, Value: r.Value}); err != nil {
				return nil, err
			}
			n.store[r.Key] = r.Value
		} else {
			if err := n.journalLocked(dht.WALRecord{Op: dht.WALRemove, Key: r.Key}); err != nil {
				return nil, err
			}
			delete(n.store, r.Key)
			delete(n.replicas, r.Key)
			delete(n.replicaSeen, r.Key)
		}
		return resp, nil
	case handoffReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		if err := n.absorbLocked(r.Entries, true); err != nil {
			return nil, err
		}
		return struct{}{}, nil
	case offerReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		if err := n.absorbLocked(r.Entries, false); err != nil {
			return nil, err
		}
		return struct{}{}, nil
	case claimReq:
		return n.handleClaim(r.Joiner)
	case replicateReq:
		n.handleReplicate(r.Entries)
		return struct{}{}, nil
	case dropReplicaReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		delete(n.replicas, r.Key)
		delete(n.replicaSeen, r.Key)
		return struct{}{}, nil
	case setPredReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		n.pred = r.Pred
		return struct{}{}, nil
	case setSuccReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		if len(n.succs) == 0 {
			n.succs = []ref{r.Succ}
		} else {
			n.succs[0] = r.Succ
		}
		return struct{}{}, nil
	default:
		n.mu.Lock()
		app := n.app
		n.mu.Unlock()
		if app != nil {
			return app.HandleRPC(from, req)
		}
		return nil, fmt.Errorf("chord: %s: unknown request type %T", n.addr, req)
	}
}

// handleNotify implements Chord's notify: candidate thinks it may be our
// predecessor.
func (n *Node) handleNotify(candidate ref) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if candidate.Addr == n.addr {
		return
	}
	if n.pred.isZero() || candidate.ID.BetweenOpen(n.pred.ID, n.id) {
		n.pred = candidate
	}
}

// handleLookupStep answers one iterative-lookup step: if the target falls
// between this node and its immediate successor, the successor is the
// answer; otherwise return the closest preceding node from the finger table
// and successor list.
func (n *Node) handleLookupStep(target dht.ID) lookupStepResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.succs) == 0 {
		// Not joined: we are the whole ring.
		return lookupStepResp{Done: true, Next: n.self()}
	}
	succ := n.succs[0]
	if target.Between(n.id, succ.ID) {
		return lookupStepResp{Done: true, Next: succ}
	}
	return lookupStepResp{Next: n.closestPrecedingLocked(target)}
}

// closestPrecedingLocked scans fingers (then the successor list) for the
// node most closely preceding target. Callers hold n.mu.
func (n *Node) closestPrecedingLocked(target dht.ID) ref {
	best := n.self()
	for i := dht.IDBits - 1; i >= 0; i-- {
		f := n.fingers[i]
		if !f.isZero() && f.ID.BetweenOpen(n.id, target) {
			best = f
			break
		}
	}
	for _, s := range n.succs {
		if !s.isZero() && s.ID.BetweenOpen(best.ID, target) {
			best = s
		}
	}
	if best.Addr == n.addr && len(n.succs) > 0 {
		// No finger helps; fall forward to the successor to guarantee
		// progress around the ring.
		return n.succs[0]
	}
	return best
}

// handleClaim hands over the keys a joining predecessor now owns: with the
// joiner at position j between our old predecessor and us, every stored key
// whose hash is not in (j, us] moves to the joiner.
func (n *Node) handleClaim(joiner ref) (claimResp, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[dht.Key]any)
	recs := make([]dht.WALRecord, 0)
	for k, v := range n.store {
		if !dht.HashKey(k).Between(joiner.ID, n.id) {
			out[k] = v
			recs = append(recs, dht.WALRecord{Op: dht.WALRemove, Key: k})
		}
	}
	// Journal the departures as one group before handing anything over: a
	// node that cannot record losing ownership must keep serving the keys.
	if err := n.journalLocked(recs...); err != nil {
		return claimResp{}, err
	}
	for _, rec := range recs {
		delete(n.store, rec.Key)
		n.vers.Bump(rec.Key)
	}
	return claimResp{Entries: out}, nil
}

// storeSnapshot copies the node's stored entries (for Ring.Range and leave
// transfers).
func (n *Node) storeSnapshot() map[dht.Key]any {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[dht.Key]any, len(n.store))
	for k, v := range n.store {
		out[k] = v
	}
	return out
}

// StoreSnapshot copies the node's primary store. The daemon uses it as the
// WAL compaction source after a restart's replay.
func (n *Node) StoreSnapshot() map[dht.Key]any {
	return n.storeSnapshot()
}

// StoreLen returns how many entries the node currently stores.
func (n *Node) StoreLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.store)
}

// Successor returns the node's immediate successor ref (zero if unjoined).
func (n *Node) Successor() (transport.NodeID, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.succs) == 0 {
		return "", false
	}
	return n.succs[0].Addr, true
}

// Predecessor returns the node's predecessor address (zero if unknown).
func (n *Node) Predecessor() (transport.NodeID, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pred.isZero() {
		return "", false
	}
	return n.pred.Addr, true
}
