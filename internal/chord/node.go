// Package chord implements the Chord distributed hash table (Stoica et al.,
// SIGCOMM 2001) over the simulated network in internal/simnet. It is one of
// the pluggable substrates beneath the m-LIGHT index: the index only sees
// the generic dht.DHT interface, demonstrating the paper's claim that an
// over-DHT index "is adaptable to any DHT substrate".
//
// Nodes live on a 160-bit identifier ring (SHA-1 of their address). Each
// node maintains a predecessor pointer, a successor list for resilience,
// and a finger table for O(log n) routing. Lookups are iterative: the
// querying side repeatedly asks the closest known predecessor for a better
// next hop, counting each RPC as one overlay hop.
//
// Stabilization (stabilize / notify / fix-fingers) runs as explicit rounds
// driven by the Ring, keeping simulations deterministic.
package chord

import (
	"fmt"
	"sync"

	"mlight/internal/dht"
	"mlight/internal/simnet"
)

// SuccessorListLen is the length of each node's successor list.
const SuccessorListLen = 4

// ref identifies a remote node: its network address and ring identifier.
type ref struct {
	Addr simnet.NodeID
	ID   dht.ID
}

func (r ref) isZero() bool { return r.Addr == "" }

// Node is one Chord peer.
type Node struct {
	addr simnet.NodeID
	id   dht.ID
	net  *simnet.Network

	mu      sync.Mutex
	pred    ref
	succs   []ref // succs[0] is the immediate successor; never empty once joined
	fingers [dht.IDBits]ref
	store   map[dht.Key]any
	// replicas holds copies of other nodes' keys when the ring runs with
	// Replication > 1; see replication.go.
	replicas map[dht.Key]any
	// replicaSeen records the local repair round at which each replica was
	// last refreshed by its owner; repRound counts completed repair rounds.
	// Together they implement the replica lease: a copy whose owner stops
	// refreshing it (ownership moved — a join, or a restart reclaiming the
	// keyspace) expires instead of lingering stale. See expireStaleReplicas.
	replicaSeen map[dht.Key]uint64
	repRound    uint64
	// app is the application-level handler consulted for request types the
	// node itself does not recognise — the over-DHT application layer
	// (OpenDHT-style installed handlers). See SetAppHandler.
	app simnet.Handler
}

// SetAppHandler installs an application-level handler for requests the DHT
// layer does not recognise, the hook an over-DHT index uses to run its
// query logic on the peers themselves.
func (n *Node) SetAppHandler(h simnet.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.app = h
}

// LocalGet reads a value from this node's own store (no network traffic) —
// what an application handler running on the peer sees.
func (n *Node) LocalGet(key dht.Key) (any, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.store[key]
	if !ok {
		v, ok = n.replicas[key]
	}
	return v, ok
}

// rpc request types. Each is handled synchronously by Node.HandleRPC.
type (
	pingReq        struct{}
	getPredReq     struct{}
	getSuccsReq    struct{}
	notifyReq      struct{ Candidate ref }
	lookupStepReq  struct{ Target dht.ID }
	lookupStepResp struct {
		Done bool
		Next ref // the answer when Done, otherwise the next hop
	}
	storeReq struct {
		Key   dht.Key
		Value any
	}
	retrieveReq  struct{ Key dht.Key }
	retrieveResp struct {
		Value any
		Found bool
	}
	removeReq struct{ Key dht.Key }
	applyReq  struct {
		Key dht.Key
		Fn  dht.ApplyFunc
	}
	applyResp struct {
		Value any
		Keep  bool
	}
	// handoffReq asks a node to absorb keys (join/leave transfers).
	handoffReq struct{ Entries map[dht.Key]any }
	// claimReq asks a node to hand over the keys now owned by the joiner:
	// those whose hash is not in (Joiner.ID, node.ID].
	claimReq  struct{ Joiner ref }
	claimResp struct{ Entries map[dht.Key]any }
	// setPredReq / setSuccReq support graceful departure.
	setPredReq struct{ Pred ref }
	setSuccReq struct{ Succ ref }
)

// newNode creates an unjoined node registered on the network.
func newNode(net *simnet.Network, addr simnet.NodeID) (*Node, error) {
	n := &Node{
		addr:  addr,
		id:    dht.HashString(string(addr)),
		net:   net,
		store: make(map[dht.Key]any),
	}
	if err := net.Register(addr, n); err != nil {
		return nil, fmt.Errorf("chord: register %q: %w", addr, err)
	}
	return n, nil
}

// OnCrash implements simnet.Crasher: a hard crash destroys everything this
// process held in memory — stored keys, replicas, and all routing state.
// The address and ring identifier survive (they are identity, not state),
// so the node can restart and rejoin as the same peer with empty buckets.
func (n *Node) OnCrash() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.store = make(map[dht.Key]any)
	n.replicas = nil
	n.replicaSeen = nil
	n.repRound = 0
	n.pred = ref{}
	n.succs = nil
	n.fingers = [dht.IDBits]ref{}
}

// Addr returns the node's network address.
func (n *Node) Addr() simnet.NodeID { return n.addr }

// ID returns the node's ring identifier.
func (n *Node) ID() dht.ID { return n.id }

// self returns the node's own ref.
func (n *Node) self() ref { return ref{Addr: n.addr, ID: n.id} }

// HandleRPC implements simnet.Handler.
func (n *Node) HandleRPC(from simnet.NodeID, req any) (any, error) {
	switch r := req.(type) {
	case pingReq:
		return n.self(), nil
	case getPredReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		return n.pred, nil
	case getSuccsReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		return append([]ref(nil), n.succs...), nil
	case notifyReq:
		n.handleNotify(r.Candidate)
		return struct{}{}, nil
	case lookupStepReq:
		return n.handleLookupStep(r.Target), nil
	case storeReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		n.store[r.Key] = r.Value
		return struct{}{}, nil
	case retrieveReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		v, ok := n.store[r.Key]
		if !ok {
			// Crash window: routing may already point here while the key
			// still sits in the replica store, before promotion.
			v, ok = n.replicas[r.Key]
		}
		return retrieveResp{Value: v, Found: ok}, nil
	case removeReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		delete(n.store, r.Key)
		delete(n.replicas, r.Key)
		delete(n.replicaSeen, r.Key)
		return struct{}{}, nil
	case applyReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		cur, ok := n.store[r.Key]
		if !ok {
			if rv, rok := n.replicas[r.Key]; rok {
				cur, ok = rv, true
				n.store[r.Key] = rv // promote on write
				delete(n.replicas, r.Key)
			}
		}
		next, keep := r.Fn(cur, ok)
		if keep {
			n.store[r.Key] = next
		} else {
			delete(n.store, r.Key)
		}
		return applyResp{Value: next, Keep: keep}, nil
	case handoffReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		for k, v := range r.Entries {
			n.store[k] = v
		}
		return struct{}{}, nil
	case offerReq:
		n.mu.Lock()
		for k, v := range r.Entries {
			if _, exists := n.store[k]; !exists {
				n.store[k] = v
			}
		}
		n.mu.Unlock()
		return struct{}{}, nil
	case claimReq:
		return n.handleClaim(r.Joiner), nil
	case replicateReq:
		n.handleReplicate(r.Entries)
		return struct{}{}, nil
	case dropReplicaReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		delete(n.replicas, r.Key)
		delete(n.replicaSeen, r.Key)
		return struct{}{}, nil
	case setPredReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		n.pred = r.Pred
		return struct{}{}, nil
	case setSuccReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		if len(n.succs) == 0 {
			n.succs = []ref{r.Succ}
		} else {
			n.succs[0] = r.Succ
		}
		return struct{}{}, nil
	default:
		n.mu.Lock()
		app := n.app
		n.mu.Unlock()
		if app != nil {
			return app.HandleRPC(from, req)
		}
		return nil, fmt.Errorf("chord: %s: unknown request type %T", n.addr, req)
	}
}

// handleNotify implements Chord's notify: candidate thinks it may be our
// predecessor.
func (n *Node) handleNotify(candidate ref) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if candidate.Addr == n.addr {
		return
	}
	if n.pred.isZero() || candidate.ID.BetweenOpen(n.pred.ID, n.id) {
		n.pred = candidate
	}
}

// handleLookupStep answers one iterative-lookup step: if the target falls
// between this node and its immediate successor, the successor is the
// answer; otherwise return the closest preceding node from the finger table
// and successor list.
func (n *Node) handleLookupStep(target dht.ID) lookupStepResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.succs) == 0 {
		// Not joined: we are the whole ring.
		return lookupStepResp{Done: true, Next: n.self()}
	}
	succ := n.succs[0]
	if target.Between(n.id, succ.ID) {
		return lookupStepResp{Done: true, Next: succ}
	}
	return lookupStepResp{Next: n.closestPrecedingLocked(target)}
}

// closestPrecedingLocked scans fingers (then the successor list) for the
// node most closely preceding target. Callers hold n.mu.
func (n *Node) closestPrecedingLocked(target dht.ID) ref {
	best := n.self()
	for i := dht.IDBits - 1; i >= 0; i-- {
		f := n.fingers[i]
		if !f.isZero() && f.ID.BetweenOpen(n.id, target) {
			best = f
			break
		}
	}
	for _, s := range n.succs {
		if !s.isZero() && s.ID.BetweenOpen(best.ID, target) {
			best = s
		}
	}
	if best.Addr == n.addr && len(n.succs) > 0 {
		// No finger helps; fall forward to the successor to guarantee
		// progress around the ring.
		return n.succs[0]
	}
	return best
}

// handleClaim hands over the keys a joining predecessor now owns: with the
// joiner at position j between our old predecessor and us, every stored key
// whose hash is not in (j, us] moves to the joiner.
func (n *Node) handleClaim(joiner ref) claimResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[dht.Key]any)
	for k, v := range n.store {
		if !dht.HashKey(k).Between(joiner.ID, n.id) {
			out[k] = v
			delete(n.store, k)
		}
	}
	return claimResp{Entries: out}
}

// storeSnapshot copies the node's stored entries (for Ring.Range and leave
// transfers).
func (n *Node) storeSnapshot() map[dht.Key]any {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[dht.Key]any, len(n.store))
	for k, v := range n.store {
		out[k] = v
	}
	return out
}

// StoreLen returns how many entries the node currently stores.
func (n *Node) StoreLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.store)
}

// Successor returns the node's immediate successor ref (zero if unjoined).
func (n *Node) Successor() (simnet.NodeID, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.succs) == 0 {
		return "", false
	}
	return n.succs[0].Addr, true
}

// Predecessor returns the node's predecessor address (zero if unknown).
func (n *Node) Predecessor() (simnet.NodeID, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pred.isZero() {
		return "", false
	}
	return n.pred.Addr, true
}
