package chord

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"mlight/internal/dht"
	"mlight/internal/dht/dhttest"
	"mlight/internal/simnet"
)

// buildRing creates a ring of n nodes named node-0 … node-(n-1) and runs
// enough stabilization to settle routing state.
func buildRing(t *testing.T, n int) (*simnet.Network, *Ring) {
	t.Helper()
	net := simnet.New(simnet.Options{})
	ring := NewRing(net, Config{Seed: 1})
	for i := 0; i < n; i++ {
		if _, err := ring.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatalf("AddNode(%d): %v", i, err)
		}
	}
	ring.Stabilize(2)
	return net, ring
}

// oracleOwner computes the correct owner of a key from the ground truth:
// the first node identifier at or after hash(key) on the ring.
func oracleOwner(ring *Ring, key dht.Key) simnet.NodeID {
	type ent struct {
		id   dht.ID
		addr simnet.NodeID
	}
	var ents []ent
	for _, addr := range ring.Nodes() {
		n, _ := ring.node(addr)
		ents = append(ents, ent{id: n.ID(), addr: addr})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].id.Cmp(ents[j].id) < 0 })
	h := dht.HashKey(key)
	for _, e := range ents {
		if e.id.Cmp(h) >= 0 {
			return e.addr
		}
	}
	return ents[0].addr
}

func TestSingletonRing(t *testing.T) {
	_, ring := buildRing(t, 1)
	if err := ring.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := ring.Get("k")
	if err != nil || !ok || v != "v" {
		t.Fatalf("Get = %v, %v, %v", v, ok, err)
	}
}

func TestOwnerMatchesOracle(t *testing.T) {
	_, ring := buildRing(t, 16)
	for i := 0; i < 300; i++ {
		key := dht.Key(fmt.Sprintf("key-%d", i))
		got, err := ring.Owner(key)
		if err != nil {
			t.Fatalf("Owner(%q): %v", key, err)
		}
		if want := oracleOwner(ring, key); got != string(want) {
			t.Fatalf("Owner(%q) = %q, want %q", key, got, want)
		}
	}
}

func TestPutGetRemoveAcrossRing(t *testing.T) {
	_, ring := buildRing(t, 12)
	for i := 0; i < 200; i++ {
		key := dht.Key(fmt.Sprintf("k%d", i))
		if err := ring.Put(key, i); err != nil {
			t.Fatalf("Put(%q): %v", key, err)
		}
	}
	for i := 0; i < 200; i++ {
		key := dht.Key(fmt.Sprintf("k%d", i))
		v, ok, err := ring.Get(key)
		if err != nil || !ok || v != i {
			t.Fatalf("Get(%q) = %v, %v, %v", key, v, ok, err)
		}
	}
	if err := ring.Remove("k0"); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := ring.Get("k0"); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Error("Remove left value")
	}
	// Values are spread over several nodes, not piled on one.
	occupied := 0
	for _, addr := range ring.Nodes() {
		n, _ := ring.node(addr)
		if n.StoreLen() > 0 {
			occupied++
		}
	}
	if occupied < 4 {
		t.Errorf("only %d nodes hold data; distribution looks broken", occupied)
	}
}

func TestApply(t *testing.T) {
	_, ring := buildRing(t, 8)
	for i := 0; i < 5; i++ {
		err := ring.Apply("acc", func(cur any, ok bool) (any, bool) {
			if !ok {
				return 1, true
			}
			n, castOK := cur.(int)
			if !castOK {
				t.Errorf("Apply saw %T", cur)
			}
			return n + 1, true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := ring.Get("acc")
	if err != nil || !ok || v != 5 {
		t.Fatalf("Get(acc) = %v, %v, %v", v, ok, err)
	}
	// Delete via Apply.
	if err := ring.Apply("acc", func(any, bool) (any, bool) { return nil, false }); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := ring.Get("acc"); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Error("Apply(keep=false) left value")
	}
}

func TestJoinMovesKeys(t *testing.T) {
	_, ring := buildRing(t, 4)
	keys := make([]dht.Key, 0, 300)
	for i := 0; i < 300; i++ {
		k := dht.Key(fmt.Sprintf("jk%d", i))
		keys = append(keys, k)
		if err := ring.Put(k, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 4; i < 12; i++ {
		if _, err := ring.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ring.Stabilize(2)
	for i, k := range keys {
		v, ok, err := ring.Get(k)
		if err != nil || !ok || v != i {
			t.Fatalf("after joins Get(%q) = %v, %v, %v", k, v, ok, err)
		}
		// Data must live exactly at the oracle owner.
		owner := oracleOwner(ring, k)
		n, _ := ring.node(owner)
		if _, found := n.storeSnapshot()[k]; !found {
			t.Fatalf("key %q not stored at oracle owner %q", k, owner)
		}
	}
}

func TestGracefulLeaveKeepsData(t *testing.T) {
	_, ring := buildRing(t, 10)
	for i := 0; i < 300; i++ {
		if err := ring.Put(dht.Key(fmt.Sprintf("lk%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	for _, victim := range []simnet.NodeID{"node-3", "node-7", "node-0"} {
		if err := ring.RemoveNode(victim); err != nil {
			t.Fatalf("RemoveNode(%q): %v", victim, err)
		}
		ring.Stabilize(2)
	}
	for i := 0; i < 300; i++ {
		k := dht.Key(fmt.Sprintf("lk%d", i))
		v, ok, err := ring.Get(k)
		if err != nil || !ok || v != i {
			t.Fatalf("after leaves Get(%q) = %v, %v, %v", k, v, ok, err)
		}
	}
	if err := ring.RemoveNode("node-3"); err == nil {
		t.Error("double RemoveNode succeeded")
	}
}

func TestCrashRecoversRouting(t *testing.T) {
	_, ring := buildRing(t, 10)
	if err := ring.CrashNode("node-4"); err != nil {
		t.Fatal(err)
	}
	ring.Stabilize(3)
	// The overlay routes again; data on node-4 is lost by design (no
	// replication), but fresh keys must be storable and retrievable.
	for i := 0; i < 100; i++ {
		k := dht.Key(fmt.Sprintf("ck%d", i))
		if err := ring.Put(k, i); err != nil {
			t.Fatalf("Put after crash: %v", err)
		}
		v, ok, err := ring.Get(k)
		if err != nil || !ok || v != i {
			t.Fatalf("Get after crash = %v, %v, %v", v, ok, err)
		}
	}
	if err := ring.CrashNode("node-4"); err == nil {
		t.Error("double CrashNode succeeded")
	}
}

func TestRange(t *testing.T) {
	_, ring := buildRing(t, 6)
	want := map[dht.Key]int{}
	for i := 0; i < 50; i++ {
		k := dht.Key(fmt.Sprintf("rk%d", i))
		want[k] = i
		if err := ring.Put(k, i); err != nil {
			t.Fatal(err)
		}
	}
	got := map[dht.Key]int{}
	err := ring.Range(func(k dht.Key, v any) bool {
		got[k], _ = v.(int)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Range saw %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Range[%q] = %d, want %d", k, got[k], v)
		}
	}
}

func TestRouteLengthLogarithmic(t *testing.T) {
	_, ring := buildRing(t, 32)
	ring.Hops.Reset()
	ring.Lookups.Reset()
	for i := 0; i < 500; i++ {
		if _, err := ring.Owner(dht.Key(fmt.Sprintf("probe-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	mean := ring.MeanRouteLength()
	if mean <= 0 {
		t.Fatal("no hops recorded")
	}
	// log2(32) = 5; iterative Chord stays within a small multiple.
	if mean > 12 {
		t.Errorf("mean route length %.1f hops for 32 nodes; want ≲ 12", mean)
	}
}

func TestEmptyRingErrors(t *testing.T) {
	net := simnet.New(simnet.Options{})
	ring := NewRing(net, Config{})
	if err := ring.Put("k", 1); err == nil {
		t.Error("Put on empty ring succeeded")
	}
	if _, err := ring.Owner("k"); err == nil {
		t.Error("Owner on empty ring succeeded")
	}
}

func TestDuplicateAddNode(t *testing.T) {
	_, ring := buildRing(t, 2)
	if _, err := ring.AddNode("node-0"); err == nil {
		t.Error("duplicate AddNode succeeded")
	}
}

func TestAutoStabilizerShutdown(t *testing.T) {
	_, ring := buildRing(t, 3)
	auto := ring.StartAutoStabilize(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	auto.Shutdown() // must not hang or panic
	if err := ring.Put("k", 1); err != nil {
		t.Fatal(err)
	}
}

func TestNeighbourPointers(t *testing.T) {
	_, ring := buildRing(t, 8)
	// Walking successors from any node must traverse the full ring.
	start := ring.Nodes()[0]
	n, _ := ring.node(start)
	seen := map[simnet.NodeID]bool{start: true}
	cur := n
	for i := 0; i < 8; i++ {
		succAddr, ok := cur.Successor()
		if !ok {
			t.Fatalf("node %q has no successor", cur.Addr())
		}
		if succAddr == start {
			break
		}
		if seen[succAddr] {
			t.Fatalf("successor cycle revisits %q before covering ring", succAddr)
		}
		seen[succAddr] = true
		cur, ok = ring.node(succAddr)
		if !ok {
			t.Fatalf("successor %q not managed", succAddr)
		}
	}
	if len(seen) != 8 {
		t.Errorf("successor walk covered %d of 8 nodes", len(seen))
	}
	// Predecessors must be set everywhere after stabilization.
	for _, addr := range ring.Nodes() {
		node, _ := ring.node(addr)
		if _, ok := node.Predecessor(); !ok {
			t.Errorf("node %q has no predecessor", addr)
		}
	}
}

func TestConformance(t *testing.T) {
	dhttest.RunConformance(t, func(t *testing.T) dht.DHT {
		_, ring := buildRing(t, 10)
		return ring
	})
}

func TestFaultTolerance(t *testing.T) {
	dhttest.RunFaultTolerance(t, func(t *testing.T) dht.DHT {
		_, ring := buildRing(t, 10)
		return ring
	})
}

// TestLookupUnderLoss runs the shared lookup-under-loss conformance case:
// seeded link loss, bounded retries, ≥90% resolution, no terminal errors.
func TestLookupUnderLoss(t *testing.T) {
	dhttest.RunLookupUnderLoss(t, func(t *testing.T, seed int64) (dht.DHT, func(float64)) {
		net := simnet.New(simnet.Options{Seed: seed})
		ring := NewRing(net, Config{Seed: seed, Replication: 3})
		for i := 0; i < 12; i++ {
			if _, err := ring.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
				t.Fatalf("AddNode(%d): %v", i, err)
			}
		}
		ring.Stabilize(2)
		return ring, net.SetDropRate
	})
}
