package chord

import "mlight/internal/transport"

// Register every chord RPC message with the transport codec so rings run
// unchanged over framed TCP. applyReq is deliberately absent: it carries a
// closure, which only an inline transport can deliver — over the wire,
// Ring.Apply uses the dht versioned-CAS protocol instead.
func init() {
	transport.RegisterType(ref{})
	transport.RegisterType([]ref(nil))
	transport.RegisterType(pingReq{})
	transport.RegisterType(getPredReq{})
	transport.RegisterType(getSuccsReq{})
	transport.RegisterType(notifyReq{})
	transport.RegisterType(lookupStepReq{})
	transport.RegisterType(lookupStepResp{})
	transport.RegisterType(storeReq{})
	transport.RegisterType(retrieveReq{})
	transport.RegisterType(retrieveResp{})
	transport.RegisterType(removeReq{})
	transport.RegisterType(applyResp{})
	transport.RegisterType(handoffReq{})
	transport.RegisterType(claimReq{})
	transport.RegisterType(claimResp{})
	transport.RegisterType(setPredReq{})
	transport.RegisterType(setSuccReq{})
	transport.RegisterType(replicateReq{})
	transport.RegisterType(dropReplicaReq{})
	transport.RegisterType(offerReq{})
}
