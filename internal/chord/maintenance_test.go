package chord

import (
	"strings"
	"testing"
)

// TestMaintenanceErrorsCountNotifyFailures pins the fix for the last
// fire-and-forget maintenance RPC: a notify lost to the network must land
// in MaintenanceErrors/LastMaintenanceError instead of vanishing in a
// `_, _ =` assignment.
func TestMaintenanceErrorsCountNotifyFailures(t *testing.T) {
	ring := buildReplicatedRing(t, 8, 1)
	if got := ring.MaintenanceErrors.Load(); got != 0 {
		t.Fatalf("MaintenanceErrors = %d on a healthy ring, want 0", got)
	}
	if err := ring.LastMaintenanceError(); err != nil {
		t.Fatalf("LastMaintenanceError = %v on a healthy ring, want nil", err)
	}

	ringNet(ring).SetDropRate(1.0)
	ring.Stabilize(1)
	if got := ring.MaintenanceErrors.Load(); got == 0 {
		t.Fatal("MaintenanceErrors = 0 after stabilizing under total loss, want > 0")
	}
	err := ring.LastMaintenanceError()
	if err == nil {
		t.Fatal("LastMaintenanceError = nil after dropped notifies")
	}
	if !strings.Contains(err.Error(), "notify") {
		t.Fatalf("LastMaintenanceError = %v, want a notify failure", err)
	}

	// Repair: once the network heals, rounds stop accumulating errors.
	ringNet(ring).SetDropRate(0)
	before := ring.MaintenanceErrors.Load()
	ring.Stabilize(2)
	if got := ring.MaintenanceErrors.Load(); got != before {
		t.Fatalf("MaintenanceErrors grew from %d to %d on a healed network", before, got)
	}
}
