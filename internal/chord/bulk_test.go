package chord

import (
	"fmt"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/simnet"
)

// TestBulkBuildMatchesIncrementalFixpoint: a bulk-built ring must hold
// exactly the routing state an incrementally-joined, fully-stabilized ring
// converges to — same predecessors, successor lists, and finger tables.
func TestBulkBuildMatchesIncrementalFixpoint(t *testing.T) {
	const n = 24
	addrs := make([]simnet.NodeID, n)
	for i := range addrs {
		addrs[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
	}

	_, incr := buildRing(t, n)
	incr.Stabilize(6) // well past convergence

	bnet := simnet.New(simnet.Options{})
	bulk := NewRing(bnet, Config{Seed: 1})
	if _, err := bulk.AddNodesBulk(addrs); err != nil {
		t.Fatal(err)
	}

	for _, addr := range addrs {
		in, _ := incr.node(addr)
		bn, _ := bulk.node(addr)
		in.mu.Lock()
		ipred, isuccs, ifingers := in.pred, append([]ref(nil), in.succs...), in.fingers
		in.mu.Unlock()
		bn.mu.Lock()
		bpred, bsuccs, bfingers := bn.pred, append([]ref(nil), bn.succs...), bn.fingers
		bn.mu.Unlock()
		if ipred != bpred {
			t.Errorf("%s: pred %v vs %v", addr, ipred.Addr, bpred.Addr)
		}
		if len(isuccs) != len(bsuccs) {
			t.Fatalf("%s: succ list %d vs %d", addr, len(isuccs), len(bsuccs))
		}
		for i := range isuccs {
			if isuccs[i] != bsuccs[i] {
				t.Errorf("%s: succ[%d] %v vs %v", addr, i, isuccs[i].Addr, bsuccs[i].Addr)
			}
		}
		for i := range ifingers {
			if ifingers[i] != bfingers[i] {
				t.Errorf("%s: finger[%d] %v vs %v", addr, i, ifingers[i].Addr, bfingers[i].Addr)
			}
		}
	}
}

// TestBulkBuildServesData: the bulk-built overlay routes and stores
// correctly, and every lookup lands on the oracle owner.
func TestBulkBuildServesData(t *testing.T) {
	const n = 32
	addrs := make([]simnet.NodeID, n)
	for i := range addrs {
		addrs[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
	}
	net := simnet.New(simnet.Options{})
	ring := NewRing(net, Config{Seed: 1})
	if _, err := ring.AddNodesBulk(addrs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := dht.Key(fmt.Sprintf("k%d", i))
		if owner, err := ring.Owner(key); err != nil || simnet.NodeID(owner) != oracleOwner(ring, key) {
			t.Fatalf("Owner(%s) = %q (%v), oracle %q", key, owner, err, oracleOwner(ring, key))
		}
		if err := ring.Put(key, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		key := dht.Key(fmt.Sprintf("k%d", i))
		v, ok, err := ring.Get(key)
		if err != nil || !ok || v != i {
			t.Fatalf("Get(%s) = %v %v %v", key, v, ok, err)
		}
	}
	if mrl := ring.MeanRouteLength(); mrl <= 0 || mrl > 10 {
		t.Fatalf("mean route length %.2f implausible for %d nodes", mrl, n)
	}
	// Stabilization over the bulk-built state must be a no-op (it is already
	// the fixpoint) — data keeps being served.
	ring.Stabilize(2)
	if v, ok, err := ring.Get("k0"); err != nil || !ok || v != 0 {
		t.Fatalf("post-stabilize Get = %v %v %v", v, ok, err)
	}
}

// TestBulkBuildRejectsBadInput covers the preconditions.
func TestBulkBuildRejectsBadInput(t *testing.T) {
	net := simnet.New(simnet.Options{})
	ring := NewRing(net, Config{Seed: 1})
	if _, err := ring.AddNodesBulk(nil); err == nil {
		t.Error("empty address list accepted")
	}
	if _, err := ring.AddNodesBulk([]simnet.NodeID{"a", "a"}); err == nil {
		t.Error("duplicate addresses accepted")
	}
	if net.NumNodes() != 0 {
		t.Fatalf("failed bulk build leaked %d registrations", net.NumNodes())
	}
	if _, err := ring.AddNodesBulk([]simnet.NodeID{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ring.AddNodesBulk([]simnet.NodeID{"c"}); err == nil {
		t.Error("bulk build on a non-empty ring accepted")
	}
	// Singleton ring sanity.
	net2 := simnet.New(simnet.Options{})
	ring2 := NewRing(net2, Config{Seed: 1})
	if _, err := ring2.AddNodesBulk([]simnet.NodeID{"solo"}); err != nil {
		t.Fatal(err)
	}
	if err := ring2.Put("k", 1); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := ring2.Get("k"); err != nil || !ok || v != 1 {
		t.Fatalf("singleton Get = %v %v %v", v, ok, err)
	}
}

// BenchmarkBulkBuild wires a complete 1k-node ring per iteration — the
// operation that makes the 100k-peer scale run feasible (O(n log n) direct
// wiring vs O(n²) incremental join traffic).
func BenchmarkBulkBuild(b *testing.B) {
	const n = 1000
	addrs := make([]simnet.NodeID, n)
	for i := range addrs {
		addrs[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ring := NewRing(simnet.New(simnet.Options{}), Config{Seed: 1})
		if _, err := ring.AddNodesBulk(addrs); err != nil {
			b.Fatal(err)
		}
	}
}
