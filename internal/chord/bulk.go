package chord

import (
	"fmt"
	"sort"

	"mlight/internal/dht"
	"mlight/internal/transport"
)

// AddNodesBulk builds a complete ring from scratch in one pass. Joining
// 100k peers through AddNode is O(n²): every join routes lookups through
// the growing overlay and every fixFingers resolves 160 targets by
// iterative routing. When the whole membership is known up front — the
// scale experiments' case — none of that traffic is necessary: sort the
// identifiers once and wire every successor list, predecessor pointer, and
// finger table directly by binary search, with zero RPCs. The resulting
// state is exactly the fixpoint that Stabilize would converge to.
//
// The ring must be empty (no nodes, no remote seeds) and the addresses
// must be distinct. On error no node stays registered on the transport.
func (r *Ring) AddNodesBulk(addrs []transport.NodeID) ([]*Node, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("chord: bulk build needs at least one address")
	}
	r.mu.Lock()
	empty := len(r.nodes) == 0 && len(r.crashed) == 0 && len(r.seeds) == 0
	r.mu.Unlock()
	if !empty {
		return nil, fmt.Errorf("chord: bulk build requires an empty ring")
	}

	nodes := make([]*Node, 0, len(addrs))
	fail := func(err error) ([]*Node, error) {
		for _, n := range nodes {
			r.net.Deregister(n.addr)
		}
		return nil, err
	}
	seen := make(map[transport.NodeID]bool, len(addrs))
	for _, addr := range addrs {
		if seen[addr] {
			return fail(fmt.Errorf("chord: bulk build: duplicate address %q", addr))
		}
		seen[addr] = true
		n, err := newNode(r.net, addr)
		if err != nil {
			return fail(err)
		}
		nodes = append(nodes, n)
	}

	// Ring order: ascending identifier.
	byID := make([]*Node, len(nodes))
	copy(byID, nodes)
	sort.Slice(byID, func(i, j int) bool { return byID[i].id.Cmp(byID[j].id) < 0 })
	refs := make([]ref, len(byID))
	for i, n := range byID {
		refs[i] = n.self()
	}

	// succAt finds the owner of target: the first identifier at or after it,
	// wrapping past zero.
	succAt := func(target dht.ID) ref {
		i := sort.Search(len(refs), func(i int) bool { return refs[i].ID.Cmp(target) >= 0 })
		if i == len(refs) {
			i = 0
		}
		return refs[i]
	}

	n := len(byID)
	for i, node := range byID {
		node.mu.Lock()
		node.pred = refs[(i-1+n)%n]
		succs := make([]ref, 0, SuccessorListLen)
		for k := 1; k <= SuccessorListLen && k <= n; k++ {
			succs = append(succs, refs[(i+k)%n])
		}
		if n == 1 {
			succs = []ref{refs[0]}
		}
		node.succs = succs
		for k := 0; k < dht.IDBits; k++ {
			node.fingers[k] = succAt(node.id.AddPowerOfTwo(k))
		}
		node.mu.Unlock()
	}

	r.mu.Lock()
	for _, node := range nodes {
		r.nodes[node.addr] = node
	}
	r.order = r.order[:0]
	for _, addr := range addrs {
		r.order = append(r.order, addr)
	}
	sort.Slice(r.order, func(i, j int) bool { return r.order[i] < r.order[j] })
	r.mu.Unlock()
	return nodes, nil
}
