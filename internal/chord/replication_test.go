package chord

import (
	"fmt"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/simnet"
)

// buildReplicatedRing creates a stabilized ring with the given replication
// factor.
func buildReplicatedRing(t *testing.T, n, replication int) *Ring {
	t.Helper()
	net := simnet.New(simnet.Options{})
	ring := NewRing(net, Config{Seed: 1, Replication: replication})
	for i := 0; i < n; i++ {
		if _, err := ring.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatalf("AddNode(%d): %v", i, err)
		}
	}
	ring.Stabilize(2)
	return ring
}

func TestReplicationSurvivesSingleCrash(t *testing.T) {
	ring := buildReplicatedRing(t, 12, 3)
	for i := 0; i < 300; i++ {
		if err := ring.Put(dht.Key(fmt.Sprintf("rk%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	ring.Stabilize(1) // settle replica placement
	if err := ring.CrashNode("node-5"); err != nil {
		t.Fatal(err)
	}
	ring.Stabilize(2)
	for i := 0; i < 300; i++ {
		k := dht.Key(fmt.Sprintf("rk%d", i))
		v, ok, err := ring.Get(k)
		if err != nil || !ok || v != i {
			t.Fatalf("after crash Get(%q) = %v, %v, %v", k, v, ok, err)
		}
	}
}

func TestReplicationSurvivesTwoCrashes(t *testing.T) {
	ring := buildReplicatedRing(t, 16, 3)
	for i := 0; i < 300; i++ {
		if err := ring.Put(dht.Key(fmt.Sprintf("dk%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	ring.Stabilize(1)
	// Crash two nodes with stabilization between them (sequential failures,
	// the scenario r=3 is built for).
	if err := ring.CrashNode("node-3"); err != nil {
		t.Fatal(err)
	}
	ring.Stabilize(2)
	if err := ring.CrashNode("node-9"); err != nil {
		t.Fatal(err)
	}
	ring.Stabilize(2)
	lost := 0
	for i := 0; i < 300; i++ {
		k := dht.Key(fmt.Sprintf("dk%d", i))
		v, ok, err := ring.Get(k)
		if err != nil || !ok || v != i {
			lost++
		}
	}
	if lost != 0 {
		t.Errorf("%d of 300 keys lost after two sequential crashes with r=3", lost)
	}
}

func TestNoReplicationLosesDataOnCrash(t *testing.T) {
	ring := buildReplicatedRing(t, 12, 1)
	for i := 0; i < 300; i++ {
		if err := ring.Put(dht.Key(fmt.Sprintf("nk%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	victim := "node-4"
	n, _ := ring.node(simnet.NodeID(victim))
	atRisk := n.StoreLen()
	if atRisk == 0 {
		t.Skip("victim holds no keys in this hash layout")
	}
	if err := ring.CrashNode(simnet.NodeID(victim)); err != nil {
		t.Fatal(err)
	}
	ring.Stabilize(2)
	lost := 0
	for i := 0; i < 300; i++ {
		// An unreachable key counts as lost whether the miss is a clean
		// not-found or a routing error to the dead node.
		if _, ok, err := ring.Get(dht.Key(fmt.Sprintf("nk%d", i))); err != nil || !ok {
			lost++
		}
	}
	if lost != atRisk {
		t.Errorf("lost %d keys, expected exactly the victim's %d (r=1)", lost, atRisk)
	}
}

func TestReplicationApplySurvivesCrash(t *testing.T) {
	ring := buildReplicatedRing(t, 10, 2)
	inc := func(cur any, ok bool) (any, bool) {
		if !ok {
			return 1, true
		}
		n, _ := cur.(int)
		return n + 1, true
	}
	for i := 0; i < 5; i++ {
		if err := ring.Apply("counter", inc); err != nil {
			t.Fatal(err)
		}
	}
	ring.Stabilize(1)
	owner, err := ring.Owner("counter")
	if err != nil {
		t.Fatal(err)
	}
	if err := ring.CrashNode(simnet.NodeID(owner)); err != nil {
		t.Fatal(err)
	}
	ring.Stabilize(2)
	v, ok, err := ring.Get("counter")
	if err != nil || !ok || v != 5 {
		t.Fatalf("counter after owner crash = %v, %v, %v", v, ok, err)
	}
	// Further applies keep working on the promoted copy.
	if err := ring.Apply("counter", inc); err != nil {
		t.Fatal(err)
	}
	if v, _, err := ring.Get("counter"); err != nil {
		t.Fatal(err)
	} else if v != 6 {
		t.Fatalf("counter after post-crash apply = %v", v)
	}
}

func TestReplicationRemoveDropsReplicas(t *testing.T) {
	ring := buildReplicatedRing(t, 8, 3)
	if err := ring.Put("gone", "x"); err != nil {
		t.Fatal(err)
	}
	ring.Stabilize(1)
	if err := ring.Remove("gone"); err != nil {
		t.Fatal(err)
	}
	ring.Stabilize(1)
	// Even after the owner crashes, no replica resurrects the key.
	owner, err := ring.Owner("gone")
	if err != nil {
		t.Fatal(err)
	}
	if err := ring.CrashNode(simnet.NodeID(owner)); err != nil {
		t.Fatal(err)
	}
	ring.Stabilize(2)
	if _, ok, err := ring.Get("gone"); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Error("removed key resurrected from a replica")
	}
}

// TestReplicationConvergesUnderLoss is the regression test for the silent
// replica-loss bug: replication RPC errors used to be discarded
// (`_, _ = net.Call(...)`), so a lossy network quietly shrank the replica
// set with no trace. Now pushes are retried, terminal failures are counted
// in ReplicationErrors, and periodic repair re-pushes entries until the
// replica set converges.
func TestReplicationConvergesUnderLoss(t *testing.T) {
	const keys = 200
	net := simnet.New(simnet.Options{Seed: 42})
	ring := NewRing(net, Config{Seed: 1, Replication: 3})
	for i := 0; i < 12; i++ {
		if _, err := ring.AddNode(simnet.NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatalf("AddNode(%d): %v", i, err)
		}
	}
	ring.Stabilize(2)

	// Write through a lossy network. Client-side Put retries mimic what the
	// dht.Resilient layer does for an index; the replica pushes inside Put
	// go through the ring's own retry layer.
	net.SetDropRate(0.1)
	for i := 0; i < keys; i++ {
		k := dht.Key(fmt.Sprintf("lk%d", i))
		var err error
		for attempt := 0; attempt < 8; attempt++ {
			if err = ring.Put(k, i); err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("Put(%q) kept failing: %v", k, err)
		}
	}
	st := ring.ReplicationRetrier().Stats().Snapshot()
	if st.Retries == 0 {
		t.Error("no replication retries at DropRate 0.1 — retry layer not exercised")
	}

	// Heal the network and run one repair round: the replica set must
	// converge to exactly r-1 copies of every key.
	net.SetDropRate(0)
	ring.Stabilize(1)
	primaries, replicas := 0, 0
	for _, addr := range ring.Nodes() {
		n, _ := ring.node(addr)
		primaries += n.StoreLen()
		replicas += n.ReplicaLen()
	}
	if primaries != keys {
		t.Errorf("primary copies = %d, want %d", primaries, keys)
	}
	if replicas != 2*keys {
		t.Errorf("replica copies after repair = %d, want %d (r=3)", replicas, 2*keys)
	}

	// The converged replicas are real: all keys survive a crash.
	if err := ring.CrashNode("node-7"); err != nil {
		t.Fatal(err)
	}
	ring.Stabilize(2)
	for i := 0; i < keys; i++ {
		k := dht.Key(fmt.Sprintf("lk%d", i))
		v, ok, err := ring.Get(k)
		if err != nil || !ok || v != i {
			t.Fatalf("after crash Get(%q) = %v, %v, %v", k, v, ok, err)
		}
	}
}

// TestReplicationErrorsSurfaced: when every retry is exhausted the failure
// is counted and retrievable, not silently swallowed.
func TestReplicationErrorsSurfaced(t *testing.T) {
	ring := buildReplicatedRing(t, 8, 3)
	if err := ring.Put("sk", 1); err != nil {
		t.Fatal(err)
	}
	if got := ring.ReplicationErrors.Load(); got != 0 {
		t.Fatalf("ReplicationErrors on a healthy ring = %d, want 0", got)
	}
	// A fully lossy network defeats the retry budget.
	owner := mustOwnerRef(t, ring, "sk")
	net := ringNet(ring)
	net.SetDropRate(1.0)
	ring.replicate(owner, "sk", 2)
	net.SetDropRate(0)
	if got := ring.ReplicationErrors.Load(); got == 0 {
		t.Error("ReplicationErrors = 0 after pushes through a fully lossy network")
	}
	if err := ring.LastReplicationError(); err == nil {
		t.Error("LastReplicationError = nil, want the exhausted push error")
	}
}

func ringNet(r *Ring) *simnet.Network { return r.net.(*simnet.Network) }

func mustOwnerRef(t *testing.T, r *Ring, key dht.Key) ref {
	t.Helper()
	owner, err := r.findSuccessor(dht.HashKey(key))
	if err != nil {
		t.Fatal(err)
	}
	return owner
}

func TestReplicationFactorClamped(t *testing.T) {
	net := simnet.New(simnet.Options{})
	ring := NewRing(net, Config{Replication: 99})
	if ring.replication != SuccessorListLen+1 {
		t.Errorf("replication = %d, want clamp at %d", ring.replication, SuccessorListLen+1)
	}
	ring2 := NewRing(simnet.New(simnet.Options{}), Config{Replication: -3})
	if ring2.replication != 1 {
		t.Errorf("replication = %d, want 1", ring2.replication)
	}
}

func TestReplicasAreBounded(t *testing.T) {
	ring := buildReplicatedRing(t, 10, 2)
	for i := 0; i < 200; i++ {
		if err := ring.Put(dht.Key(fmt.Sprintf("bk%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	ring.Stabilize(2)
	// Total primary copies = 200; replica copies ≤ 200 * (r-1).
	primaries, replicas := 0, 0
	for _, addr := range ring.Nodes() {
		n, _ := ring.node(addr)
		primaries += n.StoreLen()
		replicas += n.ReplicaLen()
	}
	if primaries != 200 {
		t.Errorf("primary copies = %d, want 200", primaries)
	}
	if replicas > 200 {
		t.Errorf("replica copies = %d, want ≤ 200 for r=2", replicas)
	}
	if replicas < 150 {
		t.Errorf("replica copies = %d; repair seems not to be running", replicas)
	}
}

// countCopiesPerKey tallies, across all live nodes, how many primary and
// replica copies each key has.
func countCopiesPerKey(ring *Ring) (primaries map[dht.Key]int, replicas map[dht.Key]int) {
	primaries = make(map[dht.Key]int)
	replicas = make(map[dht.Key]int)
	for _, addr := range ring.Nodes() {
		n, _ := ring.node(addr)
		n.mu.Lock()
		for k := range n.store {
			primaries[k]++
		}
		for k := range n.replicas {
			replicas[k]++
		}
		n.mu.Unlock()
	}
	return primaries, replicas
}

// TestReplicaPlacementExactAfterRestartCycle is the regression test for the
// stale-replica leak: reReplicate only ever added copies, so when a crashed
// node restarted and reclaimed its keyspace, the nodes that had covered for
// it kept their now-stale copies forever — over-counted replica sets that
// serve stale reads and resurrect deleted keys on promotion. With the
// replica lease in place, the copy count per key must return to exactly
// r-1 after a full crash → failover → restart → reconverge cycle.
func TestReplicaPlacementExactAfterRestartCycle(t *testing.T) {
	const keys = 200
	ring := buildReplicatedRing(t, 12, 3)
	for i := 0; i < keys; i++ {
		if err := ring.Put(dht.Key(fmt.Sprintf("xk%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	ring.Stabilize(2)

	checkExact := func(stage string) {
		t.Helper()
		primaries, replicas := countCopiesPerKey(ring)
		for i := 0; i < keys; i++ {
			k := dht.Key(fmt.Sprintf("xk%d", i))
			if primaries[k] != 1 {
				t.Errorf("%s: key %q has %d primary copies, want exactly 1", stage, k, primaries[k])
			}
			if replicas[k] != 2 {
				t.Errorf("%s: key %q has %d replica copies, want exactly 2 (r=3)", stage, k, replicas[k])
			}
		}
		if t.Failed() {
			t.FailNow()
		}
	}
	checkExact("before churn")

	if err := ring.CrashNode("node-5"); err != nil {
		t.Fatal(err)
	}
	ring.Stabilize(3) // failover + lease expiry of displaced copies
	checkExact("after crash")

	if _, err := ring.RestartNode("node-5"); err != nil {
		t.Fatal(err)
	}
	ring.Stabilize(3) // rejoin, reclaim, and lease expiry of stale copies
	checkExact("after restart")

	for i := 0; i < keys; i++ {
		k := dht.Key(fmt.Sprintf("xk%d", i))
		v, ok, err := ring.Get(k)
		if err != nil || !ok || v != i {
			t.Fatalf("after restart cycle Get(%q) = %v, %v, %v", k, v, ok, err)
		}
	}
}
