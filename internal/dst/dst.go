// Package dst implements the Distributed Segment Tree (Zheng et al., IPTPS
// 2006; Shen et al., MSR-TR 2007) over the generic dht.DHT interface — the
// second baseline of the m-LIGHT evaluation. Multi-dimensional keys are
// linearised with the z-order curve, and the segment tree is the complete
// binary tree of z-prefixes up to a fixed height D.
//
// DST's design point is O(1)-latency range queries: every internal node
// replicates the records of its whole subtree, so a range decomposed into
// canonical (maximal fully-covered) cells is answered with one parallel
// round of DHT-lookups. The costs the m-LIGHT paper measures follow
// directly:
//
//   - every insert writes the record at all D+1 ancestors (minus saturated
//     ones) — an order of magnitude more data movement than m-LIGHT;
//   - a node saturates at its capacity γ and stops replicating; queries
//     hitting a saturated node must descend, which is why DST's latency
//     grows sharply with the queried range;
//   - with D larger than the data's real depth, a query range decomposes
//     into very many small canonical cells along its boundary, which is
//     why DST's query bandwidth is an order of magnitude above m-LIGHT's
//     (§7.4 of the m-LIGHT paper).
package dst

import (
	"fmt"

	"mlight/internal/bitlabel"
	"mlight/internal/dht"
	"mlight/internal/index"
	"mlight/internal/metrics"
	"mlight/internal/spatial"
	"mlight/internal/trace"
)

// node is the stored value of one segment-tree node.
type node struct {
	Label bitlabel.Label
	// Saturated marks a node that reached capacity and stopped
	// replicating; its record set is a subset and must not answer queries.
	Saturated bool
	Records   []spatial.Record
}

// Options configures an Index.
type Options struct {
	// Dims is the data dimensionality m. Default 2.
	Dims int
	// Height is D, the fixed tree height (bits of the z-order key).
	// Default 28, the m-LIGHT evaluation's setting.
	Height int
	// NodeCapacity is γ, the records an internal node replicates before it
	// saturates. Leaf-level nodes never saturate. Default 100.
	NodeCapacity int
	// Retry, when non-nil, interposes a dht.Resilient fault-tolerance layer
	// between the index and the substrate (see core.Options.Retry). Nil
	// leaves the substrate unwrapped.
	Retry *dht.RetryPolicy
	// Trace, when non-nil, records operation spans (queries and retry
	// attempts) into the collector. Nil — the default — disables tracing.
	Trace *trace.Collector
}

// Apply implements index.Option: the whole struct overwrites the unified
// tuning surface, so place it first when mixing with functional options.
func (o Options) Apply(t *index.Tuning) {
	*t = index.Tuning{
		Dims:     o.Dims,
		MaxDepth: o.Height,
		Capacity: o.NodeCapacity,
		Retry:    o.Retry,
		Trace:    o.Trace,
	}
}

// FromTuning maps the unified tuning surface onto DST's vocabulary,
// ignoring fields DST has no counterpart for.
func FromTuning(t index.Tuning) Options {
	return Options{
		Dims:         t.Dims,
		Height:       t.MaxDepth,
		NodeCapacity: t.Capacity,
		Retry:        t.Retry,
		Trace:        t.Trace,
	}
}

func (o Options) withDefaults() Options {
	if o.Dims == 0 {
		o.Dims = 2
	}
	if o.Height == 0 {
		o.Height = 28
	}
	if o.NodeCapacity == 0 {
		o.NodeCapacity = 100
	}
	return o
}

func (o Options) validate() error {
	if o.Dims < 1 {
		return fmt.Errorf("dst: Dims must be ≥ 1, got %d", o.Dims)
	}
	if o.Height < 1 || o.Height > bitlabel.MaxLen {
		return fmt.Errorf("dst: Height %d out of range", o.Height)
	}
	if o.NodeCapacity < 1 {
		return fmt.Errorf("dst: NodeCapacity must be ≥ 1, got %d", o.NodeCapacity)
	}
	return nil
}

// Index is a DST client bound to a DHT substrate.
type Index struct {
	opts  Options
	d     *dht.Counting
	stats *metrics.IndexStats
}

var _ index.Querier = (*Index)(nil)

// New creates a DST client over d. The segment tree needs no bootstrap:
// nodes materialise on first insert.
func New(d dht.DHT, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	stats := &metrics.IndexStats{}
	if opts.Retry != nil {
		res := dht.NewResilient(d, *opts.Retry, nil)
		res.SetTracer(opts.Trace)
		d = res
	}
	return &Index{opts: opts, d: dht.NewCounting(d, stats), stats: stats}, nil
}

func labelKey(l bitlabel.Label) dht.Key {
	return dht.Key("dst/" + l.Key())
}

// Stats returns a snapshot of the maintenance counters.
func (ix *Index) Stats() metrics.Snapshot { return ix.stats.Snapshot() }

// ResetStats zeroes the maintenance counters.
func (ix *Index) ResetStats() { ix.stats.Reset() }

// Options returns the resolved configuration.
func (ix *Index) Options() Options { return ix.opts }

// Insert replicates the record at every node on its root-to-leaf path —
// D+1 DHT operations. Saturated nodes skip the append (no movement), and a
// node that reaches capacity saturates; the leaf level always stores.
func (ix *Index) Insert(rec spatial.Record) error {
	m := ix.opts.Dims
	if rec.Key.Dim() != m {
		return fmt.Errorf("dst: record has %d dims, index has %d", rec.Key.Dim(), m)
	}
	if !rec.Key.Valid() {
		return fmt.Errorf("dst: record key %v outside the unit cube", rec.Key)
	}
	z, err := bitlabel.PathLabelNoRoot(rec.Key, ix.opts.Height)
	if err != nil {
		return err
	}
	for depth := 0; depth <= z.Len(); depth++ {
		label := z.Prefix(depth)
		isLeafLevel := depth == z.Len()
		stored := false
		applyErr := ix.d.Apply(labelKey(label), func(cur any, exists bool) (any, bool) {
			n := node{Label: label}
			if exists {
				var ok bool
				if n, ok = cur.(node); !ok {
					return cur, true
				}
			}
			if n.Saturated {
				return n, true
			}
			if !isLeafLevel && len(n.Records) >= ix.opts.NodeCapacity {
				n.Saturated = true
				return n, true
			}
			n.Records = append(append([]spatial.Record{}, n.Records...), rec)
			stored = true
			return n, true
		})
		if applyErr != nil {
			return fmt.Errorf("dst: insert at %v: %w", label, applyErr)
		}
		if stored {
			ix.stats.RecordsMoved.Inc()
		}
	}
	return nil
}

// Delete removes one matching record from every node on its path (D+1 DHT
// operations). Saturation is sticky, as in the original design.
func (ix *Index) Delete(key spatial.Point, data string) (bool, error) {
	m := ix.opts.Dims
	if key.Dim() != m {
		return false, fmt.Errorf("dst: key has %d dims, index has %d", key.Dim(), m)
	}
	z, err := bitlabel.PathLabelNoRoot(key, ix.opts.Height)
	if err != nil {
		return false, err
	}
	removedAny := false
	for depth := 0; depth <= z.Len(); depth++ {
		label := z.Prefix(depth)
		applyErr := ix.d.Apply(labelKey(label), func(cur any, exists bool) (any, bool) {
			if !exists {
				return nil, false
			}
			n, ok := cur.(node)
			if !ok {
				return cur, true
			}
			for i, r := range n.Records {
				if samePoint(r.Key, key) && (data == "" || r.Data == data) {
					records := append([]spatial.Record{}, n.Records[:i]...)
					records = append(records, n.Records[i+1:]...)
					n.Records = records
					removedAny = true
					break
				}
			}
			return n, true
		})
		if applyErr != nil {
			return false, fmt.Errorf("dst: delete at %v: %w", label, applyErr)
		}
	}
	return removedAny, nil
}

// Lookup answers an exact-match query with a single DHT-lookup at the leaf
// level — DST's strength.
func (ix *Index) Lookup(key spatial.Point) ([]spatial.Record, error) {
	m := ix.opts.Dims
	if key.Dim() != m {
		return nil, fmt.Errorf("dst: key has %d dims, index has %d", key.Dim(), m)
	}
	z, err := bitlabel.PathLabelNoRoot(key, ix.opts.Height)
	if err != nil {
		return nil, err
	}
	n, found, err := ix.getNode(z, nil)
	if err != nil || !found {
		return nil, err
	}
	var out []spatial.Record
	for _, r := range n.Records {
		if samePoint(r.Key, key) {
			out = append(out, r)
		}
	}
	return out, nil
}

func (ix *Index) getNode(l bitlabel.Label, probes *int) (node, bool, error) {
	if probes != nil {
		*probes++
	}
	v, found, err := ix.d.Get(labelKey(l))
	if err != nil {
		return node{}, false, fmt.Errorf("dst: get %v: %w", l, err)
	}
	if !found {
		return node{}, false, nil
	}
	n, ok := v.(node)
	if !ok {
		return node{}, false, fmt.Errorf("dst: key %v holds %T", l, v)
	}
	return n, true, nil
}

func samePoint(a, b spatial.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
