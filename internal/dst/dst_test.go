package dst

import (
	"fmt"
	"math/rand"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/spatial"
)

func newIndex(t *testing.T, opts Options) *Index {
	t.Helper()
	ix, err := New(dht.MustNewLocal(16), opts)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func randomPoints(rng *rand.Rand, m, n int) []spatial.Point {
	out := make([]spatial.Point, n)
	for i := range out {
		p := make(spatial.Point, m)
		for d := range p {
			p[d] = rng.Float64()
		}
		out[i] = p
	}
	return out
}

func TestOptionsValidation(t *testing.T) {
	d := dht.MustNewLocal(2)
	bad := []Options{
		{Dims: -1},
		{Dims: 2, Height: 100},
		{Dims: 2, NodeCapacity: -1},
	}
	for i, o := range bad {
		if _, err := New(d, o); err == nil {
			t.Errorf("case %d accepted: %+v", i, o)
		}
	}
	ix := newIndex(t, Options{})
	o := ix.Options()
	if o.Dims != 2 || o.Height != 28 || o.NodeCapacity != 100 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestInsertLookup(t *testing.T) {
	ix := newIndex(t, Options{Height: 20, NodeCapacity: 8})
	rng := rand.New(rand.NewSource(1))
	points := randomPoints(rng, 2, 150)
	for i, p := range points {
		if err := ix.Insert(spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatalf("Insert #%d: %v", i, err)
		}
	}
	for i, p := range points {
		recs, err := ix.Lookup(p)
		if err != nil {
			t.Fatalf("Lookup(%v): %v", p, err)
		}
		if len(recs) != 1 || recs[0].Data != fmt.Sprintf("r%d", i) {
			t.Fatalf("Lookup(%v) = %v", p, recs)
		}
	}
	if recs, err := ix.Lookup(spatial.Point{0.123, 0.987}); err != nil || len(recs) != 0 {
		t.Errorf("Lookup(absent) = %v, %v", recs, err)
	}
	if _, err := ix.Lookup(spatial.Point{0.5}); err == nil {
		t.Error("wrong-dim lookup accepted")
	}
	if err := ix.Insert(spatial.Record{Key: spatial.Point{0.5}}); err == nil {
		t.Error("wrong-dim insert accepted")
	}
	if err := ix.Insert(spatial.Record{Key: spatial.Point{3, 3}}); err == nil {
		t.Error("out-of-cube insert accepted")
	}
}

func TestReplicationCost(t *testing.T) {
	// With a large capacity nothing saturates: every insert stores at all
	// Height+1 levels and costs Height+1 DHT operations.
	height := 12
	ix := newIndex(t, Options{Height: height, NodeCapacity: 1000})
	before := ix.Stats()
	if err := ix.Insert(spatial.Record{Key: spatial.Point{0.3, 0.7}}); err != nil {
		t.Fatal(err)
	}
	delta := ix.Stats().Sub(before)
	if want := int64(height + 1); delta.DHTLookups != want {
		t.Errorf("DHTLookups per insert = %d, want %d", delta.DHTLookups, want)
	}
	if want := int64(height + 1); delta.RecordsMoved != want {
		t.Errorf("RecordsMoved per insert = %d, want %d", delta.RecordsMoved, want)
	}
}

func TestSaturationReducesMovement(t *testing.T) {
	// With capacity 1, upper levels saturate almost immediately: movement
	// per insert drops well below Height+1 while lookups stay at Height+1.
	height := 16
	ix := newIndex(t, Options{Height: height, NodeCapacity: 1})
	rng := rand.New(rand.NewSource(2))
	for _, p := range randomPoints(rng, 2, 64) {
		if err := ix.Insert(spatial.Record{Key: p}); err != nil {
			t.Fatal(err)
		}
	}
	s := ix.Stats()
	if want := int64(64 * (height + 1)); s.DHTLookups != want {
		t.Errorf("DHTLookups = %d, want %d", s.DHTLookups, want)
	}
	// With 64 records the top ~6 levels saturate: replication stops there,
	// so movement must fall well below full replication (= DHTLookups).
	if s.RecordsMoved > s.DHTLookups*3/4 {
		t.Errorf("saturation did not reduce movement: moved=%d lookups=%d", s.RecordsMoved, s.DHTLookups)
	}
}

func TestRangeAgainstScan(t *testing.T) {
	for _, m := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("m%d", m), func(t *testing.T) {
			ix := newIndex(t, Options{Dims: m, Height: 14, NodeCapacity: 10})
			rng := rand.New(rand.NewSource(int64(m)))
			points := randomPoints(rng, m, 500)
			var records []spatial.Record
			for i, p := range points {
				rec := spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}
				records = append(records, rec)
				if err := ix.Insert(rec); err != nil {
					t.Fatal(err)
				}
			}
			for trial := 0; trial < 40; trial++ {
				q := randomRect(rng, m)
				want := 0
				for _, r := range records {
					if q.Contains(r.Key) {
						want++
					}
				}
				res, err := ix.RangeQuery(q)
				if err != nil {
					t.Fatalf("RangeQuery(%v): %v", q, err)
				}
				if len(res.Records) != want {
					t.Fatalf("RangeQuery(%v) = %d, scan %d", q, len(res.Records), want)
				}
				if res.Lookups < 1 || res.Rounds < 1 {
					t.Fatalf("implausible cost %+v", res)
				}
			}
		})
	}
}

func randomRect(rng *rand.Rand, m int) spatial.Rect {
	lo := make(spatial.Point, m)
	hi := make(spatial.Point, m)
	for d := 0; d < m; d++ {
		a, b := rng.Float64(), rng.Float64()
		if a > b {
			a, b = b, a
		}
		lo[d], hi[d] = a, b
	}
	return spatial.Rect{Lo: lo, Hi: hi}
}

// TestSmallRangeConstantRounds pins DST's selling point: a small range over
// unsaturated cells resolves in one parallel round.
func TestSmallRangeConstantRounds(t *testing.T) {
	ix := newIndex(t, Options{Height: 16, NodeCapacity: 10000})
	rng := rand.New(rand.NewSource(3))
	var records []spatial.Record
	for i, p := range randomPoints(rng, 2, 500) {
		rec := spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}
		records = append(records, rec)
		if err := ix.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	q, _ := spatial.NewRect(spatial.Point{0.4, 0.4}, spatial.Point{0.45, 0.45})
	res, err := ix.RangeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Errorf("unsaturated small range took %d rounds, want 1", res.Rounds)
	}
	want := 0
	for _, r := range records {
		if q.Contains(r.Key) {
			want++
		}
	}
	if len(res.Records) != want {
		t.Errorf("records = %d, want %d", len(res.Records), want)
	}
}

// TestSaturationForcesDescent: with tiny capacity, a large range hits
// saturated canonical cells and needs multiple rounds.
func TestSaturationForcesDescent(t *testing.T) {
	ix := newIndex(t, Options{Height: 16, NodeCapacity: 2})
	rng := rand.New(rand.NewSource(4))
	for i, p := range randomPoints(rng, 2, 400) {
		if err := ix.Insert(spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	q, _ := spatial.NewRect(spatial.Point{0.1, 0.1}, spatial.Point{0.9, 0.9})
	res, err := ix.RangeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 3 {
		t.Errorf("saturated large range took %d rounds, expected a descent", res.Rounds)
	}
}

func TestDelete(t *testing.T) {
	ix := newIndex(t, Options{Height: 12, NodeCapacity: 50})
	rng := rand.New(rand.NewSource(5))
	points := randomPoints(rng, 2, 100)
	for i, p := range points {
		if err := ix.Insert(spatial.Record{Key: p, Data: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range points {
		ok, err := ix.Delete(p, fmt.Sprintf("r%d", i))
		if err != nil || !ok {
			t.Fatalf("Delete #%d = %v, %v", i, ok, err)
		}
	}
	// Everything gone, at every level.
	q, _ := spatial.NewRect(spatial.Point{0, 0}, spatial.Point{1, 1})
	res, err := ix.RangeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Errorf("%d records remain after deleting all", len(res.Records))
	}
	if ok, err := ix.Delete(spatial.Point{0.42, 0.42}, ""); err != nil || ok {
		t.Errorf("Delete(absent) = %v, %v", ok, err)
	}
	if _, err := ix.Delete(spatial.Point{0.5}, ""); err == nil {
		t.Error("wrong-dim delete accepted")
	}
}

func TestBoundaryDecompositionGrowsWithHeight(t *testing.T) {
	// The same range decomposes into far more cells at a larger height —
	// the §7.4 bandwidth explosion.
	count := func(height int) int {
		ix := newIndex(t, Options{Height: height, NodeCapacity: 100})
		q, _ := spatial.NewRect(spatial.Point{0.21, 0.21}, spatial.Point{0.59, 0.59})
		var cells []any
		var labels []struct{}
		_ = labels
		var canonical int
		// Reach into the decomposition through a query on an empty index:
		// every canonical cell costs exactly one lookup.
		res, err := ix.RangeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		canonical = res.Lookups
		_ = cells
		return canonical
	}
	small := count(8)
	large := count(16)
	if large < 4*small {
		t.Errorf("decomposition: height 8 → %d cells, height 16 → %d; expected ≥ 4× growth", small, large)
	}
}

func TestRangeQueryValidation(t *testing.T) {
	ix := newIndex(t, Options{})
	if _, err := ix.RangeQuery(spatial.Rect{Lo: spatial.Point{0.1}, Hi: spatial.Point{0.2}}); err == nil {
		t.Error("wrong-dim query accepted")
	}
	bad := spatial.Rect{Lo: spatial.Point{0.5, 0.5}, Hi: spatial.Point{0.1, 0.1}}
	if _, err := ix.RangeQuery(bad); err == nil {
		t.Error("inverted rect accepted")
	}
}
