package dst

import (
	"fmt"

	"mlight/internal/bitlabel"
	"mlight/internal/index"
	"mlight/internal/spatial"
	"mlight/internal/trace"
)

// QueryResult carries the answer and the cost of one range query, in the
// same units as the other indexes: DHT-lookups (bandwidth) and rounds of
// DHT-lookups on the critical path (latency). It is an alias of the shared
// index.Result, so results from the three schemes compare directly.
type QueryResult = index.Result

// RangeQuery answers a range query with the segment-tree algorithm: the
// range is decomposed locally into canonical cells — maximal z-prefix
// cells fully inside the range, plus depth-D boundary cells that straddle
// it — and every cell is resolved with one DHT-lookup, all in parallel.
// An unsaturated node answers its cell alone (O(1) rounds); a saturated
// node forces a descent to its children, adding a round per level.
//
// Because the decomposition is computed against the fixed height D rather
// than the (unknown) real data depth, large ranges shatter into very many
// boundary cells — the bandwidth penalty §7.4 observes.
func (ix *Index) RangeQuery(q spatial.Rect) (res *QueryResult, err error) {
	if tc := ix.opts.Trace; tc != nil {
		span := tc.Begin(0, trace.KindQuery, "dst-range")
		defer func() {
			if err != nil {
				tc.End(span, trace.Str("error", err.Error()))
				return
			}
			tc.End(span,
				trace.Int("lookups", int64(res.Lookups)),
				trace.Int("rounds", int64(res.Rounds)),
				trace.Int("records", int64(len(res.Records))))
		}()
	}
	return ix.rangeQuery(q)
}

func (ix *Index) rangeQuery(q spatial.Rect) (*QueryResult, error) {
	m := ix.opts.Dims
	if q.Dim() != m {
		return nil, fmt.Errorf("dst: query has %d dims, index has %d", q.Dim(), m)
	}
	if _, err := spatial.NewRect(q.Lo, q.Hi); err != nil {
		return nil, fmt.Errorf("dst: invalid query rectangle: %w", err)
	}
	var canonical []bitlabel.Label
	ix.decompose(bitlabel.Empty, spatial.UnitCube(m), q, &canonical)
	res := &QueryResult{}
	for _, cell := range canonical {
		recs, rounds, lookups, err := ix.resolveCell(cell, q)
		if err != nil {
			return nil, err
		}
		res.Records = append(res.Records, recs...)
		res.Lookups += lookups
		if rounds > res.Rounds {
			res.Rounds = rounds // canonical cells are probed in parallel
		}
	}
	if res.Rounds == 0 {
		res.Rounds = 1
	}
	return res, nil
}

// decompose recursively splits the unit cube into canonical cells for q.
func (ix *Index) decompose(label bitlabel.Label, g spatial.Region, q spatial.Rect, out *[]bitlabel.Label) {
	if !g.Overlaps(q) {
		return
	}
	if coveredBy(g, q) {
		*out = append(*out, label)
		return
	}
	if label.Len() >= ix.opts.Height {
		// Boundary cell at maximum depth: include with filtering.
		*out = append(*out, label)
		return
	}
	dim := spatial.SplitDim(label.Len(), ix.opts.Dims)
	lower, upper := g.Halves(dim)
	ix.decompose(label.MustAppend(0), lower, q, out)
	ix.decompose(label.MustAppend(1), upper, q, out)
}

// coveredBy reports whether cell g lies entirely inside the closed
// rectangle q.
func coveredBy(g spatial.Region, q spatial.Rect) bool {
	for i := range g.Lo {
		if g.Lo[i] < q.Lo[i] || g.Hi[i] > q.Hi[i] {
			return false
		}
	}
	return true
}

// resolveCell fetches one canonical cell, descending through saturated
// nodes. Children of a saturated node are probed in parallel.
func (ix *Index) resolveCell(label bitlabel.Label, q spatial.Rect) (records []spatial.Record, rounds, lookups int, err error) {
	n, found, err := ix.getNode(label, &lookups)
	rounds = 1
	if err != nil {
		return nil, 0, 0, err
	}
	if !found {
		// No data anywhere under this cell.
		return nil, rounds, lookups, nil
	}
	if !n.Saturated {
		for _, r := range n.Records {
			if q.Contains(r.Key) {
				records = append(records, r)
			}
		}
		return records, rounds, lookups, nil
	}
	// Saturated: the stored subset is unusable; descend.
	childRounds := 0
	for _, bit := range []byte{0, 1} {
		child := label.MustAppend(bit)
		recs, r, lk, childErr := ix.resolveCell(child, q)
		if childErr != nil {
			return nil, 0, 0, childErr
		}
		records = append(records, recs...)
		lookups += lk
		if r > childRounds {
			childRounds = r
		}
	}
	return records, rounds + childRounds, lookups, nil
}
