// Package trace records structured spans of index operations: what one
// range query actually did, stage by stage — batch rounds, cover-group
// probes, DHT operations, retry attempts, and simulated-network hops.
//
// The paper's evaluation reports flat aggregates (DHT-lookups, rounds);
// this package attributes those costs to positions *inside* an operation,
// which is what finding hot spots needs. Three design rules keep it honest
// in a deterministic simulation:
//
//   - No wall clock. The collector runs a logical clock in microseconds:
//     every recording action advances it by one tick, and spans that carry
//     simulated network latency (simnet hops) advance it by that latency.
//     Counter deltas and modeled delays are the timeline, so a trace of a
//     seeded run is reproducible bit for bit.
//   - Deterministic span IDs. IDs are a per-collector sequence, assigned in
//     recording order. Under sequential execution (MaxInFlight = 1) the
//     order — and therefore the whole trace — is deterministic; concurrent
//     probes may interleave IDs but never lose spans.
//   - No-op default. A nil *Collector is the disabled state; every
//     collection point guards with a nil check, so tracing costs nothing
//     when off.
//
// Aggregation into per-stage histograms reuses metrics.Quantile and
// metrics.Gini; exporters render a human-readable tree (WriteTree) and
// Chrome trace_event JSON (WriteTraceEvent) loadable in chrome://tracing
// or Perfetto.
package trace

import (
	"fmt"
	"strconv"
	"sync"
)

// Kind classifies a span into the taxonomy of one traced operation:
// query → batch round → cover-group probe → DHT op → retry attempt →
// simnet hop, plus lookup binary searches and cache events.
type Kind uint8

const (
	// KindQuery is one whole range/shape/kNN query.
	KindQuery Kind = iota
	// KindRound is one synchronous batch barrier of the query engine.
	KindRound
	// KindProbe is one frontier work item inside a round: a piece probe, a
	// covering-leaf candidate, or a sequential fallback.
	KindProbe
	// KindLookup is one §5 binary search over candidate prefix lengths.
	KindLookup
	// KindDHTOp is one logical DHT operation issued by the index.
	KindDHTOp
	// KindAttempt is one physical substrate attempt under the retry layer
	// (including batch retry waves).
	KindAttempt
	// KindHop is one simulated-network RPC, carrying its modeled RTT.
	KindHop
	// KindCache is a lookup-cache event: hit, miss, or stale eviction.
	KindCache

	numKinds
)

// String renders the stage name used by the exporters.
func (k Kind) String() string {
	switch k {
	case KindQuery:
		return "query"
	case KindRound:
		return "round"
	case KindProbe:
		return "probe"
	case KindLookup:
		return "lookup"
	case KindDHTOp:
		return "dht"
	case KindAttempt:
		return "attempt"
	case KindHop:
		return "hop"
	case KindCache:
		return "cache"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// SpanID identifies a recorded span. Zero means "no parent": the span is a
// root of the trace forest.
type SpanID int64

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string
	str string
	num int64
	txt bool
}

// Str builds a string-valued attribute.
func Str(key, val string) Attr { return Attr{Key: key, str: val, txt: true} }

// Int builds an integer-valued attribute.
func Int(key string, val int64) Attr { return Attr{Key: key, num: val} }

// Value renders the attribute value as text.
func (a Attr) Value() string {
	if a.txt {
		return a.str
	}
	return strconv.FormatInt(a.num, 10)
}

// value returns the native value for JSON export.
func (a Attr) value() any {
	if a.txt {
		return a.str
	}
	return a.num
}

// Span is one recorded operation. Start and End are positions on the
// collector's logical clock, in microseconds.
type Span struct {
	ID     SpanID
	Parent SpanID
	Kind   Kind
	Name   string
	Start  int64
	End    int64
	Attrs  []Attr
}

// Dur returns the span's duration in logical microseconds.
func (s Span) Dur() int64 {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// Tick is the logical-clock advance per recording action, in microseconds.
const Tick = 1

// DefaultMaxSpans bounds a collector's memory: recording beyond the cap
// drops the new spans (counted in Dropped) instead of growing unbounded.
const DefaultMaxSpans = 1 << 17

// Collector accumulates spans. The zero value is not usable; construct with
// NewCollector. A nil *Collector is the disabled state — collection points
// must nil-check before recording, which keeps tracing zero-cost when off.
type Collector struct {
	mu      sync.Mutex
	now     int64 // logical clock, µs
	nextID  SpanID
	spans   []Span
	open    map[SpanID]int // span ID → index in spans, while unfinished
	limit   int
	dropped int64
}

// NewCollector creates a collector with the default span cap.
func NewCollector() *Collector { return NewCollectorLimit(DefaultMaxSpans) }

// NewCollectorLimit creates a collector that retains at most maxSpans
// spans; further recordings are counted as dropped.
func NewCollectorLimit(maxSpans int) *Collector {
	if maxSpans < 1 {
		maxSpans = DefaultMaxSpans
	}
	return &Collector{open: make(map[SpanID]int), limit: maxSpans}
}

// Begin opens a span under parent (zero for a root) and returns its ID. The
// returned ID is valid even if the span was dropped at the cap; End on it is
// then a no-op.
func (c *Collector) Begin(parent SpanID, kind Kind, name string, attrs ...Attr) SpanID {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	id := c.nextID
	start := c.now
	c.now += Tick
	if len(c.spans) >= c.limit {
		c.dropped++
		return id
	}
	c.open[id] = len(c.spans)
	c.spans = append(c.spans, Span{
		ID: id, Parent: parent, Kind: kind, Name: name,
		Start: start, End: -1, Attrs: attrs,
	})
	return id
}

// End closes a span opened by Begin, appending any final attributes. Ending
// an unknown (or dropped, or already ended) span is a no-op.
func (c *Collector) End(id SpanID, attrs ...Attr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.open[id]
	if !ok {
		return
	}
	delete(c.open, id)
	c.now += Tick
	c.spans[i].End = c.now
	if len(attrs) > 0 {
		c.spans[i].Attrs = append(c.spans[i].Attrs, attrs...)
	}
}

// Event records an instantaneous (one-tick) span — cache hits, evictions,
// and other point occurrences.
func (c *Collector) Event(parent SpanID, kind Kind, name string, attrs ...Attr) SpanID {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	id := c.nextID
	start := c.now
	c.now += Tick
	if len(c.spans) >= c.limit {
		c.dropped++
		return id
	}
	c.spans = append(c.spans, Span{
		ID: id, Parent: parent, Kind: kind, Name: name,
		Start: start, End: c.now, Attrs: attrs,
	})
	return id
}

// Record adds a completed span that consumed the given simulated time (in
// microseconds; clamped to at least one tick), advancing the logical clock
// by it — the mechanism simnet hops use to put modeled RTTs on the
// timeline.
func (c *Collector) Record(parent SpanID, kind Kind, name string, micros int64, attrs ...Attr) SpanID {
	if micros < Tick {
		micros = Tick
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	id := c.nextID
	start := c.now
	c.now += micros
	if len(c.spans) >= c.limit {
		c.dropped++
		return id
	}
	c.spans = append(c.spans, Span{
		ID: id, Parent: parent, Kind: kind, Name: name,
		Start: start, End: c.now, Attrs: attrs,
	})
	return id
}

// Spans returns a copy of the recorded spans in recording order. Spans
// still open are reported with End at the current clock position.
func (c *Collector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Span, len(c.spans))
	copy(out, c.spans)
	for i := range out {
		if out[i].End < 0 {
			out[i].End = c.now
		}
	}
	return out
}

// Len returns the number of retained spans.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spans)
}

// Dropped returns how many spans the cap discarded.
func (c *Collector) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Now returns the logical clock position in microseconds.
func (c *Collector) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Reset discards all spans and rewinds the clock and ID sequence.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = 0
	c.nextID = 0
	c.spans = c.spans[:0]
	c.open = make(map[SpanID]int)
	c.dropped = 0
}
