package trace

import (
	"fmt"
	"io"
	"math"

	"mlight/internal/metrics"
)

// StageSummary is the per-stage histogram of one span kind: how many spans
// the stage recorded, where their logical durations sit (median, tail,
// maximum — metrics.Quantile), and how unevenly the stage's time is spread
// over its spans (metrics.Gini). A high Gini on the probe stage, for
// example, means a few probes dominate the round they run in.
type StageSummary struct {
	Stage       string  `json:"stage"`
	Count       int     `json:"count"`
	TotalMicros int64   `json:"total_us"`
	P50         float64 `json:"p50_us"`
	P95         float64 `json:"p95_us"`
	Max         float64 `json:"max_us"`
	Gini        float64 `json:"gini"`
}

// Summary aggregates the recorded spans into per-stage histograms, in kind
// order, skipping stages with no spans.
func (c *Collector) Summary() []StageSummary {
	spans := c.Spans()
	byKind := make([][]float64, numKinds)
	for _, s := range spans {
		byKind[s.Kind] = append(byKind[s.Kind], float64(s.Dur()))
	}
	var out []StageSummary
	for k := Kind(0); k < numKinds; k++ {
		durs := byKind[k]
		if len(durs) == 0 {
			continue
		}
		var total int64
		for _, d := range durs {
			total += int64(d)
		}
		sum := StageSummary{
			Stage:       k.String(),
			Count:       len(durs),
			TotalMicros: total,
			P50:         metrics.Quantile(durs, 0.5),
			P95:         metrics.Quantile(durs, 0.95),
			Max:         metrics.Quantile(durs, 1),
			Gini:        metrics.Gini(durs),
		}
		out = append(out, sum)
	}
	return out
}

// WriteSummary renders the per-stage histograms as an aligned table.
func (c *Collector) WriteSummary(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-8s %7s %10s %8s %8s %8s %6s\n",
		"stage", "count", "total_us", "p50", "p95", "max", "gini"); err != nil {
		return err
	}
	for _, s := range c.Summary() {
		if _, err := fmt.Fprintf(w, "%-8s %7d %10d %8.1f %8.1f %8.1f %6.3f\n",
			s.Stage, s.Count, s.TotalMicros, nanzero(s.P50), nanzero(s.P95), nanzero(s.Max), s.Gini); err != nil {
			return err
		}
	}
	return nil
}

// nanzero maps NaN quantiles (empty inputs) to zero for display.
func nanzero(f float64) float64 {
	if math.IsNaN(f) {
		return 0
	}
	return f
}
