package trace

import (
	"strings"
	"testing"
)

func TestBeginEndNesting(t *testing.T) {
	c := NewCollector()
	q := c.Begin(0, KindQuery, "range")
	r := c.Begin(q, KindRound, "1")
	p := c.Begin(r, KindProbe, "0-00")
	c.End(p, Int("next", 2))
	c.End(r)
	c.End(q, Int("lookups", 3))

	spans := c.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	if spans[0].Parent != 0 || spans[1].Parent != q || spans[2].Parent != r {
		t.Errorf("parentage wrong: %v %v %v", spans[0].Parent, spans[1].Parent, spans[2].Parent)
	}
	// The clock ticks once per recording action: 3 Begins + 3 Ends.
	if got := c.Now(); got != 6 {
		t.Errorf("clock = %d, want 6", got)
	}
	// Children are contained in their parents on the logical timeline.
	if spans[2].Start < spans[1].Start || spans[2].End > spans[1].End {
		t.Errorf("probe [%d,%d] escapes round [%d,%d]",
			spans[2].Start, spans[2].End, spans[1].Start, spans[1].End)
	}
	if spans[0].Dur() != 6 {
		t.Errorf("query dur = %d, want 6", spans[0].Dur())
	}
	// The End attrs landed.
	last := spans[0].Attrs[len(spans[0].Attrs)-1]
	if last.Key != "lookups" || last.Value() != "3" {
		t.Errorf("query End attr = %s=%s", last.Key, last.Value())
	}
}

func TestDeterministicIDs(t *testing.T) {
	run := func() []Span {
		c := NewCollector()
		a := c.Begin(0, KindQuery, "q")
		c.Event(a, KindCache, "hit")
		c.Record(0, KindHop, "n1→n2", 250)
		c.End(a)
		return c.Spans()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("span counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Start != b[i].Start || a[i].End != b[i].End {
			t.Errorf("span %d differs between identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRecordAdvancesClockByMicros(t *testing.T) {
	c := NewCollector()
	c.Record(0, KindHop, "a→b", 500)
	if got := c.Now(); got != 500 {
		t.Errorf("clock after 500us hop = %d", got)
	}
	s := c.Spans()[0]
	if s.Dur() != 500 {
		t.Errorf("hop dur = %d, want 500", s.Dur())
	}
	// Sub-tick latencies still consume one tick so spans never have zero
	// duration.
	c.Record(0, KindHop, "a→b", 0)
	if got := c.Spans()[1].Dur(); got != Tick {
		t.Errorf("zero-latency hop dur = %d, want %d", got, Tick)
	}
}

func TestSpanCapDrops(t *testing.T) {
	c := NewCollectorLimit(2)
	c.Event(0, KindCache, "a")
	c.Event(0, KindCache, "b")
	id := c.Begin(0, KindQuery, "dropped")
	c.End(id) // no-op: the span was dropped
	c.Event(0, KindCache, "c")
	if c.Len() != 2 {
		t.Errorf("retained %d spans, want 2", c.Len())
	}
	if c.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", c.Dropped())
	}
	var tree strings.Builder
	if err := c.WriteTree(&tree); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tree.String(), "2 spans dropped") {
		t.Errorf("tree does not report drops:\n%s", tree.String())
	}
}

func TestOpenSpansReportedAtClock(t *testing.T) {
	c := NewCollector()
	c.Begin(0, KindQuery, "unfinished")
	s := c.Spans()[0]
	if s.End != c.Now() {
		t.Errorf("open span End = %d, want clock %d", s.End, c.Now())
	}
}

func TestReset(t *testing.T) {
	c := NewCollector()
	c.Event(0, KindCache, "x")
	c.Reset()
	if c.Len() != 0 || c.Now() != 0 || c.Dropped() != 0 {
		t.Errorf("Reset left state: len=%d now=%d dropped=%d", c.Len(), c.Now(), c.Dropped())
	}
	id := c.Begin(0, KindQuery, "fresh")
	if id != 1 {
		t.Errorf("post-Reset ID = %d, want 1", id)
	}
}

func TestSummaryGroupsByKind(t *testing.T) {
	c := NewCollector()
	q := c.Begin(0, KindQuery, "q")
	c.Record(q, KindHop, "a→b", 100)
	c.Record(q, KindHop, "b→c", 300)
	c.End(q)
	var hops *StageSummary
	for _, s := range c.Summary() {
		if s.Stage == "hop" {
			s := s
			hops = &s
		}
	}
	if hops == nil {
		t.Fatal("no hop stage in summary")
	}
	if hops.Count != 2 || hops.TotalMicros != 400 || hops.Max != 300 {
		t.Errorf("hop summary = %+v", hops)
	}
	var table strings.Builder
	if err := c.WriteSummary(&table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "hop") || !strings.Contains(table.String(), "query") {
		t.Errorf("summary table missing stages:\n%s", table.String())
	}
}

func TestWriteTraceEventValidates(t *testing.T) {
	c := NewCollector()
	q := c.Begin(0, KindQuery, "range")
	c.Event(q, KindCache, "miss")
	c.Record(0, KindHop, "n1→n2", 250)
	c.End(q)
	var buf strings.Builder
	if err := c.WriteTraceEvent(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceEvent([]byte(buf.String())); err != nil {
		t.Errorf("emitted trace fails own schema: %v", err)
	}
	// Hops render on their own thread row.
	if !strings.Contains(buf.String(), `"tid": 2`) {
		t.Error("hop span not on tid 2")
	}
}

func TestValidateTraceEventRejectsMalformed(t *testing.T) {
	for name, data := range map[string]string{
		"not-json":      "nonsense",
		"empty-events":  `{"traceEvents":[]}`,
		"missing-name":  `{"traceEvents":[{"cat":"q","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]}`,
		"wrong-phase":   `{"traceEvents":[{"name":"q","cat":"q","ph":"B","ts":0,"dur":1,"pid":1,"tid":1}]}`,
		"negative-time": `{"traceEvents":[{"name":"q","cat":"q","ph":"X","ts":-4,"dur":1,"pid":1,"tid":1}]}`,
	} {
		if err := ValidateTraceEvent([]byte(data)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}

func TestTreeIndentsChildren(t *testing.T) {
	c := NewCollector()
	q := c.Begin(0, KindQuery, "range")
	r := c.Begin(q, KindRound, "0")
	c.End(r)
	c.End(q)
	// A span whose parent is unknown prints as a root.
	c.Event(SpanID(9999), KindCache, "orphan")
	var buf strings.Builder
	if err := c.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("tree has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if strings.HasPrefix(lines[0], " ") {
		t.Errorf("root line indented: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  round") {
		t.Errorf("child line not indented: %q", lines[1])
	}
	if strings.HasPrefix(lines[2], " ") {
		t.Errorf("orphan not treated as root: %q", lines[2])
	}
}
