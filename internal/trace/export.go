package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteTree renders the trace as a human-readable forest: one line per
// span, children indented under their parent, each line showing the stage,
// name, logical time window, and attributes. Spans whose parent was dropped
// (or recorded outside the collector) print as roots.
func (c *Collector) WriteTree(w io.Writer) error {
	spans := c.Spans()
	index := make(map[SpanID]int, len(spans))
	for i, s := range spans {
		index[s.ID] = i
	}
	children := make(map[SpanID][]int)
	var roots []int
	for i, s := range spans {
		if s.Parent != 0 {
			if _, ok := index[s.Parent]; ok {
				children[s.Parent] = append(children[s.Parent], i)
				continue
			}
		}
		roots = append(roots, i)
	}
	var rec func(i, depth int) error
	rec = func(i, depth int) error {
		s := spans[i]
		if _, err := fmt.Fprintf(w, "%s%s\n", strings.Repeat("  ", depth), formatSpan(s)); err != nil {
			return err
		}
		for _, ci := range children[s.ID] {
			if err := rec(ci, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := rec(r, 0); err != nil {
			return err
		}
	}
	if d := c.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "(%d spans dropped at the collector cap)\n", d); err != nil {
			return err
		}
	}
	return nil
}

// formatSpan renders one tree line: "kind name [start+dur µs] k=v ...".
func formatSpan(s Span) string {
	var b strings.Builder
	b.WriteString(s.Kind.String())
	if s.Name != "" {
		b.WriteByte(' ')
		b.WriteString(s.Name)
	}
	fmt.Fprintf(&b, " [%d+%dus]", s.Start, s.Dur())
	for _, a := range s.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Value())
	}
	return b.String()
}

// traceEvent is one Chrome trace_event entry. The exporter emits complete
// ("X") events on the collector's logical timeline: ts/dur are logical
// microseconds, which chrome://tracing and Perfetto render as real time.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the trace_event JSON object format.
type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteTraceEvent exports the trace in Chrome trace_event JSON (the object
// format with a traceEvents array of complete events). Spans nest by
// containment on the logical timeline; hop spans, which have no in-process
// parent, are emitted on their own thread row so they do not distort the
// query rows.
func (c *Collector) WriteTraceEvent(w io.Writer) error {
	spans := c.Spans()
	events := make([]traceEvent, 0, len(spans))
	for _, s := range spans {
		args := map[string]any{
			"id":     int64(s.ID),
			"parent": int64(s.Parent),
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.value()
		}
		tid := 1
		if s.Kind == KindHop {
			tid = 2
		}
		dur := s.Dur()
		if dur < Tick {
			dur = Tick
		}
		events = append(events, traceEvent{
			Name: s.Kind.String() + " " + s.Name,
			Cat:  s.Kind.String(),
			Ph:   "X",
			Ts:   s.Start,
			Dur:  dur,
			Pid:  1,
			Tid:  tid,
			Args: args,
		})
	}
	file := traceFile{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
	}
	if d := c.Dropped(); d > 0 {
		file.OtherData = map[string]any{"dropped_spans": d}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}

// ValidateTraceEvent checks that data parses as the trace_event object
// format this package emits: a traceEvents array of complete events with
// the required fields. It is the golden schema the CI trace-smoke step (and
// mlight-bench's own self-check) validates emitted files against.
func ValidateTraceEvent(data []byte) error {
	var file struct {
		TraceEvents []struct {
			Name *string `json:"name"`
			Cat  *string `json:"cat"`
			Ph   *string `json:"ph"`
			Ts   *int64  `json:"ts"`
			Dur  *int64  `json:"dur"`
			Pid  *int    `json:"pid"`
			Tid  *int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		return fmt.Errorf("trace: not trace_event JSON: %w", err)
	}
	if len(file.TraceEvents) == 0 {
		return fmt.Errorf("trace: traceEvents array is missing or empty")
	}
	for i, e := range file.TraceEvents {
		switch {
		case e.Name == nil || *e.Name == "":
			return fmt.Errorf("trace: event %d has no name", i)
		case e.Cat == nil || *e.Cat == "":
			return fmt.Errorf("trace: event %d has no cat", i)
		case e.Ph == nil || *e.Ph != "X":
			return fmt.Errorf("trace: event %d is not a complete (\"X\") event", i)
		case e.Ts == nil || *e.Ts < 0:
			return fmt.Errorf("trace: event %d has no valid ts", i)
		case e.Dur == nil || *e.Dur < 0:
			return fmt.Errorf("trace: event %d has no valid dur", i)
		case e.Pid == nil || e.Tid == nil:
			return fmt.Errorf("trace: event %d lacks pid/tid", i)
		}
	}
	return nil
}
