package dht

import (
	"strconv"

	"mlight/internal/metrics"
	"mlight/internal/trace"
)

// Resilient decorates a DHT with the fault-tolerance layer the substrate
// interface deliberately leaves out: transient failures (dropped messages,
// unreachable peers, stale routing) are retried with capped exponential
// backoff under a per-operation attempt budget, while per-owner circuit
// breakers shed load from peers that keep failing. Terminal errors — bad
// response types, dimension mismatches, an empty overlay — pass through
// untouched on the first attempt.
//
// Composition: Resilient sits *below* Counting in an index's decorator
// chain (Counting(Resilient(substrate))), so the paper's logical
// DHT-operation accounting is unchanged — one Get is one logical operation
// no matter how many attempts it took. The physical overhead is metered
// separately in a metrics.ResilienceStats.
//
// Retries are safe over the substrates in this repository: the simulated
// network fails calls before the remote handler executes, so a failed
// operation never half-applied. Over a real network Apply would be
// at-least-once under retries; idempotent transforms are the caller's
// responsibility there.
type Resilient struct {
	inner   DHT
	retrier *Retrier
	tc      *trace.Collector
}

var (
	_ DHT         = (*Resilient)(nil)
	_ Batcher     = (*Resilient)(nil)
	_ BatchWriter = (*Resilient)(nil)
	_ Enumerator  = (*Resilient)(nil)
	_ SpanGetter  = (*Resilient)(nil)
)

// NewResilient wraps inner under policy, charging retry and breaker
// activity to stats (nil allocates a private counter set, retrievable via
// Stats).
func NewResilient(inner DHT, policy RetryPolicy, stats *metrics.ResilienceStats) *Resilient {
	return &Resilient{inner: inner, retrier: NewRetrier(policy, stats)}
}

// Inner returns the wrapped DHT.
func (r *Resilient) Inner() DHT { return r.inner }

// Stats returns the resilience counters.
func (r *Resilient) Stats() *metrics.ResilienceStats { return r.retrier.Stats() }

// Retrier returns the underlying retry executor (shared breaker state).
func (r *Resilient) Retrier() *Retrier { return r.retrier }

// SetTracer attaches a trace collector: retry attempts are recorded as
// KindAttempt spans (see Retrier.DoTraced for the recording rule). A nil
// collector — the default — records nothing.
func (r *Resilient) SetTracer(c *trace.Collector) { r.tc = c }

// owner resolves the breaker key for a DHT key.
func (r *Resilient) owner(key Key) string { return r.retrier.policy.OwnerOf(key) }

// Put implements DHT.
func (r *Resilient) Put(key Key, value any) error {
	return r.retrier.Do(r.owner(key), func() error {
		return r.inner.Put(key, value)
	})
}

// Get implements DHT.
func (r *Resilient) Get(key Key) (value any, found bool, err error) {
	return r.GetSpan(key, 0)
}

// GetSpan implements SpanGetter: the retry loop records each physical
// attempt as a KindAttempt span under parent (all attempts when a parent is
// given; retries only when flat — see Retrier.DoTraced), and the span is
// forwarded to the layer below.
func (r *Resilient) GetSpan(key Key, parent trace.SpanID) (value any, found bool, err error) {
	err = r.retrier.DoTraced(r.owner(key), r.tc, parent, func() error {
		var e error
		value, found, e = GetWithSpan(r.inner, key, parent)
		return e
	})
	if err != nil {
		return nil, false, err
	}
	return value, found, nil
}

// Remove implements DHT.
func (r *Resilient) Remove(key Key) error {
	return r.retrier.Do(r.owner(key), func() error {
		return r.inner.Remove(key)
	})
}

// Apply implements DHT.
func (r *Resilient) Apply(key Key, fn ApplyFunc) error {
	return r.retrier.Do(r.owner(key), func() error {
		return r.inner.Apply(key, fn)
	})
}

// Owner implements DHT. Ownership resolution routes through the overlay
// like any other operation, so it is retried the same way.
func (r *Resilient) Owner(key Key) (owner string, err error) {
	err = r.retrier.Do(r.owner(key), func() error {
		var e error
		owner, e = r.inner.Owner(key)
		return e
	})
	if err != nil {
		return "", err
	}
	return owner, nil
}

// GetBatch implements Batcher: the whole batch is issued through the inner
// substrate's batch path once, then — composing with the round-synchronous
// query engine — retries happen per key inside this same batch round: only
// the keys whose probes failed retryably are re-issued (as progressively
// smaller sub-batches), with one backoff between retry waves, until they
// succeed or exhaust the attempt budget. Results stay positional.
func (r *Resilient) GetBatch(keys []Key, maxInFlight int) []BatchResult {
	results := make([]BatchResult, len(keys))
	if len(keys) == 0 {
		return results
	}
	// Breaker pre-check per key: shed keys fail fast without probing.
	pending := make([]int, 0, len(keys))
	for i, k := range keys {
		r.retrier.stats.Ops.Inc()
		if err := r.retrier.precheck(r.owner(k)); err != nil {
			results[i].Err = err
			continue
		}
		pending = append(pending, i)
	}
	for attempt := 1; len(pending) > 0; attempt++ {
		sub := make([]Key, len(pending))
		for j, i := range pending {
			sub[j] = keys[i]
		}
		// Retry waves (attempt ≥ 2) are recorded as flat KindAttempt spans:
		// a re-issued sub-batch is the batch path's analogue of a retry, and
		// like DoTraced's flat case the successful first wave stays silent.
		var wave trace.SpanID
		if r.tc != nil && attempt > 1 {
			wave = r.tc.Begin(0, trace.KindAttempt, "wave "+strconv.Itoa(attempt),
				trace.Int("keys", int64(len(sub))))
		}
		batch := GetBatch(r.inner, sub, maxInFlight)
		if wave != 0 {
			r.tc.End(wave)
		}
		var next []int
		for j, i := range pending {
			br := batch[j]
			r.retrier.stats.Attempts.Inc()
			owner := r.owner(keys[i])
			if br.Err == nil {
				r.retrier.onSuccess(owner)
				if attempt > 1 {
					r.retrier.stats.Recovered.Inc()
				}
				results[i] = br
				continue
			}
			if !r.retrier.policy.Classify(br.Err) {
				r.retrier.stats.Terminal.Inc()
				results[i] = br
				continue
			}
			r.retrier.onFailure(owner)
			if attempt >= r.retrier.policy.MaxAttempts {
				r.retrier.stats.Exhausted.Inc()
				results[i] = br
				continue
			}
			r.retrier.stats.Retries.Inc()
			next = append(next, i)
		}
		pending = next
		if len(pending) > 0 {
			r.retrier.policy.Sleep(r.retrier.backoff(attempt))
		}
	}
	return results
}

// PutBatch implements BatchWriter with the same per-key retry-wave scheme as
// GetBatch: the whole batch is issued through the inner substrate's batch
// path once, then only the operations that failed retryably are re-issued as
// progressively smaller sub-batches with one backoff between waves. Errors
// stay positional.
func (r *Resilient) PutBatch(ops []PutOp, maxInFlight int) []error {
	return r.writeBatch(len(ops),
		func(i int) Key { return ops[i].Key },
		func(pending []int) []error {
			sub := make([]PutOp, len(pending))
			for j, i := range pending {
				sub[j] = ops[i]
			}
			return PutBatch(r.inner, sub, maxInFlight)
		})
}

// ApplyBatch implements BatchWriter, retried exactly like PutBatch. A failed
// attempt never half-applied over the substrates in this repository (the
// simulated network fails calls before the remote handler executes), so
// re-issuing an ApplyOp in a later wave re-runs its closure from scratch —
// the closure contract documented on ApplyOp.
func (r *Resilient) ApplyBatch(ops []ApplyOp, maxInFlight int) []error {
	return r.writeBatch(len(ops),
		func(i int) Key { return ops[i].Key },
		func(pending []int) []error {
			sub := make([]ApplyOp, len(pending))
			for j, i := range pending {
				sub[j] = ops[i]
			}
			return ApplyBatch(r.inner, sub, maxInFlight)
		})
}

// writeBatch is the retry-wave engine shared by PutBatch and ApplyBatch:
// breaker pre-check per key, then waves of re-issued sub-batches (built by
// issue from the still-pending positions) with per-key success/terminal/
// exhausted adjudication, mirroring GetBatch.
func (r *Resilient) writeBatch(n int, keyOf func(int) Key, issue func(pending []int) []error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	// Breaker pre-check per key: shed keys fail fast without issuing.
	pending := make([]int, 0, n)
	for i := 0; i < n; i++ {
		r.retrier.stats.Ops.Inc()
		if err := r.retrier.precheck(r.owner(keyOf(i))); err != nil {
			errs[i] = err
			continue
		}
		pending = append(pending, i)
	}
	for attempt := 1; len(pending) > 0; attempt++ {
		// Retry waves (attempt ≥ 2) are recorded as flat KindAttempt spans,
		// matching GetBatch: the successful first wave stays silent.
		var wave trace.SpanID
		if r.tc != nil && attempt > 1 {
			wave = r.tc.Begin(0, trace.KindAttempt, "wave "+strconv.Itoa(attempt),
				trace.Int("keys", int64(len(pending))))
		}
		batch := issue(pending)
		if wave != 0 {
			r.tc.End(wave)
		}
		var next []int
		for j, i := range pending {
			err := batch[j]
			r.retrier.stats.Attempts.Inc()
			owner := r.owner(keyOf(i))
			if err == nil {
				r.retrier.onSuccess(owner)
				if attempt > 1 {
					r.retrier.stats.Recovered.Inc()
				}
				errs[i] = nil
				continue
			}
			if !r.retrier.policy.Classify(err) {
				r.retrier.stats.Terminal.Inc()
				errs[i] = err
				continue
			}
			r.retrier.onFailure(owner)
			if attempt >= r.retrier.policy.MaxAttempts {
				r.retrier.stats.Exhausted.Inc()
				errs[i] = err
				continue
			}
			r.retrier.stats.Retries.Inc()
			next = append(next, i)
		}
		pending = next
		if len(pending) > 0 {
			r.retrier.policy.Sleep(r.retrier.backoff(attempt))
		}
	}
	return errs
}

// Range implements Enumerator when the wrapped DHT does; enumeration is a
// measurement aid and is not retried.
func (r *Resilient) Range(fn func(key Key, value any) bool) error {
	e, ok := r.inner.(Enumerator)
	if !ok {
		return ErrNotEnumerable
	}
	return e.Range(fn)
}
