package dht

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomID(rng *rand.Rand) ID {
	var id ID
	rng.Read(id[:])
	return id
}

func TestCmp(t *testing.T) {
	var zero, one ID
	one[len(one)-1] = 1
	if zero.Cmp(one) != -1 || one.Cmp(zero) != 1 || zero.Cmp(zero) != 0 {
		t.Error("Cmp ordering wrong on simple values")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := randomID(rng), randomID(rng)
		want := a.BigInt().Cmp(b.BigInt())
		if got := a.Cmp(b); got != want {
			t.Fatalf("Cmp(%v, %v) = %d, want %d", a, b, got, want)
		}
	}
}

// bigBetween is the big.Int oracle for the half-open ring interval (a, b].
func bigBetween(x, a, b ID) bool {
	ax, bx, xx := a.BigInt(), b.BigInt(), x.BigInt()
	switch ax.Cmp(bx) {
	case -1:
		return ax.Cmp(xx) < 0 && xx.Cmp(bx) <= 0
	case 1:
		return ax.Cmp(xx) < 0 || xx.Cmp(bx) <= 0
	default:
		return true
	}
}

func TestBetweenProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		x, a, b := randomID(rng), randomID(rng), randomID(rng)
		if got, want := x.Between(a, b), bigBetween(x, a, b); got != want {
			t.Fatalf("Between(%v; %v, %v) = %v, want %v", x, a, b, got, want)
		}
	}
	// Endpoint conventions.
	a, b := randomID(rng), randomID(rng)
	if a.Between(a, b) {
		t.Error("a should be excluded from (a, b]")
	}
	if !b.Between(a, b) {
		t.Error("b should be included in (a, b]")
	}
	if b.BetweenOpen(a, b) {
		t.Error("b should be excluded from (a, b)")
	}
}

func TestAddPowerOfTwo(t *testing.T) {
	mod := new(big.Int).Lsh(big.NewInt(1), IDBits)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a := randomID(rng)
		k := rng.Intn(IDBits)
		got := a.AddPowerOfTwo(k).BigInt()
		want := new(big.Int).Add(a.BigInt(), new(big.Int).Lsh(big.NewInt(1), uint(k)))
		want.Mod(want, mod)
		if got.Cmp(want) != 0 {
			t.Fatalf("AddPowerOfTwo(%v, %d) = %v, want %v", a, k, got, want)
		}
	}
}

func TestAddPowerOfTwoWraps(t *testing.T) {
	var all ID
	for i := range all {
		all[i] = 0xFF
	}
	got := all.AddPowerOfTwo(0)
	var zero ID
	if got != zero {
		t.Errorf("max+1 = %v, want zero (wraparound)", got)
	}
}

func TestDigit(t *testing.T) {
	var id ID
	id[0] = 0xAB // digits base-16: A, B
	id[1] = 0xCD
	for _, c := range []struct{ i, b, want int }{
		{0, 4, 0xA}, {1, 4, 0xB}, {2, 4, 0xC}, {3, 4, 0xD},
		{0, 8, 0xAB}, {1, 8, 0xCD},
		{0, 1, 1}, {1, 1, 0}, {2, 1, 1},
		{0, 2, 2}, {1, 2, 2},
	} {
		if got := id.Digit(c.i, c.b); got != c.want {
			t.Errorf("Digit(%d, base 2^%d) = %#x, want %#x", c.i, c.b, got, c.want)
		}
	}
}

func TestCommonPrefixDigits(t *testing.T) {
	a := HashString("x")
	if got := a.CommonPrefixDigits(a, 4); got != NumDigits(4) {
		t.Errorf("self prefix = %d, want %d", got, NumDigits(4))
	}
	b := a
	b[0] ^= 0x01 // differs in the second base-16 digit
	if got := a.CommonPrefixDigits(b, 4); got != 1 {
		t.Errorf("prefix after low-nibble flip = %d, want 1", got)
	}
	b = a
	b[3] ^= 0xF0 // differs in digit 6
	if got := a.CommonPrefixDigits(b, 4); got != 6 {
		t.Errorf("prefix = %d, want 6", got)
	}
}

func TestHashKeyDeterministicQuick(t *testing.T) {
	f := func(s string) bool {
		return HashKey(Key(s)) == HashKey(Key(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubAndCircularDistance(t *testing.T) {
	mod := new(big.Int).Lsh(big.NewInt(1), IDBits)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		a, b := randomID(rng), randomID(rng)
		got := a.Sub(b).BigInt()
		want := new(big.Int).Sub(a.BigInt(), b.BigInt())
		want.Mod(want, mod)
		if got.Cmp(want) != 0 {
			t.Fatalf("Sub(%v, %v) = %v, want %v", a, b, got, want)
		}
		// Circular distance is symmetric and at most half the ring.
		d1, d2 := CircularDistance(a, b), CircularDistance(b, a)
		if d1 != d2 {
			t.Fatalf("CircularDistance not symmetric for %v, %v", a, b)
		}
		half := new(big.Int).Rsh(mod, 1)
		if d1.BigInt().Cmp(half) > 0 {
			t.Fatalf("CircularDistance(%v, %v) exceeds half ring", a, b)
		}
	}
	var x ID
	if CircularDistance(x, x) != x {
		t.Error("distance to self not zero")
	}
}
