package dht

import (
	"mlight/internal/trace"
)

// SpanGetter is the optional decorator interface for trace attribution: a
// Get carrying the caller's trace span, so layers below (the retry layer,
// for one) can nest the spans they record — retry attempts — under the
// logical DHT operation that caused them. Decorators implement it and
// forward the span; substrates need not.
type SpanGetter interface {
	// GetSpan is Get attributed to the parent span.
	GetSpan(key Key, parent trace.SpanID) (value any, found bool, err error)
}

// GetWithSpan issues a Get attributed to parent when d supports span
// attribution, falling back to a plain Get otherwise. The span changes
// only trace recording, never results or accounting.
func GetWithSpan(d DHT, key Key, parent trace.SpanID) (any, bool, error) {
	if s, ok := d.(SpanGetter); ok {
		return s.GetSpan(key, parent)
	}
	return d.Get(key)
}
