package dht

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// slowDHT wraps Local, tracking the number of concurrently executing Gets
// so tests can verify the fan-out bound. It deliberately does NOT implement
// Batcher, forcing GetBatch onto the generic worker-pool path.
type slowDHT struct {
	inner   *Local
	cur     atomic.Int64
	peak    atomic.Int64
	failKey Key
}

func (s *slowDHT) Get(key Key) (any, bool, error) {
	n := s.cur.Add(1)
	defer s.cur.Add(-1)
	for {
		p := s.peak.Load()
		if n <= p || s.peak.CompareAndSwap(p, n) {
			break
		}
	}
	if s.failKey != "" && key == s.failKey {
		return nil, false, errors.New("injected failure")
	}
	return s.inner.Get(key)
}

func (s *slowDHT) Put(key Key, value any) error     { return s.inner.Put(key, value) }
func (s *slowDHT) Remove(key Key) error             { return s.inner.Remove(key) }
func (s *slowDHT) Apply(key Key, f ApplyFunc) error { return s.inner.Apply(key, f) }
func (s *slowDHT) Owner(key Key) (string, error)    { return s.inner.Owner(key) }

func batchKeys(n int) []Key {
	out := make([]Key, n)
	for i := range out {
		out[i] = Key(fmt.Sprintf("k-%d", i))
	}
	return out
}

// TestGetBatchPositional: results line up with keys, mixing found, absent,
// and failed probes.
func TestGetBatchPositional(t *testing.T) {
	for _, maxInFlight := range []int{1, 4, 64} {
		d := &slowDHT{inner: MustNewLocal(4), failKey: "k-2"}
		keys := batchKeys(8)
		for i, k := range keys {
			if i%2 == 0 && k != d.failKey {
				if err := d.Put(k, i); err != nil {
					t.Fatal(err)
				}
			}
		}
		results := GetBatch(d, keys, maxInFlight)
		if len(results) != len(keys) {
			t.Fatalf("maxInFlight=%d: %d results for %d keys", maxInFlight, len(results), len(keys))
		}
		for i, r := range results {
			switch {
			case keys[i] == d.failKey:
				if r.Err == nil {
					t.Errorf("maxInFlight=%d: key %s should fail", maxInFlight, keys[i])
				}
			case i%2 == 0:
				if r.Err != nil || !r.Found || r.Value != i {
					t.Errorf("maxInFlight=%d: result[%d] = %+v, want value %d", maxInFlight, i, r, i)
				}
			default:
				if r.Err != nil || r.Found {
					t.Errorf("maxInFlight=%d: result[%d] = %+v, want absent", maxInFlight, i, r)
				}
			}
		}
	}
}

// TestGetBatchBounded: the generic pool never exceeds maxInFlight
// concurrent Gets.
func TestGetBatchBounded(t *testing.T) {
	d := &slowDHT{inner: MustNewLocal(4)}
	keys := batchKeys(64)
	for i, k := range keys {
		if err := d.Put(k, i); err != nil {
			t.Fatal(err)
		}
	}
	const bound = 3
	GetBatch(d, keys, bound)
	if peak := d.peak.Load(); peak > bound {
		t.Errorf("observed %d concurrent Gets, bound %d", peak, bound)
	}
}

// TestGetBatchNative: a substrate implementing Batcher serves the batch
// itself (Local under one lock).
func TestGetBatchNative(t *testing.T) {
	l := MustNewLocal(4)
	var _ Batcher = l
	keys := batchKeys(5)
	for i, k := range keys {
		if err := l.Put(k, i*10); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range GetBatch(l, keys, DefaultMaxInFlight) {
		if r.Err != nil || !r.Found || r.Value != i*10 {
			t.Fatalf("result[%d] = %+v", i, r)
		}
	}
	if got := GetBatch(l, nil, DefaultMaxInFlight); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

// TestCountingBatchCharges: the Counting decorator charges one lookup per
// key, one batch round, and records the in-flight high-water mark.
func TestCountingBatchCharges(t *testing.T) {
	c := NewCounting(MustNewLocal(4), nil)
	keys := batchKeys(6)
	for i, k := range keys {
		if err := c.Put(k, i); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Stats().Snapshot()
	c.GetBatch(keys, 4)
	delta := c.Stats().Snapshot().Sub(before)
	if delta.DHTLookups != int64(len(keys)) {
		t.Errorf("DHTLookups += %d, want %d", delta.DHTLookups, len(keys))
	}
	if delta.BatchRounds != 1 {
		t.Errorf("BatchRounds += %d, want 1", delta.BatchRounds)
	}
	if delta.BatchProbes != int64(len(keys)) {
		t.Errorf("BatchProbes += %d, want %d", delta.BatchProbes, len(keys))
	}
	if delta.MaxInFlight != 4 {
		t.Errorf("MaxInFlight high-water = %d, want 4 (min of 6 keys, cap 4)", delta.MaxInFlight)
	}
}
