package dht

import (
	"errors"
	"fmt"

	"mlight/internal/transport"
)

// Remote apply protocol. ApplyFunc is a closure, and closures only survive
// an RPC when the transport delivers requests inline (simnet). Over a real
// transport the overlays fall back to this per-key versioned
// compare-and-swap: read the value with its version, run the transform
// client-side, and install the result only if the version is unchanged —
// retrying from the returned state on contention. The owning node serialises
// CAS decisions under its store lock, so concurrent Apply callers never lose
// an update (the atomicity the conformance suite pins), at the cost of
// re-running transforms under contention.
//
// Every mutation of a key at its owner bumps the key's version (see
// VersionedStore), so a CAS raced by *any* write — another CAS, a Put, a
// handoff — observes the conflict and retries. The protocol assumes the
// key's owner stays put for the duration of one Apply, the same assumption
// the inline path's single owner-resolution already makes; ownership moves
// mid-apply are healed by the overlay's usual replication repair.

// Wire message types of the remote apply protocol, registered with the
// transport codec here so every substrate shares one vocabulary.
type (
	// GetVerReq asks the key's owner for the current value and version.
	GetVerReq struct{ Key Key }
	// GetVerResp is the owner's snapshot of the key.
	GetVerResp struct {
		Value any
		Found bool
		Ver   uint64
	}
	// CASReq installs Value (or deletes, when Keep is false) only if the
	// key's version still equals Ver.
	CASReq struct {
		Key   Key
		Ver   uint64
		Value any
		Keep  bool
	}
	// CASResp reports the outcome; on conflict (OK false) it carries the
	// current state so the caller retries without another round trip.
	CASResp struct {
		OK    bool
		Value any
		Found bool
		Ver   uint64
	}
)

func init() {
	transport.RegisterType(GetVerReq{})
	transport.RegisterType(GetVerResp{})
	transport.RegisterType(CASReq{})
	transport.RegisterType(CASResp{})
}

// ErrApplyContention is returned when a remote apply loses its CAS race
// more times than the retry bound allows. It is retryable: contention is
// transient by nature.
var ErrApplyContention = Retryable(errors.New("dht: remote apply: persistent contention"))

// remoteApplyAttempts bounds one RemoteApply's CAS retries. Each retry
// means another writer won the race, so under any finite contention the
// loop terminates; the bound only guards against livelock bugs.
const remoteApplyAttempts = 256

// RemoteApply runs fn against the key's owner through call (a closure over
// the transport's Call, bound to the owner's address) using the versioned
// CAS protocol. It returns the post-apply value and whether it was kept —
// the same contract the inline applyResp carries — so overlay replication
// can fan the result out.
func RemoteApply(call func(req any) (any, error), key Key, fn ApplyFunc) (value any, keep bool, err error) {
	respAny, err := call(GetVerReq{Key: key})
	if err != nil {
		return nil, false, err
	}
	snap, ok := respAny.(GetVerResp)
	if !ok {
		return nil, false, fmt.Errorf("dht: remote apply: bad version response %T", respAny)
	}
	for attempt := 0; attempt < remoteApplyAttempts; attempt++ {
		next, keep := fn(snap.Value, snap.Found)
		casAny, err := call(CASReq{Key: key, Ver: snap.Ver, Value: next, Keep: keep})
		if err != nil {
			return nil, false, err
		}
		cas, ok := casAny.(CASResp)
		if !ok {
			return nil, false, fmt.Errorf("dht: remote apply: bad cas response %T", casAny)
		}
		if cas.OK {
			return next, keep, nil
		}
		snap = GetVerResp{Value: cas.Value, Found: cas.Found, Ver: cas.Ver}
	}
	return nil, false, fmt.Errorf("%w: key %q", ErrApplyContention, key)
}

// VersionedStore is the owner-side half of the protocol: a per-key version
// counter an overlay node keeps beside its primary store. The zero value is
// ready to use. It is not self-locking — the owning node already serialises
// store access under its own mutex, and the version must move in the same
// critical section as the value.
type VersionedStore struct {
	vers map[Key]uint64
}

// Bump records a mutation of key. Call it (under the store lock) from every
// path that writes the primary store: user-facing stores and removes,
// handoffs, claims, and replica promotions.
func (vs *VersionedStore) Bump(key Key) {
	if vs.vers == nil {
		vs.vers = make(map[Key]uint64)
	}
	vs.vers[key]++
}

// Reset drops all versions — the crash-wipe companion to clearing the
// store. Versions restart from zero under the same identity; a client
// holding a pre-crash version cannot falsely succeed, because losing the
// store also discarded the entry its CAS would have matched.
func (vs *VersionedStore) Reset() { vs.vers = nil }

// Snapshot answers a GetVerReq against the given store state. Callers hold
// the store lock and pass the key's current value.
func (vs *VersionedStore) Snapshot(r GetVerReq, value any, found bool) GetVerResp {
	return GetVerResp{Value: value, Found: found, Ver: vs.vers[r.Key]}
}

// CAS decides a CASReq against the given current state, returning the
// response and — when the swap succeeds — reporting whether the store
// should now keep (true) or delete (false) the key. Callers hold the store
// lock, apply the mutation the decision dictates, and must NOT Bump again
// (CAS advances the version itself on success).
func (vs *VersionedStore) CAS(r CASReq, curValue any, curFound bool) (resp CASResp, apply bool) {
	if vs.vers[r.Key] != r.Ver {
		return CASResp{OK: false, Value: curValue, Found: curFound, Ver: vs.vers[r.Key]}, false
	}
	vs.Bump(r.Key)
	return CASResp{OK: true, Value: r.Value, Found: r.Keep, Ver: vs.vers[r.Key]}, true
}
