package dht_test

import (
	"fmt"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/dht/dhttest"
	"mlight/internal/simnet"
)

// durableChurner adapts a durable Local to the churn harness. A single-site
// store has no membership, so the schedule degenerates to the faults the
// substrate actually has: abrupt crashes that wipe the volatile state.
// Settle models the supervised restart every durable deployment has — the
// process comes back and replays its journal — so the full-scan gate pins
// exactly the WAL's promise: no committed mutation is lost across a crash.
type durableChurner struct {
	local *dht.Local
	d     dht.DHT
	down  bool
}

const durableAddr = simnet.NodeID("local-0")

func (c *durableChurner) DHT() dht.DHT { return c.d }

func (c *durableChurner) Live() []simnet.NodeID {
	if c.down {
		return nil
	}
	return []simnet.NodeID{durableAddr}
}

func (c *durableChurner) Down() []simnet.NodeID {
	if c.down {
		return []simnet.NodeID{durableAddr}
	}
	return nil
}

func (c *durableChurner) Crash(simnet.NodeID) error {
	c.local.CrashVolatile()
	c.down = true
	return nil
}

func (c *durableChurner) Restart(simnet.NodeID) error {
	c.down = false
	return c.local.Recover()
}

func (c *durableChurner) Leave(simnet.NodeID) error {
	return fmt.Errorf("single-site store cannot leave")
}

func (c *durableChurner) Join(simnet.NodeID) error {
	return fmt.Errorf("single-site store cannot join")
}

func (c *durableChurner) Settle() {
	if c.down {
		if err := c.local.Recover(); err != nil {
			panic(fmt.Sprintf("durable Local recovery: %v", err))
		}
		c.down = false
	}
}

// durableChurnOpts schedules crashes only: no leaves or joins (a
// single-site store has no peers to hand keys to), every crash followed by
// the supervised restart Settle performs.
func durableChurnOpts() dhttest.ChurnOptions {
	return dhttest.ChurnOptions{
		Config: simnet.ChurnConfig{
			Seed:      dhttest.SeedFromEnv(1),
			CrashRate: 0.5,
			// The single member may crash: -1 disables the MinLive floor.
			MinLive:               -1,
			MaxDeparturesPerRound: 1,
		},
	}
}

func newDurableChurner(t *testing.T, wrap func(dht.DHT) dht.DHT) *durableChurner {
	t.Helper()
	w, err := dht.OpenWAL(dht.WALOptions{
		Dir: t.TempDir(), Codec: testWALCodec{}, CompactThreshold: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := w.Close(); err != nil {
			t.Errorf("closing WAL: %v", err)
		}
	})
	local, err := dht.NewDurableLocal(8, w)
	if err != nil {
		t.Fatal(err)
	}
	return &durableChurner{local: local, d: wrap(local)}
}

func TestChurnScheduleDurableLocal(t *testing.T) {
	dhttest.RunChurnOpts(t, func(t *testing.T) dhttest.Churner {
		return newDurableChurner(t, func(d dht.DHT) dht.DHT { return d })
	}, durableChurnOpts())
}

func TestChurnScheduleDurableLocalDecorated(t *testing.T) {
	dhttest.RunChurnOpts(t, func(t *testing.T) dhttest.Churner {
		return newDurableChurner(t, func(d dht.DHT) dht.DHT {
			return dht.NewResilient(dht.NewCounting(d, nil),
				dht.RetryPolicy{MaxAttempts: 4, Sleep: dht.NoSleep}, nil)
		})
	}, durableChurnOpts())
}

// testWALCodec round-trips the ints the churn workload stores.
type testWALCodec struct{}

func (testWALCodec) Marshal(v any) ([]byte, error) {
	n, ok := v.(int)
	if !ok {
		return nil, fmt.Errorf("testWALCodec: cannot encode %T", v)
	}
	return []byte(fmt.Sprintf("%d", n)), nil
}

func (testWALCodec) Unmarshal(data []byte) (any, error) {
	var n int
	if _, err := fmt.Sscanf(string(data), "%d", &n); err != nil {
		return nil, err
	}
	return n, nil
}
