package dht

import "sync"

// BatchResult is the outcome of one key's Get inside a batch. Results are
// positional: result i always corresponds to keys[i], whatever order the
// probes actually completed in.
type BatchResult struct {
	Value any
	Found bool
	Err   error
}

// Batcher is an optional substrate interface: resolve several independent
// Gets in one call. Substrates with a cheap shared read path (the local map
// DHT) implement it natively; for everything else GetBatch falls back to a
// bounded worker pool over the plain Get method, so the caller's latency is
// one round instead of len(keys) sequential round trips.
//
// maxInFlight caps the number of concurrently outstanding probes; values
// below 1 select a sensible default. Implementations must preserve the
// positional correspondence between keys and results.
type Batcher interface {
	GetBatch(keys []Key, maxInFlight int) []BatchResult
}

// DefaultMaxInFlight is the probe-concurrency cap used when a caller does
// not specify one.
const DefaultMaxInFlight = 16

// GetBatch resolves every key against d in one logical round. When d
// implements Batcher the native implementation is used; otherwise up to
// maxInFlight concurrent Gets are issued through a bounded worker pool
// (stdlib only: WaitGroup + semaphore channel). The returned slice is
// positional and always has len(keys) entries.
//
// All implementations of DHT in this repository are safe for concurrent
// use, which is what makes the fallback sound; see the ConcurrentOverlap
// conformance case in dhttest.
func GetBatch(d DHT, keys []Key, maxInFlight int) []BatchResult {
	if b, ok := d.(Batcher); ok {
		return b.GetBatch(keys, maxInFlight)
	}
	return poolGetBatch(d, keys, maxInFlight)
}

// poolGetBatch is the generic bounded-worker fallback. The round loop
// itself is allocation-free: the per-batch setup (results slice, semaphore,
// per-key closures) is the waived fixed cost, after which each probe runs
// without touching the heap.
//
//lint:hotpath
func poolGetBatch(d DHT, keys []Key, maxInFlight int) []BatchResult {
	if maxInFlight < 1 {
		maxInFlight = DefaultMaxInFlight
	}
	results := make([]BatchResult, len(keys)) //lint:allow hotpath per-batch result slice, fixed setup cost
	switch {
	case len(keys) == 0:
		return results
	case len(keys) == 1 || maxInFlight == 1:
		// Nothing to overlap: run inline and skip the goroutine overhead.
		for i, k := range keys {
			results[i].Value, results[i].Found, results[i].Err = d.Get(k)
		}
		return results
	}
	sem := make(chan struct{}, maxInFlight)
	var wg sync.WaitGroup //lint:allow hotpath WaitGroup shared with probe goroutines, fixed setup cost
	for i := range keys {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) { //lint:allow hotpath per-probe closure, the cost GetBatch amortizes over the round
			defer wg.Done()
			defer func() { <-sem }()
			results[i].Value, results[i].Found, results[i].Err = d.Get(keys[i])
		}(i)
	}
	wg.Wait()
	return results
}
