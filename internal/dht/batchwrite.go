package dht

import "sync"

// This file is the write-side counterpart of the GetBatch machinery in
// parallel.go: several independent Puts or Applies resolved in one logical
// round. The ingestion path uses it to ship relocated buckets (one PutBatch
// round instead of a sequential loop) and to run group-commit inserts (one
// Apply per destination leaf, many leaves in flight at once).

// PutOp is one keyed store inside a batch write.
type PutOp struct {
	Key   Key
	Value any
}

// ApplyOp is one keyed transform inside a batch apply. The function runs at
// the owning peer with the same atomicity contract as DHT.Apply; under a
// retrying decorator it may be re-invoked after a failed attempt (failed
// attempts never half-apply over the substrates in this repository), so
// closures must be safe to run again from scratch.
type ApplyOp struct {
	Key Key
	Fn  ApplyFunc
}

// BatchWriter is the optional write-side substrate interface: resolve
// several independent Puts or Applies in one call. Substrates with a cheap
// shared write path (the local map DHT) implement it natively; for
// everything else the package-level PutBatch/ApplyBatch fall back to a
// bounded worker pool over the plain methods, so the caller pays one round
// instead of len(ops) sequential round trips.
//
// maxInFlight caps the number of concurrently outstanding operations;
// values below 1 select DefaultMaxInFlight. The returned error slice is
// positional: errs[i] is operation i's outcome, nil on success.
type BatchWriter interface {
	PutBatch(ops []PutOp, maxInFlight int) []error
	ApplyBatch(ops []ApplyOp, maxInFlight int) []error
}

// PutBatch stores every operation against d in one logical round. When d
// implements BatchWriter the native implementation is used; otherwise up to
// maxInFlight concurrent Puts are issued through a bounded worker pool. The
// returned slice is positional and always has len(ops) entries.
func PutBatch(d DHT, ops []PutOp, maxInFlight int) []error {
	if b, ok := d.(BatchWriter); ok {
		return b.PutBatch(ops, maxInFlight)
	}
	return poolWriteBatch(len(ops), maxInFlight, func(i int) error {
		return d.Put(ops[i].Key, ops[i].Value)
	})
}

// ApplyBatch runs every transform against d in one logical round, with the
// same dispatch rule as PutBatch. Each individual Apply keeps its atomicity;
// the batch as a whole is not atomic — operations on distinct keys land
// independently, exactly as they would issued one by one.
func ApplyBatch(d DHT, ops []ApplyOp, maxInFlight int) []error {
	if b, ok := d.(BatchWriter); ok {
		return b.ApplyBatch(ops, maxInFlight)
	}
	return poolWriteBatch(len(ops), maxInFlight, func(i int) error {
		return d.Apply(ops[i].Key, ops[i].Fn)
	})
}

// poolWriteBatch is the generic bounded-worker fallback shared by the two
// write batches (same shape as poolGetBatch).
func poolWriteBatch(n, maxInFlight int, op func(i int) error) []error {
	if maxInFlight < 1 {
		maxInFlight = DefaultMaxInFlight
	}
	errs := make([]error, n)
	switch {
	case n == 0:
		return errs
	case n == 1 || maxInFlight == 1:
		// Nothing to overlap: run inline and skip the goroutine overhead.
		for i := 0; i < n; i++ {
			errs[i] = op(i)
		}
		return errs
	}
	sem := make(chan struct{}, maxInFlight)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = op(i)
		}(i)
	}
	wg.Wait()
	return errs
}
