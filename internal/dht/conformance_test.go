package dht_test

import (
	"testing"

	"mlight/internal/dht"
	"mlight/internal/dht/dhttest"
)

func TestLocalConformance(t *testing.T) {
	dhttest.RunConformance(t, func(t *testing.T) dht.DHT {
		return dht.MustNewLocal(8)
	})
}

func TestCountingConformance(t *testing.T) {
	dhttest.RunConformance(t, func(t *testing.T) dht.DHT {
		return dht.NewCounting(dht.MustNewLocal(8), nil)
	})
}

func TestResilientConformance(t *testing.T) {
	// The resilient decorator must be behaviourally invisible over a
	// healthy substrate.
	dhttest.RunConformance(t, func(t *testing.T) dht.DHT {
		return dht.NewResilient(dht.MustNewLocal(8), dht.RetryPolicy{Sleep: dht.NoSleep}, nil)
	})
}

func TestLocalFaultTolerance(t *testing.T) {
	dhttest.RunFaultTolerance(t, func(t *testing.T) dht.DHT {
		return dht.MustNewLocal(8)
	})
}
