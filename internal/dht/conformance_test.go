package dht_test

import (
	"testing"

	"mlight/internal/dht"
	"mlight/internal/dht/dhttest"
)

func TestLocalConformance(t *testing.T) {
	dhttest.RunConformance(t, func(t *testing.T) dht.DHT {
		return dht.MustNewLocal(8)
	})
}

func TestCountingConformance(t *testing.T) {
	dhttest.RunConformance(t, func(t *testing.T) dht.DHT {
		return dht.NewCounting(dht.MustNewLocal(8), nil)
	})
}
