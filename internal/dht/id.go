package dht

import (
	"crypto/sha1"
	"encoding/hex"
	"math/big"
)

// IDBits is the width of the identifier space (SHA-1, as in Chord and
// Bamboo/Pastry).
const IDBits = 160

// ID is a point on the 160-bit identifier ring, big-endian.
type ID [IDBits / 8]byte

// HashKey maps an application key onto the ring.
func HashKey(k Key) ID {
	return ID(sha1.Sum([]byte(k)))
}

// HashString maps an arbitrary string (e.g. a peer address) onto the ring.
func HashString(s string) ID {
	return ID(sha1.Sum([]byte(s)))
}

// Cmp compares two identifiers as unsigned big-endian integers, returning
// -1, 0, or +1.
func (a ID) Cmp(b ID) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Between reports whether x lies in the half-open ring interval (a, b].
// When a == b the interval is the full ring (every x qualifies), matching
// Chord's conventions for a ring with a single node.
func (x ID) Between(a, b ID) bool {
	switch a.Cmp(b) {
	case -1: // no wraparound
		return a.Cmp(x) < 0 && x.Cmp(b) <= 0
	case 1: // wraps past zero
		return a.Cmp(x) < 0 || x.Cmp(b) <= 0
	default: // a == b: full ring
		return true
	}
}

// BetweenOpen reports whether x lies in the open ring interval (a, b).
func (x ID) BetweenOpen(a, b ID) bool {
	if x == b {
		return false
	}
	return x.Between(a, b)
}

// AddPowerOfTwo returns a + 2^k on the ring (mod 2^160); used to compute
// Chord finger starts. It panics if k is outside [0, IDBits).
func (a ID) AddPowerOfTwo(k int) ID {
	if k < 0 || k >= IDBits {
		panic("dht: power-of-two exponent out of range")
	}
	out := a
	byteIdx := len(out) - 1 - k/8
	carry := uint16(1) << (k % 8)
	for i := byteIdx; i >= 0 && carry > 0; i-- {
		sum := uint16(out[i]) + carry
		out[i] = byte(sum)
		carry = sum >> 8
	}
	return out
}

// Sub returns a - b modulo 2^160 — the clockwise ring distance from b to a.
func (a ID) Sub(b ID) ID {
	var out ID
	borrow := 0
	for i := len(a) - 1; i >= 0; i-- {
		d := int(a[i]) - int(b[i]) - borrow
		if d < 0 {
			d += 256
			borrow = 1
		} else {
			borrow = 0
		}
		out[i] = byte(d)
	}
	return out
}

// CircularDistance returns the shorter way around the ring between a and b:
// min(a-b, b-a) mod 2^160.
func CircularDistance(a, b ID) ID {
	d1 := a.Sub(b)
	d2 := b.Sub(a)
	if d1.Cmp(d2) <= 0 {
		return d1
	}
	return d2
}

// BigInt returns the identifier as a big integer (for tests and debug
// output).
func (a ID) BigInt() *big.Int {
	return new(big.Int).SetBytes(a[:])
}

// Digit returns the i-th base-2^b digit of the identifier, counting from
// the most significant digit — the prefix digits used by Pastry routing.
// It panics unless b divides 8 evenly into the identifier (b ∈ {1,2,4,8}).
func (a ID) Digit(i, b int) int {
	switch b {
	case 1, 2, 4, 8:
	default:
		panic("dht: digit width must be 1, 2, 4, or 8")
	}
	perByte := 8 / b
	byteIdx := i / perByte
	if byteIdx >= len(a) {
		panic("dht: digit index out of range")
	}
	shift := uint(8 - b*(i%perByte+1))
	return int(a[byteIdx]>>shift) & ((1 << b) - 1)
}

// NumDigits returns how many base-2^b digits an identifier has.
func NumDigits(b int) int { return IDBits / b }

// CommonPrefixDigits returns the number of leading base-2^b digits shared
// by a and other.
func (a ID) CommonPrefixDigits(other ID, b int) int {
	n := 0
	for i := 0; i < NumDigits(b); i++ {
		if a.Digit(i, b) != other.Digit(i, b) {
			return n
		}
		n++
	}
	return n
}

// String renders the identifier as its first 8 hex digits, enough to tell
// peers apart in logs.
func (a ID) String() string {
	return hex.EncodeToString(a[:4])
}

// FullString renders all 40 hex digits.
func (a ID) FullString() string {
	return hex.EncodeToString(a[:])
}
