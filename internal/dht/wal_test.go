package dht

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
)

// testCodec round-trips the ints and strings the tests store.
type testCodec struct{}

func (testCodec) Marshal(v any) ([]byte, error) {
	switch x := v.(type) {
	case int:
		return append([]byte{'i'}, strconv.Itoa(x)...), nil
	case string:
		return append([]byte{'s'}, x...), nil
	default:
		return nil, fmt.Errorf("testCodec: cannot encode %T", v)
	}
}

func (testCodec) Unmarshal(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("testCodec: empty payload")
	}
	switch data[0] {
	case 'i':
		return strconv.Atoi(string(data[1:]))
	case 's':
		return string(data[1:]), nil
	default:
		return nil, fmt.Errorf("testCodec: unknown tag %q", data[0])
	}
}

func openTestWAL(t *testing.T, dir string, threshold int) *WAL {
	t.Helper()
	w, err := OpenWAL(WALOptions{Dir: dir, Codec: testCodec{}, CompactThreshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := w.Close(); err != nil {
			t.Errorf("wal close: %v", err)
		}
	})
	return w
}

func TestDurableLocalCrashRecover(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, 0)
	l, err := NewDurableLocal(4, w)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Durable() {
		t.Fatal("durable Local reports not durable")
	}
	if err := l.Put("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Put("b", "two"); err != nil {
		t.Fatal(err)
	}
	if err := l.Put("gone", 3); err != nil {
		t.Fatal(err)
	}
	if err := l.Remove("gone"); err != nil {
		t.Fatal(err)
	}
	if err := l.Apply("a", func(cur any, ok bool) (any, bool) {
		return cur.(int) + 10, true
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Apply("b", func(cur any, ok bool) (any, bool) {
		return nil, false // delete via apply
	}); err != nil {
		t.Fatal(err)
	}

	l.CrashVolatile()
	if l.Len() != 0 {
		t.Fatalf("crash left %d entries in memory", l.Len())
	}
	if err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	want := map[Key]any{"a": 11}
	got := dump(t, l)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
}

func TestDurableLocalBatchPathsJournal(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, 0)
	l, err := NewDurableLocal(4, w)
	if err != nil {
		t.Fatal(err)
	}
	puts := []PutOp{{Key: "p0", Value: 0}, {Key: "p1", Value: 1}, {Key: "p2", Value: 2}}
	for _, e := range l.PutBatch(puts, 4) {
		if e != nil {
			t.Fatal(e)
		}
	}
	applies := []ApplyOp{
		{Key: "p0", Fn: func(cur any, ok bool) (any, bool) { return cur.(int) + 100, true }},
		{Key: "p0", Fn: func(cur any, ok bool) (any, bool) { return cur.(int) + 1, true }}, // sees staged 100
		{Key: "p1", Fn: func(cur any, ok bool) (any, bool) { return nil, false }},
		{Key: "fresh", Fn: func(cur any, ok bool) (any, bool) {
			if ok {
				t.Errorf("fresh key claims to exist: %v", cur)
			}
			return "new", true
		}},
	}
	for _, e := range l.ApplyBatch(applies, 4) {
		if e != nil {
			t.Fatal(e)
		}
	}
	want := dump(t, l)
	if want[Key("p0")] != 101 {
		t.Fatalf("staged apply chain broke: p0 = %v, want 101", want[Key("p0")])
	}
	l.CrashVolatile()
	if err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := dump(t, l); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
}

func TestWALReopenReplays(t *testing.T) {
	dir := t.TempDir()
	func() {
		w := openTestWAL(t, dir, 0)
		l, err := NewDurableLocal(4, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if err := l.Put(Key(fmt.Sprintf("k%d", i)), i); err != nil {
				t.Fatal(err)
			}
		}
	}()
	w := openTestWAL(t, dir, 0)
	l, err := NewDurableLocal(4, w)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 50 {
		t.Fatalf("reopen recovered %d entries, want 50", l.Len())
	}
	info := w.LastReplay()
	if info.LogRecords != 50 || info.TornTail {
		t.Fatalf("replay info = %+v, want 50 log records, no torn tail", info)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	func() {
		w := openTestWAL(t, dir, 0)
		l, err := NewDurableLocal(4, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if err := l.Put(Key(fmt.Sprintf("k%d", i)), i); err != nil {
				t.Fatal(err)
			}
		}
	}()
	// Tear the tail: a process died mid-append.
	logPath := filepath.Join(dir, walFileName)
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x17, 'g', 'a', 'r'}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	w := openTestWAL(t, dir, 0)
	l, err := NewDurableLocal(4, w)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 10 {
		t.Fatalf("recovered %d entries, want 10", l.Len())
	}
	if info := w.LastReplay(); !info.TornTail || info.LogRecords != 10 {
		t.Fatalf("replay info = %+v, want torn tail with 10 records", info)
	}
	// The torn bytes are gone: new appends extend a clean log.
	if err := l.Put("after", 99); err != nil {
		t.Fatal(err)
	}
	l.CrashVolatile()
	if err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := l.Get("after"); err != nil || !ok || v != 99 {
		t.Fatalf("append after torn-tail truncation lost: %v %v %v", v, ok, err)
	}
	if info := w.LastReplay(); info.TornTail {
		t.Fatalf("second replay still sees a torn tail: %+v", info)
	}
}

func TestWALCorruptMidLogStopsAtCorruption(t *testing.T) {
	dir := t.TempDir()
	func() {
		w := openTestWAL(t, dir, 0)
		l, err := NewDurableLocal(4, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if err := l.Put(Key(fmt.Sprintf("key-%02d", i)), i); err != nil {
				t.Fatal(err)
			}
		}
	}()
	logPath := filepath.Join(dir, walFileName)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte halfway in: the checksum of that record must fail and
	// replay must keep everything before it, never panic, never invent data.
	mutated := append([]byte(nil), data...)
	mutated[len(mutated)/2] ^= 0xff
	if err := os.WriteFile(logPath, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	w := openTestWAL(t, dir, 0)
	state, err := w.Restore()
	if err != nil {
		t.Fatal(err)
	}
	info := w.LastReplay()
	if !info.TornTail {
		t.Fatalf("corrupt record not reported as torn tail: %+v", info)
	}
	if len(state) != info.LogRecords {
		t.Fatalf("state has %d entries but %d records replayed", len(state), info.LogRecords)
	}
	for k, v := range state {
		var i int
		if _, err := fmt.Sscanf(string(k), "key-%02d", &i); err != nil || v != i {
			t.Fatalf("replayed entry %q=%v is not one we wrote", k, v)
		}
	}
}

func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, 8)
	l, err := NewDurableLocal(4, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		// Overwrite a small key set so compaction actually shrinks state.
		if err := l.Put(Key(fmt.Sprintf("k%d", i%4)), i); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.LogRecords(); got >= 8 {
		t.Fatalf("log carries %d records, compaction threshold 8 never fired", got)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFileName)); err != nil {
		t.Fatalf("no snapshot after compaction: %v", err)
	}
	before := dump(t, l)
	l.CrashVolatile()
	if err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := dump(t, l); !reflect.DeepEqual(got, before) {
		t.Fatalf("post-compaction recovery %v, want %v", got, before)
	}
}

func TestWALCorruptSnapshotRefused(t *testing.T) {
	dir := t.TempDir()
	func() {
		w := openTestWAL(t, dir, 2)
		l, err := NewDurableLocal(4, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if err := l.Put(Key(fmt.Sprintf("k%d", i)), i); err != nil {
				t.Fatal(err)
			}
		}
	}()
	snapPath := filepath.Join(dir, snapshotFileName)
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w := openTestWAL(t, dir, 0)
	if _, err := w.Restore(); err == nil {
		t.Fatal("corrupt snapshot replayed without error")
	}
}

func TestWALClosedErrors(t *testing.T) {
	w, err := OpenWAL(WALOptions{Dir: t.TempDir(), Codec: testCodec{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := w.Append([]WALRecord{{Op: WALPut, Key: "k", Value: 1}}); err == nil {
		t.Error("Append on closed WAL succeeded")
	}
	if err := w.Sync(); err == nil {
		t.Error("Sync on closed WAL succeeded")
	}
	if _, err := w.Restore(); err == nil {
		t.Error("Restore on closed WAL succeeded")
	}
}

func TestWALSyncAndSyncEveryAppend(t *testing.T) {
	w, err := OpenWAL(WALOptions{Dir: t.TempDir(), Codec: testCodec{}, SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append([]WALRecord{{Op: WALPut, Key: "k", Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
}

// FuzzWALRestore: an arbitrary log file must never panic Restore, and
// whatever state it yields must be exactly re-journalable: writing the
// recovered state through a fresh WAL and restoring again reproduces it.
func FuzzWALRestore(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x17, 'g', 'a', 'r'})
	// A well-formed two-record log, built by the real writer.
	seedDir, err := os.MkdirTemp("", "walfuzzseed")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(seedDir)
	sw, err := OpenWAL(WALOptions{Dir: seedDir, Codec: testCodec{}})
	if err != nil {
		f.Fatal(err)
	}
	if err := sw.Append([]WALRecord{
		{Op: WALPut, Key: "a", Value: 7},
		{Op: WALRemove, Key: "b"},
	}); err != nil {
		f.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(filepath.Join(seedDir, walFileName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(append(append([]byte(nil), seed...), 0xff, 0x00, 0x17))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFileName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(WALOptions{Dir: dir, Codec: testCodec{}})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		state, err := w.Restore()
		if err != nil {
			t.Fatalf("log-only restore must tolerate arbitrary bytes, got %v", err)
		}
		// Round-trip: recovered state re-journals to the same state.
		dir2 := t.TempDir()
		w2, err := OpenWAL(WALOptions{Dir: dir2, Codec: testCodec{}})
		if err != nil {
			t.Fatal(err)
		}
		defer w2.Close()
		recs := make([]WALRecord, 0, len(state))
		for k, v := range state {
			recs = append(recs, WALRecord{Op: WALPut, Key: k, Value: v})
		}
		if err := w2.Append(recs); err != nil {
			t.Fatalf("recovered state failed to re-journal: %v", err)
		}
		again, err := w2.Restore()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, state) {
			t.Fatalf("round-trip differs: %v vs %v", again, state)
		}
	})
}

func dump(t *testing.T, l *Local) map[Key]any {
	t.Helper()
	out := make(map[Key]any)
	if err := l.Range(func(k Key, v any) bool {
		out[k] = v
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}
