// Package dht defines the generic put/get/lookup interface that the m-LIGHT
// paper assumes of its substrate ("they share a generic put/get/lookup
// interface", §1), the 160-bit identifier space shared by the overlays, a
// fast single-process implementation, and a counting decorator that meters
// DHT operations for the experiments.
//
// Everything above this interface — m-LIGHT itself and the PHT and DST
// baselines — is substrate-agnostic: it can run over the local map DHT, the
// Chord overlay (internal/chord), or the Pastry/Bamboo-style overlay
// (internal/pastry) without modification.
package dht

import "errors"

// Key is an application-level DHT key. Keys are hashed (SHA-1, as in
// Chord/Bamboo) onto the identifier ring; the peer whose region covers the
// hash stores the value.
type Key string

// ApplyFunc transforms the value stored under a key, executing at the
// owning peer. cur is the current value (nil if absent, with exists=false);
// the returned next value replaces it, or the entry is removed when
// keep=false. Callers capture any outputs in the closure.
type ApplyFunc func(cur any, exists bool) (next any, keep bool)

// DHT is the substrate interface. Implementations must be safe for
// concurrent use.
//
// Each method is one logical DHT operation — the unit in which the paper
// measures maintenance and query bandwidth (it contains a DHT-lookup to
// locate the owner, plus the value transfer).
type DHT interface {
	// Put stores value under key, replacing any existing value.
	Put(key Key, value any) error
	// Get returns the value stored under key; found is false when absent.
	Get(key Key) (value any, found bool, err error)
	// Remove deletes key. Removing an absent key is not an error.
	Remove(key Key) error
	// Apply atomically transforms the value under key at the owning peer.
	// This models the application-level handlers that over-DHT indexes
	// install on peers (e.g. "append this record to your bucket"), so the
	// full value does not cross the network.
	Apply(key Key, fn ApplyFunc) error
	// Owner returns the identifier of the peer currently responsible for
	// key, for load-distribution measurements.
	Owner(key Key) (string, error)
}

// Enumerator is an optional interface for substrates that can walk their
// stored entries — available on all in-process implementations and used by
// the load-balance experiments.
type Enumerator interface {
	// Range calls fn for every stored (key, value) pair until fn returns
	// false. The iteration order is unspecified.
	Range(fn func(key Key, value any) bool) error
}

// ErrNoPeers is returned by operations on a DHT with no live peers.
var ErrNoPeers = errors.New("dht: no live peers")
