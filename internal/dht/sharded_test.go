package dht_test

import (
	"fmt"
	"sync"
	"testing"

	"mlight/internal/dht"
	"mlight/internal/dht/dhttest"
)

func TestShardedConformance(t *testing.T) {
	dhttest.RunConformance(t, func(t *testing.T) dht.DHT {
		return dht.MustNewSharded(8)
	})
}

// TestShardedOwnerMatchesLocal: the sharded store must assign every key to
// the same virtual peer as the map-backed Local — ownership is ring
// configuration, not storage layout.
func TestShardedOwnerMatchesLocal(t *testing.T) {
	for _, peers := range []int{1, 3, 64} {
		l := dht.MustNewLocal(peers)
		s := dht.MustNewSharded(peers)
		for i := 0; i < 500; i++ {
			key := dht.Key(fmt.Sprintf("b/%b", i))
			lo, err1 := l.Owner(key)
			so, err2 := s.Owner(key)
			if err1 != nil || err2 != nil || lo != so {
				t.Fatalf("peers=%d key=%s: Local owner %q (%v), Sharded owner %q (%v)",
					peers, key, lo, err1, so, err2)
			}
		}
		lp, sp := l.Peers(), s.Peers()
		if len(lp) != len(sp) {
			t.Fatalf("peers=%d: peer lists differ in length", peers)
		}
		for i := range lp {
			if lp[i] != sp[i] {
				t.Fatalf("peers=%d: peer %d is %q vs %q", peers, i, lp[i], sp[i])
			}
		}
	}
}

// TestShardedBatchAndRange exercises the shard-grouped batch paths and the
// enumerator against a model map.
func TestShardedBatchAndRange(t *testing.T) {
	s := dht.MustNewSharded(4)
	const n = 1000
	ops := make([]dht.PutOp, n)
	for i := range ops {
		ops[i] = dht.PutOp{Key: dht.Key(fmt.Sprintf("k%d", i)), Value: i}
	}
	for _, err := range s.PutBatch(ops, 8) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	keys := make([]dht.Key, n+1)
	for i := range ops {
		keys[i] = ops[i].Key
	}
	keys[n] = "absent"
	res := s.GetBatch(keys, 8)
	for i := 0; i < n; i++ {
		if !res[i].Found || res[i].Value != i {
			t.Fatalf("GetBatch[%d] = %+v", i, res[i])
		}
	}
	if res[n].Found {
		t.Fatal("GetBatch found an absent key")
	}
	// ApplyBatch: increment evens, drop odds.
	aps := make([]dht.ApplyOp, n)
	for i := range aps {
		i := i
		aps[i] = dht.ApplyOp{Key: ops[i].Key, Fn: func(cur any, ok bool) (any, bool) {
			if !ok {
				t.Errorf("key %s missing in ApplyBatch", ops[i].Key)
				return nil, false
			}
			if i%2 == 0 {
				return cur.(int) + 1, true
			}
			return nil, false
		}}
	}
	for _, err := range s.ApplyBatch(aps, 8) {
		if err != nil {
			t.Fatal(err)
		}
	}
	got := map[dht.Key]any{}
	if err := s.Range(func(k dht.Key, v any) bool {
		got[k] = v
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != n/2 {
		t.Fatalf("after ApplyBatch: %d entries, want %d", len(got), n/2)
	}
	for i := 0; i < n; i += 2 {
		if got[ops[i].Key] != i+1 {
			t.Fatalf("key %s = %v, want %d", ops[i].Key, got[ops[i].Key], i+1)
		}
	}
}

// TestShardedConcurrent hammers disjoint keys from many goroutines — run
// under -race this is the shard-safety proof.
func TestShardedConcurrent(t *testing.T) {
	s := dht.MustNewSharded(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := dht.Key(fmt.Sprintf("g%d-%d", g, i))
				if err := s.Put(key, i); err != nil {
					t.Error(err)
				}
				if err := s.Apply(key, func(cur any, ok bool) (any, bool) {
					return cur.(int) + 1, true
				}); err != nil {
					t.Error(err)
				}
				if v, ok, err := s.Get(key); err != nil || !ok || v != i+1 {
					t.Errorf("Get(%s) = %v %v %v", key, v, ok, err)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8*200 {
		t.Fatalf("Len = %d", s.Len())
	}
}

// BenchmarkShardedPutGet measures one Put + Get round trip through the
// striped store, the operation the bulk-load and query paths repeat
// millions of times at scale.
func BenchmarkShardedPutGet(b *testing.B) {
	s := dht.MustNewSharded(64)
	keys := make([]dht.Key, 1024)
	for i := range keys {
		keys[i] = dht.Key(fmt.Sprintf("bench-key-%d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&1023]
		if err := s.Put(k, i); err != nil {
			b.Fatal(err)
		}
		if _, ok, err := s.Get(k); err != nil || !ok {
			b.Fatal(err)
		}
	}
}
