package dht

import (
	"fmt"
	"testing"
)

// BenchmarkWALAppend measures the group-commit journal write: one Append
// call carrying a batch of records, encode + CRC + single write, no
// per-record fsync (SyncEveryAppend off, as in the durable Local's
// default configuration).
func BenchmarkWALAppend(b *testing.B) {
	for _, batch := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch-%d", batch), func(b *testing.B) {
			w, err := OpenWAL(WALOptions{Dir: b.TempDir(), Codec: testCodec{}, CompactThreshold: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			recs := make([]WALRecord, batch)
			for i := range recs {
				recs[i] = WALRecord{Op: WALPut, Key: Key(fmt.Sprintf("bench-%d", i)), Value: i}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append(recs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecoveryReplay measures Restore over a journal of the given
// size: the crash-recovery cost a durable Local pays in NewDurableLocal /
// Recover. The log-only variant replays every mutation; the compacted
// variant loads the snapshot plus an empty log tail.
func BenchmarkRecoveryReplay(b *testing.B) {
	for _, tc := range []struct {
		name    string
		records int
		compact bool
	}{
		{"log-1k", 1000, false},
		{"log-10k", 10000, false},
		{"snapshot-10k", 10000, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			w, err := OpenWAL(WALOptions{Dir: b.TempDir(), Codec: testCodec{}, CompactThreshold: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			recs := make([]WALRecord, tc.records)
			for i := range recs {
				recs[i] = WALRecord{Op: WALPut, Key: Key(fmt.Sprintf("bench-%d", i)), Value: i}
			}
			if err := w.Append(recs); err != nil {
				b.Fatal(err)
			}
			if tc.compact {
				state, err := w.Restore()
				if err != nil {
					b.Fatal(err)
				}
				if err := w.Compact(state); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				state, err := w.Restore()
				if err != nil {
					b.Fatal(err)
				}
				if len(state) != tc.records {
					b.Fatalf("restored %d records, want %d", len(state), tc.records)
				}
			}
		})
	}
}
