package dht

import (
	"fmt"
	"sync"
	"testing"

	"mlight/internal/metrics"
)

func TestLocalPutGetRemove(t *testing.T) {
	l := MustNewLocal(4)
	if _, ok, err := l.Get("absent"); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Error("Get(absent) found a value")
	}
	if err := l.Put("k", 42); err != nil {
		t.Fatal(err)
	}
	v, ok, err := l.Get("k")
	if err != nil || !ok || v != 42 {
		t.Fatalf("Get(k) = %v, %v, %v", v, ok, err)
	}
	if err := l.Put("k", 43); err != nil {
		t.Fatal(err)
	}
	if v, _, err := l.Get("k"); err != nil {
		t.Fatal(err)
	} else if v != 43 {
		t.Errorf("Put did not replace: %v", v)
	}
	if err := l.Remove("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := l.Get("k"); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Error("Remove left value behind")
	}
	if err := l.Remove("k"); err != nil {
		t.Errorf("Remove of absent key errored: %v", err)
	}
}

func TestLocalApply(t *testing.T) {
	l := MustNewLocal(1)
	// Create via Apply.
	err := l.Apply("counter", func(cur any, exists bool) (any, bool) {
		if exists {
			t.Error("expected absent value on first Apply")
		}
		return 1, true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mutate via Apply.
	if err := l.Apply("counter", func(cur any, exists bool) (any, bool) {
		n, ok := cur.(int)
		if !exists || !ok {
			t.Errorf("Apply saw cur=%v exists=%v", cur, exists)
		}
		return n + 1, true
	}); err != nil {
		t.Fatal(err)
	}
	if v, _, err := l.Get("counter"); err != nil {
		t.Fatal(err)
	} else if v != 2 {
		t.Errorf("counter = %v, want 2", v)
	}
	// Delete via Apply.
	if err := l.Apply("counter", func(cur any, exists bool) (any, bool) {
		return nil, false
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := l.Get("counter"); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Error("Apply(keep=false) did not delete")
	}
}

func TestLocalOwnerConsistent(t *testing.T) {
	l := MustNewLocal(16)
	owners := make(map[string]int)
	for i := 0; i < 2000; i++ {
		k := Key(fmt.Sprintf("key-%d", i))
		o1, err := l.Owner(k)
		if err != nil {
			t.Fatal(err)
		}
		o2, err := l.Owner(k)
		if err != nil {
			t.Fatal(err)
		}
		if o1 != o2 {
			t.Fatalf("Owner(%q) unstable: %q vs %q", k, o1, o2)
		}
		owners[o1]++
	}
	if len(owners) < 8 {
		t.Errorf("only %d of 16 peers own keys; hashing badly skewed", len(owners))
	}
}

func TestLocalNeedsPeers(t *testing.T) {
	if _, err := NewLocal(0); err == nil {
		t.Error("NewLocal(0) succeeded")
	}
}

func TestLocalRange(t *testing.T) {
	l := MustNewLocal(2)
	for i := 0; i < 10; i++ {
		if err := l.Put(Key(fmt.Sprintf("k%d", i)), i); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	if err := l.Range(func(k Key, v any) bool { seen++; return true }); err != nil {
		t.Fatal(err)
	}
	if seen != 10 {
		t.Errorf("Range visited %d entries, want 10", seen)
	}
	// Early stop.
	seen = 0
	if err := l.Range(func(k Key, v any) bool { seen++; return seen < 3 }); err != nil {
		t.Fatal(err)
	}
	if seen != 3 {
		t.Errorf("Range after early stop visited %d, want 3", seen)
	}
	if l.Len() != 10 {
		t.Errorf("Len = %d, want 10", l.Len())
	}
}

func TestLocalConcurrentAccess(t *testing.T) {
	l := MustNewLocal(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key(fmt.Sprintf("g%d-%d", g, i))
				if err := l.Put(k, i); err != nil {
					t.Error(err)
					return
				}
				if _, ok, err := l.Get(k); err != nil || !ok {
					t.Errorf("lost %q: ok=%v err=%v", k, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != 8*200 {
		t.Errorf("Len = %d, want %d", l.Len(), 8*200)
	}
}

func TestCountingCharges(t *testing.T) {
	var stats metrics.IndexStats
	c := NewCounting(MustNewLocal(2), &stats)
	if err := c.Put("a", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("missing"); err != nil {
		t.Fatal(err)
	}
	if err := c.Apply("a", func(cur any, ok bool) (any, bool) { return 2, true }); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if got := stats.DHTLookups.Load(); got != 5 {
		t.Errorf("DHTLookups = %d, want 5", got)
	}
	// Owner and Range are measurement aids: uncounted.
	if _, err := c.Owner("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Range(func(Key, any) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if got := stats.DHTLookups.Load(); got != 5 {
		t.Errorf("Owner/Range were counted: %d", got)
	}
}

type opaqueDHT struct{ DHT }

func TestCountingRangeUnsupported(t *testing.T) {
	var stats metrics.IndexStats
	c := NewCounting(opaqueDHT{MustNewLocal(1)}, &stats)
	if err := c.Range(func(Key, any) bool { return true }); err != ErrNotEnumerable {
		t.Errorf("Range on opaque substrate = %v, want ErrNotEnumerable", err)
	}
}

func TestLocalOwnerDistribution(t *testing.T) {
	// With 128 peers and many keys, consistent hashing should touch most
	// peers — the property Fig. 6 relies on for per-peer load measurement.
	l := MustNewLocal(128)
	owners := make(map[string]bool)
	for i := 0; i < 5000; i++ {
		o, err := l.Owner(Key(fmt.Sprintf("dist-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		owners[o] = true
	}
	if len(owners) < 100 {
		t.Errorf("keys landed on %d of 128 peers", len(owners))
	}
}
