package dht

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mlight/internal/metrics"
	"mlight/internal/trace"
)

// This file implements the retry engine beneath the Resilient decorator: an
// error taxonomy (transient vs terminal), capped exponential backoff with
// deterministic seeded jitter, per-operation attempt budgets, and per-owner
// circuit breakers that shed load from repeatedly failing peers. The engine
// is exposed as a standalone Retrier so non-DHT call sites (e.g. the
// overlays' replication RPCs) reuse the exact same policy machinery.

// ErrBreakerOpen is returned, wrapped, by operations shed because the
// destination owner's circuit breaker is open. It is deliberately terminal:
// retrying a shed operation immediately would defeat the load shedding.
var ErrBreakerOpen = errors.New("dht: circuit breaker open")

// retryableError marks an error as transient for DefaultClassify.
type retryableError struct{ err error }

func (e retryableError) Error() string   { return e.err.Error() }
func (e retryableError) Unwrap() error   { return e.err }
func (e retryableError) Temporary() bool { return true }

// Retryable marks err as transient: DefaultClassify will treat any error
// whose chain contains the returned error as retryable. Identity is
// preserved, so errors.Is(wrapped, Retryable(sentinel)) keeps working.
func Retryable(err error) error { return retryableError{err} }

// DefaultClassify is the default error taxonomy: an error is retryable iff
// something in its chain declares itself transient via a
// `Temporary() bool` method (the net.Error convention, also implemented by
// simnet's unreachable/drop errors and the overlays' lookup failures).
// Everything else — bad response types, dimension errors, ErrNoPeers — is
// terminal: retrying cannot fix it.
func DefaultClassify(err error) bool {
	if err == nil {
		return false
	}
	var t interface{ Temporary() bool }
	if errors.As(err, &t) {
		return t.Temporary()
	}
	return false
}

// OwnerShard is the default breaker keying: the top byte of the key's
// position on the identifier ring. Peers own contiguous arcs of the ring,
// so the 256 shards approximate per-owner granularity without issuing the
// DHT lookup an exact Owner resolution would cost on a routed overlay.
func OwnerShard(key Key) string {
	id := HashKey(key)
	return fmt.Sprintf("shard-%02x", id[0])
}

// NoSleep is a Sleep implementation that returns immediately — for tests
// and simulations where backoff delays are accounted, not paid.
func NoSleep(time.Duration) {}

// RetryPolicy configures a Retrier (and therefore a Resilient decorator).
// The zero value of each field selects the listed default.
type RetryPolicy struct {
	// MaxAttempts is the per-operation attempt budget (first try included).
	// Default 4.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it, capped at MaxDelay. Default 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff. Default 100ms.
	MaxDelay time.Duration
	// Seed seeds the jitter generator, keeping sequential runs
	// reproducible. Backoff delays are drawn from [delay/2, delay] ("equal
	// jitter"), so retries from many clients decorrelate without ever
	// halving below half the nominal delay.
	Seed int64
	// Classify reports whether an error is retryable. Default
	// DefaultClassify.
	Classify func(error) bool
	// BreakerThreshold is the number of consecutive failed attempts against
	// one owner that opens its circuit breaker. Default 8; negative
	// disables the breaker entirely.
	BreakerThreshold int
	// BreakerCooldown is how many operations an open breaker sheds before
	// letting one half-open trial through. Counting shed operations instead
	// of wall-clock time keeps fault-injection tests deterministic.
	// Default 4.
	BreakerCooldown int
	// OwnerOf maps a key to its breaker owner. Default OwnerShard;
	// substrates with cheap exact ownership can supply their own.
	OwnerOf func(Key) string
	// Sleep performs the backoff wait. Default time.Sleep; use NoSleep in
	// tests and logical-time simulations.
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	if p.Classify == nil {
		p.Classify = DefaultClassify
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = 8
	}
	if p.BreakerCooldown < 1 {
		p.BreakerCooldown = 4
	}
	if p.OwnerOf == nil {
		p.OwnerOf = OwnerShard
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is the per-owner circuit state. All transitions happen under the
// Retrier's mutex.
type breaker struct {
	state         int
	consecutive   int // failed attempts since the last success (closed state)
	shedRemaining int // operations still to shed before a half-open trial
}

// Retrier executes operations under a RetryPolicy. It is safe for
// concurrent use; the jitter generator and breaker table are shared.
type Retrier struct {
	policy RetryPolicy
	stats  *metrics.ResilienceStats

	mu       sync.Mutex
	rng      *rand.Rand
	breakers map[string]*breaker
}

// NewRetrier creates a retry executor with the given policy. A nil stats
// allocates a private counter set, retrievable via Stats.
func NewRetrier(policy RetryPolicy, stats *metrics.ResilienceStats) *Retrier {
	if stats == nil {
		stats = &metrics.ResilienceStats{}
	}
	p := policy.withDefaults()
	return &Retrier{
		policy: p,
		stats:  stats,
		// Backoff jitter draws from a private source seeded by the policy,
		// never the global rand — the determinism invariant mlight-lint
		// enforces: same policy, same jitter sequence, replayable runs.
		rng:      rand.New(rand.NewSource(p.Seed)),
		breakers: make(map[string]*breaker),
	}
}

// Stats returns the counter set this retrier charges.
func (r *Retrier) Stats() *metrics.ResilienceStats { return r.stats }

// Policy returns the resolved policy (defaults applied).
func (r *Retrier) Policy() RetryPolicy { return r.policy }

// Do runs op under the retry policy, charging failures against owner's
// circuit breaker. Retryable errors are retried with backoff up to the
// attempt budget; terminal errors abort immediately. A shed operation
// returns an error wrapping ErrBreakerOpen without touching op at all.
func (r *Retrier) Do(owner string, op func() error) error {
	return r.DoTraced(owner, nil, 0, op)
}

// DoTraced is Do recording physical attempts into tc as KindAttempt spans
// under parent. With a parent span every attempt is recorded (the caller
// asked for this operation's full physical timeline); without one — bulk
// maintenance traffic — only retries (attempt ≥ 2) are recorded, so an
// attached collector is not flooded with one span per successful first
// try. A nil tc records nothing.
func (r *Retrier) DoTraced(owner string, tc *trace.Collector, parent trace.SpanID, op func() error) error {
	r.stats.Ops.Inc()
	if err := r.precheck(owner); err != nil {
		return err
	}
	var err error
	for attempt := 1; ; attempt++ {
		r.stats.Attempts.Inc()
		if tc != nil && (parent != 0 || attempt > 1) {
			span := tc.Begin(parent, trace.KindAttempt, fmt.Sprintf("%d", attempt),
				trace.Str("owner", owner))
			err = op()
			if err != nil {
				tc.End(span, trace.Str("error", err.Error()))
			} else {
				tc.End(span)
			}
		} else {
			err = op()
		}
		if err == nil {
			r.onSuccess(owner)
			if attempt > 1 {
				r.stats.Recovered.Inc()
			}
			return nil
		}
		if !r.policy.Classify(err) {
			r.stats.Terminal.Inc()
			return err
		}
		r.onFailure(owner)
		if attempt >= r.policy.MaxAttempts {
			r.stats.Exhausted.Inc()
			return fmt.Errorf("dht: giving up after %d attempts: %w", attempt, err)
		}
		r.stats.Retries.Inc()
		r.policy.Sleep(r.backoff(attempt))
	}
}

// precheck consults owner's breaker before an operation starts. It returns
// a fast-fail error while the breaker is shedding, and silently admits a
// half-open trial once the cooldown is spent.
func (r *Retrier) precheck(owner string) error {
	if r.policy.BreakerThreshold < 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.breakers[owner]
	if b == nil {
		return nil
	}
	switch b.state {
	case breakerOpen:
		if b.shedRemaining > 0 {
			b.shedRemaining--
			r.stats.BreakerFastFails.Inc()
			return fmt.Errorf("%w: owner %q", ErrBreakerOpen, owner)
		}
		b.state = breakerHalfOpen // this operation is the trial
		return nil
	case breakerHalfOpen:
		// A trial is already in flight; keep shedding until it resolves.
		r.stats.BreakerFastFails.Inc()
		return fmt.Errorf("%w: owner %q (half-open trial pending)", ErrBreakerOpen, owner)
	default:
		return nil
	}
}

// onSuccess records a successful attempt: any breaker state collapses back
// to closed.
func (r *Retrier) onSuccess(owner string) {
	if r.policy.BreakerThreshold < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.breakers[owner]
	if b == nil {
		return
	}
	if b.state == breakerHalfOpen {
		r.stats.BreakerResets.Inc()
	}
	b.state = breakerClosed
	b.consecutive = 0
	b.shedRemaining = 0
}

// onFailure records a retryable failed attempt against owner, opening the
// breaker after BreakerThreshold consecutive failures (and re-opening it
// when a half-open trial fails).
func (r *Retrier) onFailure(owner string) {
	if r.policy.BreakerThreshold < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.breakers[owner]
	if b == nil {
		b = &breaker{}
		r.breakers[owner] = b
	}
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.shedRemaining = r.policy.BreakerCooldown
		r.stats.BreakerTrips.Inc()
	case breakerClosed:
		b.consecutive++
		if b.consecutive >= r.policy.BreakerThreshold {
			b.state = breakerOpen
			b.shedRemaining = r.policy.BreakerCooldown
			r.stats.BreakerTrips.Inc()
		}
	}
}

// backoff returns the jittered delay before retry number `attempt` (1 for
// the first retry): min(MaxDelay, BaseDelay·2^(attempt-1)) scaled into
// [delay/2, delay].
func (r *Retrier) backoff(attempt int) time.Duration {
	delay := r.policy.BaseDelay
	for i := 1; i < attempt && delay < r.policy.MaxDelay; i++ {
		delay *= 2
	}
	if delay > r.policy.MaxDelay {
		delay = r.policy.MaxDelay
	}
	if delay <= 0 {
		return 0
	}
	r.mu.Lock()
	f := r.rng.Float64()
	r.mu.Unlock()
	half := delay / 2
	return half + time.Duration(f*float64(delay-half))
}

// ResetOwner discards owner's breaker state entirely, as if the peer had
// never failed. Call it when a peer is known to have restarted: breaker
// state is evidence about a process that no longer exists, and without the
// reset a recovered peer keeps shedding load (open state) or serving
// repeated failure counts (closed-with-history) until a half-open trial
// happens to land — indefinitely long under the operation-counted cooldown
// if traffic to that owner is sparse.
func (r *Retrier) ResetOwner(owner string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.breakers, owner)
}

// BreakerState reports owner's breaker state for tests and diagnostics:
// "closed", "open", or "half-open".
func (r *Retrier) BreakerState(owner string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.breakers[owner]
	if b == nil {
		return "closed"
	}
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
