package dht

import (
	"fmt"
	"sort"
	"sync"
)

// Local is a single-process DHT: a concurrency-safe key-value store that
// assigns ownership over a configurable set of virtual peers by consistent
// hashing, exactly as a ring DHT would. It is the fast substrate for unit
// tests and the default for the paper's experiments, where the metrics of
// interest (logical DHT operations, records moved, rounds) are independent
// of overlay routing.
type Local struct {
	mu    sync.RWMutex
	store map[Key]any
	// ring holds the virtual peers' positions, sorted; peers[i] names the
	// peer at ring[i].
	ring  []ID
	peers []string
}

var (
	_ DHT         = (*Local)(nil)
	_ Enumerator  = (*Local)(nil)
	_ Batcher     = (*Local)(nil)
	_ BatchWriter = (*Local)(nil)
)

// NewLocal creates a local DHT with numPeers virtual peers named
// "peer-0" … "peer-N-1", placed on the identifier ring by hashing their
// names. numPeers must be at least 1.
func NewLocal(numPeers int) (*Local, error) {
	if numPeers < 1 {
		return nil, fmt.Errorf("dht: NewLocal needs at least one peer, got %d", numPeers)
	}
	l := &Local{store: make(map[Key]any)}
	type entry struct {
		id   ID
		name string
	}
	entries := make([]entry, numPeers)
	for i := range entries {
		name := fmt.Sprintf("peer-%d", i)
		entries[i] = entry{id: HashString(name), name: name}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].id.Cmp(entries[j].id) < 0 })
	l.ring = make([]ID, numPeers)
	l.peers = make([]string, numPeers)
	for i, e := range entries {
		l.ring[i] = e.id
		l.peers[i] = e.name
	}
	return l, nil
}

// MustNewLocal is NewLocal for trusted constants; it panics on error.
func MustNewLocal(numPeers int) *Local {
	l, err := NewLocal(numPeers)
	if err != nil {
		panic(err)
	}
	return l
}

// Put implements DHT.
func (l *Local) Put(key Key, value any) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.store[key] = value
	return nil
}

// Get implements DHT.
func (l *Local) Get(key Key) (any, bool, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	v, ok := l.store[key]
	return v, ok, nil
}

// GetBatch implements Batcher natively: all keys are read under one shared
// lock, so a batch costs the same as a single Get regardless of size. The
// maxInFlight cap is irrelevant here — nothing blocks.
func (l *Local) GetBatch(keys []Key, maxInFlight int) []BatchResult {
	results := make([]BatchResult, len(keys))
	l.mu.RLock()
	defer l.mu.RUnlock()
	for i, k := range keys {
		v, ok := l.store[k]
		results[i] = BatchResult{Value: v, Found: ok}
	}
	return results
}

// PutBatch implements BatchWriter natively: all stores land under one
// exclusive lock, so a batch costs the same as a single Put regardless of
// size. The maxInFlight cap is irrelevant here — nothing blocks.
func (l *Local) PutBatch(ops []PutOp, maxInFlight int) []error {
	errs := make([]error, len(ops))
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, op := range ops {
		l.store[op.Key] = op.Value
	}
	return errs
}

// ApplyBatch implements BatchWriter natively: every transform runs under one
// exclusive lock acquisition, preserving per-key atomicity while paying the
// lock once for the whole round.
func (l *Local) ApplyBatch(ops []ApplyOp, maxInFlight int) []error {
	errs := make([]error, len(ops))
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, op := range ops {
		cur, ok := l.store[op.Key]
		next, keep := op.Fn(cur, ok)
		if keep {
			l.store[op.Key] = next
		} else {
			delete(l.store, op.Key)
		}
	}
	return errs
}

// Remove implements DHT.
func (l *Local) Remove(key Key) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.store, key)
	return nil
}

// Apply implements DHT.
func (l *Local) Apply(key Key, fn ApplyFunc) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	cur, ok := l.store[key]
	next, keep := fn(cur, ok)
	if keep {
		l.store[key] = next
	} else {
		delete(l.store, key)
	}
	return nil
}

// Owner implements DHT: the peer owning a key is the first peer at or after
// hash(key) on the ring (the key's successor).
func (l *Local) Owner(key Key) (string, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	id := HashKey(key)
	i := sort.Search(len(l.ring), func(i int) bool { return l.ring[i].Cmp(id) >= 0 })
	if i == len(l.ring) {
		i = 0
	}
	return l.peers[i], nil
}

// Peers returns the names of all virtual peers.
func (l *Local) Peers() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]string(nil), l.peers...)
}

// Range implements Enumerator.
func (l *Local) Range(fn func(key Key, value any) bool) error {
	l.mu.RLock()
	keys := make([]Key, 0, len(l.store))
	for k := range l.store {
		keys = append(keys, k)
	}
	l.mu.RUnlock()
	for _, k := range keys {
		l.mu.RLock()
		v, ok := l.store[k]
		l.mu.RUnlock()
		if !ok {
			continue
		}
		if !fn(k, v) {
			return nil
		}
	}
	return nil
}

// Len returns the number of stored entries.
func (l *Local) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.store)
}
